package obs

import (
	"runtime"
	"runtime/debug"
	"strconv"
	"time"
)

// procStart anchors the process uptime gauge. Package init runs before any
// server accepts traffic, so this is within microseconds of true start.
var procStart = time.Now()

// BuildVersion returns the best version identifier the binary carries: the
// module version when built from a tagged release, else the VCS revision
// (12-hex prefix, "-dirty" when the tree was modified), else "unknown".
func BuildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev string
	var dirty bool
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "unknown"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "-dirty"
	}
	return rev
}

// RegisterBuildInfo installs the deploy-correlation metrics on r:
//
//	sdpopt_build_info{version=,goversion=,gomaxprocs=} 1
//	sdpopt_process_start_time_seconds  (unix seconds, constant)
//	sdpopt_process_uptime_seconds      (computed at scrape)
//
// Dashboards join regret or latency shifts against version label changes to
// attribute them to deploys. Safe to call more than once (idempotent keys)
// and nil-safe.
func RegisterBuildInfo(r *Registry) {
	if r == nil {
		return
	}
	r.Gauge(Label(MBuildInfo,
		"version", BuildVersion(),
		"goversion", runtime.Version(),
		"gomaxprocs", strconv.Itoa(runtime.GOMAXPROCS(0)),
	)).Set(1)
	r.Gauge(MProcessStart).Set(procStart.Unix())
	r.GaugeFunc(MUptime, func() int64 {
		return int64(time.Since(procStart).Seconds())
	})
}
