package route

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"strings"
)

// JSONHandler serves the router state as JSON at /debug/routes.json.
func (r *Router) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}

// Handler serves the human debug page at /debug/routes: executed-decision
// tallies, the live latency and regret profiles, and the decision table the
// current profile state implies.
func (r *Router) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		d := r.Snapshot()
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		var b strings.Builder
		b.WriteString("<!DOCTYPE html><html><head><title>/debug/routes</title><style>\n")
		b.WriteString("body{font-family:sans-serif;margin:1em 2em}table{border-collapse:collapse}\n")
		b.WriteString("td,th{padding:0.15em 0.8em;text-align:left;border-bottom:1px solid #eee}\n")
		b.WriteString("h2{border-bottom:1px solid #ccc;padding-bottom:0.2em}\n")
		b.WriteString(".bad{color:#b00020}.warn{color:#b35c00}.dim{color:#888}</style></head><body>\n")
		b.WriteString("<h1>sdpopt technique routing</h1>\n")
		fmt.Fprintf(&b, "<p>fast path &le; %d rels or chain-like · heavy tail &ge; %d rels · regret demotion at &rho; &gt; %g (&ge; %d samples) · safety &times;%g</p>\n",
			d.Config.SmallRels, d.Config.HeavyRels, d.Config.DemoteRho, d.Config.MinRegretSamples, d.Config.SafetyFactor)
		fmt.Fprintf(&b, "<p>%d mid-flight fallbacks</p>\n", d.Fallbacks)
		b.WriteString("<p><a href=\"/debug/routes.json\">routes.json</a> · <a href=\"/debug/regret\">regret</a> · <a href=\"/debug/requests\">requests</a> · <a href=\"/metrics\">metrics</a></p>\n")

		b.WriteString("<h2>Executed decisions</h2>\n")
		if len(d.Decisions) == 0 {
			b.WriteString("<p>no requests routed yet</p>\n")
		} else {
			b.WriteString("<table><tr><th>technique</th><th>reason</th><th>count</th></tr>\n")
			for _, dc := range d.Decisions {
				fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%d</td></tr>\n",
					html.EscapeString(dc.Technique), html.EscapeString(dc.Reason), dc.Count)
			}
			b.WriteString("</table>\n")
		}

		b.WriteString("<h2>Decision table</h2>\n")
		b.WriteString("<p class=\"dim\">what Decide returns right now per (shape, rels, remaining deadline); predictions are EWMAs where traffic has taught the router, priors elsewhere</p>\n")
		b.WriteString("<table><tr><th>shape</th><th>rels</th><th>deadline</th><th>route</th><th>reason</th><th>predicted</th><th>reserve</th></tr>\n")
		for _, row := range d.Table {
			dl := "&infin;"
			if row.DeadlineMS > 0 {
				dl = fmt.Sprintf("%dms", row.DeadlineMS)
			}
			class := ""
			if row.Reason == ReasonDeadlineDowngrade {
				class = " class=\"warn\""
			}
			fmt.Fprintf(&b, "<tr%s><td>%s</td><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%.2fms</td><td>%.1fms</td></tr>\n",
				class, html.EscapeString(row.Shape), row.Rels, dl,
				html.EscapeString(row.Technique), html.EscapeString(row.Reason),
				row.PredictedMS, row.ReserveMS)
		}
		b.WriteString("</table>\n")

		b.WriteString("<h2>Latency profiles</h2>\n")
		writeProfiles(&b, d.Latency, "EWMA ms", "last ms", "max ms", "ms")
		b.WriteString("<h2>Regret profiles</h2>\n")
		writeProfiles(&b, d.Regret, "EWMA &rho;", "last", "max", "")
		b.WriteString("</body></html>\n")
		_, _ = w.Write([]byte(b.String()))
	})
}

func writeProfiles(b *strings.Builder, ps []Profile, h1, h2, h3, unit string) {
	if len(ps) == 0 {
		b.WriteString("<p>no observations yet — predictions fall back to priors</p>\n")
		return
	}
	fmt.Fprintf(b, "<table><tr><th>technique</th><th>topology</th><th>rels</th><th>samples</th><th>%s</th><th>%s</th><th>%s</th></tr>\n", h1, h2, h3)
	for _, p := range ps {
		class := ""
		if unit == "" && p.EWMA > 1.15 { // regret table: flag degraded keys
			class = " class=\"bad\""
		}
		fmt.Fprintf(b, "<tr%s><td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%.3f</td><td>%.3f</td><td>%.3f</td></tr>\n",
			class, html.EscapeString(p.Tech), html.EscapeString(p.Shape), html.EscapeString(p.Band),
			p.Samples, p.EWMA, p.Last, p.Max)
	}
	b.WriteString("</table>\n")
}
