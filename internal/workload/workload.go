// Package workload generates the paper's experimental query workloads.
//
// The paper creates millions of query instances by combinatorially
// enumerating relation choices over a 25-relation schema — e.g. the
// 15-relation pure-star template instantiates C(24,14) ≈ 2 M queries with
// the largest relation fixed at the hub, "as is usually the case in data
// warehousing applications". Since its tables report percentage
// distributions, this package samples a configurable number of instances
// per template with a deterministic seed (full enumeration is just a larger
// Instances count away).
//
// Column assignment follows Section 3.1: spoke relations join the hub on
// the spokes' indexed columns; chain relations join their left neighbor on
// an indexed column. Every relation spends each column on at most one
// predicate per query, so no unintended implied edges perturb the topology.
// Ordered variants add an ORDER BY on a randomly chosen join column.
package workload

import (
	"fmt"
	"math/rand"
	"sdpopt/internal/bits"

	"sdpopt/internal/catalog"
	"sdpopt/internal/query"
)

// Topology identifies a join-graph template.
type Topology int

// Join-graph templates evaluated in the paper, plus Snowflake — the
// two-level warehouse tree used by the >64-relation scale-up experiments.
// Custom instantiates the explicit edge list in Spec.Edges (used for the
// paper's fixed Figure 2.1 example graph). Snowflake is appended after
// Custom so the paper topologies keep their original numeric values.
const (
	Chain Topology = iota
	Star
	Cycle
	Clique
	StarChain
	Custom
	Snowflake
)

// String names the topology.
func (t Topology) String() string {
	switch t {
	case Chain:
		return "Chain"
	case Star:
		return "Star"
	case Cycle:
		return "Cycle"
	case Clique:
		return "Clique"
	case StarChain:
		return "Star-Chain"
	case Custom:
		return "Custom"
	case Snowflake:
		return "Snowflake"
	}
	return fmt.Sprintf("Topology(%d)", int(t))
}

// PaperSchema returns the paper's base schema: 25 relations with uniform
// column value distributions.
func PaperSchema() *catalog.Catalog {
	return catalog.MustSynthetic(catalog.DefaultConfig())
}

// SkewedSchema returns the base schema with half the columns exponentially
// skewed.
func SkewedSchema() *catalog.Catalog {
	return catalog.MustSynthetic(catalog.SkewedConfig())
}

// ExtendedSchema returns the enlarged schema used by the maximum-scaleup
// experiment.
func ExtendedSchema(numRelations int) *catalog.Catalog {
	return catalog.MustSynthetic(catalog.ExtendedConfig(numRelations))
}

// Spec describes one workload: a topology template instantiated over a
// catalog.
type Spec struct {
	Cat *catalog.Catalog
	// Topology selects the join-graph template.
	Topology Topology
	// NumRelations is the template size N.
	NumRelations int
	// Spokes is the star-spoke count for StarChain; 0 selects the paper's
	// default proportion (10 spokes at N=15).
	Spokes int
	// Dims is the dimension-hub count for Snowflake; 0 selects
	// query.DefaultSnowflakeDims.
	Dims int
	// Ordered adds an ORDER BY on a random join column to every instance.
	Ordered bool
	// Edges is the explicit edge list for the Custom topology; edge
	// endpoints are query-local indexes in [0, NumRelations).
	Edges []query.Edge
	// FilterFraction is the probability each relation receives a local
	// range filter on a random column with random selectivity.
	FilterFraction float64
	// Seed drives all sampling.
	Seed int64
}

// Instances generates count query instances of the spec. Generation is
// deterministic in (spec, count).
func Instances(spec Spec, count int) ([]*query.Query, error) {
	if spec.Cat == nil {
		return nil, fmt.Errorf("workload: nil catalog")
	}
	if count < 1 {
		return nil, fmt.Errorf("workload: count %d < 1", count)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	out := make([]*query.Query, 0, count)
	for i := 0; i < count; i++ {
		q, err := instance(spec, rng)
		if err != nil {
			return nil, err
		}
		out = append(out, q)
	}
	return out, nil
}

// One generates a single instance (convenience for the single-query
// experiments such as Table 2.1).
func One(spec Spec) (*query.Query, error) {
	qs, err := Instances(spec, 1)
	if err != nil {
		return nil, err
	}
	return qs[0], nil
}

// Enumerate produces instances by walking the relation combinations in
// lexicographic order instead of sampling — the paper's "combinatorial
// enumeration of the relational choices" (it reports C(24,14) ≈ 2 M
// instances for Star-15). limit caps the walk; 0 enumerates everything.
// Column assignment still draws from the spec's seed, so enumeration is
// deterministic. Only Star and StarChain support enumeration (the hub is
// pinned to the largest relation, the combination selects the rest);
// other topologies return an error.
func Enumerate(spec Spec, limit int) ([]*query.Query, error) {
	if spec.Cat == nil {
		return nil, fmt.Errorf("workload: nil catalog")
	}
	if spec.Topology != Star && spec.Topology != StarChain {
		return nil, fmt.Errorf("workload: enumeration supports Star and StarChain, not %v", spec.Topology)
	}
	n := spec.NumRelations
	if n < 2 || n > spec.Cat.NumRelations() {
		return nil, fmt.Errorf("workload: cannot enumerate %d relations from a %d-relation schema", n, spec.Cat.NumRelations())
	}
	hub := spec.Cat.LargestRelation()
	pool := make([]int, 0, spec.Cat.NumRelations()-1)
	for i := 0; i < spec.Cat.NumRelations(); i++ {
		if i != hub {
			pool = append(pool, i)
		}
	}
	k := n - 1
	comb := make([]int, k)
	for i := range comb {
		comb[i] = i
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	var edges []query.Edge
	if spec.Topology == Star {
		edges = query.StarEdges(n)
	} else {
		spokes := spec.Spokes
		if spokes == 0 {
			spokes = query.DefaultStarChainSpokes(n)
		}
		edges = query.StarChainEdges(n, spokes)
	}
	var out []*query.Query
	for {
		rels := make([]int, 0, n)
		rels = append(rels, hub)
		for _, ci := range comb {
			rels = append(rels, pool[ci])
		}
		preds, err := assignColumns(spec.Cat, rels, edges, rng)
		if err != nil {
			return nil, err
		}
		q, err := query.New(spec.Cat, rels, preds, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, q)
		if limit > 0 && len(out) >= limit {
			return out, nil
		}
		// Advance the combination in lexicographic order.
		i := k - 1
		for i >= 0 && comb[i] == len(pool)-k+i {
			i--
		}
		if i < 0 {
			return out, nil
		}
		comb[i]++
		for j := i + 1; j < k; j++ {
			comb[j] = comb[j-1] + 1
		}
	}
}

func instance(spec Spec, rng *rand.Rand) (*query.Query, error) {
	n := spec.NumRelations
	cat := spec.Cat
	if n < 2 {
		return nil, fmt.Errorf("workload: NumRelations %d < 2", n)
	}
	if n > bits.MaxRelations {
		return nil, fmt.Errorf("workload: %d relations exceeds the %d-relation query limit", n, bits.MaxRelations)
	}

	var rels []int
	var edges []query.Edge
	switch spec.Topology {
	case Chain:
		rels = sample(rng, cat.NumRelations(), n, -1)
		edges = query.ChainEdges(n)
	case Cycle:
		rels = sample(rng, cat.NumRelations(), n, -1)
		edges = query.CycleEdges(n)
	case Clique:
		rels = sample(rng, cat.NumRelations(), n, -1)
		edges = query.CliqueEdges(n)
	case Star:
		hub := cat.LargestRelation()
		rels = append([]int{hub}, sample(rng, cat.NumRelations(), n-1, hub)...)
		edges = query.StarEdges(n)
	case StarChain:
		hub := cat.LargestRelation()
		rels = append([]int{hub}, sample(rng, cat.NumRelations(), n-1, hub)...)
		spokes := spec.Spokes
		if spokes == 0 {
			spokes = query.DefaultStarChainSpokes(n)
		}
		edges = query.StarChainEdges(n, spokes)
	case Snowflake:
		// The fact table is the schema's largest relation, as with the star
		// hub: warehouse fact tables dominate their dimensions.
		hub := cat.LargestRelation()
		rels = append([]int{hub}, sample(rng, cat.NumRelations(), n-1, hub)...)
		dims := spec.Dims
		if dims == 0 {
			dims = query.DefaultSnowflakeDims(n)
		}
		edges = query.SnowflakeEdges(n, dims)
	case Custom:
		if len(spec.Edges) == 0 {
			return nil, fmt.Errorf("workload: Custom topology needs Edges")
		}
		rels = sample(rng, cat.NumRelations(), n, -1)
		edges = spec.Edges
	default:
		return nil, fmt.Errorf("workload: unknown topology %d", int(spec.Topology))
	}

	preds, err := assignColumns(cat, rels, edges, rng)
	if err != nil {
		return nil, err
	}
	var orderBy *query.OrderSpec
	if spec.Ordered {
		p := preds[rng.Intn(len(preds))]
		if rng.Intn(2) == 0 {
			orderBy = &query.OrderSpec{Rel: p.LeftRel, Col: p.LeftCol}
		} else {
			orderBy = &query.OrderSpec{Rel: p.RightRel, Col: p.RightCol}
		}
	}
	var filters []query.Filter
	if spec.FilterFraction > 0 {
		for i := 0; i < n; i++ {
			if rng.Float64() >= spec.FilterFraction {
				continue
			}
			rel := cat.Relation(rels[i])
			col := rng.Intn(len(rel.Cols))
			ndv := int64(rel.Cols[col].NDV)
			if ndv < 2 {
				continue
			}
			// Bound uniform in [1, ndv): selectivity spans (0, 1).
			filters = append(filters, query.Filter{Rel: i, Col: col, Bound: 1 + rng.Int63n(ndv-1)})
		}
	}
	return query.NewFiltered(cat, rels, preds, filters, orderBy)
}

// sample draws k relation indexes from [0, n), excluding skip (pass -1 for
// no exclusion). Draws are distinct while the pool lasts; a k beyond the
// pool size reuses relations under fresh aliases, as the paper's
// 28-relation chains over the 25-relation schema do.
func sample(rng *rand.Rand, n, k int, skip int) []int {
	pool := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if i != skip {
			pool = append(pool, i)
		}
	}
	out := make([]int, 0, k)
	for len(out) < k {
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		take := k - len(out)
		if take > len(pool) {
			take = len(pool)
		}
		out = append(out, pool[:take]...)
	}
	return out
}

// assignColumns maps each topology edge to a join predicate. The edge's
// second endpoint joins on its indexed column when still unused (the
// paper's indexed spoke/chain joins); other column needs draw randomly from
// the relation's unused columns.
func assignColumns(cat *catalog.Catalog, rels []int, edges []query.Edge, rng *rand.Rand) ([]query.Pred, error) {
	used := make([]map[int]bool, len(rels))
	for i := range used {
		used[i] = map[int]bool{}
	}
	randomCol := func(local int) (int, error) {
		rel := cat.Relation(rels[local])
		free := make([]int, 0, len(rel.Cols))
		for c := range rel.Cols {
			if !used[local][c] {
				free = append(free, c)
			}
		}
		if len(free) == 0 {
			return 0, fmt.Errorf("workload: relation %s has no free columns", rel.Name)
		}
		return free[rng.Intn(len(free))], nil
	}
	indexedOrRandom := func(local int) (int, error) {
		idx := cat.Relation(rels[local]).IndexCol
		if !used[local][idx] {
			return idx, nil
		}
		return randomCol(local)
	}
	preds := make([]query.Pred, len(edges))
	for i, e := range edges {
		ca, err := randomCol(e.A)
		if err != nil {
			return nil, err
		}
		used[e.A][ca] = true
		cb, err := indexedOrRandom(e.B)
		if err != nil {
			return nil, err
		}
		used[e.B][cb] = true
		preds[i] = query.Pred{LeftRel: e.A, LeftCol: ca, RightRel: e.B, RightCol: cb}
	}
	return preds, nil
}

// Example9 returns the paper's fixed nine-relation example (Figure 2.1)
// instantiated over the given catalog with relations 0..8 and deterministic
// column assignment.
func Example9(cat *catalog.Catalog) (*query.Query, error) {
	if cat.NumRelations() < 9 {
		return nil, fmt.Errorf("workload: Example9 needs 9 relations, schema has %d", cat.NumRelations())
	}
	rng := rand.New(rand.NewSource(29))
	rels := make([]int, 9)
	for i := range rels {
		rels[i] = i
	}
	preds, err := assignColumns(cat, rels, query.Example9Edges(), rng)
	if err != nil {
		return nil, err
	}
	return query.New(cat, rels, preds, nil)
}
