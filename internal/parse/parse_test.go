package parse

import (
	"strings"
	"testing"

	"sdpopt/internal/bits"
	"sdpopt/internal/dp"
	"sdpopt/internal/workload"
)

func TestParseBasicJoin(t *testing.T) {
	cat := workload.PaperSchema()
	q, err := SQL(cat, `SELECT * FROM R1 a, R2 b WHERE a.c1 = b.c2`)
	if err != nil {
		t.Fatalf("SQL: %v", err)
	}
	if q.NumRelations() != 2 {
		t.Fatalf("NumRelations = %d", q.NumRelations())
	}
	if q.Rels[0] != 0 || q.Rels[1] != 1 {
		t.Errorf("Rels = %v", q.Rels)
	}
	if len(q.Preds) != 1 {
		t.Fatalf("Preds = %d", len(q.Preds))
	}
	p := q.Preds[0]
	if p.LeftRel != 0 || p.LeftCol != 0 || p.RightRel != 1 || p.RightCol != 1 {
		t.Errorf("Pred = %+v", p)
	}
}

func TestParseFiltersAndOrder(t *testing.T) {
	cat := workload.PaperSchema()
	q, err := SQL(cat, `
		SELECT *
		FROM R5 t1, R6 t2, R7 t3
		WHERE t1.c1 = t2.c2
		  AND t2.c3 = t3.c4
		  AND t1.c5 < 40
		ORDER BY t1.c1;`)
	if err != nil {
		t.Fatalf("SQL: %v", err)
	}
	if len(q.Preds) != 2 || len(q.Filters) != 1 {
		t.Fatalf("preds=%d filters=%d", len(q.Preds), len(q.Filters))
	}
	f := q.Filters[0]
	if f.Rel != 0 || f.Col != 4 || f.Bound != 40 {
		t.Errorf("filter = %+v", f)
	}
	if q.OrderBy == nil || q.OrderBy.Rel != 0 || q.OrderBy.Col != 0 {
		t.Errorf("orderBy = %+v", q.OrderBy)
	}
}

func TestParseCaseInsensitiveAndComments(t *testing.T) {
	cat := workload.PaperSchema()
	q, err := SQL(cat, `-- a comment
		select * from r1 A, r2 B where A.C1 = B.C1;`)
	if err != nil {
		t.Fatalf("SQL: %v", err)
	}
	if len(q.Preds) != 1 {
		t.Fatal("predicate lost")
	}
}

func TestParseDefaultAlias(t *testing.T) {
	cat := workload.PaperSchema()
	q, err := SQL(cat, `SELECT * FROM R3, R4 WHERE R3.c1 = R4.c1`)
	if err != nil {
		t.Fatalf("SQL: %v", err)
	}
	if q.NumRelations() != 2 {
		t.Fatal("relations lost")
	}
}

func TestParseSelfJoinAliases(t *testing.T) {
	cat := workload.PaperSchema()
	q, err := SQL(cat, `SELECT * FROM R3 a, R3 b WHERE a.c1 = b.c2`)
	if err != nil {
		t.Fatalf("self-join: %v", err)
	}
	if q.Rels[0] != q.Rels[1] {
		t.Error("aliases should share the catalog relation")
	}
}

func TestParseErrors(t *testing.T) {
	cat := workload.PaperSchema()
	cases := map[string]string{
		"not select":        `UPDATE R1 SET x = 1`,
		"no star":           `SELECT c1 FROM R1`,
		"unknown relation":  `SELECT * FROM Nope n`,
		"duplicate alias":   `SELECT * FROM R1 a, R2 a WHERE a.c1 = a.c2`,
		"unknown alias":     `SELECT * FROM R1 a, R2 b WHERE a.c1 = z.c2`,
		"unknown column":    `SELECT * FROM R1 a, R2 b WHERE a.nosuch = b.c1`,
		"bad operator":      `SELECT * FROM R1 a, R2 b WHERE a.c1 > b.c2`,
		"filter non-number": `SELECT * FROM R1 a, R2 b WHERE a.c1 = b.c1 AND a.c2 < b`,
		"trailing junk":     `SELECT * FROM R1 a, R2 b WHERE a.c1 = b.c1 ; extra`,
		"lex error":         `SELECT * FROM R1 a ? R2 b`,
		"disconnected":      `SELECT * FROM R1 a, R2 b`,
	}
	for name, src := range cases {
		if _, err := SQL(cat, src); err == nil {
			t.Errorf("%s: accepted %q", name, src)
		}
	}
}

func TestRoundTripGeneratedWorkloads(t *testing.T) {
	// Everything the workload generator emits as SQL must parse back to an
	// equivalent query: same relations, predicates, filters and order.
	cat := workload.PaperSchema()
	for _, spec := range []workload.Spec{
		{Cat: cat, Topology: workload.Star, NumRelations: 10, Seed: 3},
		{Cat: cat, Topology: workload.StarChain, NumRelations: 12, Ordered: true, Seed: 4},
		{Cat: cat, Topology: workload.Chain, NumRelations: 8, FilterFraction: 0.5, Seed: 5},
		{Cat: cat, Topology: workload.Clique, NumRelations: 5, Seed: 6},
	} {
		qs, err := workload.Instances(spec, 3)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range qs {
			parsed, err := SQL(cat, q.SQL())
			if err != nil {
				t.Fatalf("instance %d failed to re-parse: %v\n%s", i, err, q.SQL())
			}
			if parsed.SQL() != q.SQL() {
				t.Fatalf("round trip diverged:\noriginal:\n%s\nreparsed:\n%s", q.SQL(), parsed.SQL())
			}
		}
	}
}

func TestParsedQueryOptimizes(t *testing.T) {
	cat := workload.PaperSchema()
	q, err := SQL(cat, `
		SELECT * FROM R20 f, R3 d1, R5 d2, R8 d3
		WHERE f.c1 = d1.c2 AND f.c3 = d2.c4 AND f.c5 = d3.c6
		  AND d1.c7 < 50`)
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := dp.Optimize(q, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Rels != bits.Full(4) {
		t.Errorf("plan covers %v", p.Rels)
	}
	if got := q.HubRels(); got != bits.Of(0) {
		t.Errorf("hubs = %v, want the fact table", got)
	}
}

func TestLexerTokens(t *testing.T) {
	l, err := lex(`a.b = 12, * ; <`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tok := range l.toks {
		kinds = append(kinds, tok.kind)
	}
	want := []tokenKind{tokIdent, tokDot, tokIdent, tokEq, tokNumber, tokComma, tokStar, tokSemi, tokLt, tokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestTokenKindStrings(t *testing.T) {
	for k := tokEOF; k <= tokSemi; k++ {
		if k.String() == "token" {
			t.Errorf("kind %d lacks a name", int(k))
		}
	}
	if !strings.Contains(tokEOF.String(), "end") {
		t.Error("EOF name")
	}
}
