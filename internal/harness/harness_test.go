package harness

import (
	"fmt"
	"strings"
	"testing"

	"sdpopt/internal/memo"
	"sdpopt/internal/workload"
)

// quickCfg keeps harness tests fast: few instances and a small budget so
// infeasibility paths trigger on small queries too.
func quickCfg() Config {
	return Config{Instances: 2, Seed: 11}
}

func TestRunBatchBasics(t *testing.T) {
	cat := workload.PaperSchema()
	qs, err := workload.Instances(workload.Spec{Cat: cat, Topology: workload.StarChain, NumRelations: 10, Seed: 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	budget := memo.DefaultBudget
	b, err := RunBatch("Star-Chain-10", qs, []Technique{
		TechDP(budget), TechIDP(7, budget), TechIDP(4, budget), TechSDP(budget),
	}, "DP")
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	if len(b.Outcomes) != 4 {
		t.Fatalf("outcomes = %d", len(b.Outcomes))
	}
	dpOut := b.Outcome("DP")
	if dpOut == nil || !dpOut.Reference || !dpOut.Feasible {
		t.Fatalf("DP outcome = %+v", dpOut)
	}
	if dpOut.Summary.PctIdeal != 100 || dpOut.Summary.Rho != 1 {
		t.Errorf("reference summary = %+v", dpOut.Summary)
	}
	for _, name := range []string{"IDP(7)", "IDP(4)", "SDP"} {
		o := b.Outcome(name)
		if o == nil || !o.Feasible {
			t.Fatalf("%s missing or infeasible", name)
		}
		if o.Summary.Rho < 1-1e-9 {
			t.Errorf("%s rho = %g < 1", name, o.Summary.Rho)
		}
		if o.MeanCosted <= 0 || o.PeakMemMB <= 0 {
			t.Errorf("%s overheads not recorded: %+v", name, o)
		}
	}
	// SDP costs fewer plans than DP on a hub workload.
	if b.Outcome("SDP").MeanCosted >= b.Outcome("DP").MeanCosted {
		t.Error("SDP did not reduce plans costed")
	}
	qt := b.QualityTable()
	for _, frag := range []string{"Star-Chain-10", "DP", "SDP", "rho"} {
		if !strings.Contains(qt, frag) {
			t.Errorf("quality table missing %q:\n%s", frag, qt)
		}
	}
	ot := b.OverheadTable()
	if !strings.Contains(ot, "Memory(MB)") || !strings.Contains(ot, "Costing") {
		t.Errorf("overhead table malformed:\n%s", ot)
	}
}

func TestRunBatchInfeasibleTechnique(t *testing.T) {
	cat := workload.PaperSchema()
	qs, err := workload.Instances(workload.Spec{Cat: cat, Topology: workload.Star, NumRelations: 12, Seed: 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A 2 MB budget kills DP on a 12-star but SDP survives.
	b, err := RunBatch("Star-12", qs, []Technique{
		TechDP(2 << 20), TechSDP(2 << 20),
	}, "SDP")
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	dpOut := b.Outcome("DP")
	if dpOut.Feasible {
		t.Error("DP should be infeasible under 2MB")
	}
	if !strings.Contains(b.QualityTable(), "*") {
		t.Error("quality table missing the * marker")
	}
	if !strings.Contains(b.OverheadTable(), "*") {
		t.Error("overhead table missing the * marker")
	}
	sdpOut := b.Outcome("SDP")
	if !sdpOut.Feasible || sdpOut.Summary.PctIdeal != 100 {
		t.Errorf("SDP reference outcome = %+v", sdpOut)
	}
}

func TestRunBatchValidation(t *testing.T) {
	cat := workload.PaperSchema()
	qs, _ := workload.Instances(workload.Spec{Cat: cat, Topology: workload.Chain, NumRelations: 4, Seed: 1}, 1)
	if _, err := RunBatch("x", nil, []Technique{TechDP(0)}, "DP"); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := RunBatch("x", qs, []Technique{TechDP(0)}, "SDP"); err == nil {
		t.Error("unknown reference accepted")
	}
	// Infeasible reference is an error.
	if _, err := RunBatch("x", qs, []Technique{TechDP(1)}, "DP"); err == nil {
		t.Error("infeasible reference accepted")
	}
}

func TestAddInfeasible(t *testing.T) {
	b := &Batch{Graph: "g"}
	b.AddInfeasible("DP")
	if len(b.Outcomes) != 1 || b.Outcomes[0].Feasible {
		t.Fatalf("outcomes = %+v", b.Outcomes)
	}
}

func TestTable22RendersSkylines(t *testing.T) {
	out, err := Table22(quickCfg())
	if err != nil {
		t.Fatalf("Table22: %v", err)
	}
	for _, frag := range []string{"Table 2.2", "RC", "CS", "RS", "hub 1"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q:\n%s", frag, out)
		}
	}
	if !strings.Contains(out, "survives") {
		t.Errorf("no survivors rendered:\n%s", out)
	}
}

func TestFigure22Walkthrough(t *testing.T) {
	out, err := Figure22(quickCfg())
	if err != nil {
		t.Fatalf("Figure22: %v", err)
	}
	for _, frag := range []string{"Level 2", "PruneGroup", "Figure 2.3: FV(", "plans costed"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q:\n%s", frag, out)
		}
	}
}

func TestTable23SkylineOptions(t *testing.T) {
	cfg := quickCfg()
	cfg.Instances = 4
	out, err := Table23(cfg)
	if err != nil {
		t.Fatalf("Table23: %v", err)
	}
	for _, frag := range []string{"Opt1", "Opt2", "rho"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q:\n%s", frag, out)
		}
	}
}

func TestRegistryLookup(t *testing.T) {
	if len(Registry) < 15 {
		t.Fatalf("registry has %d experiments", len(Registry))
	}
	seen := map[string]bool{}
	for _, e := range Registry {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	e, err := Lookup("tab2.2")
	if err != nil || e.ID != "tab2.2" {
		t.Errorf("Lookup: %v %v", e, err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup accepted unknown id")
	}
}

func TestTable21SmallBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("table 2.1 runs exhaustive DP")
	}
	// A 16 MB budget moves the star cliff to ~12 relations, keeping the
	// test quick while exercising the * path.
	cfg := Config{Seed: 1, Budget: 16 << 20}
	out, err := Table21(cfg)
	if err != nil {
		t.Fatalf("Table21: %v", err)
	}
	if !strings.Contains(out, "*") {
		t.Errorf("expected a star infeasibility marker:\n%s", out)
	}
	if !strings.Contains(out, "28") {
		t.Errorf("chain-28 row missing:\n%s", out)
	}
}

func TestStarChainBatchSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs exhaustive DP on star-chain-12")
	}
	cfg := Config{Instances: 2, Seed: 5}
	b, err := cfg.starChainBatch(12, 2, true, false)
	if err != nil {
		t.Fatalf("starChainBatch: %v", err)
	}
	if b.Outcome("SDP") == nil || b.Outcome("DP") == nil {
		t.Fatal("missing outcomes")
	}
	for _, o := range b.Outcomes {
		if o.Feasible && o.Summary.Rho < 1-1e-9 {
			t.Errorf("%s rho below 1", o.Name)
		}
	}
}

func TestOrderedStarBatchSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs exhaustive DP")
	}
	cfg := Config{Instances: 2, Seed: 5}
	b, err := cfg.starBatch(10, 2, true, true)
	if err != nil {
		t.Fatalf("starBatch ordered: %v", err)
	}
	if got := b.Graph; !strings.HasPrefix(got, "Ord-") {
		t.Errorf("graph label = %q", got)
	}
}

func TestAblationPriorArtSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs exhaustive DP on star-chain-15")
	}
	cfg := Config{Instances: 1, Seed: 3}
	out, err := AblationPriorArt(cfg)
	if err != nil {
		t.Fatalf("AblationPriorArt: %v", err)
	}
	for _, name := range []string{"DP", "SDP", "GOO", "II", "SA", "GEQO"} {
		if !strings.Contains(out, name) {
			t.Errorf("missing %s row:\n%s", name, out)
		}
	}
}

func TestBatchCSV(t *testing.T) {
	b := &Batch{Graph: "G"}
	b.Outcomes = append(b.Outcomes, TechOutcome{Name: "DP", Feasible: true, Reference: true})
	b.Outcomes[0].Summary.PctIdeal = 100
	b.Outcomes[0].Summary.Rho = 1
	b.Outcomes[0].Summary.Worst = 1
	b.AddInfeasible("BIG")
	csv := b.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "graph,technique,feasible") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(csv, "G,BIG,false") {
		t.Errorf("infeasible row missing:\n%s", csv)
	}
	if !strings.Contains(csv, "G,DP,true,100.0") {
		t.Errorf("DP row missing:\n%s", csv)
	}
}

func TestRunBatchWorkersMatchesSerial(t *testing.T) {
	cat := workload.PaperSchema()
	qs, err := workload.Instances(workload.Spec{Cat: cat, Topology: workload.StarChain, NumRelations: 9, Seed: 13}, 6)
	if err != nil {
		t.Fatal(err)
	}
	budget := memo.DefaultBudget
	techs := func() []Technique {
		return []Technique{TechDP(budget), TechIDP(7, budget), TechSDP(budget)}
	}
	serial, err := RunBatch("g", qs, techs(), "DP")
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunBatchWorkers("g", qs, techs(), "DP", 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Outcomes {
		s, p := serial.Outcomes[i], parallel.Outcomes[i]
		if s.Name != p.Name || s.Feasible != p.Feasible {
			t.Fatalf("outcome %d metadata differs", i)
		}
		if len(s.Ratios) != len(p.Ratios) {
			t.Fatalf("%s: ratios %d vs %d", s.Name, len(s.Ratios), len(p.Ratios))
		}
		for j := range s.Ratios {
			if s.Ratios[j] != p.Ratios[j] {
				t.Fatalf("%s ratio %d: %g vs %g", s.Name, j, s.Ratios[j], p.Ratios[j])
			}
		}
		if s.Summary.Rho != p.Summary.Rho {
			t.Fatalf("%s rho differs: %g vs %g", s.Name, s.Summary.Rho, p.Summary.Rho)
		}
	}
}

func TestRunBatchWorkersInfeasibleTech(t *testing.T) {
	cat := workload.PaperSchema()
	qs, err := workload.Instances(workload.Spec{Cat: cat, Topology: workload.Star, NumRelations: 12, Seed: 13}, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBatchWorkers("g", qs, []Technique{TechDP(2 << 20), TechSDP(2 << 20)}, "SDP", 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.Outcome("DP").Feasible {
		t.Error("DP should be infeasible")
	}
	if !b.Outcome("SDP").Feasible {
		t.Error("SDP should be feasible")
	}
}

func TestExtEstimation(t *testing.T) {
	out, err := ExtEstimation(Config{Instances: 2, Seed: 5})
	if err != nil {
		t.Fatalf("ExtEstimation: %v", err)
	}
	if !strings.Contains(out, "mean |log10 error|") {
		t.Errorf("missing summary line:\n%s", out)
	}
	// The CDF estimate must beat the uniform assumption on skewed data.
	var u, c float64
	if _, err := fmt.Sscanf(out[strings.Index(out, "uniform="):], "uniform=%f cdf=%f", &u, &c); err != nil {
		t.Fatalf("cannot parse summary: %v\n%s", err, out)
	}
	if c >= u {
		t.Errorf("CDF error %g not better than uniform %g", c, u)
	}
}

func TestExtValidateIdenticalMultisets(t *testing.T) {
	out, err := ExtValidate(Config{Seed: 5})
	if err != nil {
		t.Fatalf("ExtValidate: %v", err)
	}
	if strings.Contains(out, "MISMATCH") {
		t.Errorf("plan results diverged:\n%s", out)
	}
	if got := strings.Count(out, "IDENTICAL"); got != 3 {
		t.Errorf("IDENTICAL rows = %d, want 3:\n%s", got, out)
	}
}
