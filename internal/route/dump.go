package route

import (
	"sort"
	"time"
)

// Profile is one latency or regret EWMA in a Dump.
type Profile struct {
	Tech  string `json:"tech"`
	Shape string `json:"shape"`
	Band  string `json:"band"`
	// Samples is how many observations the EWMA has absorbed.
	Samples int64 `json:"samples"`
	// EWMA is the smoothed value: milliseconds for latency profiles, a
	// cost ratio for regret profiles. Last and Max are the most recent and
	// largest raw observations.
	EWMA float64 `json:"ewma"`
	Last float64 `json:"last"`
	Max  float64 `json:"max"`
}

// DecisionCount is one (technique, reason) tally of executed routes.
type DecisionCount struct {
	Technique string `json:"technique"`
	Reason    string `json:"reason"`
	Count     int64  `json:"count"`
}

// TableRow is one entry in the live decision table: what Decide would
// return right now for a representative (shape, rels, deadline) input.
type TableRow struct {
	Shape string `json:"shape"`
	Rels  int    `json:"rels"`
	Band  string `json:"band"`
	// DeadlineMS is the remaining deadline fed to Decide; 0 means none.
	DeadlineMS  int64   `json:"deadline_ms"`
	Technique   string  `json:"technique"`
	Reason      string  `json:"reason"`
	PredictedMS float64 `json:"predicted_ms"`
	ReserveMS   float64 `json:"reserve_ms"`
}

// DumpConfig echoes the router thresholds so a dump is self-describing.
type DumpConfig struct {
	SmallRels        int     `json:"small_rels"`
	HeavyRels        int     `json:"heavy_rels"`
	DemoteRho        float64 `json:"demote_rho"`
	MinRegretSamples int64   `json:"min_regret_samples"`
	SafetyFactor     float64 `json:"safety_factor"`
	LatencyAlpha     float64 `json:"latency_alpha"`
	RegretAlpha      float64 `json:"regret_alpha"`
	MinReserveMS     float64 `json:"min_reserve_ms"`
	MaxReserveMS     float64 `json:"max_reserve_ms"`
	ExactRels        int     `json:"exact_rels"`
	StaleScore       float64 `json:"stale_score"`
}

// Dump is the /debug/routes.json document: config, executed-decision
// tallies, live latency and regret profiles, and the decision table the
// current profile state implies.
type Dump struct {
	Time      time.Time       `json:"time"`
	Config    DumpConfig      `json:"config"`
	Fallbacks int64           `json:"fallbacks"`
	Decisions []DecisionCount `json:"decisions,omitempty"`
	Latency   []Profile       `json:"latency,omitempty"`
	Regret    []Profile       `json:"regret,omitempty"`
	Table     []TableRow      `json:"table"`
}

// tableShapes are the topologies the decision table samples; tableRels one
// representative relation count per band; tableDeadlines the remaining-
// deadline columns (0 = no deadline).
var (
	tableShapes    = []string{"chain", "star", "star-chain", "tree", "clique"}
	tableRels      = []int{3, 7, 11, 15, 20, 25}
	tableDeadlines = []time.Duration{0, 25 * time.Millisecond, 250 * time.Millisecond, 2500 * time.Millisecond}
)

// Snapshot serializes the router state. Nil-safe (returns an empty dump
// with no table).
func (r *Router) Snapshot() *Dump {
	d := &Dump{Time: time.Now()}
	if r == nil {
		return d
	}
	d.Config = DumpConfig{
		SmallRels:        r.opts.SmallRels,
		HeavyRels:        r.opts.HeavyRels,
		DemoteRho:        r.opts.DemoteRho,
		MinRegretSamples: r.opts.MinRegretSamples,
		SafetyFactor:     r.opts.SafetyFactor,
		LatencyAlpha:     r.opts.LatencyAlpha,
		RegretAlpha:      r.opts.RegretAlpha,
		MinReserveMS:     ms(r.opts.MinReserve),
		MaxReserveMS:     ms(r.opts.MaxReserve),
		ExactRels:        r.opts.ExactRels,
		StaleScore:       r.opts.StaleScore,
	}

	r.mu.RLock()
	d.Fallbacks = r.fallbacks
	for k, n := range r.decisions {
		d.Decisions = append(d.Decisions, DecisionCount{Technique: k[0], Reason: k[1], Count: n})
	}
	for k, e := range r.lat {
		d.Latency = append(d.Latency, Profile{
			Tech: k.tech, Shape: k.shape, Band: k.band,
			Samples: e.n, EWMA: e.val / 1e6, Last: e.last / 1e6, Max: e.max / 1e6,
		})
	}
	for k, e := range r.reg {
		d.Regret = append(d.Regret, Profile{
			Tech: k.tech, Shape: k.shape, Band: k.band,
			Samples: e.n, EWMA: e.val, Last: e.last, Max: e.max,
		})
	}
	r.mu.RUnlock()

	sort.Slice(d.Decisions, func(i, j int) bool {
		a, b := d.Decisions[i], d.Decisions[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		if a.Technique != b.Technique {
			return a.Technique < b.Technique
		}
		return a.Reason < b.Reason
	})
	sortProfiles(d.Latency)
	sortProfiles(d.Regret)

	// The live decision table: Decide over representative inputs, so the
	// page shows what the router would do right now — priors where no
	// traffic has taught it yet, learned EWMAs where it has.
	for _, shape := range tableShapes {
		for _, rels := range tableRels {
			for _, dl := range tableDeadlines {
				dec := r.Decide(rels, shape, dl)
				d.Table = append(d.Table, TableRow{
					Shape: shape, Rels: rels, Band: Band(rels),
					DeadlineMS:  dl.Milliseconds(),
					Technique:   dec.Technique,
					Reason:      dec.Reason,
					PredictedMS: ms(dec.Predicted),
					ReserveMS:   ms(dec.Reserve),
				})
			}
		}
	}
	return d
}

func sortProfiles(ps []Profile) {
	sort.Slice(ps, func(i, j int) bool {
		a, b := ps[i], ps[j]
		if a.Tech != b.Tech {
			return a.Tech < b.Tech
		}
		if a.Shape != b.Shape {
			return a.Shape < b.Shape
		}
		return a.Band < b.Band
	})
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }
