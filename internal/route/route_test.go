package route

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDecisionTableGolden pins the full decision ladder as a golden table:
// shape × relation band × remaining deadline → (technique, reason), on a
// cold router (priors only). Any change to the routing policy must show up
// here as an explicit diff.
func TestDecisionTableGolden(t *testing.T) {
	r := New(Options{})
	none := time.Duration(0)
	cases := []struct {
		shape    string
		rels     int
		deadline time.Duration
		tech     string
		reason   string
	}{
		// Fast path: small queries route greedy regardless of shape...
		{"star", 3, none, TechGreedy, ReasonFastPath},
		{"clique", 4, none, TechGreedy, ReasonFastPath},
		// ...and chain-like shapes route greedy regardless of size: GOO's
		// neighborhood ordering is near-ideal on chains.
		{"chain", 12, none, TechGreedy, ReasonFastPath},
		{"chain", 25, none, TechGreedy, ReasonFastPath},
		{"single", 1, none, TechGreedy, ReasonFastPath},

		// The SDP default covers the middle.
		{"star", 7, none, TechSDP, ReasonDefault},
		{"star", 12, none, TechSDP, ReasonDefault},
		{"star-chain", 15, none, TechSDP, ReasonDefault},
		{"tree", 16, none, TechSDP, ReasonDefault},
		{"clique", 10, none, TechSDP, ReasonDefault},

		// Heavy tail: IDP where full SDP risks the memory cliff.
		{"star", 20, none, TechIDP, ReasonHeavy},
		{"clique", 25, none, TechIDP, ReasonHeavy},

		// Deadline downgrades: the cold prior for SDP at 13-16 rels is
		// 60ms ×2 safety — a 25ms deadline cannot fit it, so the ladder
		// walks down to greedy; a generous deadline keeps SDP.
		{"star-chain", 15, 25 * time.Millisecond, TechGreedy, ReasonDeadlineDowngrade},
		{"star-chain", 15, 2500 * time.Millisecond, TechSDP, ReasonDefault},
		{"star", 12, 5 * time.Millisecond, TechGreedy, ReasonDeadlineDowngrade},
		// Heavy tail under deadlines: IDP2's 40ms prior at 17-24 rels fits
		// ×2 safety into 250ms, but not into 60ms — greedy absorbs that.
		{"star", 20, 250 * time.Millisecond, TechIDP, ReasonHeavy},
		{"star", 20, 60 * time.Millisecond, TechGreedy, ReasonDeadlineDowngrade},
		// A mid-band deadline squeeze lands on the IDP2 middle rung: SDP's
		// 60ms prior fails ×2 safety against 45ms but IDP2's 15ms fits.
		{"star-chain", 15, 45 * time.Millisecond, TechIDP, ReasonDeadlineDowngrade},
		// An impossible deadline still resolves to greedy, never an error.
		{"star", 12, time.Microsecond, TechGreedy, ReasonDeadlineDowngrade},
	}
	for _, c := range cases {
		got := r.Decide(c.rels, c.shape, c.deadline)
		if got.Technique != c.tech || got.Reason != c.reason {
			t.Errorf("Decide(%d, %q, %v) = (%s, %s); want (%s, %s)",
				c.rels, c.shape, c.deadline, got.Technique, got.Reason, c.tech, c.reason)
		}
		if got.Technique != TechGreedy && c.deadline > 0 && got.Reserve <= 0 {
			t.Errorf("Decide(%d, %q, %v): expected a fallback reserve, got %v",
				c.rels, c.shape, c.deadline, got.Reserve)
		}
		if got.Predicted <= 0 {
			t.Errorf("Decide(%d, %q, %v): non-positive prediction %v",
				c.rels, c.shape, c.deadline, got.Predicted)
		}
	}
}

// TestRegretFeedbackDemotesRoute drives the feedback loop: a fast-path key
// whose rolling ρ degrades past DemoteRho is promoted back to SDP, but only
// after MinRegretSamples observations, and an unrelated key is unaffected.
func TestRegretFeedbackDemotesRoute(t *testing.T) {
	r := New(Options{MinRegretSamples: 4})
	band := Band(12)

	// Three bad ratios: below the sample floor, route unchanged.
	for i := 0; i < 3; i++ {
		r.NoteRegret(TechGreedy, "chain", band, 3.0)
	}
	if d := r.Decide(12, "chain", 0); d.Technique != TechGreedy {
		t.Fatalf("below sample floor: got %s/%s, want greedy fast path", d.Technique, d.Reason)
	}

	// Fourth bad ratio crosses the floor; the EWMA is far above 1.15.
	r.NoteRegret(TechGreedy, "chain", band, 3.0)
	d := r.Decide(12, "chain", 0)
	if d.Technique != TechSDP || d.Reason != ReasonRegretPromote {
		t.Fatalf("after degradation: got %s/%s, want sdp/%s", d.Technique, d.Reason, ReasonRegretPromote)
	}

	// A different shape's fast path is untouched.
	if d := r.Decide(3, "star", 0); d.Technique != TechGreedy {
		t.Fatalf("unrelated key demoted: got %s/%s", d.Technique, d.Reason)
	}
}

// TestObserveLearnsLatency checks that measured latencies displace the
// priors and that timed-out runs inflate the estimate, which is what turns
// repeated mid-flight demotions into pre-flight downgrades.
func TestObserveLearnsLatency(t *testing.T) {
	r := New(Options{})
	band := Band(15)

	// Cold prediction is the prior (60ms for sdp at 13-16).
	if got := r.Predict(TechSDP, "star-chain", band); got != 60*time.Millisecond {
		t.Fatalf("cold prior = %v, want 60ms", got)
	}

	// A fast measurement pulls the estimate down; the 25ms deadline that
	// was downgraded on priors now fits SDP.
	r.Observe(TechSDP, "star-chain", band, 2*time.Millisecond, false)
	if got := r.Predict(TechSDP, "star-chain", band); got != 2*time.Millisecond {
		t.Fatalf("after one sample: predict = %v, want 2ms", got)
	}
	if d := r.Decide(15, "star-chain", 25*time.Millisecond); d.Technique != TechSDP {
		t.Fatalf("learned-fast SDP still downgraded: %s/%s", d.Technique, d.Reason)
	}

	// Timed-out observations count double, ratcheting the estimate up.
	before := r.Predict(TechSDP, "star-chain", band)
	r.Observe(TechSDP, "star-chain", band, 100*time.Millisecond, true)
	if after := r.Predict(TechSDP, "star-chain", band); after <= before {
		t.Fatalf("timeout inflation had no effect: %v -> %v", before, after)
	}
}

// TestConcurrentDecideAndUpdate hammers route lookups while profiles are
// being updated from other goroutines; run under -race this is the data
// race guard the issue asks for.
func TestConcurrentDecideAndUpdate(t *testing.T) {
	r := New(Options{})
	shapes := []string{"chain", "star", "star-chain", "clique"}
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			i := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				shape := shapes[i%len(shapes)]
				rels := 1 + i%25
				band := Band(rels)
				r.Observe(TechSDP, shape, band, time.Duration(1+i%50)*time.Millisecond, i%7 == 0)
				r.NoteRegret(TechGreedy, shape, band, 1.0+float64(i%10)/4)
				r.Count(TechGreedy, ReasonFastPath)
				i++
			}
		}(w)
	}

	deadlines := []time.Duration{0, 10 * time.Millisecond, 100 * time.Millisecond, time.Second}
	for i := 0; i < 4000; i++ {
		shape := shapes[i%len(shapes)]
		d := r.Decide(1+i%25, shape, deadlines[i%len(deadlines)])
		if d.Technique == "" || d.Reason == "" {
			t.Fatalf("empty decision for %s/%d", shape, 1+i%25)
		}
		if i%500 == 0 {
			_ = r.Snapshot()
		}
	}
	close(stop)
	wg.Wait()
}

// TestSnapshotAndHandlers sanity-checks the debug surfaces: the JSON dump
// round-trips with a populated decision table and the HTML page renders.
func TestSnapshotAndHandlers(t *testing.T) {
	r := New(Options{})
	r.Observe(TechSDP, "star", Band(12), 9*time.Millisecond, false)
	r.NoteRegret(TechGreedy, "chain", Band(12), 1.02)
	r.Count(TechGreedy, ReasonFastPath)
	r.Count(TechGreedy, ReasonDeadlineDemote)

	rec := httptest.NewRecorder()
	r.JSONHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/routes.json", nil))
	var d Dump
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatalf("routes.json does not decode: %v", err)
	}
	if len(d.Table) == 0 {
		t.Fatal("dump has an empty decision table")
	}
	if d.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1 (from the deadline-demote count)", d.Fallbacks)
	}
	if len(d.Latency) != 1 || d.Latency[0].Samples != 1 {
		t.Fatalf("latency profiles = %+v, want one single-sample entry", d.Latency)
	}

	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/routes", nil))
	body := rec.Body.String()
	for _, want := range []string{"Decision table", "auto:greedy-fastpath", "Latency profiles"} {
		if !strings.Contains(body, want) {
			t.Errorf("debug page missing %q", want)
		}
	}

	// Nil router stays safe for optional wiring.
	if d := (*Router)(nil).Snapshot(); len(d.Table) != 0 {
		t.Fatal("nil snapshot should have no table")
	}
}

// TestExactTierStaleDemotion proves the cardinality-feedback coupling: with
// the exact tier enabled, a healthy shape earns exhaustive DP while a
// stale-flagged one is demoted to the robust heuristic.
func TestExactTierStaleDemotion(t *testing.T) {
	r := New(Options{ExactRels: 12})

	healthy := r.DecideObserved(10, "star", 0, 0)
	if healthy.Technique != TechDP || healthy.Reason != ReasonExact {
		t.Fatalf("healthy 10-rel star = %s/%s, want dp/%s", healthy.Technique, healthy.Reason, ReasonExact)
	}
	stale := r.DecideObserved(10, "star", 0, 0.8)
	if stale.Technique != TechSDP || stale.Reason != ReasonStaleDemote {
		t.Fatalf("stale 10-rel star = %s/%s, want sdp/%s", stale.Technique, stale.Reason, ReasonStaleDemote)
	}
	// Below the staleness threshold the exact tier holds.
	if mild := r.DecideObserved(10, "star", 0, 0.3); mild.Technique != TechDP {
		t.Fatalf("mildly-stale shape demoted: %s/%s", mild.Technique, mild.Reason)
	}
	// The fast path and heavy tail are untouched by the exact tier.
	if d := r.DecideObserved(3, "star", 0, 0); d.Technique != TechGreedy {
		t.Fatalf("small query = %s, want greedy", d.Technique)
	}
	if d := r.DecideObserved(25, "clique", 0, 0); d.Technique != TechIDP {
		t.Fatalf("heavy query = %s, want idp2", d.Technique)
	}
	// A deadline the DP prior cannot fit walks the ladder down from dp.
	if d := r.DecideObserved(10, "star", 40*time.Millisecond, 0); d.Technique == TechDP {
		t.Fatalf("40ms deadline kept dp (predicted %v)", d.Predicted)
	} else if d.Reason != ReasonDeadlineDowngrade {
		t.Fatalf("deadline-squeezed exact tier reason = %s", d.Reason)
	}

	// Without the opt-in, staleness or not, DP is never routed.
	def := New(Options{})
	for _, s := range []float64{0, 0.9} {
		if d := def.DecideObserved(10, "star", 0, s); d.Technique == TechDP {
			t.Fatalf("default router routed dp (staleness %g)", s)
		}
	}
	// Decide is DecideObserved at staleness zero.
	if a, b := def.Decide(10, "star", 0), def.DecideObserved(10, "star", 0, 0); a != b {
		t.Fatalf("Decide %+v != DecideObserved(…, 0) %+v", a, b)
	}
}
