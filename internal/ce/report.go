package ce

import (
	"fmt"
	"strings"
)

// String renders the report as the sdplab robust table: one block per
// topology, one row per (health, band, technique).
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Robustness under cardinality error (mode=%s, seed=%d, %d instances/topology)\n",
		r.Mode, r.Seed, r.Instances)
	fmt.Fprintf(&b, "ρ = geomean(true cost of chosen plan / true optimum); q-error over join-node cardinalities\n")
	for _, tr := range r.Topologies {
		fmt.Fprintf(&b, "\n%s\n", tr.Graph)
		fmt.Fprintf(&b, "  %-7s %-6s %-8s %9s %9s %8s %8s %8s %7s %7s\n",
			"health", "band", "tech", "rho", "worst", "q50", "q95", "qmax", "alive", "paths")
		for _, c := range tr.Cells {
			flag := ""
			if c.Infeasible > 0 {
				flag = fmt.Sprintf("  (%d infeasible)", c.Infeasible)
			}
			fmt.Fprintf(&b, "  %-7.2f %-6.1f %-8s %9.4f %9.4f %8.2f %8.2f %8.2f %7.0f %7.0f%s\n",
				c.Health, c.Band, c.Tech, c.Rho, c.Worst,
				c.QErrP50, c.QErrP95, c.QErrMax,
				c.MeanClassesAlive, c.MeanPathsRetained, flag)
		}
	}
	if r.Exec != nil {
		e := r.Exec
		fmt.Fprintf(&b, "\nExecution validation (%s, ≤%d rows/relation)\n", e.Graph, e.MaxRows)
		fmt.Fprintf(&b, "  true-model q-error over %d executed join nodes: p50=%.2f p95=%.2f max=%.2f\n",
			e.JoinNodes, e.ModelQErrP50, e.ModelQErrP95, e.ModelQErrMax)
		match := "identical"
		if !e.FingerprintsMatch {
			match = "DIFFERENT — executor or plan bug"
		}
		fmt.Fprintf(&b, "  result multiset at band %.1f vs truth: %s\n", e.WorstBand, match)
	}
	return b.String()
}

// CheckReference asserts the sweep's anchor invariants, the CI smoke
// contract: at band 1 / health 1 the injector is the identity, so DP — the
// reference technique — must land exactly on the true optimum (ρ = 1 within
// floating-point dust), and no technique may beat the optimum (ρ ≥ 1)
// anywhere. A violation means the estimator extraction, Recost, or frame
// mirroring broke.
func (r *Report) CheckReference() error {
	const eps = 1e-9
	for _, tr := range r.Topologies {
		for _, c := range tr.Cells {
			if c.Infeasible == 0 && c.Rho < 1-eps {
				return fmt.Errorf("ce: %s %s at band=%g health=%g has rho %.12f < 1 — chosen plan beat the \"optimum\"",
					tr.Graph, c.Tech, c.Band, c.Health, c.Rho)
			}
			if c.Tech == "dp" && c.Band == 1 && c.Health == 1 {
				if c.Rho > 1+eps || c.Worst > 1+eps {
					return fmt.Errorf("ce: %s dp at band=1 health=1 has rho=%.12f worst=%.12f — identity injection changed a plan",
						tr.Graph, c.Rho, c.Worst)
				}
			}
		}
	}
	if r.Exec != nil && !r.Exec.FingerprintsMatch {
		return fmt.Errorf("ce: execution fingerprints differ between the true plan and the band-%g plan", r.Exec.WorstBand)
	}
	return nil
}
