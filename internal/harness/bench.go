package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"sdpopt/internal/ce"
	"sdpopt/internal/core"
	"sdpopt/internal/dp"
	"sdpopt/internal/loadgen"
	"sdpopt/internal/obs/regret"
	"sdpopt/internal/obs/span"
	"sdpopt/internal/plan"
	"sdpopt/internal/plancache"
	"sdpopt/internal/query"
	"sdpopt/internal/server"
	"sdpopt/internal/workload"
)

// BenchTech is one technique's aggregate overheads in a benchmark batch —
// the machine-readable form of one OverheadTable row.
type BenchTech struct {
	Name            string  `json:"name"`
	Feasible        bool    `json:"feasible"`
	MeanTimeSeconds float64 `json:"mean_time_seconds"`
	MeanPlansCosted float64 `json:"mean_plans_costed"`
	// MeanPairsConsidered vs MeanPairsConnected tracks enumeration
	// efficiency: candidate class pairs examined against pairs that
	// survived the disjoint+connected filter (identical across enumeration
	// strategies; considered shrinks as the adjacency index improves).
	MeanPairsConsidered float64 `json:"mean_pairs_considered"`
	MeanPairsConnected  float64 `json:"mean_pairs_connected"`
	PeakMemMB           float64 `json:"peak_mem_mb"`
	// Rho is the geometric-mean plan-cost ratio to the reference (0 when
	// infeasible).
	Rho float64 `json:"rho"`
	// WorstRatio is the worst-case plan-cost ratio to the reference (0
	// when infeasible).
	WorstRatio float64 `json:"worst_ratio"`
}

// BenchBatch is one workload's benchmark outcome.
type BenchBatch struct {
	Graph      string      `json:"graph"`
	Instances  int         `json:"instances"`
	Reference  string      `json:"reference"`
	Techniques []BenchTech `json:"techniques"`
}

// BenchReport is the schema of the BENCH_<date>.json files `sdplab bench`
// emits: per-technique plans-costed / time / peak simulated memory over a
// fixed workload set, for regression tracking across commits.
type BenchReport struct {
	Date      string       `json:"date"`
	Seed      int64        `json:"seed"`
	Instances int          `json:"instances"`
	Host      BenchHost    `json:"host"`
	Batches   []BenchBatch `json:"batches"`
	// Cache reports the plan-cache cold/warm comparison (see CacheBench).
	Cache *CacheBench `json:"cache,omitempty"`
	// Parallel reports the enumeration-worker scaling curve (see
	// ParallelBench).
	Parallel *ParallelBench `json:"parallel,omitempty"`
	// Tracing reports the span-tracing overhead comparison (see
	// TracingBench).
	Tracing *TracingBench `json:"tracing,omitempty"`
	// Regret reports the shadow re-optimization layer's serving overhead
	// and the per-technique regret it measured (see RegretBench).
	Regret *RegretBench `json:"regret,omitempty"`
	// Load reports the routed-vs-always-SDP open-loop load comparison
	// (see LoadBench).
	Load *LoadBench `json:"load,omitempty"`
	// Robustness reports plan quality under injected cardinality error and
	// degraded statistics: ρ per (technique, topology, error band, stats
	// health) with q-error quantiles and escape-hatch counts (see
	// ce.Report).
	Robustness *ce.Report `json:"robustness,omitempty"`
	// Feedback reports the cardinality feedback ledger's end-to-end
	// measurement: exec-sampled estimate-vs-actual q-errors on a skewed
	// catalog, healthy vs stats-degraded (see FeedbackBench).
	Feedback *FeedbackBench `json:"feedback,omitempty"`
	// LargeQuery reports the beyond-64-relation validation workloads:
	// Star-30, Clique-25 and Chain-40 over extended schemas, with
	// per-technique feasibility, enumeration-pair counts and peak simulated
	// memory (see LargeQueryBench).
	LargeQuery *LargeQueryBench `json:"large_query,omitempty"`
}

// LargeQueryBench is the multi-word-bitset validation section: workloads
// wide enough that a single machine word cannot represent their relation
// sets, each batch recording which techniques survive the memory budget and
// how much enumeration work the survivors do. Chain-40 is the headline
// comparison — exhaustive DP is feasible there, and the batch runs the
// default DPccp enumerator next to the retained DPsize generate-and-filter
// scan, so mean_pairs_considered exposes the enumeration-work gap (the
// csg-cmp pair count (n³−n)/6 = 10 660 against the scan's ~274 k generated
// candidates) while both report identical plans, costings and memory.
type LargeQueryBench struct {
	Batches []BenchBatch `json:"batches"`
}

// LoadBench is the serving-under-load comparison: the same open-loop
// mixed-topology workload driven twice against an in-process server —
// once with technique:"auto" (the router picks per request) and once
// always-SDP — at the same arrival schedule and per-request deadline.
// The router's claim is that its p99 is strictly lower (the heavy tail
// is fast-pathed or deadline-downgraded to greedy) at bounded
// plan-quality cost (routed mean ρ stays near 1).
type LoadBench struct {
	Mix             string          `json:"mix"`
	QPS             float64         `json:"qps"`
	DurationSeconds float64         `json:"duration_seconds"`
	Arrivals        string          `json:"arrivals"`
	Routed          *loadgen.Report `json:"routed"`
	Baseline        *loadgen.Report `json:"baseline"`
	// P99Ratio is the baseline p99 over the routed p99 — > 1 means
	// routing wins the tail.
	P99Ratio float64 `json:"p99_ratio"`
}

// BenchHost records the machine the report was produced on — without it the
// parallel scaling numbers are uninterpretable (a 1-CPU container cannot
// show a speedup no matter how good the engine is).
type BenchHost struct {
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
}

// ParallelBench is the scaling curve of the level-synchronous parallel
// enumeration engine: the same technique over the same workload at
// increasing enumeration-worker counts. Speedups are self-relative to the
// 1-worker point; Identical confirms the determinism contract held (every
// point produced bit-for-bit the 1-worker plans).
type ParallelBench struct {
	Graph     string          `json:"graph"`
	Relations int             `json:"relations"`
	Technique string          `json:"technique"`
	Instances int             `json:"instances"`
	Points    []ParallelPoint `json:"points"`
}

// ParallelPoint is one worker count's measurement in a ParallelBench.
type ParallelPoint struct {
	Workers     int     `json:"workers"`
	MeanSeconds float64 `json:"mean_seconds"`
	// Speedup is the 1-worker mean time over this point's — self-relative,
	// so 1.0 at workers=1 by construction.
	Speedup float64 `json:"speedup"`
	// Identical reports that every instance's plan cost matched the
	// 1-worker run's bit-for-bit.
	Identical bool `json:"identical"`
}

// CacheBench measures what the plan cache buys a serving deployment: one
// cold pass over a workload (every instance a miss) followed by one warm
// pass (every instance a hit), same queries, same technique.
type CacheBench struct {
	Graph           string  `json:"graph"`
	Technique       string  `json:"technique"`
	Instances       int     `json:"instances"`
	ColdMeanSeconds float64 `json:"cold_mean_seconds"`
	WarmMeanSeconds float64 `json:"warm_mean_seconds"`
	// Speedup is cold/warm mean time — the factor a repeated query shape
	// is served faster.
	Speedup float64 `json:"speedup"`
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// TracingBench measures what request-scoped span tracing costs the
// optimizer: the same technique over the same workload, once with no span
// in the context and once under a full request span recorded into a flight
// recorder. Overhead is the regression guard — the traced path must stay
// within noise of the untraced one, because spans observe at level
// barriers rather than inside the enumeration hot loop.
type TracingBench struct {
	Graph          string  `json:"graph"`
	Technique      string  `json:"technique"`
	Instances      int     `json:"instances"`
	OffMeanSeconds float64 `json:"off_mean_seconds"`
	OnMeanSeconds  float64 `json:"on_mean_seconds"`
	// Overhead is the traced mean over the untraced mean — 1.0 means
	// tracing is free.
	Overhead float64 `json:"overhead"`
}

// benchBatch converts a harness batch into its benchmark record.
func benchBatch(b *Batch) BenchBatch {
	out := BenchBatch{Graph: b.Graph, Instances: b.Instances, Reference: b.Reference}
	for _, o := range b.Outcomes {
		t := BenchTech{
			Name:                o.Name,
			Feasible:            o.Feasible,
			MeanTimeSeconds:     o.MeanTime.Seconds(),
			MeanPlansCosted:     o.MeanCosted,
			MeanPairsConsidered: o.MeanPairsConsidered,
			MeanPairsConnected:  o.MeanPairsConnected,
			PeakMemMB:           o.PeakMemMB,
		}
		if o.Feasible {
			t.Rho = o.Summary.Rho
			t.WorstRatio = o.Summary.Worst
		}
		out.Techniques = append(out.Techniques, t)
	}
	return out
}

// Bench runs the benchmark workload set — the paper's two main overhead
// configurations (Star-Chain-15 with DP as reference, Star-17 beyond DP's
// feasibility) — and returns the machine-readable report.
func Bench(c Config, date time.Time) (*BenchReport, error) {
	r := &BenchReport{
		Date:      date.Format("2006-01-02"),
		Seed:      c.Seed,
		Instances: c.Instances,
		Host:      BenchHost{NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0)},
	}
	for _, run := range []struct {
		batch func() (*Batch, error)
	}{
		{func() (*Batch, error) { return c.starChainBatch(15, 5, true, false) }},
		{func() (*Batch, error) { return c.starBatch(17, 5, false, false) }},
	} {
		b, err := run.batch()
		if err != nil {
			return nil, err
		}
		r.Batches = append(r.Batches, benchBatch(b))
	}
	cb, err := benchCache(c)
	if err != nil {
		return nil, err
	}
	r.Cache = cb
	pb, err := benchParallel(c)
	if err != nil {
		return nil, err
	}
	r.Parallel = pb
	tb, err := benchTracing(c)
	if err != nil {
		return nil, err
	}
	r.Tracing = tb
	rb, err := benchRegret(c)
	if err != nil {
		return nil, err
	}
	r.Regret = rb
	lb, err := benchLoad(c)
	if err != nil {
		return nil, err
	}
	r.Load = lb
	ceb, err := benchRobustness(c)
	if err != nil {
		return nil, err
	}
	r.Robustness = ceb
	fb, err := benchFeedback(c)
	if err != nil {
		return nil, err
	}
	r.Feedback = fb
	lq, err := benchLargeQuery(c)
	if err != nil {
		return nil, err
	}
	r.LargeQuery = lq
	return r, nil
}

// benchLargeQuery runs the beyond-64-relation workloads. Technique choices
// per batch follow measured feasibility on the 1 GB budget:
//
//   - Star-30: SDP finishes in seconds (hub pruning collapses the spoke
//     combinations), so it is the reference, with IDP2 and greedy beside it.
//   - Clique-25: nothing prunes a clique — SDP degenerates to exhaustive
//     enumeration and grinds ~40 s to its budget abort, so it is recorded
//     as a static infeasible row rather than re-probed every run; greedy is
//     the reference and IDP2 the quality comparison.
//   - Chain-40: exhaustive DP is feasible (the chain's csg-cmp pair count
//     is cubic), so DP is the reference and the batch carries the DPsize
//     scan ("DP-size"), SDP, IDP2 and greedy beside it.
//
// Exhaustive DP is statically infeasible on Star-30 and Clique-25 exactly
// as on the Star-17 main batch: 2³⁰ and 2²⁵ subsets dwarf the budget.
func benchLargeQuery(c Config) (*LargeQueryBench, error) {
	budget := c.budget()
	ew := c.enumWorkers()
	out := &LargeQueryBench{}
	run := func(graph string, spec workload.Spec, techs []Technique, ref string, static ...string) error {
		qs, err := workload.Instances(spec, c.instances(3))
		if err != nil {
			return err
		}
		b, err := RunBatchWorkers(graph, qs, techs, ref, c.workers())
		if err != nil {
			return fmt.Errorf("large-query %s: %w", graph, err)
		}
		for i := len(static) - 1; i >= 0; i-- {
			b.AddInfeasible(static[i])
		}
		out.Batches = append(out.Batches, benchBatch(b))
		return nil
	}
	if err := run("Star-30",
		workload.Spec{Cat: workload.ExtendedSchema(30), Topology: workload.Star, NumRelations: 30, Seed: c.Seed},
		[]Technique{TechSDP(budget, ew), TechIDP2(7, budget), TechGOO()},
		"SDP", "DP"); err != nil {
		return nil, err
	}
	if err := run("Clique-25",
		workload.Spec{Cat: workload.ExtendedSchema(25), Topology: workload.Clique, NumRelations: 25, Seed: c.Seed},
		[]Technique{TechIDP2(7, budget), TechGOO()},
		"GOO", "DP", "SDP"); err != nil {
		return nil, err
	}
	dpSize := Technique{Name: "DP-size", Run: func(q *query.Query) (*plan.Plan, dp.Stats, error) {
		return dp.Optimize(q, dp.Options{Enum: dp.EnumNaive, Budget: budget, Label: "DP-size"})
	}}
	if err := run("Chain-40",
		workload.Spec{Cat: workload.ExtendedSchema(40), Topology: workload.Chain, NumRelations: 40, Seed: c.Seed},
		[]Technique{TechDP(budget), dpSize, TechSDP(budget, ew), TechIDP2(7, budget), TechGOO()},
		"DP"); err != nil {
		return nil, err
	}
	return out, nil
}

// benchLoad runs the routed-vs-baseline load comparison. Each pass gets
// its own fresh in-process server on a loopback listener — sharing one
// server would let the second pass skip the shadow-reference work the
// first pass paid for (the regret sampler dedups repeated fingerprints),
// skewing the comparison by run order. Both passes replay the same
// arrival schedule (same seed) with the same 100ms per-request deadline
// and the same warmup lead-in; only the technique field differs. Caching
// is bypassed by the generator so every request measures real
// optimization latency.
func benchLoad(c Config) (*LoadBench, error) {
	routed, err := loadPass(c, "auto")
	if err != nil {
		return nil, err
	}
	baseline, err := loadPass(c, "sdp")
	if err != nil {
		return nil, err
	}
	out := &LoadBench{
		Mix:             routed.Mix,
		QPS:             routed.QPS,
		DurationSeconds: routed.DurationSeconds,
		Arrivals:        routed.Arrivals,
		Routed:          routed,
		Baseline:        baseline,
	}
	if routed.P99MS > 0 {
		out.P99Ratio = baseline.P99MS / routed.P99MS
	}
	return out, nil
}

// loadPass boots a fresh server, drives one load run with the given
// request technique, and tears the server down. Shadowing every computed
// serve keeps the router's regret feedback loop live during the run: a
// fast-path route whose measured ρ degrades (greedy on mid-size chains
// does, on some instances) is promoted back to SDP mid-run, which is the
// mechanism that keeps the routed pass's mean ρ bounded. MaxDPRels 9
// keeps shadow references on SDP for the mix's 12-15 relation queries —
// exhaustive DP on a star-12 would cost more than the serve it checks.
func loadPass(c Config, technique string) (*loadgen.Report, error) {
	spec := c.schema()
	srv, err := server.New(server.Options{
		Cat: spec.Cat,
		Regret: &regret.Options{
			SampleRate: 1,
			MaxDPRels:  9,
		},
	})
	if err != nil {
		return nil, err
	}
	bound, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	return loadgen.Run(context.Background(), loadgen.Options{
		URL:       "http://" + bound,
		QPS:       20,
		Duration:  6 * time.Second,
		Seed:      c.Seed,
		Cat:       spec.Cat,
		Technique: technique,
	})
}

// benchTracing runs the tracing on/off comparison: SDP over Star-12, one
// pass with a bare context and one with a request span per instance, each
// trace finished into a flight recorder as the server would.
func benchTracing(c Config) (*TracingBench, error) {
	const n = 12
	spec := c.schema()
	spec.Topology = workload.Star
	spec.NumRelations = n
	qs, err := workload.Instances(*spec, c.instances(5))
	if err != nil {
		return nil, err
	}
	base := core.DefaultOptions()
	base.Budget = c.budget()
	pass := func(traced bool) (time.Duration, error) {
		rec := span.NewRecorder(span.RecorderOptions{})
		var total time.Duration
		for _, q := range qs {
			opts := base
			var root *span.Span
			if traced {
				root = span.New("request")
				rec.Start(root)
				opts.Ctx = span.NewContext(context.Background(), root)
			}
			started := time.Now()
			_, _, err := core.Optimize(q, opts)
			total += time.Since(started)
			if err != nil {
				return 0, fmt.Errorf("tracing bench (traced=%v): %w", traced, err)
			}
			rec.Finish(root, 200)
		}
		return total / time.Duration(len(qs)), nil
	}
	off, err := pass(false)
	if err != nil {
		return nil, err
	}
	on, err := pass(true)
	if err != nil {
		return nil, err
	}
	out := &TracingBench{
		Graph:          fmt.Sprintf("Star-%d", n),
		Technique:      "SDP",
		Instances:      len(qs),
		OffMeanSeconds: off.Seconds(),
		OnMeanSeconds:  on.Seconds(),
	}
	if off > 0 {
		out.Overhead = float64(on) / float64(off)
	}
	return out, nil
}

// benchParallel measures the parallel enumeration engine's scaling curve:
// SDP over Star-17 at 1/2/4/8 enumeration workers, each point timed over
// the same instances and checked plan-identical to the 1-worker baseline.
func benchParallel(c Config) (*ParallelBench, error) {
	const n = 17
	spec := c.schema()
	spec.Topology = workload.Star
	spec.NumRelations = n
	qs, err := workload.Instances(*spec, c.instances(3))
	if err != nil {
		return nil, err
	}
	budget := c.budget()
	out := &ParallelBench{
		Graph:     fmt.Sprintf("Star-%d", n),
		Relations: n,
		Technique: "SDP",
		Instances: len(qs),
	}
	var baseline []float64
	var baseMean float64
	for _, w := range []int{1, 2, 4, 8} {
		tech := TechSDP(budget, w)
		var total time.Duration
		costs := make([]float64, 0, len(qs))
		for _, q := range qs {
			started := time.Now()
			p, _, err := tech.Run(q)
			if err != nil {
				return nil, fmt.Errorf("parallel bench (%d workers): %w", w, err)
			}
			total += time.Since(started)
			costs = append(costs, p.Cost)
		}
		mean := (total / time.Duration(len(qs))).Seconds()
		pt := ParallelPoint{Workers: w, MeanSeconds: mean, Identical: true}
		if baseline == nil {
			baseline = costs
			baseMean = mean
		} else {
			for i := range costs {
				if math.Float64bits(costs[i]) != math.Float64bits(baseline[i]) {
					pt.Identical = false
				}
			}
		}
		if mean > 0 {
			pt.Speedup = baseMean / mean
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// benchCache runs the cold/warm plan-cache comparison: SDP over
// Star-Chain-15, one pass filling a fresh cache, one pass served from it.
func benchCache(c Config) (*CacheBench, error) {
	spec := c.schema()
	spec.Topology = workload.StarChain
	spec.NumRelations = 15
	qs, err := workload.Instances(*spec, c.instances(5))
	if err != nil {
		return nil, err
	}
	pc := plancache.New(plancache.Options{})
	techs := CachedTechniques(pc, spec.Cat, []Technique{TechSDP(c.budget())})
	tech := techs[0]
	pass := func() (time.Duration, error) {
		var total time.Duration
		for _, q := range qs {
			started := time.Now()
			if _, _, err := tech.Run(q); err != nil {
				return 0, err
			}
			total += time.Since(started)
		}
		return total / time.Duration(len(qs)), nil
	}
	cold, err := pass()
	if err != nil {
		return nil, err
	}
	warm, err := pass()
	if err != nil {
		return nil, err
	}
	ct := pc.Counts()
	out := &CacheBench{
		Graph:           "Star-Chain-15",
		Technique:       tech.Name,
		Instances:       len(qs),
		ColdMeanSeconds: cold.Seconds(),
		WarmMeanSeconds: warm.Seconds(),
		Hits:            ct.Hits,
		Misses:          ct.Misses,
		HitRate:         ct.HitRate(),
	}
	if warm > 0 {
		out.Speedup = float64(cold) / float64(warm)
	}
	return out, nil
}

// WriteJSON renders the report as indented JSON.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to BENCH_<date>.json in dir and returns the
// path.
func (r *BenchReport) WriteFile(dir string) (string, error) {
	path := fmt.Sprintf("%s/BENCH_%s.json", dir, r.Date)
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}
