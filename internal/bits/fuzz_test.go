package bits

import "testing"

// FuzzSubsetsPartition checks that for arbitrary sets, Subsets emits
// exactly the proper subsets containing the low bit, each pairing with its
// complement into a valid 2-partition.
func FuzzSubsetsPartition(f *testing.F) {
	f.Add(uint64(0b1011))
	f.Add(uint64(0))
	f.Add(uint64(1))
	f.Add(^uint64(0) >> 48)
	f.Fuzz(func(t *testing.T, raw uint64) {
		s := Set(raw & 0xFFFF) // cap popcount at 16 to bound enumeration
		count := 0
		s.Subsets(func(sub Set) bool {
			count++
			if sub.IsEmpty() || sub == s {
				t.Fatalf("emitted trivial subset %v of %v", sub, s)
			}
			if !s.Contains(sub) {
				t.Fatalf("subset %v outside %v", sub, s)
			}
			if !sub.Has(s.Min()) {
				t.Fatalf("subset %v misses low bit of %v", sub, s)
			}
			comp := s.Diff(sub)
			if sub.Union(comp) != s || !sub.Disjoint(comp) {
				t.Fatalf("bad partition %v + %v of %v", sub, comp, s)
			}
			return true
		})
		want := 0
		if s.Len() >= 1 {
			want = 1<<(s.Len()-1) - 1
		}
		if count != want {
			t.Fatalf("set %v emitted %d subsets, want %d", s, count, want)
		}
	})
}
