package catalog

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestDefaultConfigMatchesPaperSchema(t *testing.T) {
	cat := MustSynthetic(DefaultConfig())
	if got := cat.NumRelations(); got != 25 {
		t.Fatalf("NumRelations = %d, want 25", got)
	}
	if got := cat.Rels[0].Rows; got != 100 {
		t.Errorf("smallest relation rows = %g, want 100", got)
	}
	// 100 · 1.5^24 ≈ 1.68 M. (The paper states both "ratio 1.5" and a range
	// of "100 to 2.5 million" over 25 relations, which are mutually
	// inconsistent; we keep the stated ratio.)
	last := cat.Rels[24].Rows
	if last < 1.6e6 || last > 1.8e6 {
		t.Errorf("largest relation rows = %g, want ≈1.68e6", last)
	}
	for i := range cat.Rels {
		rel := &cat.Rels[i]
		if len(rel.Cols) != 24 {
			t.Fatalf("%s has %d columns, want 24", rel.Name, len(rel.Cols))
		}
		if rel.IndexCol < 0 || rel.IndexCol >= 24 {
			t.Errorf("%s IndexCol = %d out of range", rel.Name, rel.IndexCol)
		}
		if rel.IndexCorr < 0 || rel.IndexCorr > 1 {
			t.Errorf("%s IndexCorr = %g out of [0,1]", rel.Name, rel.IndexCorr)
		}
	}
}

func TestCardinalitiesGeometric(t *testing.T) {
	cat := MustSynthetic(DefaultConfig())
	for i := 1; i < len(cat.Rels); i++ {
		ratio := cat.Rels[i].Rows / cat.Rels[i-1].Rows
		if ratio < 1.45 || ratio > 1.55 {
			t.Errorf("ratio R%d/R%d = %g, want ≈1.5", i+1, i, ratio)
		}
	}
}

func TestNDVCappedByRows(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(), SkewedConfig(), ExtendedConfig(50)} {
		cat := MustSynthetic(cfg)
		for i := range cat.Rels {
			rel := &cat.Rels[i]
			for j := range rel.Cols {
				if rel.Cols[j].NDV > rel.Rows {
					t.Errorf("%s.%s NDV %g > rows %g", rel.Name, rel.Cols[j].Name, rel.Cols[j].NDV, rel.Rows)
				}
				if rel.Cols[j].NDV < 1 {
					t.Errorf("%s.%s NDV %g < 1", rel.Name, rel.Cols[j].Name, rel.Cols[j].NDV)
				}
			}
		}
	}
}

func TestSkewFraction(t *testing.T) {
	cat := MustSynthetic(SkewedConfig())
	skewed, total := 0, 0
	for i := range cat.Rels {
		for j := range cat.Rels[i].Cols {
			total++
			if cat.Rels[i].Cols[j].Skew > 0 {
				skewed++
			}
		}
	}
	frac := float64(skewed) / float64(total)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("skewed column fraction = %g, want ≈0.5", frac)
	}
	// The uniform schema must have no skew at all.
	uni := MustSynthetic(DefaultConfig())
	for i := range uni.Rels {
		for j := range uni.Rels[i].Cols {
			if uni.Rels[i].Cols[j].Skew != 0 {
				t.Fatalf("uniform schema has skewed column %s.%s", uni.Rels[i].Name, uni.Rels[i].Cols[j].Name)
			}
		}
	}
}

func TestEffectiveNDV(t *testing.T) {
	uniform := Column{NDV: 1000, Skew: 0}
	if got := uniform.EffectiveNDV(); got != 1000 {
		t.Errorf("uniform EffectiveNDV = %g, want 1000", got)
	}
	skewed := Column{NDV: 1000, Skew: 3}
	if got := skewed.EffectiveNDV(); got != 250 {
		t.Errorf("skewed EffectiveNDV = %g, want 250", got)
	}
	tiny := Column{NDV: 1, Skew: 4}
	if got := tiny.EffectiveNDV(); got != 1 {
		t.Errorf("EffectiveNDV floor = %g, want 1", got)
	}
}

func TestDeterminism(t *testing.T) {
	a := MustSynthetic(DefaultConfig())
	b := MustSynthetic(DefaultConfig())
	for i := range a.Rels {
		if a.Rels[i].Rows != b.Rels[i].Rows || a.Rels[i].IndexCol != b.Rels[i].IndexCol {
			t.Fatalf("relation %d differs across identical seeds", i)
		}
		for j := range a.Rels[i].Cols {
			if a.Rels[i].Cols[j] != b.Rels[i].Cols[j] {
				t.Fatalf("column %d.%d differs across identical seeds", i, j)
			}
		}
	}
	cfg := DefaultConfig()
	cfg.Seed = 2
	c := MustSynthetic(cfg)
	same := true
	for i := range a.Rels {
		for j := range a.Rels[i].Cols {
			if a.Rels[i].Cols[j] != c.Rels[i].Cols[j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical schemas")
	}
}

func TestLargestRelation(t *testing.T) {
	cat := MustSynthetic(DefaultConfig())
	if got := cat.LargestRelation(); got != 24 {
		t.Errorf("LargestRelation = %d, want 24", got)
	}
}

func TestPagesAndWidth(t *testing.T) {
	rel := Relation{
		Rows: 1000,
		Cols: []Column{{Width: 4}, {Width: 12}},
	}
	if got := rel.RowWidth(); got != 16 {
		t.Errorf("RowWidth = %d, want 16", got)
	}
	want := math.Ceil(1000 * 16 / float64(PageSize))
	if got := rel.Pages(); got != want {
		t.Errorf("Pages = %g, want %g", got, want)
	}
	small := Relation{Rows: 1, Cols: []Column{{Width: 4}}}
	if got := small.Pages(); got != 1 {
		t.Errorf("minimum Pages = %g, want 1", got)
	}
}

func TestExtendedConfigSpansSameRange(t *testing.T) {
	cat := MustSynthetic(ExtendedConfig(50))
	if got := cat.NumRelations(); got != 50 {
		t.Fatalf("NumRelations = %d, want 50", got)
	}
	last := cat.Rels[49].Rows
	if last < 2.4e6 || last > 2.6e6 {
		t.Errorf("largest extended relation rows = %g, want ≈2.5e6", last)
	}
}

func TestSyntheticRejectsBadConfig(t *testing.T) {
	bad := []Config{
		{NumRelations: 0, BaseRows: 100, Ratio: 1.5, ColsPerRelation: 4, MinDomain: 10, MaxDomain: 100},
		{NumRelations: 5, BaseRows: 100, Ratio: 1.5, ColsPerRelation: 0, MinDomain: 10, MaxDomain: 100},
		{NumRelations: 5, BaseRows: -1, Ratio: 1.5, ColsPerRelation: 4, MinDomain: 10, MaxDomain: 100},
		{NumRelations: 5, BaseRows: 100, Ratio: 0, ColsPerRelation: 4, MinDomain: 10, MaxDomain: 100},
		{NumRelations: 5, BaseRows: 100, Ratio: 1.5, ColsPerRelation: 4, MinDomain: 100, MaxDomain: 10},
		{NumRelations: 5, BaseRows: 100, Ratio: 1.5, ColsPerRelation: 4, MinDomain: 0, MaxDomain: 10},
	}
	for i, cfg := range bad {
		if _, err := Synthetic(cfg); err == nil {
			t.Errorf("case %d: Synthetic accepted invalid config %+v", i, cfg)
		}
	}
}

// Property: EffectiveNDV is in [1, NDV] and decreases monotonically in skew.
func TestQuickEffectiveNDVBounds(t *testing.T) {
	f := func(ndvRaw, skewRaw uint16) bool {
		ndv := 1 + float64(ndvRaw)
		skew := float64(skewRaw) / 1000
		c := Column{NDV: ndv, Skew: skew}
		eff := c.EffectiveNDV()
		if eff < 1 || eff > ndv {
			return false
		}
		more := Column{NDV: ndv, Skew: skew + 1}
		return more.EffectiveNDV() <= eff
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := MustSynthetic(DefaultConfig())
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if got.NumRelations() != orig.NumRelations() {
		t.Fatalf("relations = %d", got.NumRelations())
	}
	for i := range orig.Rels {
		if got.Rels[i].Rows != orig.Rels[i].Rows || got.Rels[i].IndexCol != orig.Rels[i].IndexCol {
			t.Fatalf("relation %d differs after round trip", i)
		}
		for j := range orig.Rels[i].Cols {
			if got.Rels[i].Cols[j] != orig.Rels[i].Cols[j] {
				t.Fatalf("column %d.%d differs after round trip", i, j)
			}
		}
	}
}

// TestJSONRoundTripAbove64Relations pins the serialization path for schemas
// wider than one machine word of relations: an 80-relation extended catalog
// must survive a JSON round trip column-exact and keep a stable fingerprint
// — the golden-catalog guarantee the >64-relation workloads rely on.
func TestJSONRoundTripAbove64Relations(t *testing.T) {
	orig := MustSynthetic(ExtendedConfig(80))
	if orig.NumRelations() != 80 {
		t.Fatalf("relations = %d, want 80", orig.NumRelations())
	}
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if got.NumRelations() != orig.NumRelations() {
		t.Fatalf("relations = %d after round trip", got.NumRelations())
	}
	for i := range orig.Rels {
		if got.Rels[i].Rows != orig.Rels[i].Rows || got.Rels[i].IndexCol != orig.Rels[i].IndexCol {
			t.Fatalf("relation %d differs after round trip", i)
		}
		for j := range orig.Rels[i].Cols {
			if got.Rels[i].Cols[j] != orig.Rels[i].Cols[j] {
				t.Fatalf("column %d.%d differs after round trip", i, j)
			}
		}
	}
	if got.Fingerprint() != orig.Fingerprint() {
		t.Errorf("fingerprint changed across round trip: %s != %s", got.Fingerprint(), orig.Fingerprint())
	}
	// Regeneration from the same config is fingerprint-stable, so a golden
	// catalog written once keeps matching freshly generated schemas.
	again := MustSynthetic(ExtendedConfig(80))
	if again.Fingerprint() != orig.Fingerprint() {
		t.Errorf("fingerprint not deterministic: %s != %s", again.Fingerprint(), orig.Fingerprint())
	}
}

// TestJSONRoundTripStatsLost covers the degraded-catalog shape sdpgen
// -stats-health emits: lost columns carry no NDV/Skew but must survive
// serialization with the flag intact.
func TestJSONRoundTripStatsLost(t *testing.T) {
	orig := MustSynthetic(DefaultConfig())
	orig.Rels[0].Cols[1].StatsLost = true
	orig.Rels[0].Cols[1].NDV = 0
	orig.Rels[0].Cols[1].Skew = 0
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if !got.Rels[0].Cols[1].StatsLost {
		t.Fatal("StatsLost flag dropped in round trip")
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"garbage":        `{`,
		"empty":          `{"Rels":[]}`,
		"zero rows":      `{"Rels":[{"Name":"X","Rows":0,"Cols":[{"Name":"a","NDV":1,"Width":4}],"IndexCol":0}]}`,
		"no cols":        `{"Rels":[{"Name":"X","Rows":10,"Cols":[],"IndexCol":0}]}`,
		"bad index":      `{"Rels":[{"Name":"X","Rows":10,"Cols":[{"Name":"a","NDV":5,"Width":4}],"IndexCol":7}]}`,
		"bad corr":       `{"Rels":[{"Name":"X","Rows":10,"Cols":[{"Name":"a","NDV":5,"Width":4}],"IndexCol":0,"IndexCorr":2}]}`,
		"ndv above rows": `{"Rels":[{"Name":"X","Rows":10,"Cols":[{"Name":"a","NDV":50,"Width":4}],"IndexCol":0}]}`,
		"negative skew":  `{"Rels":[{"Name":"X","Rows":10,"Cols":[{"Name":"a","NDV":5,"Skew":-1,"Width":4}],"IndexCol":0}]}`,
		"zero width":     `{"Rels":[{"Name":"X","Rows":10,"Cols":[{"Name":"a","NDV":5,"Width":0}],"IndexCol":0}]}`,
		"lost with ndv":  `{"Rels":[{"Name":"X","Rows":10,"Cols":[{"Name":"a","NDV":5,"Width":4,"StatsLost":true}],"IndexCol":0}]}`,
		"zipf s too low": `{"Rels":[{"Name":"X","Rows":10,"Cols":[{"Name":"a","NDV":5,"Width":4,"ZipfS":0.8}],"IndexCol":0}]}`,
	}
	for name, src := range cases {
		if _, err := ReadJSON(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestJSONRoundTripZipf covers the skewed-data shape sdpgen -skew zipf:<s>
// emits: the Zipf exponent survives serialization (including on stats-lost
// columns, where it is a data property rather than a statistic).
func TestJSONRoundTripZipf(t *testing.T) {
	orig := MustSynthetic(DefaultConfig())
	zipfed, err := orig.WithZipfSkew(1.5)
	if err != nil {
		t.Fatal(err)
	}
	zipfed.Rels[0].Cols[1].StatsLost = true
	zipfed.Rels[0].Cols[1].NDV = 0
	zipfed.Rels[0].Cols[1].Skew = 0
	var buf bytes.Buffer
	if err := zipfed.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	for i := range got.Rels {
		for j := range got.Rels[i].Cols {
			if got.Rels[i].Cols[j].ZipfS != 1.5 {
				t.Fatalf("column %d.%d ZipfS = %g after round trip", i, j, got.Rels[i].Cols[j].ZipfS)
			}
		}
	}
	if !got.Rels[0].Cols[1].StatsLost {
		t.Fatal("StatsLost flag dropped")
	}
	// The original is untouched (deep copy).
	if orig.Rels[0].Cols[0].ZipfS != 0 {
		t.Fatal("WithZipfSkew mutated its receiver")
	}
}
