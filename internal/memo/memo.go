// Package memo implements the dynamic-programming memo table: one class per
// join-composite relation (JCR), each retaining its cheapest plan plus the
// cheapest plan per interesting order, exactly as PostgreSQL's RelOptInfo
// path lists do.
//
// The memo also carries the optimization-overhead accounting the paper
// reports: a simulated memory model calibrated to PostgreSQL 8.1's per-class
// and per-path footprint, with a feasibility budget. The paper's "DP is
// infeasible beyond a 16-relation star on a 1 GB machine" cliff is
// reproduced by this model rather than by physically exhausting RAM — Go's
// lean structs would otherwise move the cliff far out (see DESIGN.md,
// Substitutions).
package memo

import (
	"errors"
	"fmt"
	"sort"

	"sdpopt/internal/bits"
	"sdpopt/internal/obs"
	"sdpopt/internal/plan"
)

// ErrBudget is returned when an optimization exceeds its simulated memory
// budget — the analogue of the paper's algorithms running out of physical
// memory (the "*" entries in its tables).
var ErrBudget = errors.New("memo: simulated memory budget exceeded")

// Simulated per-object footprints, loosely calibrated to PostgreSQL 8.1's
// RelOptInfo and Path allocations so that exhaustive DP on a 16-relation
// star lands near the paper's 326 MB (Table 2.1).
const (
	SimClassBytes = 4096
	SimPathBytes  = 2048
)

// DefaultBudget is the default feasibility budget: the 1 GB of physical
// memory on the paper's experimental machines.
const DefaultBudget = int64(1) << 30

// FV is a JCR feature vector [Rows, Cost, Selectivity] — the three
// attributes SDP's skyline pruning operates on (paper Figure 2.3).
type FV struct {
	Rows, Cost, Sel float64
}

// Class is one memo entry: a JCR plus its retained plans.
type Class struct {
	// Set is the base relations this JCR covers.
	Set bits.Set
	// Level is the number of leaves (base relations, or compound relations
	// in IDP's reduced problems) joined so far; classes enter the DP at
	// level Len(leaves).
	Level int
	// Rows and Sel are the JCR's shared cardinality and selectivity
	// features; every plan of the class produces the same output.
	Rows, Sel float64
	// Best is the cheapest plan for the class.
	Best *plan.Plan
	// Ordered maps an order equivalence class to the cheapest plan
	// delivering that order.
	Ordered map[int]*plan.Plan

	dead bool
}

// FeatureVector returns the [R,C,S] vector used by SDP's skyline pruning.
func (c *Class) FeatureVector() FV {
	return FV{Rows: c.Rows, Cost: c.Best.Cost, Sel: c.Sel}
}

// Paths returns the distinct retained plans: Best plus every ordered plan
// that is not Best itself.
func (c *Class) Paths() []*plan.Plan {
	out := make([]*plan.Plan, 0, 1+len(c.Ordered))
	if c.Best != nil {
		out = append(out, c.Best)
	}
	// Deterministic iteration order for reproducible plan choice.
	orders := make([]int, 0, len(c.Ordered))
	for o := range c.Ordered {
		orders = append(orders, o)
	}
	sort.Ints(orders)
	for _, o := range orders {
		if p := c.Ordered[o]; p != c.Best {
			out = append(out, p)
		}
	}
	return out
}

// numPaths is the retained-path count used for simulated memory.
func (c *Class) numPaths() int {
	n := 0
	if c.Best != nil {
		n = 1
	}
	for _, p := range c.Ordered {
		if p != c.Best {
			n++
		}
	}
	return n
}

// Stats aggregates the optimization overheads the paper's tables report.
type Stats struct {
	// ClassesCreated counts JCR classes ever created (including later
	// pruned ones).
	ClassesCreated int64
	// ClassesAlive counts classes currently in the memo.
	ClassesAlive int64
	// PathsRetained counts plans currently retained across alive classes.
	PathsRetained int64
	// SimBytes is the current simulated memory consumption.
	SimBytes int64
	// PeakSimBytes is the high-water mark of SimBytes — the "Memory (in
	// MB)" column of the paper's overhead tables.
	PeakSimBytes int64
}

// PeakMB returns the peak simulated memory in megabytes.
func (s *Stats) PeakMB() float64 { return float64(s.PeakSimBytes) / (1 << 20) }

// Memo is the DP table.
type Memo struct {
	classes map[bits.Set]*Class
	byLevel [][]*Class
	// Budget is the simulated-memory feasibility limit in bytes; 0 means
	// unlimited.
	Budget int64
	Stats  Stats

	// Metric handles, resolved once by Observe; nil (a no-op) by default.
	// The gauges aggregate across every live memo sharing the registry, so
	// a metrics endpoint sees total alive classes and simulated bytes of
	// all concurrent optimizations.
	cCreated, cPruned   *obs.Counter
	gAlive, gSim, gPeak *obs.Gauge
}

// New returns an empty memo with the given simulated-memory budget
// (0 = unlimited).
func New(budget int64) *Memo {
	return &Memo{classes: map[bits.Set]*Class{}, Budget: budget}
}

// Observe registers the memo's class/memory accounting with o's metrics
// registry. A nil observer keeps telemetry off (the default).
func (m *Memo) Observe(o *obs.Observer) {
	if o == nil {
		return
	}
	m.cCreated = o.Counter(obs.MClassesCreated)
	m.cPruned = o.Counter(obs.MClassesPruned)
	m.gAlive = o.Gauge(obs.MMemoAlive)
	m.gSim = o.Gauge(obs.MMemoSimBytes)
	m.gPeak = o.Gauge(obs.MMemoPeakSimBytes)
}

// Get returns the class covering set, or nil.
func (m *Memo) Get(set bits.Set) *Class {
	c := m.classes[set]
	if c == nil || c.dead {
		return nil
	}
	return c
}

// NewClass creates and registers a class for set at the given leaf level
// with the shared cardinality features. It fails with ErrBudget when the
// simulated memory budget is exhausted and with an error on duplicates.
func (m *Memo) NewClass(set bits.Set, level int, rows, sel float64) (*Class, error) {
	if set.IsEmpty() {
		return nil, fmt.Errorf("memo: empty class set")
	}
	if existing := m.classes[set]; existing != nil && !existing.dead {
		return nil, fmt.Errorf("memo: class %v already exists", set)
	}
	c := &Class{Set: set, Level: level, Rows: rows, Sel: sel, Ordered: map[int]*plan.Plan{}}
	m.classes[set] = c
	for len(m.byLevel) <= level {
		m.byLevel = append(m.byLevel, nil)
	}
	m.byLevel[level] = append(m.byLevel[level], c)
	m.Stats.ClassesCreated++
	m.Stats.ClassesAlive++
	m.cCreated.Add(1)
	m.gAlive.Add(1)
	if err := m.addSim(SimClassBytes); err != nil {
		return nil, err
	}
	return c, nil
}

// AddPlan offers plan p to class c, retaining it if it improves the
// cheapest plan or the cheapest plan for its output order — PostgreSQL's
// add_path dominance rule restricted to the (cost, order) criteria this
// model tracks. It reports whether p was retained. Cost ties break on
// plan.Compare's canonical structural order, so the retained plans are a
// function of the candidate set alone, not of arrival order — the
// determinism contract the parallel engine's staging table (Sharded)
// replicates.
func (m *Memo) AddPlan(c *Class, p *plan.Plan) (bool, error) {
	before := c.numPaths()
	kept := false
	if c.Best == nil || better(p, c.Best) {
		c.Best = p
		kept = true
	}
	if p.Order != plan.NoOrder {
		if cur, ok := c.Ordered[p.Order]; !ok || better(p, cur) {
			c.Ordered[p.Order] = p
			kept = true
		}
	}
	if kept {
		// A new Best may dominate previously retained ordered paths that
		// cost more but deliver an order Best also delivers.
		if c.Best.Order != plan.NoOrder {
			if cur, ok := c.Ordered[c.Best.Order]; !ok || better(c.Best, cur) {
				c.Ordered[c.Best.Order] = c.Best
			}
		}
	}
	if d := c.numPaths() - before; d != 0 {
		m.Stats.PathsRetained += int64(d)
		if err := m.addSim(int64(d) * SimPathBytes); err != nil {
			return kept, err
		}
	}
	return kept, nil
}

// better is plan.Less with the cost comparison inlined: it runs once per
// candidate plan on the enumeration hot path, where cost ties are rare
// enough that the structural tie-break (plan.Compare's canonical order —
// the determinism contract) stays off the fast path.
func better(p, cur *plan.Plan) bool {
	if p.Cost != cur.Cost {
		return p.Cost < cur.Cost
	}
	return plan.Less(p, cur)
}

// Remove prunes class c from the memo, releasing its simulated memory (the
// peak is unaffected). SDP calls this for JCRs that lose the skyline.
func (m *Memo) Remove(c *Class) {
	if c.dead {
		return
	}
	c.dead = true
	delete(m.classes, c.Set)
	m.Stats.ClassesAlive--
	m.Stats.PathsRetained -= int64(c.numPaths())
	m.Stats.SimBytes -= SimClassBytes + int64(c.numPaths())*SimPathBytes
	m.cPruned.Add(1)
	m.gAlive.Add(-1)
	m.gSim.Add(-(SimClassBytes + int64(c.numPaths())*SimPathBytes))
}

// Level returns the alive classes created at leaf level k, in creation
// order.
func (m *Memo) Level(k int) []*Class {
	if k < 0 || k >= len(m.byLevel) {
		return nil
	}
	out := make([]*Class, 0, len(m.byLevel[k]))
	for _, c := range m.byLevel[k] {
		if !c.dead {
			out = append(out, c)
		}
	}
	return out
}

// MaxLevel returns the highest leaf level holding any class.
func (m *Memo) MaxLevel() int { return len(m.byLevel) - 1 }

// Each calls fn for every alive class, in increasing level and creation
// order.
func (m *Memo) Each(fn func(*Class)) {
	for _, lvl := range m.byLevel {
		for _, c := range lvl {
			if !c.dead {
				fn(c)
			}
		}
	}
}

func (m *Memo) addSim(bytes int64) error {
	m.Stats.SimBytes += bytes
	if m.Stats.SimBytes > m.Stats.PeakSimBytes {
		m.Stats.PeakSimBytes = m.Stats.SimBytes
	}
	m.gPeak.SetMax(m.gSim.Add(bytes))
	if m.Budget > 0 && m.Stats.SimBytes > m.Budget {
		return ErrBudget
	}
	return nil
}
