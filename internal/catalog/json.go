package catalog

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON serializes the catalog (schema plus statistics) so a schema
// can be inspected, versioned, or shared between runs.
func (c *Catalog) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// ReadJSON loads a catalog previously written by WriteJSON, validating
// the statistics' basic invariants.
func ReadJSON(r io.Reader) (*Catalog, error) {
	var c Catalog
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("catalog: decoding: %w", err)
	}
	if len(c.Rels) == 0 {
		return nil, fmt.Errorf("catalog: no relations")
	}
	for i := range c.Rels {
		rel := &c.Rels[i]
		if rel.Rows < 1 {
			return nil, fmt.Errorf("catalog: relation %q has %g rows", rel.Name, rel.Rows)
		}
		if len(rel.Cols) == 0 {
			return nil, fmt.Errorf("catalog: relation %q has no columns", rel.Name)
		}
		if rel.IndexCol < 0 || rel.IndexCol >= len(rel.Cols) {
			return nil, fmt.Errorf("catalog: relation %q index column %d out of range", rel.Name, rel.IndexCol)
		}
		if rel.IndexCorr < 0 || rel.IndexCorr > 1 {
			return nil, fmt.Errorf("catalog: relation %q correlation %g out of [0,1]", rel.Name, rel.IndexCorr)
		}
		for j := range rel.Cols {
			col := &rel.Cols[j]
			if col.StatsLost {
				// A stats-lost column carries no NDV/Skew (degraded
				// catalogs zero them); only the physical width must hold.
				if col.NDV != 0 || col.Skew != 0 {
					return nil, fmt.Errorf("catalog: column %s.%s is stats-lost but carries statistics", rel.Name, col.Name)
				}
			} else {
				if col.NDV < 1 || col.NDV > rel.Rows {
					return nil, fmt.Errorf("catalog: column %s.%s NDV %g out of [1, rows]", rel.Name, col.Name, col.NDV)
				}
				if col.Skew < 0 {
					return nil, fmt.Errorf("catalog: column %s.%s negative skew", rel.Name, col.Name)
				}
			}
			if col.Width < 1 {
				return nil, fmt.Errorf("catalog: column %s.%s width %d", rel.Name, col.Name, col.Width)
			}
			// ZipfS is a data-generation property, not a statistic, so it is
			// legal on stats-lost columns too; rand.Zipf requires s > 1.
			if col.ZipfS != 0 && col.ZipfS <= 1 {
				return nil, fmt.Errorf("catalog: column %s.%s Zipf exponent %g must be > 1", rel.Name, col.Name, col.ZipfS)
			}
		}
	}
	return &c, nil
}
