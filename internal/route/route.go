// Package route picks the optimization technique per request — the
// serving layer's answer to "a service fronting millions of users cannot
// run exhaustive DP on every query". The paper's point is that robust
// heuristics buy feasibility at bounded plan-quality loss; the router
// operationalizes it by spending optimization effort where the query shape
// earns it and the deadline allows it:
//
//   - greedy (GOO) is the microsecond fast path for queries too small or
//     too chain-like to reward enumeration;
//   - SDP is the default — the paper's robust heuristic;
//   - IDP2 takes the heavy tail, where full SDP's memory appetite puts it
//     at risk of the budget cliff and its latency of the deadline;
//   - any choice is demoted down the ladder when its predicted latency
//     does not fit the request's remaining deadline, and the serving layer
//     additionally demotes mid-flight to greedy when the chosen engine's
//     time slice expires.
//
// Decisions are driven by live evidence, not just static thresholds: the
// router maintains online EWMA latency profiles per (technique, topology,
// relation-band) key — seeded from conservative priors, updated with every
// computed serve — and consumes the shadow optimizer's regret stream
// (internal/obs/regret) so a cheap route whose rolling plan-quality ρ
// degrades on some key is promoted back to SDP.
//
// The router observes and recommends; it never executes. The serving layer
// owns running the decision (and the mid-flight fallback), which keeps this
// package free of engine imports and makes the decision table a pure
// function of the profile state — directly testable as a golden table.
package route

import (
	"sync"
	"time"

	"sdpopt/internal/obs/regret"
)

// Route reasons, attached to responses, span attributes, metrics labels and
// regret exemplars so bad ρ or bad latency can be attributed to a routing
// decision rather than to a technique in the abstract.
const (
	// ReasonExplicit marks a request that named its technique; the router
	// was not consulted.
	ReasonExplicit = "explicit"
	// ReasonFastPath is the greedy fast path: small or chain-like queries.
	ReasonFastPath = "auto:greedy-fastpath"
	// ReasonDefault is the SDP default route.
	ReasonDefault = "auto:sdp-default"
	// ReasonHeavy is the IDP heavy-tail route for relation counts at risk
	// of SDP's memory-budget cliff.
	ReasonHeavy = "auto:idp-heavy"
	// ReasonRegretPromote marks a cheap route overridden back to SDP
	// because its rolling regret ρ on this (shape, band) key degraded.
	ReasonRegretPromote = "auto:regret-promote"
	// ReasonDeadlineDowngrade marks a pre-flight demotion: the preferred
	// technique's predicted latency did not fit the remaining deadline.
	ReasonDeadlineDowngrade = "auto:deadline-downgrade"
	// ReasonDeadlineDemote marks the mid-flight fallback: the chosen
	// engine's time slice expired and the serving layer re-ran greedy.
	ReasonDeadlineDemote = "auto:deadline-demote"
	// ReasonBudgetDemote marks the mid-flight fallback taken when the
	// chosen engine aborted on the memory-feasibility budget.
	ReasonBudgetDemote = "auto:budget-demote"
	// ReasonExact is the opt-in exhaustive-DP tier: queries small enough
	// (Options.ExactRels) to afford full enumeration for the optimal plan.
	ReasonExact = "auto:dp-exact"
	// ReasonStaleDemote marks a DP-exact route demoted to SDP because the
	// cardinality-feedback ledger flagged the query's objects stale:
	// exhaustive DP's precision is exactly as good as the estimates it
	// exploits, and the ledger just measured those estimates lying.
	ReasonStaleDemote = "auto:stale-demote"
)

// Technique names the router routes between, strongest first. The router
// deliberately never routes to exhaustive DP by default: its
// super-polynomial blowup is exactly what a serving path must not gamble
// on. Operators may opt small queries into the DP tier via
// Options.ExactRels; even then the cardinality-feedback loop demotes DP
// back to SDP when the ledger flags the query's estimates stale. The IDP
// rung is the balanced IDP2 variant, not plain IDP1: IDP1's k-sized table
// rebuilds run for seconds on large stars (unservable), while IDP2's
// greedy-skeleton + windowed-DP refinement stays in single-digit
// milliseconds at plan quality close to the reference — exactly the
// latency/quality point a deadline-squeezed or budget-endangered request
// needs.
const (
	TechDP     = "dp"
	TechSDP    = "sdp"
	TechIDP    = "idp2"
	TechGreedy = "greedy"
)

// Options configures a Router. The zero value selects the defaults noted
// on each field.
type Options struct {
	// SmallRels routes queries with at most this many relations to greedy
	// (default 4): below it every technique finds the same plans and the
	// fast path is pure latency win.
	SmallRels int
	// HeavyRels routes queries with at least this many relations to IDP
	// (default 20): the band where full SDP approaches the memory-budget
	// cliff, which IDP's bounded subtrees sidestep. Deliberately beyond
	// the sizes SDP handles comfortably — SDP stays the default as long
	// as it is safe.
	HeavyRels int
	// DemoteRho is the rolling-regret threshold (default 1.15): a cheap
	// route whose regret EWMA on a (shape, band) key exceeds it is promoted
	// back to SDP. The paper's "Good" plans sit within 2× of optimal; 1.15
	// flags drift well before that boundary.
	DemoteRho float64
	// MinRegretSamples is how many regret observations a key needs before
	// the feedback loop may demote it (default 4) — one bad exemplar must
	// not flip a route.
	MinRegretSamples int64
	// SafetyFactor scales predicted latency before comparing against the
	// remaining deadline (default 2): EWMA means underestimate tails.
	SafetyFactor float64
	// LatencyAlpha is the EWMA smoothing factor for latency profiles
	// (default 0.2).
	LatencyAlpha float64
	// RegretAlpha is the EWMA smoothing factor for the regret feedback
	// stream (default 0.1 — quality drifts slower than latency).
	RegretAlpha float64
	// MinReserve and MaxReserve clamp the fallback reserve: the slice of
	// the remaining deadline withheld from the chosen engine so a
	// mid-flight demotion still has time to run greedy and render a
	// response (defaults 5ms and 250ms; the reserve is remaining/8 between
	// them).
	MinReserve time.Duration
	MaxReserve time.Duration
	// ExactRels opts queries into the exhaustive-DP tier: above the greedy
	// fast path and at most this many relations, route to full DP for the
	// enumeration-optimal plan. Default 0 — disabled; DP on the serving
	// path is strictly an operator's informed choice.
	ExactRels int
	// StaleScore is the feedback-ledger staleness at which the DP-exact
	// tier is demoted back to SDP (default 0.5, i.e. a windowed geomean
	// q-error of 2 on the query's worst object): when estimates are known
	// to lie, DP's exhaustive exploitation of them buys risk, not
	// optimality, so the robust heuristic serves instead.
	StaleScore float64
}

func (o Options) withDefaults() Options {
	if o.SmallRels <= 0 {
		o.SmallRels = 4
	}
	if o.HeavyRels <= 0 {
		o.HeavyRels = 20
	}
	if o.DemoteRho <= 0 {
		o.DemoteRho = 1.15
	}
	if o.MinRegretSamples <= 0 {
		o.MinRegretSamples = 4
	}
	if o.SafetyFactor <= 0 {
		o.SafetyFactor = 2
	}
	if o.LatencyAlpha <= 0 || o.LatencyAlpha > 1 {
		o.LatencyAlpha = 0.2
	}
	if o.RegretAlpha <= 0 || o.RegretAlpha > 1 {
		o.RegretAlpha = 0.1
	}
	if o.MinReserve <= 0 {
		o.MinReserve = 5 * time.Millisecond
	}
	if o.MaxReserve <= 0 {
		o.MaxReserve = 250 * time.Millisecond
	}
	if o.StaleScore <= 0 || o.StaleScore >= 1 {
		o.StaleScore = 0.5
	}
	return o
}

// Decision is one routing outcome: the technique to run, why, what latency
// the profiles predict for it, and the reserve the executor should withhold
// from the deadline to keep the greedy fallback viable.
type Decision struct {
	// Technique is the resolved technique name ("greedy", "sdp", "idp2").
	Technique string
	// Reason is the Reason* constant explaining the choice.
	Reason string
	// Predicted is the profile's latency estimate for Technique on this
	// (shape, band) key — EWMA when samples exist, prior otherwise.
	Predicted time.Duration
	// Reserve is nonzero when the executor should arm the mid-flight
	// fallback: run Technique with the deadline pulled in by Reserve, and
	// demote to greedy if that slice expires.
	Reserve time.Duration
}

// key identifies one latency or regret window.
type key struct{ tech, shape, band string }

// ewma is one exponentially-weighted profile: the smoothed value, sample
// count, and extrema for the debug surface.
type ewma struct {
	val  float64
	n    int64
	last float64
	max  float64
}

func (e *ewma) update(v, alpha float64) {
	e.n++
	e.last = v
	if v > e.max {
		e.max = v
	}
	if e.n == 1 {
		e.val = v
		return
	}
	e.val += alpha * (v - e.val)
}

// Router is the SLO-aware technique router. Construct with New; it is safe
// for concurrent use (Decide under a read lock against concurrent
// Observe/NoteRegret updates).
type Router struct {
	opts Options

	mu        sync.RWMutex
	lat       map[key]*ewma
	reg       map[key]*ewma
	decisions map[[2]string]int64 // (technique, reason) -> count
	fallbacks int64
	start     time.Time
}

// New builds a router with opts (zero value: all defaults).
func New(opts Options) *Router {
	return &Router{
		opts:      opts.withDefaults(),
		lat:       map[key]*ewma{},
		reg:       map[key]*ewma{},
		decisions: map[[2]string]int64{},
		start:     time.Now(),
	}
}

// Band buckets a relation count into the router's profile bands — the same
// bands the regret layer aggregates over, so the feedback loop's keys line
// up with the decision keys by construction.
func Band(rels int) string { return regret.Band(rels) }

// ladder returns the downgrade chain from tech toward cheaper techniques.
// The chain is by optimization effort, not quality: a deadline squeeze
// trades quality for an answer in time.
func ladder(tech string) []string {
	switch tech {
	case TechDP:
		return []string{TechDP, TechSDP, TechIDP, TechGreedy}
	case TechSDP:
		return []string{TechSDP, TechIDP, TechGreedy}
	case TechIDP:
		return []string{TechIDP, TechGreedy}
	default:
		return []string{TechGreedy}
	}
}

// Decide routes one query: rels relations, shape from query.Shape(), and
// the remaining deadline (0 = none). Decide is pure — it reads the live
// profiles but records nothing; the serving layer reports the executed
// outcome back via Count/Observe. Decide assumes fresh statistics; servers
// wired to a cardinality-feedback ledger call DecideObserved instead.
func (r *Router) Decide(rels int, shape string, remaining time.Duration) Decision {
	return r.DecideObserved(rels, shape, remaining, 0)
}

// DecideObserved is Decide plus the feedback loop's input: staleness is the
// ledger's worst staleness score over the query's catalog objects (0 when
// no ledger runs). It biases the ladder away from exhaustive DP — the
// technique most leveraged on estimate precision — when the ledger has
// measured the estimates drifting.
func (r *Router) DecideObserved(rels int, shape string, remaining time.Duration, staleness float64) Decision {
	band := Band(rels)

	r.mu.RLock()
	defer r.mu.RUnlock()

	// Base ladder: fast path for small or chain-like shapes, IDP for the
	// heavy tail, the opt-in exhaustive tier for small-enough queries, SDP
	// in between.
	tech, reason := TechSDP, ReasonDefault
	switch {
	case rels <= r.opts.SmallRels || shape == "single" || shape == "chain":
		tech, reason = TechGreedy, ReasonFastPath
	case rels >= r.opts.HeavyRels:
		tech, reason = TechIDP, ReasonHeavy
	case r.opts.ExactRels > 0 && rels <= r.opts.ExactRels:
		tech, reason = TechDP, ReasonExact
	}

	// Cardinality feedback: exhaustive DP chases the cost model's exact
	// optimum, so its advantage over the robust heuristic is real only
	// while the estimates are. A stale-flagged shape falls back to SDP —
	// the paper's point that heuristics lose little under misestimation
	// applies doubly when the misestimation is measured, not hypothetical.
	if tech == TechDP && staleness >= r.opts.StaleScore {
		tech, reason = TechSDP, ReasonStaleDemote
	}

	// Regret feedback: a cheap route whose rolling ρ on this key degraded
	// is promoted back to SDP — plan quality is the thing the cheap route
	// was trading away, and the shadow optimizer just measured the trade
	// going bad.
	if tech != TechSDP && tech != TechDP {
		if e := r.reg[key{tech, shape, band}]; e != nil &&
			e.n >= r.opts.MinRegretSamples && e.val > r.opts.DemoteRho {
			tech, reason = TechSDP, ReasonRegretPromote
		}
	}

	// Deadline: walk the downgrade chain until the predicted latency fits
	// what remains after the fallback reserve. No fit at all (even greedy
	// predicted over budget) still resolves to greedy — it is the cheapest
	// thing we have, and the mid-flight fallback cannot demote further.
	var reserve time.Duration
	if remaining > 0 {
		reserve = remaining / 8
		if reserve < r.opts.MinReserve {
			reserve = r.opts.MinReserve
		}
		if reserve > r.opts.MaxReserve {
			reserve = r.opts.MaxReserve
		}
		avail := remaining - reserve
		if avail <= 0 {
			avail = remaining / 2
		}
		chain := ladder(tech)
		fit := ""
		for _, t := range chain {
			if time.Duration(float64(r.predictLocked(t, shape, band))*r.opts.SafetyFactor) <= avail {
				fit = t
				break
			}
		}
		if fit == "" {
			fit = TechGreedy
		}
		if fit != tech {
			tech, reason = fit, ReasonDeadlineDowngrade
		}
	}

	dec := Decision{Technique: tech, Reason: reason, Predicted: r.predictLocked(tech, shape, Band(rels))}
	if tech != TechGreedy && remaining > 0 {
		dec.Reserve = reserve
	}
	return dec
}

// Predict returns the router's current latency estimate for tech on a
// (shape, band) key: the live EWMA when the key has samples, the static
// prior otherwise.
func (r *Router) Predict(tech, shape, band string) time.Duration {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.predictLocked(tech, shape, band)
}

func (r *Router) predictLocked(tech, shape, band string) time.Duration {
	if e := r.lat[key{tech, shape, band}]; e != nil && e.n > 0 {
		return time.Duration(e.val)
	}
	return prior(tech, band)
}

// Observe folds one measured optimization latency into the (tech, shape,
// band) profile. timedOut marks a run cut short by its deadline slice: the
// measured duration is then only a lower bound on the true latency and
// proof the current estimate is wrong by at least that much, so the profile
// jumps to twice the slice rather than blending toward it — one demotion is
// enough to turn the next identical request into a pre-flight downgrade.
func (r *Router) Observe(tech, shape, band string, d time.Duration, timedOut bool) {
	if d <= 0 {
		return
	}
	v := float64(d)
	if timedOut {
		v *= 2
	}
	k := key{tech, shape, band}
	r.mu.Lock()
	e := r.lat[k]
	if e == nil {
		e = &ewma{}
		r.lat[k] = e
	}
	e.update(v, r.opts.LatencyAlpha)
	if timedOut && e.val < v {
		e.val = v
	}
	r.mu.Unlock()
}

// NoteRegret folds one shadow-measured served/reference cost ratio into the
// (tech, shape, band) regret profile. Its signature matches
// regret.Options.OnSample so the server can wire the shadow optimizer's
// sample stream straight in.
func (r *Router) NoteRegret(tech, shape, band string, ratio float64) {
	if !(ratio > 0) {
		return
	}
	k := key{tech, shape, band}
	r.mu.Lock()
	e := r.reg[k]
	if e == nil {
		e = &ewma{}
		r.reg[k] = e
	}
	e.update(ratio, r.opts.RegretAlpha)
	r.mu.Unlock()
}

// Count records one executed routing outcome for the decision table —
// including "explicit" for requests that named their technique, so the
// debug surface shows the full serving mix, and the mid-flight demotion
// reasons, which it also tallies as fallbacks.
func (r *Router) Count(tech, reason string) {
	r.mu.Lock()
	r.decisions[[2]string{tech, reason}]++
	if reason == ReasonDeadlineDemote || reason == ReasonBudgetDemote {
		r.fallbacks++
	}
	r.mu.Unlock()
}

// bands lists the profile bands in ascending relation-count order.
var bands = []string{"1-4", "5-8", "9-12", "13-16", "17-24", "25+"}

// priors are the cold-start latency estimates per technique and band, in
// rough agreement with the repo's BENCH measurements on a single-core host
// (SDP Star-12 ≈ 9ms, Star-Chain-15 ≈ 22ms, Star-17 ≈ 61ms), deliberately
// rounded up — an optimistic prior causes mid-flight demotions until the
// EWMA learns better, a pessimistic one merely keeps the fast path warm.
var priors = map[string][]time.Duration{
	TechGreedy: {100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
		time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond},
	TechSDP: {time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond,
		60 * time.Millisecond, 250 * time.Millisecond, 2 * time.Second},
	// IDP2's cost is dominated by the greedy skeleton plus K-bounded DP
	// re-optimizations, which grows far more gently with query size than
	// full enumeration — measured single-digit ms through Star-24.
	TechIDP: {time.Millisecond, 4 * time.Millisecond, 6 * time.Millisecond,
		15 * time.Millisecond, 40 * time.Millisecond, 150 * time.Millisecond},
	// Exhaustive DP's priors reflect its super-polynomial blowup: sane in
	// the exact tier's intended bands, prohibitive beyond — a deadline of
	// any realistic size demotes it down the ladder there, which is the
	// intended behavior, not a tuning problem.
	TechDP: {time.Millisecond, 30 * time.Millisecond, 500 * time.Millisecond,
		10 * time.Second, 15 * time.Minute, 24 * time.Hour},
}

func prior(tech, band string) time.Duration {
	p, ok := priors[tech]
	if !ok {
		p = priors[TechSDP] // unknown technique: assume SDP-like cost
	}
	for i, b := range bands {
		if b == band {
			return p[i]
		}
	}
	return p[len(p)-1]
}
