package cost

import (
	"math"
	"testing"

	"sdpopt/internal/bits"
	"sdpopt/internal/catalog"
	"sdpopt/internal/query"
)

// scaledEstimator doubles every base-relation estimate of the wrapped
// estimator — a minimal lying estimator for the memo-reset guard.
type scaledEstimator struct {
	Estimator
	factor float64
}

func (s scaledEstimator) Name() string          { return "scaled" }
func (s scaledEstimator) RelRows(i int) float64 { return s.Estimator.RelRows(i) * s.factor }

func chainQuery(t *testing.T, n int) *query.Query {
	t.Helper()
	cfg := catalog.DefaultConfig()
	cfg.NumRelations = n
	cat, err := catalog.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rels := make([]int, n)
	preds := make([]query.Pred, 0, n-1)
	for i := range rels {
		rels[i] = i
		if i > 0 {
			preds = append(preds, query.Pred{LeftRel: i - 1, LeftCol: 0, RightRel: i, RightCol: 1})
		}
	}
	q, err := query.New(cat, rels, preds, nil)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestSetEstimatorResetsMemo guards the refactor's sharpest edge: SetRows is
// memoized per relation set, so swapping estimators must invalidate the
// memo — a stale entry would let a "true" model serve cardinalities computed
// under the lie.
func TestSetEstimatorResetsMemo(t *testing.T) {
	q := chainQuery(t, 5)
	m := NewModel(q, DefaultParams())
	s := bits.Of(0, 1, 2)
	orig := m.SetRows(s)

	def := m.Estimator()
	m.SetEstimator(scaledEstimator{Estimator: def, factor: 2})
	scaled := m.SetRows(s)
	if scaled == orig {
		t.Fatalf("SetRows(%v) = %g unchanged after estimator swap — stale memo", s, orig)
	}
	// Three base relations doubled, predicate selectivities unchanged.
	if want := orig * 8; math.Abs(scaled-want)/want > 1e-12 {
		t.Errorf("scaled SetRows = %g, want %g", scaled, want)
	}

	m.SetEstimator(nil) // restore the default catalog estimator
	if back := m.SetRows(s); back != orig {
		t.Errorf("SetRows after restoring default = %g, want bit-identical %g", back, orig)
	}
}

// TestForkDropsEstimatorMemo proves a fork never inherits memoized state
// computed under a previous estimator of the parent.
func TestForkDropsEstimatorMemo(t *testing.T) {
	q := chainQuery(t, 5)
	m := NewModel(q, DefaultParams())
	s := bits.Of(0, 1, 2, 3)
	base := m.SetRows(s) // populate the parent memo under the default

	m.SetEstimator(scaledEstimator{Estimator: NewCatalogEstimator(q), factor: 3})
	f := m.Fork()
	if got := f.SetRows(s); got == base {
		t.Fatalf("fork served the parent's pre-swap memo entry %g", base)
	}
	if got, want := f.SetRows(s), m.SetRows(s); got != want {
		t.Errorf("fork SetRows = %g, parent = %g; must agree bit-for-bit", got, want)
	}
}

// TestStatsLostFallbacks checks the magic-selectivity path: a column with
// StatsLost estimates with PostgreSQL's defaults, never its (zeroed) NDV.
func TestStatsLostFallbacks(t *testing.T) {
	cfg := catalog.DefaultConfig()
	cfg.NumRelations = 8
	cat, err := catalog.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Lose statistics on both sides of the first join predicate's columns.
	// The relations must exceed DefaultNDV rows so the [1, relRows] cap
	// doesn't shadow the magic constant.
	for _, rel := range []int{5, 6} {
		c := &cat.Rels[rel].Cols[0]
		c.StatsLost = true
		c.NDV = 0
		c.Skew = 0
	}
	rels := []int{5, 6, 7}
	preds := []query.Pred{
		{LeftRel: 0, LeftCol: 0, RightRel: 1, RightCol: 0},
		{LeftRel: 1, LeftCol: 1, RightRel: 2, RightCol: 1},
	}
	q, err := query.New(cat, rels, preds, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(q, DefaultParams())
	// Both sides lost, relations larger than DefaultNDV → 1/200.
	if got := m.PredSel(0); got != 1/DefaultNDV {
		t.Errorf("PredSel over stats-lost columns = %g, want %g", got, 1/DefaultNDV)
	}
	// The healthy predicate keeps its catalog estimate.
	healthy := NewModel(q, DefaultParams())
	if got, want := healthy.PredSel(1), m.PredSel(1); got != want {
		t.Errorf("healthy predicate drifted: %g vs %g", got, want)
	}

	// A filter on a stats-lost column gets the magic one-third.
	qf, err := query.NewFiltered(cat, rels, preds,
		[]query.Filter{{Rel: 0, Col: 0, Bound: 10}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mf := NewModel(qf, DefaultParams())
	if got := mf.FilterSel(qf.Filters[0]); got != DefaultRangeSel {
		t.Errorf("FilterSel on stats-lost column = %g, want %g", got, DefaultRangeSel)
	}
	// And the relation's base rows reflect it.
	if got, want := mf.BaseRows(0), math.Max(1, cat.Rels[5].Rows*DefaultRangeSel); got != want {
		t.Errorf("BaseRows under lost stats = %g, want %g", got, want)
	}
}
