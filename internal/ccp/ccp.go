// Package ccp enumerates the connected-subgraph / connected-complement
// (csg-cmp) pairs of a join graph — DPccp-style enumeration after Moerkotte
// & Neumann's "Analysis of Two Existing and One New Dynamic Programming
// Algorithm for the Generation of Optimal Bushy Join Trees without Cross
// Products" (VLDB 2006).
//
// A csg-cmp pair is an unordered pair of disjoint, individually connected
// vertex sets (S1, S2) joined by at least one edge. These are exactly the
// class pairs a bushy DP enumerator must join, so emitting only them makes
// pairs_considered == pairs_connected *by construction* — where DPsize scans
// per-level cross products and filters, and the PR 5 adjacency-indexed
// Walker gathers joinable candidates from per-level bitmaps, DPccp never
// generates a candidate it will reject and does work proportional to the
// number of connected pairs rather than to the level population.
//
// The enumeration order carries the invariant dynamic programming needs:
// when a pair (S1, S2) is emitted, every csg-cmp pair of S1 and every
// csg-cmp pair of S2 has already been emitted, so a DP table updated at each
// emission always reads finalized entries. The order is achieved the
// classical way:
//
//   - the outer loop starts connected subgraphs from each vertex v_i with i
//     descending, forbidding the prefix B_i = {v_0..v_i}; every csg started
//     at v_i has minimum v_i, and its complements have strictly larger
//     minima, so their own pairs were produced by earlier outer iterations;
//   - within an iteration, subgraphs grow by subsets of the breadth-first
//     neighborhood in size-ascending order with growing forbidden sets,
//     which makes csg emission ⊆-compatible: a subgraph is always emitted
//     after all of its connected subsets.
//
// Vertices are indexes into a caller-provided adjacency table, so the graph
// may be a contracted view (IDP's compound leaves map several base relations
// onto one vertex). The enumerator is deterministic: identical adjacency
// yields an identical emission sequence.
package ccp

import (
	"sdpopt/internal/bits"
)

// Options bounds an enumeration.
type Options struct {
	// MinLevel suppresses emission of pairs whose combined vertex count is
	// ≤ MinLevel (their joins were already performed by a previous partial
	// run). 0 or 1 emits everything from pairs of singletons up.
	MinLevel int
	// MaxLevel suppresses pairs whose combined vertex count exceeds it and
	// prunes the recursion that could only produce such pairs — the engine's
	// partial-run bound (IDP enumerates blocks of k levels). 0 means no
	// bound.
	MaxLevel int
	// LeftDeep restricts emission to pairs with at least one singleton side,
	// System R's classic space: every join extends a composite by one leaf.
	LeftDeep bool
}

// Enumerate emits every csg-cmp pair of the graph within the level bounds,
// each unordered pair exactly once with min(S1) < min(S2). adj[i] is the
// neighbor set of vertex i (never containing i); len(adj) is the vertex
// count, at most bits.MaxRelations. A non-nil error from emit aborts the
// enumeration and is returned unchanged.
func Enumerate(adj []bits.Set, opts Options, emit func(s1, s2 bits.Set) error) error {
	n := len(adj)
	if n < 2 {
		return nil
	}
	maxLevel := opts.MaxLevel
	if maxLevel <= 0 || maxLevel > n {
		maxLevel = n
	}
	minLevel := opts.MinLevel
	if minLevel < 1 {
		minLevel = 1
	}
	if maxLevel < 2 || minLevel >= maxLevel {
		return nil
	}
	e := &enum{adj: adj, minLevel: minLevel, maxLevel: maxLevel, leftDeep: opts.LeftDeep, emit: emit}
	for i := n - 1; i >= 0; i-- {
		s1 := bits.Single(i)
		forbidden := bits.Full(i + 1) // B_i: v_i and every smaller vertex
		if err := e.emitCsg(s1, 1, forbidden); err != nil {
			return err
		}
		if maxLevel >= 3 { // a grown csg needs room for at least one cmp vertex
			if err := e.csgRec(s1, 1, forbidden, forbidden); err != nil {
				return err
			}
		}
	}
	return nil
}

type enum struct {
	adj      []bits.Set
	minLevel int
	maxLevel int
	leftDeep bool
	emit     func(s1, s2 bits.Set) error

	// scratch reuses one member buffer per recursion depth for the
	// size-bounded subset walks; depths beyond the slice grow it lazily.
	scratch [][]int
}

// neighbors returns the neighbor set of s: vertices outside s adjacent to
// any member.
func (e *enum) neighbors(s bits.Set) bits.Set {
	var nb bits.Set
	for it := s.Iter(); ; {
		i, ok := it.Next()
		if !ok {
			break
		}
		nb = nb.Union(e.adj[i])
	}
	return nb.Diff(s)
}

// members fills the depth-d scratch buffer with s's vertices.
func (e *enum) members(d int, s bits.Set) []int {
	for len(e.scratch) <= d {
		e.scratch = append(e.scratch, nil)
	}
	buf := e.scratch[d][:0]
	for it := s.Iter(); ; {
		i, ok := it.Next()
		if !ok {
			break
		}
		buf = append(buf, i)
	}
	e.scratch[d] = buf
	return buf
}

// subsets calls fn for every non-empty subset of nb with at most maxSize
// vertices, in size-ascending order (size-ascending is ⊆-compatible, the
// property the emission-order invariant rests on). Enumerating combinations
// size by size — instead of the classic full subset counter — keeps the work
// proportional to the subsets actually produced, which matters when a level
// bound caps the size well below the neighborhood (IDP blocks on hub-heavy
// contracted graphs). fn's error aborts.
func (e *enum) subsets(depth int, nb bits.Set, maxSize int, fn func(sub bits.Set, size int) error) error {
	m := e.members(depth, nb)
	if maxSize > len(m) {
		maxSize = len(m)
	}
	var idx [bits.MaxRelations]int
	for size := 1; size <= maxSize; size++ {
		// Initialize the first size-combination 0,1,..,size-1.
		for i := 0; i < size; i++ {
			idx[i] = i
		}
		for {
			var sub bits.Set
			for i := 0; i < size; i++ {
				sub = sub.Add(m[idx[i]])
			}
			if err := fn(sub, size); err != nil {
				return err
			}
			// Advance the combination in lexicographic order.
			i := size - 1
			for i >= 0 && idx[i] == len(m)-size+i {
				i--
			}
			if i < 0 {
				break
			}
			idx[i]++
			for j := i + 1; j < size; j++ {
				idx[j] = idx[j-1] + 1
			}
		}
	}
	return nil
}

// csgRec grows the connected subgraph s (EnumerateCsgRec): every non-empty
// neighborhood subset yields a larger csg, emitted (with its complements)
// before any recursion so the ⊆-compatible order holds, then each extension
// recurses with the whole neighborhood forbidden. x accumulates the growth
// exclusions down the recursion; bmin stays the outer iteration's prefix —
// complements are only ever barred from the prefix, not from the growth
// exclusions (a vertex this branch declined to grow into is still a valid
// complement member).
func (e *enum) csgRec(s bits.Set, size int, x, bmin bits.Set) error {
	nb := e.neighbors(s).Diff(x)
	if nb.IsEmpty() {
		return nil
	}
	depth := size // recursion depth strictly increases with size
	// A csg used as S1 needs at least one vertex left for its complement.
	grow := e.maxLevel - 1 - size
	if err := e.subsets(depth, nb, grow, func(sub bits.Set, subSize int) error {
		return e.emitCsg(s.Union(sub), size+subSize, bmin)
	}); err != nil {
		return err
	}
	if grow < 2 { // no extension can grow further
		return nil
	}
	xNext := x.Union(nb)
	return e.subsets(depth, nb, grow-1, func(sub bits.Set, subSize int) error {
		return e.csgRec(s.Union(sub), size+subSize, xNext, bmin)
	})
}

// emitCsg enumerates the connected complements of csg s1 (EmitCsg): each
// neighbor v of s1 outside the forbidden prefix starts a complement, grown
// exactly like a csg but with s1, the prefix, and v's smaller co-neighbors
// forbidden — the same min-vertex decomposition, applied within the
// complement space, so each (s1, s2) pair surfaces exactly once.
func (e *enum) emitCsg(s1 bits.Set, size1 int, bmin bits.Set) error {
	x := bmin.Union(s1)
	nb := e.neighbors(s1).Diff(x)
	if nb.IsEmpty() {
		return nil
	}
	growS2 := e.maxLevel - size1 - 1
	if e.leftDeep && size1 > 1 {
		growS2 = 0 // composite S1: only singleton complements keep one side a leaf
	}
	for it := nb.Iter(); ; {
		v, ok := it.Next()
		if !ok {
			return nil
		}
		s2 := bits.Single(v)
		if size1+1 > e.minLevel {
			if err := e.emit(s1, s2); err != nil {
				return err
			}
		}
		if growS2 > 0 {
			// Forbid v's predecessors within the neighborhood (each larger
			// complement is found from its minimal neighbor only) alongside
			// x: the complement growth space is disjoint from s1 and B_min.
			bv := nb.Intersect(bits.Full(v + 1))
			if err := e.cmpRec(s1, size1, s2, 1, x.Union(bv)); err != nil {
				return err
			}
		}
	}
}

// cmpRec grows the complement s2 of s1 (EnumerateCmp's recursive half),
// emitting each grown complement as a pair with s1.
func (e *enum) cmpRec(s1 bits.Set, size1 int, s2 bits.Set, size2 int, x bits.Set) error {
	nb := e.neighbors(s2).Diff(x)
	if nb.IsEmpty() {
		return nil
	}
	depth := size1 + size2
	grow := e.maxLevel - size1 - size2
	if err := e.subsets(depth, nb, grow, func(sub bits.Set, subSize int) error {
		if size1+size2+subSize <= e.minLevel {
			return nil
		}
		return e.emit(s1, s2.Union(sub))
	}); err != nil {
		return err
	}
	if grow < 2 {
		return nil
	}
	xNext := x.Union(nb)
	return e.subsets(depth, nb, grow-1, func(sub bits.Set, subSize int) error {
		return e.cmpRec(s1, size1, s2.Union(sub), size2+subSize, xNext)
	})
}
