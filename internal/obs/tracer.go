package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// Event is one structured trace record. Attrs carry the JSON-serializable
// measurements (counts, durations in ns, names); Payload optionally carries
// an arbitrary in-process value for local consumers (e.g. core.Trace reads
// full pruning decisions from it) and is never serialized.
type Event struct {
	Time    time.Time
	Type    string
	Attrs   map[string]any
	Payload any
}

// Event types emitted by the engine layers. The JSONL schema is documented
// in the README's Observability section.
const (
	EvOptimizeStart = "optimize.start" // tech, rels
	EvOptimizeEnd   = "optimize.end"   // tech, rels, dur_ns, plans_costed, classes_created, peak_sim_bytes, cost, err
	EvLevel         = "level"          // tech, level, dur_ns, classes_created, plans_costed, classes_alive, sim_bytes
	EvBudgetAbort   = "budget.abort"   // tech, level, sim_bytes, budget
	EvSDPLevel      = "sdp.level"      // tech, level, prune_group, free_group, survivors, pruned
	EvSDPPartition  = "sdp.partition"  // tech, level, label, size, survivors, rc, cs, rs
	EvIDPIteration  = "idp.iteration"  // tech, iter, leaves, block, dur_ns
	EvIDPCommit     = "idp.commit"     // tech, iter, set, set_size, candidates, shortlisted
	EvBatchStart    = "batch.start"    // graph, instances, techniques, workers
	EvBatchEnd      = "batch.end"      // graph, dur_ns
	EvInstance      = "instance"       // graph, tech, instance, dur_ns, plans_costed, feasible
	EvRegret        = "regret"         // tech, ref, shape, rels, ratio, served_cost, ref_cost, trace_id, dur_ns
	EvFeedback      = "feedback"       // object, kind, est, actual, qerr, tech, rels, trace_id
)

// MarshalJSON flattens the event to one JSON object: {"t": ..., "ev": ...,
// <attrs...>}. Attr keys are emitted in sorted order for stable output.
func (e Event) MarshalJSON() ([]byte, error) {
	var buf []byte
	buf = append(buf, `{"t":`...)
	ts, err := e.Time.MarshalJSON()
	if err != nil {
		return nil, err
	}
	buf = append(buf, ts...)
	buf = append(buf, `,"ev":`...)
	tb, _ := json.Marshal(e.Type)
	buf = append(buf, tb...)
	keys := make([]string, 0, len(e.Attrs))
	for k := range e.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		kb, _ := json.Marshal(k)
		vb, err := json.Marshal(e.Attrs[k])
		if err != nil {
			return nil, fmt.Errorf("obs: attr %q: %w", k, err)
		}
		buf = append(buf, ',')
		buf = append(buf, kb...)
		buf = append(buf, ':')
		buf = append(buf, vb...)
	}
	buf = append(buf, '}')
	return buf, nil
}

// Sink consumes trace events. Emit must be safe for concurrent use.
type Sink interface {
	Emit(Event)
	Close() error
}

// Flusher is implemented by sinks that buffer writes and can force them out
// without closing (JSONLSink). Tracer.Flush calls it on graceful shutdown
// so no event of an in-flight request is stranded in a buffer.
type Flusher interface {
	Flush() error
}

// Tracer fans events out to its sinks. A nil tracer drops everything; the
// enabled check is a nil comparison.
type Tracer struct {
	sinks []Sink
}

// NewTracer returns a tracer over the given sinks (nil if none).
func NewTracer(sinks ...Sink) *Tracer {
	if len(sinks) == 0 {
		return nil
	}
	return &Tracer{sinks: sinks}
}

// Emit timestamps and delivers one event. No-op on a nil tracer.
func (t *Tracer) Emit(typ string, attrs map[string]any) {
	t.EmitPayload(typ, attrs, nil)
}

// EmitPayload is Emit with an in-process payload attached.
func (t *Tracer) EmitPayload(typ string, attrs map[string]any, payload any) {
	if t == nil {
		return
	}
	e := Event{Time: time.Now(), Type: typ, Attrs: attrs, Payload: payload}
	for _, s := range t.sinks {
		s.Emit(e)
	}
}

// Flush forces buffered writes out of every sink implementing Flusher,
// returning the first error. The sinks stay usable afterwards.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	var first error
	for _, s := range t.sinks {
		if f, ok := s.(Flusher); ok {
			if err := f.Flush(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Close closes every sink, returning the first error.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	var first error
	for _, s := range t.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// MemSink buffers events in memory — the sink used by tests and by the CLIs'
// in-process trace tables.
type MemSink struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends the event.
func (s *MemSink) Emit(e Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Close is a no-op.
func (s *MemSink) Close() error { return nil }

// Events returns a snapshot of the captured events.
func (s *MemSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// ByType returns the captured events of one type, in order.
func (s *MemSink) ByType(typ string) []Event {
	var out []Event
	for _, e := range s.Events() {
		if e.Type == typ {
			out = append(out, e)
		}
	}
	return out
}

// JSONLSink writes events as JSON Lines through a buffered writer.
type JSONLSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer
	err error
}

// NewJSONLSink wraps an open writer. If w is also an io.Closer it is closed
// by Close.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// OpenJSONL creates (truncating) a JSONL trace file at path.
func OpenJSONL(path string) (*JSONLSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: trace file: %w", err)
	}
	return NewJSONLSink(f), nil
}

// Emit serializes one event as a JSON line. Marshal errors are reported on
// Close rather than dropped silently.
func (s *JSONLSink) Emit(e Event) {
	b, err := json.Marshal(e)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		if s.err == nil {
			s.err = err
		}
		return
	}
	s.w.Write(b)
	s.w.WriteByte('\n')
}

// Flush forces buffered lines to the underlying writer without closing it;
// the sink remains usable. Earlier marshal errors surface here as well as
// on Close.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.w.Flush()
	if s.err != nil && err == nil {
		err = s.err
	}
	return err
}

// Close flushes the buffer and closes the underlying file, if any.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.w.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	if s.err != nil && err == nil {
		err = s.err
	}
	return err
}
