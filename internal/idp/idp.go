// Package idp implements Iterative Dynamic Programming (IDP), the best
// prior search-space heuristic the paper compares SDP against.
//
// IDP1 (Kossmann & Stocker) runs standard DP bottom-up until a block size k,
// commits the most promising size-k subplan as a new compound base relation,
// and restarts DP on the reduced problem, iterating until a complete plan
// emerges. The paper evaluates the strongest reported variant,
// IDP1-balanced-bestRow: block sizes balanced across iterations, and a
// hybrid evaluation that shortlists the top 5 % of size-k subplans by
// MinRows, greedily balloons each shortlisted subplan to a complete plan
// (again by MinRows), and commits the subplan whose ballooned completion is
// cheapest.
package idp

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"sdpopt/internal/cost"
	"sdpopt/internal/dp"
	"sdpopt/internal/memo"
	"sdpopt/internal/obs"
	"sdpopt/internal/plan"
	"sdpopt/internal/query"
)

// Eval selects the plan-evaluation function used to rank size-k subplans —
// the basic functions studied in the IDP paper.
type Eval int

// Plan-evaluation functions.
const (
	// MinRows ranks subplans by fewest output rows ("Minimum Intermediate
	// Result"); the IDP paper's best performer and this package's default.
	MinRows Eval = iota
	// MinCost ranks subplans by cheapest cost.
	MinCost
	// MinSel ranks subplans by lowest output selectivity.
	MinSel
)

// String names the evaluation function.
func (e Eval) String() string {
	switch e {
	case MinRows:
		return "MinRows"
	case MinCost:
		return "MinCost"
	case MinSel:
		return "MinSel"
	}
	return fmt.Sprintf("Eval(%d)", int(e))
}

func (e Eval) score(c *memo.Class) float64 {
	switch e {
	case MinCost:
		return c.Best.Cost
	case MinSel:
		return c.Sel
	default:
		return c.Rows
	}
}

// Options configures an IDP run.
type Options struct {
	// K is the DP block size: the number of levels enumerated per
	// iteration. The paper uses 4 and 7.
	K int
	// Balanced evens block sizes across iterations (IDP1-balanced) instead
	// of always using K.
	Balanced bool
	// Eval ranks candidate subplans; the paper's variant uses MinRows.
	Eval Eval
	// BalloonFrac is the fraction of top-ranked size-k subplans greedily
	// ballooned to complete plans before committing (the paper: 5 %).
	// Zero disables ballooning: the top-ranked subplan is committed
	// directly.
	BalloonFrac float64
	// Budget is the simulated-memory feasibility limit (0 = unlimited).
	Budget int64
	// Ctx, if non-nil, bounds the optimization; cancellation aborts with
	// dp.ErrCanceled (see dp.Options.Ctx).
	Ctx context.Context
	// Model supplies costing; if nil a fresh default model is created.
	Model *cost.Model
	// Obs selects the observer for metrics and trace events; nil falls back
	// to the process-wide default (obs.Default), which is off by default.
	Obs *obs.Observer
}

// DefaultOptions returns the paper's representative configuration:
// IDP1-balanced-bestRow with k=7 and 5 % ballooning.
func DefaultOptions() Options {
	return Options{K: 7, Balanced: true, Eval: MinRows, BalloonFrac: 0.05}
}

// Optimize runs IDP on q and returns the chosen plan with aggregated
// overhead statistics across all iterations.
func Optimize(q *query.Query, opts Options) (*plan.Plan, dp.Stats, error) {
	if opts.K < 2 {
		return nil, dp.Stats{}, fmt.Errorf("idp: block size K=%d must be at least 2", opts.K)
	}
	model := opts.Model
	if model == nil {
		model = cost.NewModel(q, cost.DefaultParams())
	}
	ob := obs.Or(opts.Obs)
	label := fmt.Sprintf("IDP(%d)", opts.K)
	cIters := ob.Counter(obs.MIDPIterations)
	done := dp.ObserveRun(ob, label, q)
	p, st, err := func() (*plan.Plan, dp.Stats, error) {
		started := time.Now()
		costedAtStart := model.PlansCosted
		leaves := dp.BaseLeaves(q)
		var agg dp.Stats

		for iter := 1; ; iter++ {
			iterStart := time.Now()
			block := opts.K
			if opts.Balanced {
				block = balancedBlock(len(leaves), opts.K)
			}
			emitIter := func() {
				cIters.Add(1)
				if ob.Tracing() {
					ob.Emit(obs.EvIDPIteration, map[string]any{
						"tech":   label,
						"iter":   iter,
						"leaves": len(leaves),
						"block":  block,
						"dur_ns": time.Since(iterStart).Nanoseconds(),
					})
				}
			}
			e, err := dp.NewEngine(q, leaves, dp.Options{Budget: opts.Budget, Ctx: opts.Ctx, Model: model, Obs: ob, Label: label})
			if err != nil {
				if e != nil {
					accumulate(&agg, e.Stats())
				}
				return nil, finish(agg, model, costedAtStart, started), err
			}
			if len(leaves) <= block {
				// Final iteration: DP runs to the top.
				if err := e.Run(len(leaves)); err != nil {
					accumulate(&agg, e.Stats())
					return nil, finish(agg, model, costedAtStart, started), err
				}
				p, err := e.Finalize()
				accumulate(&agg, e.Stats())
				emitIter()
				return p, finish(agg, model, costedAtStart, started), err
			}
			if err := e.Run(block); err != nil {
				accumulate(&agg, e.Stats())
				return nil, finish(agg, model, costedAtStart, started), err
			}
			chosen, cands, short, err := selectSubplan(q, model, e.Memo, leaves, block, opts)
			accumulate(&agg, e.Stats())
			if err != nil {
				return nil, finish(agg, model, costedAtStart, started), err
			}
			emitIter()
			if ob.Tracing() {
				ob.Emit(obs.EvIDPCommit, map[string]any{
					"tech":        label,
					"iter":        iter,
					"set":         chosen.Set.String(),
					"set_size":    chosen.Set.Len(),
					"candidates":  cands,
					"shortlisted": short,
				})
			}
			leaves = commit(leaves, chosen)
		}
	}()
	done(st, p, err)
	return p, st, err
}

// balancedBlock picks this iteration's block size so that the remaining
// iterations shrink the problem by near-equal amounts, never exceeding k.
// Each iteration of block size b reduces the leaf count by b-1.
func balancedBlock(remaining, k int) int {
	if remaining <= k {
		return remaining
	}
	iters := int(math.Ceil(float64(remaining-1) / float64(k-1)))
	b := 1 + int(math.Ceil(float64(remaining-1)/float64(iters)))
	if b > k {
		b = k
	}
	if b < 2 {
		b = 2
	}
	return b
}

// selectSubplan implements the hybrid evaluation: shortlist the top
// BalloonFrac of size-block classes under opts.Eval, balloon each to a
// complete plan greedily, and return the class whose completion is
// cheapest, along with the candidate and shortlist sizes for reporting.
func selectSubplan(q *query.Query, model *cost.Model, m *memo.Memo, leaves []dp.Leaf, block int, opts Options) (*memo.Class, int, int, error) {
	cands := m.Level(block)
	if len(cands) == 0 {
		return nil, 0, 0, fmt.Errorf("idp: no candidate subplans at level %d", block)
	}
	// Canonical set order breaks score ties: Level returns classes in
	// creation order, which depends on the enumeration strategy, and the
	// shortlist cut below must not.
	sort.SliceStable(cands, func(a, b int) bool {
		sa, sb := opts.Eval.score(cands[a]), opts.Eval.score(cands[b])
		if sa != sb {
			return sa < sb
		}
		return cands[a].Set.Less(cands[b].Set)
	})
	if opts.BalloonFrac <= 0 {
		return cands[0], len(cands), 1, nil
	}
	short := int(math.Ceil(opts.BalloonFrac * float64(len(cands))))
	if short < 1 {
		short = 1
	}
	if short > len(cands) {
		short = len(cands)
	}
	var best *memo.Class
	bestCost := math.Inf(1)
	for _, c := range cands[:short] {
		full := balloon(q, model, c, leaves, opts.Eval)
		if full.Cost < bestCost {
			bestCost = full.Cost
			best = c
		}
	}
	return best, len(cands), short, nil
}

// balloon greedily extends class c's best plan to a complete plan: at each
// step it joins the leaf (not yet covered) that minimizes the evaluation
// function of the grown composite, using the cheapest physical join. This
// is the IDP paper's "ballooning to complete plans".
func balloon(q *query.Query, model *cost.Model, c *memo.Class, leaves []dp.Leaf, eval Eval) *plan.Plan {
	cur := c.Best
	covered := c.Set
	for {
		remaining := false
		bestScore := math.Inf(1)
		var bestLeaf *dp.Leaf
		var bestRows float64
		for li := range leaves {
			l := &leaves[li]
			if covered.Overlaps(l.Set) {
				continue
			}
			remaining = true
			if !q.Connected(covered, l.Set) {
				continue
			}
			rows := model.SetRows(covered.Union(l.Set))
			score := rows
			switch eval {
			case MinSel:
				score = model.Selectivity(covered.Union(l.Set), rows)
			case MinCost:
				// Cost requires building the join; approximate the greedy
				// score by rows·1 plus current cost to stay cheap — the
				// true cost ranking happens below when the join is built.
				score = rows
			}
			if score < bestScore {
				bestScore = score
				bestLeaf = l
				bestRows = rows
			}
		}
		if !remaining {
			return cur
		}
		if bestLeaf == nil {
			// No connected leaf: cannot happen on connected join graphs.
			panic("idp: ballooning stuck on a connected graph")
		}
		leafPlan := bestLeafPlan(model, bestLeaf)
		preds := q.PredsBetween(covered, bestLeaf.Set)
		var cheapest *plan.Plan
		for _, in := range []cost.JoinInputs{
			{Outer: cur, Inner: leafPlan, Preds: preds, Rows: bestRows},
			{Outer: leafPlan, Inner: cur, Preds: preds, Rows: bestRows},
		} {
			for _, p := range model.JoinPlans(in) {
				if cheapest == nil || p.Cost < cheapest.Cost {
					cheapest = p
				}
			}
		}
		cur = cheapest
		covered = covered.Union(bestLeaf.Set)
	}
}

func bestLeafPlan(model *cost.Model, l *dp.Leaf) *plan.Plan {
	paths := l.Plans
	if paths == nil {
		paths = model.AccessPaths(l.Set.Min())
	}
	best := paths[0]
	for _, p := range paths[1:] {
		if p.Cost < best.Cost {
			best = p
		}
	}
	return best
}

// commit replaces the leaves covered by the chosen class with one compound
// leaf carrying the class's retained plans.
func commit(leaves []dp.Leaf, chosen *memo.Class) []dp.Leaf {
	out := make([]dp.Leaf, 0, len(leaves))
	for _, l := range leaves {
		if !chosen.Set.Contains(l.Set) {
			out = append(out, l)
		}
	}
	return append(out, dp.Leaf{Set: chosen.Set, Plans: chosen.Paths()})
}

// accumulate folds one iteration's engine stats into the running aggregate:
// memory peaks take the maximum (each restart frees the previous memo, as the
// paper's in-PostgreSQL implementation does), counters — classes created and
// enumeration pairs — add across restarts. PlansCosted and Elapsed are
// ignored here; finish derives them from the shared model and start time.
func accumulate(agg *dp.Stats, s dp.Stats) {
	agg.Memo.ClassesCreated += s.Memo.ClassesCreated
	agg.Memo.ClassesAlive = s.Memo.ClassesAlive
	agg.Memo.PathsRetained = s.Memo.PathsRetained
	agg.Memo.SimBytes = s.Memo.SimBytes
	if s.Memo.PeakSimBytes > agg.Memo.PeakSimBytes {
		agg.Memo.PeakSimBytes = s.Memo.PeakSimBytes
	}
	agg.PairsConsidered += s.PairsConsidered
	agg.PairsConnected += s.PairsConnected
}

func finish(agg dp.Stats, model *cost.Model, costedAtStart int64, started time.Time) dp.Stats {
	agg.PlansCosted = model.PlansCosted - costedAtStart
	agg.Elapsed = time.Since(started)
	return agg
}
