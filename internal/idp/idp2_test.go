package idp

import (
	"testing"

	"sdpopt/internal/bits"
	"sdpopt/internal/dp"
	"sdpopt/internal/query"
	"sdpopt/internal/testutil"
)

func TestIDP2ProducesValidPlans(t *testing.T) {
	for _, tc := range []struct {
		name  string
		n     int
		edges []query.Edge
	}{
		{"chain-10", 10, query.ChainEdges(10)},
		{"star-10", 10, query.StarEdges(10)},
		{"star-chain-12", 12, query.StarChainEdges(12, 8)},
		{"cycle-8", 8, query.CycleEdges(8)},
	} {
		q := fixture(t, tc.n, tc.edges)
		p, stats, err := Optimize2(q, Options{K: 5})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: invalid plan: %v", tc.name, err)
		}
		if p.Rels != bits.Full(tc.n) {
			t.Fatalf("%s: covers %v", tc.name, p.Rels)
		}
		if stats.PlansCosted <= 0 {
			t.Errorf("%s: no plans costed", tc.name)
		}
	}
}

func TestIDP2NeverBeatsDP(t *testing.T) {
	q := fixture(t, 10, query.StarChainEdges(10, 6))
	optimal, _, err := dp.Optimize(q, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{3, 5, 7} {
		p, _, err := Optimize2(q, Options{K: k})
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if p.Cost < optimal.Cost*(1-1e-9) {
			t.Errorf("IDP2(%d) %g beats DP %g", k, p.Cost, optimal.Cost)
		}
	}
}

func TestIDP2ImprovesOnGreedyStart(t *testing.T) {
	// The subtree re-optimization pass must never worsen the greedy start;
	// measure that a large K (full re-plan) reaches the DP optimum.
	q := fixture(t, 8, query.StarEdges(8))
	optimal, _, err := dp.Optimize(q, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := Optimize2(q, Options{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	// K = n re-optimizes the whole tree exhaustively.
	if p.Cost > optimal.Cost*(1+1e-9) {
		t.Errorf("IDP2(n) cost %g, want DP optimum %g", p.Cost, optimal.Cost)
	}
}

func TestIDP2MonotoneInK(t *testing.T) {
	q := fixture(t, 11, query.StarChainEdges(11, 7))
	small, _, err := Optimize2(q, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	big, _, err := Optimize2(q, Options{K: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Not a theorem (different local optima), but a strong regression
	// smell: the bigger window should not be much worse.
	if big.Cost > small.Cost*1.2 {
		t.Errorf("IDP2(9) cost %g much worse than IDP2(3) %g", big.Cost, small.Cost)
	}
}

func TestIDP2RejectsBadK(t *testing.T) {
	q := fixture(t, 4, query.ChainEdges(4))
	if _, _, err := Optimize2(q, Options{K: 1}); err == nil {
		t.Error("K=1 accepted")
	}
}

func TestIDP2Ordered(t *testing.T) {
	cat := testutil.Catalog(9)
	q := testutil.MustQuery(cat, 9, query.StarEdges(9), &query.OrderSpec{Rel: 0, Col: 0})
	p, _, err := Optimize2(q, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ec := q.OrderEqClass(); ec >= 0 && p.Order != ec {
		t.Errorf("ordered IDP2 delivers order %d, want %d", p.Order, ec)
	}
}

func TestIDP2Deterministic(t *testing.T) {
	q := fixture(t, 12, query.StarEdges(12))
	a, _, err := Optimize2(q, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Optimize2(q, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost {
		t.Errorf("IDP2 non-deterministic: %g vs %g", a.Cost, b.Cost)
	}
}
