package skyline

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 2}, []float64{2, 3}, true},
		{[]float64{1, 3}, []float64{2, 3}, true},
		{[]float64{1, 2}, []float64{1, 2}, false}, // duplicates do not dominate
		{[]float64{2, 1}, []float64{1, 2}, false}, // incomparable
		{[]float64{3, 3}, []float64{2, 3}, false},
		{[]float64{1}, []float64{2}, true},
	}
	for _, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDominatesDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on dimension mismatch")
		}
	}()
	Dominates([]float64{1}, []float64{1, 2})
}

// Table 2.2 of the paper, verbatim: the PruneGroup partition on root hub 1
// with feature vectors [R, C, S] and the expected per-skyline memberships.
var paperTable22 = struct {
	names []string
	fvs   [][]float64
	rc    []bool
	cs    []bool
	rs    []bool
	union []bool
}{
	names: []string{"123", "125", "135", "145", "156"},
	fvs: [][]float64{
		{187638, 49386, 3.9e-5},
		{122879, 52132, 1.0e-5},
		{242620, 56021, 1.0e-5},
		{241562, 55388, 6.65e-6},
		{385375, 52632, 4.5e-6},
	},
	rc:    []bool{true, true, false, false, false},
	cs:    []bool{true, true, false, false, true},
	rs:    []bool{false, true, false, true, true},
	union: []bool{true, true, false, true, true},
}

func project(fvs [][]float64, a, b int) [][]float64 {
	out := make([][]float64, len(fvs))
	for i, p := range fvs {
		out[i] = []float64{p[a], p[b]}
	}
	return out
}

func TestPaperTable22PairwiseSkylines(t *testing.T) {
	tt := paperTable22
	checks := []struct {
		name string
		a, b int
		want []bool
	}{
		{"RC", 0, 1, tt.rc},
		{"CS", 1, 2, tt.cs},
		{"RS", 0, 2, tt.rs},
	}
	for _, c := range checks {
		got := TwoD(project(tt.fvs, c.a, c.b))
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s skyline: JCR %s = %v, want %v", c.name, tt.names[i], got[i], c.want[i])
			}
		}
	}
}

func TestPaperTable22Disjunctive(t *testing.T) {
	tt := paperTable22
	got := DisjunctivePairwise(tt.fvs, RCSPairs)
	for i := range got {
		if got[i] != tt.union[i] {
			t.Errorf("disjunctive survivor %s = %v, want %v", tt.names[i], got[i], tt.union[i])
		}
	}
}

func TestAlgorithmsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(40)
		dim := 2 + rng.Intn(3)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = make([]float64, dim)
			for j := range pts[i] {
				// Small integer coordinates force plenty of ties.
				pts[i][j] = float64(rng.Intn(6))
			}
		}
		bnl := BNL(pts)
		sfs := SFS(pts)
		for i := range pts {
			if bnl[i] != sfs[i] {
				t.Fatalf("trial %d: BNL and SFS disagree at %d: %v vs %v\npts=%v", trial, i, bnl[i], sfs[i], pts)
			}
		}
		if dim == 2 {
			twod := TwoD(pts)
			for i := range pts {
				if bnl[i] != twod[i] {
					t.Fatalf("trial %d: BNL and TwoD disagree at %d\npts=%v", trial, i, pts)
				}
			}
		}
	}
}

func TestTwoDDuplicatesSurvive(t *testing.T) {
	pts := [][]float64{{1, 1}, {1, 1}, {2, 2}, {1, 1}}
	got := TwoD(pts)
	want := []bool{true, true, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("TwoD duplicates: %v, want %v", got, want)
		}
	}
}

func TestTwoDTieCases(t *testing.T) {
	cases := []struct {
		name string
		pts  [][]float64
		want []bool
	}{
		{"equal x, different y", [][]float64{{1, 5}, {1, 3}}, []bool{false, true}},
		{"equal y, different x", [][]float64{{5, 1}, {3, 1}}, []bool{false, true}},
		{"staircase", [][]float64{{1, 4}, {2, 3}, {3, 2}, {4, 1}}, []bool{true, true, true, true}},
		{"single", [][]float64{{7, 7}}, []bool{true}},
		{"dominated chain", [][]float64{{1, 1}, {2, 2}, {3, 3}}, []bool{true, false, false}},
	}
	for _, c := range cases {
		got := TwoD(c.pts)
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("%s: TwoD = %v, want %v", c.name, got, c.want)
			}
		}
	}
}

func TestTwoDRequires2D(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for 3-D input")
		}
	}()
	TwoD([][]float64{{1, 2, 3}})
}

func TestOfDispatch(t *testing.T) {
	if got := Of(nil); got != nil {
		t.Errorf("Of(nil) = %v", got)
	}
	pts2 := [][]float64{{1, 2}, {2, 1}, {3, 3}}
	got := Of(pts2)
	want := []bool{true, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Of 2-D = %v, want %v", got, want)
		}
	}
	pts3 := [][]float64{{1, 1, 1}, {2, 2, 2}}
	got3 := Of(pts3)
	if !got3[0] || got3[1] {
		t.Errorf("Of 3-D = %v", got3)
	}
}

func TestKDominates(t *testing.T) {
	a := []float64{1, 5, 2}
	b := []float64{2, 3, 4}
	// a is better in dims 0 and 2, worse in dim 1.
	if !KDominates(a, b, 2) {
		t.Error("a should 2-dominate b")
	}
	if KDominates(a, b, 3) {
		t.Error("a should not 3-dominate b")
	}
	// 3-dominance must coincide with ordinary dominance.
	c := []float64{1, 2, 3}
	d := []float64{2, 3, 4}
	if KDominates(c, d, 3) != Dominates(c, d) {
		t.Error("full-k dominance differs from Dominates")
	}
	if KDominates(c, c, 3) {
		t.Error("point k-dominates itself")
	}
}

func TestKDominantStrongerThanSkyline(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(30)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		}
		full := BNL(pts)
		strong := KDominant(pts, 2)
		for i := range pts {
			if strong[i] && !full[i] {
				t.Fatalf("k-dominant point %d not on the ordinary skyline", i)
			}
		}
	}
}

func TestDisjunctiveSupersetOfFullSkyline(t *testing.T) {
	// Every point on the full 3-D skyline must survive the disjunctive
	// pairwise function — this is why Option 2 prunes more than Option 1
	// never holds; it's the reverse: Option 1 (full RCS skyline) retains
	// more. Verify the superset relation empirically.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(40)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		}
		full := BNL(pts)
		dis := DisjunctivePairwise(pts, RCSPairs)
		fullCount, disCount := 0, 0
		for i := range pts {
			if full[i] {
				fullCount++
			}
			if dis[i] {
				disCount++
			}
			if dis[i] && !full[i] {
				t.Fatalf("pairwise survivor %d not on the full skyline: %v", i, pts[i])
			}
		}
		if disCount > fullCount {
			t.Fatalf("disjunctive kept %d > full skyline %d", disCount, fullCount)
		}
	}
}

// Property: the skyline is sound (no survivor is dominated) and complete
// (every non-survivor is dominated by some survivor).
func TestQuickSkylineSoundComplete(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		pts := make([][]float64, n)
		for i := 0; i < n; i++ {
			pts[i] = []float64{float64(raw[2*i] % 16), float64(raw[2*i+1] % 16)}
		}
		mask := Of(pts)
		for i := range pts {
			if mask[i] {
				for j := range pts {
					if j != i && Dominates(pts[j], pts[i]) {
						return false // unsound
					}
				}
			} else {
				dominated := false
				for j := range pts {
					if mask[j] && Dominates(pts[j], pts[i]) {
						dominated = true
						break
					}
				}
				if !dominated {
					return false // incomplete
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: skylines are idempotent — re-running on the survivors keeps all
// of them.
func TestQuickSkylineIdempotent(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 3 {
			return true
		}
		n := len(raw) / 3
		pts := make([][]float64, n)
		for i := 0; i < n; i++ {
			pts[i] = []float64{float64(raw[3*i]), float64(raw[3*i+1]), float64(raw[3*i+2])}
		}
		mask := SFS(pts)
		var surv [][]float64
		for i := range pts {
			if mask[i] {
				surv = append(surv, pts[i])
			}
		}
		again := SFS(surv)
		for _, ok := range again {
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
