// Command sdplab reproduces the paper's experiments.
//
// Usage:
//
//	sdplab list                          # show every experiment id
//	sdplab run -exp tab1.1               # reproduce Table 1.1
//	sdplab run -exp all -instances 100   # full paper-scale reproduction
//	sdplab run -exp tab3.3 -trace out.jsonl -metrics :8080
//	sdplab bench                         # write BENCH_<date>.json
//	sdplab load -addr http://host:8080   # open-loop load against a running serve
//	sdplab inspect flight.json           # render a /debug/flight.json dump
//	sdplab regret regret.json            # render a /debug/regret.json dump
//	sdplab feedback cardinality.json     # render a /debug/cardinality.json dump
//	sdplab robust -check                 # plan quality under cardinality error
//
// Flags tune the sample size (-instances), the RNG seed (-seed), the
// simulated memory budget in MB (-budget), and the skewed-schema variant
// (-skewed). -trace streams optimizer events to a JSONL file (summarize
// with sdptrace); -metrics serves Prometheus /metrics, expvar and pprof
// for the lifetime of the run. `sdplab bench` additionally takes
// -cpuprofile and -memprofile to write offline pprof profiles of the
// whole bench sweep.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"sdpopt"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		for _, e := range sdpopt.Experiments() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
	case "run":
		if err := runCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "sdplab:", err)
			os.Exit(1)
		}
	case "bench":
		if err := benchCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "sdplab:", err)
			os.Exit(1)
		}
	case "serve":
		if err := serveCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "sdplab:", err)
			os.Exit(1)
		}
	case "load":
		if err := loadCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "sdplab:", err)
			os.Exit(1)
		}
	case "inspect":
		if err := inspectCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "sdplab:", err)
			os.Exit(1)
		}
	case "regret":
		if err := regretCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "sdplab:", err)
			os.Exit(1)
		}
	case "feedback":
		if err := feedbackCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "sdplab:", err)
			os.Exit(1)
		}
	case "robust":
		if err := robustCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "sdplab:", err)
			os.Exit(1)
		}
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  sdplab list
  sdplab run -exp <id|all> [-instances N] [-seed S] [-budget MB] [-skewed] [-parallel P]
             [-workers W] [-cache N] [-trace FILE.jsonl] [-metrics ADDR]
  sdplab bench [-instances N] [-seed S] [-budget MB] [-skewed] [-parallel P] [-workers W]
             [-cache N] [-out DIR]
  sdplab serve [-addr ADDR] [-catalog FILE.json] [-skewed] [-workers W] [-cache N] [-shards N]
             [-max-concurrent N] [-queue N] [-budget MB] [-timeout D] [-trace FILE.jsonl]
             [-flight-slow-ms MS] [-flight-recent N] [-flight-notable N]
             [-shadow-rate F] [-shadow-hit-rate F] [-shadow-workers N] [-shadow-queue N]
             [-shadow-dp-rels N] [-shadow-dedup D] [-shadow-pin-ratio F]
             [-exec-sample-rate F] [-exec-max-rels N] [-exec-max-rows N] [-feedback-log FILE.jsonl]
  sdplab load  [-addr URL] [-qps F] [-duration D] [-warmup D] [-arrivals poisson|constant]
             [-technique T] [-timeout-ms MS] [-mix SPEC] [-pool N] [-seed S] [-use-cache]
             [-json FILE] [-max-shed-rate F] [-max-5xx N] [-require-routes T1,T2]
  sdplab inspect [-top N] [-trace PREFIX] [-summary] <flight.json | ->
  sdplab regret <regret.json | ->
  sdplab feedback <cardinality.json | ->
  sdplab robust [-instances N] [-seed S] [-budget MB] [-skewed] [-bands 1,2,4,8]
             [-healths 1,0.5] [-mode relation|predicate|both] [-topologies chain-8,star-9]
             [-exec=false] [-feedback corpus.jsonl] [-json FILE] [-check]

-parallel runs P optimizations concurrently (harness throughput); -workers
splits each optimization's enumeration across W cores (plan-identical,
latency only).`)
}

// enableObservability installs the process-wide observer from the -trace
// and -metrics flags. It returns a flush function for the trace sink.
func enableObservability(tracePath, metricsAddr string) (func() error, error) {
	flush := func() error { return nil }
	if tracePath == "" && metricsAddr == "" {
		return flush, nil
	}
	var sinks []sdpopt.TraceSink
	if tracePath != "" {
		sink, err := sdpopt.OpenTraceJSONL(tracePath)
		if err != nil {
			return nil, err
		}
		sinks = append(sinks, sink)
		flush = sink.Close
	}
	ob := sdpopt.NewObserver(sinks...)
	sdpopt.SetDefaultObserver(ob)
	if metricsAddr != "" {
		addr, err := ob.Registry.Serve(metricsAddr)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "[metrics, expvar and pprof on http://%s]\n", addr)
	}
	return flush, nil
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	exp := fs.String("exp", "", "experiment id (see 'sdplab list'), or 'all'")
	instances := fs.Int("instances", 0, "instances per workload (0 = experiment default)")
	seed := fs.Int64("seed", 42, "workload sampling seed")
	budgetMB := fs.Int64("budget", 0, "memory budget in MB (0 = the paper's 1024)")
	skewed := fs.Bool("skewed", false, "use the exponentially-skewed schema")
	parallel := fs.Int("parallel", 1, "concurrent optimizations (keep 1 for timing-faithful overhead tables)")
	workers := fs.Int("workers", 1, "enumeration workers per optimization (>1 = parallel engine; plan-identical)")
	cacheEntries := fs.Int("cache", 0, "route optimizations through a plan cache of this capacity (0 = off; skews timing tables)")
	tracePath := fs.String("trace", "", "stream optimizer events to this JSONL file")
	metricsAddr := fs.String("metrics", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :8080)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *exp == "" {
		return fmt.Errorf("missing -exp (try 'sdplab list')")
	}
	flush, err := enableObservability(*tracePath, *metricsAddr)
	if err != nil {
		return err
	}
	cfg := sdpopt.ExperimentConfig{
		Instances:   *instances,
		Seed:        *seed,
		Budget:      *budgetMB << 20,
		Skewed:      *skewed,
		Workers:     *parallel,
		EnumWorkers: *workers,
	}
	if *cacheEntries > 0 {
		cfg.Cache = sdpopt.NewPlanCache(sdpopt.PlanCacheOptions{MaxEntries: *cacheEntries, Obs: sdpopt.DefaultObserver()})
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = ids[:0]
		for _, e := range sdpopt.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		start := time.Now()
		out, err := sdpopt.RunExperiment(id, cfg)
		if err != nil {
			flush()
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(out)
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if cfg.Cache != nil {
		ct := cfg.Cache.Counts()
		fmt.Fprintf(os.Stderr, "[plan cache: %d entries, %d hits, %d misses, %d evictions, %.0f%% hit rate]\n",
			ct.Entries, ct.Hits, ct.Misses, ct.Evictions, 100*ct.HitRate())
	}
	if err := flush(); err != nil {
		return err
	}
	if *tracePath != "" {
		fmt.Fprintf(os.Stderr, "[trace written to %s; summarize with: sdptrace %s]\n", *tracePath, *tracePath)
	}
	return nil
}

func benchCmd(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	instances := fs.Int("instances", 0, "instances per workload (0 = bench default)")
	seed := fs.Int64("seed", 42, "workload sampling seed")
	budgetMB := fs.Int64("budget", 0, "memory budget in MB (0 = the paper's 1024)")
	skewed := fs.Bool("skewed", false, "use the exponentially-skewed schema")
	parallel := fs.Int("parallel", 1, "concurrent optimizations")
	workers := fs.Int("workers", 1, "enumeration workers per optimization (>1 = parallel engine; plan-identical)")
	cacheEntries := fs.Int("cache", 0, "route batch optimizations through a plan cache of this capacity (0 = off)")
	out := fs.String("out", ".", "directory for the BENCH_<date>.json report")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the bench run to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile (after the run) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sdplab: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // capture settled live-heap, not transient garbage
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "sdplab: memprofile:", err)
			}
		}()
	}
	cfg := sdpopt.ExperimentConfig{
		Instances:   *instances,
		Seed:        *seed,
		Budget:      *budgetMB << 20,
		Skewed:      *skewed,
		Workers:     *parallel,
		EnumWorkers: *workers,
	}
	if *cacheEntries > 0 {
		cfg.Cache = sdpopt.NewPlanCache(sdpopt.PlanCacheOptions{MaxEntries: *cacheEntries})
	}
	start := time.Now()
	r, err := sdpopt.RunBench(cfg, time.Now())
	if err != nil {
		return err
	}
	path, err := r.WriteFile(*out)
	if err != nil {
		return err
	}
	fmt.Printf("[bench completed in %v, report: %s]\n", time.Since(start).Round(time.Millisecond), path)
	return r.WriteJSON(os.Stdout)
}
