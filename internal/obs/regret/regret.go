// Package regret measures served plan quality online: a sampling shadow
// optimizer that re-optimizes a fraction of served queries in the
// background with a reference technique (DP when feasible by relation
// count, full SDP otherwise), computes the cost ratio of the served plan
// against the reference, and aggregates the paper's quality metrics —
// ρ (geometric mean), worst-case W, and the Ideal/Good/Acceptable/Bad
// bucket distribution — over rolling windows keyed by (technique,
// topology, relation-count band).
//
// The design constraint mirrors the plan cache's detached-fill rule:
// shadow work may never degrade serving. Observe is a few atomic
// operations on the non-sampled path; sampled queries are handed to a
// bounded queue drained by a dedicated worker pool, overflow is dropped
// (and counted) rather than queued unboundedly, shadow optimizations run
// under their own context — detached from any request deadline — and hot
// fingerprints are deduplicated so repeated serves of one query cannot
// burn the shadow budget.
package regret

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"sdpopt/internal/catalog"
	"sdpopt/internal/dp"
	"sdpopt/internal/memo"
	"sdpopt/internal/obs"
	"sdpopt/internal/obs/span"
	"sdpopt/internal/plan"
	"sdpopt/internal/query"
)

// OptimizeFunc runs one optimization by technique name. The server injects
// its OptimizeTraced here so this package never imports the serving layer.
type OptimizeFunc func(ctx context.Context, technique string, q *query.Query, budget int64, workers int, ob *obs.Observer) (*plan.Plan, dp.Stats, error)

// Options configures a Shadow.
type Options struct {
	// Optimize runs the shadow re-optimizations. Required.
	Optimize OptimizeFunc
	// Obs receives regret metrics (ratio histograms, sample/drop counters)
	// and EvRegret trace events. Optional.
	Obs *obs.Observer
	// Flight, when set, receives the worst-regret shadow traces: a shadow
	// run whose ratio reaches PinRatio is pinned into the recorder's
	// notable ring with both costs and the serving trace ID attached.
	Flight *span.Recorder
	// OnSample, when set, receives every measured ratio keyed the same way
	// as the rolling windows — the feedback hook the technique router uses
	// to demote a route whose ρ degrades. Called from shadow workers, never
	// from the serving path; implementations must be concurrency-safe and
	// fast.
	OnSample func(tech, shape, band string, ratio float64)

	// SampleRate is the fraction of computed serves (miss, dedup,
	// uncached) that are shadowed, in [0, 1]. Default 0.05.
	SampleRate float64
	// HitSampleRate is the fraction of cache-hit serves shadowed — lower
	// by default (0.01) because hits re-serve already-measured plans; a
	// nonzero rate still catches staleness after catalog drift.
	HitSampleRate float64
	// MaxDPRels selects the reference: queries with at most this many
	// relations are re-optimized with exhaustive DP, larger ones with full
	// SDP (the paper's fallback reference when DP is infeasible).
	// Default 12.
	MaxDPRels int
	// Workers is the shadow pool size (default 1). Shadow optimizations
	// run sequentially within each worker with no enumeration parallelism,
	// keeping their CPU appetite bounded and predictable.
	Workers int
	// QueueSize bounds jobs waiting for a shadow worker (default 64);
	// overflow is dropped and counted, never queued unboundedly.
	QueueSize int
	// Budget is the memory-feasibility budget per shadow optimization
	// (default the paper's 1 GB).
	Budget int64
	// Timeout caps each shadow optimization's wall time (default 30s).
	Timeout time.Duration
	// DedupFor suppresses re-shadowing of one canonical fingerprint ×
	// catalog version within this interval (default 1m), so a hot query
	// is measured once per window, not once per serve. Negative disables
	// deduplication (benchmarks and tests).
	DedupFor time.Duration
	// Window is the per-key rolling window size in samples (default 512).
	Window int
	// TopN is how many worst-regret exemplars to retain (default 8).
	TopN int
	// PinRatio pins a shadow trace into Flight's notable ring when the
	// measured ratio reaches it (default 2 — the paper's Good/Acceptable
	// boundary). Set to +Inf to disable pinning.
	PinRatio float64

	// CatalogVersion, when set, is used as the catalog half of the dedup
	// key for every sample, skipping Catalog.Fingerprint entirely — the
	// server fills it from the fingerprint it already computed at startup
	// (a server serves exactly one catalog). When empty, the shadow
	// computes the fingerprint itself, once per catalog instance.
	CatalogVersion string
}

func (o Options) withDefaults() Options {
	if o.SampleRate < 0 {
		o.SampleRate = 0
	}
	if o.SampleRate > 1 {
		o.SampleRate = 1
	}
	if o.HitSampleRate == 0 {
		o.HitSampleRate = 0.01
		if o.SampleRate < o.HitSampleRate {
			o.HitSampleRate = o.SampleRate
		}
	}
	if o.HitSampleRate < 0 {
		o.HitSampleRate = 0
	}
	if o.HitSampleRate > 1 {
		o.HitSampleRate = 1
	}
	if o.MaxDPRels <= 0 {
		o.MaxDPRels = 12
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 64
	}
	if o.Budget <= 0 {
		o.Budget = memo.DefaultBudget
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	if o.DedupFor == 0 {
		o.DedupFor = time.Minute
	}
	if o.Window <= 0 {
		o.Window = 512
	}
	if o.TopN <= 0 {
		o.TopN = 8
	}
	if o.PinRatio == 0 {
		o.PinRatio = 2
	}
	return o
}

// Sample is one served optimization offered to the shadow layer.
type Sample struct {
	// Query is the served query (any frame — cost is frame-invariant).
	Query *query.Query
	// Technique is the technique that produced the served plan.
	Technique string
	// Plan is the served plan, in Query's frame.
	Plan *plan.Plan
	// Source is the plan-cache source label ("hit", "dedup", "miss",
	// "uncached"); "hit" selects HitSampleRate.
	Source string
	// TraceID links the serve back to its flight-recorder trace.
	TraceID string
	// RouteReason records why the serving layer ran Technique ("explicit",
	// or one of the router's auto:* reasons), so bad ρ is attributable to
	// a routing decision rather than a technique in the abstract.
	RouteReason string
}

// Shadow is the sampling shadow optimizer. Construct with New; it is safe
// for concurrent use, and all exported methods are no-ops on a nil
// receiver, so an unconfigured server carries a nil *Shadow at zero cost.
type Shadow struct {
	opts Options

	compSampler sampler // computed serves (miss/dedup/uncached)
	hitSampler  sampler // cache hits

	jobs      chan job
	wg        sync.WaitGroup
	closeOnce sync.Once

	enqMu   sync.Mutex // guards closed + jobs send + dedup map
	closed  bool
	closing atomic.Bool // read by workers to skip queued jobs on Close
	dedup   map[string]time.Time

	// catVer memoizes Catalog.Fingerprint per catalog instance. The
	// fingerprint hashes the JSON of every statistic in the catalog —
	// milliseconds on realistic schemas — and Observe runs before the
	// response is flushed to the client, so recomputing it per sampled
	// serve would put that cost on the serving path. A process serves a
	// handful of catalog instances at most, and catalogs are immutable
	// once serving starts (the server caches its own fingerprint at New
	// under the same assumption).
	catMu  sync.Mutex
	catVer map[*catalog.Catalog]string

	aggMu     sync.Mutex // guards windows + exemplars
	windows   map[Key]*window
	exemplars []Exemplar

	observed  atomic.Int64
	sampled   atomic.Int64
	deduped   atomic.Int64
	dropped   atomic.Int64
	enqueued  atomic.Int64
	completed atomic.Int64 // finished jobs, successes and failures alike
	failures  atomic.Int64
	pinned    atomic.Int64
}

// job carries everything a worker needs; the serving request is long gone
// by the time it runs.
type job struct {
	q           *query.Query
	tech        string
	ref         string
	source      string
	routeReason string
	traceID     string
	servedCost  float64
	servedShape string
	shape       string
	band        string
	rels        int
}

// New validates opts and builds a shadow optimizer with its worker pool
// running. Callers must Close it to stop the workers.
func New(opts Options) (*Shadow, error) {
	if opts.Optimize == nil {
		return nil, errors.New("regret: Options.Optimize is required")
	}
	opts = opts.withDefaults()
	s := &Shadow{
		opts:    opts,
		jobs:    make(chan job, opts.QueueSize),
		dedup:   map[string]time.Time{},
		catVer:  map[*catalog.Catalog]string{},
		windows: map[Key]*window{},
	}
	s.compSampler.setRate(opts.SampleRate)
	s.hitSampler.setRate(opts.HitSampleRate)
	if reg := s.registry(); reg != nil {
		reg.GaugeFunc(obs.MRegretQueueDepth, func() int64 { return int64(len(s.jobs)) })
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

func (s *Shadow) registry() *obs.Registry {
	if s == nil || s.opts.Obs == nil {
		return nil
	}
	return s.opts.Obs.Registry
}

// Band buckets a relation count into the dump's relation-count bands.
func Band(n int) string {
	switch {
	case n <= 4:
		return "1-4"
	case n <= 8:
		return "5-8"
	case n <= 12:
		return "9-12"
	case n <= 16:
		return "13-16"
	case n <= 24:
		return "17-24"
	default:
		return "25+"
	}
}

// Reference returns the reference technique the shadow would use for an
// n-relation query: exhaustive DP while feasible, full SDP beyond.
func (s *Shadow) Reference(n int) string {
	if s != nil && n <= s.opts.MaxDPRels {
		return "dp"
	}
	return "sdp"
}

// Observe offers one successful serve to the shadow layer. The fast path —
// not sampled — is two atomic adds; a sampled serve is deduplicated by
// fingerprint × catalog version and enqueued without blocking (dropped,
// and counted, when the queue is full). Nil-safe; never blocks serving.
func (s *Shadow) Observe(sm Sample) {
	if s == nil || sm.Query == nil || sm.Plan == nil {
		return
	}
	s.observed.Add(1)
	sp := &s.compSampler
	if sm.Source == "hit" {
		sp = &s.hitSampler
	}
	if !sp.sample() {
		return
	}
	s.sampled.Add(1)

	n := sm.Query.NumRelations()
	now := time.Now()
	key := sm.Query.Fingerprint() + "|" + s.catalogVersion(sm.Query.Cat)
	j := job{
		q:           sm.Query,
		tech:        techName(sm.Technique),
		ref:         s.Reference(n),
		source:      sm.Source,
		routeReason: sm.RouteReason,
		traceID:     sm.TraceID,
		servedCost:  sm.Plan.Cost,
		servedShape: sm.Plan.Shape(func(i int) string {
			return sm.Query.Relation(i).Name
		}),
		shape: sm.Query.Shape(),
		band:  Band(n),
		rels:  n,
	}

	s.enqMu.Lock()
	if s.closed {
		s.enqMu.Unlock()
		return
	}
	if last, ok := s.dedup[key]; ok && now.Sub(last) < s.opts.DedupFor {
		s.enqMu.Unlock()
		s.deduped.Add(1)
		s.counter(obs.MRegretDeduped).Add(1)
		return
	}
	// The dedup map is bounded: at capacity, expired entries are swept
	// first; if none expired the map resets wholesale — re-shadowing a few
	// queries early is cheaper than unbounded growth.
	if len(s.dedup) >= 4096 {
		for k, at := range s.dedup {
			if now.Sub(at) >= s.opts.DedupFor {
				delete(s.dedup, k)
			}
		}
		if len(s.dedup) >= 4096 {
			s.dedup = map[string]time.Time{}
		}
	}
	s.dedup[key] = now
	select {
	case s.jobs <- j:
		s.enqueued.Add(1)
	default:
		// Queue full: forget the dedup mark so the next serve of this
		// query gets another chance once load subsides.
		delete(s.dedup, key)
		s.dropped.Add(1)
		s.counter(obs.MRegretDropped).Add(1)
	}
	s.enqMu.Unlock()
}

// catalogVersion returns c's fingerprint, computed once per catalog
// instance and memoized (see the catVer field for why). The map is reset
// at a small cap so a pathological caller cycling catalogs cannot grow it
// unboundedly — re-hashing after a reset is correct, just slower.
func (s *Shadow) catalogVersion(c *catalog.Catalog) string {
	if s.opts.CatalogVersion != "" {
		return s.opts.CatalogVersion
	}
	s.catMu.Lock()
	defer s.catMu.Unlock()
	if v, ok := s.catVer[c]; ok {
		return v
	}
	if len(s.catVer) >= 16 {
		s.catVer = map[*catalog.Catalog]string{}
	}
	v := c.Fingerprint()
	s.catVer[c] = v
	return v
}

func techName(t string) string {
	if t == "" {
		return "sdp"
	}
	return t
}

func (s *Shadow) counter(name string) *obs.Counter {
	if s.opts.Obs == nil {
		return nil
	}
	return s.opts.Obs.Counter(name)
}

// jobYield is how long a worker de-schedules before starting each job. A
// job is enqueued while its serving request is still flushing its response;
// on a host with a single core the runtime would otherwise hand the CPU to
// the worker for the whole re-optimization (shadow runs are shorter than
// the ~10ms async-preemption threshold), stalling that flush and any other
// in-flight serve. Sleeping first parks the worker so the scheduler drains
// runnable serving goroutines and the netpoller; the delay is invisible to
// the shadow's purpose (its results are windowed aggregates) and caps a
// worker at a throughput far above any sane sampling rate.
const jobYield = time.Millisecond

func (s *Shadow) worker() {
	defer s.wg.Done()
	for j := range s.jobs {
		// Once Close is underway, queued jobs are discarded (but still
		// counted, so Drain's enqueued==completed invariant holds) rather
		// than delaying shutdown by up to Timeout each.
		if !s.closing.Load() {
			time.Sleep(jobYield)
			s.runJob(j)
		}
		s.completed.Add(1)
	}
}

// runJob executes one shadow re-optimization, entirely detached from the
// serving request that sampled it: fresh context, shadow timeout, shadow
// budget, sequential enumeration, and a nil engine observer so shadow load
// never pollutes the serving-path optimization metrics.
func (s *Shadow) runJob(j job) {
	root := span.New("regret.shadow")
	root.SetAttr("tech", j.tech)
	root.SetAttr("ref", j.ref)
	root.SetAttr("shape", j.shape)
	root.SetAttr("rels", j.rels)
	root.SetAttr("source", j.source)
	if j.routeReason != "" {
		root.SetAttr("route_reason", j.routeReason)
	}
	root.SetAttr("served_trace", j.traceID)

	ctx, cancel := context.WithTimeout(context.Background(), s.opts.Timeout)
	defer cancel()
	ctx = span.NewContext(ctx, root)

	started := time.Now()
	refPlan, _, err := s.opts.Optimize(ctx, j.ref, j.q, s.opts.Budget, 0, nil)
	dur := time.Since(started)
	if s.opts.Obs != nil {
		s.opts.Obs.Histogram(obs.MRegretShadowSeconds).Observe(dur)
	}
	if err == nil && (refPlan == nil || refPlan.Cost <= 0) {
		err = fmt.Errorf("regret: reference %s produced invalid cost", j.ref)
	}
	if err != nil {
		s.failures.Add(1)
		s.counter(obs.MRegretShadowErrors).Add(1)
		root.SetError(err.Error())
		root.Finish()
		return
	}

	ratio := j.servedCost / refPlan.Cost
	if !(ratio > 0) || math.IsInf(ratio, 0) {
		s.failures.Add(1)
		s.counter(obs.MRegretShadowErrors).Add(1)
		root.SetError(fmt.Sprintf("regret: invalid ratio %g", ratio))
		root.Finish()
		return
	}
	root.SetAttr("ratio", ratio)
	root.SetAttr("served_cost", j.servedCost)
	root.SetAttr("ref_cost", refPlan.Cost)

	refShape := refPlan.Shape(func(i int) string { return j.q.Relation(i).Name })
	ex := Exemplar{
		Time:        started,
		Tech:        j.tech,
		Ref:         j.ref,
		Shape:       j.shape,
		Band:        j.band,
		Rels:        j.rels,
		Source:      j.source,
		RouteReason: j.routeReason,
		Ratio:       ratio,
		ServedCost:  j.servedCost,
		RefCost:     refPlan.Cost,
		ServedShape: j.servedShape,
		RefShape:    refShape,
		TraceID:     j.traceID,
	}

	pinned := false
	if s.opts.Flight != nil && ratio >= s.opts.PinRatio {
		ex.ShadowTraceID = root.TraceID()
		s.opts.Flight.Pin(root, 200)
		s.pinned.Add(1)
		pinned = true
	}
	if !pinned {
		root.Finish()
	}

	s.record(j, ratio, ex)

	if s.opts.OnSample != nil {
		s.opts.OnSample(j.tech, j.shape, j.band, ratio)
	}

	if s.opts.Obs != nil {
		s.opts.Obs.FloatHistogram(obs.Label(obs.MRegretRatio, "tech", j.tech, "shape", j.shape), nil).
			ObserveExemplar(ratio, j.traceID)
		s.opts.Obs.Counter(obs.Label(obs.MRegretSamples, "tech", j.tech)).Add(1)
		s.opts.Obs.Emit(obs.EvRegret, map[string]any{
			"tech":        j.tech,
			"ref":         j.ref,
			"shape":       j.shape,
			"rels":        j.rels,
			"ratio":       ratio,
			"served_cost": j.servedCost,
			"ref_cost":    refPlan.Cost,
			"trace_id":    j.traceID,
			"dur_ns":      dur.Nanoseconds(),
		})
	}
}

// record folds one measured ratio into the per-key rolling window and the
// top-N exemplar list.
func (s *Shadow) record(j job, ratio float64, ex Exemplar) {
	key := Key{Tech: j.tech, Shape: j.shape, Band: j.band}
	s.aggMu.Lock()
	w := s.windows[key]
	if w == nil {
		w = &window{ratios: make([]float64, 0, s.opts.Window)}
		s.windows[key] = w
	}
	w.push(ratio, s.opts.Window)

	// Exemplars: keep the TopN worst ratios, sorted worst-first.
	i := len(s.exemplars)
	for i > 0 && s.exemplars[i-1].Ratio < ex.Ratio {
		i--
	}
	if i < s.opts.TopN {
		s.exemplars = append(s.exemplars, Exemplar{})
		copy(s.exemplars[i+1:], s.exemplars[i:])
		s.exemplars[i] = ex
		if len(s.exemplars) > s.opts.TopN {
			s.exemplars = s.exemplars[:s.opts.TopN]
		}
	}
	s.aggMu.Unlock()
}

// window is one key's rolling ratio ring plus its lifetime sample count.
type window struct {
	ratios []float64
	head   int
	total  int64
}

func (w *window) push(r float64, capacity int) {
	w.total++
	if len(w.ratios) < capacity {
		w.ratios = append(w.ratios, r)
		return
	}
	w.ratios[w.head] = r
	w.head = (w.head + 1) % capacity
}

// Drain blocks until every enqueued shadow job has completed or ctx
// expires — the determinism hook for benchmarks and smoke tests. Serving
// code never calls it.
func (s *Shadow) Drain(ctx context.Context) error {
	if s == nil {
		return nil
	}
	for {
		if s.completed.Load() >= s.enqueued.Load() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// Close stops accepting samples, discards queued shadow jobs, and waits
// for the in-flight ones to finish. Idempotent and nil-safe.
func (s *Shadow) Close() {
	if s == nil {
		return
	}
	s.closeOnce.Do(func() {
		s.closing.Store(true)
		s.enqMu.Lock()
		s.closed = true
		s.enqMu.Unlock()
		close(s.jobs)
		s.wg.Wait()
	})
}

// sampler is a deterministic fixed-point rate gate: each call accumulates
// rate in 1/2^20 units and fires when the integer part advances. At rate 1
// every call fires; at rate 0 none do. Race-safe without math/rand state.
type sampler struct {
	acc    atomic.Int64
	rateFP int64
}

func (sp *sampler) setRate(rate float64) {
	sp.rateFP = int64(rate * (1 << 20))
}

func (sp *sampler) sample() bool {
	if sp.rateFP <= 0 {
		return false
	}
	nv := sp.acc.Add(sp.rateFP)
	return nv>>20 != (nv-sp.rateFP)>>20
}
