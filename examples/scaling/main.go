// Scaling: walk the feasibility frontier. Stars grow one relation at a
// time and each optimizer runs under the paper's 1 GB budget until it
// becomes infeasible — reproducing the shape of Tables 2.1 and 3.3: DP
// collapses first, IDP(7) later, while SDP keeps going. A second pass
// shows the other scaling axis: the same enumeration split across cores
// by the parallel engine, producing bit-for-bit identical plans.
package main

import (
	"errors"
	"fmt"
	"log"
	"math"
	"runtime"
	"time"

	"sdpopt"
)

func main() {
	cat := sdpopt.ExtendedSchema(40)

	type alg struct {
		name string
		dead bool
		run  func(*sdpopt.Query) (*sdpopt.Plan, sdpopt.Stats, error)
	}
	idp7 := sdpopt.IDPDefaults()
	idp7.Budget = sdpopt.DefaultBudget
	sdpOpts := sdpopt.SDPOptions()
	sdpOpts.Budget = sdpopt.DefaultBudget
	algs := []*alg{
		{name: "DP", run: func(q *sdpopt.Query) (*sdpopt.Plan, sdpopt.Stats, error) {
			return sdpopt.OptimizeDP(q, sdpopt.DPOptions{Budget: sdpopt.DefaultBudget})
		}},
		{name: "IDP(7)", run: func(q *sdpopt.Query) (*sdpopt.Plan, sdpopt.Stats, error) {
			return sdpopt.OptimizeIDP(q, idp7)
		}},
		{name: "SDP", run: func(q *sdpopt.Query) (*sdpopt.Plan, sdpopt.Stats, error) {
			return sdpopt.OptimizeSDP(q, sdpOpts)
		}},
	}

	fmt.Printf("%5s", "rels")
	for _, a := range algs {
		fmt.Printf(" %22s", a.name+" (time / mem)")
	}
	fmt.Println()

	for n := 10; n <= 30; n += 2 {
		qs, err := sdpopt.Instances(sdpopt.WorkloadSpec{
			Cat: cat, Topology: sdpopt.Star, NumRelations: n, Seed: 3,
		}, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d", n)
		for _, a := range algs {
			if a.dead {
				fmt.Printf(" %22s", "*")
				continue
			}
			_, stats, err := a.run(qs[0])
			if errors.Is(err, sdpopt.ErrBudget) {
				a.dead = true
				fmt.Printf(" %22s", "* (exceeds 1GB)")
				continue
			}
			if err != nil {
				log.Fatalf("%s at %d relations: %v", a.name, n, err)
			}
			fmt.Printf(" %14s %6.1fMB",
				stats.Elapsed.Round(time.Millisecond), stats.Memo.PeakMB())
		}
		fmt.Println()
	}
	fmt.Println("\n'*' marks the feasibility cliff under the 1 GB simulated-memory budget.")

	// Core scaling: one 17-relation star, enumerated sequentially and with
	// the parallel engine at growing worker counts. The plans are identical
	// by contract — only the wall time may move, and only when the runtime
	// has cores to give (GOMAXPROCS below caps real parallelism).
	fmt.Printf("\nParallel enumeration, Star-17 SDP (GOMAXPROCS=%d):\n", runtime.GOMAXPROCS(0))
	qs, err := sdpopt.Instances(sdpopt.WorkloadSpec{
		Cat: cat, Topology: sdpopt.Star, NumRelations: 17, Seed: 3,
	}, 1)
	if err != nil {
		log.Fatal(err)
	}
	var baseCost float64
	var baseTime time.Duration
	for _, w := range []int{1, 2, 4, 8} {
		opts := sdpopt.SDPOptions()
		opts.Budget = sdpopt.DefaultBudget
		opts.Workers = w
		p, stats, err := sdpopt.OptimizeSDP(qs[0], opts)
		if err != nil {
			log.Fatalf("SDP with %d workers: %v", w, err)
		}
		if w == 1 {
			baseCost, baseTime = p.Cost, stats.Elapsed
		}
		identical := math.Float64bits(p.Cost) == math.Float64bits(baseCost)
		fmt.Printf("  workers=%d  %10s  speedup %.2fx  identical plan: %v\n",
			w, stats.Elapsed.Round(time.Millisecond),
			float64(baseTime)/float64(stats.Elapsed), identical)
	}
}
