package memo

import (
	"errors"
	"testing"

	"sdpopt/internal/bits"
	"sdpopt/internal/plan"
)

func mkPlan(set bits.Set, cost float64, order int) *plan.Plan {
	return &plan.Plan{Op: plan.HashJoin, Rels: set, Cost: cost, Rows: 10, Order: order}
}

// mustOrdered returns the retained plan for an order class, or nil.
func mustOrdered(c *Class, order int) *plan.Plan {
	p, _ := c.OrderedPlan(order)
	return p
}

func TestNewClassAndGet(t *testing.T) {
	m := New(0)
	s := bits.Of(0, 1)
	c, err := m.NewClass(s, 2, 100, 0.5)
	if err != nil {
		t.Fatalf("NewClass: %v", err)
	}
	if got := m.Get(s); got != c {
		t.Fatal("Get did not return the created class")
	}
	if m.Get(bits.Of(2)) != nil {
		t.Fatal("Get returned a class for an absent set")
	}
	if c.Rows != 100 || c.Sel != 0.5 || c.Level != 2 {
		t.Errorf("class fields = %+v", c)
	}
	if m.Stats.ClassesCreated != 1 || m.Stats.ClassesAlive != 1 {
		t.Errorf("stats = %+v", m.Stats)
	}
}

func TestNewClassRejectsDuplicatesAndEmpty(t *testing.T) {
	m := New(0)
	if _, err := m.NewClass(bits.Set{}, 1, 1, 1); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := m.NewClass(bits.Of(0), 1, 1, 1); err != nil {
		t.Fatalf("NewClass: %v", err)
	}
	if _, err := m.NewClass(bits.Of(0), 1, 1, 1); err == nil {
		t.Error("duplicate set accepted")
	}
}

func TestAddPlanKeepsBestAndOrdered(t *testing.T) {
	m := New(0)
	c, _ := m.NewClass(bits.Of(0, 1), 2, 10, 1)
	s := c.Set

	kept, err := m.AddPlan(c, mkPlan(s, 100, plan.NoOrder))
	if err != nil || !kept {
		t.Fatalf("first plan kept=%v err=%v", kept, err)
	}
	// A cheaper plan replaces Best.
	cheap := mkPlan(s, 50, plan.NoOrder)
	if kept, _ = m.AddPlan(c, cheap); !kept || c.Best != cheap {
		t.Fatal("cheaper plan did not become Best")
	}
	// A costlier unordered plan is discarded.
	if kept, _ = m.AddPlan(c, mkPlan(s, 80, plan.NoOrder)); kept {
		t.Fatal("costlier unordered plan was kept")
	}
	// A costlier ordered plan IS kept: interesting orders are incomparable.
	ord := mkPlan(s, 70, 3)
	if kept, _ = m.AddPlan(c, ord); !kept {
		t.Fatal("ordered plan was not kept")
	}
	if c.Best != cheap {
		t.Fatal("ordered plan displaced Best")
	}
	paths := c.Paths()
	if len(paths) != 2 {
		t.Fatalf("Paths = %d, want 2", len(paths))
	}
	// A cheaper plan with the same order replaces the ordered slot.
	ord2 := mkPlan(s, 60, 3)
	if kept, _ = m.AddPlan(c, ord2); !kept || mustOrdered(c, 3) != ord2 {
		t.Fatal("cheaper ordered plan did not replace slot")
	}
	if len(c.Paths()) != 2 {
		t.Fatalf("Paths after replacement = %d, want 2", len(c.Paths()))
	}
}

func TestAddPlanOrderedBestDedup(t *testing.T) {
	m := New(0)
	c, _ := m.NewClass(bits.Of(0), 1, 10, 1)
	s := c.Set
	// An ordered plan that is also the cheapest overall should count once.
	p := mkPlan(s, 10, 2)
	if _, err := m.AddPlan(c, p); err != nil {
		t.Fatal(err)
	}
	if c.Best != p || mustOrdered(c, 2) != p {
		t.Fatal("plan should be both Best and ordered")
	}
	if got := len(c.Paths()); got != 1 {
		t.Fatalf("Paths = %d, want 1", got)
	}
	if m.Stats.PathsRetained != 1 {
		t.Fatalf("PathsRetained = %d, want 1", m.Stats.PathsRetained)
	}
	// A new cheaper ordered plan with the same order supersedes both slots.
	p2 := mkPlan(s, 5, 2)
	if _, err := m.AddPlan(c, p2); err != nil {
		t.Fatal(err)
	}
	if c.Best != p2 || mustOrdered(c, 2) != p2 || len(c.Paths()) != 1 {
		t.Fatal("cheaper ordered plan should supersede both slots")
	}
}

func TestBestTakesOverDominatedOrderSlot(t *testing.T) {
	m := New(0)
	c, _ := m.NewClass(bits.Of(0), 1, 10, 1)
	s := c.Set
	expensive := mkPlan(s, 100, 4)
	if _, err := m.AddPlan(c, expensive); err != nil {
		t.Fatal(err)
	}
	// A new Best that itself delivers order 4 makes the expensive ordered
	// path redundant.
	better := mkPlan(s, 20, 4)
	if _, err := m.AddPlan(c, better); err != nil {
		t.Fatal(err)
	}
	if mustOrdered(c, 4) != better || len(c.Paths()) != 1 {
		t.Fatalf("dominated order slot not superseded: %d paths", len(c.Paths()))
	}
}

func TestFeatureVector(t *testing.T) {
	m := New(0)
	c, _ := m.NewClass(bits.Of(0, 1), 2, 1234, 5.6e-7)
	if _, err := m.AddPlan(c, mkPlan(c.Set, 777, plan.NoOrder)); err != nil {
		t.Fatal(err)
	}
	fv := c.FeatureVector()
	if fv.Rows != 1234 || fv.Cost != 777 || fv.Sel != 5.6e-7 {
		t.Errorf("FV = %+v", fv)
	}
}

func TestRemove(t *testing.T) {
	m := New(0)
	c, _ := m.NewClass(bits.Of(0, 1), 2, 10, 1)
	if _, err := m.AddPlan(c, mkPlan(c.Set, 10, plan.NoOrder)); err != nil {
		t.Fatal(err)
	}
	used := m.Stats.SimBytes
	peak := m.Stats.PeakSimBytes
	m.Remove(c)
	if m.Get(c.Set) != nil {
		t.Fatal("removed class still visible")
	}
	if m.Stats.ClassesAlive != 0 || m.Stats.PathsRetained != 0 {
		t.Errorf("stats after remove = %+v", m.Stats)
	}
	if m.Stats.SimBytes != used-SimClassBytes-SimPathBytes {
		t.Errorf("SimBytes = %d", m.Stats.SimBytes)
	}
	if m.Stats.PeakSimBytes != peak {
		t.Error("peak must not decrease on removal")
	}
	m.Remove(c) // idempotent
	if m.Stats.ClassesAlive != 0 {
		t.Error("double remove corrupted stats")
	}
	// The set can be re-created after removal.
	if _, err := m.NewClass(c.Set, 2, 10, 1); err != nil {
		t.Errorf("re-create after remove: %v", err)
	}
}

func TestLevelIterationSkipsDead(t *testing.T) {
	m := New(0)
	a, _ := m.NewClass(bits.Of(0), 1, 1, 1)
	b, _ := m.NewClass(bits.Of(1), 1, 2, 1)
	ab, _ := m.NewClass(bits.Of(0, 1), 2, 3, 1)
	m.Remove(b)
	l1 := m.Level(1)
	if len(l1) != 1 || l1[0] != a {
		t.Errorf("Level(1) = %v", l1)
	}
	l2 := m.Level(2)
	if len(l2) != 1 || l2[0] != ab {
		t.Errorf("Level(2) = %v", l2)
	}
	if got := m.Level(99); got != nil {
		t.Errorf("Level(99) = %v", got)
	}
	if got := m.MaxLevel(); got != 2 {
		t.Errorf("MaxLevel = %d", got)
	}
	var seen []bits.Set
	m.Each(func(c *Class) { seen = append(seen, c.Set) })
	if len(seen) != 2 {
		t.Errorf("Each visited %d classes, want 2", len(seen))
	}
}

func TestBudgetExceeded(t *testing.T) {
	m := New(SimClassBytes + SimPathBytes) // room for one class + one path
	c, err := m.NewClass(bits.Of(0), 1, 1, 1)
	if err != nil {
		t.Fatalf("first class: %v", err)
	}
	if _, err := m.AddPlan(c, mkPlan(c.Set, 1, plan.NoOrder)); err != nil {
		t.Fatalf("first plan: %v", err)
	}
	_, err = m.NewClass(bits.Of(1), 1, 1, 1)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	// Ordered extra path also trips the budget.
	m2 := New(SimClassBytes + SimPathBytes)
	c2, _ := m2.NewClass(bits.Of(0), 1, 1, 1)
	if _, err := m2.AddPlan(c2, mkPlan(c2.Set, 5, plan.NoOrder)); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.AddPlan(c2, mkPlan(c2.Set, 9, 1)); !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestPeakMB(t *testing.T) {
	s := Stats{PeakSimBytes: 3 << 20}
	if got := s.PeakMB(); got != 3 {
		t.Errorf("PeakMB = %g, want 3", got)
	}
}

func TestPathsDeterministicOrder(t *testing.T) {
	m := New(0)
	c, _ := m.NewClass(bits.Of(0, 1), 2, 10, 1)
	s := c.Set
	for _, p := range []*plan.Plan{
		mkPlan(s, 10, plan.NoOrder),
		mkPlan(s, 30, 5),
		mkPlan(s, 25, 2),
		mkPlan(s, 40, 9),
	} {
		if _, err := m.AddPlan(c, p); err != nil {
			t.Fatal(err)
		}
	}
	paths := c.Paths()
	if len(paths) != 4 {
		t.Fatalf("Paths = %d, want 4", len(paths))
	}
	// Best first, then ordered by ascending order class: 2, 5, 9.
	wantOrders := []int{plan.NoOrder, 2, 5, 9}
	for i, p := range paths {
		if p.Order != wantOrders[i] {
			t.Fatalf("paths[%d].Order = %d, want %d", i, p.Order, wantOrders[i])
		}
	}
}
