package catalog

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFracBelowUniform(t *testing.T) {
	c := Column{NDV: 100}
	cases := []struct{ bound, want float64 }{
		{0, 0}, {-5, 0}, {25, 0.25}, {100, 1}, {500, 1},
	}
	for _, tc := range cases {
		if got := c.FracBelow(tc.bound); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("FracBelow(%g) = %g, want %g", tc.bound, got, tc.want)
		}
	}
}

func TestFracBelowSkewed(t *testing.T) {
	c := Column{NDV: 100, Skew: 2}
	// Skew concentrates mass at small values: far more than 25 % of rows
	// sit below a quarter of the domain.
	if got := c.FracBelow(25); got <= 0.25 {
		t.Errorf("skewed FracBelow(25) = %g, want > 0.25", got)
	}
	// CDF endpoints and monotonicity.
	if c.FracBelow(0) != 0 || c.FracBelow(100) != 1 {
		t.Error("CDF endpoints wrong")
	}
	prev := 0.0
	for b := 1.0; b <= 100; b++ {
		cur := c.FracBelow(b)
		if cur < prev {
			t.Fatalf("CDF not monotone at %g", b)
		}
		prev = cur
	}
}

func TestHistogramEquiDepth(t *testing.T) {
	for _, c := range []Column{{NDV: 1000}, {NDV: 1000, Skew: 3}} {
		h := c.Histogram()
		if len(h.Bounds) != HistogramBuckets {
			t.Fatalf("buckets = %d", len(h.Bounds))
		}
		// Bounds increase and end at NDV.
		prev := 0.0
		for _, b := range h.Bounds {
			if b < prev {
				t.Fatalf("bounds not monotone: %v", h.Bounds)
			}
			prev = b
		}
		if h.Bounds[len(h.Bounds)-1] != c.NDV {
			t.Errorf("last bound = %g, want NDV %g", h.Bounds[len(h.Bounds)-1], c.NDV)
		}
		// Each bucket holds ~equal mass: CDF at each bound is i/B.
		for i, b := range h.Bounds {
			want := float64(i+1) / HistogramBuckets
			if got := c.FracBelow(b); math.Abs(got-want) > 0.05 {
				t.Errorf("skew=%g: mass below bound %d = %g, want %g", c.Skew, i, got, want)
			}
		}
	}
}

func TestHistogramSelBelowMatchesCDF(t *testing.T) {
	for _, c := range []Column{{NDV: 500}, {NDV: 500, Skew: 1.5}} {
		h := c.Histogram()
		for b := 0.0; b <= 500; b += 13 {
			got := h.SelBelow(b)
			want := c.FracBelow(b)
			// Linear interpolation inside equi-depth buckets tracks the
			// true CDF within a bucket's depth.
			if math.Abs(got-want) > 1.0/HistogramBuckets {
				t.Errorf("skew=%g SelBelow(%g) = %g, CDF %g", c.Skew, b, got, want)
			}
		}
	}
}

func TestHistogramSelBelowEdges(t *testing.T) {
	var empty Histogram
	if got := empty.SelBelow(5); got != 1 {
		t.Errorf("empty histogram SelBelow = %g", got)
	}
	c100 := Column{NDV: 100}
	h := c100.Histogram()
	if got := h.SelBelow(-1); got != 0 {
		t.Errorf("SelBelow(-1) = %g", got)
	}
	if got := h.SelBelow(1e9); got != 1 {
		t.Errorf("SelBelow(huge) = %g", got)
	}
}

// Property: FracBelow is a CDF — in [0,1], monotone, 0 at 0, 1 at NDV —
// for arbitrary NDV and skew.
func TestQuickFracBelowIsCDF(t *testing.T) {
	f := func(ndvRaw uint16, skewRaw uint8, aRaw, bRaw uint16) bool {
		ndv := 1 + float64(ndvRaw)
		c := Column{NDV: ndv, Skew: float64(skewRaw) / 32}
		a := float64(aRaw) / 65535 * ndv
		b := float64(bRaw) / 65535 * ndv
		if a > b {
			a, b = b, a
		}
		fa, fb := c.FracBelow(a), c.FracBelow(b)
		return fa >= 0 && fb <= 1 && fa <= fb && c.FracBelow(0) == 0 && c.FracBelow(ndv) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
