package dp

import (
	"errors"
	"math/rand"
	"testing"

	"sdpopt/internal/bits"
	"sdpopt/internal/cost"
	"sdpopt/internal/memo"
	"sdpopt/internal/plan"
	"sdpopt/internal/query"
	"sdpopt/internal/testutil"
)

func chainQuery(t *testing.T, n int) *query.Query {
	t.Helper()
	return testutil.MustQuery(testutil.Catalog(n), n, query.ChainEdges(n), nil)
}

func starQuery(t *testing.T, n int) *query.Query {
	t.Helper()
	return testutil.MustQuery(testutil.Catalog(n), n, query.StarEdges(n), nil)
}

func TestOptimizeTwoRelations(t *testing.T) {
	q := chainQuery(t, 2)
	p, stats, err := Optimize(q, Options{})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid plan: %v", err)
	}
	if p.Rels != bits.Full(2) {
		t.Errorf("plan covers %v", p.Rels)
	}
	if p.NumJoins() != 1 {
		t.Errorf("NumJoins = %d, want 1", p.NumJoins())
	}
	if stats.PlansCosted == 0 || stats.Memo.ClassesCreated != 3 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestOptimizeSingleRelation(t *testing.T) {
	cat := testutil.Catalog(1)
	q, err := query.New(cat, []int{0}, nil, nil)
	if err != nil {
		t.Fatalf("query.New: %v", err)
	}
	p, _, err := Optimize(q, Options{})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if !p.Op.IsScan() {
		t.Errorf("plan op = %v, want a scan", p.Op)
	}
}

func TestChainClassCount(t *testing.T) {
	// A chain's connected subsets are its contiguous segments: n(n+1)/2.
	for _, n := range []int{3, 5, 8} {
		q := chainQuery(t, n)
		_, stats, err := Optimize(q, Options{})
		if err != nil {
			t.Fatalf("Optimize chain-%d: %v", n, err)
		}
		want := int64(n * (n + 1) / 2)
		if stats.Memo.ClassesCreated != want {
			t.Errorf("chain-%d classes = %d, want %d", n, stats.Memo.ClassesCreated, want)
		}
	}
}

func TestStarClassCount(t *testing.T) {
	// A star's connected subsets: singletons (n) plus every subset of
	// spokes together with the hub (2^(n-1) - 1 non-empty-with-hub minus
	// the singleton hub already counted): total 2^(n-1) + n - 1.
	for _, n := range []int{3, 5, 7} {
		q := starQuery(t, n)
		_, stats, err := Optimize(q, Options{})
		if err != nil {
			t.Fatalf("Optimize star-%d: %v", n, err)
		}
		want := int64(1<<(n-1)) + int64(n) - 1
		if stats.Memo.ClassesCreated != want {
			t.Errorf("star-%d classes = %d, want %d", n, stats.Memo.ClassesCreated, want)
		}
	}
}

// randomValidPlan builds a random left-deep join over the query using the
// cost model's plan constructors, for optimality cross-checks.
func randomValidPlan(q *query.Query, m *cost.Model, rng *rand.Rand) *plan.Plan {
	n := q.NumRelations()
	// Random connected addition order.
	order := []int{rng.Intn(n)}
	covered := bits.Single(order[0])
	for covered.Len() < n {
		nbrs := q.Neighbors(covered).Slice()
		next := nbrs[rng.Intn(len(nbrs))]
		order = append(order, next)
		covered = covered.Add(next)
	}
	cur := m.AccessPaths(order[0])[0]
	for _, r := range order[1:] {
		rel := m.AccessPaths(r)[0]
		set := cur.Rels.Union(rel.Rels)
		in := cost.JoinInputs{
			Outer: cur, Inner: rel,
			Preds: q.PredsBetween(cur.Rels, rel.Rels),
			Rows:  m.JoinRows(cur.Rels, rel.Rels, cur.Rows, rel.Rows),
		}
		if rng.Intn(2) == 0 {
			in.Outer, in.Inner = in.Inner, in.Outer
		}
		plans := m.JoinPlans(in)
		cur = plans[rng.Intn(len(plans))]
		if cur.Rels != set {
			panic("randomValidPlan: bad rels")
		}
	}
	return cur
}

func TestDPOptimalAgainstRandomPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	topologies := []struct {
		name  string
		edges []query.Edge
		n     int
	}{
		{"chain-5", query.ChainEdges(5), 5},
		{"star-5", query.StarEdges(5), 5},
		{"cycle-5", query.CycleEdges(5), 5},
		{"clique-4", query.CliqueEdges(4), 4},
		{"star-chain-7", query.StarChainEdges(7, 4), 7},
	}
	for _, tc := range topologies {
		q := testutil.MustQuery(testutil.Catalog(tc.n), tc.n, tc.edges, nil)
		best, _, err := Optimize(q, Options{})
		if err != nil {
			t.Fatalf("%s: Optimize: %v", tc.name, err)
		}
		if err := best.Validate(); err != nil {
			t.Fatalf("%s: invalid plan: %v", tc.name, err)
		}
		m := cost.NewModel(q, cost.DefaultParams())
		for trial := 0; trial < 100; trial++ {
			rp := randomValidPlan(q, m, rng)
			if rp.Cost < best.Cost*(1-1e-9) {
				t.Fatalf("%s: random plan (cost %g) beats DP (cost %g):\nrandom: %s\nDP: %s",
					tc.name, rp.Cost, best.Cost,
					rp.Shape(func(i int) string { return q.Relation(i).Name }),
					best.Shape(func(i int) string { return q.Relation(i).Name }))
			}
		}
	}
}

func TestBudgetAbort(t *testing.T) {
	q := starQuery(t, 8)
	_, stats, err := Optimize(q, Options{Budget: 64 * 1024})
	if !errors.Is(err, memo.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if stats.Memo.PeakSimBytes <= 64*1024 {
		t.Errorf("peak %d should exceed the budget it tripped", stats.Memo.PeakSimBytes)
	}
}

func TestHookSeesLevelsInOrder(t *testing.T) {
	q := chainQuery(t, 4)
	var levels []int
	var createdCounts []int
	opts := Options{Hook: func(level int, m *memo.Memo, created []*memo.Class) error {
		levels = append(levels, level)
		createdCounts = append(createdCounts, len(created))
		for _, c := range created {
			if c.Set.Len() != level {
				t.Errorf("level %d created class of size %d", level, c.Set.Len())
			}
			if c.Best == nil {
				t.Errorf("level %d class %v has no best plan", level, c.Set)
			}
		}
		return nil
	}}
	if _, _, err := Optimize(q, opts); err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	wantLevels := []int{1, 2, 3, 4}
	if len(levels) != len(wantLevels) {
		t.Fatalf("hook levels = %v", levels)
	}
	for i := range wantLevels {
		if levels[i] != wantLevels[i] {
			t.Fatalf("hook levels = %v, want %v", levels, wantLevels)
		}
	}
	// Chain-4 creates 3, 2, 1 classes at levels 2, 3, 4.
	want := []int{4, 3, 2, 1}
	for i := range want {
		if createdCounts[i] != want[i] {
			t.Fatalf("created per level = %v, want %v", createdCounts, want)
		}
	}
}

func TestHookPruningAffectsSearch(t *testing.T) {
	q := starQuery(t, 5)
	// Prune all but the first class at level 2: the search must still
	// complete (singletons always remain) and the result stays valid.
	pruned := 0
	opts := Options{Hook: func(level int, m *memo.Memo, created []*memo.Class) error {
		if level == 2 {
			for _, c := range created[1:] {
				m.Remove(c)
				pruned++
			}
		}
		return nil
	}}
	p, stats, err := Optimize(q, opts)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if pruned == 0 {
		t.Fatal("nothing pruned")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid plan: %v", err)
	}
	if p.Rels != bits.Full(5) {
		t.Errorf("plan covers %v", p.Rels)
	}
	// Pruning must shrink the search relative to full DP.
	_, full, err := Optimize(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Memo.ClassesCreated >= full.Memo.ClassesCreated {
		t.Errorf("pruned run created %d classes, full %d", stats.Memo.ClassesCreated, full.Memo.ClassesCreated)
	}
}

func TestHookErrorAborts(t *testing.T) {
	q := chainQuery(t, 4)
	boom := errors.New("boom")
	_, _, err := Optimize(q, Options{Hook: func(level int, m *memo.Memo, created []*memo.Class) error {
		if level == 3 {
			return boom
		}
		return nil
	}})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestOrderByUsesInterestingOrder(t *testing.T) {
	cat := testutil.Catalog(3)
	edges := query.ChainEdges(3)
	// Order by relation 0's join column with relation 1 — a join column, so
	// an equivalence-class order.
	q := testutil.MustQuery(cat, 3, edges, &query.OrderSpec{Rel: 0, Col: 0})
	if q.OrderEqClass() < 0 {
		t.Fatal("fixture: order column is not a join column")
	}
	p, _, err := Optimize(q, Options{})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if p.Order != q.OrderEqClass() {
		t.Errorf("final order = %d, want %d", p.Order, q.OrderEqClass())
	}
	// The ordered result can never beat the unordered optimum.
	qu := testutil.MustQuery(cat, 3, edges, nil)
	pu, _, err := Optimize(qu, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost < pu.Cost {
		t.Errorf("ordered cost %g < unordered %g", p.Cost, pu.Cost)
	}
}

func TestOrderByNonJoinColumnAlwaysSorts(t *testing.T) {
	cat := testutil.Catalog(3)
	// Column 20 participates in no join.
	q := testutil.MustQuery(cat, 3, query.ChainEdges(3), &query.OrderSpec{Rel: 1, Col: 20})
	p, _, err := Optimize(q, Options{})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if p.Op != plan.Sort {
		t.Errorf("final op = %v, want Sort", p.Op)
	}
}

func TestCompoundLeaves(t *testing.T) {
	q := chainQuery(t, 4)
	m := cost.NewModel(q, cost.DefaultParams())
	// Pre-join relations 0 and 1 into a compound leaf, as IDP does.
	a := m.AccessPaths(0)[0]
	b := m.AccessPaths(1)[0]
	in := cost.JoinInputs{Outer: a, Inner: b, Preds: q.PredsBetween(a.Rels, b.Rels),
		Rows: m.JoinRows(a.Rels, b.Rels, a.Rows, b.Rows)}
	compound := m.JoinPlans(in)[0]
	leaves := []Leaf{
		{Set: bits.Of(0, 1), Plans: []*plan.Plan{compound}},
		{Set: bits.Single(2)},
		{Set: bits.Single(3)},
	}
	e, err := NewEngine(q, leaves, Options{Model: m})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if err := e.Run(e.NumLeaves()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	p, err := e.Finalize()
	if err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid plan: %v", err)
	}
	if p.Rels != bits.Full(4) {
		t.Errorf("plan covers %v", p.Rels)
	}
	// The compound leaf must appear as a subtree.
	found := false
	var walk func(*plan.Plan)
	walk = func(pl *plan.Plan) {
		if pl == nil {
			return
		}
		if pl == compound {
			found = true
		}
		walk(pl.Left)
		walk(pl.Right)
	}
	walk(p)
	if !found {
		t.Error("committed compound plan not part of the final plan")
	}
}

func TestNewEngineValidatesLeaves(t *testing.T) {
	q := chainQuery(t, 3)
	cases := map[string][]Leaf{
		"empty leaf":      {{Set: bits.Set{}}, {Set: bits.Of(0, 1, 2), Plans: []*plan.Plan{{}}}},
		"overlap":         {{Set: bits.Of(0, 1), Plans: []*plan.Plan{{}}}, {Set: bits.Of(1, 2), Plans: []*plan.Plan{{}}}},
		"not covering":    {{Set: bits.Single(0)}, {Set: bits.Single(1)}},
		"multi w/o plans": {{Set: bits.Of(0, 1)}, {Set: bits.Single(2)}},
	}
	for name, leaves := range cases {
		if _, err := NewEngine(q, leaves, Options{}); err == nil {
			t.Errorf("%s: NewEngine accepted bad leaves", name)
		}
	}
}

func TestFinalizeBeforeCompletionFails(t *testing.T) {
	q := chainQuery(t, 4)
	e, err := NewEngine(q, BaseLeaves(q), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(2); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Finalize(); err == nil {
		t.Error("Finalize succeeded before reaching the top level")
	}
}

func TestStatsElapsedAndCosted(t *testing.T) {
	q := chainQuery(t, 6)
	_, stats, err := Optimize(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Elapsed <= 0 {
		t.Error("Elapsed not measured")
	}
	if stats.PlansCosted <= 0 {
		t.Error("PlansCosted not counted")
	}
	if stats.Memo.PeakSimBytes <= 0 {
		t.Error("PeakSimBytes not tracked")
	}
}

// Property: DP's optimum is monotone under query growth — adding one more
// relation to a chain can only increase (or keep) the total cost, since the
// larger query strictly contains the smaller one's work.
func TestChainCostMonotone(t *testing.T) {
	prev := 0.0
	for n := 2; n <= 8; n++ {
		q := chainQuery(t, n)
		p, _, err := Optimize(q, Options{})
		if err != nil {
			t.Fatalf("chain-%d: %v", n, err)
		}
		if p.Cost < prev {
			t.Errorf("chain-%d cost %g below chain-%d cost %g", n, p.Cost, n-1, prev)
		}
		prev = p.Cost
	}
}

func TestLeftDeepOnly(t *testing.T) {
	q := testutil.MustQuery(testutil.Catalog(8), 8, query.StarChainEdges(8, 5), nil)
	full, fullStats, err := Optimize(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ld, ldStats, err := Optimize(q, Options{LeftDeepOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ld.Validate(); err != nil {
		t.Fatal(err)
	}
	// Left-deep is a subset of the bushy space: never cheaper, same class
	// coverage, fewer plans costed.
	if ld.Cost < full.Cost*(1-1e-9) {
		t.Errorf("left-deep %g beats bushy %g", ld.Cost, full.Cost)
	}
	if ldStats.Memo.ClassesCreated != fullStats.Memo.ClassesCreated {
		t.Errorf("left-deep classes %d != bushy %d — coverage lost",
			ldStats.Memo.ClassesCreated, fullStats.Memo.ClassesCreated)
	}
	if ldStats.PlansCosted >= fullStats.PlansCosted {
		t.Errorf("left-deep costed %d plans, bushy %d", ldStats.PlansCosted, fullStats.PlansCosted)
	}
	// Every join in the left-deep plan has a scan on one side (modulo the
	// indexed-inner shape whose Right is a scan by construction).
	var walk func(p *plan.Plan) bool
	walk = func(p *plan.Plan) bool {
		if p == nil || p.Op.IsScan() {
			return true
		}
		if p.Op == plan.Sort {
			return walk(p.Left)
		}
		leafSide := p.Left.Rels.Len() == 1 || p.Right.Rels.Len() == 1
		return leafSide && walk(p.Left) && walk(p.Right)
	}
	if !walk(ld) {
		t.Errorf("left-deep plan has a bushy join:\n%s", ld.Shape(func(i int) string { return q.Relation(i).Name }))
	}
}
