// Package quality computes the paper's plan-quality metrics.
//
// Each heuristic plan is scored by its cost ratio to the reference optimum
// (DP's plan, or SDP's when DP is infeasible) and bucketed per the
// refinement of Kossmann & Stocker's classification used throughout the
// paper: Ideal (within 1 % of optimal), Good (within 2×), Acceptable
// (within 10×), Bad (beyond 10×). A batch of ratios is summarized by the
// bucket distribution, the worst-case ratio W, and ρ — the geometric mean
// of the ratios — whose ideal value is 1.
package quality

import (
	"fmt"
	"math"
	"strings"
)

// Bucket classifies one plan's cost ratio to the optimum.
type Bucket int

// Quality buckets.
const (
	Ideal Bucket = iota
	Good
	Acceptable
	Bad
)

// String returns the paper's one-letter bucket code.
func (b Bucket) String() string {
	switch b {
	case Ideal:
		return "I"
	case Good:
		return "G"
	case Acceptable:
		return "A"
	case Bad:
		return "B"
	}
	return "?"
}

// Classify buckets a cost ratio (plan cost / optimal cost).
func Classify(ratio float64) Bucket {
	switch {
	case ratio <= 1.01:
		return Ideal
	case ratio <= 2:
		return Good
	case ratio <= 10:
		return Acceptable
	default:
		return Bad
	}
}

// Summary aggregates the ratios of one technique over a query batch: the
// Plan-Quality columns of the paper's tables.
type Summary struct {
	// Count is the number of ratios summarized.
	Count int
	// PctIdeal..PctBad are the bucket shares in percent.
	PctIdeal, PctGood, PctAcceptable, PctBad float64
	// Worst is W, the worst-case cost ratio.
	Worst float64
	// Rho is ρ, the geometric mean of the ratios.
	Rho float64
}

// Summarize computes a Summary over cost ratios against an optimal
// reference (DP). Ratios below 1 indicate a mis-specified reference and are
// rejected up to floating-point slack.
func Summarize(ratios []float64) (Summary, error) {
	return summarize(ratios, true)
}

// SummarizeRelative computes a Summary against a heuristic reference (the
// paper treats SDP as the reference when DP is infeasible). Ratios below 1
// — the compared technique beating the reference — are legal and count as
// Ideal; they still enter W and ρ at face value.
func SummarizeRelative(ratios []float64) (Summary, error) {
	return summarize(ratios, false)
}

func summarize(ratios []float64, strict bool) (Summary, error) {
	if len(ratios) == 0 {
		return Summary{}, fmt.Errorf("quality: no ratios")
	}
	var s Summary
	s.Count = len(ratios)
	logSum := 0.0
	counts := map[Bucket]int{}
	for _, r := range ratios {
		if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return Summary{}, fmt.Errorf("quality: invalid ratio %g", r)
		}
		if strict && r < 1-1e-6 {
			return Summary{}, fmt.Errorf("quality: ratio %g below 1 — reference is not optimal", r)
		}
		if strict && r < 1 {
			r = 1
		}
		counts[Classify(r)]++
		logSum += math.Log(r)
		if r > s.Worst {
			s.Worst = r
		}
	}
	pct := func(b Bucket) float64 { return 100 * float64(counts[b]) / float64(s.Count) }
	s.PctIdeal = pct(Ideal)
	s.PctGood = pct(Good)
	s.PctAcceptable = pct(Acceptable)
	s.PctBad = pct(Bad)
	s.Rho = math.Exp(logSum / float64(s.Count))
	return s, nil
}

// Row renders the summary as a paper-style table row:
// I, G, A, B percentages, W and ρ.
func (s Summary) Row() string {
	return fmt.Sprintf("%3.0f %3.0f %3.0f %3.0f  W=%5.2f  rho=%5.3f",
		s.PctIdeal, s.PctGood, s.PctAcceptable, s.PctBad, s.Worst, s.Rho)
}

// Header returns the column header matching Row.
func Header() string {
	return fmt.Sprintf("%3s %3s %3s %3s  %7s  %9s", "I", "G", "A", "B", "W", "rho")
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range vals {
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}

// FormatCount renders a plan count in the paper's exponent style, e.g.
// 830000 -> "8.3E5".
func FormatCount(n int64) string {
	if n == 0 {
		return "0"
	}
	f := float64(n)
	exp := int(math.Floor(math.Log10(f)))
	mant := f / math.Pow(10, float64(exp))
	out := fmt.Sprintf("%.1fE%d", mant, exp)
	return strings.Replace(out, ".0E", "E", 1)
}
