package query

import "testing"

func TestShape(t *testing.T) {
	cat := testCatalog(t, 16)
	cases := []struct {
		name  string
		n     int
		edges []Edge
		want  string
	}{
		{"chain-2", 2, ChainEdges(2), "chain"},
		{"chain-6", 6, ChainEdges(6), "chain"},
		{"star-3 is a path", 3, StarEdges(3), "chain"},
		{"star-5", 5, StarEdges(5), "star"},
		{"star-chain-9", 9, StarChainEdges(9, DefaultStarChainSpokes(9)), "star-chain"},
		{"star-chain-15", 15, StarChainEdges(15, 10), "star-chain"},
		{"cycle-3 is a clique", 3, CycleEdges(3), "clique"},
		{"cycle-5", 5, CycleEdges(5), "cycle"},
		{"clique-4", 4, CliqueEdges(4), "clique"},
		{"example-9 two hubs", 9, Example9Edges(), "tree"},
		// Two stars bridged by an edge: two hubs, still a tree.
		{"double-star", 8, []Edge{{0, 1}, {0, 2}, {0, 3}, {3, 4}, {4, 5}, {4, 6}, {4, 7}}, "tree"},
		// A cycle with a pendant spoke: n edges but a degree-3 node.
		{"tadpole", 5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 4}}, "other"},
	}
	for _, c := range cases {
		q := buildQuery(t, cat, c.n, c.edges, nil)
		if got := q.Shape(); got != c.want {
			t.Errorf("%s: Shape() = %q, want %q", c.name, got, c.want)
		}
	}

	// Single relation.
	single, err := New(cat, []int{0}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := single.Shape(); got != "single" {
		t.Errorf("single: Shape() = %q", got)
	}

	// Implied edges reshape the classification: a 3-chain whose predicates
	// share one join column per relation closes into a triangle.
	preds := []Pred{
		{LeftRel: 0, LeftCol: 0, RightRel: 1, RightCol: 0},
		{LeftRel: 1, LeftCol: 0, RightRel: 2, RightCol: 0},
	}
	q, err := New(cat, []int{0, 1, 2}, preds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Shape(); got != "clique" {
		t.Errorf("implied-closure chain: Shape() = %q, want clique", got)
	}
}
