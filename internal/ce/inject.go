package ce

import (
	"fmt"
	"math"

	"sdpopt/internal/cost"
	"sdpopt/internal/query"
)

// Mode selects which estimates the injector corrupts.
type Mode int

const (
	// ModeRelation corrupts base-relation cardinalities, correlated by
	// catalog relation: every query touching the same base table sees the
	// same lie, the way a stale ANALYZE misleads every query alike.
	ModeRelation Mode = iota
	// ModePredicate corrupts join-predicate selectivities, correlated by
	// the (relation, column) pair identities on both sides — the same
	// column pairing lies identically wherever it appears.
	ModePredicate
	// ModeBoth corrupts both.
	ModeBoth
)

// String returns the mode's flag spelling.
func (m Mode) String() string {
	switch m {
	case ModeRelation:
		return "relation"
	case ModePredicate:
		return "predicate"
	case ModeBoth:
		return "both"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode parses a -mode flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "relation":
		return ModeRelation, nil
	case "predicate":
		return ModePredicate, nil
	case "both":
		return ModeBoth, nil
	}
	return 0, fmt.Errorf("ce: unknown error mode %q (relation|predicate|both)", s)
}

// Injector is a lying Estimator: it multiplies the base estimator's answers
// by deterministic log-normal error factors. Band b sizes the lie as a
// q-error bound: factors are exp(σ·z) with σ = ln(b)/1.645, putting ~90% of
// factors inside [1/b, b] — the standard way cardinality-estimation error is
// quantified (TiDB's CE framework, the JOB benchmark literature). Band 1.0
// means σ = 0: every factor is exactly 1 and the injector is bit-identical
// to its base, which is what the CI reference assertion pins.
//
// All factors are precomputed at construction from (seed, stable key), so an
// Injector is read-only afterwards and safe to share across Model.Fork
// workers. Keys are catalog-level identities, not query-local indexes, so
// the lie is correlated across queries: the same base table or column
// pairing is mis-estimated the same way everywhere, matching how real
// statistics go stale.
type Injector struct {
	base cost.Estimator
	band float64
	mode Mode

	relFactor  []float64 // per query-local relation
	predFactor []float64 // per query predicate
}

// NewInjector wraps base (nil selects the catalog estimator for q) in
// band-sized log-normal error under the given mode, deterministically in
// seed. Band must be ≥ 1.
func NewInjector(q *query.Query, base cost.Estimator, band float64, seed int64, mode Mode) (*Injector, error) {
	if band < 1 {
		return nil, fmt.Errorf("ce: error band %g < 1", band)
	}
	if base == nil {
		base = cost.NewCatalogEstimator(q)
	}
	inj := &Injector{base: base, band: band, mode: mode}
	sigma := 0.0
	if band > 1 {
		sigma = math.Log(band) / 1.645 // 90% of factors within [1/band, band]
	}
	inj.relFactor = make([]float64, q.NumRelations())
	for i := range inj.relFactor {
		inj.relFactor[i] = 1
		if sigma > 0 && mode != ModePredicate {
			// Key by catalog relation id: aliases of the same base table and
			// other queries over it share one lie.
			key := uint64(q.Rels[i]) + 0x52454c00 // "REL" tag, disjoint key spaces
			inj.relFactor[i] = math.Exp(sigma * normFromKey(seed, key))
		}
	}
	inj.predFactor = make([]float64, len(q.Preds))
	for pi := range inj.predFactor {
		inj.predFactor[pi] = 1
		if sigma > 0 && mode != ModeRelation {
			inj.predFactor[pi] = math.Exp(sigma * normFromKey(seed, predKey(q, pi)))
		}
	}
	return inj, nil
}

// predKey builds a stable catalog-level identity for predicate pi: the
// sorted (catalog relation, column) pairs of its two sides. The same column
// pairing gets the same key — and therefore the same lie — in every query
// and either spelling order.
func predKey(q *query.Query, pi int) uint64 {
	p := q.Preds[pi]
	l := uint64(q.Rels[p.LeftRel])<<16 | uint64(p.LeftCol)
	r := uint64(q.Rels[p.RightRel])<<16 | uint64(p.RightCol)
	if l > r {
		l, r = r, l
	}
	return l<<32 | r | 0x5045440000000000 // "PED" tag
}

// normFromKey derives a standard normal deviate deterministically from
// (seed, key) via splitmix64 bit-mixing and Box-Muller — no shared RNG
// state, so factor generation is order-independent and race-free.
func normFromKey(seed int64, key uint64) float64 {
	x := splitmix64(uint64(seed) ^ splitmix64(key))
	y := splitmix64(x)
	// Map to (0,1]: u1 must never be 0 for the log below.
	u1 := (float64(x>>11) + 1) / (1 << 53)
	u2 := float64(y>>11) / (1 << 53)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Name implements cost.Estimator.
func (in *Injector) Name() string {
	return fmt.Sprintf("%s+err(band=%g,mode=%s)", in.base.Name(), in.band, in.mode)
}

// RelRows implements cost.Estimator: the base estimate times the relation's
// error factor, floored at one row.
func (in *Injector) RelRows(i int) float64 {
	return math.Max(1, in.base.RelRows(i)*in.relFactor[i])
}

// PredSel implements cost.Estimator: the base selectivity times the
// predicate's error factor, clamped to (0, 1].
func (in *Injector) PredSel(pi int) float64 {
	return math.Min(1, in.base.PredSel(pi)*in.predFactor[pi])
}

// ColumnNDV implements cost.Estimator. Distinct counts are passed through:
// the injected error already reaches join cardinalities via PredSel, and
// index-probe fan-out via the base NDVs stays consistent with them.
func (in *Injector) ColumnNDV(rel, col int) float64 { return in.base.ColumnNDV(rel, col) }

// FilterSel implements cost.Estimator. Filter error is expressed through
// RelRows (the post-filter cardinality the model actually consumes).
func (in *Injector) FilterSel(f query.Filter) float64 { return in.base.FilterSel(f) }
