// Package jointree provides the left-deep join-tree representation shared
// by the non-DP optimizers (greedy, randomized and genetic search).
//
// The paper's introduction positions these as the alternative family of
// solutions to the search-space problem — approaches that "completely
// jettison the DP approach" — and this repository implements them as
// additional baselines. A solution is a permutation of the query's
// relations whose every prefix is connected in the join graph (no cartesian
// products, matching the DP enumerator's rule); its cost is that of the
// left-deep plan built greedily with the cheapest physical join at each
// step.
package jointree

import (
	"fmt"
	"math/rand"

	"sdpopt/internal/bits"
	"sdpopt/internal/cost"
	"sdpopt/internal/plan"
	"sdpopt/internal/query"
)

// Valid reports whether every prefix of the permutation is connected in
// q's join graph (the first element is trivially connected).
func Valid(q *query.Query, perm []int) bool {
	if len(perm) != q.NumRelations() {
		return false
	}
	var covered bits.Set
	for i, r := range perm {
		if r < 0 || r >= q.NumRelations() || covered.Has(r) {
			return false
		}
		if i > 0 && !q.Connected(covered, bits.Single(r)) {
			return false
		}
		covered = covered.Add(r)
	}
	return true
}

// RandomPerm draws a uniform-ish random connected permutation: a random
// start relation, then a uniformly chosen neighbor of the covered set at
// each step.
func RandomPerm(q *query.Query, rng *rand.Rand) []int {
	n := q.NumRelations()
	perm := make([]int, 0, n)
	start := rng.Intn(n)
	perm = append(perm, start)
	covered := bits.Single(start)
	for len(perm) < n {
		nbrs := q.Neighbors(covered).Slice()
		next := nbrs[rng.Intn(len(nbrs))]
		perm = append(perm, next)
		covered = covered.Add(next)
	}
	return perm
}

// Repair reorders perm so that every prefix is connected, preserving the
// original relative order as far as possible: at each step it takes the
// earliest remaining relation adjacent to the covered set. Used by the
// genetic crossover, whose offspring need not be valid.
func Repair(q *query.Query, perm []int) []int {
	n := len(perm)
	out := make([]int, 0, n)
	remaining := append([]int(nil), perm...)
	var covered bits.Set
	for len(out) < n {
		picked := -1
		for i, r := range remaining {
			if len(out) == 0 || q.Connected(covered, bits.Single(r)) {
				picked = i
				break
			}
		}
		if picked < 0 {
			// Disconnected residue cannot happen on connected graphs.
			panic("jointree: repair stuck on a connected graph")
		}
		r := remaining[picked]
		remaining = append(remaining[:picked], remaining[picked+1:]...)
		out = append(out, r)
		covered = covered.Add(r)
	}
	return out
}

// Build constructs the left-deep plan for a valid permutation, choosing
// the cheapest physical join (over both operand orientations) at each
// step, and the cheapest access path for each base relation.
func Build(q *query.Query, m *cost.Model, perm []int) (*plan.Plan, error) {
	if !Valid(q, perm) {
		return nil, fmt.Errorf("jointree: invalid permutation %v", perm)
	}
	cur := cheapestAccess(m, perm[0])
	for _, r := range perm[1:] {
		leaf := cheapestAccess(m, r)
		set := cur.Rels.Union(leaf.Rels)
		in := cost.JoinInputs{
			Outer: cur, Inner: leaf,
			Preds: q.PredsBetween(cur.Rels, leaf.Rels),
			Rows:  m.SetRows(set),
		}
		var best *plan.Plan
		for _, side := range []cost.JoinInputs{in, {Outer: in.Inner, Inner: in.Outer, Preds: in.Preds, Rows: in.Rows}} {
			for _, p := range m.JoinPlans(side) {
				if best == nil || p.Cost < best.Cost {
					best = p
				}
			}
		}
		cur = best
	}
	if q.OrderBy != nil {
		ec := q.OrderEqClass()
		if ec < 0 {
			cur = m.SortPlan(cur, 0)
		} else if cur.Order != ec {
			cur = m.SortPlan(cur, ec)
		}
	}
	return cur, nil
}

func cheapestAccess(m *cost.Model, rel int) *plan.Plan {
	paths := m.AccessPaths(rel)
	best := paths[0]
	for _, p := range paths[1:] {
		if p.Cost < best.Cost {
			best = p
		}
	}
	return best
}

// Neighbor produces a random neighbor of perm under the classic join-tree
// move set — swap two positions or relocate one relation — retrying until
// the result is a valid (prefix-connected) permutation. It never mutates
// perm.
func Neighbor(q *query.Query, perm []int, rng *rand.Rand) []int {
	n := len(perm)
	if n < 2 {
		return append([]int(nil), perm...)
	}
	for attempt := 0; attempt < 16*n; attempt++ {
		out := append([]int(nil), perm...)
		if rng.Intn(2) == 0 {
			i, j := rng.Intn(n), rng.Intn(n)
			out[i], out[j] = out[j], out[i]
		} else {
			i, j := rng.Intn(n), rng.Intn(n)
			r := out[i]
			out = append(out[:i], out[i+1:]...)
			if j > len(out) {
				j = len(out)
			}
			out = append(out[:j], append([]int{r}, out[j:]...)...)
		}
		if Valid(q, out) {
			return out
		}
	}
	// Dense move rejection: fall back to a fresh random solution.
	return RandomPerm(q, rng)
}
