// Package feedback is the cardinality feedback ledger: estimate-vs-actual
// telemetry flowing from plan execution back toward the estimator.
//
// The paper's premise is that cardinality estimates are wrong and optimizers
// must stay robust anyway; the robustness harness (internal/ce) quantifies
// how wrong synthetically. This package measures how wrong they are in a
// *running* system: every executed plan node yields one (estimated rows,
// actual rows) observation attributed to a catalog object — the scanned
// relation, or the join-predicate column pairing — and the ledger aggregates
// those observations in rolling windows into q-error quantiles, directional
// bias, and a per-object staleness score. Raw observations can additionally
// be persisted as an append-only JSONL corpus (see corpus.go), the training
// data a future learned estimator replays.
//
// Downstream consumers close the loop: internal/route biases its deadline
// ladder away from exhaustive DP for queries touching stale objects (the
// PR 8 finding — DP degrades ~5× worse than the heuristics under stats loss
// — turned into a live routing signal), and internal/ce can replay a
// ledger's empirical error factors in place of synthetic log-normal ones.
package feedback

import (
	"fmt"
	"math"
	"sync"

	"sdpopt/internal/obs"
	"sdpopt/internal/plan"
	"sdpopt/internal/query"
)

// Kinds of catalog object an observation is attributed to.
const (
	// KindRelation attributes a scan node's output to its base relation.
	KindRelation = "relation"
	// KindPredicate attributes a join node's output to one of its
	// equi-join column pairings.
	KindPredicate = "predicate"
)

// Observation is one estimate-vs-actual measurement of an executed plan
// node, attributed to a catalog object. The JSON encoding is the corpus
// line format (see corpus.go).
type Observation struct {
	// Object is the catalog-level identity: the relation name ("R3") for
	// KindRelation, the sorted column pairing ("R3.c1=R5.c2") for
	// KindPredicate. The same object gets the same key in every query and
	// either spelling order, so errors correlate across the workload the
	// way stale statistics do.
	Object string `json:"object"`
	// Kind is KindRelation or KindPredicate.
	Kind string `json:"kind"`
	// Est is the optimizer's estimated output cardinality of the node.
	Est float64 `json:"est"`
	// Actual is the executed output cardinality.
	Actual float64 `json:"actual"`
	// Rels is the relation count of the node's subtree.
	Rels int `json:"rels"`
	// Tech is the technique that produced the plan, when known.
	Tech string `json:"tech,omitempty"`
	// TraceID links the observation to the serving trace that sampled it.
	TraceID string `json:"trace_id,omitempty"`
}

// Ratio returns est/actual with both sides floored at one row: > 1 is an
// overestimate, < 1 an underestimate.
func (o Observation) Ratio() float64 {
	e, a := math.Max(1, o.Est), math.Max(1, o.Actual)
	return e / a
}

// QError returns the q-error max(est/actual, actual/est), ≥ 1.
func (o Observation) QError() float64 {
	r := o.Ratio()
	return math.Max(r, 1/r)
}

// PredLabel is the stable catalog-level identity of join predicate pi: the
// two (relation, column) names sorted, joined with "=". The same column
// pairing labels identically in every query and either spelling order —
// the string twin of internal/ce's predKey.
func PredLabel(q *query.Query, pi int) string {
	p := q.Preds[pi]
	l := fmt.Sprintf("%s.%s", q.Relation(p.LeftRel).Name, q.Relation(p.LeftRel).Cols[p.LeftCol].Name)
	r := fmt.Sprintf("%s.%s", q.Relation(p.RightRel).Name, q.Relation(p.RightRel).Cols[p.RightCol].Name)
	if l > r {
		l, r = r, l
	}
	return l + "=" + r
}

// QueryObjects returns the catalog-object keys a query touches: its relation
// names plus its predicate labels. The serving layer feeds these to
// Ledger.StalenessFor to derive the routing signal for one request.
func QueryObjects(q *query.Query) []string {
	out := make([]string, 0, q.NumRelations()+len(q.Preds))
	for i := 0; i < q.NumRelations(); i++ {
		out = append(out, q.Relation(i).Name)
	}
	for pi := range q.Preds {
		out = append(out, PredLabel(q, pi))
	}
	return out
}

// PlanObservations pairs each executed node's estimated cardinality with its
// actual row count (from exec.RunActuals, keyed by node pointer) and
// attributes it to catalog objects: scan nodes to their base relation, join
// nodes to each equi-join predicate the node evaluates (every predicate of a
// multi-predicate join absorbs the node's full error — the standard blame
// assignment for feedback loops, where precision per predicate matters less
// than never missing a lying one). Sort nodes are pass-through and emit
// nothing. Nodes absent from actuals are skipped.
func PlanObservations(q *query.Query, p *plan.Plan, actuals map[*plan.Plan]int, tech, traceID string) []Observation {
	var out []Observation
	var walk func(n *plan.Plan)
	walk = func(n *plan.Plan) {
		if n == nil {
			return
		}
		walk(n.Left)
		walk(n.Right)
		actual, ok := actuals[n]
		if !ok {
			return
		}
		base := Observation{
			Est:     n.Rows,
			Actual:  float64(actual),
			Rels:    n.Rels.Len(),
			Tech:    tech,
			TraceID: traceID,
		}
		switch {
		case n.Op.IsScan():
			o := base
			o.Object = q.Relation(n.Rel).Name
			o.Kind = KindRelation
			out = append(out, o)
		case n.Op.IsJoin():
			for _, pi := range q.PredsBetween(n.Left.Rels, n.Right.Rels) {
				o := base
				o.Object = PredLabel(q, pi)
				o.Kind = KindPredicate
				out = append(out, o)
			}
		}
	}
	walk(p)
	return out
}

// LedgerOptions sizes a Ledger.
type LedgerOptions struct {
	// Window is the per-object rolling window size in observations
	// (default 64).
	Window int
	// MinObs is the observation count below which an object is never
	// flagged stale — one unlucky sample must not demote a route
	// (default 3).
	MinObs int
	// StaleScore is the staleness-score threshold at which an object is
	// flagged stale (default 0.5, i.e. windowed geomean q-error ≥ 2 — the
	// paper's Good/Acceptable boundary applied to estimates).
	StaleScore float64
	// Obs receives sdpopt_feedback_* metrics and EvFeedback trace events.
	// Optional.
	Obs *obs.Observer
}

func (o LedgerOptions) withDefaults() LedgerOptions {
	if o.Window <= 0 {
		o.Window = 64
	}
	if o.MinObs <= 0 {
		o.MinObs = 3
	}
	if o.StaleScore <= 0 {
		o.StaleScore = 0.5
	}
	return o
}

// Ledger aggregates observations per catalog object in rolling windows.
// Safe for concurrent use; all exported methods are no-ops on a nil
// receiver, so an unconfigured server carries a nil *Ledger at zero cost.
type Ledger struct {
	opts LedgerOptions

	mu      sync.RWMutex
	objects map[string]*objectState
	total   int64
}

// objectState is one catalog object's rolling window: a ring of est/actual
// ratios plus lifetime counters.
type objectState struct {
	kind string
	// ratios is the ring of recent est/actual ratios (not q-errors: the
	// sign — over vs under — survives windowing).
	ratios []float64
	head   int
	// Lifetime counters.
	total       int64
	over, under int64
	// Last observation, for display.
	lastEst, lastActual float64
}

func (st *objectState) push(r float64, capacity int) {
	if len(st.ratios) < capacity {
		st.ratios = append(st.ratios, r)
		return
	}
	st.ratios[st.head] = r
	st.head = (st.head + 1) % capacity
}

// windowOrdered returns the ring oldest-first.
func (st *objectState) windowOrdered() []float64 {
	out := make([]float64, 0, len(st.ratios))
	out = append(out, st.ratios[st.head:]...)
	out = append(out, st.ratios[:st.head]...)
	return out
}

// score derives the staleness score from the current window: with geomean
// windowed q-error G ≥ 1, the score is 1 − 1/G ∈ [0, 1). Perfect estimates
// score 0; G = 2 scores 0.5; the score saturates toward 1 as estimates
// detach from reality entirely. The mapping is monotone in G, so comparing
// scores compares geomean q-errors.
func (st *objectState) score() float64 {
	if len(st.ratios) == 0 {
		return 0
	}
	sumLog := 0.0
	for _, r := range st.ratios {
		sumLog += math.Abs(math.Log(r))
	}
	g := math.Exp(sumLog / float64(len(st.ratios)))
	return 1 - 1/g
}

// NewLedger builds a ledger and registers its stale-object gauge on the
// options' observer.
func NewLedger(opts LedgerOptions) *Ledger {
	l := &Ledger{opts: opts.withDefaults(), objects: map[string]*objectState{}}
	if l.opts.Obs != nil && l.opts.Obs.Registry != nil {
		l.opts.Obs.Registry.GaugeFunc(obs.MFeedbackStaleObjects, func() int64 {
			return int64(l.StaleCount())
		})
	}
	return l
}

// Record folds observations into the ledger and emits their metrics and
// trace events. Nil-safe.
func (l *Ledger) Record(observations ...Observation) {
	if l == nil {
		return
	}
	for _, o := range observations {
		if o.Object == "" {
			continue
		}
		r := o.Ratio()
		if math.IsNaN(r) || math.IsInf(r, 0) || r <= 0 {
			continue
		}
		l.mu.Lock()
		st := l.objects[o.Object]
		if st == nil {
			st = &objectState{kind: o.Kind}
			l.objects[o.Object] = st
		}
		st.push(r, l.opts.Window)
		st.total++
		if r > 1 {
			st.over++
		} else if r < 1 {
			st.under++
		}
		st.lastEst, st.lastActual = o.Est, o.Actual
		l.total++
		l.mu.Unlock()

		if ob := l.opts.Obs; ob != nil {
			qe := o.QError()
			ob.FloatHistogram(obs.Label(obs.MFeedbackQError, "kind", o.Kind), nil).
				ObserveExemplar(qe, o.TraceID)
			ob.Counter(obs.Label(obs.MFeedbackObservations, "kind", o.Kind)).Add(1)
			ob.Emit(obs.EvFeedback, map[string]any{
				"object":   o.Object,
				"kind":     o.Kind,
				"est":      o.Est,
				"actual":   o.Actual,
				"qerr":     qe,
				"tech":     o.Tech,
				"rels":     o.Rels,
				"trace_id": o.TraceID,
			})
		}
	}
}

// Staleness returns object's current staleness score in [0, 1), 0 for
// unknown objects or below-MinObs windows. Nil-safe.
func (l *Ledger) Staleness(object string) float64 {
	if l == nil {
		return 0
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	st := l.objects[object]
	if st == nil || st.total < int64(l.opts.MinObs) {
		return 0
	}
	return st.score()
}

// StalenessFor returns the worst staleness score among the given objects —
// the scalar routing signal for one query (see QueryObjects). Nil-safe.
func (l *Ledger) StalenessFor(objects []string) float64 {
	if l == nil {
		return 0
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	worst := 0.0
	for _, obj := range objects {
		st := l.objects[obj]
		if st == nil || st.total < int64(l.opts.MinObs) {
			continue
		}
		if s := st.score(); s > worst {
			worst = s
		}
	}
	return worst
}

// StaleCount returns how many objects are currently flagged stale. Nil-safe.
func (l *Ledger) StaleCount() int {
	if l == nil {
		return 0
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	n := 0
	for _, st := range l.objects {
		if st.total >= int64(l.opts.MinObs) && st.score() >= l.opts.StaleScore {
			n++
		}
	}
	return n
}

// Total returns the lifetime observation count. Nil-safe.
func (l *Ledger) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.total
}
