package obs

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// Every operation on a nil observer, registry, tracer, or metric handle
	// must be a no-op — this is the disabled path the engines ride.
	var o *Observer
	o.Counter("x").Add(1)
	o.Gauge("y").Set(5)
	o.Gauge("y").SetMax(9)
	o.Histogram("z").Observe(time.Second)
	o.Emit(EvLevel, map[string]any{"level": 2})
	if o.Tracing() {
		t.Fatal("nil observer reports tracing enabled")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry handed out a live handle")
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	var tr *Tracer
	tr.Emit("x", nil)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sdpopt_plans_costed_total")
	c.Add(3)
	c.Add(4)
	if got := c.Value(); got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
	if r.Counter("sdpopt_plans_costed_total") != c {
		t.Fatal("counter handle not stable across resolves")
	}
	g := r.Gauge("sdpopt_memo_classes_alive")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	g.SetMax(5)
	if g.Value() != 7 {
		t.Fatal("SetMax lowered the gauge")
	}
	g.SetMax(12)
	if g.Value() != 12 {
		t.Fatal("SetMax did not raise the gauge")
	}
	h := r.Histogram("sdpopt_level_seconds")
	h.Observe(2 * time.Microsecond)
	h.Observe(3 * time.Millisecond)
	h.Observe(10 * time.Minute) // beyond the last bucket: overflow slot
	if h.Count() != 3 {
		t.Fatalf("hist count = %d, want 3", h.Count())
	}
	if h.Sum() <= 10*time.Minute {
		t.Fatalf("hist sum = %v too small", h.Sum())
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("sdpopt_plans_costed_total").Add(42)
	r.Gauge("sdpopt_memo_classes_alive").Set(7)
	r.Histogram(Label("sdpopt_optimize_seconds", "tech", "SDP")).Observe(3 * time.Millisecond)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE sdpopt_plans_costed_total counter",
		"sdpopt_plans_costed_total 42",
		"# TYPE sdpopt_memo_classes_alive gauge",
		"sdpopt_memo_classes_alive 7",
		"# TYPE sdpopt_optimize_seconds histogram",
		`sdpopt_optimize_seconds_bucket{tech="SDP",le="+Inf"} 1`,
		`sdpopt_optimize_seconds_count{tech="SDP"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestLabel(t *testing.T) {
	if got := Label("m"); got != "m" {
		t.Fatalf("Label() = %q", got)
	}
	if got := Label("m", "tech", "IDP(7)"); got != `m{tech="IDP(7)"}` {
		t.Fatalf("Label() = %q", got)
	}
	if got := Label("m", "a", "1", "b", "2"); got != `m{a="1",b="2"}` {
		t.Fatalf("Label() = %q", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := NewTracer(sink)
	tr.Emit(EvLevel, map[string]any{"level": 3, "classes_created": 12, "tech": "DP"})
	tr.EmitPayload(EvSDPLevel, map[string]any{"level": 3, "pruned": 4}, struct{ x int }{1})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Ev() != EvLevel || recs[0].Num("classes_created") != 12 || recs[0].Str("tech") != "DP" {
		t.Fatalf("bad first record: %v", recs[0])
	}
	// The payload must stay in-process, never serialized.
	if _, ok := recs[1]["Payload"]; ok {
		t.Fatal("payload leaked into JSONL")
	}
	if recs[1].Num("pruned") != 4 {
		t.Fatalf("bad second record: %v", recs[1])
	}
}

func TestMemSinkAndWithSinks(t *testing.T) {
	base := New()
	mem := &MemSink{}
	o := base.WithSinks(mem)
	if o.Registry != base.Registry {
		t.Fatal("WithSinks must share the registry")
	}
	o.Emit(EvOptimizeStart, map[string]any{"tech": "SDP"})
	o.Emit(EvOptimizeEnd, map[string]any{"tech": "SDP"})
	if got := len(mem.ByType(EvOptimizeEnd)); got != 1 {
		t.Fatalf("mem sink saw %d optimize.end events, want 1", got)
	}
	// Nil base: events still flow to the extra sink.
	var nilObs *Observer
	mem2 := &MemSink{}
	o2 := nilObs.WithSinks(mem2)
	o2.Emit(EvLevel, nil)
	if len(mem2.Events()) != 1 {
		t.Fatal("WithSinks on nil observer dropped the event")
	}
}

func TestSummarize(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := NewTracer(sink)
	tr.Emit(EvOptimizeEnd, map[string]any{
		"tech": "SDP", "dur_ns": int64(2e6), "plans_costed": 100,
		"classes_created": 20, "peak_sim_bytes": 1 << 20})
	tr.Emit(EvOptimizeEnd, map[string]any{
		"tech": "DP", "dur_ns": int64(5e6), "plans_costed": 900,
		"classes_created": 80, "peak_sim_bytes": 2 << 20, "err": "memo: simulated memory budget exceeded"})
	tr.Emit(EvLevel, map[string]any{"tech": "SDP", "level": 2, "dur_ns": int64(1e6), "classes_created": 8, "plans_costed": 40})
	tr.Emit(EvLevel, map[string]any{"tech": "SDP", "level": 3, "dur_ns": int64(3e6), "classes_created": 12, "plans_costed": 60})
	tr.Emit(EvSDPPartition, map[string]any{"level": 3, "label": "hub:1", "size": 10, "survivors": 6, "rc": 4, "cs": 3, "rs": 5})
	tr.Emit(EvSDPLevel, map[string]any{"level": 3, "pruned": 4})
	tr.Close()
	recs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(recs)
	if len(s.Techniques) != 2 {
		t.Fatalf("techniques = %d, want 2", len(s.Techniques))
	}
	dp := s.Techniques[0]
	if dp.Tech != "DP" || dp.Aborts != 1 || dp.PlansCosted != 900 {
		t.Fatalf("bad DP summary: %+v", dp)
	}
	if len(s.Levels) != 2 || s.Levels[1].Level != 3 || s.Levels[1].Classes != 12 {
		t.Fatalf("bad level summary: %+v", s.Levels)
	}
	var rc *CriterionSummary
	for i := range s.Criteria {
		if s.Criteria[i].Criterion == "RC" {
			rc = &s.Criteria[i]
		}
	}
	if rc == nil || rc.Candidates != 10 || rc.Survivors != 4 {
		t.Fatalf("bad RC criterion: %+v", s.Criteria)
	}
	out := s.Render(5)
	for _, want := range []string{"Effort per technique", "Top 2 levels by time", "Skyline pruning efficacy", "RC"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestHTTPEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("sdpopt_plans_costed_total").Add(5)
	addr, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if out := get("/metrics"); !strings.Contains(out, "sdpopt_plans_costed_total 5") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	if out := get("/debug/vars"); !strings.Contains(out, "memstats") {
		t.Error("/debug/vars missing memstats")
	}
	if out := get("/debug/pprof/"); !strings.Contains(out, "goroutine") {
		t.Error("/debug/pprof/ missing profile index")
	}
}

// TestRegistryRace hammers shared handles from many goroutines; run with
// -race this proves the registry is safe under concurrent engine runs.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	mem := &MemSink{}
	tr := NewTracer(mem)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter(MPlansCosted).Add(1)
				r.Gauge(MMemoAlive).Add(1)
				r.Gauge(MMemoPeakSimBytes).SetMax(int64(j))
				r.Histogram(MLevelSeconds).Observe(time.Duration(j))
				tr.Emit(EvLevel, map[string]any{"level": j % 10})
			}
		}()
	}
	wg.Wait()
	if got := r.Counter(MPlansCosted).Value(); got != 4000 {
		t.Fatalf("counter = %d, want 4000", got)
	}
	if got := len(mem.Events()); got != 4000 {
		t.Fatalf("events = %d, want 4000", got)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
}
