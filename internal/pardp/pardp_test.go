package pardp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"sdpopt/internal/dp"
	"sdpopt/internal/memo"
	"sdpopt/internal/plan"
	"sdpopt/internal/workload"
)

// corpusSpecs is the differential-test workload: every topology of the
// paper's generator across the 5–20 relation range (star capped where
// exhaustive DP stays tractable), plus ordered and filtered variants so
// interesting-order retention and local filters are covered.
type corpusEntry struct {
	name string
	spec workload.Spec
	n    int // instances
}

func corpusSpecs() []corpusEntry {
	cat := workload.PaperSchema()
	var out []corpusEntry
	for _, n := range []int{5, 10, 15, 20} {
		out = append(out, corpusEntry{
			name: fmt.Sprintf("chain-%d", n),
			spec: workload.Spec{Cat: cat, Topology: workload.Chain, NumRelations: n, Seed: int64(n)},
			n:    2,
		})
	}
	for _, n := range []int{5, 10, 15} {
		out = append(out, corpusEntry{
			name: fmt.Sprintf("cycle-%d", n),
			spec: workload.Spec{Cat: cat, Topology: workload.Cycle, NumRelations: n, Seed: int64(100 + n)},
			n:    2,
		})
	}
	// Exhaustive DP on a star is exponential in classes; 12 relations is the
	// largest size that stays quick under -race.
	for _, n := range []int{5, 8, 10, 12} {
		out = append(out, corpusEntry{
			name: fmt.Sprintf("star-%d", n),
			spec: workload.Spec{Cat: cat, Topology: workload.Star, NumRelations: n, Seed: int64(200 + n)},
			n:    2,
		})
	}
	out = append(out, corpusEntry{
		name: "starchain-15",
		spec: workload.Spec{Cat: cat, Topology: workload.StarChain, NumRelations: 15, Seed: 315},
		n:    1,
	})
	out = append(out, corpusEntry{
		name: "chain-8-ordered",
		spec: workload.Spec{Cat: cat, Topology: workload.Chain, NumRelations: 8, Ordered: true, Seed: 408},
		n:    2,
	})
	out = append(out, corpusEntry{
		name: "cycle-7-filtered",
		spec: workload.Spec{Cat: cat, Topology: workload.Cycle, NumRelations: 7, FilterFraction: 0.5, Seed: 507},
		n:    2,
	})
	return out
}

func relName(i int) string { return fmt.Sprintf("R%d", i) }

// assertIdentical enforces the engine's hard invariant: the parallel result
// is bit-for-bit the sequential result — plan structure, exact cost bits,
// plans costed, classes created, and end-of-run simulated memory. (Peak
// simulated memory is deliberately excluded: the sequential engine can
// transiently retain paths a later candidate of the same level displaces,
// while the staged merge replays only the winners.)
func assertIdentical(t *testing.T, label string, pSeq *plan.Plan, stSeq dp.Stats, pPar *plan.Plan, stPar dp.Stats) {
	t.Helper()
	if math.Float64bits(pSeq.Cost) != math.Float64bits(pPar.Cost) {
		t.Errorf("%s: cost %v (seq) != %v (par)", label, pSeq.Cost, pPar.Cost)
	}
	if plan.Compare(pSeq, pPar) != 0 {
		t.Errorf("%s: plan shape diverged:\nseq: %s\npar: %s",
			label, pSeq.Shape(relName), pPar.Shape(relName))
	}
	if stSeq.PlansCosted != stPar.PlansCosted {
		t.Errorf("%s: PlansCosted %d (seq) != %d (par)", label, stSeq.PlansCosted, stPar.PlansCosted)
	}
	if stSeq.Memo.ClassesCreated != stPar.Memo.ClassesCreated {
		t.Errorf("%s: ClassesCreated %d (seq) != %d (par)", label, stSeq.Memo.ClassesCreated, stPar.Memo.ClassesCreated)
	}
	if stSeq.Memo.PathsRetained != stPar.Memo.PathsRetained {
		t.Errorf("%s: PathsRetained %d (seq) != %d (par)", label, stSeq.Memo.PathsRetained, stPar.Memo.PathsRetained)
	}
	if stSeq.Memo.SimBytes != stPar.Memo.SimBytes {
		t.Errorf("%s: SimBytes %d (seq) != %d (par)", label, stSeq.Memo.SimBytes, stPar.Memo.SimBytes)
	}
}

// TestParallelMatchesSequential is the determinism property test: across the
// full workload-generator corpus, parallel enumeration at several worker
// counts produces results identical to the sequential engine. Run under
// -race in CI.
func TestParallelMatchesSequential(t *testing.T) {
	for _, ce := range corpusSpecs() {
		ce := ce
		t.Run(ce.name, func(t *testing.T) {
			t.Parallel()
			qs, err := workload.Instances(ce.spec, ce.n)
			if err != nil {
				t.Fatalf("Instances: %v", err)
			}
			for qi, q := range qs {
				pSeq, stSeq, err := dp.Optimize(q, dp.Options{})
				if err != nil {
					t.Fatalf("q%d: sequential: %v", qi, err)
				}
				for _, workers := range []int{1, 2, 4} {
					pPar, stPar, err := Optimize(q, Options{Workers: workers})
					if err != nil {
						t.Fatalf("q%d w=%d: parallel: %v", qi, workers, err)
					}
					assertIdentical(t, fmt.Sprintf("q%d w=%d", qi, workers), pSeq, stSeq, pPar, stPar)
				}
			}
		})
	}
}

// TestLeftDeepParity covers the restricted System R space, whose split
// structure (only (1, k-1)) exercises the task partitioning differently.
func TestLeftDeepParity(t *testing.T) {
	cat := workload.PaperSchema()
	qs, err := workload.Instances(workload.Spec{Cat: cat, Topology: workload.StarChain, NumRelations: 12, Seed: 7}, 2)
	if err != nil {
		t.Fatalf("Instances: %v", err)
	}
	for qi, q := range qs {
		pSeq, stSeq, err := dp.Optimize(q, dp.Options{LeftDeepOnly: true})
		if err != nil {
			t.Fatalf("q%d: sequential: %v", qi, err)
		}
		pPar, stPar, err := Optimize(q, Options{Workers: 4, LeftDeepOnly: true})
		if err != nil {
			t.Fatalf("q%d: parallel: %v", qi, err)
		}
		assertIdentical(t, fmt.Sprintf("q%d", qi), pSeq, stSeq, pPar, stPar)
	}
}

// TestHookParity installs a pruning hook (drop the most expensive class per
// level, as SDP would) and checks both engines present identical canonical
// hook inputs and reach identical results.
func TestHookParity(t *testing.T) {
	cat := workload.PaperSchema()
	q, err := workload.One(workload.Spec{Cat: cat, Topology: workload.Star, NumRelations: 10, Seed: 42})
	if err != nil {
		t.Fatalf("One: %v", err)
	}
	hook := func(record *[][]string) dp.LevelHook {
		return func(level int, m *memo.Memo, created []*memo.Class) error {
			var sets []string
			for _, c := range created {
				sets = append(sets, fmt.Sprint(c.Set))
			}
			*record = append(*record, sets)
			if level >= 2 && level < q.NumRelations()-2 && len(created) > 1 {
				worst := created[0]
				for _, c := range created[1:] {
					if c.Best.Cost > worst.Best.Cost {
						worst = c
					}
				}
				m.Remove(worst)
			}
			return nil
		}
	}
	var seqSeen, parSeen [][]string
	pSeq, stSeq, err := dp.Optimize(q, dp.Options{Hook: hook(&seqSeen)})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	pPar, stPar, err := Optimize(q, Options{Workers: 4, Hook: hook(&parSeen)})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	assertIdentical(t, "hooked", pSeq, stSeq, pPar, stPar)
	if len(seqSeen) != len(parSeen) {
		t.Fatalf("hook invocations: %d (seq) != %d (par)", len(seqSeen), len(parSeen))
	}
	for i := range seqSeen {
		if fmt.Sprint(seqSeen[i]) != fmt.Sprint(parSeen[i]) {
			t.Errorf("hook input %d diverged:\nseq: %v\npar: %v", i, seqSeen[i], parSeen[i])
		}
	}
}

// TestBudgetAbort checks that an infeasible budget aborts the parallel run
// with memo.ErrBudget, same as the sequential engine, and that stats remain
// readable.
func TestBudgetAbort(t *testing.T) {
	cat := workload.PaperSchema()
	q, err := workload.One(workload.Spec{Cat: cat, Topology: workload.Star, NumRelations: 12, Seed: 3})
	if err != nil {
		t.Fatalf("One: %v", err)
	}
	budget := int64(256 * 1024)
	_, _, errSeq := dp.Optimize(q, dp.Options{Budget: budget})
	if !errors.Is(errSeq, memo.ErrBudget) {
		t.Fatalf("sequential err = %v, want ErrBudget", errSeq)
	}
	for _, workers := range []int{2, 8} {
		_, st, errPar := Optimize(q, Options{Workers: workers, Budget: budget})
		if !errors.Is(errPar, memo.ErrBudget) {
			t.Fatalf("w=%d: parallel err = %v, want ErrBudget", workers, errPar)
		}
		if st.Elapsed <= 0 {
			t.Errorf("w=%d: Elapsed not populated on budget abort", workers)
		}
	}
}

// TestSeedLevelBudgetAbort drives the abort into NewEngine's level-1
// seeding, the path where the engine is returned alongside the error.
func TestSeedLevelBudgetAbort(t *testing.T) {
	cat := workload.PaperSchema()
	q, err := workload.One(workload.Spec{Cat: cat, Topology: workload.Chain, NumRelations: 5, Seed: 1})
	if err != nil {
		t.Fatalf("One: %v", err)
	}
	_, st, errPar := Optimize(q, Options{Workers: 2, Budget: 1})
	if !errors.Is(errPar, memo.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", errPar)
	}
	if st.Elapsed <= 0 {
		t.Error("Elapsed not populated on seed-level abort")
	}
}

// TestCancellation checks a pre-canceled context aborts promptly with
// dp.ErrCanceled from the worker pool.
func TestCancellation(t *testing.T) {
	cat := workload.PaperSchema()
	q, err := workload.One(workload.Spec{Cat: cat, Topology: workload.Chain, NumRelations: 12, Seed: 9})
	if err != nil {
		t.Fatalf("One: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, errPar := Optimize(q, Options{Workers: 4, Ctx: ctx})
	if !errors.Is(errPar, dp.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", errPar)
	}
}

// TestDefaultWorkers checks Workers: 0 resolves to GOMAXPROCS and still
// matches the sequential result.
func TestDefaultWorkers(t *testing.T) {
	cat := workload.PaperSchema()
	q, err := workload.One(workload.Spec{Cat: cat, Topology: workload.Cycle, NumRelations: 8, Seed: 11})
	if err != nil {
		t.Fatalf("One: %v", err)
	}
	pSeq, stSeq, err := dp.Optimize(q, dp.Options{})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	pPar, stPar, err := Optimize(q, Options{})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	assertIdentical(t, "default-workers", pSeq, stSeq, pPar, stPar)
}
