package ce

import (
	"fmt"
	"math"
	"testing"

	"sdpopt/internal/cost"
	"sdpopt/internal/dp"
	"sdpopt/internal/plan"
	"sdpopt/internal/workload"
)

func TestInjectorIdentityAtBandOne(t *testing.T) {
	cat := workload.PaperSchema()
	qs, err := workload.Instances(workload.Spec{Cat: cat, Topology: workload.Star, NumRelations: 9, Seed: 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		inj, err := NewInjector(q, nil, 1.0, 99, ModeBoth)
		if err != nil {
			t.Fatal(err)
		}
		base := cost.NewCatalogEstimator(q)
		for i := 0; i < q.NumRelations(); i++ {
			if inj.RelRows(i) != base.RelRows(i) {
				t.Fatalf("band 1 RelRows(%d) = %g, want bit-identical %g", i, inj.RelRows(i), base.RelRows(i))
			}
		}
		for pi := range q.Preds {
			if inj.PredSel(pi) != base.PredSel(pi) {
				t.Fatalf("band 1 PredSel(%d) = %g, want bit-identical %g", pi, inj.PredSel(pi), base.PredSel(pi))
			}
		}
		// And the full optimization is plan-identical.
		p1, st1, err := dp.Optimize(q, dp.Options{Model: cost.NewModel(q, cost.DefaultParams())})
		if err != nil {
			t.Fatal(err)
		}
		p2, st2, err := dp.Optimize(q, dp.Options{Model: cost.NewModelEst(q, cost.DefaultParams(), inj)})
		if err != nil {
			t.Fatal(err)
		}
		if p1.Cost != p2.Cost || st1.PlansCosted != st2.PlansCosted {
			t.Fatalf("band 1 changed the optimization: cost %v vs %v, plans %d vs %d",
				p1.Cost, p2.Cost, st1.PlansCosted, st2.PlansCosted)
		}
	}
}

func TestInjectorDeterministicAndCorrelated(t *testing.T) {
	cat := workload.PaperSchema()
	qs, err := workload.Instances(workload.Spec{Cat: cat, Topology: workload.Chain, NumRelations: 6, Seed: 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := qs[0]
	a, err := NewInjector(q, nil, 4, 7, ModeBoth)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInjector(q, nil, 4, 7, ModeBoth)
	if err != nil {
		t.Fatal(err)
	}
	changed := false
	for i := 0; i < q.NumRelations(); i++ {
		if a.RelRows(i) != b.RelRows(i) {
			t.Fatalf("same seed, different RelRows(%d): %g vs %g", i, a.RelRows(i), b.RelRows(i))
		}
		if a.RelRows(i) != cost.NewCatalogEstimator(q).RelRows(i) {
			changed = true
		}
	}
	if !changed {
		t.Fatal("band 4 injected no relation error at all")
	}
	c, err := NewInjector(q, nil, 4, 8, ModeBoth)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < q.NumRelations(); i++ {
		if a.RelRows(i) != c.RelRows(i) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical error factors")
	}

	// Correlation contract: the same catalog relation lies identically in a
	// different query over it.
	q2 := qs[1]
	inj2, err := NewInjector(q2, nil, 4, 7, ModeBoth)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < q.NumRelations(); i++ {
		for j := 0; j < q2.NumRelations(); j++ {
			if q.Rels[i] != q2.Rels[j] {
				continue
			}
			fa := a.RelRows(i) / cost.NewCatalogEstimator(q).RelRows(i)
			fb := inj2.RelRows(j) / cost.NewCatalogEstimator(q2).RelRows(j)
			if math.Abs(fa-fb)/fa > 1e-12 {
				t.Fatalf("catalog relation %d lies differently across queries: factor %g vs %g", q.Rels[i], fa, fb)
			}
		}
	}
}

func TestDegradeCatalogDeterministic(t *testing.T) {
	cat := workload.PaperSchema()
	a, err := DegradeCatalog(cat, 0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DegradeCatalog(cat, 0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	lost := 0
	total := 0
	for i := range a.Rels {
		for j := range a.Rels[i].Cols {
			ca, cb := a.Rels[i].Cols[j], b.Rels[i].Cols[j]
			if ca.StatsLost != cb.StatsLost {
				t.Fatalf("same seed, different loss at rel %d col %d", i, j)
			}
			total++
			if ca.StatsLost {
				lost++
				if ca.NDV != 0 || ca.Skew != 0 {
					t.Fatalf("lost column kept statistics: %+v", ca)
				}
			}
		}
	}
	if lost == 0 || lost == total {
		t.Fatalf("health 0.5 lost %d of %d columns — not degrading", lost, total)
	}
	// The original catalog is untouched.
	for i := range cat.Rels {
		for j := range cat.Rels[i].Cols {
			if cat.Rels[i].Cols[j].StatsLost {
				t.Fatal("DegradeCatalog mutated its input")
			}
		}
	}
	// Health 1 is a faithful copy; health 0 loses everything.
	full, err := DegradeCatalog(cat, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	none, err := DegradeCatalog(cat, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cat.Rels {
		for j := range cat.Rels[i].Cols {
			if full.Rels[i].Cols[j].StatsLost {
				t.Fatal("health 1 lost a column")
			}
			if !none.Rels[i].Cols[j].StatsLost {
				t.Fatal("health 0 kept a column")
			}
		}
	}
}

// TestMirrorQueryFrameIdentical proves the degraded-catalog twin of a query
// keeps the exact frame — relation order, predicate indexing (including the
// implied closure), equivalence classes — so plans cross-cost between the
// two models without remapping.
func TestMirrorQueryFrameIdentical(t *testing.T) {
	cat := workload.PaperSchema()
	qs, err := workload.Instances(workload.Spec{Cat: cat, Topology: workload.StarChain, NumRelations: 9, Seed: 13}, 3)
	if err != nil {
		t.Fatal(err)
	}
	degraded, err := DegradeCatalog(cat, 0.3, 13)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		mq, err := MirrorQuery(q, degraded)
		if err != nil {
			t.Fatal(err)
		}
		if len(mq.Rels) != len(q.Rels) || len(mq.Preds) != len(q.Preds) {
			t.Fatalf("frame size changed: %d/%d rels, %d/%d preds",
				len(mq.Rels), len(q.Rels), len(mq.Preds), len(q.Preds))
		}
		for i := range q.Rels {
			if q.Rels[i] != mq.Rels[i] {
				t.Fatalf("relation order changed at %d", i)
			}
		}
		for i := range q.Preds {
			if q.Preds[i] != mq.Preds[i] {
				t.Fatalf("predicate %d changed: %+v vs %+v", i, q.Preds[i], mq.Preds[i])
			}
		}
	}
}

// TestRecostIdentity: re-costing a plan under the model that found it must
// reproduce every Cost and Rows bit for bit, across all techniques and
// operator mixes.
func TestRecostIdentity(t *testing.T) {
	cat := workload.PaperSchema()
	for _, spec := range []workload.Spec{
		{Cat: cat, Topology: workload.Chain, NumRelations: 8, Seed: 21},
		{Cat: cat, Topology: workload.Star, NumRelations: 9, Seed: 21},
		{Cat: cat, Topology: workload.Cycle, NumRelations: 7, Seed: 21, Ordered: true},
	} {
		qs, err := workload.Instances(spec, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range qs {
			for _, tech := range techNames {
				m := cost.NewModel(q, cost.DefaultParams())
				p, _, err := runTechnique(tech, q, m, 0)
				if err != nil {
					t.Fatalf("%v/%s: %v", spec.Topology, tech, err)
				}
				rc := cost.NewModel(q, cost.DefaultParams()).Recost(p)
				if err := samePlan(p, rc); err != nil {
					t.Errorf("%v/%s: recost drifted: %v", spec.Topology, tech, err)
				}
			}
		}
	}
}

// samePlan compares two trees node by node, bit-exact on Cost and Rows.
func samePlan(a, b *plan.Plan) error {
	if (a == nil) != (b == nil) {
		return fmt.Errorf("shape differs: %v vs %v", a, b)
	}
	if a == nil {
		return nil
	}
	if a.Op != b.Op || a.Rel != b.Rel || a.Order != b.Order || a.Rels != b.Rels {
		return fmt.Errorf("node differs over %v: op %v/%v order %d/%d", a.Rels, a.Op, b.Op, a.Order, b.Order)
	}
	if a.Cost != b.Cost || a.Rows != b.Rows {
		return fmt.Errorf("numbers differ over %v: cost %v/%v rows %v/%v", a.Rels, a.Cost, b.Cost, a.Rows, b.Rows)
	}
	if err := samePlan(a.Left, b.Left); err != nil {
		return err
	}
	return samePlan(a.Right, b.Right)
}

// TestEvaluateSmoke runs a small end-to-end sweep with execution validation
// and asserts the CI reference contract.
func TestEvaluateSmoke(t *testing.T) {
	rep, err := Evaluate(Config{
		Seed:      42,
		Instances: 2,
		Bands:     []float64{1, 4},
		Healths:   []float64{1, 0.5},
		Mode:      ModeBoth,
		Topologies: []TopoSpec{
			{workload.Chain, 6},
			{workload.Star, 7},
		},
		Exec:        true,
		ExecMaxRows: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.CheckReference(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Topologies) != 2 {
		t.Fatalf("got %d topology reports, want 2", len(rep.Topologies))
	}
	for _, tr := range rep.Topologies {
		// 2 healths × 2 bands × 4 techniques.
		if len(tr.Cells) != 16 {
			t.Fatalf("%s: got %d cells, want 16", tr.Graph, len(tr.Cells))
		}
	}
	if rep.Exec == nil || rep.Exec.JoinNodes == 0 {
		t.Fatalf("execution validation missing: %+v", rep.Exec)
	}
	if !rep.Exec.FingerprintsMatch {
		t.Fatal("lying plan and true plan produced different results")
	}
	if s := rep.String(); len(s) == 0 {
		t.Fatal("empty rendering")
	}
}
