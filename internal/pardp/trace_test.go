package pardp

import (
	"context"
	"fmt"
	"testing"
	"time"

	"sdpopt/internal/dp"
	"sdpopt/internal/obs/span"
	"sdpopt/internal/workload"
)

// countSpans walks a snapshot tree counting spans with the given name.
func countSpans(s span.SpanJSON, name string) int {
	n := 0
	if s.Name == name {
		n++
	}
	for _, c := range s.Children {
		n += countSpans(c, name)
	}
	return n
}

// TestTracingDeterminism re-runs the determinism property with a request
// span installed: spans observe, they never order, so parallel enumeration
// at 1/2/4/8 workers must stay bit-for-bit identical to the sequential
// engine with tracing enabled. Run under -race in CI.
func TestTracingDeterminism(t *testing.T) {
	cat := workload.PaperSchema()
	for _, spec := range []workload.Spec{
		{Cat: cat, Topology: workload.Star, NumRelations: 10, Seed: 42},
		{Cat: cat, Topology: workload.Chain, NumRelations: 15, Seed: 7},
		{Cat: cat, Topology: workload.Cycle, NumRelations: 8, Seed: 11},
	} {
		q, err := workload.One(spec)
		if err != nil {
			t.Fatalf("One: %v", err)
		}
		// Sequential baseline, itself traced.
		seqRoot := span.New("request")
		pSeq, stSeq, err := dp.Optimize(q, dp.Options{Ctx: span.NewContext(context.Background(), seqRoot)})
		if err != nil {
			t.Fatalf("sequential: %v", err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			rec := span.NewRecorder(span.RecorderOptions{SlowThreshold: time.Hour})
			root := span.New("request")
			rec.Start(root)
			pPar, stPar, err := Optimize(q, Options{
				Workers: workers,
				Ctx:     span.NewContext(context.Background(), root),
			})
			if err != nil {
				t.Fatalf("w=%d: parallel: %v", workers, err)
			}
			assertIdentical(t, fmt.Sprintf("%v w=%d traced", spec.Topology, workers), pSeq, stSeq, pPar, stPar)

			rec.Finish(root, 200)
			d := rec.Snapshot()
			tree := *d.Recent[0].Root
			levels := countSpans(tree, "level")
			if levels == 0 {
				t.Fatalf("w=%d: no level spans", workers)
			}
			// Every barrier round attaches one worker span per worker, in
			// fixed worker order. The seed level (level 1) is recorded by
			// the inner sequential engine and has no worker round.
			wspans := countSpans(tree, "pardp.worker")
			if want := (levels - 1) * workers; wspans != want {
				t.Errorf("w=%d: %d pardp.worker spans across %d levels, want %d",
					workers, wspans, levels, want)
			}
		}
	}
}
