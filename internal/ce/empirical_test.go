package ce

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"sdpopt/internal/cost"
	"sdpopt/internal/feedback"
	"sdpopt/internal/workload"
)

// TestEmpiricalEstimatorFactors pins the replay semantics: a profile built
// from observed est/actual pairs scales exactly the objects it observed and
// nothing else.
func TestEmpiricalEstimatorFactors(t *testing.T) {
	cat := workload.PaperSchema()
	q, err := workload.Example9(cat)
	if err != nil {
		t.Fatal(err)
	}
	rel0 := q.Relation(0).Name
	pred0 := feedback.PredLabel(q, 0)
	profile := feedback.BuildProfile([]feedback.Observation{
		// Relation 0 overestimated 2×, predicate 0 underestimated 4×.
		{Object: rel0, Kind: feedback.KindRelation, Est: 200, Actual: 100},
		{Object: pred0, Kind: feedback.KindPredicate, Est: 25, Actual: 100},
	})

	base := cost.NewCatalogEstimator(q)
	est := NewEmpiricalEstimator(q, nil, profile)
	if got, want := est.RelRows(0), math.Max(1, base.RelRows(0)*2); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("RelRows(0) = %g, want %g (2x base)", got, want)
	}
	if got, want := est.PredSel(0), math.Min(1, base.PredSel(0)*0.25); math.Abs(got-want) > 1e-12 {
		t.Fatalf("PredSel(0) = %g, want %g (base/4)", got, want)
	}
	// Unobserved objects replay at factor 1 — bit-identical to the base.
	for i := 1; i < q.NumRelations(); i++ {
		if est.RelRows(i) != math.Max(1, base.RelRows(i)) {
			t.Fatalf("unobserved relation %d scaled", i)
		}
	}
	for pi := 1; pi < len(q.Preds); pi++ {
		if est.PredSel(pi) != base.PredSel(pi) {
			t.Fatalf("unobserved predicate %d scaled", pi)
		}
	}
	if !strings.Contains(est.Name(), "empirical(n=2)") {
		t.Fatalf("Name = %q", est.Name())
	}

	// A nil profile is a pure pass-through.
	neutral := NewEmpiricalEstimator(q, nil, nil)
	if neutral.RelRows(0) != math.Max(1, base.RelRows(0)) || neutral.PredSel(0) != base.PredSel(0) {
		t.Fatal("nil-profile estimator is not the base")
	}
}

// TestEmpiricalReplayByteDeterministic is the acceptance criterion: the
// exported JSONL corpus replays byte-deterministically into the empirical
// mode — corpus → lenient read → profile → Evaluate twice gives identical
// marshaled reports.
func TestEmpiricalReplayByteDeterministic(t *testing.T) {
	cat := workload.PaperSchema()
	// Every catalog relation gets a measured error, alternating over- and
	// underestimates, so whichever relations the sampled instances draw,
	// the replayed lie reaches them.
	var observations []feedback.Observation
	for i := range cat.Rels {
		est := 300.0
		if i%2 == 1 {
			est = 50
		}
		observations = append(observations, feedback.Observation{
			Object: cat.Rels[i].Name, Kind: feedback.KindRelation, Est: est, Actual: 100, Tech: "sdp",
		})
	}
	var corpus bytes.Buffer
	cw := feedback.NewCorpusWriter(&corpus)
	cw.Append(observations...)
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}

	run := func() []byte {
		t.Helper()
		read, skipped, err := feedback.ReadCorpusLenient(bytes.NewReader(corpus.Bytes()), nil)
		if err != nil || skipped != 0 {
			t.Fatalf("corpus read: %d skipped, err %v", skipped, err)
		}
		rep, err := Evaluate(Config{
			Seed:       7,
			Instances:  1,
			Healths:    []float64{1},
			Topologies: []TopoSpec{{workload.Star, 7}},
			Empirical:  feedback.BuildProfile(read),
		})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	b1, b2 := run(), run()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("empirical replay not byte-deterministic:\n%s\n%s", b1, b2)
	}

	var rep Report
	if err := json.Unmarshal(b1, &rep); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(rep.Mode, "empirical(") {
		t.Fatalf("report mode %q", rep.Mode)
	}
	if len(rep.Bands) != 1 || rep.Bands[0] != 1 {
		t.Fatalf("empirical mode kept synthetic bands: %v", rep.Bands)
	}
	// The measured lie must actually reach the sweep: with relation 0
	// overestimated 3x, at least one technique's q-error exceeds 1.
	moved := false
	for _, tr := range rep.Topologies {
		for _, c := range tr.Cells {
			if c.QErrMax > 1.01 {
				moved = true
			}
		}
	}
	if !moved {
		t.Fatal("empirical factors did not perturb any estimate")
	}
}
