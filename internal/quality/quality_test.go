package quality

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		ratio float64
		want  Bucket
	}{
		{1.0, Ideal},
		{1.009, Ideal},
		{1.01, Ideal},
		{1.011, Good},
		{1.5, Good},
		{2.0, Good},
		{2.001, Acceptable},
		{9.99, Acceptable},
		{10.0, Acceptable},
		{10.01, Bad},
		{1000, Bad},
	}
	for _, c := range cases {
		if got := Classify(c.ratio); got != c.want {
			t.Errorf("Classify(%g) = %v, want %v", c.ratio, got, c.want)
		}
	}
}

func TestBucketString(t *testing.T) {
	cases := map[Bucket]string{Ideal: "I", Good: "G", Acceptable: "A", Bad: "B", Bucket(9): "?"}
	for b, want := range cases {
		if got := b.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(b), got, want)
		}
	}
}

func TestSummarize(t *testing.T) {
	// 2 ideal, 1 good, 1 acceptable, 1 bad.
	ratios := []float64{1.0, 1.005, 1.8, 5.0, 12.0}
	s, err := Summarize(ratios)
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if s.Count != 5 {
		t.Errorf("Count = %d", s.Count)
	}
	if s.PctIdeal != 40 || s.PctGood != 20 || s.PctAcceptable != 20 || s.PctBad != 20 {
		t.Errorf("buckets = %g/%g/%g/%g", s.PctIdeal, s.PctGood, s.PctAcceptable, s.PctBad)
	}
	if s.Worst != 12 {
		t.Errorf("Worst = %g", s.Worst)
	}
	wantRho := math.Pow(1.0*1.005*1.8*5.0*12.0, 1.0/5)
	if math.Abs(s.Rho-wantRho) > 1e-12 {
		t.Errorf("Rho = %g, want %g", s.Rho, wantRho)
	}
}

func TestSummarizeAllIdeal(t *testing.T) {
	s, err := Summarize([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.PctIdeal != 100 || s.Rho != 1 || s.Worst != 1 {
		t.Errorf("summary = %+v", s)
	}
}

func TestSummarizeRejectsBadInput(t *testing.T) {
	for name, in := range map[string][]float64{
		"empty":     {},
		"below one": {0.5},
		"NaN":       {math.NaN()},
		"Inf":       {math.Inf(1)},
	} {
		if _, err := Summarize(in); err == nil {
			t.Errorf("%s: Summarize accepted %v", name, in)
		}
	}
}

func TestSummarizeToleratesFloatSlack(t *testing.T) {
	// A ratio a hair below 1 from float noise is clamped, not rejected.
	s, err := Summarize([]float64{1 - 1e-9})
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if s.Rho != 1 {
		t.Errorf("Rho = %g, want clamped 1", s.Rho)
	}
}

func TestRowAndHeaderAlign(t *testing.T) {
	s, err := Summarize([]float64{1, 1.5, 3})
	if err != nil {
		t.Fatal(err)
	}
	row := s.Row()
	if !strings.Contains(row, "W=") || !strings.Contains(row, "rho=") {
		t.Errorf("Row = %q", row)
	}
	if Header() == "" {
		t.Error("empty header")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean = %g, want 4", got)
	}
	if got := GeoMean([]float64{5}); math.Abs(got-5) > 1e-12 {
		t.Errorf("GeoMean single = %g", got)
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Error("GeoMean(nil) should be NaN")
	}
}

func TestFormatCount(t *testing.T) {
	cases := map[int64]string{
		0:       "0",
		830000:  "8.3E5",
		50000:   "5E4",
		4500000: "4.5E6",
		999:     "10E2", // 9.99 rounds to 10.0 at one decimal
		100:     "1E2",
		7:       "7E0",
	}
	for n, want := range cases {
		if got := FormatCount(n); got != want {
			t.Errorf("FormatCount(%d) = %q, want %q", n, got, want)
		}
	}
}

// Property: ρ lies between the minimum and maximum ratio, and percentages
// sum to 100.
func TestQuickSummaryBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		ratios := make([]float64, len(raw))
		lo, hi := math.Inf(1), 0.0
		for i, v := range raw {
			ratios[i] = 1 + float64(v)/1000
			lo = math.Min(lo, ratios[i])
			hi = math.Max(hi, ratios[i])
		}
		s, err := Summarize(ratios)
		if err != nil {
			return false
		}
		if s.Rho < lo-1e-9 || s.Rho > hi+1e-9 {
			return false
		}
		sum := s.PctIdeal + s.PctGood + s.PctAcceptable + s.PctBad
		return math.Abs(sum-100) < 1e-9 && s.Worst == hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarizeRelativeAllowsBelowOne(t *testing.T) {
	// A technique occasionally beating the heuristic reference: ratio 0.5
	// counts as Ideal, enters rho and W at face value.
	s, err := SummarizeRelative([]float64{0.5, 1.0, 3.0})
	if err != nil {
		t.Fatalf("SummarizeRelative: %v", err)
	}
	if s.PctIdeal < 66 || s.PctIdeal > 67 {
		t.Errorf("PctIdeal = %g, want 2/3", s.PctIdeal)
	}
	wantRho := math.Pow(0.5*1.0*3.0, 1.0/3)
	if math.Abs(s.Rho-wantRho) > 1e-12 {
		t.Errorf("Rho = %g, want %g", s.Rho, wantRho)
	}
	if s.Worst != 3 {
		t.Errorf("Worst = %g", s.Worst)
	}
	// Zero and negative ratios remain invalid.
	for _, bad := range [][]float64{{0}, {-1}, {math.NaN()}} {
		if _, err := SummarizeRelative(bad); err == nil {
			t.Errorf("SummarizeRelative accepted %v", bad)
		}
	}
}

// Summarize at the exact bucket boundaries: each edge value lands in the
// closed-upper bucket (≤1.01 Ideal, ≤2 Good, ≤10 Acceptable), matching
// Classify.
func TestSummarizeBoundaryRatios(t *testing.T) {
	cases := []struct {
		ratio  float64
		bucket Bucket
	}{
		{1.01, Ideal},
		{2.0, Good},
		{10.0, Acceptable},
	}
	for _, c := range cases {
		s, err := Summarize([]float64{c.ratio})
		if err != nil {
			t.Fatalf("Summarize(%g): %v", c.ratio, err)
		}
		pcts := map[Bucket]float64{
			Ideal: s.PctIdeal, Good: s.PctGood, Acceptable: s.PctAcceptable, Bad: s.PctBad,
		}
		for b, pct := range pcts {
			want := 0.0
			if b == c.bucket {
				want = 100
			}
			if pct != want {
				t.Errorf("Summarize(%g): bucket %v = %g%%, want %g%%", c.ratio, b, pct, want)
			}
		}
		// Rho round-trips through exp(log(r)), so compare with slack.
		if s.Worst != c.ratio || math.Abs(s.Rho-c.ratio) > 1e-12*c.ratio {
			t.Errorf("Summarize(%g): W=%g rho=%g", c.ratio, s.Worst, s.Rho)
		}
	}
}

// Non-finite and non-positive ratios are rejected by both summarizers, even
// when buried among valid values — a single poisoned ratio must not leak
// into ρ.
func TestSummarizeRejectsNonFinite(t *testing.T) {
	for name, in := range map[string][]float64{
		"NaN amid valid":  {1.2, math.NaN(), 1.4},
		"+Inf amid valid": {1.2, math.Inf(1), 1.4},
		"-Inf":            {math.Inf(-1)},
		"zero":            {0},
		"negative":        {-2},
	} {
		if _, err := Summarize(in); err == nil {
			t.Errorf("%s: Summarize accepted %v", name, in)
		}
		if _, err := SummarizeRelative(in); err == nil {
			t.Errorf("%s: SummarizeRelative accepted %v", name, in)
		}
	}
}

// Property: the bucket counts reconstructed from the percentages always sum
// to the input length — no ratio is ever dropped or double-bucketed.
func TestQuickBucketCountsSumToLength(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		ratios := make([]float64, len(raw))
		for i, v := range raw {
			// Spread inputs across all four buckets: 1 + v/1000 spans
			// [1, 66.5], crossing the 1.01, 2 and 10 boundaries.
			ratios[i] = 1 + float64(v)/1000
		}
		s, err := Summarize(ratios)
		if err != nil {
			return false
		}
		n := float64(s.Count)
		total := 0
		for _, pct := range []float64{s.PctIdeal, s.PctGood, s.PctAcceptable, s.PctBad} {
			c := pct * n / 100
			if math.Abs(c-math.Round(c)) > 1e-6 {
				return false // a percentage that isn't a whole count
			}
			total += int(math.Round(c))
		}
		return total == len(raw) && s.Count == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
