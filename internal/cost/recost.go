package cost

import (
	"fmt"

	"sdpopt/internal/plan"
)

// Recost rebuilds p's cost and cardinality annotations bottom-up under this
// model's estimates, preserving the tree's shape, operators, and orderings
// exactly. It is the robustness harness's truth lens: optimize a query under
// a lying estimator, then Recost the chosen plan under the true model to
// learn what the plan will really cost. Recosting a plan under the model
// that produced it reproduces every Cost and Rows bit for bit (guarded by a
// test), because each operator's arithmetic below is the same code path the
// enumerator used to build it.
//
// The input tree is never mutated (plans are immutable); the result is a
// fresh tree. Recost panics on a malformed tree — callers hand it plans
// produced by this package's own enumeration.
func (m *Model) Recost(p *plan.Plan) *plan.Plan {
	if p == nil {
		return nil
	}
	switch p.Op {
	case plan.SeqScan:
		return m.seqScan(p.Rel)
	case plan.IndexScan:
		return m.indexScan(p.Rel, p.Order)
	case plan.Sort:
		return m.SortPlan(m.Recost(p.Left), p.Order)
	}
	// Join node: recost the children, recompute the joined cardinality from
	// the canonical SetRows, and re-run the operator's own costing.
	o, i := m.Recost(p.Left), m.Recost(p.Right)
	in := JoinInputs{
		Outer: o,
		Inner: i,
		Preds: m.Q.PredsBetween(p.Left.Rels, p.Right.Rels),
		Rows:  m.SetRows(p.Rels),
	}
	switch p.Op {
	case plan.NestLoop:
		return m.nestLoop(in)
	case plan.HashJoin:
		return m.hashJoin(in)
	case plan.MergeJoin:
		// The tree already carries any explicit sorts the merge needed, so
		// the recosted children arrive ordered on p.Order and mergeJoin
		// inserts nothing new.
		return m.mergeJoin(in, p.Order)
	case plan.IndexNestLoop:
		np := m.indexNestLoop(in)
		if np == nil {
			// The applicability conditions are structural (inner is a scan
			// whose indexed column joins across); they cannot change between
			// models of the same query.
			panic(fmt.Sprintf("cost: Recost: indexed nested loop no longer applicable over %v", p.Rels))
		}
		return np
	}
	panic(fmt.Sprintf("cost: Recost: unknown operator %v", p.Op))
}
