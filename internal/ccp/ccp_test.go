package ccp

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"sdpopt/internal/bits"
)

// graph builds an adjacency table from an edge list.
func graph(n int, edges [][2]int) []bits.Set {
	adj := make([]bits.Set, n)
	for _, e := range edges {
		adj[e[0]] = adj[e[0]].Add(e[1])
		adj[e[1]] = adj[e[1]].Add(e[0])
	}
	return adj
}

func chainG(n int) []bits.Set {
	var edges [][2]int
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{i - 1, i})
	}
	return graph(n, edges)
}

func cycleG(n int) []bits.Set {
	adj := chainG(n)
	adj[0] = adj[0].Add(n - 1)
	adj[n-1] = adj[n-1].Add(0)
	return adj
}

func starG(n int) []bits.Set {
	var edges [][2]int
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{0, i})
	}
	return graph(n, edges)
}

func cliqueG(n int) []bits.Set {
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	return graph(n, edges)
}

// starChainG is a hub with chains hanging off it: hub 0, then (n-1)/2 spokes
// each extended by one more vertex (mirroring the workload's star-chain).
func starChainG(n int) []bits.Set {
	var edges [][2]int
	prev := 0
	for i := 1; i < n; i++ {
		if i%2 == 1 {
			edges = append(edges, [2]int{0, i}) // new spoke off the hub
		} else {
			edges = append(edges, [2]int{prev, i}) // extend the last spoke
		}
		prev = i
	}
	return graph(n, edges)
}

func randG(n int, extra int, rng *rand.Rand) []bits.Set {
	edges := make([][2]int, 0, n-1+extra)
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{rng.Intn(i), i}) // random spanning tree
	}
	for k := 0; k < extra; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			if i > j {
				i, j = j, i
			}
			edges = append(edges, [2]int{i, j})
		}
	}
	return graph(n, edges)
}

func connected(adj []bits.Set, s bits.Set) bool {
	if s.IsEmpty() {
		return false
	}
	frontier := bits.Single(s.Min())
	for {
		var next bits.Set
		for it := frontier.Iter(); ; {
			i, ok := it.Next()
			if !ok {
				break
			}
			next = next.Union(adj[i])
		}
		next = next.Intersect(s).Diff(frontier)
		if next.IsEmpty() {
			return frontier == s
		}
		frontier = frontier.Union(next)
	}
}

func linked(adj []bits.Set, a, b bits.Set) bool {
	for it := a.Iter(); ; {
		i, ok := it.Next()
		if !ok {
			return false
		}
		if adj[i].Overlaps(b) {
			return true
		}
	}
}

type pair struct{ s1, s2 bits.Set }

// canon orders an unordered pair by minimum vertex, the form Enumerate
// promises to emit.
func canon(a, b bits.Set) pair {
	if b.Min() < a.Min() {
		a, b = b, a
	}
	return pair{a, b}
}

// refPairs enumerates every csg-cmp pair by brute force: walk all 2^n
// subsets, keep the connected ones, and pair each with every disjoint
// connected set linked to it, filtered by the level bounds. The DPsize
// definition of the search space, independent of Enumerate's internals.
func refPairs(adj []bits.Set, opts Options) map[pair]bool {
	n := len(adj)
	maxLevel := opts.MaxLevel
	if maxLevel <= 0 || maxLevel > n {
		maxLevel = n
	}
	minLevel := opts.MinLevel
	if minLevel < 1 {
		minLevel = 1
	}
	var conn []bits.Set
	for m := 1; m < 1<<n; m++ {
		s := setFromMask(uint(m))
		if s.Len() < maxLevel && connected(adj, s) {
			conn = append(conn, s)
		}
	}
	out := make(map[pair]bool)
	for i, a := range conn {
		for _, b := range conn[i+1:] {
			lv := a.Len() + b.Len()
			if lv <= minLevel || lv > maxLevel {
				continue
			}
			if !a.Disjoint(b) || !linked(adj, a, b) {
				continue
			}
			if opts.LeftDeep && a.Len() > 1 && b.Len() > 1 {
				continue
			}
			out[canon(a, b)] = true
		}
	}
	return out
}

func setFromMask(m uint) bits.Set {
	var s bits.Set
	for i := 0; m != 0; i, m = i+1, m>>1 {
		if m&1 != 0 {
			s = s.Add(i)
		}
	}
	return s
}

func collect(t *testing.T, adj []bits.Set, opts Options) []pair {
	t.Helper()
	var got []pair
	if err := Enumerate(adj, opts, func(s1, s2 bits.Set) error {
		got = append(got, pair{s1, s2})
		return nil
	}); err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	return got
}

// checkAgainstRef asserts the emission is exactly the reference pair set,
// each pair exactly once, in min(S1) < min(S2) form.
func checkAgainstRef(t *testing.T, adj []bits.Set, opts Options) []pair {
	t.Helper()
	got := collect(t, adj, opts)
	want := refPairs(adj, opts)
	seen := make(map[pair]bool, len(got))
	for _, p := range got {
		if p.s1.Min() >= p.s2.Min() {
			t.Fatalf("pair (%v, %v) not in min-vertex order", p.s1, p.s2)
		}
		if seen[p] {
			t.Fatalf("pair (%v, %v) emitted twice", p.s1, p.s2)
		}
		seen[p] = true
		if !want[p] {
			t.Fatalf("pair (%v, %v) emitted but not a csg-cmp pair within bounds", p.s1, p.s2)
		}
	}
	if len(seen) != len(want) {
		missing := make([]pair, 0)
		for p := range want {
			if !seen[p] {
				missing = append(missing, p)
			}
		}
		sort.Slice(missing, func(i, j int) bool { return missing[i].s1.Less(missing[j].s1) })
		t.Fatalf("emitted %d pairs, reference has %d; first missing: %+v", len(seen), len(want), missing[0])
	}
	return got
}

var topologies = []struct {
	name  string
	build func(n int) []bits.Set
}{
	{"chain", chainG},
	{"cycle", cycleG},
	{"star", starG},
	{"clique", cliqueG},
	{"starchain", starChainG},
}

// TestEnumerateMatchesReference proves the emission is exactly the csg-cmp
// pair set on every standard topology at widths up to the brute-force limit.
func TestEnumerateMatchesReference(t *testing.T) {
	for _, topo := range topologies {
		for n := 2; n <= 10; n++ {
			t.Run(fmt.Sprintf("%s-%d", topo.name, n), func(t *testing.T) {
				checkAgainstRef(t, topo.build(n), Options{})
			})
		}
	}
}

// TestEnumerateMatchesReferenceRandom drives random connected graphs of
// varying density through the reference check.
func TestEnumerateMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(9)
		adj := randG(n, rng.Intn(2*n), rng)
		checkAgainstRef(t, adj, Options{})
	}
}

// TestEnumerateLevelBounds exercises every (MinLevel, MaxLevel) window: the
// bounded emission must equal the reference restricted to that window —
// partial runs and IDP blocks depend on this.
func TestEnumerateLevelBounds(t *testing.T) {
	for _, topo := range topologies {
		n := 8
		adj := topo.build(n)
		for minL := 0; minL <= n; minL++ {
			for maxL := 0; maxL <= n; maxL++ {
				opts := Options{MinLevel: minL, MaxLevel: maxL}
				got := collect(t, adj, opts)
				want := refPairs(adj, opts)
				if len(got) != len(want) {
					t.Fatalf("%s min=%d max=%d: emitted %d pairs, want %d", topo.name, minL, maxL, len(got), len(want))
				}
				for _, p := range got {
					if !want[p] {
						t.Fatalf("%s min=%d max=%d: spurious pair (%v, %v)", topo.name, minL, maxL, p.s1, p.s2)
					}
				}
			}
		}
	}
}

// TestEnumerateLeftDeep checks the left-deep restriction against the
// reference (pairs with at least one singleton side).
func TestEnumerateLeftDeep(t *testing.T) {
	for _, topo := range topologies {
		for n := 2; n <= 9; n++ {
			t.Run(fmt.Sprintf("%s-%d", topo.name, n), func(t *testing.T) {
				checkAgainstRef(t, topo.build(n), Options{LeftDeep: true})
			})
		}
	}
}

// TestEmissionOrderFinality machine-checks the invariant dynamic programming
// rests on: when a pair (S1, S2) is emitted, every pair of S1 and every pair
// of S2 (that exists within the bounds) has already been emitted — i.e. both
// sides' DP table entries are final. Checked by replaying the emission and
// verifying each side is either a singleton or a set already "closed": all
// its own pairs seen.
func TestEmissionOrderFinality(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	check := func(t *testing.T, adj []bits.Set, opts Options) {
		t.Helper()
		// pairsOf[s] counts reference pairs composing s (s = s1 ∪ s2).
		want := refPairs(adj, Options{MaxLevel: opts.MaxLevel})
		pairsOf := make(map[bits.Set]int)
		for p := range want {
			pairsOf[p.s1.Union(p.s2)]++
		}
		seenOf := make(map[bits.Set]int)
		if err := Enumerate(adj, opts, func(s1, s2 bits.Set) error {
			for _, side := range []bits.Set{s1, s2} {
				if side.Len() == 1 {
					continue
				}
				if seenOf[side] != pairsOf[side] {
					return fmt.Errorf("pair (%v, %v) emitted while %v is unfinished: %d of %d pairs seen",
						s1, s2, side, seenOf[side], pairsOf[side])
				}
			}
			seenOf[s1.Union(s2)]++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, topo := range topologies {
		for n := 2; n <= 10; n++ {
			check(t, topo.build(n), Options{})
		}
	}
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(9)
		check(t, randG(n, rng.Intn(2*n), rng), Options{})
	}
	// Bounded windows: within MaxLevel the same finality must hold.
	for _, topo := range topologies {
		for maxL := 2; maxL <= 8; maxL++ {
			check(t, topo.build(8), Options{MaxLevel: maxL})
		}
	}
}

// TestEnumerateDeterministic asserts identical adjacency yields an identical
// emission sequence.
func TestEnumerateDeterministic(t *testing.T) {
	adj := starChainG(9)
	a := collect(t, adj, Options{})
	b := collect(t, adj, Options{})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("emission %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestEnumerateAbortError propagates the callback's error unchanged and
// stops immediately.
func TestEnumerateAbortError(t *testing.T) {
	adj := chainG(6)
	boom := fmt.Errorf("boom")
	calls := 0
	err := Enumerate(adj, Options{}, func(s1, s2 bits.Set) error {
		calls++
		if calls == 3 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 3 {
		t.Fatalf("callback ran %d times after abort, want 3", calls)
	}
}

// TestEnumerateCountsKnownClosedForms pins pair counts against the closed
// forms from the DPccp paper: a chain of n relations has (n³−n)/6 csg-cmp
// pairs; a clique has (3ⁿ − 2ⁿ⁺¹ + 1)/2.
func TestEnumerateCountsKnownClosedForms(t *testing.T) {
	for n := 2; n <= 12; n++ {
		got := len(collect(t, chainG(n), Options{}))
		if want := (n*n*n - n) / 6; got != want {
			t.Errorf("chain-%d: %d pairs, want %d", n, got, want)
		}
	}
	pow := func(b, e int) int {
		r := 1
		for i := 0; i < e; i++ {
			r *= b
		}
		return r
	}
	for n := 2; n <= 10; n++ {
		got := len(collect(t, cliqueG(n), Options{}))
		if want := (pow(3, n) - pow(2, n+1) + 1) / 2; got != want {
			t.Errorf("clique-%d: %d pairs, want %d", n, got, want)
		}
	}
}

// TestEnumerateTrivialGraphs covers the degenerate inputs.
func TestEnumerateTrivialGraphs(t *testing.T) {
	for _, adj := range [][]bits.Set{nil, make([]bits.Set, 1), make([]bits.Set, 3)} {
		if got := len(collect(t, adj, Options{})); got != 0 {
			t.Errorf("graph with %d vertices and no edges emitted %d pairs", len(adj), got)
		}
	}
	// Disconnected graph: pairs only within components.
	adj := graph(5, [][2]int{{0, 1}, {2, 3}, {3, 4}})
	checkAgainstRef(t, adj, Options{})
}
