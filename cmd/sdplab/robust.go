package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"sdpopt"
)

// robustCmd runs the cardinality-error robustness sweep: every workload
// query is optimized per technique under a deterministically lying
// estimator (log-normal q-error bands, optionally degraded statistics),
// the chosen plan is re-costed under true statistics, and the resulting
// ρ-under-error grid is printed per topology. -check asserts the reference
// invariants (DP lands exactly on the optimum at band 1 / health 1, no
// technique beats the optimum anywhere) and exits non-zero on violation —
// the CI smoke contract.
func robustCmd(args []string) error {
	fs := flag.NewFlagSet("robust", flag.ExitOnError)
	instances := fs.Int("instances", 3, "instances per topology")
	seed := fs.Int64("seed", 42, "workload, injection and degradation seed")
	budgetMB := fs.Int64("budget", 0, "memory budget in MB (0 = the paper's 1024)")
	skewed := fs.Bool("skewed", false, "use the exponentially-skewed schema")
	bands := fs.String("bands", "1,2,4,8", "comma-separated q-error bands (1 = no error)")
	healths := fs.String("healths", "1,0.5", "comma-separated stats-health fractions in [0,1]")
	mode := fs.String("mode", "both", "what the injector corrupts: relation|predicate|both")
	topos := fs.String("topologies", "", "comma-separated graph-N specs, e.g. chain-8,star-9 (empty = default sweep)")
	exec := fs.Bool("exec", true, "execute the example query to validate the true cost model")
	feedbackPath := fs.String("feedback", "", "replay the measured error factors of this JSONL observation corpus (a serve's -feedback-log) instead of the synthetic -bands; '-' = stdin")
	jsonOut := fs.String("json", "", "also write the report as JSON to this file ('-' = stdout)")
	check := fs.Bool("check", false, "assert the reference invariants and exit non-zero on violation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := sdpopt.ParseErrorMode(*mode)
	if err != nil {
		return err
	}
	if *check && *feedbackPath != "" {
		return fmt.Errorf("-check asserts the no-error reference invariants; they do not hold under -feedback's replayed error")
	}
	bandVals, err := parseFloats(*bands)
	if err != nil {
		return fmt.Errorf("-bands: %w", err)
	}
	healthVals, err := parseFloats(*healths)
	if err != nil {
		return fmt.Errorf("-healths: %w", err)
	}
	topoSpecs, err := parseTopos(*topos)
	if err != nil {
		return fmt.Errorf("-topologies: %w", err)
	}
	cat := sdpopt.PaperSchema()
	if *skewed {
		cat = sdpopt.SkewedSchema()
	}
	cfg := sdpopt.RobustConfig{
		Cat:        cat,
		Seed:       *seed,
		Instances:  *instances,
		Budget:     *budgetMB << 20,
		Bands:      bandVals,
		Healths:    healthVals,
		Mode:       m,
		Topologies: topoSpecs,
		Exec:       *exec,
	}
	if *feedbackPath != "" {
		var r io.Reader = os.Stdin
		if *feedbackPath != "-" {
			f, err := os.Open(*feedbackPath)
			if err != nil {
				return err
			}
			defer f.Close()
			r = f
		}
		observations, skipped, err := sdpopt.ReadFeedbackCorpus(r, os.Stderr)
		if err != nil {
			return err
		}
		if len(observations) == 0 {
			return fmt.Errorf("-feedback: corpus %s holds no readable observations", *feedbackPath)
		}
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "sdplab robust: skipped %d malformed corpus lines\n", skipped)
		}
		cfg.Empirical = sdpopt.BuildFeedbackProfile(observations)
		fmt.Fprintf(os.Stderr, "sdplab robust: replaying %d observations as empirical error factors\n", len(observations))
	}
	start := time.Now()
	rep, err := sdpopt.RunRobustness(cfg)
	if err != nil {
		return err
	}
	fmt.Print(rep.String())
	fmt.Printf("\n[robustness sweep completed in %v]\n", time.Since(start).Round(time.Millisecond))
	if *jsonOut != "" {
		var w *os.File
		if *jsonOut == "-" {
			w = os.Stdout
		} else {
			if w, err = os.Create(*jsonOut); err != nil {
				return err
			}
			defer w.Close()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	}
	if *check {
		if err := rep.CheckReference(); err != nil {
			return err
		}
		fmt.Println("[reference invariants hold: rho = 1 for dp at band 1, rho >= 1 everywhere]")
	}
	return nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// parseTopos parses "chain-8,star-9" into sweep specs.
func parseTopos(s string) ([]sdpopt.RobustTopoSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	names := map[string]sdpopt.Topology{
		"chain":     sdpopt.Chain,
		"star":      sdpopt.Star,
		"cycle":     sdpopt.Cycle,
		"clique":    sdpopt.Clique,
		"starchain": sdpopt.StarChain,
	}
	var out []sdpopt.RobustTopoSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(strings.ToLower(part))
		i := strings.LastIndex(part, "-")
		if i < 0 {
			return nil, fmt.Errorf("spec %q is not graph-N", part)
		}
		topo, ok := names[strings.ReplaceAll(part[:i], "-", "")]
		if !ok {
			return nil, fmt.Errorf("unknown topology %q", part[:i])
		}
		n, err := strconv.Atoi(part[i+1:])
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad relation count in %q", part)
		}
		out = append(out, sdpopt.RobustTopoSpec{Topology: topo, NumRelations: n})
	}
	return out, nil
}
