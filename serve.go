// Optimizer-as-a-service surface: canonical query fingerprinting, the plan
// cache, and the HTTP serving layer. See internal/plancache and
// internal/server for the mechanics; DESIGN.md ("Plan cache and serving")
// for the rationale.

package sdpopt

import (
	"context"
	"io"

	"sdpopt/internal/catalog"
	"sdpopt/internal/dp"
	"sdpopt/internal/feedback"
	"sdpopt/internal/loadgen"
	"sdpopt/internal/obs/regret"
	"sdpopt/internal/obs/span"
	"sdpopt/internal/plancache"
	"sdpopt/internal/route"
	"sdpopt/internal/server"
)

// Plan cache and serving types.
type (
	// PlanCache is a sharded LRU of optimization results keyed by
	// canonical query fingerprint × technique × catalog version, with
	// singleflight deduplication of concurrent misses.
	PlanCache = plancache.Cache
	// PlanCacheOptions configures a PlanCache.
	PlanCacheOptions = plancache.Options
	// PlanCacheKey identifies one cache entry.
	PlanCacheKey = plancache.Key
	// PlanCacheCounts is a snapshot of the cache counters.
	PlanCacheCounts = plancache.Counts
	// Server is the HTTP serving layer: POST /optimize, GET /healthz,
	// GET /catalog, plus the observability surface when configured.
	Server = server.Server
	// ServerOptions configures a Server (catalog, cache, admission
	// control, default budget and timeout).
	ServerOptions = server.Options
	// FlightRecorder retains recent and slow/error request traces in fixed
	// rings; the server exposes one at /debug/requests and
	// /debug/flight.json.
	FlightRecorder = span.Recorder
	// FlightRecorderOptions sizes a flight recorder (ring capacities and
	// the slow-trace pinning threshold).
	FlightRecorderOptions = span.RecorderOptions
	// FlightDump is the /debug/flight.json document: recorder config,
	// counts, and active / notable / recent traces as span trees.
	FlightDump = span.FlightDump
	// FlightTrace is one trace within a FlightDump.
	FlightTrace = span.TraceJSON
	// RegretOptions configures the server's shadow regret layer: sampling
	// rates, the reference-technique DP cutover, worker pool and queue
	// sizes, dedup interval, window sizes, and the flight-recorder pin
	// threshold. Set ServerOptions.Regret to enable /debug/regret.
	RegretOptions = regret.Options
	// RegretShadow is the sampling shadow optimizer behind /debug/regret;
	// the server exposes its own via Server.Regret.
	RegretShadow = regret.Shadow
	// RegretDump is the /debug/regret.json document: shadow config,
	// counters, per-key quality windows, and worst-regret exemplars.
	RegretDump = regret.Dump
	// FeedbackOptions configures the server's cardinality feedback ledger:
	// exec-sampling rate and eligibility bounds, ledger window sizing, and
	// the JSONL corpus path. Set ServerOptions.Feedback to enable
	// /debug/cardinality and staleness-aware routing.
	FeedbackOptions = server.FeedbackOptions
	// FeedbackLedgerOptions sizes the ledger's rolling windows and the
	// staleness threshold.
	FeedbackLedgerOptions = feedback.LedgerOptions
	// FeedbackLedger aggregates estimate-vs-actual observations per catalog
	// object; the server exposes its own via Server.FeedbackLedger.
	FeedbackLedger = feedback.Ledger
	// FeedbackObservation is one per-plan-node (estimate, actual) pair
	// attributed to a catalog object — the JSONL corpus record.
	FeedbackObservation = feedback.Observation
	// FeedbackDump is the /debug/cardinality.json document: ledger config,
	// sampler counters, and per-object q-error/staleness summaries.
	FeedbackDump = feedback.Dump
	// FeedbackProfile is the per-object geomean est/actual error factors
	// distilled from a corpus — RobustConfig.Empirical replays it.
	FeedbackProfile = feedback.ErrorProfile
	// RouteOptions tunes the server's SLO-aware technique router: the
	// fast-path and heavy-tail relation thresholds, the deadline safety
	// factor, and the latency/regret EWMA smoothing (see internal/route
	// and DESIGN.md "SLO-aware routing"). Set ServerOptions.Route; the
	// zero value selects the defaults.
	RouteOptions = route.Options
	// RouteDecision is one routing outcome: the chosen technique, the
	// reason, and the latency prediction behind it.
	RouteDecision = route.Decision
	// LoadOptions configures one open-loop load run against a serving
	// URL: arrival rate and process, workload mix, per-request deadline
	// and technique (see internal/loadgen; `sdplab load` wraps it).
	LoadOptions = loadgen.Options
	// LoadMixEntry is one workload component of a load run.
	LoadMixEntry = loadgen.MixEntry
	// LoadReport is a load run's outcome: latency percentiles measured
	// from scheduled arrival times, shed rate, per-route counts, and
	// mean plan-quality ρ against local SDP references.
	LoadReport = loadgen.Report
)

// ErrCanceled reports an optimization aborted by context cancellation or
// deadline — the serving-path abort, distinct from ErrBudget (the paper's
// memory-feasibility abort). Test with errors.Is; the context cause
// (e.g. context.DeadlineExceeded) is wrapped and also matchable.
var ErrCanceled = dp.ErrCanceled

// NewPlanCache builds a plan cache (zero options: 1024 entries, 16
// shards, no telemetry).
func NewPlanCache(opts PlanCacheOptions) *PlanCache { return plancache.New(opts) }

// NewServer builds the optimizer service; start it with Server.Start or
// mount Server.Handler in an existing mux.
func NewServer(opts ServerOptions) (*Server, error) { return server.New(opts) }

// Techniques lists the technique names OptimizeCached and the server's
// /optimize endpoint accept ("" selects "sdp").
func Techniques() []string { return server.Techniques() }

// ReadFlightDump parses a /debug/flight.json document, e.g. one saved with
// curl while debugging a slow request. Render each trace with
// FlightTrace.Render, or feed dump.Records() to Summarize for the same
// per-level and per-partition tables the JSONL trace path produces
// (`sdplab inspect` wraps both).
func ReadFlightDump(r io.Reader) (*FlightDump, error) { return span.ReadDump(r) }

// ReadRegretDump parses a /debug/regret.json document; render it with
// RegretDump.Render (`sdplab regret` wraps both).
func ReadRegretDump(r io.Reader) (*RegretDump, error) { return regret.ReadDump(r) }

// ReadFeedbackDump parses a /debug/cardinality.json document; render it
// with FeedbackDump.Render (`sdplab feedback` wraps both).
func ReadFeedbackDump(r io.Reader) (*FeedbackDump, error) { return feedback.ReadDump(r) }

// ReadFeedbackCorpus decodes a JSONL observation corpus written by a
// feedback-enabled server (-feedback-log), skipping malformed lines — a
// warning per skipped line goes to warn (discarded when nil) — and returns
// how many were skipped. Corpora cut off mid-line by a crash stay readable.
func ReadFeedbackCorpus(r io.Reader, warn io.Writer) ([]FeedbackObservation, int, error) {
	return feedback.ReadCorpusLenient(r, warn)
}

// BuildFeedbackProfile distills a corpus into per-object geomean est/actual
// error factors; set RobustConfig.Empirical to replay them in place of the
// synthetic error bands.
func BuildFeedbackProfile(observations []FeedbackObservation) *FeedbackProfile {
	return feedback.BuildProfile(observations)
}

// RunLoad drives one open-loop load run against a running server and
// returns the aggregated report (`sdplab load` wraps it).
func RunLoad(ctx context.Context, opts LoadOptions) (*LoadReport, error) {
	return loadgen.Run(ctx, opts)
}

// ParseLoadMix parses a workload-mix spec like
// "star-7:3,chain-12:3,star-chain-15:2" (topology-rels:weight).
func ParseLoadMix(s string) ([]LoadMixEntry, error) { return loadgen.ParseMix(s) }

// DefaultLoadMix is the mixed Star/Chain/Star-Chain workload `sdplab
// bench` uses for its load section.
func DefaultLoadMix() []LoadMixEntry { return loadgen.DefaultMix() }

// RequestTechniques lists the values the server's /optimize "technique"
// field accepts: every Techniques entry plus "auto" (route per request).
func RequestTechniques() []string { return server.RequestTechniques() }

// CanonicalQuery returns q's canonical encoding: a stable string
// normalizing relation order, predicate order and orientation, implied
// predicates, filter constants, and ORDER BY targets, so semantically
// identical queries encode identically.
func CanonicalQuery(q *Query) string { return q.Canonical() }

// QueryFingerprint digests the canonical encoding into a fixed-size hex
// key — the plan cache's query component.
func QueryFingerprint(q *Query) string { return q.Fingerprint() }

// CatalogFingerprint digests the catalog statistics — the plan cache's
// version component. Any statistics change yields a new version, silently
// invalidating all cached plans built against the old one.
func CatalogFingerprint(c *Catalog) string { return c.Fingerprint() }

// ReadCatalogJSON loads a catalog written by Catalog.WriteJSON, validating
// the statistics' basic invariants.
func ReadCatalogJSON(r io.Reader) (*Catalog, error) { return catalog.ReadJSON(r) }

// OptimizeCached optimizes q with the named technique (see Techniques)
// through the cache: a repeated fingerprint is served without
// re-enumeration, and concurrent misses on one fingerprint run exactly one
// optimization. The boolean reports whether the result came from cache.
// Budget 0 selects DefaultBudget; ctx cancellation aborts an actual
// optimization with ErrCanceled but never invalidates cached entries.
//
// Plans are cached in the query's canonical frame and relabeled into each
// caller's query-local relation numbering, so a hit served to an
// equivalent-but-differently-ordered spelling still references the right
// relations. Two caveats relative to the HTTP server's stricter serving
// semantics: ctx and budget belong to whichever call runs the compute, so
// coalesced and later callers share that call's outcome — use one budget
// per cache (the budget is not part of the key) and bypass the cache for
// feasibility probes under unusual budgets.
func OptimizeCached(ctx context.Context, pc *PlanCache, q *Query, technique string, budget int64) (*Plan, Stats, bool, error) {
	if budget == 0 {
		budget = DefaultBudget
	}
	if technique == "" {
		technique = "sdp"
	}
	cn := q.Canon()
	key := PlanCacheKey{
		Fingerprint:    q.Fingerprint(),
		Technique:      technique,
		CatalogVersion: q.Cat.Fingerprint(),
	}
	p, st, src, err := pc.Do(key, func() (*Plan, Stats, error) {
		p, st, err := server.Optimize(ctx, technique, q, budget, 0, nil)
		if err != nil {
			return nil, st, err
		}
		return p.Remap(cn.RelTo, cn.EqTo), st, nil
	})
	if err != nil {
		return nil, st, src != plancache.Miss, err
	}
	return p.Remap(cn.RelFrom, cn.EqFrom), st, src != plancache.Miss, nil
}
