// Package memo implements the dynamic-programming memo table: one class per
// join-composite relation (JCR), each retaining its cheapest plan plus the
// cheapest plan per interesting order, exactly as PostgreSQL's RelOptInfo
// path lists do.
//
// The memo also carries the optimization-overhead accounting the paper
// reports: a simulated memory model calibrated to PostgreSQL 8.1's per-class
// and per-path footprint, with a feasibility budget. The paper's "DP is
// infeasible beyond a 16-relation star on a 1 GB machine" cliff is
// reproduced by this model rather than by physically exhausting RAM — Go's
// lean structs would otherwise move the cliff far out (see DESIGN.md,
// Substitutions).
package memo

import (
	"errors"
	"fmt"

	"sdpopt/internal/bits"
	"sdpopt/internal/obs"
	"sdpopt/internal/plan"
)

// ErrBudget is returned when an optimization exceeds its simulated memory
// budget — the analogue of the paper's algorithms running out of physical
// memory (the "*" entries in its tables).
var ErrBudget = errors.New("memo: simulated memory budget exceeded")

// Simulated per-object footprints, loosely calibrated to PostgreSQL 8.1's
// RelOptInfo and Path allocations so that exhaustive DP on a 16-relation
// star lands near the paper's 326 MB (Table 2.1).
const (
	SimClassBytes = 4096
	SimPathBytes  = 2048
)

// DefaultBudget is the default feasibility budget: the 1 GB of physical
// memory on the paper's experimental machines.
const DefaultBudget = int64(1) << 30

// FV is a JCR feature vector [Rows, Cost, Selectivity] — the three
// attributes SDP's skyline pruning operates on (paper Figure 2.3).
type FV struct {
	Rows, Cost, Sel float64
}

// Class is one memo entry: a JCR plus its retained plans.
type Class struct {
	// Set is the base relations this JCR covers.
	Set bits.Set
	// Level is the number of leaves (base relations, or compound relations
	// in IDP's reduced problems) joined so far; classes enter the DP at
	// level Len(leaves).
	Level int
	// Rows and Sel are the JCR's shared cardinality and selectivity
	// features; every plan of the class produces the same output.
	Rows, Sel float64
	// Best is the cheapest plan for the class.
	Best *plan.Plan
	// ordered holds the cheapest plan per order equivalence class, sorted
	// by ascending order id. A class retains very few ordered plans (one
	// per interesting order of its join columns), and AddPlan re-counts
	// retained paths on every candidate, so this is a small sorted slice
	// rather than a map: slice scans cost a few compares where map
	// iteration — with its per-iteration random seeding — dominated CPU
	// profiles of enumeration-bound runs.
	ordered []OrderedPlan
	// Nbrs caches the join-graph neighborhood of Set (the memo's Nbrs
	// callback, evaluated once at class creation), so the enumerator's
	// connectivity test is a single AND against a candidate's Set instead
	// of a per-pair Neighbors recomputation.
	Nbrs bits.Set

	seq  int
	dead bool
}

// Seq returns the class's creation index within its level, counting pruned
// classes. It indexes the enumerator's per-level visited stamps and orders
// gathered candidates identically to the level's creation order.
func (c *Class) Seq() int { return c.seq }

// Alive reports whether the class is still in the memo. The by-relation
// index's membership bitmaps are not compacted on Remove; walks mask with
// the alive bitmap instead, and out-of-band consumers check this.
func (c *Class) Alive() bool { return !c.dead }

// FeatureVector returns the [R,C,S] vector used by SDP's skyline pruning.
func (c *Class) FeatureVector() FV {
	return FV{Rows: c.Rows, Cost: c.Best.Cost, Sel: c.Sel}
}

// OrderedPlan pairs an order equivalence class with the cheapest retained
// plan delivering that order.
type OrderedPlan struct {
	Order int
	Plan  *plan.Plan
}

// OrderedPlan returns the cheapest retained plan delivering the given
// order equivalence class, if any.
func (c *Class) OrderedPlan(order int) (*plan.Plan, bool) {
	return orderedGet(c.ordered, order)
}

// orderedGet scans the sorted ordered-plan slice for the given order id.
func orderedGet(s []OrderedPlan, order int) (*plan.Plan, bool) {
	for i := range s {
		if s[i].Order == order {
			return s[i].Plan, true
		}
		if s[i].Order > order {
			break
		}
	}
	return nil, false
}

// orderedPut inserts or replaces the plan for an order id, keeping the
// slice sorted by ascending order.
func orderedPut(s []OrderedPlan, order int, p *plan.Plan) []OrderedPlan {
	i := 0
	for ; i < len(s); i++ {
		if s[i].Order == order {
			s[i].Plan = p
			return s
		}
		if s[i].Order > order {
			break
		}
	}
	s = append(s, OrderedPlan{})
	copy(s[i+1:], s[i:])
	s[i] = OrderedPlan{Order: order, Plan: p}
	return s
}

// orderedNumPaths counts the distinct retained plans: best plus every
// ordered plan that is not best itself.
func orderedNumPaths(best *plan.Plan, s []OrderedPlan) int {
	n := 0
	if best != nil {
		n = 1
	}
	for i := range s {
		if s[i].Plan != best {
			n++
		}
	}
	return n
}

// orderedAppendPaths appends the distinct retained plans to dst: best
// first, then ordered plans by ascending order class (the slice's sort
// order).
func orderedAppendPaths(dst []*plan.Plan, best *plan.Plan, s []OrderedPlan) []*plan.Plan {
	if best != nil {
		dst = append(dst, best)
	}
	for i := range s {
		if p := s[i].Plan; p != best {
			dst = append(dst, p)
		}
	}
	return dst
}

// Paths returns the distinct retained plans: Best plus every ordered plan
// that is not Best itself.
func (c *Class) Paths() []*plan.Plan {
	return c.AppendPaths(make([]*plan.Plan, 0, 1+len(c.ordered)))
}

// AppendPaths appends the distinct retained plans to dst in Paths order:
// Best first, then ordered plans by ascending order class. The enumeration
// hot path passes a reused scratch slice (dst[:0]) so the per-pair path
// lookup stops allocating once the scratch has grown.
func (c *Class) AppendPaths(dst []*plan.Plan) []*plan.Plan {
	return orderedAppendPaths(dst, c.Best, c.ordered)
}

// numPaths is the retained-path count used for simulated memory.
func (c *Class) numPaths() int {
	return orderedNumPaths(c.Best, c.ordered)
}

// Stats aggregates the optimization overheads the paper's tables report.
type Stats struct {
	// ClassesCreated counts JCR classes ever created (including later
	// pruned ones).
	ClassesCreated int64
	// ClassesAlive counts classes currently in the memo.
	ClassesAlive int64
	// PathsRetained counts plans currently retained across alive classes.
	PathsRetained int64
	// SimBytes is the current simulated memory consumption.
	SimBytes int64
	// PeakSimBytes is the high-water mark of SimBytes — the "Memory (in
	// MB)" column of the paper's overhead tables.
	PeakSimBytes int64
}

// PeakMB returns the peak simulated memory in megabytes.
func (s *Stats) PeakMB() float64 { return float64(s.PeakSimBytes) / (1 << 20) }

// Memo is the DP table.
type Memo struct {
	classes map[bits.Set]*Class
	byLevel [][]*Class
	// idx[level] is the level's adjacency index: per-relation membership
	// bitmaps over class sequence numbers. Together with Class.Nbrs it
	// gives the enumerator its indexed candidate walk — a few word-wide
	// OR/AND-NOT operations compute exactly the alive classes that are
	// connected to and disjoint from a left class (see Walker.Gather).
	idx []levelIndex
	// Nbrs, when set (the DP engine installs the query's Neighbors before
	// seeding level 1), computes the neighborhood cached on each new class.
	Nbrs func(bits.Set) bits.Set
	// Budget is the simulated-memory feasibility limit in bytes; 0 means
	// unlimited.
	Budget int64
	Stats  Stats

	// Metric handles, resolved once by Observe; nil (a no-op) by default.
	// The gauges aggregate across every live memo sharing the registry, so
	// a metrics endpoint sees total alive classes and simulated bytes of
	// all concurrent optimizations.
	cCreated, cPruned   *obs.Counter
	gAlive, gSim, gPeak *obs.Gauge
}

// New returns an empty memo with the given simulated-memory budget
// (0 = unlimited).
func New(budget int64) *Memo {
	return &Memo{classes: map[bits.Set]*Class{}, Budget: budget}
}

// Observe registers the memo's class/memory accounting with o's metrics
// registry. A nil observer keeps telemetry off (the default).
func (m *Memo) Observe(o *obs.Observer) {
	if o == nil {
		return
	}
	m.cCreated = o.Counter(obs.MClassesCreated)
	m.cPruned = o.Counter(obs.MClassesPruned)
	m.gAlive = o.Gauge(obs.MMemoAlive)
	m.gSim = o.Gauge(obs.MMemoSimBytes)
	m.gPeak = o.Gauge(obs.MMemoPeakSimBytes)
}

// Get returns the class covering set, or nil.
func (m *Memo) Get(set bits.Set) *Class {
	c := m.classes[set]
	if c == nil || c.dead {
		return nil
	}
	return c
}

// NewClass creates and registers a class for set at the given leaf level
// with the shared cardinality features. It fails with ErrBudget when the
// simulated memory budget is exhausted and with an error on duplicates.
func (m *Memo) NewClass(set bits.Set, level int, rows, sel float64) (*Class, error) {
	if set.IsEmpty() {
		return nil, fmt.Errorf("memo: empty class set")
	}
	if existing := m.classes[set]; existing != nil && !existing.dead {
		return nil, fmt.Errorf("memo: class %v already exists", set)
	}
	c := &Class{Set: set, Level: level, Rows: rows, Sel: sel}
	if m.Nbrs != nil {
		c.Nbrs = m.Nbrs(set)
	}
	m.classes[set] = c
	for len(m.byLevel) <= level {
		m.byLevel = append(m.byLevel, nil)
		m.idx = append(m.idx, levelIndex{})
	}
	c.seq = len(m.byLevel[level])
	m.byLevel[level] = append(m.byLevel[level], c)
	m.idx[level].add(c.seq, set)
	m.Stats.ClassesCreated++
	m.Stats.ClassesAlive++
	m.cCreated.Add(1)
	m.gAlive.Add(1)
	if err := m.addSim(SimClassBytes); err != nil {
		return nil, err
	}
	return c, nil
}

// AddPlan offers plan p to class c, retaining it if it improves the
// cheapest plan or the cheapest plan for its output order — PostgreSQL's
// add_path dominance rule restricted to the (cost, order) criteria this
// model tracks. It reports whether p was retained. Cost ties break on
// plan.Compare's canonical structural order, so the retained plans are a
// function of the candidate set alone, not of arrival order — the
// determinism contract the parallel engine's staging table (Sharded)
// replicates.
func (m *Memo) AddPlan(c *Class, p *plan.Plan) (bool, error) {
	before := c.numPaths()
	kept := false
	if c.Best == nil || better(p, c.Best) {
		c.Best = p
		kept = true
	}
	if p.Order != plan.NoOrder {
		if cur, ok := orderedGet(c.ordered, p.Order); !ok || better(p, cur) {
			c.ordered = orderedPut(c.ordered, p.Order, p)
			kept = true
		}
	}
	if kept {
		// A new Best may dominate previously retained ordered paths that
		// cost more but deliver an order Best also delivers.
		if c.Best.Order != plan.NoOrder {
			if cur, ok := orderedGet(c.ordered, c.Best.Order); !ok || better(c.Best, cur) {
				c.ordered = orderedPut(c.ordered, c.Best.Order, c.Best)
			}
		}
	}
	if d := c.numPaths() - before; d != 0 {
		m.Stats.PathsRetained += int64(d)
		if err := m.addSim(int64(d) * SimPathBytes); err != nil {
			return kept, err
		}
	}
	return kept, nil
}

// better is plan.Less with the cost comparison inlined: it runs once per
// candidate plan on the enumeration hot path, where cost ties are rare
// enough that the structural tie-break (plan.Compare's canonical order —
// the determinism contract) stays off the fast path.
func better(p, cur *plan.Plan) bool {
	if p.Cost != cur.Cost {
		return p.Cost < cur.Cost
	}
	return plan.Less(p, cur)
}

// Remove prunes class c from the memo, releasing its simulated memory (the
// peak is unaffected). SDP calls this for JCRs that lose the skyline.
func (m *Memo) Remove(c *Class) {
	if c.dead {
		return
	}
	c.dead = true
	m.idx[c.Level].remove(c.seq)
	delete(m.classes, c.Set)
	m.Stats.ClassesAlive--
	m.Stats.PathsRetained -= int64(c.numPaths())
	m.Stats.SimBytes -= SimClassBytes + int64(c.numPaths())*SimPathBytes
	m.cPruned.Add(1)
	m.gAlive.Add(-1)
	m.gSim.Add(-(SimClassBytes + int64(c.numPaths())*SimPathBytes))
}

// Level returns the alive classes created at leaf level k, in creation
// order.
func (m *Memo) Level(k int) []*Class {
	if k < 0 || k >= len(m.byLevel) {
		return nil
	}
	out := make([]*Class, 0, len(m.byLevel[k]))
	for _, c := range m.byLevel[k] {
		if !c.dead {
			out = append(out, c)
		}
	}
	return out
}

// LevelSize returns the number of classes ever created at leaf level k,
// pruned classes included — the exclusive upper bound on Class.Seq at that
// level, which sizes the enumerator's visited-stamp arrays.
func (m *Memo) LevelSize(k int) int {
	if k < 0 || k >= len(m.byLevel) {
		return 0
	}
	return len(m.byLevel[k])
}

// MaxLevel returns the highest leaf level holding any class.
func (m *Memo) MaxLevel() int { return len(m.byLevel) - 1 }

// Each calls fn for every alive class, in increasing level and creation
// order.
func (m *Memo) Each(fn func(*Class)) {
	for _, lvl := range m.byLevel {
		for _, c := range lvl {
			if !c.dead {
				fn(c)
			}
		}
	}
}

func (m *Memo) addSim(bytes int64) error {
	m.Stats.SimBytes += bytes
	if m.Stats.SimBytes > m.Stats.PeakSimBytes {
		m.Stats.PeakSimBytes = m.Stats.SimBytes
	}
	m.gPeak.SetMax(m.gSim.Add(bytes))
	if m.Budget > 0 && m.Stats.SimBytes > m.Budget {
		return ErrBudget
	}
	return nil
}
