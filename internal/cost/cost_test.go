package cost

import (
	"math"
	"math/rand"
	"testing"

	"sdpopt/internal/bits"
	"sdpopt/internal/catalog"
	"sdpopt/internal/plan"
	"sdpopt/internal/query"
)

// handCatalog builds a fully hand-specified catalog so selectivities are
// exactly predictable.
func handCatalog() *catalog.Catalog {
	mkRel := func(name string, rows float64, ndvs []float64, idxCol int, corr float64) catalog.Relation {
		cols := make([]catalog.Column, len(ndvs))
		for i, n := range ndvs {
			cols[i] = catalog.Column{Name: "c" + string(rune('1'+i)), NDV: n, Width: 8}
		}
		return catalog.Relation{Name: name, Rows: rows, Cols: cols, IndexCol: idxCol, IndexCorr: corr}
	}
	return &catalog.Catalog{Rels: []catalog.Relation{
		mkRel("A", 1000, []float64{100, 50, 10}, 0, 1.0),
		mkRel("B", 5000, []float64{200, 500, 20}, 1, 0.0),
		mkRel("C", 200, []float64{40, 25, 200}, 2, 0.5),
		mkRel("D", 100000, []float64{1000, 100, 5000}, 0, 0.8),
	}}
}

// fixtureQuery joins A.c1=B.c2, B.c2... uses distinct columns: A.c1=B.c2,
// B.c3=C.c1, C.c2=D.c2. Chain A-B-C-D.
func fixtureQuery(t *testing.T, orderBy *query.OrderSpec) *query.Query {
	t.Helper()
	preds := []query.Pred{
		{LeftRel: 0, LeftCol: 0, RightRel: 1, RightCol: 1}, // A.c1 = B.c2
		{LeftRel: 1, LeftCol: 2, RightRel: 2, RightCol: 0}, // B.c3 = C.c1
		{LeftRel: 2, LeftCol: 1, RightRel: 3, RightCol: 1}, // C.c2 = D.c2
	}
	q, err := query.New(handCatalog(), []int{0, 1, 2, 3}, preds, orderBy)
	if err != nil {
		t.Fatalf("query.New: %v", err)
	}
	return q
}

func newFixtureModel(t *testing.T) *Model {
	t.Helper()
	return NewModel(fixtureQuery(t, nil), DefaultParams())
}

func TestPredSelUsesMaxNDV(t *testing.T) {
	m := newFixtureModel(t)
	// A.c1 ndv=100, B.c2 ndv=500 -> sel = 1/500.
	if got, want := m.PredSel(0), 1.0/500; got != want {
		t.Errorf("PredSel(0) = %g, want %g", got, want)
	}
	// B.c3 ndv=20, C.c1 ndv=40 -> 1/40.
	if got, want := m.PredSel(1), 1.0/40; got != want {
		t.Errorf("PredSel(1) = %g, want %g", got, want)
	}
	// C.c2 ndv=25, D.c2 ndv=100 -> 1/100.
	if got, want := m.PredSel(2), 1.0/100; got != want {
		t.Errorf("PredSel(2) = %g, want %g", got, want)
	}
}

func TestPredSelCappedByRows(t *testing.T) {
	// A column whose NDV exceeds its relation's rows is capped at the rows.
	cat := &catalog.Catalog{Rels: []catalog.Relation{
		{Name: "X", Rows: 10, Cols: []catalog.Column{{Name: "a", NDV: 10, Width: 4}}},
		{Name: "Y", Rows: 5, Cols: []catalog.Column{{Name: "b", NDV: 5, Width: 4}}},
	}}
	q, err := query.New(cat, []int{0, 1}, []query.Pred{{LeftRel: 0, LeftCol: 0, RightRel: 1, RightCol: 0}}, nil)
	if err != nil {
		t.Fatalf("query.New: %v", err)
	}
	m := NewModel(q, DefaultParams())
	if got, want := m.PredSel(0), 0.1; got != want {
		t.Errorf("PredSel = %g, want %g", got, want)
	}
}

func TestJoinRowsMatchesSetRows(t *testing.T) {
	m := newFixtureModel(t)
	ab := bits.Of(0, 1)
	abc := bits.Of(0, 1, 2)
	rowsAB := m.JoinRows(bits.Of(0), bits.Of(1), m.BaseRows(0), m.BaseRows(1))
	if got := m.SetRows(ab); math.Abs(got-rowsAB) > 1e-6*got {
		t.Errorf("SetRows(AB) = %g, JoinRows = %g", got, rowsAB)
	}
	// Incremental: (AB) join C must equal SetRows(ABC).
	rowsABC := m.JoinRows(ab, bits.Of(2), rowsAB, m.BaseRows(2))
	if got := m.SetRows(abc); math.Abs(got-rowsABC) > 1e-6*got {
		t.Errorf("SetRows(ABC) = %g, incremental = %g", got, rowsABC)
	}
	// Expected: 1000·5000/500 = 10000; ·200/40 = 50000.
	if math.Abs(rowsAB-10000) > 1e-9 {
		t.Errorf("rows(AB) = %g, want 10000", rowsAB)
	}
	if math.Abs(rowsABC-50000) > 1e-9 {
		t.Errorf("rows(ABC) = %g, want 50000", rowsABC)
	}
}

func TestJoinRowsFloorsAtOne(t *testing.T) {
	cat := &catalog.Catalog{Rels: []catalog.Relation{
		{Name: "X", Rows: 2, Cols: []catalog.Column{{Name: "a", NDV: 2, Width: 4}}},
		{Name: "Y", Rows: 2, Cols: []catalog.Column{{Name: "b", NDV: 2, Width: 4}, {Name: "c", NDV: 2, Width: 4}}},
	}}
	// Two predicates between X and Y drive the estimate below one row.
	q, err := query.New(cat, []int{0, 1}, []query.Pred{
		{LeftRel: 0, LeftCol: 0, RightRel: 1, RightCol: 0},
	}, nil)
	if err != nil {
		t.Fatalf("query.New: %v", err)
	}
	m := NewModel(q, DefaultParams())
	// 2·2·(1/2) = 2 ≥ 1 — force lower by scaling sel: use SetRows on a
	// single relation instead to check the floor indirectly.
	if got := m.JoinRows(bits.Of(0), bits.Of(1), 0.1, 0.1); got != 1 {
		t.Errorf("JoinRows floor = %g, want 1", got)
	}
}

func TestSelectivityFeature(t *testing.T) {
	m := newFixtureModel(t)
	s := bits.Of(0, 1)
	rows := m.SetRows(s)
	got := m.Selectivity(s, rows)
	want := rows / (1000 * 5000)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("Selectivity = %g, want %g", got, want)
	}
}

func TestAccessPaths(t *testing.T) {
	m := newFixtureModel(t)
	// A's index is on c1 (col 0), which joins B -> seq + index scans.
	paths := m.AccessPaths(0)
	if len(paths) != 2 {
		t.Fatalf("AccessPaths(A) = %d paths, want 2", len(paths))
	}
	if paths[0].Op != plan.SeqScan || paths[1].Op != plan.IndexScan {
		t.Fatalf("ops = %v,%v", paths[0].Op, paths[1].Op)
	}
	if paths[1].Order != m.Q.EqClass(0, 0) {
		t.Errorf("index scan order = %d, want %d", paths[1].Order, m.Q.EqClass(0, 0))
	}
	// B's index is on c2 (col 1), which joins A -> index scan present.
	if got := len(m.AccessPaths(1)); got != 2 {
		t.Errorf("AccessPaths(B) = %d paths, want 2", got)
	}
	// D's index is on c1 (col 0), which joins nothing -> seq scan only.
	pd := m.AccessPaths(3)
	if len(pd) != 1 || pd[0].Op != plan.SeqScan {
		t.Errorf("AccessPaths(D) = %v, want seq scan only", pd)
	}
	for _, p := range append(paths, pd...) {
		if err := p.Validate(); err != nil {
			t.Errorf("access path invalid: %v", err)
		}
	}
}

func TestIndexScanCorrelation(t *testing.T) {
	m := newFixtureModel(t)
	// A (corr=1) index scan should cost near its seq scan; B (corr=0)
	// should be far more expensive than its seq scan.
	pa := m.AccessPaths(0)
	ratioA := pa[1].Cost / pa[0].Cost
	pb := m.AccessPaths(1)
	ratioB := pb[1].Cost / pb[0].Cost
	if ratioA > 3 {
		t.Errorf("correlated index scan ratio = %g, want small", ratioA)
	}
	if ratioB < 5 {
		t.Errorf("uncorrelated index scan ratio = %g, want large", ratioB)
	}
}

func TestSortPlan(t *testing.T) {
	m := newFixtureModel(t)
	base := m.AccessPaths(1)[0]
	s := m.SortPlan(base, 0)
	if err := s.Validate(); err != nil {
		t.Fatalf("sort invalid: %v", err)
	}
	if s.Cost <= base.Cost {
		t.Error("sort should add cost")
	}
	if s.Order != 0 || s.Rows != base.Rows {
		t.Errorf("sort order=%d rows=%g", s.Order, s.Rows)
	}
}

func TestSortSpill(t *testing.T) {
	m := newFixtureModel(t)
	inMem := m.sortCost(1000, 8)         // 8 KB
	spilled := m.sortCost(1000000, 1000) // ~1 GB
	nPerRowIn := inMem / 1000
	nPerRowOut := spilled / 1000000
	if nPerRowOut <= nPerRowIn {
		t.Errorf("spilled per-row cost %g should exceed in-memory %g", nPerRowOut, nPerRowIn)
	}
	if got := m.sortCost(1, 8); got != m.Params.CPUOperatorCost {
		t.Errorf("trivial sort = %g", got)
	}
}

func TestJoinPlansVariants(t *testing.T) {
	m := newFixtureModel(t)
	a := m.AccessPaths(0)[0]
	b := m.AccessPaths(1)[0]
	in := JoinInputs{
		Outer: a, Inner: b,
		Preds: m.Q.PredsBetween(a.Rels, b.Rels),
		Rows:  m.JoinRows(a.Rels, b.Rels, a.Rows, b.Rows),
	}
	plans := m.JoinPlans(in)
	ops := map[plan.Op]int{}
	for _, p := range plans {
		ops[p.Op]++
		if err := p.Validate(); err != nil {
			t.Errorf("%v invalid: %v", p.Op, err)
		}
		if p.Rows != in.Rows {
			t.Errorf("%v rows = %g, want %g", p.Op, p.Rows, in.Rows)
		}
		if p.Rels != bits.Of(0, 1) {
			t.Errorf("%v rels = %v", p.Op, p.Rels)
		}
	}
	// B's index is on c2, in the A.c1=B.c2 class -> indexed NL applies.
	for _, op := range []plan.Op{plan.NestLoop, plan.IndexNestLoop, plan.HashJoin, plan.MergeJoin} {
		if ops[op] != 1 {
			t.Errorf("op %v appears %d times, want 1", op, ops[op])
		}
	}
}

func TestIndexNestLoopApplicability(t *testing.T) {
	m := newFixtureModel(t)
	a := m.AccessPaths(0)[0]
	b := m.AccessPaths(1)[0]
	c := m.AccessPaths(2)[0]
	// Inner A: A's index (c1) is in the spanning class A.c1=B.c2 -> applies.
	in := JoinInputs{Outer: b, Inner: a, Preds: m.Q.PredsBetween(b.Rels, a.Rels), Rows: 10}
	if p := m.indexNestLoop(in); p == nil {
		t.Error("indexNestLoop should apply with inner A")
	} else if p.Right.Op != plan.IndexScan {
		t.Errorf("inner op = %v", p.Right.Op)
	}
	// Inner C: C's index is on c3 (col 2), not a join column of B⋈C -> nil.
	in = JoinInputs{Outer: b, Inner: c, Preds: m.Q.PredsBetween(b.Rels, c.Rels), Rows: 10}
	if p := m.indexNestLoop(in); p != nil {
		t.Error("indexNestLoop should not apply with inner C")
	}
	// Inner a composite (join plan) -> nil.
	ab := m.hashJoin(JoinInputs{Outer: a, Inner: b, Preds: m.Q.PredsBetween(a.Rels, b.Rels), Rows: 10})
	in = JoinInputs{Outer: c, Inner: ab, Preds: m.Q.PredsBetween(c.Rels, ab.Rels), Rows: 10}
	if p := m.indexNestLoop(in); p != nil {
		t.Error("indexNestLoop should not apply with composite inner")
	}
}

func TestIndexNestLoopPreservesOuterOrder(t *testing.T) {
	m := newFixtureModel(t)
	bIdx := m.AccessPaths(1)[1] // B index scan, ordered
	a := m.AccessPaths(0)[0]
	in := JoinInputs{Outer: bIdx, Inner: a, Preds: m.Q.PredsBetween(bIdx.Rels, a.Rels), Rows: 10}
	p := m.indexNestLoop(in)
	if p == nil {
		t.Fatal("indexNestLoop nil")
	}
	if p.Order != bIdx.Order {
		t.Errorf("order = %d, want outer's %d", p.Order, bIdx.Order)
	}
}

func TestMergeJoinInsertsSorts(t *testing.T) {
	m := newFixtureModel(t)
	a := m.AccessPaths(0)[0] // unordered seq scan
	b := m.AccessPaths(1)[0]
	ec := m.Q.PredEqClass(0)
	p := m.mergeJoin(JoinInputs{Outer: a, Inner: b, Preds: []int{0}, Rows: 10000}, ec)
	if p.Left.Op != plan.Sort || p.Right.Op != plan.Sort {
		t.Errorf("children = %v,%v; want sorts", p.Left.Op, p.Right.Op)
	}
	if p.Order != ec {
		t.Errorf("merge output order = %d, want %d", p.Order, ec)
	}
	// Pre-ordered inputs must not be re-sorted.
	aIdx := m.AccessPaths(0)[1]
	bIdx := m.AccessPaths(1)[1]
	p2 := m.mergeJoin(JoinInputs{Outer: aIdx, Inner: bIdx, Preds: []int{0}, Rows: 10000}, ec)
	if p2.Left.Op == plan.Sort || p2.Right.Op == plan.Sort {
		t.Error("pre-ordered inputs re-sorted")
	}
}

func TestHashJoinSpill(t *testing.T) {
	m := newFixtureModel(t)
	a := m.AccessPaths(0)[0]
	d := m.AccessPaths(3)[0] // 100k rows · wide
	small := m.hashJoin(JoinInputs{Outer: d, Inner: a, Preds: nil, Rows: 10})
	big := m.hashJoin(JoinInputs{Outer: a, Inner: d, Preds: nil, Rows: 10})
	// Building on the 100k-row side must pay a spill penalty the small
	// build avoids; compare the added cost beyond the inputs.
	addSmall := small.Cost - a.Cost - d.Cost
	addBig := big.Cost - a.Cost - d.Cost
	if addBig <= addSmall {
		t.Errorf("big build add-on %g should exceed small build %g", addBig, addSmall)
	}
}

func TestPlansCostedCounter(t *testing.T) {
	m := newFixtureModel(t)
	before := m.PlansCosted
	m.AccessPaths(0) // seq + index = 2
	if got := m.PlansCosted - before; got != 2 {
		t.Errorf("PlansCosted after AccessPaths = %d, want 2", got)
	}
	before = m.PlansCosted
	a := m.AccessPaths(0)[0]
	b := m.AccessPaths(1)[0]
	before = m.PlansCosted
	plans := m.JoinPlans(JoinInputs{Outer: a, Inner: b, Preds: m.Q.PredsBetween(a.Rels, b.Rels), Rows: 100})
	counted := m.PlansCosted - before
	// Every returned plan was costed; merge joins may also cost sorts.
	if counted < int64(len(plans)) {
		t.Errorf("PlansCosted grew %d for %d plans", counted, len(plans))
	}
}

func TestWidth(t *testing.T) {
	m := newFixtureModel(t)
	// Every fixture column is 8 bytes wide; A has 3 columns, B has 3.
	if got := m.Width(bits.Of(0)); got != 24 {
		t.Errorf("Width(A) = %d, want 24", got)
	}
	if got := m.Width(bits.Of(0, 1)); got != 48 {
		t.Errorf("Width(AB) = %d, want 48", got)
	}
}

// Property: join plan costs always at least cover both input costs, and
// JoinRows is symmetric.
func TestQuickJoinCostAndSymmetry(t *testing.T) {
	m := newFixtureModel(t)
	rng := rand.New(rand.NewSource(3))
	pathsOf := func(i int) *plan.Plan { return m.AccessPaths(i)[0] }
	for trial := 0; trial < 200; trial++ {
		i := rng.Intn(3)
		j := i + 1 // adjacent in the chain
		a, b := pathsOf(i), pathsOf(j)
		if rng.Intn(2) == 0 {
			a, b = b, a
		}
		rows := m.JoinRows(a.Rels, b.Rels, a.Rows, b.Rows)
		rowsSym := m.JoinRows(b.Rels, a.Rels, b.Rows, a.Rows)
		if math.Abs(rows-rowsSym) > 1e-9*rows {
			t.Fatalf("JoinRows asymmetric: %g vs %g", rows, rowsSym)
		}
		for _, p := range m.JoinPlans(JoinInputs{Outer: a, Inner: b, Preds: m.Q.PredsBetween(a.Rels, b.Rels), Rows: rows}) {
			if p.Cost < a.Cost || (p.Op != plan.IndexNestLoop && p.Cost < a.Cost+b.Cost) {
				t.Fatalf("%v cost %g below inputs %g+%g", p.Op, p.Cost, a.Cost, b.Cost)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("invalid plan: %v", err)
			}
		}
	}
}
