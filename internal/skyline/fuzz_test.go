package skyline

import (
	"testing"
)

// FuzzAlgorithmsAgree drives the three skyline implementations with
// arbitrary byte-derived point sets and checks they agree and stay sound.
func FuzzAlgorithmsAgree(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{255, 1, 7, 7, 1, 255})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 2 {
			return
		}
		n := len(raw) / 2
		if n > 64 {
			n = 64
		}
		pts := make([][]float64, n)
		for i := 0; i < n; i++ {
			pts[i] = []float64{float64(raw[2*i] % 32), float64(raw[2*i+1] % 32)}
		}
		bnl := BNL(pts)
		sfs := SFS(pts)
		twod := TwoD(pts)
		for i := range pts {
			if bnl[i] != sfs[i] || bnl[i] != twod[i] {
				t.Fatalf("algorithms disagree at %d: BNL=%v SFS=%v TwoD=%v pts=%v",
					i, bnl[i], sfs[i], twod[i], pts)
			}
			// Soundness: survivors are not dominated.
			if bnl[i] {
				for j := range pts {
					if j != i && Dominates(pts[j], pts[i]) {
						t.Fatalf("dominated survivor %d in %v", i, pts)
					}
				}
			}
		}
	})
}

// FuzzDisjunctiveSubset checks the Option-2 survivors are always a subset
// of the full 3-D skyline with at least one survivor for non-empty input.
func FuzzDisjunctiveSubset(f *testing.F) {
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 3 {
			return
		}
		n := len(raw) / 3
		if n > 48 {
			n = 48
		}
		pts := make([][]float64, n)
		for i := 0; i < n; i++ {
			pts[i] = []float64{float64(raw[3*i]), float64(raw[3*i+1]), float64(raw[3*i+2])}
		}
		full := BNL(pts)
		dis := DisjunctivePairwise(pts, RCSPairs)
		any := false
		for i := range pts {
			if dis[i] {
				any = true
				if !full[i] {
					t.Fatalf("pairwise survivor %d off the full skyline: %v", i, pts)
				}
			}
		}
		if !any {
			t.Fatalf("disjunctive skyline empty for %d points", n)
		}
	})
}
