package plancache

import (
	"context"
	"testing"
	"time"

	"sdpopt/internal/dp"
	"sdpopt/internal/obs/span"
	"sdpopt/internal/plan"
)

// lookupSources walks a snapshot tree collecting the source attr of every
// cache.lookup span, in recorded order.
func lookupSources(s span.SpanJSON) []string {
	var out []string
	if s.Name == "cache.lookup" {
		src, _ := s.Attrs["source"].(string)
		out = append(out, src)
	}
	for _, c := range s.Children {
		out = append(out, lookupSources(c)...)
	}
	return out
}

func countNamed(s span.SpanJSON, name string) int {
	n := 0
	if s.Name == name {
		n++
	}
	for _, c := range s.Children {
		n += countNamed(c, name)
	}
	return n
}

// TestDoCtxSpans checks the span-instrumented lookup path: a miss, a hit,
// and a coalesced dedup each append a cache.lookup child with the right
// source, and only the dedup waiter gets a cache.wait span.
func TestDoCtxSpans(t *testing.T) {
	c := New(Options{})
	rec := span.NewRecorder(span.RecorderOptions{SlowThreshold: time.Hour})
	root := span.New("request")
	rec.Start(root)
	ctx := span.NewContext(context.Background(), root)

	compute := func() (*plan.Plan, dp.Stats, error) { return mkPlan(1), dp.Stats{}, nil }
	if _, _, src, err := c.DoCtx(ctx, mkKey(1), compute); err != nil || src != Miss {
		t.Fatalf("first DoCtx = %v, %v; want miss", src, err)
	}
	if _, _, src, err := c.DoCtx(ctx, mkKey(1), compute); err != nil || src != Hit {
		t.Fatalf("second DoCtx = %v, %v; want hit", src, err)
	}

	// Dedup: park this span's caller on another caller's in-flight compute.
	started := make(chan struct{})
	release := make(chan struct{})
	go c.Do(mkKey(2), func() (*plan.Plan, dp.Stats, error) {
		close(started)
		<-release
		return mkPlan(2), dp.Stats{}, nil
	})
	<-started
	waiterDone := make(chan Source, 1)
	go func() {
		_, _, src, _ := c.DoCtx(ctx, mkKey(2), compute)
		waiterDone <- src
	}()
	// The waiter observes the flight only once registered; poll until it
	// parks, then release the compute.
	for c.Counts().Dedups == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	if src := <-waiterDone; src != Dedup {
		t.Fatalf("waiter source = %v, want dedup", src)
	}

	rec.Finish(root, 200)
	d := rec.Snapshot()
	tree := *d.Recent[0].Root
	srcs := lookupSources(tree)
	if len(srcs) != 3 || srcs[0] != "miss" || srcs[1] != "hit" || srcs[2] != "dedup" {
		t.Fatalf("cache.lookup sources = %v, want [miss hit dedup]", srcs)
	}
	if n := countNamed(tree, "cache.wait"); n != 1 {
		t.Fatalf("cache.wait spans = %d, want 1 (only the dedup waiter parks)", n)
	}
}

// TestDoCtxWithoutSpan checks DoCtx degrades to Do when ctx carries no
// span.
func TestDoCtxWithoutSpan(t *testing.T) {
	c := New(Options{})
	p, _, src, err := c.DoCtx(context.Background(), mkKey(9), func() (*plan.Plan, dp.Stats, error) {
		return mkPlan(9), dp.Stats{}, nil
	})
	if err != nil || src != Miss || p == nil {
		t.Fatalf("DoCtx plain = %v %v %v", p, src, err)
	}
}
