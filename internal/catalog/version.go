package catalog

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// Fingerprint returns a stable hex digest of the catalog's schema and
// statistics — the "catalog version" stamped into plan-cache keys. Any
// change to a relation's cardinality, a column's statistics, or the index
// placement yields a new fingerprint, so plans optimized against stale
// statistics can never be served after an ANALYZE-style refresh: the new
// version simply stops matching the old keys (see internal/plancache).
//
// The digest is computed over the canonical JSON encoding (struct field
// order is fixed by the Go type, map-free), so it is deterministic across
// processes and runs.
func (c *Catalog) Fingerprint() string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	// Encoding a value composed of structs, slices and scalars cannot fail.
	_ = enc.Encode(c)
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}
