package query

import (
	"strings"
	"testing"

	"sdpopt/internal/bits"
	"sdpopt/internal/catalog"
)

// testCatalog returns a small catalog for query construction tests.
func testCatalog(t *testing.T, n int) *catalog.Catalog {
	t.Helper()
	cfg := catalog.DefaultConfig()
	cfg.NumRelations = n
	cfg.ColsPerRelation = 24
	return catalog.MustSynthetic(cfg)
}

// buildQuery creates a query over rels 0..n-1 with one predicate per edge.
// Each relation spends a fresh column on every incident edge so that no
// implied edges arise from shared join columns.
func buildQuery(t *testing.T, cat *catalog.Catalog, n int, edges []Edge, orderBy *OrderSpec) *Query {
	t.Helper()
	rels := make([]int, n)
	for i := range rels {
		rels[i] = i
	}
	used := make([]int, n)
	nextCol := func(rel int) int {
		c := used[rel]
		used[rel]++
		return c
	}
	preds := make([]Pred, len(edges))
	for i, e := range edges {
		preds[i] = Pred{LeftRel: e.A, LeftCol: nextCol(e.A), RightRel: e.B, RightCol: nextCol(e.B)}
	}
	q, err := New(cat, rels, preds, orderBy)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return q
}

func TestNewValidates(t *testing.T) {
	cat := testCatalog(t, 5)
	cases := []struct {
		name  string
		rels  []int
		preds []Pred
		order *OrderSpec
	}{
		{"no relations", nil, nil, nil},
		{"relation out of range", []int{0, 9}, []Pred{{LeftRel: 0, RightRel: 1}}, nil},
		{"pred rel out of range", []int{0, 1}, []Pred{{LeftRel: 0, RightRel: 5}}, nil},
		{"pred col out of range", []int{0, 1}, []Pred{{LeftRel: 0, LeftCol: 99, RightRel: 1}}, nil},
		{"self join", []int{0, 1}, []Pred{{LeftRel: 0, LeftCol: 0, RightRel: 0, RightCol: 1}}, nil},
		{"disconnected", []int{0, 1, 2}, []Pred{{LeftRel: 0, RightRel: 1}}, nil},
		{"order rel out of range", []int{0, 1}, []Pred{{LeftRel: 0, RightRel: 1}}, &OrderSpec{Rel: 7}},
		{"order col out of range", []int{0, 1}, []Pred{{LeftRel: 0, RightRel: 1}}, &OrderSpec{Rel: 0, Col: 99}},
	}
	for _, c := range cases {
		if _, err := New(cat, c.rels, c.preds, c.order); err == nil {
			t.Errorf("%s: New accepted invalid query", c.name)
		}
	}
}

func TestSingleRelationQuery(t *testing.T) {
	cat := testCatalog(t, 3)
	q, err := New(cat, []int{2}, nil, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if q.NumRelations() != 1 {
		t.Fatalf("NumRelations = %d, want 1", q.NumRelations())
	}
	if !q.HubRels().IsEmpty() {
		t.Error("single relation has hubs")
	}
}

func TestAdjacencyAndNeighbors(t *testing.T) {
	cat := testCatalog(t, 9)
	q := buildQuery(t, cat, 9, Example9Edges(), nil)
	if got, want := q.Adjacent(0), bits.Of(1, 2, 3, 4); got != want {
		t.Errorf("Adjacent(0) = %v, want %v", got, want)
	}
	// Neighbors of the contracted JCR {1,2} (paper numbering {1,5,6}... here
	// indexes {0,4}): adjacency of 0 is {1,2,3,4}, of 4 is {0,5}.
	if got, want := q.Neighbors(bits.Of(0, 4)), bits.Of(1, 2, 3, 5); got != want {
		t.Errorf("Neighbors({0,4}) = %v, want %v", got, want)
	}
}

func TestConnectedPairs(t *testing.T) {
	cat := testCatalog(t, 9)
	q := buildQuery(t, cat, 9, Example9Edges(), nil)
	if !q.Connected(bits.Of(0), bits.Of(1)) {
		t.Error("0 and 1 should be connected")
	}
	if q.Connected(bits.Of(1), bits.Of(2)) {
		t.Error("spokes 1 and 2 are not directly connected")
	}
	if !q.Connected(bits.Of(0, 1), bits.Of(4, 5)) {
		t.Error("{0,1} connects to {4,5} via edge 0-4")
	}
}

func TestConnectedSet(t *testing.T) {
	cat := testCatalog(t, 9)
	q := buildQuery(t, cat, 9, Example9Edges(), nil)
	cases := []struct {
		s    bits.Set
		want bool
	}{
		{bits.Of(0), true},
		{bits.Of(0, 1), true},
		{bits.Of(1, 2), false},      // two spokes without the hub
		{bits.Of(0, 4, 5, 6), true}, // hub + chain
		{bits.Of(7, 8), false},      // two spokes of hub 7
		{bits.Of(6, 7, 8), true},
		{bits.Set{}, false}, // empty set is not connected
	}
	for _, c := range cases {
		if got := q.ConnectedSet(c.s); got != c.want {
			t.Errorf("ConnectedSet(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestHubDetectionExample9(t *testing.T) {
	cat := testCatalog(t, 9)
	q := buildQuery(t, cat, 9, Example9Edges(), nil)
	// Paper: the hub relations of Figure 2.1 are 1 and 7 (indexes 0 and 6).
	if got, want := q.HubRels(), bits.Of(0, 6); got != want {
		t.Errorf("HubRels = %v, want %v", got, want)
	}
	// Paper: the retained combination 12 (indexes {0,1}) is a composite hub
	// because it has three join edges, to relations 3, 4 and 5.
	if !q.IsHub(bits.Of(0, 1)) {
		t.Error("{1,2} should be a composite hub")
	}
	if got, want := q.Neighbors(bits.Of(0, 1)), bits.Of(2, 3, 4); got != want {
		t.Errorf("Neighbors({1,2}) = %v, want %v", got, want)
	}
	// A mid-chain JCR is not a hub.
	if q.IsHub(bits.Of(4, 5)) {
		t.Error("{5,6} should not be a hub")
	}
}

func TestTopologyGenerators(t *testing.T) {
	cases := []struct {
		name     string
		edges    []Edge
		n        int
		numEdges int
		hubs     []int
	}{
		{"chain-5", ChainEdges(5), 5, 4, nil},
		{"star-6", StarEdges(6), 6, 5, []int{0}},
		{"cycle-5", CycleEdges(5), 5, 5, nil},
		{"clique-4", CliqueEdges(4), 4, 6, []int{0, 1, 2, 3}},
		{"star-chain-15", StarChainEdges(15, 10), 15, 14, []int{0}},
		// Snowflake-12 with 2 dims: fact degree 2 (not a hub), the two
		// dimension hubs carry 5 and 4 outriggers.
		{"snowflake-12", SnowflakeEdges(12, 2), 12, 11, []int{1, 2}},
		// With 4 dims the fact table itself reaches hub degree.
		{"snowflake-12-4", SnowflakeEdges(12, 4), 12, 11, []int{0, 1, 2, 3}},
	}
	cat := testCatalog(t, 15)
	for _, c := range cases {
		if len(c.edges) != c.numEdges {
			t.Errorf("%s: %d edges, want %d", c.name, len(c.edges), c.numEdges)
			continue
		}
		q := buildQuery(t, cat, c.n, c.edges, nil)
		if !q.ConnectedSet(bits.Full(c.n)) {
			t.Errorf("%s: graph disconnected", c.name)
		}
		want := bits.Of(c.hubs...)
		if got := q.HubRels(); got != want {
			t.Errorf("%s: hubs = %v, want %v", c.name, got, want)
		}
	}
}

func TestStarChainSpokes(t *testing.T) {
	// Paper's Star-Chain-15: 10 spokes (R2..R11), chain R11..R15.
	if got := DefaultStarChainSpokes(15); got != 10 {
		t.Errorf("DefaultStarChainSpokes(15) = %d, want 10", got)
	}
	for n := 3; n <= 40; n++ {
		s := DefaultStarChainSpokes(n)
		if s < 1 || s > n-1 {
			t.Errorf("DefaultStarChainSpokes(%d) = %d out of range", n, s)
		}
	}
}

func TestDefaultSnowflakeDims(t *testing.T) {
	// A 40-relation snowflake gets 5 dimension hubs of ~7 outriggers.
	if got := DefaultSnowflakeDims(40); got != 5 {
		t.Errorf("DefaultSnowflakeDims(40) = %d, want 5", got)
	}
	for n := 3; n <= 128; n++ {
		d := DefaultSnowflakeDims(n)
		if d < 1 || d > n-1 {
			t.Errorf("DefaultSnowflakeDims(%d) = %d out of range", n, d)
		}
		// The default must always be a valid SnowflakeEdges argument.
		if got := len(SnowflakeEdges(n, d)); got != n-1 {
			t.Errorf("SnowflakeEdges(%d, %d) has %d edges, want %d", n, d, got, n-1)
		}
	}
}

func TestTopologyPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"chain-0":            func() { ChainEdges(0) },
		"star-1":             func() { StarEdges(1) },
		"cycle-2":            func() { CycleEdges(2) },
		"clique-1":           func() { CliqueEdges(1) },
		"star-chain-2":       func() { StarChainEdges(2, 1) },
		"star-chain-bad-spk": func() { StarChainEdges(5, 5) },
		"snowflake-2":        func() { SnowflakeEdges(2, 1) },
		"snowflake-bad-dims": func() { SnowflakeEdges(5, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestImpliedEdgeClosure(t *testing.T) {
	cat := testCatalog(t, 3)
	// R.a ⋈ S.b and R.a ⋈ T.c directly implies S.b ⋈ T.c (paper §2.1.4).
	preds := []Pred{
		{LeftRel: 0, LeftCol: 1, RightRel: 1, RightCol: 2},
		{LeftRel: 0, LeftCol: 1, RightRel: 2, RightCol: 3},
	}
	q, err := New(cat, []int{0, 1, 2}, preds, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if len(q.Preds) != 3 {
		t.Fatalf("got %d predicates after closure, want 3", len(q.Preds))
	}
	imp := q.Preds[2]
	if !imp.Implied {
		t.Error("closure edge not marked Implied")
	}
	got := bits.Of(imp.LeftRel, imp.RightRel)
	if got != bits.Of(1, 2) {
		t.Errorf("implied edge between %v, want {2,3}", got)
	}
	// The implied edge turns relation 0's star into a triangle; every
	// relation now has degree 2, so no hubs.
	if !q.HubRels().IsEmpty() {
		t.Errorf("hubs = %v, want none", q.HubRels())
	}
	// All three columns share one equivalence class.
	if q.NumEqClasses() != 1 {
		t.Errorf("NumEqClasses = %d, want 1", q.NumEqClasses())
	}
	for _, ref := range [][2]int{{0, 1}, {1, 2}, {2, 3}} {
		if q.EqClass(ref[0], ref[1]) != 0 {
			t.Errorf("EqClass(%d,%d) = %d, want 0", ref[0], ref[1], q.EqClass(ref[0], ref[1]))
		}
	}
	if q.EqClass(0, 0) != -1 {
		t.Error("non-join column should have EqClass -1")
	}
}

func TestImpliedClosureCanCreateHubs(t *testing.T) {
	cat := testCatalog(t, 5)
	// Chain 0-1-2-3-4 where relation 1's join columns to 0 and 2 are the
	// same column: the closure adds 0-2, raising deg(0)… actually deg(1)
	// stays 2 but 0 and 2 gain an edge. Build instead: 1 joins 0, 2, using
	// col 0 both times, and 2-3, 3-4 on distinct columns. Closure adds 0-2.
	preds := []Pred{
		{LeftRel: 1, LeftCol: 0, RightRel: 0, RightCol: 0},
		{LeftRel: 1, LeftCol: 0, RightRel: 2, RightCol: 1},
		{LeftRel: 2, LeftCol: 2, RightRel: 3, RightCol: 2},
		{LeftRel: 3, LeftCol: 3, RightRel: 4, RightCol: 3},
	}
	q, err := New(cat, []int{0, 1, 2, 3, 4}, preds, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Implied 0-2 gives relation 2 degree 3: a new hub created by the
	// rewriter, exactly the opportunity §2.1.4 describes.
	if got, want := q.HubRels(), bits.Of(2); got != want {
		t.Errorf("hubs = %v, want %v", got, want)
	}
}

func TestPredsBetweenAndWithin(t *testing.T) {
	cat := testCatalog(t, 4)
	preds := []Pred{
		{LeftRel: 0, LeftCol: 0, RightRel: 1, RightCol: 0},
		{LeftRel: 1, LeftCol: 1, RightRel: 2, RightCol: 1},
		{LeftRel: 2, LeftCol: 2, RightRel: 3, RightCol: 2},
		{LeftRel: 0, LeftCol: 3, RightRel: 3, RightCol: 3},
	}
	q, err := New(cat, []int{0, 1, 2, 3}, preds, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	between := q.PredsBetween(bits.Of(0, 1), bits.Of(2, 3))
	if len(between) != 2 || between[0] != 1 || between[1] != 3 {
		t.Errorf("PredsBetween = %v, want [1 3]", between)
	}
	within := q.PredsWithin(bits.Of(0, 1, 3))
	if len(within) != 2 || within[0] != 0 || within[1] != 3 {
		t.Errorf("PredsWithin = %v, want [0 3]", within)
	}
	if got := q.PredsBetween(bits.Of(0), bits.Of(2)); len(got) != 0 {
		t.Errorf("PredsBetween disconnected pair = %v, want empty", got)
	}
}

func TestOrderEqClass(t *testing.T) {
	cat := testCatalog(t, 3)
	preds := []Pred{
		{LeftRel: 0, LeftCol: 1, RightRel: 1, RightCol: 2},
		{LeftRel: 1, LeftCol: 3, RightRel: 2, RightCol: 4},
	}
	q, err := New(cat, []int{0, 1, 2}, preds, &OrderSpec{Rel: 1, Col: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := q.OrderEqClass(); got != q.EqClass(0, 1) {
		t.Errorf("OrderEqClass = %d, want class of t1.c2 = %d", got, q.EqClass(0, 1))
	}
	unordered, err := New(cat, []int{0, 1, 2}, preds, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := unordered.OrderEqClass(); got != -1 {
		t.Errorf("unordered OrderEqClass = %d, want -1", got)
	}
}

func TestSQLRendering(t *testing.T) {
	cat := testCatalog(t, 3)
	preds := []Pred{
		{LeftRel: 0, LeftCol: 1, RightRel: 1, RightCol: 2},
		{LeftRel: 0, LeftCol: 1, RightRel: 2, RightCol: 3},
	}
	q, err := New(cat, []int{0, 1, 2}, preds, &OrderSpec{Rel: 0, Col: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sql := q.SQL()
	for _, frag := range []string{"SELECT *", "FROM R1 t1, R2 t2, R3 t3", "t1.c2 = t2.c3", "t1.c2 = t3.c4", "ORDER BY t1.c2"} {
		if !strings.Contains(sql, frag) {
			t.Errorf("SQL missing %q:\n%s", frag, sql)
		}
	}
	// Implied predicates (t2.c3 = t3.c4) must not leak into SQL text.
	if strings.Contains(sql, "t2.c3 = t3.c4") {
		t.Errorf("SQL leaks implied predicate:\n%s", sql)
	}
}

func TestTooManyRelationsRejected(t *testing.T) {
	cfg := catalog.DefaultConfig()
	cfg.NumRelations = bits.MaxRelations + 6
	cfg.ColsPerRelation = 2
	cat := catalog.MustSynthetic(cfg)
	rels := make([]int, bits.MaxRelations+1)
	var preds []Pred
	for i := range rels {
		rels[i] = i
		if i > 0 {
			preds = append(preds, Pred{LeftRel: i - 1, LeftCol: 0, RightRel: i, RightCol: 0})
		}
	}
	if _, err := New(cat, rels, preds, nil); err == nil {
		t.Errorf("New accepted a %d-relation query", bits.MaxRelations+1)
	}
}

// TestWideQueryAboveSixtyFour proves the multi-word bitset lifted the old
// 64-relation ceiling end to end at the query layer: a 100-relation chain
// constructs, is connected, and its adjacency works across word boundaries.
func TestWideQueryAboveSixtyFour(t *testing.T) {
	const n = 100
	cfg := catalog.DefaultConfig()
	cfg.NumRelations = n
	cfg.ColsPerRelation = 3
	cat := catalog.MustSynthetic(cfg)
	rels := make([]int, n)
	var preds []Pred
	for i := range rels {
		rels[i] = i
		if i > 0 {
			// Alternate columns so predicate transitivity cannot imply
			// edges beyond the chain.
			preds = append(preds, Pred{LeftRel: i - 1, LeftCol: 1, RightRel: i, RightCol: 0})
		}
	}
	q, err := New(cat, rels, preds, nil)
	if err != nil {
		t.Fatalf("New on a %d-relation chain: %v", n, err)
	}
	if got := q.NumRelations(); got != n {
		t.Fatalf("NumRelations = %d, want %d", got, n)
	}
	// Adjacency straddling the word boundary: relation 64 neighbors 63 and 65.
	if got, want := q.Adjacent(64), bits.Of(63, 65); got != want {
		t.Errorf("Adjacent(64) = %v, want %v", got, want)
	}
	if !q.ConnectedSet(bits.Full(n)) {
		t.Error("full 100-relation chain not reported connected")
	}
	if q.Connected(bits.Of(0, 1), bits.Of(90, 91)) {
		t.Error("distant chain segments reported connected")
	}
	if !q.Connected(bits.Full(64), bits.Of(64)) {
		t.Error("cross-word chain edge 63-64 not reported connected")
	}
}

func TestFilters(t *testing.T) {
	cat := testCatalog(t, 3)
	preds := []Pred{{LeftRel: 0, LeftCol: 0, RightRel: 1, RightCol: 0},
		{LeftRel: 1, LeftCol: 1, RightRel: 2, RightCol: 1}}
	filters := []Filter{{Rel: 0, Col: 3, Bound: 10}, {Rel: 0, Col: 4, Bound: 5}, {Rel: 2, Col: 2, Bound: 7}}
	q, err := NewFiltered(cat, []int{0, 1, 2}, preds, filters, nil)
	if err != nil {
		t.Fatalf("NewFiltered: %v", err)
	}
	if got := len(q.FiltersOn(0)); got != 2 {
		t.Errorf("FiltersOn(0) = %d, want 2", got)
	}
	if got := len(q.FiltersOn(1)); got != 0 {
		t.Errorf("FiltersOn(1) = %d, want 0", got)
	}
	sql := q.SQL()
	for _, frag := range []string{"t1.c4 < 10", "t1.c5 < 5", "t3.c3 < 7"} {
		if !strings.Contains(sql, frag) {
			t.Errorf("SQL missing filter %q:\n%s", frag, sql)
		}
	}
}

func TestFilterValidation(t *testing.T) {
	cat := testCatalog(t, 2)
	preds := []Pred{{LeftRel: 0, LeftCol: 0, RightRel: 1, RightCol: 0}}
	bad := [][]Filter{
		{{Rel: -1, Col: 0, Bound: 1}},
		{{Rel: 9, Col: 0, Bound: 1}},
		{{Rel: 0, Col: 99, Bound: 1}},
		{{Rel: 0, Col: 0, Bound: 0}},
	}
	for i, fs := range bad {
		if _, err := NewFiltered(cat, []int{0, 1}, preds, fs, nil); err == nil {
			t.Errorf("case %d: invalid filter accepted", i)
		}
	}
}

func TestDOT(t *testing.T) {
	cat := testCatalog(t, 9)
	q := buildQuery(t, cat, 9, Example9Edges(), nil)
	dot := q.DOT()
	for _, frag := range []string{
		"graph joingraph {",
		"doublecircle", // hubs highlighted
		"t1 -- t2",
		"t7 -- t9",
	} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT missing %q:\n%s", frag, dot)
		}
	}
	// Exactly one doublecircle per hub (relations 1 and 7).
	if got := strings.Count(dot, "doublecircle"); got != 2 {
		t.Errorf("DOT has %d hub nodes, want 2", got)
	}
	// Implied edges are dashed.
	preds := []Pred{
		{LeftRel: 0, LeftCol: 1, RightRel: 1, RightCol: 2},
		{LeftRel: 0, LeftCol: 1, RightRel: 2, RightCol: 3},
	}
	qi, err := New(cat, []int{0, 1, 2}, preds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(qi.DOT(), "style=dashed") {
		t.Error("implied edge not dashed in DOT")
	}
}
