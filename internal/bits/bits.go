// Package bits implements relation sets as fixed-width multi-word bitsets.
//
// The optimizer identifies every join-composite relation (JCR) by the set of
// base relations it covers. Set is a fixed [2]uint64 array value — two words
// give 128 relation slots, enough for the large-query workloads (Star-30,
// Clique-25, snowflakes, 100-relation chains) while remaining a comparable
// value type: sets are zero-allocation map keys, memo lookups stay a single
// map probe, and == is exact set equality. All set algebra is word-parallel,
// so the adjacency-indexed Walker's OR/AND-NOT mask arithmetic carries over
// unchanged in spirit: each operation is a short fixed loop the compiler
// unrolls.
package bits

import (
	"fmt"
	mbits "math/bits"
	"strings"
)

const (
	wordBits = 64
	// numWords is the fixed word count of a Set. Raising it widens every
	// engine in the repo at once; 2 words (128 relations) doubles the paper's
	// largest experiment with headroom for the massively-parallel literature's
	// 100-relation regime.
	numWords = 2
)

// MaxRelations is the largest number of base relations a Set can hold.
const MaxRelations = numWords * wordBits

// Set is a set of relation indexes in [0, MaxRelations). The zero value is
// the empty set. Word 0 holds indexes 0–63, word 1 holds 64–127; the numeric
// order used by Less/Compare treats word 1 as the high word, so for sets
// confined to the first 64 relations the order is identical to the historical
// uint64 encoding.
type Set [numWords]uint64

// Single returns the set containing only relation i.
func Single(i int) Set {
	if i < 0 || i >= MaxRelations {
		panic(fmt.Sprintf("bits: relation index %d out of range [0,%d)", i, MaxRelations))
	}
	var s Set
	s[i/wordBits] = 1 << uint(i%wordBits)
	return s
}

// Of returns the set of the given relation indexes.
func Of(idx ...int) Set {
	var s Set
	for _, i := range idx {
		s = s.Add(i)
	}
	return s
}

// FromWords builds a set directly from its machine words, word 0 first
// (relations 0–63). It is the inverse of indexing the Set array and exists
// for tests and reference implementations that need dense random sets.
func FromWords(words ...uint64) Set {
	if len(words) > numWords {
		panic(fmt.Sprintf("bits: %d words exceeds the %d-word set width", len(words), numWords))
	}
	var s Set
	copy(s[:], words)
	return s
}

// Full returns the set {0, 1, ..., n-1}.
func Full(n int) Set {
	if n < 0 || n > MaxRelations {
		panic(fmt.Sprintf("bits: set size %d out of range [0,%d]", n, MaxRelations))
	}
	var s Set
	for w := 0; n > 0; w++ {
		if n >= wordBits {
			s[w] = ^uint64(0)
			n -= wordBits
		} else {
			s[w] = 1<<uint(n) - 1
			n = 0
		}
	}
	return s
}

// Has reports whether relation i is in s.
func (s Set) Has(i int) bool {
	return s[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Add returns s with relation i added.
func (s Set) Add(i int) Set {
	if i < 0 || i >= MaxRelations {
		panic(fmt.Sprintf("bits: relation index %d out of range [0,%d)", i, MaxRelations))
	}
	s[i/wordBits] |= 1 << uint(i%wordBits)
	return s
}

// Remove returns s with relation i removed.
func (s Set) Remove(i int) Set {
	if i < 0 || i >= MaxRelations {
		panic(fmt.Sprintf("bits: relation index %d out of range [0,%d)", i, MaxRelations))
	}
	s[i/wordBits] &^= 1 << uint(i%wordBits)
	return s
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	for w := range s {
		s[w] |= t[w]
	}
	return s
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	for w := range s {
		s[w] &= t[w]
	}
	return s
}

// Diff returns s \ t.
func (s Set) Diff(t Set) Set {
	for w := range s {
		s[w] &^= t[w]
	}
	return s
}

// Overlaps reports whether s and t share any relation.
func (s Set) Overlaps(t Set) bool {
	for w := range s {
		if s[w]&t[w] != 0 {
			return true
		}
	}
	return false
}

// Disjoint reports whether s and t share no relation.
func (s Set) Disjoint(t Set) bool { return !s.Overlaps(t) }

// Contains reports whether every relation of t is in s.
func (s Set) Contains(t Set) bool {
	for w := range s {
		if s[w]&t[w] != t[w] {
			return false
		}
	}
	return true
}

// IsEmpty reports whether s is the empty set.
func (s Set) IsEmpty() bool {
	for w := range s {
		if s[w] != 0 {
			return false
		}
	}
	return true
}

// Len returns the number of relations in s.
func (s Set) Len() int {
	n := 0
	for w := range s {
		n += mbits.OnesCount64(s[w])
	}
	return n
}

// Min returns the smallest relation index in s. It panics on the empty set.
func (s Set) Min() int {
	for w := range s {
		if s[w] != 0 {
			return w*wordBits + mbits.TrailingZeros64(s[w])
		}
	}
	panic("bits: Min of empty set")
}

// Max returns the largest relation index in s. It panics on the empty set.
func (s Set) Max() int {
	for w := numWords - 1; w >= 0; w-- {
		if s[w] != 0 {
			return w*wordBits + wordBits - 1 - mbits.LeadingZeros64(s[w])
		}
	}
	panic("bits: Max of empty set")
}

// Less reports whether s precedes t in the canonical numeric order: the set
// is read as one wide unsigned integer with word numWords-1 most significant.
// This is the total order every deterministic drain/sort in the repo uses
// (memo canonicalization, sharded staging drains); for sets within the first
// 64 relations it coincides with the historical uint64 comparison.
func (s Set) Less(t Set) bool {
	for w := numWords - 1; w >= 0; w-- {
		if s[w] != t[w] {
			return s[w] < t[w]
		}
	}
	return false
}

// Compare returns -1, 0, or +1 ordering s against t in the same canonical
// numeric order as Less.
func (s Set) Compare(t Set) int {
	for w := numWords - 1; w >= 0; w-- {
		if s[w] != t[w] {
			if s[w] < t[w] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Hash mixes the set's words into a single 64-bit value with the high bits
// well distributed (Fibonacci multiplicative hashing per word), so shard
// selectors can take the top k bits directly. Equal sets hash equal; the
// function is pure and stable within a build, which is all the deterministic
// sharded-drain contract needs (shard assignment is never observable — every
// drain sorts by Less).
func (s Set) Hash() uint64 {
	h := s[0] * 0x9E3779B97F4A7C15
	h ^= (s[1] + 0x9E3779B97F4A7C15) * 0xC2B2AE3D27D4EB4F
	h ^= h >> 29
	h *= 0x9E3779B97F4A7C15
	return h
}

// Each calls fn for every relation index in s, in increasing order.
func (s Set) Each(fn func(i int)) {
	for w := range s {
		for t := s[w]; t != 0; t &= t - 1 {
			fn(w*wordBits + mbits.TrailingZeros64(t))
		}
	}
}

// Iter returns an allocation-free iterator over s in increasing index order.
// Unlike Each it needs no closure, so hot enumeration loops (the memo's
// adjacency-index walks) can consume a set without any call overhead the
// inliner cannot remove:
//
//	for it := s.Iter(); ; {
//		i, ok := it.Next()
//		if !ok {
//			break
//		}
//		...
//	}
func (s Set) Iter() Iter { return Iter{rest: s} }

// Iter is a cursor over a Set's members. The zero value is exhausted.
type Iter struct {
	rest Set
	word int
}

// Next returns the next relation index in increasing order, reporting false
// when the set is exhausted.
func (it *Iter) Next() (int, bool) {
	for it.word < numWords {
		if w := it.rest[it.word]; w != 0 {
			it.rest[it.word] = w & (w - 1)
			return it.word*wordBits + mbits.TrailingZeros64(w), true
		}
		it.word++
	}
	return -1, false
}

// NextBit returns the smallest relation index in s that is at least from, or
// -1 when no such member exists. It is the trailing-zeros primitive behind
// Iter, exposed for resumable walks that skip ahead (from may be any value;
// negative behaves like 0, values ≥ MaxRelations return -1).
func (s Set) NextBit(from int) int {
	if from < 0 {
		from = 0
	}
	if from >= MaxRelations {
		return -1
	}
	w := from / wordBits
	word := s[w] &^ (1<<uint(from%wordBits) - 1)
	for {
		if word != 0 {
			return w*wordBits + mbits.TrailingZeros64(word)
		}
		w++
		if w >= numWords {
			return -1
		}
		word = s[w]
	}
}

// Slice returns the relation indexes of s in increasing order.
func (s Set) Slice() []int {
	out := make([]int, 0, s.Len())
	s.Each(func(i int) { out = append(out, i) })
	return out
}

// Subsets calls fn for every non-empty proper subset of s that contains the
// lowest bit of s. Restricting enumeration to subsets holding the lowest bit
// visits each unordered {subset, complement} partition of s exactly once,
// which is what a bushy join enumerator wants. fn returning false stops the
// enumeration early.
func (s Set) Subsets(fn func(sub Set) bool) {
	if s.IsEmpty() {
		return
	}
	lo := Single(s.Min())
	rest := s.Diff(lo)
	// Enumerate all subsets of rest (including empty) and or-in the low bit;
	// skip the full set itself so only proper subsets are produced. The
	// classic sub = (sub - rest) & rest counter carries across words with a
	// full-width borrow chain, exactly the mod-2^128 analogue of the uint64
	// trick.
	for sub := (Set{}); ; sub = sub.subsetSucc(rest) {
		if cand := sub.Union(lo); cand != s {
			if !fn(cand) {
				return
			}
		}
		if sub == rest {
			return
		}
	}
}

// SubsetsAll calls fn for every subset of s, including the empty set and s
// itself, in the ⊆-compatible subset-counter order (a set is always emitted
// after all of its proper subsets). This is the enumeration order DPccp's
// EnumerateCsgRec relies on. fn returning false stops early.
func (s Set) SubsetsAll(fn func(sub Set) bool) {
	for sub := (Set{}); ; sub = sub.subsetSucc(s) {
		if !fn(sub) {
			return
		}
		if sub == s {
			return
		}
	}
}

// subsetSucc advances the subset counter: the next subset of mask after s in
// the (s - mask) & mask order. Wraps to the empty set after mask itself.
func (s Set) subsetSucc(mask Set) Set {
	var out Set
	borrow := uint64(0)
	for w := 0; w < numWords; w++ {
		out[w], borrow = mbits.Sub64(s[w], mask[w], borrow)
		out[w] &= mask[w]
	}
	return out
}

// String renders the set as "{1,3,7}" using 1-based relation numbers, the
// numbering convention the paper's figures use.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.Each(func(i int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d", i+1)
	})
	b.WriteByte('}')
	return b.String()
}
