// Command sdptrace summarizes a JSONL optimizer trace written by
// `sdplab run -trace` (or any TraceJSONLSink): effort per technique, the
// top enumeration levels by time, and skyline pruning efficacy per RC/CS/RS
// criterion.
//
// Usage:
//
//	sdplab run -exp tab1.2 -trace out.jsonl
//	sdptrace out.jsonl
//	sdptrace -top 10 out.jsonl
//	sdptrace -raw out.jsonl        # dump decoded events instead
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sdpopt"
)

func main() {
	top := flag.Int("top", 5, "number of levels in the top-levels-by-time table")
	raw := flag.Bool("raw", false, "print each decoded event instead of the summary")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sdptrace [-top N] [-raw] <trace.jsonl>")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *top, *raw, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sdptrace:", err)
		os.Exit(1)
	}
}

// run summarizes one trace file into out. Malformed lines — the usual
// damage in a trace cut off mid-write or interleaved by two writers — are
// skipped with a warning on warn rather than aborting the whole summary.
func run(path string, top int, raw bool, out, warn io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	records, skipped, err := sdpopt.ReadTraceJSONLLenient(f, warn)
	if err != nil {
		return err
	}
	if skipped > 0 {
		fmt.Fprintf(warn, "sdptrace: skipped %d malformed line(s) in %s\n", skipped, path)
	}
	if raw {
		for _, r := range records {
			fmt.Fprintf(out, "%v\n", map[string]any(r))
		}
		return nil
	}
	fmt.Fprint(out, sdpopt.SummarizeTrace(records).Render(top))
	return nil
}
