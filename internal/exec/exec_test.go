package exec

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"sdpopt/internal/catalog"
	"sdpopt/internal/core"
	"sdpopt/internal/cost"
	"sdpopt/internal/dp"
	"sdpopt/internal/greedy"
	"sdpopt/internal/jointree"
	"sdpopt/internal/plan"
	"sdpopt/internal/query"
	"sdpopt/internal/testutil"
)

// tinyCatalog is a scaled-down schema whose relations are small enough to
// execute: tens of rows, small domains so joins actually match.
func tinyCatalog(n int) *catalog.Catalog {
	return catalog.MustSynthetic(catalog.Config{
		NumRelations:    n,
		BaseRows:        20,
		Ratio:           1.3,
		ColsPerRelation: 8,
		MinDomain:       4,
		MaxDomain:       30,
		Seed:            5,
	})
}

func tinyQuery(t *testing.T, n int, edges []query.Edge, order *query.OrderSpec) *query.Query {
	t.Helper()
	q, err := testutil.Query(tinyCatalog(n), n, edges, order)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestGenerateHonorsStatistics(t *testing.T) {
	q := tinyQuery(t, 4, query.ChainEdges(4), nil)
	db, err := Generate(q, 1, 1000)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for i := 0; i < q.NumRelations(); i++ {
		rel := q.Relation(i)
		if got := len(db.tables[i]); got != int(rel.Rows) {
			t.Errorf("relation %d has %d rows, want %g", i, got, rel.Rows)
		}
		for _, row := range db.tables[i] {
			for c, v := range row {
				if v < 0 || float64(v) >= rel.Cols[c].NDV {
					t.Fatalf("relation %d col %d value %d outside [0,%g)", i, c, v, rel.Cols[c].NDV)
				}
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	q := tinyQuery(t, 3, query.ChainEdges(3), nil)
	a, err := Generate(q, 9, 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(q, 9, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.tables {
		for r := range a.tables[i] {
			for c := range a.tables[i][r] {
				if a.tables[i][r][c] != b.tables[i][r][c] {
					t.Fatal("generation not deterministic")
				}
			}
		}
	}
	c, err := Generate(q, 10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.tables {
		for r := range a.tables[i] {
			for cc := range a.tables[i][r] {
				if a.tables[i][r][cc] != c.tables[i][r][cc] {
					same = false
				}
			}
		}
	}
	if same {
		t.Error("different seeds generated identical data")
	}
}

// tableBytes flattens a relation's generated rows into their canonical
// byte encoding, so determinism checks compare the exact representation
// rather than a lossy summary.
func tableBytes(rows [][]int64) []byte {
	var buf bytes.Buffer
	for _, row := range rows {
		for _, v := range row {
			binary.Write(&buf, binary.LittleEndian, v)
		}
	}
	return buf.Bytes()
}

// TestGenerateByteIdentical pins the strong form of the determinism
// contract the robustness harness relies on: the same catalog and seed
// produce byte-identical tables, and a relation's data depends only on its
// catalog identity — not on which query it appears in. The cardinality-
// error loop optimizes under a lying catalog and executes under the true
// one; that comparison is only sound if both sides see the same bytes.
func TestGenerateByteIdentical(t *testing.T) {
	q3 := tinyQuery(t, 3, query.ChainEdges(3), nil)
	q4 := tinyQuery(t, 4, query.ChainEdges(4), nil)
	const seed = 21
	a, err := Generate(q3, seed, 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(q3, seed, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.tables {
		if !bytes.Equal(tableBytes(a.tables[i]), tableBytes(b.tables[i])) {
			t.Fatalf("relation %d: same catalog+seed produced different bytes", i)
		}
	}
	// q3's relations are a prefix of q4's (testutil assigns catalog rels
	// 0..n-1 in order), so the shared relations must carry identical data
	// even though the queries differ in shape.
	c, err := Generate(q4, seed, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.tables {
		if q3.Rels[i] != q4.Rels[i] {
			t.Fatalf("test premise broken: rel %d maps to %d vs %d", i, q3.Rels[i], q4.Rels[i])
		}
		if !bytes.Equal(tableBytes(a.tables[i]), tableBytes(c.tables[i])) {
			t.Fatalf("relation %d: data depends on query shape, not just catalog+seed", i)
		}
	}
}

func TestGenerateRowCap(t *testing.T) {
	q := tinyQuery(t, 3, query.ChainEdges(3), nil)
	if _, err := Generate(q, 1, 5); err == nil {
		t.Error("row cap not enforced")
	}
}

// TestAllPlansEquivalent is the central invariant: DP's, SDP's, greedy's
// and random left-deep plans for the same query all produce the same
// result multiset when executed.
func TestAllPlansEquivalent(t *testing.T) {
	topologies := []struct {
		name  string
		n     int
		edges []query.Edge
	}{
		{"chain-4", 4, query.ChainEdges(4)},
		{"star-5", 5, query.StarEdges(5)},
		{"cycle-4", 4, query.CycleEdges(4)},
		{"star-chain-6", 6, query.StarChainEdges(6, 3)},
	}
	rng := rand.New(rand.NewSource(3))
	for _, tc := range topologies {
		q := tinyQuery(t, tc.n, tc.edges, nil)
		db, err := Generate(q, 2, 1000)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var plans []*plan.Plan
		dpPlan, _, err := dp.Optimize(q, dp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, dpPlan)
		sdpPlan, _, err := core.Optimize(q, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, sdpPlan)
		gooPlan, _, err := greedy.Optimize(q, greedy.Options{})
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, gooPlan)
		m := cost.NewModel(q, cost.DefaultParams())
		for i := 0; i < 5; i++ {
			p, err := jointree.Build(q, m, jointree.RandomPerm(q, rng))
			if err != nil {
				t.Fatal(err)
			}
			plans = append(plans, p)
		}
		var want string
		for i, p := range plans {
			res, err := db.Run(p)
			if err != nil {
				t.Fatalf("%s plan %d: %v", tc.name, i, err)
			}
			fp := res.Fingerprint()
			if i == 0 {
				want = fp
				continue
			}
			if fp != want {
				t.Fatalf("%s: plan %d (%s) result differs from DP's",
					tc.name, i, p.Shape(func(r int) string { return q.Relation(r).Name }))
			}
		}
	}
}

func TestIndexScanDeliversIndexOrder(t *testing.T) {
	q := tinyQuery(t, 2, query.ChainEdges(2), nil)
	db, err := Generate(q, 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	tab := db.scan(1, true)
	idx := q.Relation(1).IndexCol
	for i := 1; i < len(tab.Rows); i++ {
		if tab.Rows[i-1][idx] > tab.Rows[i][idx] {
			t.Fatal("index scan output not ordered")
		}
	}
}

func TestSortAndMergeJoinOrder(t *testing.T) {
	// Ordered query: the final plan promises the ORDER BY class; executing
	// it must deliver rows sorted on that column.
	cat := tinyCatalog(4)
	q, err := testutil.Query(cat, 4, query.ChainEdges(4), &query.OrderSpec{Rel: 0, Col: 0})
	if err != nil {
		t.Fatal(err)
	}
	if q.OrderEqClass() < 0 {
		t.Fatal("fixture: order column not a join column")
	}
	db, err := Generate(q, 6, 1000)
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := dp.Optimize(q, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Order != q.OrderEqClass() {
		t.Fatalf("plan order = %d, want %d", p.Order, q.OrderEqClass())
	}
	res, err := db.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() > 1 && !db.SortedBy(res, q.OrderEqClass()) {
		t.Error("executed ordered plan is not sorted on the ORDER BY class")
	}
}

func TestCardinalityEstimatesReasonable(t *testing.T) {
	// On uniform data the eqjoinsel estimate should land within roughly an
	// order of magnitude of the truth for 2-way and 3-way joins.
	q := tinyQuery(t, 3, query.ChainEdges(3), nil)
	db, err := Generate(q, 8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	m := cost.NewModel(q, cost.DefaultParams())
	p, _, err := dp.Optimize(q, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	est := m.SetRows(p.Rels)
	if e := EstimationError(est, res.NumRows()); math.Abs(e) > 1.5 {
		t.Errorf("3-way join estimate %g vs actual %d: log10 error %g", est, res.NumRows(), e)
	}
}

func TestEstimationError(t *testing.T) {
	cases := []struct {
		est    float64
		actual int
		want   float64
	}{
		{100, 100, 0},
		{1000, 100, 1},
		{10, 100, -1},
		{0.5, 0, 0}, // both clamp to 1
	}
	for _, c := range cases {
		if got := EstimationError(c.est, c.actual); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("EstimationError(%g, %d) = %g, want %g", c.est, c.actual, got, c.want)
		}
	}
}

func TestRunRejectsInvalidPlan(t *testing.T) {
	q := tinyQuery(t, 2, query.ChainEdges(2), nil)
	db, err := Generate(q, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Run(&plan.Plan{Op: plan.Op(77)}); err == nil {
		t.Error("invalid plan accepted")
	}
}

func TestFingerprintOrderInsensitive(t *testing.T) {
	a := &Table{
		Cols: []ColRef{{0, 0}, {1, 0}},
		Rows: [][]int64{{1, 2}, {3, 4}},
	}
	b := &Table{
		Cols: []ColRef{{1, 0}, {0, 0}},  // swapped column order
		Rows: [][]int64{{4, 3}, {2, 1}}, // swapped row order and values
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprints should match across column/row permutations")
	}
	c := &Table{Cols: a.Cols, Rows: [][]int64{{1, 2}, {3, 5}}}
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different contents produced equal fingerprints")
	}
}

func TestFiltersAppliedAtScan(t *testing.T) {
	cat := tinyCatalog(2)
	preds := []query.Pred{{LeftRel: 0, LeftCol: 0, RightRel: 1, RightCol: 0}}
	ndv := int64(cat.Relation(0).Cols[2].NDV)
	bound := ndv / 2
	if bound < 1 {
		bound = 1
	}
	q, err := query.NewFiltered(cat, []int{0, 1}, preds,
		[]query.Filter{{Rel: 0, Col: 2, Bound: bound}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Generate(q, 3, 1000)
	if err != nil {
		t.Fatal(err)
	}
	tab := db.scan(0, false)
	for _, row := range tab.Rows {
		if row[2] >= bound {
			t.Fatalf("filter not applied: value %d >= bound %d", row[2], bound)
		}
	}
	// Plans over the filtered query still agree with each other.
	p1, _, err := dp.Optimize(q, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := greedy.Optimize(q, greedy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := db.Run(p1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db.Run(p2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Fingerprint() != r2.Fingerprint() {
		t.Error("filtered plans disagree on results")
	}
}

// TestRunActualsNodeIdentity checks that RunActuals records an actual row
// count for every node of the tree, keyed by node pointer, and that the
// recorded values are internally consistent: the root's actual equals the
// materialized result, scans match their filtered base-relation size, and an
// indexed nested loop's inner scan is recorded too.
func TestRunActualsNodeIdentity(t *testing.T) {
	q := tinyQuery(t, 5, query.StarEdges(5), nil)
	db, err := Generate(q, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := dp.Optimize(q, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, actuals, err := db.RunActuals(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := actuals[p]; got != res.NumRows() {
		t.Fatalf("root actual %d != result rows %d", got, res.NumRows())
	}
	var walk func(n *plan.Plan)
	walk = func(n *plan.Plan) {
		if n == nil {
			return
		}
		got, ok := actuals[n]
		if !ok {
			t.Fatalf("node %v (%v) missing from actuals", n.Op, n.Rels)
		}
		if n.Op.IsScan() {
			want := db.scan(n.Rel, false).NumRows()
			if got != want {
				t.Fatalf("scan of rel %d: actual %d, want filtered size %d", n.Rel, got, want)
			}
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(p)
	// RunActuals and Run agree on the result itself.
	plain, err := db.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Fingerprint() != res.Fingerprint() {
		t.Fatal("RunActuals result differs from Run")
	}
}

// TestActualsInvariantUnderJoinOrder is the property test behind the
// feedback ledger's attribution: the actual cardinality of an intermediate
// result depends only on its relation set, never on the join order that
// produced it. Any two equivalent plans must therefore agree on the actual
// row count of every relation set they both materialize.
func TestActualsInvariantUnderJoinOrder(t *testing.T) {
	topologies := []struct {
		name  string
		n     int
		edges []query.Edge
	}{
		{"chain-5", 5, query.ChainEdges(5)},
		{"star-5", 5, query.StarEdges(5)},
		{"cycle-4", 4, query.CycleEdges(4)},
	}
	rng := rand.New(rand.NewSource(7))
	for _, tc := range topologies {
		q := tinyQuery(t, tc.n, tc.edges, nil)
		db, err := Generate(q, 3, 1000)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var plans []*plan.Plan
		dpPlan, _, err := dp.Optimize(q, dp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, dpPlan)
		gooPlan, _, err := greedy.Optimize(q, greedy.Options{})
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, gooPlan)
		m := cost.NewModel(q, cost.DefaultParams())
		for i := 0; i < 4; i++ {
			p, err := jointree.Build(q, m, jointree.RandomPerm(q, rng))
			if err != nil {
				t.Fatal(err)
			}
			plans = append(plans, p)
		}
		// byRels[relation set] = actual row count, across all plans.
		byRels := map[string]int{}
		for pi, p := range plans {
			_, actuals, err := db.RunActuals(p)
			if err != nil {
				t.Fatalf("%s plan %d: %v", tc.name, pi, err)
			}
			for n, rows := range actuals {
				if n.Op == plan.Sort {
					continue // pass-through; same set as its child
				}
				key := n.Rels.String()
				if prev, ok := byRels[key]; ok && prev != rows {
					t.Fatalf("%s: relation set %s has actual %d in plan %d but %d earlier",
						tc.name, key, rows, pi, prev)
				}
				byRels[key] = rows
			}
		}
	}
}

// TestZipfGeneration checks the -skew zipf path: a Zipf-skewed catalog
// generates deterministically, values stay in the column domain, and the
// distribution is actually tilted — the total mass sits far below the
// uniform catalog's.
func TestZipfGeneration(t *testing.T) {
	cat := tinyCatalog(3)
	zcat, err := cat.WithZipfSkew(1.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.WithZipfSkew(1); err == nil {
		t.Error("WithZipfSkew accepted exponent 1")
	}
	uq, err := testutil.Query(cat, 3, query.ChainEdges(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	zq, err := testutil.Query(zcat, 3, query.ChainEdges(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	const seed = 11
	za, err := Generate(zq, seed, 1000)
	if err != nil {
		t.Fatal(err)
	}
	zb, err := Generate(zq, seed, 1000)
	if err != nil {
		t.Fatal(err)
	}
	ud, err := Generate(uq, seed, 1000)
	if err != nil {
		t.Fatal(err)
	}
	var zipfSum, uniformSum int64
	for i := range za.tables {
		if !bytes.Equal(tableBytes(za.tables[i]), tableBytes(zb.tables[i])) {
			t.Fatalf("relation %d: zipf generation not deterministic", i)
		}
		rel := zq.Relation(i)
		for _, row := range za.tables[i] {
			for c, v := range row {
				if v < 0 || float64(v) >= math.Max(1, rel.Cols[c].NDV) {
					t.Fatalf("zipf value %d outside [0,%g)", v, rel.Cols[c].NDV)
				}
				zipfSum += v
			}
		}
		for _, row := range ud.tables[i] {
			for _, v := range row {
				uniformSum += v
			}
		}
	}
	if zipfSum*2 >= uniformSum {
		t.Fatalf("zipf data not tilted: zipf sum %d vs uniform sum %d", zipfSum, uniformSum)
	}
	// Equivalent plans stay equivalent over zipf data.
	p1, _, err := dp.Optimize(zq, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := greedy.Optimize(zq, greedy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := za.Run(p1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := za.Run(p2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Fingerprint() != r2.Fingerprint() {
		t.Error("zipf plans disagree on results")
	}
}
