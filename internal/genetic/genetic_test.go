package genetic

import (
	"math/rand"
	"sort"
	"testing"

	"sdpopt/internal/bits"
	"sdpopt/internal/dp"
	"sdpopt/internal/query"
	"sdpopt/internal/testutil"
)

func TestOrderCrossoverIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(12)
		p1 := rng.Perm(n)
		p2 := rng.Perm(n)
		child := orderCrossover(p1, p2, rng)
		sorted := append([]int(nil), child...)
		sort.Ints(sorted)
		for i, v := range sorted {
			if v != i {
				t.Fatalf("child %v is not a permutation (p1=%v p2=%v)", child, p1, p2)
			}
		}
	}
}

func TestOptimizeProducesValidPlans(t *testing.T) {
	for _, tc := range []struct {
		name  string
		n     int
		edges []query.Edge
	}{
		{"star-9", 9, query.StarEdges(9)},
		{"chain-8", 8, query.ChainEdges(8)},
		{"star-chain-11", 11, query.StarChainEdges(11, 7)},
	} {
		q := testutil.MustQuery(testutil.Catalog(tc.n), tc.n, tc.edges, nil)
		p, stats, err := Optimize(q, Options{Seed: 1, Generations: 30})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: invalid plan: %v", tc.name, err)
		}
		if p.Rels != bits.Full(tc.n) {
			t.Fatalf("%s: covers %v", tc.name, p.Rels)
		}
		if stats.PlansCosted <= 0 {
			t.Errorf("%s: no plans costed", tc.name)
		}
	}
}

func TestNeverBeatsDP(t *testing.T) {
	q := testutil.MustQuery(testutil.Catalog(9), 9, query.StarEdges(9), nil)
	optimal, _, err := dp.Optimize(q, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 3; seed++ {
		p, _, err := Optimize(q, Options{Seed: seed, Generations: 40})
		if err != nil {
			t.Fatal(err)
		}
		if p.Cost < optimal.Cost*(1-1e-9) {
			t.Fatalf("seed %d: genetic %g beat DP %g", seed, p.Cost, optimal.Cost)
		}
	}
}

func TestMoreGenerationsNeverHurt(t *testing.T) {
	q := testutil.MustQuery(testutil.Catalog(12), 12, query.StarChainEdges(12, 8), nil)
	short, _, err := Optimize(q, Options{Seed: 5, Generations: 2})
	if err != nil {
		t.Fatal(err)
	}
	long, _, err := Optimize(q, Options{Seed: 5, Generations: 60})
	if err != nil {
		t.Fatal(err)
	}
	// Elitism makes the incumbent monotone over generations for one seed.
	if long.Cost > short.Cost*(1+1e-9) {
		t.Errorf("more generations worsened the plan: %g -> %g", short.Cost, long.Cost)
	}
}

func TestDeterministicInSeed(t *testing.T) {
	q := testutil.MustQuery(testutil.Catalog(10), 10, query.StarEdges(10), nil)
	a, _, err := Optimize(q, Options{Seed: 3, Generations: 20})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Optimize(q, Options{Seed: 3, Generations: 20})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost {
		t.Error("genetic search not deterministic in seed")
	}
}

func TestExplicitKnobs(t *testing.T) {
	q := testutil.MustQuery(testutil.Catalog(8), 8, query.StarEdges(8), nil)
	p, _, err := Optimize(q, Options{PopSize: 8, Generations: 5, MutationRate: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}
