package parse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokComma
	tokDot
	tokEq
	tokLt
	tokStar
	tokSemi
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokEq:
		return "'='"
	case tokLt:
		return "'<'"
	case tokStar:
		return "'*'"
	case tokSemi:
		return "';'"
	}
	return "token"
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer splits SQL text into tokens. Keywords are returned as identifiers;
// the parser matches them case-insensitively.
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) (*lexer, error) {
	l := &lexer{src: src}
	for l.pos < len(src) {
		c := src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == ',':
			l.emit(tokComma, ",")
		case c == '.':
			l.emit(tokDot, ".")
		case c == '=':
			l.emit(tokEq, "=")
		case c == '<':
			l.emit(tokLt, "<")
		case c == '*':
			l.emit(tokStar, "*")
		case c == ';':
			l.emit(tokSemi, ";")
		case c == '-' && l.pos+1 < len(src) && src[l.pos+1] == '-':
			// Line comment.
			for l.pos < len(src) && src[l.pos] != '\n' {
				l.pos++
			}
		case unicode.IsDigit(rune(c)):
			start := l.pos
			for l.pos < len(src) && unicode.IsDigit(rune(src[l.pos])) {
				l.pos++
			}
			l.toks = append(l.toks, token{tokNumber, src[start:l.pos], start})
		case unicode.IsLetter(rune(c)) || c == '_':
			start := l.pos
			for l.pos < len(src) && (unicode.IsLetter(rune(src[l.pos])) || unicode.IsDigit(rune(src[l.pos])) || src[l.pos] == '_') {
				l.pos++
			}
			l.toks = append(l.toks, token{tokIdent, src[start:l.pos], start})
		default:
			return nil, fmt.Errorf("parse: unexpected character %q at %s", c, lineCol(src, l.pos))
		}
	}
	l.toks = append(l.toks, token{tokEOF, "", len(src)})
	return l, nil
}

func (l *lexer) emit(kind tokenKind, text string) {
	l.toks = append(l.toks, token{kind, text, l.pos})
	l.pos += len(text)
}

// isKeyword matches an identifier token against a keyword,
// case-insensitively.
func isKeyword(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
