// Package dp implements the classical bottom-up dynamic-programming join
// enumerator (DPsize), the search strategy of System R and PostgreSQL.
//
// Level 1 builds access paths for every leaf; level k joins every pair of
// disjoint memo classes whose leaf counts sum to k and that are connected by
// at least one join predicate — bushy trees included, cartesian products
// excluded. Each class retains the cheapest plan plus the cheapest plan per
// interesting order.
//
// The engine is the substrate the paper's three strategies share: plain DP
// runs it to the top; IDP runs it to level k, commits a subplan and
// restarts it on a reduced leaf set; SDP installs a per-level hook that
// prunes the memo with localized skylines. A leaf is normally one base
// relation, but IDP's compound relations enter as leaves covering several
// base relations with a pre-built access plan.
package dp

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"sdpopt/internal/bits"
	"sdpopt/internal/ccp"
	"sdpopt/internal/cost"
	"sdpopt/internal/memo"
	"sdpopt/internal/obs"
	"sdpopt/internal/obs/span"
	"sdpopt/internal/plan"
	"sdpopt/internal/query"
)

// ErrCanceled reports that an optimization was abandoned because its
// context was canceled or its deadline expired. It is deliberately distinct
// from memo.ErrBudget: a budget abort is a property of the query (the
// paper's infeasible "*" outcome, worth reporting and even caching a
// partial answer for), while cancellation is a property of the caller (a
// serving deadline), so the two map to different responses — the HTTP layer
// returns 504 for cancellation and a 200 budget report for ErrBudget. The
// returned error also wraps the context's cause, so errors.Is(err,
// context.DeadlineExceeded) works too. Test with errors.Is.
var ErrCanceled = errors.New("dp: optimization canceled")

// Leaf is one input node of the enumeration. Plans nil means the leaf is a
// single base relation whose access paths the engine generates; otherwise
// the provided plans (e.g. an IDP compound relation's committed plan) are
// used as the leaf's paths.
type Leaf struct {
	Set   bits.Set
	Plans []*plan.Plan
}

// LevelHook runs after each enumeration level with the classes newly
// created at that level, in canonical set order (the sequential and
// parallel engines present the identical slice, so hook decisions — SDP's
// pruning — are engine-independent). It may prune classes from the memo
// (SDP) and may abort the optimization by returning an error.
type LevelHook func(level int, m *memo.Memo, created []*memo.Class) error

// SortClasses orders classes canonically by relation set — the order level
// hooks observe in both the sequential and the parallel engine.
func SortClasses(cs []*memo.Class) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Set.Less(cs[j].Set) })
}

// EnumMode selects the engine's candidate-pair generation strategy. All
// three modes enumerate exactly the same connected class pairs and produce
// bit-for-bit identical memos, plans and costing (the equivalence property
// tests assert this); they differ only in how much work finding those pairs
// takes.
type EnumMode int

const (
	// EnumDPccp, the default, generates connected-subgraph/connected-
	// complement pairs directly from the join graph (Moerkotte & Neumann's
	// DPccp): no candidate is ever generated and rejected, so
	// pairs_considered == pairs_connected by construction and the
	// enumeration cost is proportional to the connected pairs alone. Runs
	// with a per-level hook (SDP) fall back to EnumIndexed: DPccp has no
	// level barrier to run hooks at, and under hook pruning the surviving
	// classes are a sparse memo-dependent subset that the structural
	// enumeration cannot see — the indexed walk gathers candidates from the
	// memo itself, which is exactly what pruned search needs.
	EnumDPccp EnumMode = iota
	// EnumIndexed is the adjacency-indexed level walk: per-level bitmap
	// indexes gather each class's joinable partners, skipping disconnected
	// candidates without testing them. The enumerator behind every hooked
	// (SDP) run and the parallel engine's task generator.
	EnumIndexed
	// EnumNaive is the generate-and-filter reference loop: scan every class
	// pair per level and reject with Disjoint/Connected, recomputing the
	// neighborhood per pair. Exists as the equivalence oracle and benchmark
	// baseline for the two real enumerators.
	EnumNaive
)

// Options configures an engine run.
type Options struct {
	// Budget is the simulated-memory feasibility limit in bytes
	// (0 = unlimited). Exceeding it aborts with memo.ErrBudget.
	Budget int64
	// Ctx, if non-nil, bounds the optimization: the engine polls it at
	// every enumeration step and aborts with ErrCanceled (wrapping the
	// context cause) once it is done. This is how serving deadlines reach
	// the search without a second abort mechanism alongside the budget.
	Ctx context.Context
	// Hook, if non-nil, runs after every level.
	Hook LevelHook
	// Model supplies costing; if nil a fresh model with default parameters
	// is created. IDP passes one model across restarts so the plans-costed
	// counter accumulates.
	Model *cost.Model
	// LeftDeepOnly restricts enumeration to System R's classic space:
	// every join extends a composite by a single leaf, so no bushy trees.
	// Every connected set still materializes (a connected graph always has
	// a non-cut leaf to peel), but with fewer candidate plans per class.
	LeftDeepOnly bool
	// Obs receives metrics and trace events; nil falls back to the process
	// default observer (obs.Default), which is itself nil — telemetry off —
	// unless a CLI enabled it.
	Obs *obs.Observer
	// Label names the technique driving this engine in emitted telemetry
	// ("DP" when empty); IDP and SDP pass their own names so per-level
	// spans attribute effort to the right strategy.
	Label string
	// Enum selects the candidate-pair generation strategy; the zero value is
	// EnumDPccp (see EnumMode for the fallback rule hooked runs trigger).
	Enum EnumMode
	// NaiveEnum selects the generate-and-filter reference loop.
	//
	// Deprecated: equivalent to Enum = EnumNaive, which takes precedence
	// over this flag and should be used instead.
	NaiveEnum bool
}

// Stats aggregates the overhead metrics of one optimization, matching the
// columns of the paper's overhead tables.
type Stats struct {
	Memo memo.Stats
	// PlansCosted counts candidate plans costed, the paper's "Costing (in
	// plans)" column.
	PlansCosted int64
	// PairsConsidered counts candidate class pairs the enumerator examined;
	// PairsConnected counts those that passed the disjoint+connected filter
	// and were actually joined. Connected pairs are a property of the search
	// space, identical across enumeration strategies; considered pairs
	// measure the strategy — the naive scan considers every pair, the
	// adjacency-indexed walk only the connected neighborhood, so the
	// considered:connected ratio is the enumerator's filtering efficiency.
	PairsConsidered int64
	PairsConnected  int64
	// Elapsed is the optimization wall time.
	Elapsed time.Duration
}

// Engine runs the level-wise enumeration over a fixed leaf set.
type Engine struct {
	Q        *query.Query
	Model    *cost.Model
	Memo     *memo.Memo
	ctx      context.Context
	leaves   []Leaf
	hook     LevelHook
	leftDeep bool
	enum     EnumMode

	// ccpDone is the highest level whose pairs the DPccp path has already
	// emitted; a later partial Run resumes above it instead of re-joining.
	ccpDone int

	costedAtStart int64
	started       time.Time

	// Pair counters (see Stats); the parallel engine folds its workers'
	// per-task counts in via CountPairs at each level barrier.
	pairsConsidered int64
	pairsConnected  int64

	// Enumeration scratch, reused across pairs: the adjacency walker, the
	// per-pair predicate list and the join-variant buffer. Reuse keeps the
	// hot loop allocation-free; all three are consumed before the next pair.
	walker   memo.Walker
	predBuf  []int
	planBuf  []*plan.Plan
	pathBufA []*plan.Plan
	pathBufB []*plan.Plan

	// Telemetry handles, resolved once at construction; all nil-safe.
	// (The per-level histogram is labeled by level and resolved per level —
	// a handful of lookups per run, not per event.)
	ob         *obs.Observer
	label      string
	cPlans     *obs.Counter
	cPairsCons *obs.Counter
	cPairsConn *obs.Counter
	// sp is the request span carried by opts.Ctx (nil when the caller is
	// not tracing): each completed level attaches one child span to it.
	sp *span.Span
}

// NewEngine prepares an engine and seeds level 1 of the memo. The leaves
// must be disjoint and cover the query's relations.
func NewEngine(q *query.Query, leaves []Leaf, opts Options) (*Engine, error) {
	model := opts.Model
	if model == nil {
		model = cost.NewModel(q, cost.DefaultParams())
	}
	ob := obs.Or(opts.Obs)
	label := opts.Label
	if label == "" {
		label = "DP"
	}
	enum := opts.Enum
	if enum == EnumDPccp && opts.NaiveEnum {
		enum = EnumNaive
	}
	if enum == EnumDPccp && opts.Hook != nil {
		enum = EnumIndexed // hooks need level barriers; see EnumMode docs
	}
	e := &Engine{
		Q:             q,
		Model:         model,
		Memo:          memo.New(opts.Budget),
		ctx:           opts.Ctx,
		leaves:        leaves,
		hook:          opts.Hook,
		leftDeep:      opts.LeftDeepOnly,
		enum:          enum,
		ccpDone:       1,
		costedAtStart: model.PlansCosted,
		started:       time.Now(),
		ob:            ob,
		label:         label,
		cPlans:        ob.Counter(obs.MPlansCosted),
		cPairsCons:    ob.Counter(obs.MPairsConsidered),
		cPairsConn:    ob.Counter(obs.MPairsConnected),
		sp:            span.FromContext(opts.Ctx),
	}
	// Installed before any class exists so every creation site — the level-1
	// seed, joinClasses, the parallel drain, IDP's compound leaves — caches
	// its neighborhood for the adjacency-indexed walk.
	e.Memo.Nbrs = q.Neighbors
	e.Memo.Observe(ob)
	var covered bits.Set
	for _, l := range leaves {
		if l.Set.IsEmpty() {
			return nil, fmt.Errorf("dp: empty leaf")
		}
		if covered.Overlaps(l.Set) {
			return nil, fmt.Errorf("dp: leaf %v overlaps another leaf", l.Set)
		}
		covered = covered.Union(l.Set)
		if l.Plans == nil && l.Set.Len() != 1 {
			return nil, fmt.Errorf("dp: leaf %v has no plans but is not a base relation", l.Set)
		}
	}
	if covered != bits.Full(q.NumRelations()) {
		return nil, fmt.Errorf("dp: leaves cover %v, want all %d relations", covered, q.NumRelations())
	}
	lvStart := time.Now()
	prevCosted := model.PlansCosted
	err := e.seedLevel1()
	e.observeLevel(1, lvStart, prevCosted, 0, 0, len(leaves), err)
	if err != nil {
		// Return the engine so callers can still read overhead stats (a
		// budget abort is a reportable outcome, not a programming error).
		return e, err
	}
	return e, nil
}

// BaseLeaves returns the default leaf set: one leaf per base relation.
func BaseLeaves(q *query.Query) []Leaf {
	leaves := make([]Leaf, q.NumRelations())
	for i := range leaves {
		leaves[i] = Leaf{Set: bits.Single(i)}
	}
	return leaves
}

func (e *Engine) seedLevel1() error {
	for _, l := range e.leaves {
		rows := e.Model.SetRows(l.Set)
		c, err := e.Memo.NewClass(l.Set, 1, rows, e.Model.Selectivity(l.Set, rows))
		if err != nil {
			return err
		}
		paths := l.Plans
		if paths == nil {
			paths = e.Model.AccessPaths(l.Set.Min())
		}
		for _, p := range paths {
			if _, err := e.Memo.AddPlan(c, p); err != nil {
				return err
			}
		}
	}
	if e.hook != nil {
		created := e.Memo.Level(1)
		SortClasses(created)
		if err := e.hook(1, e.Memo, created); err != nil {
			return err
		}
	}
	return nil
}

// NumLeaves returns the size of the enumeration (its top level).
func (e *Engine) NumLeaves() int { return len(e.leaves) }

// CtxErr polls ctx (nil allowed), returning nil while it is live and an
// error wrapping both ErrCanceled and the context cause once it is done.
// Every optimizer layer that honors deadlines funnels through this one
// helper so errors.Is(err, ErrCanceled) identifies cancellation uniformly.
func CtxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return fmt.Errorf("%w: %w", ErrCanceled, context.Cause(ctx))
	default:
		return nil
	}
}

// checkCtx polls the engine's context, turning cancellation into
// ErrCanceled. The Stats counters stay valid on this path — callers return
// e.Stats() exactly as on a budget abort, so a canceled run still reports
// its wall time, classes created and plans costed up to the abort point.
func (e *Engine) checkCtx() error { return CtxErr(e.ctx) }

// Run executes enumeration levels 2..toLevel (capped at the leaf count).
// On a budget error the memo is left as-is and memo.ErrBudget is returned.
// Each level — enumeration plus hook (SDP pruning) — is one observed span.
func (e *Engine) Run(toLevel int) error {
	if toLevel > len(e.leaves) {
		toLevel = len(e.leaves)
	}
	if e.enum == EnumDPccp {
		return e.runCCP(toLevel)
	}
	for k := 2; k <= toLevel; k++ {
		if err := e.checkCtx(); err != nil {
			return err
		}
		lvStart := time.Now()
		prevCosted := e.Model.PlansCosted
		prevCons, prevConn := e.pairsConsidered, e.pairsConnected
		created, err := e.runLevel(k)
		if err == nil && e.hook != nil {
			SortClasses(created)
			err = e.hook(k, e.Memo, created)
		}
		e.observeLevel(k, lvStart, prevCosted, prevCons, prevConn, len(created), err)
		if err != nil {
			return err
		}
	}
	return nil
}

// observeLevel closes one enumeration level's span: the level-duration
// histogram, the plans-costed counter, a "level" event with the level's
// creation, pruning and costing counts, and — when the run carries a
// request span — a completed "level" child span with the same attributes.
// A budget abort additionally bumps the abort counter and emits
// "budget.abort". No-op when telemetry and tracing are both off.
func (e *Engine) observeLevel(k int, started time.Time, prevCosted, prevCons, prevConn int64, created int, err error) {
	if e.ob == nil && e.sp == nil {
		return
	}
	e.emitLevel(k, started, time.Since(started),
		e.Model.PlansCosted-prevCosted, e.pairsConsidered-prevCons, e.pairsConnected-prevConn,
		created, err)
}

// emitLevel is observeLevel's emission body, taking the level's duration and
// counter deltas directly — the DPccp path accumulates per-level deltas out
// of emission order and replays them through here at run end. Call only when
// e.ob or e.sp is non-nil.
func (e *Engine) emitLevel(k int, started time.Time, d time.Duration, costed, pairsCons, pairsConn int64, created int, err error) {
	if e.sp != nil {
		lv := e.sp.ChildAt("level", started, d)
		lv.SetAttr("tech", e.label)
		lv.SetAttr("level", k)
		lv.SetAttr("classes_created", created)
		lv.SetAttr("plans_costed", costed)
		lv.SetAttr("pairs_considered", pairsCons)
		lv.SetAttr("pairs_connected", pairsConn)
		lv.SetAttr("sim_bytes", e.Memo.Stats.SimBytes)
		if err != nil {
			lv.SetError(err.Error())
		}
	}
	if e.ob == nil {
		return
	}
	// Labeled per level so sequential level profiles line up against the
	// parallel engine's in sdptrace and on /metrics.
	e.ob.Histogram(obs.Label(obs.MLevelSeconds, "level", strconv.Itoa(k))).Observe(d)
	e.cPlans.Add(costed)
	e.cPairsCons.Add(pairsCons)
	e.cPairsConn.Add(pairsConn)
	if e.ob.Tracing() {
		attrs := map[string]any{
			"tech":             e.label,
			"level":            k,
			"dur_ns":           int64(d),
			"classes_created":  created,
			"classes_pruned":   created - len(e.Memo.Level(k)),
			"plans_costed":     costed,
			"pairs_considered": pairsCons,
			"pairs_connected":  pairsConn,
			"classes_alive":    e.Memo.Stats.ClassesAlive,
			"sim_bytes":        e.Memo.Stats.SimBytes,
		}
		if err != nil {
			attrs["err"] = err.Error()
		}
		e.ob.Emit(obs.EvLevel, attrs)
	}
	if errors.Is(err, memo.ErrBudget) {
		e.ob.Counter(obs.MBudgetAborts).Add(1)
		if e.ob.Tracing() {
			e.ob.Emit(obs.EvBudgetAbort, map[string]any{
				"tech":      e.label,
				"level":     k,
				"sim_bytes": e.Memo.Stats.SimBytes,
				"budget":    e.Memo.Budget,
			})
		}
	}
}

func (e *Engine) runLevel(k int) ([]*memo.Class, error) {
	if e.enum == EnumNaive {
		return e.runLevelNaive(k)
	}
	var created []*memo.Class
	maxSplit := k / 2
	if e.leftDeep {
		maxSplit = 1 // only (1, k-1) splits: a leaf extends a composite
	}
	for i := 1; i <= maxSplit; i++ {
		j := k - i
		left := e.Memo.Level(i)
		for _, a := range left {
			// Poll per left class: frequent enough that a deadline lands
			// within milliseconds even on hub-heavy levels, cheap enough
			// (one channel select) to vanish against join costing.
			if err := e.checkCtx(); err != nil {
				return created, err
			}
			// Same-level split: visit each unordered pair once. Gather's
			// minSeq cut is the naive loop's right[ai+1:] slice — Level
			// preserves creation order, so the alive classes after a are
			// exactly those with larger Seq.
			minSeq := 0
			if i == j {
				minSeq = a.Seq() + 1
			}
			// Every gathered candidate is connected to and disjoint from a
			// by construction (the index masks both conditions), so for the
			// indexed walk considered == connected: the Disjoint re-check is
			// a belt-and-braces guard on the index, not a filter. Order
			// matches the naive scan: Gather returns the joinable
			// subsequence of Level(j) in creation order, and pairs the
			// naive scan rejects had no side effects there.
			for _, b := range e.walker.Gather(e.Memo, a, j, minSeq) {
				e.pairsConsidered++
				if !a.Set.Disjoint(b.Set) {
					continue
				}
				e.pairsConnected++
				cls, isNew, err := e.joinClasses(a, b, k)
				if err != nil {
					return created, err
				}
				if isNew {
					created = append(created, cls)
				}
			}
		}
	}
	return created, nil
}

// runLevelNaive is the retained generate-and-filter reference: scan every
// class pair of the level's splits and reject with Disjoint/Connected,
// recomputing the neighborhood per pair. Kept verbatim as the equivalence
// oracle and benchmark baseline for the adjacency-indexed walk above.
func (e *Engine) runLevelNaive(k int) ([]*memo.Class, error) {
	var created []*memo.Class
	maxSplit := k / 2
	if e.leftDeep {
		maxSplit = 1
	}
	for i := 1; i <= maxSplit; i++ {
		j := k - i
		left := e.Memo.Level(i)
		right := e.Memo.Level(j)
		for ai, a := range left {
			if err := e.checkCtx(); err != nil {
				return created, err
			}
			bs := right
			if i == j {
				bs = right[ai+1:] // each unordered pair once
			}
			for _, b := range bs {
				e.pairsConsidered++
				if !a.Set.Disjoint(b.Set) || !e.Q.Connected(a.Set, b.Set) {
					continue
				}
				e.pairsConnected++
				cls, isNew, err := e.joinClasses(a, b, k)
				if err != nil {
					return created, err
				}
				if isNew {
					created = append(created, cls)
				}
			}
		}
	}
	return created, nil
}

// ccpGraph builds the join graph the DPccp enumerator walks: one vertex per
// leaf, an edge wherever a join predicate connects two leaves' relation
// sets, plus the translation from vertex sets back to relation sets. For the
// common base-relation leaf set (leaf i covers exactly relation i) both are
// free — the adjacency is the query's own and the translation is identity;
// IDP's compound leaves get a contracted graph built by pairwise
// connectivity tests.
func (e *Engine) ccpGraph() (adj []bits.Set, rels func(bits.Set) bits.Set) {
	n := len(e.leaves)
	identity := true
	for i := range e.leaves {
		if e.leaves[i].Set != bits.Single(i) {
			identity = false
			break
		}
	}
	adj = make([]bits.Set, n)
	if identity {
		for i := range adj {
			adj[i] = e.Q.Neighbors(bits.Single(i))
		}
		return adj, func(s bits.Set) bits.Set { return s }
	}
	leafSets := make([]bits.Set, n)
	for i := range e.leaves {
		leafSets[i] = e.leaves[i].Set
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if e.Q.Connected(leafSets[i], leafSets[j]) {
				adj[i] = adj[i].Add(j)
				adj[j] = adj[j].Add(i)
			}
		}
	}
	return adj, func(s bits.Set) bits.Set {
		var r bits.Set
		for it := s.Iter(); ; {
			i, ok := it.Next()
			if !ok {
				return r
			}
			r = r.Union(leafSets[i])
		}
	}
}

// runCCP runs the DPccp enumerator for levels (e.ccpDone, toLevel]: every
// emitted csg-cmp pair is a connected, disjoint class pair, joined the
// moment it surfaces. The enumeration order guarantees both sides' classes
// are complete before a pair is emitted (see package ccp), so no level
// barrier is needed — which also means per-level telemetry cannot be closed
// level by level; instead the pair callback accumulates each level's deltas
// and the run replays them through emitLevel in ascending order at the end,
// producing the same one-observation-per-level stream the level-synchronous
// enumerators emit.
func (e *Engine) runCCP(toLevel int) error {
	minLevel := e.ccpDone
	if toLevel <= minLevel {
		return nil
	}
	runStart := time.Now()
	adj, rels := e.ccpGraph()
	timed := e.ob != nil || e.sp != nil
	durs := make([]time.Duration, toLevel+1)
	costed := make([]int64, toLevel+1)
	pairs := make([]int64, toLevel+1)
	created := make([]int, toLevel+1)
	abortLevel := 0
	err := ccp.Enumerate(adj, ccp.Options{MinLevel: minLevel, MaxLevel: toLevel, LeftDeep: e.leftDeep},
		func(s1, s2 bits.Set) error {
			lvl := s1.Len() + s2.Len()
			if cerr := e.checkCtx(); cerr != nil {
				abortLevel = lvl
				return cerr
			}
			a, b := e.Memo.Get(rels(s1)), e.Memo.Get(rels(s2))
			// Considered == connected by construction: the enumerator only
			// produces disjoint connected pairs, it never filters.
			e.pairsConsidered++
			e.pairsConnected++
			pairs[lvl]++
			var t0 time.Time
			if timed {
				t0 = time.Now()
			}
			pc := e.Model.PlansCosted
			_, isNew, jerr := e.joinClasses(a, b, lvl)
			costed[lvl] += e.Model.PlansCosted - pc
			if timed {
				durs[lvl] += time.Since(t0)
			}
			if isNew {
				created[lvl]++
			}
			if jerr != nil {
				abortLevel = lvl
				return jerr
			}
			return nil
		})
	if err == nil {
		e.ccpDone = toLevel
	}
	if timed {
		lvStart := runStart
		for k := minLevel + 1; k <= toLevel; k++ {
			var lerr error
			if k == abortLevel {
				lerr = err
			}
			e.emitLevel(k, lvStart, durs[k], costed[k], pairs[k], pairs[k], created[k], lerr)
			lvStart = lvStart.Add(durs[k])
		}
	}
	return err
}

// joinClasses enumerates the physical joins of classes a and b, folding the
// results into the class for a∪b (creating it if needed).
func (e *Engine) joinClasses(a, b *memo.Class, level int) (*memo.Class, bool, error) {
	set := a.Set.Union(b.Set)
	cls := e.Memo.Get(set)
	isNew := false
	if cls == nil {
		// Canonical per-set cardinality: identical for every optimizer and
		// enumeration order (see cost.SetRows).
		rows := e.Model.SetRows(set)
		var err error
		cls, err = e.Memo.NewClass(set, level, rows, e.Model.Selectivity(set, rows))
		if err != nil {
			return nil, false, err
		}
		isNew = true
	}
	// Scratch-backed lookups: the predicate list and the join-variant buffer
	// are reused across pairs (their contents are consumed before the next
	// pair), so steady-state enumeration allocates only retained plans.
	e.predBuf = e.Q.AppendPredsBetween(e.predBuf[:0], a.Set, b.Set)
	preds := e.predBuf
	e.pathBufA = a.AppendPaths(e.pathBufA[:0])
	e.pathBufB = b.AppendPaths(e.pathBufB[:0])
	for _, pa := range e.pathBufA {
		for _, pb := range e.pathBufB {
			for _, in := range []cost.JoinInputs{
				{Outer: pa, Inner: pb, Preds: preds, Rows: cls.Rows},
				{Outer: pb, Inner: pa, Preds: preds, Rows: cls.Rows},
			} {
				e.planBuf = e.Model.AppendJoinPlans(e.planBuf[:0], in)
				for _, p := range e.planBuf {
					if _, err := e.Memo.AddPlan(cls, p); err != nil {
						return cls, isNew, err
					}
				}
			}
		}
	}
	return cls, isNew, nil
}

// Finalize returns the completed plan for the full relation set, applying
// the query's ORDER BY (using a retained interesting-order plan when it
// beats sorting the cheapest plan). It fails if enumeration has not reached
// the top level.
func (e *Engine) Finalize() (*plan.Plan, error) {
	full := bits.Full(e.Q.NumRelations())
	cls := e.Memo.Get(full)
	if cls == nil || cls.Best == nil {
		return nil, fmt.Errorf("dp: no plan for the full relation set (enumeration incomplete)")
	}
	best := cls.Best
	if e.Q.OrderBy == nil {
		return best, nil
	}
	ec := e.Q.OrderEqClass()
	if ec < 0 {
		// Ordering on a non-join column: always an explicit final sort.
		return e.Model.SortPlan(best, 0), nil
	}
	if best.Order == ec {
		return best, nil
	}
	sorted := e.Model.SortPlan(best, ec)
	if pre, ok := cls.OrderedPlan(ec); ok && plan.Less(pre, sorted) {
		return pre, nil
	}
	return sorted, nil
}

// Stats snapshots the overhead counters of this engine's run.
func (e *Engine) Stats() Stats {
	return Stats{
		Memo:            e.Memo.Stats,
		PlansCosted:     e.Model.PlansCosted - e.costedAtStart,
		PairsConsidered: e.pairsConsidered,
		PairsConnected:  e.pairsConnected,
		Elapsed:         time.Since(e.started),
	}
}

// CountPairs folds externally-examined candidate pairs into the engine's
// counters. The parallel engine calls it at each level barrier with its
// workers' per-task sums; addition commutes, so the folded totals are
// deterministic regardless of worker scheduling.
func (e *Engine) CountPairs(considered, connected int64) {
	e.pairsConsidered += considered
	e.pairsConnected += connected
}

// ObserveRun opens an optimization span for the named technique: it emits
// "optimize.start" and returns a closure that, given the run's outcome,
// emits "optimize.end" and records the per-technique duration histogram and
// completion counter. DP, IDP and SDP all report through this single path,
// which is what makes their effort comparable. The closure is a no-op when
// telemetry is off.
func ObserveRun(ob *obs.Observer, tech string, q *query.Query) func(Stats, *plan.Plan, error) {
	if ob == nil {
		return func(Stats, *plan.Plan, error) {}
	}
	if ob.Tracing() {
		ob.Emit(obs.EvOptimizeStart, map[string]any{"tech": tech, "rels": q.NumRelations()})
	}
	return func(st Stats, p *plan.Plan, err error) {
		ob.Histogram(obs.Label(obs.MOptimizeSeconds, "tech", tech)).Observe(st.Elapsed)
		ob.Counter(obs.Label(obs.MOptimizations, "tech", tech)).Add(1)
		if !ob.Tracing() {
			return
		}
		attrs := map[string]any{
			"tech":             tech,
			"rels":             q.NumRelations(),
			"dur_ns":           int64(st.Elapsed),
			"plans_costed":     st.PlansCosted,
			"pairs_considered": st.PairsConsidered,
			"pairs_connected":  st.PairsConnected,
			"classes_created":  st.Memo.ClassesCreated,
			"peak_sim_bytes":   st.Memo.PeakSimBytes,
		}
		if p != nil {
			attrs["cost"] = p.Cost
		}
		if err != nil {
			attrs["err"] = err.Error()
		}
		ob.Emit(obs.EvOptimizeEnd, attrs)
	}
}

// Optimize runs exhaustive DP over the query's base relations and returns
// the optimal plan with overhead statistics. This is the paper's "DP"
// baseline. Stats.Elapsed is populated on every path, including validation
// errors and budget aborts, so aborted runs still report their wall time.
func Optimize(q *query.Query, opts Options) (*plan.Plan, Stats, error) {
	started := time.Now()
	label := opts.Label
	if label == "" {
		label = "DP"
		if opts.LeftDeepOnly {
			label = "DP/LD"
		}
		opts.Label = label
	}
	done := ObserveRun(obs.Or(opts.Obs), label, q)
	p, st, err := func() (*plan.Plan, Stats, error) {
		e, err := NewEngine(q, BaseLeaves(q), opts)
		if err != nil {
			if e != nil {
				return nil, e.Stats(), err
			}
			return nil, Stats{Elapsed: time.Since(started)}, err
		}
		if err := e.Run(q.NumRelations()); err != nil {
			return nil, e.Stats(), err
		}
		p, err := e.Finalize()
		return p, e.Stats(), err
	}()
	done(st, p, err)
	return p, st, err
}
