// Package obs is the optimizer's observability layer: an atomic-counter
// metrics Registry (counters, gauges, duration histograms) plus a span-style
// Tracer emitting structured events to pluggable sinks (JSONL files for
// offline analysis, in-memory buffers for tests and CLI trace tables).
//
// Every number the paper's tables report — plans costed, memo memory,
// optimization time, pruning counts — flows through this package, so
// DP, IDP and SDP are measured uniformly. The design constraint is that
// observability must cost nothing when off: all types are nil-safe, and the
// disabled path through an Observer, metric handle, or Tracer is a single
// nil-check. Engine layers resolve their metric handles once per run, never
// per event.
//
// The package depends only on the standard library and is imported by every
// engine layer (memo, dp, core, idp, harness) and the CLIs.
package obs

import "sync/atomic"

// Observer bundles a metrics registry and a tracer. Engine options carry an
// optional *Observer; a nil observer (the default) disables all telemetry.
type Observer struct {
	Registry *Registry
	Tracer   *Tracer
}

// New returns an observer over a fresh registry and the given sinks.
func New(sinks ...Sink) *Observer {
	return &Observer{Registry: NewRegistry(), Tracer: NewTracer(sinks...)}
}

// Counter resolves a counter from the observer's registry. Nil-safe.
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Registry.Counter(name)
}

// Gauge resolves a gauge from the observer's registry. Nil-safe.
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Registry.Gauge(name)
}

// Histogram resolves a duration histogram from the observer's registry.
// Nil-safe.
func (o *Observer) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	return o.Registry.Histogram(name)
}

// Emit sends one trace event. Nil-safe.
func (o *Observer) Emit(typ string, attrs map[string]any) {
	if o == nil {
		return
	}
	o.Tracer.Emit(typ, attrs)
}

// EmitPayload is Emit with an in-process payload. Nil-safe.
func (o *Observer) EmitPayload(typ string, attrs map[string]any, payload any) {
	if o == nil {
		return
	}
	o.Tracer.EmitPayload(typ, attrs, payload)
}

// Tracing reports whether events would actually be recorded — engine layers
// use it to skip building attribute maps on the disabled path.
func (o *Observer) Tracing() bool { return o != nil && o.Tracer != nil }

// Flush forces buffered sink writes (JSONL files) to their destination
// without closing the sinks — the graceful-shutdown path, where the process
// keeps serving until the listener drains but no event may be lost.
// Nil-safe.
func (o *Observer) Flush() error {
	if o == nil {
		return nil
	}
	return o.Tracer.Flush()
}

// WithSinks returns an observer that shares o's registry but additionally
// delivers events to the given sinks. Works on a nil receiver (yielding an
// observer with only the new sinks).
func (o *Observer) WithSinks(sinks ...Sink) *Observer {
	if o == nil {
		return &Observer{Registry: nil, Tracer: NewTracer(sinks...)}
	}
	all := sinks
	if o.Tracer != nil {
		all = append(append([]Sink{}, o.Tracer.sinks...), sinks...)
	}
	return &Observer{Registry: o.Registry, Tracer: NewTracer(all...)}
}

// defaultObs is the process-wide observer, nil until a CLI enables
// telemetry (mirroring expvar's and Prometheus's global default). Engine
// layers fall back to it when their options carry no explicit observer, so
// flag-level enablement reaches every nested optimization without threading
// an observer through each constructor signature.
var defaultObs atomic.Pointer[Observer]

// SetDefault installs the process-wide default observer (nil to disable).
func SetDefault(o *Observer) {
	defaultObs.Store(o)
}

// Default returns the process-wide observer, or nil when telemetry is off.
func Default() *Observer {
	return defaultObs.Load()
}

// Or returns o if non-nil, else the process default. Engine constructors
// call it once per run.
func Or(o *Observer) *Observer {
	if o != nil {
		return o
	}
	return Default()
}

// Metric names. Counters end in _total; gauges and histograms are labeled
// where noted (see Label).
const (
	// MOptimizations counts completed optimizations, labeled tech=.
	MOptimizations = "sdpopt_optimizations_total"
	// MPlansCosted counts candidate plans costed across all runs.
	MPlansCosted = "sdpopt_plans_costed_total"
	// MPairsConsidered counts candidate class pairs the enumerator
	// examined; MPairsConnected counts those passing the disjoint+connected
	// filter. Their ratio is the enumerator's filtering efficiency: the
	// adjacency-indexed walk considers only the connected neighborhood,
	// the naive reference scan every pair.
	MPairsConsidered = "sdpopt_pairs_considered_total"
	MPairsConnected  = "sdpopt_pairs_connected_total"
	// MClassesCreated counts memo classes (JCRs) ever created.
	MClassesCreated = "sdpopt_memo_classes_created_total"
	// MClassesPruned counts classes removed by SDP pruning.
	MClassesPruned = "sdpopt_memo_classes_pruned_total"
	// MMemoAlive gauges currently alive memo classes.
	MMemoAlive = "sdpopt_memo_classes_alive"
	// MMemoSimBytes gauges current simulated memo memory.
	MMemoSimBytes = "sdpopt_memo_sim_bytes"
	// MMemoPeakSimBytes gauges the simulated-memory high-water mark.
	MMemoPeakSimBytes = "sdpopt_memo_peak_sim_bytes"
	// MBudgetAborts counts optimizations aborted by the memory budget.
	MBudgetAborts = "sdpopt_budget_aborts_total"
	// MOptimizeSeconds is the per-optimization duration histogram,
	// labeled tech=.
	MOptimizeSeconds = "sdpopt_optimize_seconds"
	// MLevelSeconds is the enumeration-level duration histogram, labeled
	// level=, from the sequential and parallel engines alike — so their
	// per-level profiles are directly comparable.
	MLevelSeconds = "sdpopt_level_seconds"
	// MSkylineSurvivors counts PruneGroup JCRs surviving a skyline
	// partition, labeled criterion= (RC, CS, RS, all).
	MSkylineSurvivors = "sdpopt_skyline_survivors_total"
	// MSkylineCandidates counts PruneGroup JCRs entering skyline
	// partitions.
	MSkylineCandidates = "sdpopt_skyline_candidates_total"
	// MIDPIterations counts IDP restart iterations.
	MIDPIterations = "sdpopt_idp_iterations_total"
	// MQueueDepth gauges the harness worker-pool queue depth.
	MQueueDepth = "sdpopt_harness_queue_depth"
	// MBatches counts harness batches run.
	MBatches = "sdpopt_harness_batches_total"
	// MTechniqueSeconds is the harness per-instance optimization duration,
	// labeled tech=.
	MTechniqueSeconds = "sdpopt_technique_seconds"

	// Parallel-enumeration metrics (see internal/pardp).

	// MParTasks counts work-queue tasks dispatched to parallel enumeration
	// workers (one task = one left class of one level split).
	MParTasks = "sdpopt_pardp_tasks_total"
	// MParBarrierWait is the per-worker idle time at each level barrier:
	// the last finisher's completion time minus this worker's.
	MParBarrierWait = "sdpopt_pardp_barrier_wait_seconds"
	// MParShardContended counts staging-table shard-lock acquisitions that
	// had to wait behind another worker.
	MParShardContended = "sdpopt_pardp_shard_contention_total"

	// Plan-cache metrics (see internal/plancache).

	// MCacheHits counts plan-cache lookups served from a stored entry.
	MCacheHits = "sdpopt_plancache_hits_total"
	// MCacheMisses counts lookups that ran the underlying optimization.
	MCacheMisses = "sdpopt_plancache_misses_total"
	// MCacheDedup counts lookups coalesced onto another caller's in-flight
	// optimization of the same key (singleflight waiters).
	MCacheDedup = "sdpopt_plancache_dedup_total"
	// MCacheEvictions counts LRU evictions.
	MCacheEvictions = "sdpopt_plancache_evictions_total"
	// MCacheInvalidated counts entries dropped by explicit invalidation.
	MCacheInvalidated = "sdpopt_plancache_invalidated_total"
	// MCacheEntries gauges currently cached plans.
	MCacheEntries = "sdpopt_plancache_entries"

	// Serving-layer metrics (see internal/server).

	// MServerRequests counts HTTP requests, labeled route= and code=.
	MServerRequests = "sdpopt_server_requests_total"
	// MServerInFlight gauges optimizations currently executing.
	MServerInFlight = "sdpopt_server_in_flight"
	// MServerQueue gauges requests admitted but waiting for a slot.
	MServerQueue = "sdpopt_server_queue_depth"
	// MServerShed counts requests rejected with 429 by admission control.
	MServerShed = "sdpopt_server_shed_total"
	// MServerSeconds is the end-to-end /optimize latency histogram,
	// labeled source= (hit, dedup, miss, uncached).
	MServerSeconds = "sdpopt_server_seconds"
	// MServerQueueSeconds is the admission-wait histogram: time between a
	// request entering admission control and acquiring an execution slot,
	// kept separate from MServerSeconds so queueing delay and compute time
	// are individually attributable (shed requests never enter it).
	MServerQueueSeconds = "sdpopt_server_queue_seconds"
	// MServerCanonTruncated counts requests whose canonical-labeling search
	// exhausted its budget (query.Canon().Truncated): their fingerprints
	// may differ across equivalent spellings, degrading cache hit rate.
	MServerCanonTruncated = "sdpopt_server_canonical_truncated_total"

	// Plan-quality regret metrics (see internal/obs/regret).

	// MRegretRatio is the served-vs-reference cost-ratio float histogram,
	// labeled tech= and shape=, with RatioBuckets bounds and trace-ID
	// exemplars linking extreme ratios to flight-recorder entries.
	MRegretRatio = "sdpopt_regret_ratio"
	// MRegretSamples counts completed shadow comparisons, labeled tech=.
	MRegretSamples = "sdpopt_regret_samples_total"
	// MRegretDropped counts shadow jobs dropped because the queue was full —
	// the shadow layer shedding itself, never the serving path.
	MRegretDropped = "sdpopt_regret_dropped_total"
	// MRegretDeduped counts shadow candidates suppressed because the same
	// fingerprint × catalog version was shadowed within the dedup window.
	MRegretDeduped = "sdpopt_regret_deduped_total"
	// MRegretShadowSeconds is the shadow re-optimization duration histogram.
	MRegretShadowSeconds = "sdpopt_regret_shadow_seconds"
	// MRegretShadowErrors counts shadow optimizations that failed (budget
	// abort, timeout); these produce no ratio sample.
	MRegretShadowErrors = "sdpopt_regret_shadow_errors_total"
	// MRegretQueueDepth gauges shadow jobs queued but not yet started.
	MRegretQueueDepth = "sdpopt_regret_queue_depth"

	// Technique-routing metrics (see internal/route).

	// MRouteDecisions counts executed routing outcomes, labeled route=
	// (the technique actually run), reason= (the router's decision reason,
	// or "explicit"), and source= (the plan-cache source label, so cache
	// hits record the route that produced them).
	MRouteDecisions = "sdpopt_route_decisions_total"
	// MRouteFallbacks counts mid-flight demotions: requests whose chosen
	// engine slice expired (or aborted on budget) and were re-run greedy.
	MRouteFallbacks = "sdpopt_route_fallbacks_total"

	// Cardinality-error robustness metrics (see internal/ce).

	// MCEEvaluations counts completed robustness evaluations — one
	// optimize-under-lie + recost-under-truth cycle — labeled tech=.
	MCEEvaluations = "sdpopt_ce_evaluations_total"
	// MCEInfeasible counts evaluations the technique could not finish
	// under the memory budget, labeled tech=.
	MCEInfeasible = "sdpopt_ce_infeasible_total"
	// MCEPlanRatio is the true-cost-over-true-optimum float histogram of
	// plans chosen under a lying estimator, labeled tech=, with
	// RatioBuckets bounds.
	MCEPlanRatio = "sdpopt_ce_plan_ratio"
	// MCEQError is the per-join-node q-error float histogram of the lying
	// model's intermediate cardinalities against the true model's,
	// labeled tech=.
	MCEQError = "sdpopt_ce_qerror"
	// MCEExecQError is the true model's q-error against actually executed
	// cardinalities (internal/exec) — validation of the truth itself.
	MCEExecQError = "sdpopt_ce_exec_qerror"

	// Cardinality-feedback metrics (see internal/feedback).

	// MFeedbackQError is the estimate-vs-actual q-error float histogram of
	// executed plan nodes, labeled kind= (relation, predicate), with
	// RatioBuckets bounds and trace-ID exemplars linking the worst lies to
	// flight-recorder entries.
	MFeedbackQError = "sdpopt_feedback_qerror"
	// MFeedbackObservations counts ledger observations recorded, labeled
	// kind=.
	MFeedbackObservations = "sdpopt_feedback_observations_total"
	// MFeedbackSampled counts /optimize requests picked for off-path
	// execution sampling.
	MFeedbackSampled = "sdpopt_feedback_sampled_total"
	// MFeedbackSkipped counts sampled requests skipped before execution
	// (too many relations, relations too large, queue full, duplicate),
	// labeled cause=.
	MFeedbackSkipped = "sdpopt_feedback_skipped_total"
	// MFeedbackExecSeconds is the off-path sample-execution duration
	// histogram (generate + run + ledger update).
	MFeedbackExecSeconds = "sdpopt_feedback_exec_seconds"
	// MFeedbackExecErrors counts sampled executions that failed; these
	// contribute no observations.
	MFeedbackExecErrors = "sdpopt_feedback_exec_errors_total"
	// MFeedbackQueueDepth gauges sampled queries queued but not yet
	// executed.
	MFeedbackQueueDepth = "sdpopt_feedback_queue_depth"
	// MFeedbackStaleObjects gauges catalog objects currently flagged stale
	// by the ledger.
	MFeedbackStaleObjects = "sdpopt_feedback_stale_objects"

	// Process metrics (see RegisterBuildInfo).

	// MBuildInfo is the constant-1 gauge carrying version/goversion/
	// gomaxprocs labels for deploy correlation.
	MBuildInfo = "sdpopt_build_info"
	// MProcessStart is the process start time in unix seconds.
	MProcessStart = "sdpopt_process_start_time_seconds"
	// MUptime is the process uptime in seconds, computed at scrape.
	MUptime = "sdpopt_process_uptime_seconds"
)
