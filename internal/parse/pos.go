package parse

import "fmt"

// lineCol renders a byte offset into src as a 1-based "line:col" position,
// the form editors and psql speak. Columns count bytes since the last
// newline — the dialect is ASCII, so bytes and characters coincide.
func lineCol(src string, off int) string {
	if off > len(src) {
		off = len(src)
	}
	line, last := 1, -1
	for i := 0; i < off; i++ {
		if src[i] == '\n' {
			line++
			last = i
		}
	}
	return fmt.Sprintf("%d:%d", line, off-last)
}
