package harness

import (
	"time"

	"sdpopt/internal/catalog"
	"sdpopt/internal/dp"
	"sdpopt/internal/plan"
	"sdpopt/internal/plancache"
	"sdpopt/internal/query"
)

// CachedTechniques wraps each technique so its optimizations go through the
// plan cache, keyed by canonical query fingerprint × technique name ×
// catalog version. Plans are cached in the canonical query frame and
// relabeled into each instance's own relation numbering, so a hit from an
// equivalent but differently-ordered instance references the right
// relations. On a hit or dedup the returned stats are replaced with the
// lookup's wall time (PlansCosted and memory zero — nothing was
// enumerated), so batch timing tables measure what serving actually paid
// rather than replaying the original miss's cost.
func CachedTechniques(pc *plancache.Cache, cat *catalog.Catalog, techs []Technique) []Technique {
	if pc == nil {
		return techs
	}
	version := cat.Fingerprint()
	out := make([]Technique, len(techs))
	for i, t := range techs {
		t := t
		out[i] = Technique{Name: t.Name, Run: func(q *query.Query) (*plan.Plan, dp.Stats, error) {
			started := time.Now()
			cn := q.Canon()
			key := plancache.Key{
				Fingerprint:    q.Fingerprint(),
				Technique:      t.Name,
				CatalogVersion: version,
			}
			p, st, src, err := pc.Do(key, func() (*plan.Plan, dp.Stats, error) {
				p, st, err := t.Run(q)
				if err != nil {
					return nil, st, err
				}
				return p.Remap(cn.RelTo, cn.EqTo), st, nil
			})
			if err != nil {
				return nil, st, err
			}
			if src != plancache.Miss {
				st = dp.Stats{Elapsed: time.Since(started)}
			}
			return p.Remap(cn.RelFrom, cn.EqFrom), st, nil
		}}
	}
	return out
}

// cached applies the config's plan cache to techs (no-op when unset).
func (c Config) cached(cat *catalog.Catalog, techs []Technique) []Technique {
	return CachedTechniques(c.Cache, cat, techs)
}
