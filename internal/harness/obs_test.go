package harness

import (
	"testing"
	"time"

	"sdpopt/internal/obs"
	"sdpopt/internal/workload"
)

// TestRunBatchWorkersRace drives the worker pool with parallelism and a
// live observer so `go test -race` exercises the concurrent paths: the
// jobs channel, the shared result matrix, and the registry's atomic
// counters/gauges fed from every worker at once.
func TestRunBatchWorkersRace(t *testing.T) {
	sink := &obs.MemSink{}
	ob := obs.New(sink)
	obs.SetDefault(ob)
	defer obs.SetDefault(nil)

	cat := workload.PaperSchema()
	qs, err := workload.Instances(workload.Spec{Cat: cat, Topology: workload.StarChain, NumRelations: 8, Seed: 7}, 6)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	techs := []Technique{TechDP(0), TechIDP(4, 0), TechSDP(0)}
	b, err := RunBatchWorkers("race", qs, techs, "DP", 4)
	if err != nil {
		t.Fatalf("RunBatchWorkers: %v", err)
	}
	if len(b.Outcomes) != 3 {
		t.Fatalf("outcomes = %d, want 3", len(b.Outcomes))
	}
	for _, o := range b.Outcomes {
		if !o.Feasible || len(o.Ratios) != len(qs) {
			t.Errorf("%s: feasible=%v ratios=%d", o.Name, o.Feasible, len(o.Ratios))
		}
	}

	// All 3×6 instances must be observed, and the queue must drain.
	if n := len(sink.ByType(obs.EvInstance)); n != 3*6 {
		t.Errorf("instance events = %d, want 18", n)
	}
	if len(sink.ByType(obs.EvBatchStart)) != 1 || len(sink.ByType(obs.EvBatchEnd)) != 1 {
		t.Error("batch start/end events missing")
	}
	if d := ob.Gauge(obs.MQueueDepth).Value(); d != 0 {
		t.Errorf("queue depth after batch = %d, want 0", d)
	}
	if got := ob.Counter(obs.MBatches).Value(); got != 1 {
		t.Errorf("batches counter = %d, want 1", got)
	}
	for _, tech := range []string{"DP", "IDP(4)", "SDP"} {
		h := ob.Histogram(obs.Label(obs.MTechniqueSeconds, "tech", tech))
		if h.Count() != 6 {
			t.Errorf("%s technique histogram count = %d, want 6", tech, h.Count())
		}
	}
}

func TestBenchReport(t *testing.T) {
	c := Config{Instances: 2, Seed: 11}
	r, err := Bench(c, time.Date(2026, 8, 5, 0, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatalf("Bench: %v", err)
	}
	if r.Date != "2026-08-05" || len(r.Batches) != 2 {
		t.Fatalf("report = %+v", r)
	}
	dir := t.TempDir()
	path, err := r.WriteFile(dir)
	if err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if want := dir + "/BENCH_2026-08-05.json"; path != want {
		t.Errorf("path = %q, want %q", path, want)
	}
	for _, b := range r.Batches {
		if len(b.Techniques) == 0 {
			t.Errorf("batch %s has no techniques", b.Graph)
		}
		for _, tech := range b.Techniques {
			if tech.Feasible && (tech.MeanPlansCosted <= 0 || tech.MeanTimeSeconds <= 0) {
				t.Errorf("%s/%s: empty overheads %+v", b.Graph, tech.Name, tech)
			}
		}
	}
	if r.Tracing == nil {
		t.Fatal("report missing tracing comparison")
	}
	tr := r.Tracing
	if tr.Graph != "Star-12" || tr.Technique != "SDP" || tr.Instances == 0 {
		t.Errorf("tracing bench = %+v", tr)
	}
	if tr.OffMeanSeconds <= 0 || tr.OnMeanSeconds <= 0 || tr.Overhead <= 0 {
		t.Errorf("tracing bench has empty measurements: %+v", tr)
	}
	if r.LargeQuery == nil {
		t.Fatal("report missing large_query section")
	}
	lq := r.LargeQuery
	if len(lq.Batches) != 3 {
		t.Fatalf("large_query batches = %d, want 3", len(lq.Batches))
	}
	byGraph := map[string]BenchBatch{}
	for _, b := range lq.Batches {
		byGraph[b.Graph] = b
	}
	for _, g := range []string{"Star-30", "Clique-25", "Chain-40"} {
		if _, ok := byGraph[g]; !ok {
			t.Fatalf("large_query missing %s batch", g)
		}
	}
	// Chain-40 is the headline: exhaustive DP via DPccp must be feasible
	// beyond 64 relations, and its enumeration must be perfectly tight
	// (every pair considered is connected), while the naive DP-size scan
	// considers an order of magnitude more pairs for the same plan work.
	var ccp, size BenchTech
	for _, tech := range byGraph["Chain-40"].Techniques {
		switch tech.Name {
		case "DP":
			ccp = tech
		case "DP-size":
			size = tech
		}
	}
	if !ccp.Feasible || !size.Feasible {
		t.Fatalf("Chain-40 DP feasibility: ccp=%+v size=%+v", ccp, size)
	}
	if ccp.MeanPairsConsidered != ccp.MeanPairsConnected {
		t.Errorf("Chain-40 DPccp considered %v != connected %v",
			ccp.MeanPairsConsidered, ccp.MeanPairsConnected)
	}
	if size.MeanPairsConsidered <= 10*ccp.MeanPairsConsidered {
		t.Errorf("Chain-40 DP-size considered %v, want >10x DPccp's %v",
			size.MeanPairsConsidered, ccp.MeanPairsConsidered)
	}
	// Clique-25 records exhaustive techniques as statically infeasible.
	for _, tech := range byGraph["Clique-25"].Techniques {
		if (tech.Name == "DP" || tech.Name == "SDP") && tech.Feasible {
			t.Errorf("Clique-25 %s marked feasible, want infeasible", tech.Name)
		}
	}
}
