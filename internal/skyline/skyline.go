// Package skyline computes skylines (maximal vectors) over small numeric
// feature vectors.
//
// SDP prunes join-composite relations by keeping only those on a skyline of
// the feature vector [Rows, Cost, Selectivity] (all minimized). The paper
// assumes "fast techniques for computing skyline functions" from the skyline
// literature; this package provides the standard ones — a linear-scan
// O(n log n) algorithm for two dimensions, block-nested-loop (BNL) and
// sort-filter-skyline (SFS) for general dimension — plus the k-dominant
// ("strong") skyline the paper's future-work section points at.
//
// Dominance is the standard strict form: a dominates b when a is no worse in
// every dimension and strictly better in at least one. Duplicated points do
// not dominate each other, so exact ties all survive. (The paper's formula
// uses non-strict ≤ throughout, which taken literally would let duplicates
// eliminate one another; we use the standard definition.)
package skyline

import "sort"

// Dominates reports whether a dominates b: a[j] ≤ b[j] for every dimension
// and a[j] < b[j] for at least one. Smaller is better in every dimension.
// It panics if the vectors have different lengths.
func Dominates(a, b []float64) bool {
	if len(a) != len(b) {
		panic("skyline: dimension mismatch")
	}
	strict := false
	for j := range a {
		if a[j] > b[j] {
			return false
		}
		if a[j] < b[j] {
			strict = true
		}
	}
	return strict
}

// BNL computes the skyline with a block-nested-loop over all pairs and
// returns a survivor mask. O(n²) worst case but simple and allocation-light;
// fine for the partition sizes SDP sees.
func BNL(pts [][]float64) []bool {
	out := make([]bool, len(pts))
	for i := range pts {
		out[i] = true
		for j := range pts {
			if j != i && Dominates(pts[j], pts[i]) {
				out[i] = false
				break
			}
		}
	}
	return out
}

// SFS computes the skyline with sort-filter-skyline: points are visited in
// ascending order of a monotone score (the coordinate sum), so a point can
// only be dominated by one already in the window. Returns a survivor mask
// aligned with pts.
func SFS(pts [][]float64) []bool {
	n := len(pts)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sum := func(p []float64) float64 {
		s := 0.0
		for _, v := range p {
			s += v
		}
		return s
	}
	sort.SliceStable(idx, func(a, b int) bool { return sum(pts[idx[a]]) < sum(pts[idx[b]]) })
	out := make([]bool, n)
	var window []int
	for _, i := range idx {
		dominated := false
		for _, w := range window {
			if Dominates(pts[w], pts[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out[i] = true
			window = append(window, i)
		}
	}
	return out
}

// TwoD computes the skyline of two-dimensional points in O(n log n): sweep
// in ascending first coordinate and keep the running minimum of the second.
// It panics if any point is not two-dimensional.
func TwoD(pts [][]float64) []bool {
	n := len(pts)
	idx := make([]int, n)
	for i := range idx {
		if len(pts[i]) != 2 {
			panic("skyline: TwoD requires 2-dimensional points")
		}
		idx[i] = i
	}
	// Sort by (x, y); within equal x, smaller y first.
	sort.SliceStable(idx, func(a, b int) bool {
		pa, pb := pts[idx[a]], pts[idx[b]]
		if pa[0] != pb[0] {
			return pa[0] < pb[0]
		}
		return pa[1] < pb[1]
	})
	out := make([]bool, n)
	bestY := 0.0
	haveBest := false
	// A point survives unless some point with smaller-or-equal x has
	// strictly smaller y, or equal y with strictly smaller x. Handling ties
	// exactly: group by x; within a group, points with y == groupMinY
	// survive if groupMinY < bestY-so-far OR they tie the global best
	// exactly (duplicates survive).
	i := 0
	for i < n {
		j := i
		x := pts[idx[i]][0]
		for j < n && pts[idx[j]][0] == x {
			j++
		}
		groupMin := pts[idx[i]][1]
		for k := i; k < j; k++ {
			y := pts[idx[k]][1]
			switch {
			case y > groupMin:
				// dominated within the group (same x, larger y)
			case haveBest && y > bestY:
				// dominated by an earlier point (smaller x, smaller y)
			case haveBest && y == bestY:
				// Equal y with strictly larger x: dominated, unless this
				// x-group contains the earlier point's exact duplicate —
				// impossible here since x strictly increased. Dominated.
			default:
				out[idx[k]] = true
			}
		}
		if !haveBest || groupMin < bestY {
			bestY, haveBest = groupMin, true
		}
		i = j
	}
	return out
}

// Of computes the skyline with the best algorithm for the dimensionality:
// the O(n log n) sweep for 2-D, SFS otherwise.
func Of(pts [][]float64) []bool {
	if len(pts) == 0 {
		return nil
	}
	if len(pts[0]) == 2 {
		return TwoD(pts)
	}
	return SFS(pts)
}

// KDominates reports whether a k-dominates b: a is no worse than b in at
// least k dimensions and strictly better in at least one of those. With
// k = len(a) this reduces to ordinary dominance.
func KDominates(a, b []float64, k int) bool {
	if len(a) != len(b) {
		panic("skyline: dimension mismatch")
	}
	noWorse, strict := 0, false
	for j := range a {
		if a[j] <= b[j] {
			noWorse++
			if a[j] < b[j] {
				strict = true
			}
		}
	}
	return noWorse >= k && strict
}

// KDominant computes the k-dominant ("strong") skyline: points not
// k-dominated by any other point. This is the stronger pruning function the
// paper's conclusion flags as future work. Note that k-dominance is not
// transitive, so the result can be empty even for non-empty input.
func KDominant(pts [][]float64, k int) []bool {
	out := make([]bool, len(pts))
	for i := range pts {
		out[i] = true
		for j := range pts {
			if j != i && KDominates(pts[j], pts[i], k) {
				out[i] = false
				break
			}
		}
	}
	return out
}

// DisjunctivePairwise computes SDP's Option-2 pruning function: for each
// listed pair of dimensions it computes the 2-D skyline of the projected
// points, and a point survives if it is on at least one of those skylines
// (paper Section 2.1.3, Table 2.2).
func DisjunctivePairwise(pts [][]float64, pairs [][2]int) []bool {
	out := make([]bool, len(pts))
	if len(pts) == 0 {
		return out
	}
	proj := make([][]float64, len(pts))
	for _, pr := range pairs {
		for i, p := range pts {
			proj[i] = []float64{p[pr[0]], p[pr[1]]}
		}
		for i, ok := range TwoD(proj) {
			if ok {
				out[i] = true
			}
		}
	}
	return out
}

// DisjunctivePairwiseMasks is DisjunctivePairwise additionally returning
// each pair's projected 2-D skyline mask, in pairs order. The observability
// layer reports per-criterion (RC/CS/RS) pruning efficacy from these
// without recomputing the skylines.
func DisjunctivePairwiseMasks(pts [][]float64, pairs [][2]int) ([]bool, [][]bool) {
	out := make([]bool, len(pts))
	masks := make([][]bool, len(pairs))
	if len(pts) == 0 {
		return out, masks
	}
	proj := make([][]float64, len(pts))
	for pi, pr := range pairs {
		for i, p := range pts {
			proj[i] = []float64{p[pr[0]], p[pr[1]]}
		}
		m := TwoD(proj)
		masks[pi] = m
		for i, ok := range m {
			if ok {
				out[i] = true
			}
		}
	}
	return out, masks
}

// RCSPairs are the attribute pairs of SDP's disjunctive skyline over the
// [Rows, Cost, Selectivity] feature vector: RC, CS and RS.
var RCSPairs = [][2]int{{0, 1}, {1, 2}, {0, 2}}

// RCSNames names RCSPairs in order, for per-criterion reporting.
var RCSNames = []string{"RC", "CS", "RS"}
