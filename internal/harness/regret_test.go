package harness

import (
	"testing"
	"time"
)

func TestBenchRegret(t *testing.T) {
	rb, err := benchRegret(Config{Instances: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rb.Graph != "Star-Chain-9" || rb.Instances != 2 || rb.Requests != 3*2*4 {
		t.Fatalf("shape: %+v", rb)
	}
	if rb.Sampled != int64(rb.Requests) || rb.Dropped != 0 || rb.Failures != 0 {
		t.Fatalf("shadow counters: %+v", rb)
	}
	if rb.OffP50Seconds <= 0 || rb.OnP99Seconds <= 0 || rb.OverheadP99 <= 0 {
		t.Fatalf("latency columns: %+v", rb)
	}
	if len(rb.Techniques) != 3 {
		t.Fatalf("techniques: %+v", rb.Techniques)
	}
	var perTech = map[string]RegretTech{}
	for _, tt := range rb.Techniques {
		perTech[tt.Name] = tt
		if tt.Reference != "dp" || tt.Samples != int64(rb.Requests/3) {
			t.Errorf("technique %q: %+v", tt.Name, tt)
		}
		// DP is the exact optimum at 9 relations, so no technique can
		// beat the reference.
		if tt.Rho < 1-1e-9 || tt.Worst < tt.Rho-1e-9 {
			t.Errorf("technique %q: rho=%v worst=%v below 1", tt.Name, tt.Rho, tt.Worst)
		}
	}
	// SDP tracks the DP optimum on star-chains of this size.
	if sdp := perTech["sdp"]; sdp.Rho > 1.01 {
		t.Errorf("sdp regret unexpectedly high: %+v", sdp)
	}
}

func TestPercentile(t *testing.T) {
	ds := []time.Duration{40, 10, 30, 20}
	if p := percentile(ds, 0.50); p != 20 {
		t.Errorf("p50 = %v", p)
	}
	if p := percentile(ds, 0.99); p != 40 {
		t.Errorf("p99 = %v", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Errorf("empty = %v", p)
	}
}
