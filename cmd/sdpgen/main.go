// Command sdpgen emits a generated workload as SQL text — the queries the
// experiments optimize, in executable form — and, optionally, the catalog
// the workload was generated against, with statistics degraded to a chosen
// health level for offline robustness experiments or tilted toward
// Zipf-skewed data generation for feedback experiments.
//
// Usage:
//
//	sdpgen -topology star -rels 15 -count 3
//	sdpgen -stats-health 0.5 -catalog-out degraded.json
//	sdpgen -skew zipf:1.3 -catalog-out skewed.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sdpopt"
)

// parseSkew parses the -skew flag: "" (no skew) or "zipf:<s>" with s > 1.
func parseSkew(s string) (float64, error) {
	if s == "" {
		return 0, nil
	}
	rest, ok := strings.CutPrefix(strings.ToLower(s), "zipf:")
	if !ok {
		return 0, fmt.Errorf("skew spec %q is not zipf:<s>", s)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil || v <= 1 {
		return 0, fmt.Errorf("zipf exponent %q must be a number > 1", rest)
	}
	return v, nil
}

func main() {
	topo := flag.String("topology", "star", "chain | star | cycle | clique | star-chain | snowflake")
	rels := flag.Int("rels", 15, "number of relations")
	preset := flag.String("preset", "", "star-30 | clique-25 | snowflake-40 — large-query presets; overrides -topology/-rels and generates against an extended schema sized to the query")
	count := flag.Int("count", 5, "number of query instances")
	seed := flag.Int64("seed", 1, "workload seed")
	ordered := flag.Bool("ordered", false, "add an ORDER BY on a join column")
	useExtended := flag.Bool("extended", false, "generate against an extended schema with one distinct relation per query slot (automatic when -rels exceeds the paper schema's 25)")
	statsHealth := flag.Float64("stats-health", 1, "fraction of columns keeping ANALYZE statistics in the emitted catalog; the rest lose NDV/skew (magic-selectivity fallback)")
	skew := flag.String("skew", "", "data-generation skew for the emitted catalog, e.g. zipf:1.3; statistics are untouched, so the estimator's uniformity assumption is measurably wrong")
	catalogOut := flag.String("catalog-out", "", "write the (possibly degraded or skewed) catalog as JSON to this file ('-' = stdout)")
	flag.Parse()

	topos := map[string]sdpopt.Topology{
		"chain": sdpopt.Chain, "star": sdpopt.Star, "cycle": sdpopt.Cycle,
		"clique": sdpopt.Clique, "star-chain": sdpopt.StarChain,
		"snowflake": sdpopt.Snowflake,
	}
	t, ok := topos[strings.ToLower(*topo)]
	if !ok {
		fmt.Fprintf(os.Stderr, "sdpgen: unknown topology %q\n", *topo)
		os.Exit(2)
	}
	// Presets are the large-query validation workloads: each names its
	// topology and width, and generates against an extended schema with one
	// distinct relation per query slot (no aliasing), which is what makes
	// them exercise the >64-relation set representation end to end.
	extended := false
	if *preset != "" {
		presets := map[string]struct {
			topo sdpopt.Topology
			name string
			rels int
		}{
			"star-30":      {sdpopt.Star, "star", 30},
			"clique-25":    {sdpopt.Clique, "clique", 25},
			"snowflake-40": {sdpopt.Snowflake, "snowflake", 40},
		}
		p, ok := presets[strings.ToLower(*preset)]
		if !ok {
			fmt.Fprintf(os.Stderr, "sdpgen: unknown preset %q (star-30 | clique-25 | snowflake-40)\n", *preset)
			os.Exit(2)
		}
		t, *rels, *topo = p.topo, p.rels, p.name
		extended = true
	}
	zipfS, err := parseSkew(*skew)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdpgen: -skew:", err)
		os.Exit(2)
	}
	if *statsHealth < 1 && *catalogOut == "" {
		fmt.Fprintln(os.Stderr, "sdpgen: -stats-health below 1 needs -catalog-out (the degradation is emitted, queries are still generated from true statistics)")
		os.Exit(2)
	}
	if zipfS > 0 && *catalogOut == "" {
		fmt.Fprintln(os.Stderr, "sdpgen: -skew needs -catalog-out (skew only affects executed data, which lives in the emitted catalog)")
		os.Exit(2)
	}
	cat := sdpopt.PaperSchema()
	if extended || *useExtended || *rels > cat.NumRelations() {
		cat = sdpopt.ExtendedSchema(*rels)
	}
	qs, err := sdpopt.Instances(sdpopt.WorkloadSpec{
		Cat: cat, Topology: t, NumRelations: *rels,
		Ordered: *ordered, Seed: *seed,
	}, *count)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdpgen:", err)
		os.Exit(1)
	}
	if *catalogOut != "" {
		out := cat
		if zipfS > 0 {
			if out, err = out.WithZipfSkew(zipfS); err != nil {
				fmt.Fprintln(os.Stderr, "sdpgen:", err)
				os.Exit(1)
			}
		}
		// Degrade after skewing: DegradeCatalog zeroes statistics but
		// preserves the Zipf data property, so both compose.
		if *statsHealth < 1 {
			if out, err = sdpopt.DegradeStats(out, *statsHealth, *seed); err != nil {
				fmt.Fprintln(os.Stderr, "sdpgen:", err)
				os.Exit(1)
			}
		}
		w := os.Stdout
		if *catalogOut != "-" {
			f, err := os.Create(*catalogOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sdpgen:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := out.WriteJSON(w); err != nil {
			fmt.Fprintln(os.Stderr, "sdpgen:", err)
			os.Exit(1)
		}
	}
	for i, q := range qs {
		fmt.Printf("-- instance %d (%s-%d)\n%s\n\n", i+1, *topo, *rels, q.SQL())
	}
}
