package regret

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sdpopt/internal/bits"
	"sdpopt/internal/catalog"
	"sdpopt/internal/dp"
	"sdpopt/internal/obs"
	"sdpopt/internal/obs/span"
	"sdpopt/internal/plan"
	"sdpopt/internal/query"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cfg := catalog.DefaultConfig()
	cfg.NumRelations = 8
	return catalog.MustSynthetic(cfg)
}

func chainQuery(t *testing.T, cat *catalog.Catalog, n int) *query.Query {
	t.Helper()
	rels := make([]int, n)
	used := make([]int, n)
	for i := range rels {
		rels[i] = i
	}
	preds := make([]query.Pred, 0, n-1)
	for i := 0; i+1 < n; i++ {
		preds = append(preds, query.Pred{
			LeftRel: i, LeftCol: used[i], RightRel: i + 1, RightCol: used[i+1],
		})
		used[i]++
		used[i+1]++
	}
	q, err := query.New(cat, rels, preds, nil)
	if err != nil {
		t.Fatalf("query.New: %v", err)
	}
	return q
}

// scanPlan returns a trivial plan whose only purpose is carrying a cost.
func scanPlan(cost float64) *plan.Plan {
	return &plan.Plan{Op: plan.SeqScan, Rels: bits.Single(0), Rel: 0, Cost: cost, Rows: 1, Order: plan.NoOrder}
}

// fixedOptimize is an OptimizeFunc returning a plan of the given cost.
func fixedOptimize(cost float64) OptimizeFunc {
	return func(ctx context.Context, technique string, q *query.Query, budget int64, workers int, ob *obs.Observer) (*plan.Plan, dp.Stats, error) {
		return scanPlan(cost), dp.Stats{}, nil
	}
}

func drain(t *testing.T, s *Shadow) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

func TestShadowMeasuresRegret(t *testing.T) {
	cat := testCatalog(t)
	q := chainQuery(t, cat, 4)
	sink := &obs.MemSink{}
	ob := obs.New(sink)
	s, err := New(Options{
		Optimize:   fixedOptimize(50),
		Obs:        ob,
		SampleRate: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	s.Observe(Sample{Query: q, Technique: "greedy", Plan: scanPlan(100), Source: "miss", TraceID: "t1"})
	drain(t, s)

	d := s.Snapshot()
	if d.Counts.Observed != 1 || d.Counts.Sampled != 1 || d.Counts.Completed != 1 || d.Counts.Failures != 0 {
		t.Fatalf("counts = %+v", d.Counts)
	}
	if len(d.Keys) != 1 {
		t.Fatalf("keys = %+v", d.Keys)
	}
	k := d.Keys[0]
	if k.Tech != "greedy" || k.Shape != "chain" || k.Band != "1-4" {
		t.Errorf("key = %+v", k.Key)
	}
	if k.Rho != 2 || k.Worst != 2 || k.Window != 1 || k.Lifetime != 1 {
		t.Errorf("summary = %+v", k)
	}
	if k.PctGood != 100 {
		t.Errorf("bucket shares = %+v", k)
	}
	if len(d.Exemplars) != 1 {
		t.Fatalf("exemplars = %+v", d.Exemplars)
	}
	ex := d.Exemplars[0]
	if ex.Ratio != 2 || ex.ServedCost != 100 || ex.RefCost != 50 || ex.Ref != "dp" {
		t.Errorf("exemplar = %+v", ex)
	}
	if ex.ServedShape == "" || ex.RefShape == "" || ex.TraceID != "t1" {
		t.Errorf("exemplar plans missing: %+v", ex)
	}

	// Metrics: the labeled ratio histogram and sample counter moved.
	h := ob.Registry.FloatHistogram(obs.Label(obs.MRegretRatio, "tech", "greedy", "shape", "chain"), nil)
	if h.Count() != 1 || h.Sum() != 2 {
		t.Errorf("ratio histogram count=%d sum=%g", h.Count(), h.Sum())
	}
	if c := ob.Counter(obs.Label(obs.MRegretSamples, "tech", "greedy")); c.Value() != 1 {
		t.Errorf("samples counter = %d", c.Value())
	}
	// Trace event with the serving trace ID attached.
	evs := sink.ByType(obs.EvRegret)
	if len(evs) != 1 || evs[0].Attrs["trace_id"] != "t1" || evs[0].Attrs["ratio"] != 2.0 {
		t.Errorf("EvRegret events = %+v", evs)
	}
}

func TestShadowSamplingRates(t *testing.T) {
	cat := testCatalog(t)
	q := chainQuery(t, cat, 3)
	s, err := New(Options{
		Optimize:      fixedOptimize(50),
		SampleRate:    0.5,
		HitSampleRate: 1,
		DedupFor:      -1, // effectively disabled: every sample may enqueue
		QueueSize:     64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 10; i++ {
		s.Observe(Sample{Query: q, Technique: "sdp", Plan: scanPlan(10), Source: "miss"})
	}
	if got := s.sampled.Load(); got != 5 {
		t.Errorf("computed sampled = %d, want 5 of 10 at rate 0.5", got)
	}
	before := s.sampled.Load()
	for i := 0; i < 4; i++ {
		s.Observe(Sample{Query: q, Technique: "sdp", Plan: scanPlan(10), Source: "hit"})
	}
	if got := s.sampled.Load() - before; got != 4 {
		t.Errorf("hit sampled = %d, want 4 of 4 at rate 1", got)
	}
	drain(t, s)
}

func TestShadowDedup(t *testing.T) {
	cat := testCatalog(t)
	q := chainQuery(t, cat, 3)
	other := chainQuery(t, cat, 4)
	s, err := New(Options{Optimize: fixedOptimize(50), SampleRate: 1, DedupFor: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 3; i++ {
		s.Observe(Sample{Query: q, Technique: "sdp", Plan: scanPlan(10), Source: "miss"})
	}
	s.Observe(Sample{Query: other, Technique: "sdp", Plan: scanPlan(10), Source: "miss"})
	drain(t, s)

	d := s.Snapshot()
	if d.Counts.Deduped != 2 || d.Counts.Enqueued != 2 {
		t.Errorf("counts = %+v, want 2 deduped / 2 enqueued", d.Counts)
	}
}

func TestShadowQueueOverflowDrops(t *testing.T) {
	cat := testCatalog(t)
	queries := []*query.Query{chainQuery(t, cat, 2), chainQuery(t, cat, 3), chainQuery(t, cat, 4), chainQuery(t, cat, 5)}
	block := make(chan struct{})
	var started atomic.Int64
	slow := func(ctx context.Context, technique string, q *query.Query, budget int64, workers int, ob *obs.Observer) (*plan.Plan, dp.Stats, error) {
		started.Add(1)
		<-block
		return scanPlan(50), dp.Stats{}, nil
	}
	s, err := New(Options{Optimize: slow, SampleRate: 1, Workers: 1, QueueSize: 1})
	if err != nil {
		t.Fatal(err)
	}

	// First job occupies the worker, second fills the queue, the rest drop.
	for _, q := range queries {
		s.Observe(Sample{Query: q, Technique: "sdp", Plan: scanPlan(10), Source: "miss"})
	}
	for started.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	if got := s.dropped.Load(); got < 1 {
		t.Errorf("dropped = %d, want >= 1", got)
	}
	if got := s.enqueued.Load(); got > 3 {
		t.Errorf("enqueued = %d with queue size 1 + 1 worker", got)
	}
	close(block)
	drain(t, s)
	s.Close()

	// Dropped jobs cleared their dedup mark, so the same query can be
	// shadowed next time around.
	d := s.Snapshot()
	if d.Counts.Enqueued != d.Counts.Completed {
		t.Errorf("enqueued %d != completed %d after drain", d.Counts.Enqueued, d.Counts.Completed)
	}
}

func TestShadowPinsWorstRegret(t *testing.T) {
	cat := testCatalog(t)
	rec := span.NewRecorder(span.RecorderOptions{SlowThreshold: time.Hour})
	s, err := New(Options{
		Optimize:   fixedOptimize(10),
		Flight:     rec,
		SampleRate: 1,
		PinRatio:   2,
		DedupFor:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Ratio 1.5: below the pin threshold, not pinned.
	s.Observe(Sample{Query: chainQuery(t, cat, 3), Technique: "greedy", Plan: scanPlan(15), Source: "miss"})
	// Ratio 3: pinned.
	s.Observe(Sample{Query: chainQuery(t, cat, 4), Technique: "greedy", Plan: scanPlan(30), Source: "miss", TraceID: "serveid"})
	drain(t, s)

	if got := s.pinned.Load(); got != 1 {
		t.Fatalf("pinned = %d, want 1", got)
	}
	fd := rec.Snapshot()
	if len(fd.Notable) != 1 || fd.Counts.Pinned != 1 {
		t.Fatalf("flight notable = %d, pinned = %d", len(fd.Notable), fd.Counts.Pinned)
	}
	rendered := fd.Notable[0].Render()
	if !strings.Contains(rendered, "regret.shadow") || !strings.Contains(rendered, "ratio=3") {
		t.Errorf("pinned trace missing regret attrs:\n%s", rendered)
	}
	if !strings.Contains(rendered, "serveid") {
		t.Errorf("pinned trace does not name the serving trace:\n%s", rendered)
	}
	// The exemplar records which shadow trace was pinned.
	var foundShadowID bool
	for _, ex := range s.Snapshot().Exemplars {
		if ex.Ratio == 3 && ex.ShadowTraceID == fd.Notable[0].TraceID {
			foundShadowID = true
		}
	}
	if !foundShadowID {
		t.Errorf("exemplar does not link the pinned shadow trace: %+v", s.Snapshot().Exemplars)
	}
}

func TestShadowWindowRolls(t *testing.T) {
	cat := testCatalog(t)
	q := chainQuery(t, cat, 3)
	var cost atomic.Int64
	cost.Store(100)
	opt := func(ctx context.Context, technique string, q *query.Query, budget int64, workers int, ob *obs.Observer) (*plan.Plan, dp.Stats, error) {
		return scanPlan(float64(cost.Load())), dp.Stats{}, nil
	}
	s, err := New(Options{Optimize: opt, SampleRate: 1, DedupFor: -1, Window: 4, TopN: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// 6 samples at ratio 2, then 4 at ratio 1: the window of 4 retains
	// only the ratio-1 tail while lifetime counts all 10.
	for i := 0; i < 6; i++ {
		s.Observe(Sample{Query: q, Technique: "idp", Plan: scanPlan(200), Source: "miss"})
		drain(t, s)
	}
	cost.Store(200)
	for i := 0; i < 4; i++ {
		s.Observe(Sample{Query: q, Technique: "idp", Plan: scanPlan(200), Source: "miss"})
		drain(t, s)
	}

	d := s.Snapshot()
	if len(d.Keys) != 1 {
		t.Fatalf("keys = %+v", d.Keys)
	}
	k := d.Keys[0]
	if k.Window != 4 || k.Lifetime != 10 {
		t.Errorf("window=%d lifetime=%d, want 4/10", k.Window, k.Lifetime)
	}
	if k.Rho != 1 || k.Worst != 1 {
		t.Errorf("rolled window should be all ratio-1: %+v", k)
	}
	// TopN capped at 2, holding the worst (ratio 2) entries.
	if len(d.Exemplars) != 2 || d.Exemplars[0].Ratio != 2 || d.Exemplars[1].Ratio != 2 {
		t.Errorf("exemplars = %+v", d.Exemplars)
	}
}

func TestShadowFailuresCounted(t *testing.T) {
	cat := testCatalog(t)
	fail := func(ctx context.Context, technique string, q *query.Query, budget int64, workers int, ob *obs.Observer) (*plan.Plan, dp.Stats, error) {
		return nil, dp.Stats{}, context.DeadlineExceeded
	}
	ob := obs.New()
	s, err := New(Options{Optimize: fail, Obs: ob, SampleRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Observe(Sample{Query: chainQuery(t, cat, 3), Technique: "sdp", Plan: scanPlan(10), Source: "miss"})
	drain(t, s)
	d := s.Snapshot()
	if d.Counts.Failures != 1 || d.Counts.Completed != 1 || len(d.Keys) != 0 {
		t.Errorf("failure accounting: %+v keys=%v", d.Counts, d.Keys)
	}
	if c := ob.Counter(obs.MRegretShadowErrors); c.Value() != 1 {
		t.Errorf("shadow error counter = %d", c.Value())
	}
}

func TestDumpRoundTripAndRender(t *testing.T) {
	cat := testCatalog(t)
	s, err := New(Options{Optimize: fixedOptimize(50), SampleRate: 1, DedupFor: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Observe(Sample{Query: chainQuery(t, cat, 4), Technique: "greedy", Plan: scanPlan(500), Source: "miss"})
	drain(t, s)

	d := s.Snapshot()
	rw := httptest.NewRecorder()
	s.JSONHandler().ServeHTTP(rw, httptest.NewRequest("GET", "/debug/regret.json", nil))
	back, err := ReadDump(rw.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Keys) != len(d.Keys) || back.Keys[0].Rho != d.Keys[0].Rho || back.Counts != d.Counts {
		t.Errorf("round trip mismatch: %+v vs %+v", back, d)
	}

	text := back.Render()
	for _, want := range []string{"greedy", "chain", "1-4", "rho=", "served (cost 500.00)", "ref    (cost 50.00)"} {
		if !strings.Contains(text, want) {
			t.Errorf("Render missing %q:\n%s", want, text)
		}
	}

	hw := httptest.NewRecorder()
	s.Handler().ServeHTTP(hw, httptest.NewRequest("GET", "/debug/regret", nil))
	for _, want := range []string{"plan-quality regret", "greedy", "regret.json"} {
		if !strings.Contains(hw.Body.String(), want) {
			t.Errorf("HTML missing %q", want)
		}
	}
}

func TestShadowNilSafety(t *testing.T) {
	var s *Shadow
	s.Observe(Sample{})
	s.Close()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if d := s.Snapshot(); len(d.Keys) != 0 {
		t.Fatal("nil snapshot not empty")
	}
	if s.Reference(5) != "sdp" {
		t.Error("nil Reference should fall back to sdp")
	}
}
