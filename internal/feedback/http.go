package feedback

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"strings"
)

// JSONHandler serves the ledger state as JSON at /debug/cardinality.json.
func (l *Ledger) JSONHandler(s *Sampler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(l.Snapshot(s))
	})
}

// Handler serves the human debug page at /debug/cardinality: the worst
// q-error table per relation/predicate with sparkline window summaries and
// staleness flags.
func (l *Ledger) Handler(s *Sampler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		d := l.Snapshot(s)
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		var b strings.Builder
		b.WriteString("<!DOCTYPE html><html><head><title>/debug/cardinality</title><style>\n")
		b.WriteString("body{font-family:sans-serif;margin:1em 2em}pre{background:#f6f8fa;padding:0.8em;overflow-x:auto}\n")
		b.WriteString("h2{border-bottom:1px solid #ccc;padding-bottom:0.2em}table{border-collapse:collapse}\n")
		b.WriteString("td,th{padding:0.15em 0.8em;text-align:left;border-bottom:1px solid #eee}\n")
		b.WriteString(".bad{color:#b00020}.warn{color:#b35c00}.spark{font-family:monospace;letter-spacing:1px}</style></head><body>\n")
		b.WriteString("<h1>sdpopt cardinality feedback</h1>\n")
		fmt.Fprintf(&b, "<p>%d observations · %d objects · %d flagged stale</p>\n",
			d.Observations, len(d.Objects), d.StaleObjects)
		fmt.Fprintf(&b, "<p>ledger window %d &middot; min obs %d &middot; stale at score &ge; %g (geomean q-error &ge; %.2g)</p>\n",
			d.Config.Window, d.Config.MinObs, d.Config.StaleScore, staleQErr(d.Config.StaleScore))
		if d.Sampler != nil {
			fmt.Fprintf(&b, "<p>exec sampler: %d observed &middot; %d sampled &middot; %d skipped &middot; %d deduped &middot; %d dropped &middot; %d completed (%d failed)</p>\n",
				d.Sampler.Observed, d.Sampler.Sampled, d.Sampler.Skipped, d.Sampler.Deduped,
				d.Sampler.Dropped, d.Sampler.Completed, d.Sampler.Failures)
		}
		b.WriteString("<p><a href=\"/debug/cardinality.json\">cardinality.json</a> · <a href=\"/debug\">debug index</a> · <a href=\"/metrics\">metrics</a></p>\n")

		b.WriteString("<h2>Objects by worst q-error</h2>\n")
		if len(d.Objects) == 0 {
			b.WriteString("<p>no observations yet — is exec sampling enabled (<code>-exec-sample-rate</code>)?</p>\n")
		} else {
			b.WriteString("<table><tr><th>object</th><th>kind</th><th>count</th><th>over</th><th>under</th>" +
				"<th>q-err p50</th><th>q-err p95</th><th>q-err max</th><th>staleness</th><th>flag</th>" +
				"<th>last est/actual</th><th>window</th></tr>\n")
			for _, o := range d.Objects {
				class := ""
				switch {
				case o.Stale:
					class = " class=\"bad\""
				case o.QErrP95 > 2:
					class = " class=\"warn\""
				}
				flag := ""
				if o.Stale {
					flag = "STALE"
				}
				fmt.Fprintf(&b, "<tr%s><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%d</td>"+
					"<td>%.2f</td><td>%.2f</td><td>%.2f</td><td>%.2f</td><td>%s</td>"+
					"<td>%.0f / %.0f</td><td class=\"spark\">%s</td></tr>\n",
					class, html.EscapeString(o.Object), html.EscapeString(o.Kind),
					o.Count, o.Over, o.Under, o.QErrP50, o.QErrP95, o.QErrMax,
					o.Staleness, flag, o.LastEst, o.LastActual,
					html.EscapeString(sparkline(o.RecentQErr)))
			}
			b.WriteString("</table>\n")
		}
		b.WriteString("</body></html>\n")
		_, _ = w.Write([]byte(b.String()))
	})
}
