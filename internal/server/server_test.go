package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"sdpopt/internal/obs"
	"sdpopt/internal/obs/regret"
	"sdpopt/internal/plancache"
	"sdpopt/internal/quality"
	"sdpopt/internal/workload"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Cat == nil {
		opts.Cat = workload.PaperSchema()
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postOptimize(t *testing.T, url string, req OptimizeRequest) (int, *OptimizeResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out OptimizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("bad response body: %v", err)
	}
	return resp.StatusCode, &out
}

const testSQL = "SELECT * FROM R1 a, R2 b, R3 c WHERE a.c1 = b.c1 AND b.c2 = c.c2 AND c.c3 < 100 ORDER BY a.c1"

func TestOptimizeSQLMissThenHit(t *testing.T) {
	ob := obs.New()
	cache := plancache.New(plancache.Options{Obs: ob})
	_, ts := newTestServer(t, Options{Cache: cache, Obs: ob})

	code, first := postOptimize(t, ts.URL, OptimizeRequest{SQL: testSQL, Explain: true})
	if code != http.StatusOK {
		t.Fatalf("first request: code %d, error %q", code, first.Error)
	}
	if first.Source != "miss" || first.Cached || first.Cost <= 0 || first.Shape == "" || first.Explain == "" {
		t.Fatalf("first response: %+v", first)
	}
	if first.Technique != "sdp" {
		t.Fatalf("default technique = %q, want sdp", first.Technique)
	}

	code, second := postOptimize(t, ts.URL, OptimizeRequest{SQL: testSQL})
	if code != http.StatusOK || second.Source != "hit" || !second.Cached {
		t.Fatalf("second response: code %d, %+v", code, second)
	}
	if second.Fingerprint != first.Fingerprint || second.Cost != first.Cost {
		t.Fatalf("hit diverges from miss: %+v vs %+v", second, first)
	}

	// The repeated query must be observable as a hit in /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		obs.MCacheHits + " 1",
		obs.MCacheMisses + " 1",
		obs.MCacheEntries + " 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestOptimizeQueryJSON(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := OptimizeRequest{
		Technique: "dp",
		Query: &QuerySpec{
			Rels: []int{1, 2, 3},
			Preds: []PredSpec{
				{LeftRel: 0, LeftCol: 0, RightRel: 1, RightCol: 0},
				{LeftRel: 1, LeftCol: 1, RightRel: 2, RightCol: 1},
			},
			Filters: []FilterSpec{{Rel: 2, Col: 2, Bound: 100}},
			OrderBy: &OrderSpec{Rel: 0, Col: 0},
		},
	}
	code, resp := postOptimize(t, ts.URL, req)
	if code != http.StatusOK || resp.Cost <= 0 || resp.Source != "uncached" {
		t.Fatalf("code %d, %+v", code, resp)
	}
	if len(resp.Rels) != 3 {
		t.Fatalf("rels = %v", resp.Rels)
	}
}

// The SQL and query-JSON spellings of the same query must share a
// fingerprint (and therefore a cache entry).
func TestSQLAndJSONShareFingerprint(t *testing.T) {
	ob := obs.New()
	cache := plancache.New(plancache.Options{Obs: ob})
	_, ts := newTestServer(t, Options{Cache: cache, Obs: ob})

	_, viaSQL := postOptimize(t, ts.URL, OptimizeRequest{SQL: "SELECT * FROM R1 a, R2 b WHERE a.c1 = b.c1"})
	_, viaJSON := postOptimize(t, ts.URL, OptimizeRequest{Query: &QuerySpec{
		Rels:  []int{1, 0}, // R2, R1 — reversed order: fingerprinting must not care
		Preds: []PredSpec{{LeftRel: 1, LeftCol: 0, RightRel: 0, RightCol: 0}},
	}})
	if viaSQL.Fingerprint != viaJSON.Fingerprint {
		t.Fatalf("fingerprints differ: %s vs %s", viaSQL.Fingerprint, viaJSON.Fingerprint)
	}
	if viaJSON.Source != "hit" {
		t.Fatalf("JSON spelling source = %q, want hit", viaJSON.Source)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name     string
		req      OptimizeRequest
		wantCode int
		wantMsg  string
	}{
		{"bad sql position", OptimizeRequest{SQL: "SELECT *\nFROM R1 a\nWHERE a.nope < 3"}, 400, "3:9"},
		{"unknown technique", OptimizeRequest{SQL: testSQL, Technique: "quantum"}, 400, "unknown technique"},
		{"neither sql nor query", OptimizeRequest{}, 400, "neither"},
		{"both sql and query", OptimizeRequest{SQL: testSQL, Query: &QuerySpec{Rels: []int{1}}}, 400, "both"},
		{"bad query shape", OptimizeRequest{Query: &QuerySpec{Rels: []int{1, 2}}}, 400, ""},
	}
	for _, c := range cases {
		code, resp := postOptimize(t, ts.URL, c.req)
		if code != c.wantCode {
			t.Errorf("%s: code %d, want %d (%+v)", c.name, code, c.wantCode, resp)
			continue
		}
		if c.wantMsg != "" && !strings.Contains(resp.Error, c.wantMsg) {
			t.Errorf("%s: error %q does not contain %q", c.name, resp.Error, c.wantMsg)
		}
	}
}

func TestTimeoutMaps504(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	// Exhaustive DP on a 15-relation star takes far longer than 1 ms.
	qs, err := workload.Instances(workload.Spec{
		Cat: workload.PaperSchema(), Topology: workload.Star, NumRelations: 15, Seed: 3,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	code, resp := postOptimize(t, ts.URL, OptimizeRequest{
		SQL: qs[0].SQL(), Technique: "dp", TimeoutMS: 1, NoCache: true,
	})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("code %d (%+v), want 504", code, resp)
	}
	if !strings.Contains(resp.Error, "canceled") {
		t.Fatalf("error %q does not mention cancellation", resp.Error)
	}
}

func TestBudgetAbortIs200(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	qs, err := workload.Instances(workload.Spec{
		Cat: workload.PaperSchema(), Topology: workload.Star, NumRelations: 15, Seed: 3,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 1 MB is far below DP's appetite on a 15-star: the paper's
	// infeasible outcome, reported as a successful measurement.
	code, resp := postOptimize(t, ts.URL, OptimizeRequest{
		SQL: qs[0].SQL(), Technique: "dp", BudgetMB: 1, NoCache: true,
	})
	if code != http.StatusOK || !resp.BudgetExceeded {
		t.Fatalf("code %d, %+v; want 200 with budget_exceeded", code, resp)
	}
	if resp.Stats == nil || resp.Stats.ClassesCreated == 0 {
		t.Fatalf("budget abort lost its stats: %+v", resp.Stats)
	}
}

// TestShedding saturates a 1-slot, 0-queue server with a slow request and
// verifies the next request is shed with 429.
func TestShedding(t *testing.T) {
	ob := obs.New()
	s, ts := newTestServer(t, Options{MaxConcurrent: 1, MaxQueue: 1, Obs: ob})

	qs, err := workload.Instances(workload.Spec{
		Cat: workload.PaperSchema(), Topology: workload.Star, NumRelations: 14, Seed: 5,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	slow := OptimizeRequest{SQL: qs[0].SQL(), Technique: "dp", TimeoutMS: 2000, NoCache: true}

	var wg sync.WaitGroup
	results := make([]int, 6)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, _ := postOptimize(t, ts.URL, slow)
			results[i] = code
		}(i)
		// Stagger so the first request holds the slot before the rest pile
		// up; poll the server's own admission state rather than sleeping.
		if i == 0 {
			deadline := time.Now().Add(5 * time.Second)
			for s.InFlight() == 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
		}
	}
	wg.Wait()

	shed := 0
	for _, code := range results {
		if code == http.StatusTooManyRequests {
			shed++
		}
	}
	// Capacity is 1 executing + 1 queued; of 6 requests at least 4 must be
	// shed (exact counts depend on completion timing).
	if shed < 4 {
		t.Fatalf("results %v: %d shed, want >= 4", results, shed)
	}
}

// TestConcurrentSingleflight fires identical requests at once and verifies
// exactly one underlying optimization ran, via the obs counters.
func TestConcurrentSingleflight(t *testing.T) {
	ob := obs.New()
	cache := plancache.New(plancache.Options{Obs: ob})
	_, ts := newTestServer(t, Options{Cache: cache, Obs: ob, MaxConcurrent: 16, MaxQueue: 32})

	const n = 12
	var wg sync.WaitGroup
	codes := make([]int, n)
	sources := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, resp := postOptimize(t, ts.URL, OptimizeRequest{SQL: testSQL})
			codes[i], sources[i] = code, resp.Source
		}(i)
	}
	wg.Wait()

	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d: code %d (source %q)", i, code, sources[i])
		}
	}
	ct := cache.Counts()
	if ct.Misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 (counts %+v, sources %v)", ct.Misses, ct, sources)
	}
	if ct.Hits+ct.Dedups != n-1 {
		t.Fatalf("hits %d + dedups %d != %d", ct.Hits, ct.Dedups, n-1)
	}
	// MOptimizations counts completed engine runs; the singleflight must
	// have let exactly one through. Sum the labeled series off /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	optimizations := 0
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.HasPrefix(line, obs.MOptimizations) {
			var v float64
			if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%g", &v); err == nil {
				optimizations += int(v)
			}
		}
	}
	if optimizations != 1 {
		t.Fatalf("underlying optimizations = %d, want exactly 1\n%s", optimizations, metrics)
	}
}

func TestHealthzAndCatalog(t *testing.T) {
	cache := plancache.New(plancache.Options{})
	s, ts := newTestServer(t, Options{Cache: cache})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status         string   `json:"status"`
		CatalogVersion string   `json:"catalog_version"`
		Techniques     []string `json:"techniques"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.CatalogVersion == "" || len(health.Techniques) == 0 {
		t.Fatalf("healthz: %+v", health)
	}

	resp, err = http.Get(ts.URL + "/catalog")
	if err != nil {
		t.Fatal(err)
	}
	var cat struct {
		Version string          `json:"version"`
		Catalog json.RawMessage `json:"catalog"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cat); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cat.Version != health.CatalogVersion || len(cat.Catalog) < 2 {
		t.Fatalf("catalog: version %q, %d bytes", cat.Version, len(cat.Catalog))
	}
	_ = s
}

func TestStartShutdown(t *testing.T) {
	cache := plancache.New(plancache.Options{})
	s, err := New(Options{Cat: workload.PaperSchema(), Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz over Start: %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Fatal("server still answering after Shutdown")
	}
}

// TestAllTechniques smoke-tests every dispatch arm over HTTP.
func TestAllTechniques(t *testing.T) {
	cache := plancache.New(plancache.Options{})
	_, ts := newTestServer(t, Options{Cache: cache})
	for _, tech := range Techniques() {
		code, resp := postOptimize(t, ts.URL, OptimizeRequest{SQL: testSQL, Technique: tech})
		if code != http.StatusOK || resp.Cost <= 0 {
			t.Errorf("technique %q: code %d, %+v", tech, code, resp)
		}
	}
}

// TestCacheHitRelabelsAcrossSpellings: a cache hit may come from a
// semantically equivalent spelling whose query-local relation numbering
// differs from the requester's. The served plan must name the requesting
// query's relations. Relabeling preserves the catalog relation behind every
// leaf, so the hit must render exactly the caching spelling's Shape —
// before the fix it rendered the cacher's indexes under the requester's
// names, misattributing every scan.
func TestCacheHitRelabelsAcrossSpellings(t *testing.T) {
	cache := plancache.New(plancache.Options{})
	_, ts := newTestServer(t, Options{Cache: cache})

	// Warm the cache with the SQL spelling: relation order R1, R2, R3.
	code, warm := postOptimize(t, ts.URL, OptimizeRequest{SQL: testSQL, Explain: true})
	if code != http.StatusOK || warm.Source != "miss" {
		t.Fatalf("warmup: code %d, %+v", code, warm)
	}

	// The same query with its relation list reversed: R3, R2, R1.
	reversed := OptimizeRequest{Explain: true, Query: &QuerySpec{
		Rels: []int{2, 1, 0},
		Preds: []PredSpec{
			{LeftRel: 2, LeftCol: 0, RightRel: 1, RightCol: 0},
			{LeftRel: 1, LeftCol: 1, RightRel: 0, RightCol: 1},
		},
		Filters: []FilterSpec{{Rel: 0, Col: 2, Bound: 100}},
		OrderBy: &OrderSpec{Rel: 2, Col: 0},
	}}
	code, hit := postOptimize(t, ts.URL, reversed)
	if code != http.StatusOK || hit.Source != "hit" {
		t.Fatalf("reversed spelling: code %d, %+v", code, hit)
	}
	if hit.Fingerprint != warm.Fingerprint {
		t.Fatalf("fingerprints differ: %s vs %s", hit.Fingerprint, warm.Fingerprint)
	}
	if hit.Shape != warm.Shape {
		t.Fatalf("hit misattributes relations:\nhit    %s\ncached %s", hit.Shape, warm.Shape)
	}
	if hit.Cost != warm.Cost {
		t.Fatalf("hit cost %g != cached cost %g", hit.Cost, warm.Cost)
	}
	// Equivalence-class ids are query-local too: the two spellings assign
	// the classes {a.c1, b.c1} and {b.c2, c.c2} opposite ids (query.New
	// numbers classes by their lowest (rel, col) member), so the hit's
	// EXPLAIN must be the warm EXPLAIN with ec0 and ec1 exchanged.
	wantExplain := strings.NewReplacer("order=ec0", "order=ecX", "order=ec1", "order=ec0").Replace(warm.Explain)
	wantExplain = strings.ReplaceAll(wantExplain, "order=ecX", "order=ec1")
	if hit.Explain != wantExplain {
		t.Fatalf("hit EXPLAIN not relabeled into the requester's classes:\n%s\nwant\n%s", hit.Explain, wantExplain)
	}
	if len(hit.Rels) != 3 || hit.Rels[0] != "R3" || hit.Rels[2] != "R1" {
		t.Fatalf("rels not in the requester's order: %v", hit.Rels)
	}
}

// TestCachedComputeDetachedFromRequestDeadline: a cache-filling compute is
// shared property — the triggering caller's tiny timeout_ms must not abort
// it (previously the flight inherited that deadline, 504ing every waiter
// and leaving nothing cached).
func TestCachedComputeDetachedFromRequestDeadline(t *testing.T) {
	cache := plancache.New(plancache.Options{})
	_, ts := newTestServer(t, Options{Cache: cache})
	qs, err := workload.Instances(workload.Spec{
		Cat: workload.PaperSchema(), Topology: workload.Star, NumRelations: 12, Seed: 3,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive DP on a 12-star needs ~half a second, far beyond 1 ms; the
	// detached compute still runs to completion under the server-wide cap.
	code, resp := postOptimize(t, ts.URL, OptimizeRequest{
		SQL: qs[0].SQL(), Technique: "dp", TimeoutMS: 1,
	})
	if code != http.StatusOK || resp.Source != "miss" || resp.Cost <= 0 {
		t.Fatalf("short-deadline filler: code %d, %+v", code, resp)
	}
	code, resp = postOptimize(t, ts.URL, OptimizeRequest{SQL: qs[0].SQL(), Technique: "dp"})
	if code != http.StatusOK || resp.Source != "hit" {
		t.Fatalf("follow-up: code %d, source %q — the filler's result was not cached", code, resp.Source)
	}
}

// TestBudgetOverrideBypassesCache: budget_mb overrides neither read nor
// write cache entries, so a response can never depend on which budget an
// earlier caller happened to use.
func TestBudgetOverrideBypassesCache(t *testing.T) {
	cache := plancache.New(plancache.Options{})
	_, ts := newTestServer(t, Options{Cache: cache})

	code, warm := postOptimize(t, ts.URL, OptimizeRequest{SQL: testSQL})
	if code != http.StatusOK || warm.Source != "miss" {
		t.Fatalf("warmup: code %d, %+v", code, warm)
	}
	code, over := postOptimize(t, ts.URL, OptimizeRequest{SQL: testSQL, BudgetMB: 64})
	if code != http.StatusOK || over.Source != "uncached" {
		t.Fatalf("override: code %d, source %q, want uncached", code, over.Source)
	}
	code, again := postOptimize(t, ts.URL, OptimizeRequest{SQL: testSQL})
	if code != http.StatusOK || again.Source != "hit" {
		t.Fatalf("post-override: code %d, source %q, want hit", code, again.Source)
	}
	if ct := cache.Counts(); ct.Entries != 1 || ct.Misses != 1 {
		t.Fatalf("override touched the cache: %+v", ct)
	}
}

func TestWorkersField(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	max := 2 * runtime.GOMAXPROCS(0)

	// Valid: identical result to the sequential default, by the parallel
	// engine's determinism contract.
	_, seq := postOptimize(t, ts.URL, OptimizeRequest{SQL: testSQL, Technique: "dp"})
	code, par := postOptimize(t, ts.URL, OptimizeRequest{SQL: testSQL, Technique: "dp", Workers: max})
	if code != http.StatusOK {
		t.Fatalf("workers=%d: code %d, error %q", max, code, par.Error)
	}
	if par.Cost != seq.Cost || par.Shape != seq.Shape {
		t.Errorf("parallel result diverged: cost %g/%q vs %g/%q", par.Cost, par.Shape, seq.Cost, seq.Shape)
	}
	if par.Stats.PlansCosted != seq.Stats.PlansCosted {
		t.Errorf("plans costed diverged: %d vs %d", par.Stats.PlansCosted, seq.Stats.PlansCosted)
	}

	// Out of range: 400, not a silent clamp.
	for _, workers := range []int{-1, max + 1} {
		code, resp := postOptimize(t, ts.URL, OptimizeRequest{SQL: testSQL, Workers: workers})
		if code != http.StatusBadRequest {
			t.Errorf("workers=%d: code %d, want 400 (%+v)", workers, code, resp)
		} else if !strings.Contains(resp.Error, "workers") {
			t.Errorf("workers=%d: error %q does not mention workers", workers, resp.Error)
		}
	}
}

func TestServerWorkersOptionValidated(t *testing.T) {
	_, err := New(Options{Cat: workload.PaperSchema(), Workers: 2*runtime.GOMAXPROCS(0) + 1})
	if err == nil {
		t.Fatal("New accepted an out-of-range Workers default")
	}
}

// The server wires the regret shadow end to end: sampled serves are
// re-optimized in the background, /debug/regret(.json) reports windows that
// match an offline internal/quality recomputation, and the regret and
// build-info metrics reach /metrics.
func TestServerRegretShadow(t *testing.T) {
	ob := obs.New()
	cache := plancache.New(plancache.Options{Obs: ob})
	srv, ts := newTestServer(t, Options{
		Cache: cache,
		Obs:   ob,
		Regret: &regret.Options{
			SampleRate:    1,
			HitSampleRate: 1,
			DedupFor:      -1, // measure every serve, including repeats
			Workers:       2,
			PinRatio:      1, // pin every measured shadow trace
		},
	})

	// A 6-relation star-chain served by greedy twice (miss, then hit) and
	// the 3-relation chain served by the SDP default once.
	const starChain = "SELECT * FROM R1 a, R2 b, R3 c, R4 d, R5 e, R6 f " +
		"WHERE a.c1 = b.c1 AND a.c2 = c.c2 AND a.c3 = d.c3 AND d.c4 = e.c4 AND e.c5 = f.c5"
	for i, req := range []OptimizeRequest{
		{SQL: starChain, Technique: "greedy"},
		{SQL: starChain, Technique: "greedy"},
		{SQL: testSQL},
	} {
		if code, resp := postOptimize(t, ts.URL, req); code != http.StatusOK {
			t.Fatalf("request %d: code %d, error %q", i, code, resp.Error)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Regret().Drain(ctx); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/debug/regret.json")
	if err != nil {
		t.Fatal(err)
	}
	dump, err := regret.ReadDump(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	c := dump.Counts
	if c.Observed != 3 || c.Sampled != 3 || c.Deduped != 0 || c.Dropped != 0 {
		t.Fatalf("sampling counts: %+v", c)
	}
	if c.Completed != 3 || c.Failures != 0 {
		t.Fatalf("shadow completion: %+v", c)
	}
	if c.Pinned == 0 {
		t.Errorf("no shadow traces pinned despite PinRatio 1: %+v", c)
	}

	keys := map[regret.Key]regret.KeySummary{}
	for _, k := range dump.Keys {
		keys[k.Key] = k
	}
	g, ok := keys[regret.Key{Tech: "greedy", Shape: "star-chain", Band: "5-8"}]
	if !ok || g.Lifetime != 2 || g.Window != 2 {
		t.Fatalf("greedy star-chain window missing or wrong: %+v (keys %+v)", g, dump.Keys)
	}
	sd, ok := keys[regret.Key{Tech: "sdp", Shape: "chain", Band: "1-4"}]
	if !ok || sd.Lifetime != 1 || sd.Window != 1 {
		t.Fatalf("sdp chain window missing or wrong: %+v (keys %+v)", sd, dump.Keys)
	}
	for _, k := range dump.Keys {
		if k.Rho < 1-1e-9 || k.Worst < k.Rho-1e-9 {
			t.Errorf("key %+v: rho=%v worst=%v — the reference should never cost more than the served plan", k.Key, k.Rho, k.Worst)
		}
	}

	// The served windows must match an offline recomputation from the
	// retained exemplars (TopN's default retains all three samples here).
	byKey := map[regret.Key][]float64{}
	for _, ex := range dump.Exemplars {
		k := regret.Key{Tech: ex.Tech, Shape: ex.Shape, Band: ex.Band}
		byKey[k] = append(byKey[k], ex.Ratio)
		if ex.ServedShape == "" || ex.RefShape == "" || ex.TraceID == "" {
			t.Errorf("exemplar missing plan trees or trace link: %+v", ex)
		}
	}
	for key, k := range keys {
		ratios := byKey[key]
		if len(ratios) != k.Window {
			t.Fatalf("key %+v: %d exemplars for a window of %d", key, len(ratios), k.Window)
		}
		sum, err := quality.SummarizeRelative(ratios)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sum.Rho-k.Rho) > 1e-9 || math.Abs(sum.Worst-k.Worst) > 1e-9 {
			t.Errorf("key %+v: served rho=%v worst=%v, offline rho=%v worst=%v",
				key, k.Rho, k.Worst, sum.Rho, sum.Worst)
		}
	}

	// Regret and build-info metrics reach /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		obs.MRegretRatio, obs.MRegretSamples, obs.MRegretQueueDepth,
		obs.MBuildInfo, obs.MUptime,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The HTML page serves, and the pinned shadow traces appear in the
	// flight recorder's debug page.
	hresp, err := http.Get(ts.URL + "/debug/regret")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || !strings.Contains(string(page), "plan-quality regret") {
		t.Fatalf("/debug/regret: code %d, body %.200s", hresp.StatusCode, page)
	}
	rresp, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	reqPage, _ := io.ReadAll(rresp.Body)
	rresp.Body.Close()
	if !strings.Contains(string(reqPage), "pinned") || !strings.Contains(string(reqPage), "regret.shadow") {
		t.Errorf("/debug/requests does not show the pinned shadow traces: %.300s", reqPage)
	}
}

// An unconfigured server carries a nil shadow: no /debug/regret routes, and
// the nil accessor is safe to drain and snapshot.
func TestServerRegretDisabled(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	if srv.Regret() != nil {
		t.Fatal("shadow built without Options.Regret")
	}
	resp, err := http.Get(ts.URL + "/debug/regret")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/regret on a shadowless server: code %d, want 404", resp.StatusCode)
	}
	if d := srv.Regret().Snapshot(); d == nil || len(d.Keys) != 0 {
		t.Fatalf("nil shadow snapshot: %+v", d)
	}
}
