package memo

import (
	"sort"
	"sync"
	"sync/atomic"

	"sdpopt/internal/bits"
	"sdpopt/internal/plan"
)

// numShards is the stripe count of the Sharded staging table. 64 stripes
// keep the expected collision probability low for any plausible worker
// count while the whole shard array still fits in a few cache lines of
// mutex state.
const numShards = 64

// Sharded is a mutex-striped concurrent staging table for one enumeration
// level of the parallel engine (internal/pardp). Workers publish candidate
// classes and plans into it while a level runs; at the level barrier the
// engine drains it — in canonical set order — into the real Memo.
//
// The table enforces the same dominance rule as Memo.AddPlan with the same
// plan.Compare tie-breaking, so the staged winners are a function of the
// candidate set alone: whatever interleaving the workers ran under, draining
// reproduces exactly the class contents the sequential engine would have
// built. Staging keeps the Memo itself single-threaded — its budget
// accounting, level table and statistics never need a lock.
type Sharded struct {
	shards    [numShards]mapShard
	contended atomic.Int64
}

type mapShard struct {
	mu sync.Mutex
	m  map[bits.Set]*Staged
}

// NewSharded returns an empty staging table.
func NewSharded() *Sharded {
	s := &Sharded{}
	for i := range s.shards {
		s.shards[i].m = make(map[bits.Set]*Staged)
	}
	return s
}

// Staged is one candidate class accumulating in the staging table.
type Staged struct {
	// Set is the base relations the candidate class covers.
	Set bits.Set
	// Rows and Sel are the class's shared cardinality features, computed by
	// whichever worker first saw the set (canonical per set — see
	// cost.SetRows — so any worker computes the same values).
	Rows, Sel float64

	mu      sync.Mutex
	best    *plan.Plan
	ordered []OrderedPlan
}

// shardOf spreads sets across stripes with the set's word-mixing Fibonacci
// hash; the high bits select the shard.
func shardOf(set bits.Set) int {
	return int(set.Hash() >> 58) // 6 bits = numShards
}

// Get returns the staged class for set, creating it on first sight with the
// features callback (invoked under the shard lock, at most once per set).
// It reports whether this call created the class. Safe for concurrent use.
func (s *Sharded) Get(set bits.Set, features func() (rows, sel float64)) (*Staged, bool) {
	sh := &s.shards[shardOf(set)]
	s.lock(sh)
	if st := sh.m[set]; st != nil {
		sh.mu.Unlock()
		return st, false
	}
	rows, sel := features()
	st := &Staged{Set: set, Rows: rows, Sel: sel}
	sh.m[set] = st
	sh.mu.Unlock()
	return st, true
}

// lock acquires a shard's mutex, counting acquisitions that had to wait —
// the contention signal exported as obs.MParShardContended.
func (s *Sharded) lock(sh *mapShard) {
	if !sh.mu.TryLock() {
		s.contended.Add(1)
		sh.mu.Lock()
	}
}

// Offer folds candidate p into the staged class under Memo.AddPlan's
// dominance rule and returns the retained-path delta (for the caller's
// running simulated-memory estimate; it can be negative when a new best
// displaces an ordered path it also covers). Safe for concurrent use.
func (st *Staged) Offer(p *plan.Plan) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	before := st.numPaths()
	kept := false
	if st.best == nil || better(p, st.best) {
		st.best = p
		kept = true
	}
	if p.Order != plan.NoOrder {
		if cur, ok := orderedGet(st.ordered, p.Order); !ok || better(p, cur) {
			st.ordered = orderedPut(st.ordered, p.Order, p)
			kept = true
		}
	}
	if kept && st.best.Order != plan.NoOrder {
		if cur, ok := orderedGet(st.ordered, st.best.Order); !ok || better(st.best, cur) {
			st.ordered = orderedPut(st.ordered, st.best.Order, st.best)
		}
	}
	return st.numPaths() - before
}

func (st *Staged) numPaths() int {
	return orderedNumPaths(st.best, st.ordered)
}

// Plans returns the staged winners — the best plan first, then the ordered
// plans in ascending order id. Offering this sequence to a fresh Memo class
// reproduces exactly the class state the sequential engine ends a level
// with. Call only from the drained (single-threaded) side of the barrier.
func (st *Staged) Plans() []*plan.Plan {
	return orderedAppendPaths(make([]*plan.Plan, 0, 1+len(st.ordered)), st.best, st.ordered)
}

// Drain returns every staged class in canonical set order. Call only after
// all workers have stopped publishing (the level barrier).
func (s *Sharded) Drain() []*Staged {
	var out []*Staged
	for i := range s.shards {
		for _, st := range s.shards[i].m {
			out = append(out, st)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Set.Less(out[j].Set) })
	return out
}

// Contended returns the number of shard-lock acquisitions that had to wait.
func (s *Sharded) Contended() int64 { return s.contended.Load() }
