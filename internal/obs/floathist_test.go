package obs

import (
	"bytes"
	"math"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

func TestFloatHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.FloatHistogram("sdpopt_test_ratio", nil) // RatioBuckets
	// Exact threshold values land at-or-below their bound (le semantics).
	for _, v := range []float64{1, 1.01, 2, 10, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if got := h.Sum(); got != 1014.01 {
		t.Fatalf("Sum = %g, want 1014.01", got)
	}
	// Cumulative counts at the paper's quality thresholds.
	counts := map[float64]int64{}
	cum := int64(0)
	for i, ub := range h.bounds {
		cum += h.buckets[i].Load()
		counts[ub] = cum
	}
	if counts[1.01] != 2 || counts[2] != 3 || counts[10] != 4 || counts[100] != 4 {
		t.Fatalf("cumulative counts = %v", counts)
	}
	if got := cum + h.buckets[len(h.bounds)].Load(); got != 5 {
		t.Fatalf("total incl. overflow = %d, want 5", got)
	}
}

func TestFloatHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.FloatHistogram(Label("sdpopt_test_ratio", "tech", "greedy"), []float64{1, 2})
	h.ObserveExemplar(1.5, "cafe")
	h.Observe(3)

	var om bytes.Buffer
	if err := r.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	out := om.String()
	for _, want := range []string{
		"# TYPE sdpopt_test_ratio histogram",
		`sdpopt_test_ratio_bucket{tech="greedy",le="2"} 1 # {trace_id="cafe"} 1.5`,
		`sdpopt_test_ratio_bucket{tech="greedy",le="+Inf"} 2`,
		`sdpopt_test_ratio_sum{tech="greedy"} 4.5`,
		`sdpopt_test_ratio_count{tech="greedy"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Classic exposition never carries the exemplar.
	var classic bytes.Buffer
	if err := r.WritePrometheus(&classic); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(classic.String(), "cafe") {
		t.Error("classic exposition leaked a float exemplar")
	}

	// Registry-wide exemplar view includes the float histogram.
	found := false
	for _, info := range r.Exemplars() {
		if info.TraceID == "cafe" && info.Value == "1.5" && info.LE == "2" {
			found = true
		}
	}
	if !found {
		t.Errorf("Registry.Exemplars() missing float exemplar: %+v", r.Exemplars())
	}

	// Nil safety.
	var nilH *FloatHistogram
	nilH.ObserveExemplar(1, "x")
	if nilH.Count() != 0 || nilH.Sum() != 0 || nilH.Exemplars() != nil {
		t.Error("nil FloatHistogram not inert")
	}
	var nilR *Registry
	if nilR.FloatHistogram("x", nil) != nil {
		t.Error("nil registry handed out a float histogram")
	}
}

func TestFloatHistogramQuantile(t *testing.T) {
	r := NewRegistry()

	// Empty histogram: every quantile is 0, never NaN.
	h := r.FloatHistogram("sdpopt_test_q_empty", nil)
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if got := h.Quantile(q); got != 0 || got != got {
			t.Fatalf("empty Quantile(%g) = %v, want 0", q, got)
		}
	}

	// Single observation: all quantiles land inside its bucket.
	h1 := r.FloatHistogram("sdpopt_test_q_one", nil)
	h1.Observe(1.3) // bucket (1.25, 1.5]
	for _, q := range []float64{0, 0.5, 1} {
		got := h1.Quantile(q)
		if got != got {
			t.Fatalf("single-obs Quantile(%g) is NaN", q)
		}
		if got < 1.25 || got > 1.5 {
			t.Fatalf("single-obs Quantile(%g) = %g, want within (1.25, 1.5]", q, got)
		}
	}

	// All-equal observations: every quantile agrees.
	hEq := r.FloatHistogram("sdpopt_test_q_eq", nil)
	for i := 0; i < 10; i++ {
		hEq.Observe(2.5) // bucket (2, 3]
	}
	if p50, p95 := hEq.Quantile(0.5), hEq.Quantile(0.95); p50 < 2 || p50 > 3 || p95 < 2 || p95 > 3 {
		t.Fatalf("all-equal quantiles p50=%g p95=%g, want within (2, 3]", p50, p95)
	}

	// Spread observations: quantiles are monotone and overflow is bounded.
	hs := r.FloatHistogram("sdpopt_test_q_spread", nil)
	for _, v := range []float64{1, 1.2, 1.4, 2.5, 4, 8, 500} {
		hs.Observe(v)
	}
	p50, p95 := hs.Quantile(0.5), hs.Quantile(0.95)
	if p50 > p95 {
		t.Fatalf("quantiles not monotone: p50=%g > p95=%g", p50, p95)
	}
	if top := hs.Quantile(1); top != 100 {
		t.Fatalf("overflow quantile = %g, want top bound 100", top)
	}

	// Nil safety and clamping.
	var nilH *FloatHistogram
	if nilH.Quantile(0.5) != 0 {
		t.Error("nil Quantile not 0")
	}
	if lo, hi := h1.Quantile(-1), h1.Quantile(2); lo != lo || hi != hi {
		t.Error("out-of-range q produced NaN")
	}
}

func TestSummarizeWindow(t *testing.T) {
	// Empty window: zeros, not NaN.
	if p50, p95, max := SummarizeWindow(nil); p50 != 0 || p95 != 0 || max != 0 {
		t.Fatalf("empty window = %g/%g/%g, want zeros", p50, p95, max)
	}
	// Single observation: all three equal it.
	if p50, p95, max := SummarizeWindow([]float64{3.5}); p50 != 3.5 || p95 != 3.5 || max != 3.5 {
		t.Fatalf("single window = %g/%g/%g, want 3.5 each", p50, p95, max)
	}
	// All-equal observations.
	if p50, p95, max := SummarizeWindow([]float64{2, 2, 2, 2}); p50 != 2 || p95 != 2 || max != 2 {
		t.Fatalf("all-equal window = %g/%g/%g, want 2 each", p50, p95, max)
	}
	// NaN and Inf inputs are dropped, not propagated.
	vals := []float64{1, math.NaN(), 4, math.Inf(1), 2}
	p50, p95, max := SummarizeWindow(vals)
	if p50 != p50 || p95 != p95 || max != max {
		t.Fatalf("NaN leaked through: %g/%g/%g", p50, p95, max)
	}
	if p50 != 2 || max != 4 {
		t.Fatalf("window with NaN/Inf = %g/%g/%g, want p50=2 max=4", p50, p95, max)
	}
	// All-garbage window degrades to zeros.
	if p50, _, max := SummarizeWindow([]float64{math.NaN(), math.Inf(-1)}); p50 != 0 || max != 0 {
		t.Fatalf("garbage window = %g/%g, want zeros", p50, max)
	}
}

func TestGaugeFuncAndBuildInfo(t *testing.T) {
	r := NewRegistry()
	v := int64(7)
	r.GaugeFunc("sdpopt_test_dynamic", func() int64 { return v })
	RegisterBuildInfo(r)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sdpopt_test_dynamic 7") {
		t.Errorf("gauge func missing:\n%s", out)
	}
	wantInfo := `sdpopt_build_info{version=` // full label set checked below
	if !strings.Contains(out, wantInfo) {
		t.Errorf("build info missing:\n%s", out)
	}
	if !strings.Contains(out, `goversion="`+runtime.Version()+`"`) {
		t.Errorf("goversion label missing:\n%s", out)
	}
	if !strings.Contains(out, `gomaxprocs="`+strconv.Itoa(runtime.GOMAXPROCS(0))+`"`) {
		t.Errorf("gomaxprocs label missing:\n%s", out)
	}
	if !strings.Contains(out, MProcessStart) || !strings.Contains(out, MUptime) {
		t.Errorf("process gauges missing:\n%s", out)
	}

	// The function is re-evaluated per scrape.
	v = 9
	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sdpopt_test_dynamic 9") {
		t.Errorf("gauge func not re-evaluated:\n%s", buf.String())
	}

	// Idempotent re-registration, nil safety.
	RegisterBuildInfo(r)
	RegisterBuildInfo(nil)
	var nilR *Registry
	nilR.GaugeFunc("x", func() int64 { return 1 })
}

func TestReadJSONLLenient(t *testing.T) {
	in := strings.Join([]string{
		`{"ev":"a"}`,
		`{"ev":"b"`, // truncated mid-write
		``,
		`not json at all`,
		`{"ev":"c"}`,
	}, "\n")
	var warn bytes.Buffer
	recs, skipped, err := ReadJSONLLenient(strings.NewReader(in), &warn)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || skipped != 2 {
		t.Fatalf("recs=%d skipped=%d, want 2/2", len(recs), skipped)
	}
	if recs[0].Ev() != "a" || recs[1].Ev() != "c" {
		t.Fatalf("records = %v", recs)
	}
	if !strings.Contains(warn.String(), "line 2") || !strings.Contains(warn.String(), "line 4") {
		t.Fatalf("warnings = %q", warn.String())
	}
	// Strict reader still aborts on the same input.
	if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
		t.Fatal("strict ReadJSONL accepted corrupt input")
	}
	// Nil warn writer is fine.
	if _, n, err := ReadJSONLLenient(strings.NewReader(in), nil); err != nil || n != 2 {
		t.Fatalf("nil-warn path: n=%d err=%v", n, err)
	}
}
