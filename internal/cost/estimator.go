// Estimator is the pluggable cardinality-estimation boundary: every number
// the cost model consumes — base-relation rows, join-predicate
// selectivities, effective distinct counts, filter selectivities — flows
// through this interface. The Model owns cost arithmetic; the Estimator
// owns statistics. The default CatalogEstimator reproduces the catalog-
// driven estimation the Model previously computed inline, bit for bit
// (guarded by the golden corpus in internal/ce); alternative
// implementations inject controlled error (internal/ce's Injector) or
// could slot in a learned model.
package cost

import (
	"math"

	"sdpopt/internal/query"
)

// Estimator supplies the cardinality estimates for one query. The Model
// reads RelRows and PredSel once at construction (and again on
// SetEstimator) into flat arrays for the enumeration hot path, and calls
// ColumnNDV/FilterSel on the cold paths that need them. Implementations
// must be deterministic, pure functions of their construction inputs, and
// safe for concurrent reads — Model.Fork shares the estimator across
// parallel workers.
type Estimator interface {
	// Name identifies the estimator in reports and metrics.
	Name() string
	// RelRows returns the estimated post-filter output cardinality of
	// query-local relation i (≥ 1).
	RelRows(i int) float64
	// PredSel returns the estimated selectivity of join predicate pi,
	// in (0, 1].
	PredSel(pi int) float64
	// ColumnNDV returns the effective distinct count of (rel, col) after
	// skew and range filters, in [1, RelRows(rel)].
	ColumnNDV(rel, col int) float64
	// FilterSel returns the estimated selectivity of local range filter f,
	// in (0, 1].
	FilterSel(f query.Filter) float64
}

// PostgreSQL's magic fallback constants (selfuncs.h), used when a column's
// ANALYZE statistics are unavailable (catalog.Column.StatsLost).
const (
	// DefaultRangeSel is DEFAULT_INEQ_SEL: the assumed selectivity of a
	// range comparison against a column with no histogram.
	DefaultRangeSel = 1.0 / 3.0
	// DefaultNDV is DEFAULT_NUM_DISTINCT: the assumed distinct count of a
	// column with no n_distinct statistic. Two stats-less join columns thus
	// estimate at 1/200 = 0.005, PostgreSQL's DEFAULT_EQ_SEL.
	DefaultNDV = 200.0
)

// CatalogEstimator is the default estimator: it derives every estimate
// from the query's catalog statistics exactly as the cost model historically
// did — ANALYZE-style histogram CDFs for filters, skew-adjusted effective
// NDVs, and eqjoinsel's 1/max(ndv) for equi-joins. Columns marked StatsLost
// fall back to the magic constants above. Read-only after construction.
type CatalogEstimator struct {
	q       *query.Query
	relRows []float64
}

// NewCatalogEstimator builds the default estimator for q, precomputing
// post-filter relation cardinalities.
func NewCatalogEstimator(q *query.Query) *CatalogEstimator {
	e := &CatalogEstimator{q: q, relRows: make([]float64, q.NumRelations())}
	for i := 0; i < q.NumRelations(); i++ {
		rows := q.Relation(i).Rows
		for _, f := range q.FiltersOn(i) {
			rows *= e.FilterSel(f)
		}
		if rows < 1 {
			rows = 1
		}
		e.relRows[i] = rows
	}
	return e
}

// Name implements Estimator.
func (e *CatalogEstimator) Name() string { return "catalog" }

// RelRows implements Estimator.
func (e *CatalogEstimator) RelRows(i int) float64 { return e.relRows[i] }

// FilterSel estimates a range filter's selectivity from the column's value
// distribution (ANALYZE-style: the CDF a histogram encodes), so skewed
// columns — where most rows carry small values — estimate accurately rather
// than assuming uniformity. A column with no statistics gets the magic
// one-third.
func (e *CatalogEstimator) FilterSel(f query.Filter) float64 {
	col := e.q.Relation(f.Rel).Cols[f.Col]
	if col.StatsLost {
		return DefaultRangeSel
	}
	sel := col.FracBelow(float64(f.Bound))
	if sel <= 0 {
		return 1e-9 // a filter never returns exactly nothing in estimates
	}
	return sel
}

// ColumnNDV is the effective distinct count of (rel, col) after skew and
// any range filters on that column, capped by the relation's filtered
// cardinality. A column with no statistics assumes DefaultNDV distincts.
func (e *CatalogEstimator) ColumnNDV(rel, col int) float64 {
	c := e.q.Relation(rel).Cols[col]
	var ndv float64
	if c.StatsLost {
		ndv = DefaultNDV
	} else {
		ndv = c.EffectiveNDV()
	}
	for _, f := range e.q.FiltersOn(rel) {
		if f.Col == col {
			// A range filter keeps only the matching slice of the domain.
			ndv *= e.FilterSel(f)
		}
	}
	return math.Max(1, math.Min(ndv, e.relRows[rel]))
}

// PredSel estimates the selectivity of equi-join predicate pi as
// 1/max(effective ndv of either side), PostgreSQL's eqjoinsel formula, with
// skew folded into the effective distinct counts.
func (e *CatalogEstimator) PredSel(pi int) float64 {
	p := e.q.Preds[pi]
	lNDV := e.ColumnNDV(p.LeftRel, p.LeftCol)
	rNDV := e.ColumnNDV(p.RightRel, p.RightCol)
	sel := 1 / math.Max(lNDV, rNDV)
	if sel > 1 {
		return 1
	}
	return sel
}
