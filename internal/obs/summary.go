package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Record is one decoded JSONL trace line.
type Record map[string]any

// Ev returns the record's event type.
func (r Record) Ev() string { s, _ := r["ev"].(string); return s }

// Str returns a string attribute ("" if absent).
func (r Record) Str(key string) string { s, _ := r[key].(string); return s }

// Num returns a numeric attribute (0 if absent). JSON numbers decode as
// float64.
func (r Record) Num(key string) float64 {
	f, _ := r[key].(float64)
	return f
}

// ReadJSONL decodes a JSONL trace stream. Blank lines are skipped;
// malformed lines abort with the line number.
func ReadJSONL(rd io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var r Record
		if err := json.Unmarshal([]byte(text), &r); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadJSONLLenient decodes a JSONL trace stream, skipping malformed lines
// instead of aborting: each skipped line produces one warning on warn (when
// non-nil) and the total skipped count is returned alongside the good
// records. A truncated tail — the common corruption for a trace file cut
// off mid-write — thus costs only the damaged lines, not the whole summary.
// Only a read error from rd itself is fatal.
func ReadJSONLLenient(rd io.Reader, warn io.Writer) (recs []Record, skipped int, err error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var r Record
		if uerr := json.Unmarshal([]byte(text), &r); uerr != nil {
			skipped++
			if warn != nil {
				fmt.Fprintf(warn, "warning: trace line %d skipped: %v\n", line, uerr)
			}
			continue
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, err
	}
	return recs, skipped, nil
}

// TechSummary aggregates one technique's optimization effort.
type TechSummary struct {
	Tech         string
	Runs         int
	Aborts       int
	Total        time.Duration
	PlansCosted  int64
	Classes      int64
	PeakSimBytes int64
}

// LevelSummary aggregates one enumeration level across all traced runs.
// Sequential and parallel spans of the same level aggregate separately
// (keyed by Workers), so a trace mixing both engines stays comparable.
type LevelSummary struct {
	Level int
	// Workers is the enumeration worker count the spans ran with (1 for
	// the sequential engine, which emits no workers attribute).
	Workers     int
	Spans       int
	Total       time.Duration
	Classes     int64
	PlansCosted int64
	// PairsConsidered and PairsConnected are the enumerator's candidate
	// pair counts at this level: pairs examined and pairs passing the
	// disjoint+connected filter. Considered/Connected shows how sharply
	// the adjacency index narrows the level's search.
	PairsConsidered int64
	PairsConnected  int64
}

// CriterionSummary aggregates pruning efficacy for one skyline criterion:
// of the JCRs entering partitions, how many that criterion kept.
type CriterionSummary struct {
	Criterion  string
	Candidates int64
	Survivors  int64
}

// SurvivalRate is the fraction of candidates the criterion kept.
func (c CriterionSummary) SurvivalRate() float64 {
	if c.Candidates == 0 {
		return 0
	}
	return float64(c.Survivors) / float64(c.Candidates)
}

// TraceSummary is the aggregate view of one JSONL trace.
type TraceSummary struct {
	Events     int
	Techniques []TechSummary
	Levels     []LevelSummary
	Criteria   []CriterionSummary
	Partitions int64
	Pruned     int64
}

// Summarize aggregates a decoded trace: per-technique effort (optimize.end),
// per-level timing (level), and skyline pruning efficacy per criterion
// (sdp.partition).
func Summarize(records []Record) *TraceSummary {
	s := &TraceSummary{Events: len(records)}
	techs := map[string]*TechSummary{}
	levels := map[[2]int]*LevelSummary{}
	crits := map[string]*CriterionSummary{}
	techOf := func(name string) *TechSummary {
		t := techs[name]
		if t == nil {
			t = &TechSummary{Tech: name}
			techs[name] = t
		}
		return t
	}
	for _, r := range records {
		switch r.Ev() {
		case EvOptimizeEnd:
			t := techOf(r.Str("tech"))
			t.Runs++
			t.Total += time.Duration(int64(r.Num("dur_ns")))
			t.PlansCosted += int64(r.Num("plans_costed"))
			t.Classes += int64(r.Num("classes_created"))
			if pb := int64(r.Num("peak_sim_bytes")); pb > t.PeakSimBytes {
				t.PeakSimBytes = pb
			}
			if r.Str("err") != "" {
				t.Aborts++
			}
		case EvLevel:
			lv := int(r.Num("level"))
			w := int(r.Num("workers"))
			if w == 0 {
				w = 1
			}
			key := [2]int{lv, w}
			l := levels[key]
			if l == nil {
				l = &LevelSummary{Level: lv, Workers: w}
				levels[key] = l
			}
			l.Spans++
			l.Total += time.Duration(int64(r.Num("dur_ns")))
			l.Classes += int64(r.Num("classes_created"))
			l.PlansCosted += int64(r.Num("plans_costed"))
			l.PairsConsidered += int64(r.Num("pairs_considered"))
			l.PairsConnected += int64(r.Num("pairs_connected"))
		case EvSDPPartition:
			s.Partitions++
			size := int64(r.Num("size"))
			for _, cr := range []string{"RC", "CS", "RS", "all"} {
				key := strings.ToLower(cr)
				if _, ok := r[key]; !ok && cr != "all" {
					continue // Option1/Strong traces carry only "all"
				}
				c := crits[cr]
				if c == nil {
					c = &CriterionSummary{Criterion: cr}
					crits[cr] = c
				}
				c.Candidates += size
				if cr == "all" {
					c.Survivors += int64(r.Num("survivors"))
				} else {
					c.Survivors += int64(r.Num(key))
				}
			}
		case EvSDPLevel:
			s.Pruned += int64(r.Num("pruned"))
		}
	}
	for _, t := range techs {
		s.Techniques = append(s.Techniques, *t)
	}
	sort.Slice(s.Techniques, func(i, j int) bool { return s.Techniques[i].Tech < s.Techniques[j].Tech })
	for _, l := range levels {
		s.Levels = append(s.Levels, *l)
	}
	sort.Slice(s.Levels, func(i, j int) bool {
		if s.Levels[i].Level != s.Levels[j].Level {
			return s.Levels[i].Level < s.Levels[j].Level
		}
		return s.Levels[i].Workers < s.Levels[j].Workers
	})
	for _, c := range []string{"RC", "CS", "RS", "all"} {
		if cr := crits[c]; cr != nil {
			s.Criteria = append(s.Criteria, *cr)
		}
	}
	return s
}

// Render formats the summary as the sdptrace report: effort per technique,
// top levels by time, and pruning efficacy per skyline criterion.
func (s *TraceSummary) Render(topLevels int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace: %d events\n", s.Events)

	if len(s.Techniques) > 0 {
		sb.WriteString("\nEffort per technique\n")
		fmt.Fprintf(&sb, "%-10s %6s %6s %14s %14s %14s %12s\n",
			"Tech", "Runs", "Abort", "TotalTime", "MeanTime", "PlansCosted", "PeakMB")
		for _, t := range s.Techniques {
			mean := time.Duration(0)
			if t.Runs > 0 {
				mean = t.Total / time.Duration(t.Runs)
			}
			fmt.Fprintf(&sb, "%-10s %6d %6d %14v %14v %14d %12.2f\n",
				t.Tech, t.Runs, t.Aborts, t.Total.Round(time.Microsecond),
				mean.Round(time.Microsecond), t.PlansCosted, float64(t.PeakSimBytes)/(1<<20))
		}
	}

	if len(s.Levels) > 0 {
		byTime := append([]LevelSummary(nil), s.Levels...)
		sort.Slice(byTime, func(i, j int) bool { return byTime[i].Total > byTime[j].Total })
		if topLevels > 0 && len(byTime) > topLevels {
			byTime = byTime[:topLevels]
		}
		fmt.Fprintf(&sb, "\nTop %d levels by time\n", len(byTime))
		fmt.Fprintf(&sb, "%6s %8s %6s %14s %14s %14s %14s %14s\n",
			"Level", "Workers", "Spans", "TotalTime", "Classes", "PlansCosted", "PairsSeen", "PairsJoined")
		for _, l := range byTime {
			fmt.Fprintf(&sb, "%6d %8d %6d %14v %14d %14d %14d %14d\n",
				l.Level, l.Workers, l.Spans, l.Total.Round(time.Microsecond), l.Classes, l.PlansCosted,
				l.PairsConsidered, l.PairsConnected)
		}
	}

	if len(s.Criteria) > 0 {
		sb.WriteString("\nSkyline pruning efficacy per criterion\n")
		fmt.Fprintf(&sb, "%-10s %12s %12s %10s\n", "Criterion", "Candidates", "Survivors", "KeepRate")
		for _, c := range s.Criteria {
			fmt.Fprintf(&sb, "%-10s %12d %12d %9.1f%%\n",
				c.Criterion, c.Candidates, c.Survivors, 100*c.SurvivalRate())
		}
		fmt.Fprintf(&sb, "partitions=%d, JCRs pruned=%d\n", s.Partitions, s.Pruned)
	}
	return sb.String()
}
