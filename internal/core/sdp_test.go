package core

import (
	"errors"
	"strings"
	"testing"

	"sdpopt/internal/bits"
	"sdpopt/internal/catalog"
	"sdpopt/internal/dp"
	"sdpopt/internal/memo"
	"sdpopt/internal/plan"
	"sdpopt/internal/query"
	"sdpopt/internal/testutil"
	"sdpopt/internal/workload"
)

func fixture(t *testing.T, n int, edges []query.Edge, order *query.OrderSpec) *query.Query {
	t.Helper()
	return testutil.MustQuery(testutil.Catalog(n), n, edges, order)
}

// testutilCatalogCfg builds an n-relation catalog with a custom seed so
// quality checks see varied statistics.
func testutilCatalogCfg(n int, seed int64) *catalog.Catalog {
	cfg := catalog.DefaultConfig()
	cfg.NumRelations = n
	cfg.Seed = seed
	return catalog.MustSynthetic(cfg)
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions()
	if o.Partitioning != RootHub || o.Skyline != Option2 || o.Scope != Local {
		t.Errorf("DefaultOptions = %+v", o)
	}
}

func TestEnumStrings(t *testing.T) {
	if RootHub.String() != "RootHub" || ParentHub.String() != "ParentHub" {
		t.Error("Partitioning names")
	}
	if Option1.String() != "Option1" || Option2.String() != "Option2" || StrongSkyline.String() != "StrongSkyline" {
		t.Error("SkylineOption names")
	}
	if Local.String() != "Local" || Global.String() != "Global" {
		t.Error("Scope names")
	}
}

func TestMatchesDPOnTinyQueries(t *testing.T) {
	// With n ≤ 4, every level is 1, N-2 or N-1: SDP must be exactly DP.
	for _, tc := range []struct {
		name  string
		n     int
		edges []query.Edge
	}{
		{"chain-3", 3, query.ChainEdges(3)},
		{"chain-4", 4, query.ChainEdges(4)},
		{"star-4", 4, query.StarEdges(4)},
		{"clique-4", 4, query.CliqueEdges(4)},
	} {
		q := fixture(t, tc.n, tc.edges, nil)
		want, wantStats, err := dp.Optimize(q, dp.Options{})
		if err != nil {
			t.Fatalf("%s DP: %v", tc.name, err)
		}
		got, gotStats, err := Optimize(q, DefaultOptions())
		if err != nil {
			t.Fatalf("%s SDP: %v", tc.name, err)
		}
		if got.Cost != want.Cost {
			t.Errorf("%s: SDP cost %g != DP %g", tc.name, got.Cost, want.Cost)
		}
		if gotStats.Memo.ClassesCreated != wantStats.Memo.ClassesCreated {
			t.Errorf("%s: SDP classes %d != DP %d", tc.name, gotStats.Memo.ClassesCreated, wantStats.Memo.ClassesCreated)
		}
	}
}

func TestNoPruningOnChainsAndCycles(t *testing.T) {
	// "With SDP, there is no pruning at all for a chain or cycle query."
	for _, tc := range []struct {
		name  string
		n     int
		edges []query.Edge
	}{
		{"chain-10", 10, query.ChainEdges(10)},
		{"cycle-9", 9, query.CycleEdges(9)},
	} {
		q := fixture(t, tc.n, tc.edges, nil)
		want, wantStats, err := dp.Optimize(q, dp.Options{})
		if err != nil {
			t.Fatalf("%s DP: %v", tc.name, err)
		}
		var trace Trace
		opts := DefaultOptions()
		opts.Trace = &trace
		got, gotStats, err := Optimize(q, opts)
		if err != nil {
			t.Fatalf("%s SDP: %v", tc.name, err)
		}
		if got.Cost != want.Cost {
			t.Errorf("%s: SDP cost %g != DP %g", tc.name, got.Cost, want.Cost)
		}
		if gotStats.Memo.ClassesCreated != wantStats.Memo.ClassesCreated {
			t.Errorf("%s: classes %d != %d", tc.name, gotStats.Memo.ClassesCreated, wantStats.Memo.ClassesCreated)
		}
		for _, lt := range trace.Levels {
			if len(lt.Pruned) > 0 {
				t.Errorf("%s: pruning happened at level %d", tc.name, lt.Level)
			}
		}
	}
}

func TestPrunesStarsAndNeverBeatsDP(t *testing.T) {
	for _, tc := range []struct {
		name  string
		n     int
		edges []query.Edge
	}{
		{"star-9", 9, query.StarEdges(9)},
		{"star-11", 11, query.StarEdges(11)},
		{"star-chain-10", 10, query.StarChainEdges(10, 6)},
		{"clique-7", 7, query.CliqueEdges(7)},
	} {
		q := fixture(t, tc.n, tc.edges, nil)
		optimal, dpStats, err := dp.Optimize(q, dp.Options{})
		if err != nil {
			t.Fatalf("%s DP: %v", tc.name, err)
		}
		p, stats, err := Optimize(q, DefaultOptions())
		if err != nil {
			t.Fatalf("%s SDP: %v", tc.name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: invalid plan: %v", tc.name, err)
		}
		if p.Rels != bits.Full(tc.n) {
			t.Fatalf("%s: plan covers %v", tc.name, p.Rels)
		}
		if p.Cost < optimal.Cost*(1-1e-9) {
			t.Errorf("%s: SDP %g beats DP %g", tc.name, p.Cost, optimal.Cost)
		}
		// Hub topologies must show a real pruning effect.
		if stats.Memo.ClassesCreated >= dpStats.Memo.ClassesCreated {
			t.Errorf("%s: SDP created %d classes, DP %d — no pruning",
				tc.name, stats.Memo.ClassesCreated, dpStats.Memo.ClassesCreated)
		}
		if stats.PlansCosted >= dpStats.PlansCosted {
			t.Errorf("%s: SDP costed %d plans, DP %d", tc.name, stats.PlansCosted, dpStats.PlansCosted)
		}
	}
}

func TestTraceExample9Level2(t *testing.T) {
	// Figure 2.1/2.2: hubs are relations 1 and 7 (indexes 0 and 6). At
	// level 2 the PruneGroup is every pair containing one of them; pairs
	// like 56 (indexes {4,5}) are free.
	q := fixture(t, 9, query.Example9Edges(), nil)
	var trace Trace
	opts := DefaultOptions()
	opts.Trace = &trace
	if _, _, err := Optimize(q, opts); err != nil {
		t.Fatalf("SDP: %v", err)
	}
	if len(trace.Levels) == 0 {
		t.Fatal("no trace recorded")
	}
	lvl2 := trace.Levels[0]
	if lvl2.Level != 2 {
		t.Fatalf("first traced level = %d", lvl2.Level)
	}
	inPG := func(s bits.Set) bool {
		for _, x := range lvl2.PruneGroup {
			if x == s {
				return true
			}
		}
		return false
	}
	for _, s := range []bits.Set{bits.Of(0, 1), bits.Of(0, 4), bits.Of(5, 6), bits.Of(6, 7)} {
		if !inPG(s) {
			t.Errorf("pair %v should be in the PruneGroup", s)
		}
	}
	for _, s := range lvl2.FreeGroup {
		if s.Has(0) || s.Has(6) {
			t.Errorf("FreeGroup pair %v contains a hub", s)
		}
	}
	// Partitions are labeled by the two root hubs.
	if _, ok := lvl2.Partitions["hub:1"]; !ok {
		t.Error("missing partition for root hub 1")
	}
	if _, ok := lvl2.Partitions["hub:7"]; !ok {
		t.Error("missing partition for root hub 7")
	}
	// No pruned level at or beyond N-2 = 7.
	for _, lt := range trace.Levels {
		if lt.Level >= 7 {
			t.Errorf("pruning traced at level %d, beyond N-3", lt.Level)
		}
	}
}

func TestPartitioningVariants(t *testing.T) {
	q := fixture(t, 10, query.StarChainEdges(10, 6), nil)
	optimal, _, err := dp.Optimize(q, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, part := range []Partitioning{RootHub, ParentHub} {
		opts := DefaultOptions()
		opts.Partitioning = part
		p, _, err := Optimize(q, opts)
		if err != nil {
			t.Fatalf("%v: %v", part, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%v: %v", part, err)
		}
		if p.Cost < optimal.Cost*(1-1e-9) {
			t.Errorf("%v beats DP", part)
		}
	}
}

func TestSkylineOptionRetention(t *testing.T) {
	// Option 1 (full 3-D skyline) must retain at least as many classes as
	// Option 2 (pairwise union) — Table 2.3's "Option 2 processes about
	// half the JCRs".
	q := fixture(t, 11, query.StarEdges(11), nil)
	run := func(sk SkylineOption) dp.Stats {
		opts := DefaultOptions()
		opts.Skyline = sk
		_, stats, err := Optimize(q, opts)
		if err != nil {
			t.Fatalf("%v: %v", sk, err)
		}
		return stats
	}
	s1 := run(Option1)
	s2 := run(Option2)
	strong := run(StrongSkyline)
	if s2.Memo.ClassesCreated > s1.Memo.ClassesCreated {
		t.Errorf("Option2 created %d classes > Option1 %d", s2.Memo.ClassesCreated, s1.Memo.ClassesCreated)
	}
	// The strong skyline falls back to the full skyline when 2-dominance
	// empties a partition, so it is not strictly comparable to Option2 —
	// only require that it prunes relative to exhaustive DP.
	_, dpStats, err := dp.Optimize(q, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strong.Memo.ClassesCreated >= dpStats.Memo.ClassesCreated {
		t.Errorf("StrongSkyline created %d classes, DP %d — no pruning", strong.Memo.ClassesCreated, dpStats.Memo.ClassesCreated)
	}
}

func TestGlobalScope(t *testing.T) {
	q := fixture(t, 10, query.StarChainEdges(10, 6), nil)
	opts := DefaultOptions()
	opts.Scope = Global
	p, stats, err := Optimize(q, opts)
	if err != nil {
		t.Fatalf("global SDP: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	_, dpStats, err := dp.Optimize(q, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Memo.ClassesCreated >= dpStats.Memo.ClassesCreated {
		t.Error("global pruning had no effect")
	}
	// Global pruning ignores hubs entirely: on a chain it still applies the
	// per-level skyline (local SDP would not) and completes with a valid
	// plan; whether anything is actually pruned depends on the statistics.
	qc := fixture(t, 10, query.ChainEdges(10), nil)
	pc, gStats, err := Optimize(qc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := pc.Validate(); err != nil {
		t.Fatal(err)
	}
	_, dpChain, err := dp.Optimize(qc, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gStats.Memo.ClassesCreated > dpChain.Memo.ClassesCreated {
		t.Error("global pruning created more classes than DP")
	}
}

func TestOrderedQueryKeepsOrder(t *testing.T) {
	cat := testutil.Catalog(9)
	// Order by the hub's first join column (a join column by construction).
	q := testutil.MustQuery(cat, 9, query.StarEdges(9), &query.OrderSpec{Rel: 0, Col: 0})
	if q.OrderEqClass() < 0 {
		t.Fatal("fixture: order column not a join column")
	}
	var trace Trace
	opts := DefaultOptions()
	opts.Trace = &trace
	p, _, err := Optimize(q, opts)
	if err != nil {
		t.Fatalf("SDP: %v", err)
	}
	if p.Order != q.OrderEqClass() {
		t.Errorf("final order = %d, want %d", p.Order, q.OrderEqClass())
	}
	// Order partitions must appear in the trace.
	found := false
	for _, lt := range trace.Levels {
		for label := range lt.Partitions {
			if len(label) > 5 && label[:6] == "order:" {
				found = true
			}
		}
	}
	if !found {
		t.Error("no interesting-order partitions traced")
	}
	// The ordered SDP result must not beat ordered DP.
	want, _, err := dp.Optimize(q, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost < want.Cost*(1-1e-9) {
		t.Errorf("ordered SDP %g beats DP %g", p.Cost, want.Cost)
	}
}

func TestBudgetAbort(t *testing.T) {
	q := fixture(t, 12, query.StarEdges(12), nil)
	_, stats, err := Optimize(q, Options{Partitioning: RootHub, Skyline: Option2, Budget: 128 * 1024})
	if !errors.Is(err, memo.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if stats.Memo.PeakSimBytes == 0 {
		t.Error("stats lost on abort")
	}
}

func TestDeterministic(t *testing.T) {
	q := fixture(t, 11, query.StarChainEdges(11, 7), nil)
	a, sa, err := Optimize(q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := Optimize(q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost || sa.Memo.ClassesCreated != sb.Memo.ClassesCreated {
		t.Errorf("SDP non-deterministic: cost %g/%g classes %d/%d",
			a.Cost, b.Cost, sa.Memo.ClassesCreated, sb.Memo.ClassesCreated)
	}
}

func TestSDPQualityOnStarsIsGood(t *testing.T) {
	// The paper's headline: SDP always lands within 2× of optimal on star
	// workloads. Check on a batch of differently-seeded star-9 instances.
	for seed := int64(1); seed <= 10; seed++ {
		cfg := testutilCatalogCfg(9, seed)
		q := testutil.MustQuery(cfg, 9, query.StarEdges(9), nil)
		optimal, _, err := dp.Optimize(q, dp.Options{})
		if err != nil {
			t.Fatalf("seed %d DP: %v", seed, err)
		}
		p, _, err := Optimize(q, DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d SDP: %v", seed, err)
		}
		if ratio := p.Cost / optimal.Cost; ratio > 2 {
			t.Errorf("seed %d: SDP/DP cost ratio = %.3f, want ≤ 2", seed, ratio)
		}
	}
}

func TestTraceString(t *testing.T) {
	q := fixture(t, 9, query.Example9Edges(), nil)
	var trace Trace
	opts := DefaultOptions()
	opts.Trace = &trace
	if _, _, err := Optimize(q, opts); err != nil {
		t.Fatal(err)
	}
	out := trace.String()
	for _, frag := range []string{"Level 2:", "PruneGroup=", "partition hub:1"} {
		if !strings.Contains(out, frag) {
			t.Errorf("trace rendering missing %q:\n%s", frag, out)
		}
	}
}

func TestParallelSDPMatchesSequential(t *testing.T) {
	// The parallel engine's determinism contract extends through SDP: hub
	// detection, skyline pruning and the chosen plan are identical, and so is
	// the pruning telemetry (traces, skyline counters).
	cat := workload.PaperSchema()
	for _, spec := range []workload.Spec{
		{Cat: cat, Topology: workload.Star, NumRelations: 15, Seed: 1},
		{Cat: cat, Topology: workload.StarChain, NumRelations: 17, Seed: 2},
		{Cat: cat, Topology: workload.Star, NumRelations: 12, Ordered: true, Seed: 3},
	} {
		qs, err := workload.Instances(spec, 2)
		if err != nil {
			t.Fatalf("Instances: %v", err)
		}
		for qi, q := range qs {
			var seqTrace Trace
			seqOpts := DefaultOptions()
			seqOpts.Trace = &seqTrace
			want, wantStats, err := Optimize(q, seqOpts)
			if err != nil {
				t.Fatalf("%v q%d sequential: %v", spec.Topology, qi, err)
			}
			for _, workers := range []int{2, 4} {
				var parTrace Trace
				parOpts := DefaultOptions()
				parOpts.Workers = workers
				parOpts.Trace = &parTrace
				got, gotStats, err := Optimize(q, parOpts)
				if err != nil {
					t.Fatalf("%v q%d w=%d: %v", spec.Topology, qi, workers, err)
				}
				if plan.Compare(want, got) != 0 {
					t.Errorf("%v q%d w=%d: plan diverged (cost %g vs %g)",
						spec.Topology, qi, workers, want.Cost, got.Cost)
				}
				if wantStats.PlansCosted != gotStats.PlansCosted {
					t.Errorf("%v q%d w=%d: PlansCosted %d != %d",
						spec.Topology, qi, workers, wantStats.PlansCosted, gotStats.PlansCosted)
				}
				if wantStats.Memo.ClassesCreated != gotStats.Memo.ClassesCreated {
					t.Errorf("%v q%d w=%d: ClassesCreated %d != %d",
						spec.Topology, qi, workers, wantStats.Memo.ClassesCreated, gotStats.Memo.ClassesCreated)
				}
				if seqStr, parStr := seqTrace.String(), parTrace.String(); seqStr != parStr {
					t.Errorf("%v q%d w=%d: pruning trace diverged:\nseq:\n%s\npar:\n%s",
						spec.Topology, qi, workers, seqStr, parStr)
				}
			}
		}
	}
}

func TestParallelSDPBudgetAbort(t *testing.T) {
	cat := workload.PaperSchema()
	q, err := workload.One(workload.Spec{Cat: cat, Topology: workload.Star, NumRelations: 17, Seed: 4})
	if err != nil {
		t.Fatalf("One: %v", err)
	}
	opts := DefaultOptions()
	opts.Workers = 4
	opts.Budget = 128 * 1024
	_, st, err := Optimize(q, opts)
	if !errors.Is(err, memo.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if st.Elapsed <= 0 {
		t.Error("Elapsed not populated on parallel budget abort")
	}
}
