package greedy

import (
	"context"
	"errors"
	"testing"

	"sdpopt/internal/bits"
	"sdpopt/internal/dp"
	"sdpopt/internal/obs"
	"sdpopt/internal/obs/span"
	"sdpopt/internal/query"
	"sdpopt/internal/testutil"
)

func TestGreedyProducesValidPlans(t *testing.T) {
	for _, tc := range []struct {
		name  string
		n     int
		edges []query.Edge
	}{
		{"chain-8", 8, query.ChainEdges(8)},
		{"star-9", 9, query.StarEdges(9)},
		{"star-chain-12", 12, query.StarChainEdges(12, 8)},
		{"clique-6", 6, query.CliqueEdges(6)},
	} {
		q := testutil.MustQuery(testutil.Catalog(tc.n), tc.n, tc.edges, nil)
		p, stats, err := Optimize(q, Options{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: invalid plan: %v", tc.name, err)
		}
		if p.Rels != bits.Full(tc.n) {
			t.Fatalf("%s: covers %v", tc.name, p.Rels)
		}
		if stats.PlansCosted <= 0 || stats.Elapsed <= 0 {
			t.Errorf("%s: stats = %+v", tc.name, stats)
		}
	}
}

func TestGreedyNeverBeatsDP(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cfg := testutil.Catalog(10)
		_ = cfg
		q := testutil.MustQuery(testutil.Catalog(10), 10, query.StarChainEdges(10, 6), nil)
		optimal, _, err := dp.Optimize(q, dp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		p, _, err := Optimize(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if p.Cost < optimal.Cost*(1-1e-9) {
			t.Fatalf("greedy %g beat DP %g", p.Cost, optimal.Cost)
		}
	}
}

func TestGreedyIsCheap(t *testing.T) {
	q := testutil.MustQuery(testutil.Catalog(12), 12, query.StarEdges(12), nil)
	_, gooStats, err := Optimize(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, dpStats, err := dp.Optimize(q, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gooStats.PlansCosted*10 > dpStats.PlansCosted {
		t.Errorf("greedy costed %d plans, DP %d — not cheap enough",
			gooStats.PlansCosted, dpStats.PlansCosted)
	}
}

func TestGreedyOrdered(t *testing.T) {
	cat := testutil.Catalog(8)
	q := testutil.MustQuery(cat, 8, query.StarEdges(8), &query.OrderSpec{Rel: 0, Col: 0})
	p, _, err := Optimize(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ec := q.OrderEqClass(); ec >= 0 && p.Order != ec {
		t.Errorf("ordered greedy delivers order %d, want %d", p.Order, ec)
	}
}

// TestGreedyObsParity locks in stats/obs parity with the enumeration
// engines: pairs counters populated, optimize events under the GOO label,
// and a span child attached when the context carries a trace — routed
// fast-path requests must not appear as blank rows in sdptrace tables.
func TestGreedyObsParity(t *testing.T) {
	sink := &obs.MemSink{}
	ob := obs.New(sink)
	rec := span.NewRecorder(span.RecorderOptions{})
	root := span.New("request")
	rec.Start(root)
	ctx := span.NewContext(context.Background(), root)

	q := testutil.MustQuery(testutil.Catalog(10), 10, query.StarEdges(10), nil)
	_, stats, err := Optimize(q, Options{Ctx: ctx, Obs: ob})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PairsConsidered <= 0 || stats.PairsConnected <= 0 {
		t.Errorf("pairs counters not populated: %+v", stats)
	}
	if stats.PairsConnected > stats.PairsConsidered {
		t.Errorf("connected %d > considered %d", stats.PairsConnected, stats.PairsConsidered)
	}
	if n := len(sink.ByType(obs.EvOptimizeStart)); n != 1 {
		t.Errorf("optimize.start events = %d, want 1", n)
	}
	ends := sink.ByType(obs.EvOptimizeEnd)
	if len(ends) != 1 {
		t.Fatalf("optimize.end events = %d, want 1", len(ends))
	}
	if tech := ends[0].Attrs["tech"]; tech != "GOO" {
		t.Errorf("optimize.end tech = %v, want GOO", tech)
	}
	if got := ob.Counter(obs.Label(obs.MOptimizations, "tech", "GOO")).Value(); got != 1 {
		t.Errorf("optimizations{tech=GOO} = %d, want 1", got)
	}
	if n := ob.Histogram(obs.Label(obs.MOptimizeSeconds, "tech", "GOO")).Count(); n != 1 {
		t.Errorf("optimize-seconds{tech=GOO} observations = %d, want 1", n)
	}

	rec.Finish(root, 200)
	d := rec.Snapshot()
	if len(d.Recent) != 1 {
		t.Fatalf("recorder holds %d traces, want 1", len(d.Recent))
	}
	found := false
	for _, s := range d.Recent[0].Root.Children {
		if s.Name == "goo.order" {
			found = true
			if got := s.Counters["pairs_considered"]; got != stats.PairsConsidered {
				t.Errorf("span pairs_considered = %d, stats say %d", got, stats.PairsConsidered)
			}
		}
	}
	if !found {
		t.Error("no goo.order span recorded under the request trace")
	}
}

// TestGreedyCanceled: a canceled context aborts the merge loop with
// ErrCanceled, same contract as the enumeration engines.
func TestGreedyCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := testutil.MustQuery(testutil.Catalog(10), 10, query.StarEdges(10), nil)
	_, stats, err := Optimize(q, Options{Ctx: ctx})
	if !errors.Is(err, dp.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if stats.Elapsed <= 0 {
		t.Error("Elapsed not populated on cancellation")
	}
}

func TestGreedyDeterministic(t *testing.T) {
	q := testutil.MustQuery(testutil.Catalog(10), 10, query.StarEdges(10), nil)
	a, _, err := Optimize(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Optimize(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost {
		t.Errorf("greedy non-deterministic: %g vs %g", a.Cost, b.Cost)
	}
}
