// Package randomized implements the randomized join-order search
// algorithms the paper's introduction cites as the non-DP alternative:
// Iterative Improvement (II) and Simulated Annealing (SA), in the style of
// Swami/Gupta and Ioannidis/Kang.
//
// Both operate on left-deep join trees represented as prefix-connected
// permutations (see internal/jointree), with the classic swap/relocate
// move set. II restarts from random solutions and descends to local
// minima; SA walks the same neighborhood under a geometric cooling
// schedule with Metropolis acceptance.
package randomized

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"sdpopt/internal/cost"
	"sdpopt/internal/dp"
	"sdpopt/internal/jointree"
	"sdpopt/internal/memo"
	"sdpopt/internal/plan"
	"sdpopt/internal/query"
)

// Algorithm selects the randomized search strategy.
type Algorithm int

// Randomized strategies.
const (
	// II is Iterative Improvement: repeated random-restart local descent.
	II Algorithm = iota
	// SA is Simulated Annealing with a geometric cooling schedule.
	SA
)

// String names the algorithm.
func (a Algorithm) String() string {
	if a == SA {
		return "SA"
	}
	return "II"
}

// Options configures a randomized run.
type Options struct {
	Algorithm Algorithm
	// Budget is the number of candidate plans the search may cost; it
	// plays the role DP's memory budget plays, bounding effort. 0 selects
	// a default proportional to the query size.
	Budget int64
	// Seed drives the random walk; runs are deterministic in it.
	Seed int64
	// StartTemp and Cooling parameterize SA: the initial temperature as a
	// fraction of the first solution's cost, and the geometric cooling
	// factor per stage. Zero values select the classic 0.1 and 0.95.
	StartTemp, Cooling float64
	// Model supplies costing; if nil a fresh default model is created.
	Model *cost.Model
}

// DefaultOptions returns an II configuration with defaults.
func DefaultOptions() Options { return Options{Algorithm: II} }

// Optimize runs the configured randomized search on q.
func Optimize(q *query.Query, opts Options) (*plan.Plan, dp.Stats, error) {
	model := opts.Model
	if model == nil {
		model = cost.NewModel(q, cost.DefaultParams())
	}
	started := time.Now()
	costedAtStart := model.PlansCosted
	budget := opts.Budget
	if budget == 0 {
		// Effort comparable to the DP heuristics: a few thousand plan
		// costings per relation.
		budget = int64(q.NumRelations()) * 4000
	}
	rng := rand.New(rand.NewSource(opts.Seed + 1))
	over := func() bool { return model.PlansCosted-costedAtStart >= budget }

	build := func(perm []int) (*plan.Plan, error) { return jointree.Build(q, model, perm) }

	var best *plan.Plan
	consider := func(p *plan.Plan) {
		if best == nil || p.Cost < best.Cost {
			best = p
		}
	}

	var err error
	switch opts.Algorithm {
	case II:
		err = iterativeImprovement(q, rng, build, consider, over)
	case SA:
		st, cool := opts.StartTemp, opts.Cooling
		if st == 0 {
			st = 0.1
		}
		if cool == 0 {
			cool = 0.95
		}
		err = simulatedAnnealing(q, rng, build, consider, over, st, cool)
	default:
		err = fmt.Errorf("randomized: unknown algorithm %d", int(opts.Algorithm))
	}
	stats := dp.Stats{
		Memo: memo.Stats{
			// The walk keeps O(1) solutions; report a nominal footprint.
			PeakSimBytes: int64(q.NumRelations()) * memo.SimPathBytes,
		},
		PlansCosted: model.PlansCosted - costedAtStart,
		Elapsed:     time.Since(started),
	}
	if err != nil {
		return nil, stats, err
	}
	return best, stats, nil
}

func iterativeImprovement(
	q *query.Query, rng *rand.Rand,
	build func([]int) (*plan.Plan, error),
	consider func(*plan.Plan), over func() bool,
) error {
	n := q.NumRelations()
	for !over() {
		cur := jointree.RandomPerm(q, rng)
		curPlan, err := build(cur)
		if err != nil {
			return err
		}
		consider(curPlan)
		// Descend: accept improving neighbors until a streak of failures
		// suggests a local minimum.
		fails := 0
		for fails < 3*n && !over() {
			cand := jointree.Neighbor(q, cur, rng)
			candPlan, err := build(cand)
			if err != nil {
				return err
			}
			if candPlan.Cost < curPlan.Cost {
				cur, curPlan = cand, candPlan
				consider(curPlan)
				fails = 0
			} else {
				fails++
			}
		}
	}
	return nil
}

func simulatedAnnealing(
	q *query.Query, rng *rand.Rand,
	build func([]int) (*plan.Plan, error),
	consider func(*plan.Plan), over func() bool,
	startTempFrac, cooling float64,
) error {
	cur := jointree.RandomPerm(q, rng)
	curPlan, err := build(cur)
	if err != nil {
		return err
	}
	consider(curPlan)
	temp := startTempFrac * curPlan.Cost
	stage := 8 * q.NumRelations()
	for !over() && temp > 1e-6*curPlan.Cost {
		for i := 0; i < stage && !over(); i++ {
			cand := jointree.Neighbor(q, cur, rng)
			candPlan, err := build(cand)
			if err != nil {
				return err
			}
			delta := candPlan.Cost - curPlan.Cost
			if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
				cur, curPlan = cand, candPlan
				consider(curPlan)
			}
		}
		temp *= cooling
	}
	return nil
}
