package cost

import (
	"math"
	"testing"

	"sdpopt/internal/bits"
	"sdpopt/internal/plan"
	"sdpopt/internal/query"
)

// filteredQuery joins A and B (A.c1 = B.c2) with a filter on the given
// column of A (rel 0). A's index is on c1 (col 0), A.corr = 1.
func filteredQuery(t *testing.T, filters []query.Filter) *query.Query {
	t.Helper()
	q, err := query.NewFiltered(handCatalog(), []int{0, 1},
		[]query.Pred{{LeftRel: 0, LeftCol: 0, RightRel: 1, RightCol: 1}},
		filters, nil)
	if err != nil {
		t.Fatalf("NewFiltered: %v", err)
	}
	return q
}

func TestFilterSel(t *testing.T) {
	// A.c1 has NDV 100.
	q := filteredQuery(t, []query.Filter{{Rel: 0, Col: 0, Bound: 25}})
	m := NewModel(q, DefaultParams())
	if got := m.FilterSel(q.Filters[0]); got != 0.25 {
		t.Errorf("FilterSel = %g, want 0.25", got)
	}
	// Bound beyond the domain clamps to 1.
	q2 := filteredQuery(t, []query.Filter{{Rel: 0, Col: 0, Bound: 1000}})
	m2 := NewModel(q2, DefaultParams())
	if got := m2.FilterSel(q2.Filters[0]); got != 1 {
		t.Errorf("FilterSel clamp = %g, want 1", got)
	}
}

func TestFilteredBaseRows(t *testing.T) {
	// A has 1000 rows; a sel-0.25 filter leaves 250.
	q := filteredQuery(t, []query.Filter{{Rel: 0, Col: 0, Bound: 25}})
	m := NewModel(q, DefaultParams())
	if got := m.BaseRows(0); got != 250 {
		t.Errorf("BaseRows = %g, want 250", got)
	}
	// SetRows of the join uses the filtered cardinality.
	rows := m.SetRows(bits.Of(0, 1))
	// 250 · 5000 · sel(pred). The filter sits on A.c1 (the join column), so
	// the predicate selectivity uses the narrowed NDV: max(25, 500) = 500.
	want := 250.0 * 5000 / 500
	if math.Abs(rows-want) > 1e-6*want {
		t.Errorf("SetRows = %g, want %g", rows, want)
	}
}

func TestFilterNarrowsJoinNDV(t *testing.T) {
	// Filter on A.c1 (ndv 100) with sel 0.1 -> effective ndv 10; B.c2 has
	// ndv 500, so pred sel stays 1/500. Filter B.c2 instead with sel 0.1:
	// ndv 50 vs A's 100 -> sel = 1/100.
	qB, err := query.NewFiltered(handCatalog(), []int{0, 1},
		[]query.Pred{{LeftRel: 0, LeftCol: 0, RightRel: 1, RightCol: 1}},
		[]query.Filter{{Rel: 1, Col: 1, Bound: 50}}, nil) // B.c2 ndv 500 -> sel 0.1
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(qB, DefaultParams())
	if got := m.PredSel(0); got != 1.0/100 {
		t.Errorf("PredSel with filtered B.c2 = %g, want 1/100", got)
	}
}

func TestSeqScanAppliesFilterRows(t *testing.T) {
	q := filteredQuery(t, []query.Filter{{Rel: 0, Col: 2, Bound: 5}}) // A.c3 ndv 10 -> sel 0.5
	m := NewModel(q, DefaultParams())
	scan := m.AccessPaths(0)[0]
	if scan.Op != plan.SeqScan {
		t.Fatal("first path not a seq scan")
	}
	if scan.Rows != 500 {
		t.Errorf("filtered seq scan rows = %g, want 500", scan.Rows)
	}
	// Filtering costs CPU: the filtered scan is slightly more expensive
	// than the unfiltered one per tuple, never cheaper on IO.
	mu := NewModel(filteredQuery(t, nil), DefaultParams())
	unfiltered := mu.AccessPaths(0)[0]
	if scan.Cost < unfiltered.Cost {
		t.Errorf("filtered seq scan cheaper: %g < %g", scan.Cost, unfiltered.Cost)
	}
}

func TestIndexRangeScanBeatsSeqScanWhenSelective(t *testing.T) {
	// A selective filter on the indexed column c1 turns the index scan
	// into a cheap range scan.
	q := filteredQuery(t, []query.Filter{{Rel: 0, Col: 0, Bound: 2}}) // sel 0.02
	m := NewModel(q, DefaultParams())
	paths := m.AccessPaths(0)
	if len(paths) != 2 {
		t.Fatalf("want seq + index paths, got %d", len(paths))
	}
	seq, idx := paths[0], paths[1]
	if idx.Op != plan.IndexScan {
		t.Fatalf("second path is %v", idx.Op)
	}
	if idx.Cost >= seq.Cost {
		t.Errorf("selective index range scan (%g) should beat seq scan (%g)", idx.Cost, seq.Cost)
	}
	// An unselective filter must not make the index scan cheaper than the
	// full-scan version.
	qWide := filteredQuery(t, []query.Filter{{Rel: 0, Col: 0, Bound: 99}})
	mWide := NewModel(qWide, DefaultParams())
	wide := mWide.AccessPaths(0)[1]
	if wide.Cost < idx.Cost {
		t.Errorf("unselective range scan (%g) cheaper than selective (%g)", wide.Cost, idx.Cost)
	}
}

func TestIndexScanGeneratedForFilteredNonJoinIndex(t *testing.T) {
	// Relation D's index (c1) joins nothing; without filters it gets only
	// a seq scan. A filter on D.c1 should add the index range scan path.
	preds := []query.Pred{
		{LeftRel: 0, LeftCol: 1, RightRel: 1, RightCol: 1}, // A.c2 = D.c2
	}
	q, err := query.NewFiltered(handCatalog(), []int{0, 3}, preds,
		[]query.Filter{{Rel: 1, Col: 0, Bound: 10}}, nil) // D.c1 ndv 1000 -> sel 0.01
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(q, DefaultParams())
	paths := m.AccessPaths(1)
	if len(paths) != 2 {
		t.Fatalf("filtered indexed column should add an index path, got %d", len(paths))
	}
	if paths[1].Order != plan.NoOrder {
		t.Errorf("non-join index order = %d, want NoOrder", paths[1].Order)
	}
}
