package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sdpopt"
)

// loadCmd drives an open-loop load run against a running `sdplab serve`
// instance and prints the report. The -max-shed-rate, -max-5xx and
// -require-routes flags turn the run into an assertion (exit 1 on
// violation) so CI can smoke-test the serving path without parsing JSON.
func loadCmd(args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "target server base URL")
	qps := fs.Float64("qps", 25, "open-loop arrival rate")
	duration := fs.Duration("duration", 6*time.Second, "measured generation window")
	warmup := fs.Duration("warmup", 2*time.Second, "unmeasured lead-in at the same rate (negative = none)")
	arrivals := fs.String("arrivals", "poisson", "arrival process: poisson or constant")
	technique := fs.String("technique", "auto", "request technique field (auto = per-request routing)")
	timeoutMS := fs.Int64("timeout-ms", 100, "per-request deadline in ms (negative = none)")
	mixSpec := fs.String("mix", "", "workload mix as topology-rels:weight, e.g. star-7:3,chain-12:3,star-chain-15:2 (empty = default mix)")
	pool := fs.Int("pool", 0, "distinct query instances per mix entry (0 = default 6)")
	seed := fs.Int64("seed", 1, "query-generation and arrival-sampling seed")
	useCache := fs.Bool("use-cache", false, "let requests hit the server's plan cache (default bypasses it so every request measures optimization latency)")
	jsonOut := fs.String("json", "", "also write the report as JSON to this file (- for stdout)")
	maxShedRate := fs.Float64("max-shed-rate", -1, "fail if the shed rate exceeds this fraction (negative = no check)")
	max5xx := fs.Int("max-5xx", -1, "fail if more than this many requests got 5xx (negative = no check)")
	requireRoutes := fs.String("require-routes", "", "comma-separated techniques that must each have served >= 1 request")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := sdpopt.LoadOptions{
		URL:        strings.TrimSuffix(*addr, "/"),
		QPS:        *qps,
		Duration:   *duration,
		Warmup:     *warmup,
		Arrivals:   *arrivals,
		Technique:  *technique,
		TimeoutMS:  *timeoutMS,
		PoolSize:   *pool,
		Seed:       *seed,
		AllowCache: *useCache,
	}
	if *mixSpec != "" {
		mix, err := sdpopt.ParseLoadMix(*mixSpec)
		if err != nil {
			return err
		}
		opts.Mix = mix
	}
	r, err := sdpopt.RunLoad(context.Background(), opts)
	if err != nil {
		return err
	}
	fmt.Print(r.Render())
	if *jsonOut != "" {
		w := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			return err
		}
	}

	var violations []string
	if *maxShedRate >= 0 && r.ShedRate > *maxShedRate {
		violations = append(violations, fmt.Sprintf("shed rate %.4f exceeds %.4f", r.ShedRate, *maxShedRate))
	}
	if *max5xx >= 0 && r.Errors5xx > *max5xx {
		violations = append(violations, fmt.Sprintf("%d requests got 5xx (allowed %d)", r.Errors5xx, *max5xx))
	}
	if *requireRoutes != "" {
		for _, tech := range strings.Split(*requireRoutes, ",") {
			tech = strings.TrimSpace(tech)
			if tech != "" && r.Routes[tech] == 0 {
				violations = append(violations, fmt.Sprintf("route %q served no requests", tech))
			}
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("load checks failed: %s", strings.Join(violations, "; "))
	}
	return nil
}
