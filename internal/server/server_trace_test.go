package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sdpopt/internal/obs"
	"sdpopt/internal/obs/span"
	"sdpopt/internal/plancache"
	"sdpopt/internal/workload"
)

const starSQL = "SELECT * FROM R1 a, R2 b, R3 c, R4 d, R5 e WHERE a.c1 = b.c1 AND a.c2 = c.c1 AND a.c3 = d.c1 AND a.c4 = e.c1"

// getFlight pulls and decodes /debug/flight.json.
func getFlight(t *testing.T, url string) *span.FlightDump {
	t.Helper()
	resp, err := http.Get(url + "/debug/flight.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	d, err := span.ReadDump(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// spansNamed walks a dump span tree collecting spans with the given name.
func spansNamed(s span.SpanJSON, name string) []span.SpanJSON {
	var out []span.SpanJSON
	if s.Name == name {
		out = append(out, s)
	}
	for _, c := range s.Children {
		out = append(out, spansNamed(c, name)...)
	}
	return out
}

// TestRequestSpanTree is the acceptance check: one /optimize request yields
// a span tree at /debug/flight.json covering admission, canonicalization,
// cache, and — for SDP — per-level enumeration and per-partition pruning,
// under the caller's traceparent trace ID.
func TestRequestSpanTree(t *testing.T) {
	ob := obs.New()
	cache := plancache.New(plancache.Options{Obs: ob})
	_, ts := newTestServer(t, Options{Cache: cache, Obs: ob})

	const callerTP = "00-0123456789abcdef0123456789abcdef-00000000000000aa-01"
	body, _ := json.Marshal(OptimizeRequest{SQL: starSQL})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/optimize", bytes.NewReader(body))
	req.Header.Set("traceparent", callerTP)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize: code %d", resp.StatusCode)
	}
	echo := resp.Header.Get("traceparent")
	if !strings.HasPrefix(echo, "00-0123456789abcdef0123456789abcdef-") {
		t.Fatalf("traceparent echo %q does not keep the caller's trace ID", echo)
	}

	d := getFlight(t, ts.URL)
	var tr *span.TraceJSON
	traces := d.Traces()
	for i := range traces {
		if traces[i].TraceID == "0123456789abcdef0123456789abcdef" {
			tr = &traces[i]
		}
	}
	if tr == nil {
		t.Fatal("request trace not in flight dump")
	}
	if tr.Remote != "00000000000000aa" {
		t.Errorf("remote parent = %q, want caller span ID", tr.Remote)
	}
	if tr.Root == nil || tr.Root.Name != "request" {
		t.Fatalf("root span = %+v", tr.Root)
	}
	fp, _ := tr.Root.Attrs["fingerprint"].(string)
	if tr.Root.Attrs["technique"] != "sdp" || tr.Root.Attrs["source"] != "miss" || fp == "" {
		t.Errorf("root attrs = %+v", tr.Root.Attrs)
	}
	for _, name := range []string{"queue.wait", "canonicalize", "cache.lookup", "optimize", "sdp.level", "sdp.partition", "level"} {
		if len(spansNamed(*tr.Root, name)) == 0 {
			t.Errorf("span %q missing from tree:\n%s", name, tr.Render())
		}
	}
	lookups := spansNamed(*tr.Root, "cache.lookup")
	if len(lookups) != 1 || lookups[0].Attrs["source"] != "miss" {
		t.Errorf("cache.lookup = %+v", lookups)
	}

	// A repeat of the same shape hits the cache: its trace has a hit lookup
	// and no optimize span.
	code, _ := postOptimize(t, ts.URL, OptimizeRequest{SQL: starSQL})
	if code != http.StatusOK {
		t.Fatalf("second request: %d", code)
	}
	d = getFlight(t, ts.URL)
	var hit *span.TraceJSON
	traces = d.Traces()
	for i := range traces {
		if traces[i].TraceID != "0123456789abcdef0123456789abcdef" {
			hit = &traces[i]
		}
	}
	if hit == nil {
		t.Fatal("hit trace not recorded")
	}
	if ls := spansNamed(*hit.Root, "cache.lookup"); len(ls) != 1 || ls[0].Attrs["source"] != "hit" {
		t.Errorf("hit lookup = %+v", ls)
	}
	if len(spansNamed(*hit.Root, "optimize")) != 0 {
		t.Error("cache hit ran an optimize span")
	}
}

// TestQueueMetricAndExemplars checks the queue-wait histogram exists
// separately from the latency histogram, and that the OpenMetrics
// exposition carries trace-ID exemplars while the classic one stays clean.
func TestQueueMetricAndExemplars(t *testing.T) {
	ob := obs.New()
	_, ts := newTestServer(t, Options{Obs: ob})
	if code, _ := postOptimize(t, ts.URL, OptimizeRequest{SQL: testSQL}); code != http.StatusOK {
		t.Fatalf("optimize: %d", code)
	}

	get := func(accept string) string {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 32<<10)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return b.String()
	}

	classic := get("")
	if !strings.Contains(classic, "sdpopt_server_queue_seconds") {
		t.Error("queue-wait histogram missing from /metrics")
	}
	if strings.Contains(classic, "trace_id") {
		t.Error("classic exposition leaked exemplars (breaks 0.0.4 parsers)")
	}
	om := get("application/openmetrics-text")
	if !strings.Contains(om, "# {trace_id=") {
		t.Error("OpenMetrics exposition has no exemplars")
	}
	if !strings.HasSuffix(strings.TrimSpace(om), "# EOF") {
		t.Error("OpenMetrics exposition missing # EOF terminator")
	}
}

// TestErrorTracePinned checks a 504 trace lands in the notable ring and
// survives later fast traffic.
func TestErrorTracePinned(t *testing.T) {
	ob := obs.New()
	_, ts := newTestServer(t, Options{Obs: ob})
	qs, err := workload.Instances(workload.Spec{
		Cat: workload.PaperSchema(), Topology: workload.Star, NumRelations: 15, Seed: 3,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	code, _ := postOptimize(t, ts.URL, OptimizeRequest{
		SQL: qs[0].SQL(), Technique: "dp", TimeoutMS: 1, NoCache: true,
	})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("code %d, want 504", code)
	}
	for i := 0; i < 5; i++ {
		if code, _ := postOptimize(t, ts.URL, OptimizeRequest{SQL: testSQL}); code != http.StatusOK {
			t.Fatalf("fast request %d: %d", i, code)
		}
	}
	d := getFlight(t, ts.URL)
	found := false
	for _, tr := range d.Notable {
		if tr.Code == http.StatusGatewayTimeout && tr.Error != "" {
			found = true
		}
	}
	if !found {
		t.Fatalf("504 trace not pinned in notable ring (notable=%d recent=%d)", len(d.Notable), len(d.Recent))
	}
	if len(d.Recent) < 5 {
		t.Errorf("fast traces not in recent ring: %d", len(d.Recent))
	}
}

// TestShutdownFlushesTraceSink is the graceful-shutdown drain check: the
// final events of a request served just before Shutdown must reach the
// JSONL file through the sink's buffer without an explicit Close.
func TestShutdownFlushesTraceSink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	sink, err := obs.OpenJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	ob := obs.New(sink)
	s, err := New(Options{Cat: workload.PaperSchema(), Obs: ob})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(OptimizeRequest{SQL: testSQL})
	resp, err := http.Post("http://"+addr+"/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize: %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), obs.EvOptimizeEnd) {
		t.Fatalf("optimize.end not flushed to %s on shutdown (%d bytes present)", path, len(raw))
	}
}

// TestFlightUnderLoad races concurrent /optimize traffic against
// /debug/flight.json reads; meaningful under -race.
func TestFlightUnderLoad(t *testing.T) {
	ob := obs.New()
	cache := plancache.New(plancache.Options{Obs: ob})
	_, ts := newTestServer(t, Options{Cache: cache, Obs: ob, MaxConcurrent: 4, MaxQueue: 64,
		Flight: span.RecorderOptions{Recent: 8, Notable: 8}})

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				body, _ := json.Marshal(OptimizeRequest{SQL: starSQL})
				resp, err := http.Post(ts.URL+"/optimize", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}()
	}
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/debug/flight.json")
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := span.ReadDump(resp.Body); err != nil {
					t.Errorf("flight dump undecodable mid-traffic: %v", err)
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()

	d := getFlight(t, ts.URL)
	if d.Counts.Finished != 60 {
		t.Errorf("finished = %d, want 60", d.Counts.Finished)
	}
}
