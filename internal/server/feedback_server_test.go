package server

import (
	"context"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sdpopt/internal/catalog"
	"sdpopt/internal/feedback"
	"sdpopt/internal/obs"
	"sdpopt/internal/route"
)

// TestFeedbackEndToEnd drives the full loop: serve → exec sample → ledger →
// /debug/cardinality(.json) → JSONL corpus → lenient re-read.
func TestFeedbackEndToEnd(t *testing.T) {
	cat := catalog.MustSynthetic(catalog.Config{
		NumRelations: 6, BaseRows: 20, Ratio: 1.3,
		ColsPerRelation: 4, MinDomain: 4, MaxDomain: 30, Seed: 5,
	})
	logPath := filepath.Join(t.TempDir(), "feedback.jsonl")
	ob := obs.New()
	s, ts := newTestServer(t, Options{
		Cat: cat,
		Obs: ob,
		Feedback: &FeedbackOptions{
			SampleRate: 1,
			LogPath:    logPath,
		},
	})
	if s.FeedbackLedger() == nil || s.FeedbackSampler() == nil {
		t.Fatal("feedback subsystem not constructed")
	}

	star := &QuerySpec{Rels: []int{0, 1, 2, 3, 4}}
	for i := 1; i < 5; i++ {
		star.Preds = append(star.Preds, PredSpec{LeftRel: 0, LeftCol: 0, RightRel: i, RightCol: 1})
	}
	for i := 0; i < 3; i++ {
		code, resp := postOptimize(t, ts.URL, OptimizeRequest{Query: star, Technique: "sdp"})
		if code != http.StatusOK {
			t.Fatalf("optimize %d: code %d, error %q", i, code, resp.Error)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.FeedbackSampler().Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if s.FeedbackLedger().Total() == 0 {
		t.Fatal("ledger empty after sampled serves")
	}

	// The JSON surface reports per-object q-error quantiles.
	resp, err := http.Get(ts.URL + "/debug/cardinality.json")
	if err != nil {
		t.Fatal(err)
	}
	d, err := feedback.ReadDump(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Objects) == 0 || d.Sampler == nil || d.Sampler.Completed == 0 {
		t.Fatalf("cardinality dump: %d objects, sampler %+v", len(d.Objects), d.Sampler)
	}
	for _, o := range d.Objects {
		if o.QErrP50 < 1 || o.QErrMax < o.QErrP50 {
			t.Fatalf("bad quantiles: %+v", o)
		}
	}

	// The HTML page and the /debug index both render and cross-link.
	for path, want := range map[string]string{
		"/debug/cardinality": "cardinality feedback",
		"/debug":             "/debug/cardinality",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), want) {
			t.Fatalf("%s: code %d, body missing %q", path, resp.StatusCode, want)
		}
	}

	// Shutdown flushes and closes the corpus; the file re-reads leniently.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	observations, skipped, err := feedback.ReadCorpusLenient(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(observations) == 0 {
		t.Fatalf("corpus: %d observations, %d skipped", len(observations), skipped)
	}
	for _, o := range observations {
		if o.Tech != "sdp" || o.TraceID == "" {
			t.Fatalf("observation lost attribution: %+v", o)
		}
	}

	// Ledger metrics reached the registry.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if !strings.Contains(string(mb), "sdpopt_feedback_observations_total") {
		t.Fatal("feedback metrics missing from /metrics")
	}
}

// TestDebugIndexListsConfiguredSurfaces checks the index adapts to what the
// server actually mounts.
func TestDebugIndexListsConfiguredSurfaces(t *testing.T) {
	_, bare := newTestServer(t, Options{})
	resp, err := http.Get(bare.URL + "/debug")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	page := string(body)
	for _, want := range []string{"/debug/requests", "/debug/flight.json", "/debug/routes"} {
		if !strings.Contains(page, want) {
			t.Fatalf("index missing %s:\n%s", want, page)
		}
	}
	for _, absent := range []string{"/debug/regret", "/debug/cardinality", "/metrics"} {
		if strings.Contains(page, absent) {
			t.Fatalf("index lists unmounted surface %s", absent)
		}
	}

	// A JSON body on the .json twin but HTML on the index.
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Fatalf("index content type %q", ct)
	}
}

// TestStaleDemotionServes proves the serving-layer coupling end to end: with
// the exact tier opted in, an auto-routed query serves exhaustive DP while
// its estimates are healthy and is demoted to SDP once the ledger flags its
// objects stale.
func TestStaleDemotionServes(t *testing.T) {
	cat := catalog.MustSynthetic(catalog.Config{
		NumRelations: 8, BaseRows: 20, Ratio: 1.3,
		ColsPerRelation: 4, MinDomain: 4, MaxDomain: 30, Seed: 5,
	})
	s, ts := newTestServer(t, Options{
		Cat:      cat,
		Route:    route.Options{ExactRels: 12},
		Feedback: &FeedbackOptions{},
	})

	star := &QuerySpec{Rels: []int{0, 1, 2, 3, 4, 5}}
	for i := 1; i < 6; i++ {
		star.Preds = append(star.Preds, PredSpec{LeftRel: 0, LeftCol: 0, RightRel: i, RightCol: 1})
	}
	req := OptimizeRequest{Query: star, Technique: "auto", NoCache: true}

	code, healthy := postOptimize(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("healthy optimize: code %d, error %q", code, healthy.Error)
	}
	if healthy.Technique != route.TechDP || healthy.RouteReason != route.ReasonExact {
		t.Fatalf("healthy route = %s/%s, want dp/%s", healthy.Technique, healthy.RouteReason, route.ReasonExact)
	}

	// Feed the ledger 4× misestimates for one of the query's relations —
	// past MinObs, staleness 0.75, over the demotion threshold.
	for i := 0; i < 5; i++ {
		s.FeedbackLedger().Record(feedback.Observation{
			Object: cat.Rels[0].Name, Kind: feedback.KindRelation, Est: 400, Actual: 100,
		})
	}
	code, stale := postOptimize(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("stale optimize: code %d, error %q", code, stale.Error)
	}
	if stale.Technique != route.TechSDP || stale.RouteReason != route.ReasonStaleDemote {
		t.Fatalf("stale route = %s/%s, want sdp/%s", stale.Technique, stale.RouteReason, route.ReasonStaleDemote)
	}

	// A query not touching the stale relation keeps the exact tier.
	other := &QuerySpec{Rels: []int{1, 2, 3, 4, 5, 6}}
	for i := 1; i < 6; i++ {
		other.Preds = append(other.Preds, PredSpec{LeftRel: 0, LeftCol: 0, RightRel: i, RightCol: 1})
	}
	code, unaffected := postOptimize(t, ts.URL, OptimizeRequest{Query: other, Technique: "auto", NoCache: true})
	if code != http.StatusOK {
		t.Fatalf("unaffected optimize: code %d, error %q", code, unaffected.Error)
	}
	if unaffected.Technique != route.TechDP || unaffected.RouteReason != route.ReasonExact {
		t.Fatalf("unaffected route = %s/%s, want dp/%s", unaffected.Technique, unaffected.RouteReason, route.ReasonExact)
	}
}
