package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingle(t *testing.T) {
	for i := 0; i < MaxRelations; i++ {
		s := Single(i)
		if s.Len() != 1 {
			t.Fatalf("Single(%d).Len() = %d, want 1", i, s.Len())
		}
		if !s.Has(i) {
			t.Fatalf("Single(%d) does not contain %d", i, i)
		}
	}
}

func TestSingleOutOfRangePanics(t *testing.T) {
	for _, i := range []int{-1, MaxRelations, MaxRelations + 36} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Single(%d) did not panic", i)
				}
			}()
			Single(i)
		}()
	}
}

func TestOf(t *testing.T) {
	// Members on both sides of the word boundary.
	s := Of(0, 2, 5, 63, 64, 100)
	if got, want := s.Len(), 6; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	for _, i := range []int{0, 2, 5, 63, 64, 100} {
		if !s.Has(i) {
			t.Errorf("set missing %d", i)
		}
	}
	for _, i := range []int{1, 3, 4, 6, 62, 65, 99, 101, 127} {
		if s.Has(i) {
			t.Errorf("set wrongly contains %d", i)
		}
	}
}

func TestFull(t *testing.T) {
	cases := []struct {
		n    int
		want int
	}{{0, 0}, {1, 1}, {5, 5}, {63, 63}, {64, 64}, {65, 65}, {127, 127}, {128, 128}}
	for _, c := range cases {
		f := Full(c.n)
		if got := f.Len(); got != c.want {
			t.Errorf("Full(%d).Len() = %d, want %d", c.n, got, c.want)
		}
		if c.n > 0 && (f.Min() != 0 || f.Max() != c.n-1) {
			t.Errorf("Full(%d) spans [%d,%d], want [0,%d]", c.n, f.Min(), f.Max(), c.n-1)
		}
		if c.n < MaxRelations && f.Has(c.n) {
			t.Errorf("Full(%d) contains %d", c.n, c.n)
		}
	}
}

func TestFullOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Full(%d) did not panic", MaxRelations+1)
		}
	}()
	Full(MaxRelations + 1)
}

func TestAddRemove(t *testing.T) {
	s := Set{}
	s = s.Add(3).Add(7).Add(3).Add(80).Add(80)
	if got := s.Len(); got != 3 {
		t.Fatalf("Len after adds = %d, want 3", got)
	}
	s = s.Remove(3)
	if s.Has(3) || !s.Has(7) || !s.Has(80) {
		t.Fatalf("after Remove(3): %v", s)
	}
	s = s.Remove(3) // removing an absent element is a no-op
	if got := s.Len(); got != 2 {
		t.Fatalf("Len after double remove = %d, want 2", got)
	}
	s = s.Remove(80)
	if s.Has(80) || s.Len() != 1 {
		t.Fatalf("after Remove(80): %v", s)
	}
}

func TestSetAlgebra(t *testing.T) {
	a := Of(0, 1, 2, 64)
	b := Of(2, 3, 64, 65)
	if got, want := a.Union(b), Of(0, 1, 2, 3, 64, 65); got != want {
		t.Errorf("Union = %v, want %v", got, want)
	}
	if got, want := a.Intersect(b), Of(2, 64); got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if got, want := a.Diff(b), Of(0, 1); got != want {
		t.Errorf("Diff = %v, want %v", got, want)
	}
	if !a.Overlaps(b) || a.Disjoint(b) {
		t.Error("a and b should overlap")
	}
	c := Of(4, 5, 90)
	if a.Overlaps(c) || !a.Disjoint(c) {
		t.Error("a and c should be disjoint")
	}
	if !a.Contains(Of(0, 2, 64)) || a.Contains(b) {
		t.Error("Contains misbehaves")
	}
	// Cross-word-only overlap: low words disjoint, high words share a bit.
	d, e := Of(1, 100), Of(2, 100)
	if !d.Overlaps(e) || d.Disjoint(e) {
		t.Error("cross-word overlap missed")
	}
}

func TestMinMax(t *testing.T) {
	cases := []struct {
		s        Set
		min, max int
	}{
		{Of(3, 10, 41), 3, 41},
		{Of(63), 63, 63},
		{Of(64), 64, 64},
		{Of(63, 64), 63, 64},
		{Of(5, 127), 5, 127},
		{Of(70, 127), 70, 127},
	}
	for _, c := range cases {
		if got := c.s.Min(); got != c.min {
			t.Errorf("%v.Min() = %d, want %d", c.s, got, c.min)
		}
		if got := c.s.Max(); got != c.max {
			t.Errorf("%v.Max() = %d, want %d", c.s, got, c.max)
		}
	}
}

func TestMinMaxEmptyPanics(t *testing.T) {
	for name, fn := range map[string]func(Set) int{"Min": Set.Min, "Max": Set.Max} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s of empty set did not panic", name)
				}
			}()
			fn(Set{})
		}()
	}
}

func TestEachAndSlice(t *testing.T) {
	s := Of(5, 1, 9, 64, 63, 127)
	want := []int{1, 5, 9, 63, 64, 127}
	got := s.Slice()
	if len(got) != len(want) {
		t.Fatalf("Slice = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v", got, want)
		}
	}
}

func TestLessCompareOrder(t *testing.T) {
	// Canonical numeric order: word 1 is the high word. Sets confined to
	// the first 64 relations order exactly as the historical uint64 did.
	ordered := []Set{
		{},
		Of(0),
		Of(1),
		Of(0, 1),
		Of(63),
		Of(0, 63),
		Of(64),     // any high-word bit outranks every low-word-only set
		Of(63, 64), // ...and the low word breaks ties
		Of(65),
		Of(127),
	}
	for i := range ordered {
		for j := range ordered {
			wantLess := i < j
			if got := ordered[i].Less(ordered[j]); got != wantLess {
				t.Errorf("%v.Less(%v) = %v, want %v", ordered[i], ordered[j], got, wantLess)
			}
			wantCmp := 0
			if i < j {
				wantCmp = -1
			} else if i > j {
				wantCmp = 1
			}
			if got := ordered[i].Compare(ordered[j]); got != wantCmp {
				t.Errorf("%v.Compare(%v) = %d, want %d", ordered[i], ordered[j], got, wantCmp)
			}
		}
	}
}

func TestHashEqualSetsEqualHash(t *testing.T) {
	a := Of(0, 63, 64, 127)
	b := Of(127, 64, 63, 0)
	if a.Hash() != b.Hash() {
		t.Fatal("equal sets hash differently")
	}
	// Word swap must not collide trivially: {0} vs {64} differ.
	if Of(0).Hash() == Of(64).Hash() {
		t.Fatal("word-swapped singletons collide")
	}
}

func TestFromWords(t *testing.T) {
	s := FromWords(1<<5|1<<63, 1<<0|1<<63)
	if got, want := s, Of(5, 63, 64, 127); got != want {
		t.Fatalf("FromWords = %v, want %v", got, want)
	}
	if got, want := FromWords(7), Of(0, 1, 2); got != want {
		t.Fatalf("FromWords(7) = %v, want %v", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("FromWords with too many words did not panic")
		}
	}()
	FromWords(1, 2, 3)
}

func TestSubsetsPartitionsOnce(t *testing.T) {
	// For s spanning the word boundary, Subsets must visit each unordered
	// 2-partition exactly once: every emitted subset contains the low bit,
	// and together with its complement covers s.
	s := Of(0, 1, 63, 64)
	seen := map[Set]bool{}
	s.Subsets(func(sub Set) bool {
		if seen[sub] {
			t.Fatalf("subset %v emitted twice", sub)
		}
		seen[sub] = true
		if !sub.Has(0) {
			t.Fatalf("subset %v missing low bit", sub)
		}
		comp := s.Diff(sub)
		if comp.IsEmpty() {
			t.Fatalf("full set %v emitted as proper subset", sub)
		}
		if !s.Contains(sub) {
			t.Fatalf("subset %v not inside %v", sub, s)
		}
		return true
	})
	// A 4-element set has 2^3 subsets containing the low bit, minus the full
	// set itself: 7 proper subsets.
	if len(seen) != 7 {
		t.Fatalf("got %d subsets, want 7", len(seen))
	}
}

func TestSubsetsEarlyStop(t *testing.T) {
	s := Of(0, 1, 2, 3, 4)
	n := 0
	s.Subsets(func(Set) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop after %d emissions, want 3", n)
	}
}

func TestSubsetsEmptyAndSingleton(t *testing.T) {
	(Set{}).Subsets(func(Set) bool {
		t.Fatal("empty set emitted a subset")
		return true
	})
	Single(3).Subsets(func(Set) bool {
		t.Fatal("singleton emitted a proper subset containing its low bit")
		return true
	})
	Single(127).Subsets(func(Set) bool {
		t.Fatal("high-word singleton emitted a proper subset")
		return true
	})
}

func TestSubsetsAllOrderIsSubsetCompatible(t *testing.T) {
	// DPccp relies on the subset-counter order being ⊆-compatible: every
	// set is emitted after all of its proper subsets. Verify across the
	// word boundary.
	s := Of(2, 63, 64, 100)
	var order []Set
	pos := map[Set]int{}
	s.SubsetsAll(func(sub Set) bool {
		pos[sub] = len(order)
		order = append(order, sub)
		return true
	})
	if len(order) != 1<<s.Len() {
		t.Fatalf("SubsetsAll emitted %d sets, want %d", len(order), 1<<s.Len())
	}
	if order[0] != (Set{}) || order[len(order)-1] != s {
		t.Fatalf("SubsetsAll order starts %v ends %v", order[0], order[len(order)-1])
	}
	for _, a := range order {
		for _, b := range order {
			if a != b && b.Contains(a) && pos[b] < pos[a] {
				t.Fatalf("superset %v emitted before subset %v", b, a)
			}
		}
	}
}

// randomSet draws a set with popcount ≤ maxLen whose members spread across
// the whole 128-bit range, biased to hit the word-boundary bits.
func randomSet(rng *rand.Rand, maxLen int) Set {
	boundary := []int{0, 62, 63, 64, 65, 126, 127}
	var s Set
	n := 1 + rng.Intn(maxLen)
	for s.Len() < n {
		if rng.Intn(3) == 0 {
			s = s.Add(boundary[rng.Intn(len(boundary))])
		} else {
			s = s.Add(rng.Intn(MaxRelations))
		}
	}
	return s
}

// Property: union/intersection/difference behave like their map-based models
// over the full 128-bit domain.
func TestQuickSetAlgebraModel(t *testing.T) {
	f := func(a0, a1, b0, b1 uint64) bool {
		sa, sb := FromWords(a0, a1), FromWords(b0, b1)
		model := func(s Set) map[int]bool {
			m := map[int]bool{}
			s.Each(func(i int) { m[i] = true })
			return m
		}
		ma, mb := model(sa), model(sb)
		for i := 0; i < MaxRelations; i++ {
			if sa.Union(sb).Has(i) != (ma[i] || mb[i]) {
				return false
			}
			if sa.Intersect(sb).Has(i) != (ma[i] && mb[i]) {
				return false
			}
			if sa.Diff(sb).Has(i) != (ma[i] && !mb[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Len equals the number of elements Each visits, and Slice is
// sorted strictly increasing.
func TestQuickLenAndOrder(t *testing.T) {
	f := func(a0, a1 uint64) bool {
		s := FromWords(a0, a1)
		sl := s.Slice()
		if len(sl) != s.Len() {
			return false
		}
		for i := 1; i < len(sl); i++ {
			if sl[i] <= sl[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Less is a strict total order consistent with Compare, and agrees
// with lexicographic comparison of the reversed word arrays.
func TestQuickLessTotalOrder(t *testing.T) {
	f := func(a0, a1, b0, b1 uint64) bool {
		a, b := FromWords(a0, a1), FromWords(b0, b1)
		la, lb := a.Less(b), b.Less(a)
		if a == b {
			return !la && !lb && a.Compare(b) == 0
		}
		if la == lb { // exactly one direction must hold for distinct sets
			return false
		}
		if la && a.Compare(b) != -1 {
			return false
		}
		if lb && a.Compare(b) != 1 {
			return false
		}
		// Model: big-endian word comparison.
		wantLess := a[1] < b[1] || (a[1] == b[1] && a[0] < b[0])
		return la == wantLess
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every subset emitted by Subsets S satisfies S∪(s\S)=s, S∩(s\S)=∅,
// and contains the low bit; the emission count is 2^(len-1)-1 for non-empty s.
func TestQuickSubsetsInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		// Cap the popcount so enumeration stays fast; members span both words.
		s := randomSet(rng, 10)
		count := 0
		ok := true
		s.Subsets(func(sub Set) bool {
			count++
			comp := s.Diff(sub)
			if !sub.Has(s.Min()) || sub.Union(comp) != s || !sub.Disjoint(comp) {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			t.Fatalf("subset invariant violated for %v", s)
		}
		want := 1<<(s.Len()-1) - 1
		if count != want {
			t.Fatalf("s=%v emitted %d subsets, want %d", s, count, want)
		}
	}
}
