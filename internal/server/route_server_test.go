package server

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"sdpopt/internal/obs"
	"sdpopt/internal/plancache"
	"sdpopt/internal/route"
	"sdpopt/internal/workload"
)

// topoSpec instantiates one deterministic workload query and re-serializes
// it as the request's query-JSON shape.
func topoSpec(t *testing.T, topo workload.Topology, n int) *QuerySpec {
	t.Helper()
	q, err := workload.One(workload.Spec{
		Cat: workload.PaperSchema(), Topology: topo, NumRelations: n, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := &QuerySpec{Rels: q.Rels}
	for _, p := range q.Preds {
		spec.Preds = append(spec.Preds, PredSpec{
			LeftRel: p.LeftRel, LeftCol: p.LeftCol, RightRel: p.RightRel, RightCol: p.RightCol,
		})
	}
	return spec
}

// TestRequestTechniqueValidation: unknown technique values get a 400 that
// lists the valid set, which includes "auto".
func TestRequestTechniqueValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	code, resp := postOptimize(t, ts.URL, OptimizeRequest{SQL: testSQL, Technique: "quantum"})
	if code != http.StatusBadRequest {
		t.Fatalf("unknown technique: code %d, want 400", code)
	}
	for _, want := range []string{"quantum", "auto", "sdp", "greedy"} {
		if !strings.Contains(resp.Error, want) {
			t.Errorf("400 body %q does not mention %q", resp.Error, want)
		}
	}

	// "auto" itself is valid and resolves to a real engine.
	code, resp = postOptimize(t, ts.URL, OptimizeRequest{SQL: testSQL, Technique: "auto"})
	if code != http.StatusOK {
		t.Fatalf("auto: code %d, error %q", code, resp.Error)
	}
	if resp.Technique == "auto" || resp.Technique == "" {
		t.Fatalf("auto not resolved: technique %q", resp.Technique)
	}
	if !strings.HasPrefix(resp.RouteReason, "auto:") {
		t.Fatalf("route_reason = %q, want an auto:* reason", resp.RouteReason)
	}
}

// TestAutoRoutesByShape: the base ladder over real served queries — chains
// and small queries take the greedy fast path, mid-size stars the SDP
// default — and every decision lands in /debug/routes.json and the
// decision counter, including for cache hits.
func TestAutoRoutesByShape(t *testing.T) {
	ob := obs.New()
	cache := plancache.New(plancache.Options{Obs: ob})
	s, ts := newTestServer(t, Options{Cache: cache, Obs: ob})

	cases := []struct {
		name   string
		spec   *QuerySpec
		tech   string
		reason string
	}{
		{"chain-10", topoSpec(t, workload.Chain, 10), "greedy", route.ReasonFastPath},
		{"star-4", topoSpec(t, workload.Star, 4), "greedy", route.ReasonFastPath},
		{"star-9", topoSpec(t, workload.Star, 9), "sdp", route.ReasonDefault},
	}
	for _, c := range cases {
		code, resp := postOptimize(t, ts.URL, OptimizeRequest{Technique: "auto", Query: c.spec})
		if code != http.StatusOK {
			t.Fatalf("%s: code %d, error %q", c.name, code, resp.Error)
		}
		if resp.Technique != c.tech || resp.RouteReason != c.reason {
			t.Errorf("%s: routed (%s, %s), want (%s, %s)",
				c.name, resp.Technique, resp.RouteReason, c.tech, c.reason)
		}
		if resp.Cost <= 0 || resp.Shape == "" {
			t.Errorf("%s: no plan in routed response: %+v", c.name, resp)
		}
	}

	// A repeat of the star-9 query is a cache hit — and the hit must still
	// record its route.
	code, resp := postOptimize(t, ts.URL, OptimizeRequest{Technique: "auto", Query: cases[2].spec})
	if code != http.StatusOK || resp.Source != "hit" {
		t.Fatalf("repeat: code %d source %q, want 200 hit", code, resp.Source)
	}
	if resp.RouteReason != route.ReasonDefault {
		t.Errorf("hit route_reason = %q, want %q", resp.RouteReason, route.ReasonDefault)
	}

	d := s.Router().Snapshot()
	var total int64
	for _, dc := range d.Decisions {
		total += dc.Count
	}
	if total != 4 {
		t.Errorf("router counted %d decisions, want 4: %+v", total, d.Decisions)
	}

	// The decision counter reaches /metrics with route/reason/source labels.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	buf := make([]byte, 1<<20)
	n, _ := mresp.Body.Read(buf)
	metrics := string(buf[:n])
	if !strings.Contains(metrics, obs.MRouteDecisions) {
		t.Error("route decision counter missing from /metrics")
	}
}

// TestExplicitTechniqueRecordsRoute: requests that name their engine are
// tallied under the "explicit" reason and carry it in the response.
func TestExplicitTechniqueRecordsRoute(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	code, resp := postOptimize(t, ts.URL, OptimizeRequest{SQL: testSQL, Technique: "greedy"})
	if code != http.StatusOK {
		t.Fatalf("code %d, error %q", code, resp.Error)
	}
	if resp.RouteReason != route.ReasonExplicit {
		t.Errorf("route_reason = %q, want %q", resp.RouteReason, route.ReasonExplicit)
	}
	d := s.Router().Snapshot()
	if len(d.Decisions) != 1 || d.Decisions[0].Reason != route.ReasonExplicit {
		t.Errorf("decisions = %+v, want one explicit tally", d.Decisions)
	}
}

// TestAutoDeadlineDowngrade: deadlines the SDP prior cannot fit are
// downgraded pre-flight — to the IDP2 middle rung while it fits, all the
// way to greedy when it does not — and the request succeeds with a plan
// and a reason rather than timing out.
func TestAutoDeadlineDowngrade(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	// Star-13 sits in the 13-16 band: the cold SDP prior (60ms ×2 safety)
	// is over a 50ms deadline but IDP2's (15ms ×2) fits it; a 20ms
	// deadline fits neither and walks down to greedy.
	// The 20ms case must run first: once the 50ms case has executed IDP2
	// and the profile learned its real single-digit-ms latency, a 20ms
	// deadline legitimately fits IDP2 too.
	cases := []struct {
		timeoutMS int64
		tech      string
	}{
		{20, route.TechGreedy},
		{50, route.TechIDP},
	}
	for _, c := range cases {
		code, resp := postOptimize(t, ts.URL, OptimizeRequest{
			Technique: "auto",
			Query:     topoSpec(t, workload.Star, 13),
			TimeoutMS: c.timeoutMS,
			NoCache:   true,
		})
		if code != http.StatusOK {
			t.Fatalf("timeout %dms: code %d, error %q — a routed request must not 504 on a tight deadline",
				c.timeoutMS, code, resp.Error)
		}
		if resp.Technique != c.tech || resp.RouteReason != route.ReasonDeadlineDowngrade {
			t.Fatalf("timeout %dms: routed (%s, %s), want (%s, %s)",
				c.timeoutMS, resp.Technique, resp.RouteReason, c.tech, route.ReasonDeadlineDowngrade)
		}
		if resp.Cost <= 0 {
			t.Fatalf("timeout %dms: downgraded request returned no plan", c.timeoutMS)
		}
	}
}

// TestAutoMidFlightDemote is the acceptance-criteria path: the router's
// learned profile says the engine fits the deadline, the engine then blows
// its slice mid-flight, and the request STILL returns 200 with a greedy
// plan and a route_reason naming the fallback — never a 504 caused by
// routing.
func TestAutoMidFlightDemote(t *testing.T) {
	ob := obs.New()
	// HeavyRels above 24 keeps star-24 on the SDP default instead of the
	// IDP2 heavy-tail rung, so the demotion path has an engine slow
	// enough (SDP star-24 runs for hundreds of ms) to blow its slice.
	s, ts := newTestServer(t, Options{Obs: ob, Route: route.Options{HeavyRels: 30}})

	// Teach the router a wildly optimistic SDP latency for big stars, so
	// the pre-flight check happily routes a 24-relation star into a 200ms
	// deadline.
	s.Router().Observe(route.TechSDP, "star", route.Band(24), time.Millisecond, false)

	code, resp := postOptimize(t, ts.URL, OptimizeRequest{
		Technique: "auto",
		Query:     topoSpec(t, workload.Star, 24),
		TimeoutMS: 200,
		NoCache:   true,
	})
	if code != http.StatusOK {
		t.Fatalf("code %d, error %q — the mid-flight fallback must rescue the request", code, resp.Error)
	}
	if resp.Technique != "greedy" || resp.RouteReason != route.ReasonDeadlineDemote {
		t.Fatalf("routed (%s, %s), want (greedy, %s)", resp.Technique, resp.RouteReason, route.ReasonDeadlineDemote)
	}
	if resp.Cost <= 0 {
		t.Fatal("demoted request returned no plan")
	}

	// The demotion is pinned into the flight recorder's notable ring and
	// counted as a fallback.
	fd := s.Flight().Snapshot()
	if len(fd.Notable) == 0 {
		t.Error("no pinned trace for the demotion")
	}
	if got := ob.Counter(obs.MRouteFallbacks).Value(); got != 1 {
		t.Errorf("fallback counter = %d, want 1", got)
	}
	if d := s.Router().Snapshot(); d.Fallbacks != 1 {
		t.Errorf("router fallback tally = %d, want 1", d.Fallbacks)
	}

	// The timed-out slice fed the latency profile as an inflated lower
	// bound, so the same request now downgrades pre-flight — onto the
	// IDP2 rung, whose prior fits the deadline SDP just blew.
	code, resp = postOptimize(t, ts.URL, OptimizeRequest{
		Technique: "auto",
		Query:     topoSpec(t, workload.Star, 24),
		TimeoutMS: 200,
		NoCache:   true,
	})
	if code != http.StatusOK {
		t.Fatalf("second request: code %d, error %q", code, resp.Error)
	}
	if resp.Technique != route.TechIDP || resp.RouteReason != route.ReasonDeadlineDowngrade {
		t.Fatalf("second request routed (%s, %s), want pre-flight (%s, %s)",
			resp.Technique, resp.RouteReason, route.TechIDP, route.ReasonDeadlineDowngrade)
	}
}

// TestAutoRegretPromote: a fast-path key whose shadow-measured ρ degraded
// is served by SDP instead, with the regret-promotion reason.
func TestAutoRegretPromote(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	for i := 0; i < 4; i++ {
		s.Router().NoteRegret(route.TechGreedy, "chain", route.Band(10), 3.0)
	}
	code, resp := postOptimize(t, ts.URL, OptimizeRequest{
		Technique: "auto",
		Query:     topoSpec(t, workload.Chain, 10),
	})
	if code != http.StatusOK {
		t.Fatalf("code %d, error %q", code, resp.Error)
	}
	if resp.Technique != "sdp" || resp.RouteReason != route.ReasonRegretPromote {
		t.Fatalf("routed (%s, %s), want (sdp, %s)", resp.Technique, resp.RouteReason, route.ReasonRegretPromote)
	}
}

// TestDebugRoutesEndpoints: both routing debug surfaces respond.
func TestDebugRoutesEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, path := range []string{"/debug/routes", "/debug/routes.json"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: code %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
}
