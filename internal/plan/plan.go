// Package plan defines physical query execution plans.
//
// A Plan is an immutable operator tree annotated with the estimated total
// cost, output cardinality, and output ordering. Orderings are identified by
// join-column equivalence class ids (see query.EqClass); a plan ordered on a
// class can feed a merge join on any predicate of that class or satisfy an
// ORDER BY on any of its columns — the classic "interesting orders" of
// Selinger et al. that the paper's Section 2.1.4 builds on.
package plan

import (
	"fmt"
	"strings"

	"sdpopt/internal/bits"
)

// Op identifies a physical operator.
type Op uint8

// Physical operators. IndexNestLoop is a nested-loop join whose inner side
// re-descends a base-relation index per outer row (a parameterized index
// scan); its Right child is the IndexScan it repeats.
const (
	SeqScan Op = iota
	IndexScan
	Sort
	NestLoop
	IndexNestLoop
	HashJoin
	MergeJoin
)

// NoOrder marks a plan with no useful output ordering.
const NoOrder = -1

var opNames = [...]string{
	SeqScan:       "Seq Scan",
	IndexScan:     "Index Scan",
	Sort:          "Sort",
	NestLoop:      "Nested Loop",
	IndexNestLoop: "Nested Loop (indexed inner)",
	HashJoin:      "Hash Join",
	MergeJoin:     "Merge Join",
}

// String returns the operator's display name.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// IsJoin reports whether the operator combines two inputs.
func (o Op) IsJoin() bool {
	return o == NestLoop || o == IndexNestLoop || o == HashJoin || o == MergeJoin
}

// IsScan reports whether the operator reads a base relation.
func (o Op) IsScan() bool { return o == SeqScan || o == IndexScan }

// Plan is a node of a physical plan tree. Plans are immutable once built.
type Plan struct {
	Op   Op
	Rels bits.Set // base relations covered by this subtree
	// Left and Right are the children: both nil for scans; Right nil for
	// Sort.
	Left, Right *Plan
	// Rel is the query-local base relation index for scan nodes.
	Rel int
	// Cost is the estimated total cost in the cost model's units
	// (PostgreSQL-style: one unit = one sequential page fetch).
	Cost float64
	// Rows is the estimated output cardinality.
	Rows float64
	// Order is the join-column equivalence class the output is sorted on,
	// or NoOrder.
	Order int
}

// Remap returns a copy of the tree with every query-local relation index
// translated through relMap (relMap[old] = new) and every output-order
// equivalence class through orderMap (NoOrder is preserved). Both maps must
// be permutations covering the tree's indexes. Plans are immutable, so
// translating between query frames — e.g. the plan cache's canonical frame
// and a requester's local frame — always copies.
func (p *Plan) Remap(relMap, orderMap []int) *Plan {
	if p == nil {
		return nil
	}
	cp := *p
	cp.Left = p.Left.Remap(relMap, orderMap)
	cp.Right = p.Right.Remap(relMap, orderMap)
	var rels bits.Set
	p.Rels.Each(func(i int) { rels = rels.Add(relMap[i]) })
	cp.Rels = rels
	if p.Op.IsScan() {
		cp.Rel = relMap[p.Rel]
	}
	if p.Order != NoOrder {
		cp.Order = orderMap[p.Order]
	}
	return &cp
}

// NumJoins returns the number of join operators in the tree.
func (p *Plan) NumJoins() int {
	if p == nil {
		return 0
	}
	n := p.Left.NumJoins() + p.Right.NumJoins()
	if p.Op.IsJoin() {
		n++
	}
	return n
}

// Validate checks structural invariants of the tree: children partition the
// node's relation set, scans cover exactly one relation, costs and rows are
// non-negative and non-decreasing from child to parent where the operator
// implies it. It is used by tests and fuzzing to catch construction bugs.
func (p *Plan) Validate() error {
	if p == nil {
		return fmt.Errorf("plan: nil node")
	}
	switch {
	case p.Op.IsScan():
		if p.Left != nil || p.Right != nil {
			return fmt.Errorf("plan: scan %v has children", p.Op)
		}
		if p.Rels.Len() != 1 || !p.Rels.Has(p.Rel) {
			return fmt.Errorf("plan: scan covers %v but Rel=%d", p.Rels, p.Rel)
		}
	case p.Op == Sort:
		if p.Left == nil || p.Right != nil {
			return fmt.Errorf("plan: sort must have exactly one child")
		}
		if err := p.Left.Validate(); err != nil {
			return err
		}
		if p.Rels != p.Left.Rels {
			return fmt.Errorf("plan: sort rels %v != child %v", p.Rels, p.Left.Rels)
		}
		if p.Order == NoOrder {
			return fmt.Errorf("plan: sort with no target order")
		}
		if p.Rows != p.Left.Rows {
			return fmt.Errorf("plan: sort changes cardinality %g -> %g", p.Left.Rows, p.Rows)
		}
		if p.Cost < p.Left.Cost {
			return fmt.Errorf("plan: sort cheaper than its input")
		}
	case p.Op.IsJoin():
		if p.Left == nil || p.Right == nil {
			return fmt.Errorf("plan: join %v missing a child", p.Op)
		}
		for _, c := range []*Plan{p.Left, p.Right} {
			if err := c.Validate(); err != nil {
				return err
			}
		}
		if !p.Left.Rels.Disjoint(p.Right.Rels) {
			return fmt.Errorf("plan: join children overlap: %v and %v", p.Left.Rels, p.Right.Rels)
		}
		if p.Rels != p.Left.Rels.Union(p.Right.Rels) {
			return fmt.Errorf("plan: join rels %v != union of children", p.Rels)
		}
		if p.Op == IndexNestLoop && p.Right.Op != IndexScan {
			return fmt.Errorf("plan: indexed nested loop inner is %v, want Index Scan", p.Right.Op)
		}
	default:
		return fmt.Errorf("plan: unknown op %d", int(p.Op))
	}
	if p.Cost < 0 || p.Rows < 0 {
		return fmt.Errorf("plan: negative cost %g or rows %g", p.Cost, p.Rows)
	}
	return nil
}

// Shape returns a compact one-line rendering of the join structure, e.g.
// "((R1 ⋈ R3) ⋈ R2)". relName maps a query-local relation index to a name.
func (p *Plan) Shape(relName func(int) string) string {
	var b strings.Builder
	p.shape(&b, relName)
	return b.String()
}

func (p *Plan) shape(b *strings.Builder, relName func(int) string) {
	switch {
	case p.Op.IsScan():
		b.WriteString(relName(p.Rel))
	case p.Op == Sort:
		p.Left.shape(b, relName)
	default:
		b.WriteByte('(')
		p.Left.shape(b, relName)
		b.WriteString(" ⋈ ")
		p.Right.shape(b, relName)
		b.WriteByte(')')
	}
}

// Explain renders the tree in a PostgreSQL-EXPLAIN-like indented format.
func (p *Plan) Explain(relName func(int) string) string {
	var b strings.Builder
	p.explain(&b, relName, 0)
	return b.String()
}

func (p *Plan) explain(b *strings.Builder, relName func(int) string, depth int) {
	indent := strings.Repeat("  ", depth)
	if depth > 0 {
		indent += "-> "
	}
	fmt.Fprintf(b, "%s%s", indent, p.Op)
	if p.Op.IsScan() {
		fmt.Fprintf(b, " on %s", relName(p.Rel))
	}
	fmt.Fprintf(b, "  (cost=%.2f rows=%.0f", p.Cost, p.Rows)
	if p.Order != NoOrder {
		fmt.Fprintf(b, " order=ec%d", p.Order)
	}
	b.WriteString(")\n")
	for _, c := range []*Plan{p.Left, p.Right} {
		if c != nil {
			c.explain(b, relName, depth+1)
		}
	}
}
