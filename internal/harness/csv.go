package harness

import (
	"fmt"
	"strings"
)

// CSV renders the batch as comma-separated values, one row per technique,
// for external plotting (the paper's Figure 1.2 style quality-vs-effort
// series). Infeasible techniques emit empty metric fields.
func (b *Batch) CSV() string {
	var sb strings.Builder
	sb.WriteString("graph,technique,feasible,pct_ideal,pct_good,pct_acceptable,pct_bad,worst,rho,peak_mem_mb,mean_time_us,mean_plans_costed\n")
	for _, o := range b.Outcomes {
		if !o.Feasible {
			fmt.Fprintf(&sb, "%s,%s,false,,,,,,,%.3f,%d,%.0f\n",
				b.Graph, o.Name, o.PeakMemMB, o.MeanTime.Microseconds(), o.MeanCosted)
			continue
		}
		s := o.Summary
		fmt.Fprintf(&sb, "%s,%s,true,%.1f,%.1f,%.1f,%.1f,%.4f,%.4f,%.3f,%d,%.0f\n",
			b.Graph, o.Name, s.PctIdeal, s.PctGood, s.PctAcceptable, s.PctBad,
			s.Worst, s.Rho, o.PeakMemMB, o.MeanTime.Microseconds(), o.MeanCosted)
	}
	return sb.String()
}
