package sdpopt_test

import (
	"fmt"

	"sdpopt"
)

// ExampleOptimizeSDP optimizes one star query with Skyline Dynamic
// Programming and shows that its plan matches exhaustive DP's cost while
// searching a fraction of the space.
func ExampleOptimizeSDP() {
	cat := sdpopt.PaperSchema()
	qs, _ := sdpopt.Instances(sdpopt.WorkloadSpec{
		Cat: cat, Topology: sdpopt.Star, NumRelations: 10, Seed: 7,
	}, 1)
	q := qs[0]

	optimal, dpStats, _ := sdpopt.OptimizeDP(q, sdpopt.DPOptions{})
	plan, sdpStats, _ := sdpopt.OptimizeSDP(q, sdpopt.SDPOptions())

	fmt.Println("SDP matches DP:", plan.Cost <= optimal.Cost*1.0000001)
	fmt.Println("SDP searched less:", sdpStats.PlansCosted < dpStats.PlansCosted)
	// Output:
	// SDP matches DP: true
	// SDP searched less: true
}

// ExampleParseSQL builds a query from SQL text and inspects its join
// graph.
func ExampleParseSQL() {
	cat := sdpopt.PaperSchema()
	q, err := sdpopt.ParseSQL(cat, `
		SELECT * FROM R25 f, R3 d1, R5 d2
		WHERE f.c1 = d1.c2 AND f.c3 = d2.c4 AND d1.c7 < 50`)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("relations:", q.NumRelations())
	fmt.Println("filters:", len(q.Filters))
	fmt.Println("hubs:", q.HubRels())
	// Output:
	// relations: 3
	// filters: 1
	// hubs: {}
}

// ExampleTPCHQuery optimizes the paper's TPC-H exemplar, query 8, whose
// star-chain shape motivates the whole study.
func ExampleTPCHQuery() {
	cat, _ := sdpopt.TPCHSchema(1)
	q, _ := sdpopt.TPCHQuery(cat, "Q8")

	optimal, _, _ := sdpopt.OptimizeDP(q, sdpopt.DPOptions{})
	plan, _, _ := sdpopt.OptimizeSDP(q, sdpopt.SDPOptions())

	fmt.Println("relations:", q.NumRelations())
	fmt.Println("lineitem is a hub:", q.HubRels().Has(1))
	fmt.Println("SDP finds the optimum:", plan.Cost <= optimal.Cost*1.0000001)
	// Output:
	// relations: 8
	// lineitem is a hub: true
	// SDP finds the optimum: true
}

// ExampleRunExperiment regenerates one of the paper's artifacts.
func ExampleRunExperiment() {
	out, err := sdpopt.RunExperiment("tab2.2", sdpopt.ExperimentConfig{Seed: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(out[:36])
	// Output:
	// Table 2.2: Multi-way Skyline Pruning
}
