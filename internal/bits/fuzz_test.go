package bits

import "testing"

// FuzzSubsetsPartition checks that for arbitrary two-word sets, Subsets emits
// exactly the proper subsets containing the low bit, each pairing with its
// complement into a valid 2-partition. The popcount is capped at 16 but the
// members may sit anywhere in the 128-bit range, so the multi-word borrow
// chain in the subset counter is exercised across the 63/64 word boundary.
func FuzzSubsetsPartition(f *testing.F) {
	f.Add(uint64(0b1011), uint64(0))
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(1), uint64(0))
	f.Add(^uint64(0)>>48, uint64(0))
	f.Add(uint64(1)<<63, uint64(1))                 // straddles bits 63 and 64
	f.Add(uint64(0), ^uint64(0)>>52)                // high word only
	f.Add(uint64(1)<<63|uint64(1), uint64(1)<<63|1) // bits 0, 63, 64, 127
	f.Fuzz(func(t *testing.T, raw0, raw1 uint64) {
		s := capPopcount(FromWords(raw0, raw1), 16)
		count := 0
		s.Subsets(func(sub Set) bool {
			count++
			if sub.IsEmpty() || sub == s {
				t.Fatalf("emitted trivial subset %v of %v", sub, s)
			}
			if !s.Contains(sub) {
				t.Fatalf("subset %v outside %v", sub, s)
			}
			if !sub.Has(s.Min()) {
				t.Fatalf("subset %v misses low bit of %v", sub, s)
			}
			comp := s.Diff(sub)
			if sub.Union(comp) != s || !sub.Disjoint(comp) {
				t.Fatalf("bad partition %v + %v of %v", sub, comp, s)
			}
			return true
		})
		want := 0
		if s.Len() >= 1 {
			want = 1<<(s.Len()-1) - 1
		}
		if count != want {
			t.Fatalf("set %v emitted %d subsets, want %d", s, count, want)
		}
	})
}

// FuzzSubsetsAllMatchesReference checks SubsetsAll against the reference
// enumerator: the same 2^n subsets, each after all of its proper subsets.
func FuzzSubsetsAllMatchesReference(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(0b101), uint64(0))
	f.Add(uint64(1)<<63, uint64(0b11))
	f.Add(uint64(1), uint64(1)<<63)
	f.Fuzz(func(t *testing.T, raw0, raw1 uint64) {
		s := capPopcount(FromWords(raw0, raw1), 12)
		pos := map[Set]int{}
		n := 0
		s.SubsetsAll(func(sub Set) bool {
			if _, dup := pos[sub]; dup {
				t.Fatalf("subset %v emitted twice", sub)
			}
			if !s.Contains(sub) {
				t.Fatalf("subset %v outside %v", sub, s)
			}
			pos[sub] = n
			n++
			return true
		})
		if n != 1<<s.Len() {
			t.Fatalf("set %v emitted %d subsets, want %d", s, n, 1<<s.Len())
		}
		// ⊆-compatibility spot check against every singleton split: removing
		// one member must land earlier in the order.
		for sub, p := range pos {
			for it := sub.Iter(); ; {
				i, ok := it.Next()
				if !ok {
					break
				}
				if q := pos[sub.Remove(i)]; q >= p {
					t.Fatalf("subset %v at %d precedes its subset %v at %d", sub, p, sub.Remove(i), q)
				}
			}
		}
	})
}

// capPopcount trims s to at most n members (keeping the smallest) so fuzzed
// enumerations stay bounded.
func capPopcount(s Set, n int) Set {
	for s.Len() > n {
		s = s.Remove(s.Max())
	}
	return s
}
