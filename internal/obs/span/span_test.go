package span_test

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"sdpopt/internal/core"
	"sdpopt/internal/dp"
	"sdpopt/internal/obs/span"
	"sdpopt/internal/workload"
)

// TestNilSafety checks the span API's contract with the rest of the obs
// layer: every method is a no-op on a nil receiver, so instrumented code
// needs no "is tracing on" branches.
func TestNilSafety(t *testing.T) {
	var s *span.Span
	if s.Child("x") != nil {
		t.Error("nil.Child != nil")
	}
	if s.ChildAt("x", time.Now(), time.Second) != nil {
		t.Error("nil.ChildAt != nil")
	}
	s.SetAttr("k", 1)
	s.Add("c", 1)
	s.SetError("boom")
	s.Finish()
	s.FinishErr(nil)
	if s.Trace() != nil || s.TraceID() != "" || s.Name() != "" {
		t.Error("nil span accessors not zero")
	}

	var tr *span.Trace
	tr.Finish(200)
	if tr.ID() != "" || tr.Remote() != "" || tr.Root() != nil || tr.Traceparent() != "" {
		t.Error("nil trace accessors not zero")
	}
	if _, _, done := tr.Status(); done {
		t.Error("nil trace reports done")
	}

	if span.FromContext(nil) != nil {
		t.Error("FromContext(nil) != nil")
	}
	ctx := context.Background()
	if span.FromContext(ctx) != nil {
		t.Error("FromContext(empty ctx) != nil")
	}
	if span.NewContext(ctx, nil) != ctx {
		t.Error("NewContext(ctx, nil) should return ctx unchanged")
	}

	var rec *span.Recorder
	rec.Start(nil)
	rec.Finish(nil, 200)
	if rec.SlowThreshold() != 0 {
		t.Error("nil recorder threshold not zero")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	root := span.New("request")
	tp := root.Trace().Traceparent()
	if len(tp) != 55 || !strings.HasPrefix(tp, "00-") {
		t.Fatalf("Traceparent() = %q, want 55-char version-00 header", tp)
	}

	// Ingesting our own echoed header adopts the trace ID and records the
	// caller's span as the remote parent.
	child := span.FromTraceparent(tp, "request")
	if child.TraceID() != root.TraceID() {
		t.Errorf("ingested trace ID %s != original %s", child.TraceID(), root.TraceID())
	}
	if child.Trace().Remote() == "" {
		t.Error("ingested trace lost the remote parent span ID")
	}
}

func TestFromTraceparentInvalid(t *testing.T) {
	const valid = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	for _, h := range []string{
		"",
		"garbage",
		valid[:54],             // truncated
		"01" + valid[2:],       // unknown version
		strings.ToUpper(valid), // uppercase hex is invalid per W3C
		"00-" + strings.Repeat("0", 32) + "-00f067aa0ba902b7-01",                 // zero trace-id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-" + strings.Repeat("0", 16) + "-01", // zero parent
	} {
		s := span.FromTraceparent(h, "request")
		if s == nil {
			t.Fatalf("header %q: got nil span, want fallback trace", h)
		}
		if s.Trace().Remote() != "" {
			t.Errorf("header %q: accepted as remote, want fresh fallback trace", h)
		}
	}
	s := span.FromTraceparent(valid, "request")
	if s.TraceID() != "4bf92f3577b34da6a3ce929d0e0e4736" || s.Trace().Remote() != "00f067aa0ba902b7" {
		t.Errorf("valid header parsed to trace=%s remote=%s", s.TraceID(), s.Trace().Remote())
	}
}

// findSpans walks a snapshot tree collecting every span with the given name.
func findSpans(s span.SpanJSON, name string) []span.SpanJSON {
	var out []span.SpanJSON
	if s.Name == name {
		out = append(out, s)
	}
	for _, c := range s.Children {
		out = append(out, findSpans(c, name)...)
	}
	return out
}

func TestSpanTreeSnapshot(t *testing.T) {
	rec := span.NewRecorder(span.RecorderOptions{SlowThreshold: time.Hour})
	root := span.New("request")
	rec.Start(root)

	c1 := root.Child("queue.wait")
	c1.Finish()
	c2 := root.Child("optimize")
	c2.SetAttr("tech", "sdp")
	c2.Add("plans_costed", 41)
	c2.Add("plans_costed", 1)
	c2.ChildAt("level", time.Now().Add(-time.Millisecond), time.Millisecond)
	c2.FinishErr(nil)
	root.SetError("late failure")
	rec.Finish(root, 500)

	d := rec.Snapshot()
	if len(d.Notable) != 1 || len(d.Recent) != 0 || len(d.Active) != 0 {
		t.Fatalf("error trace filed wrong: %d notable, %d recent, %d active",
			len(d.Notable), len(d.Recent), len(d.Active))
	}
	tr := d.Notable[0]
	if tr.Code != 500 || tr.Error != "late failure" || tr.Active {
		t.Errorf("trace = code %d err %q active %v", tr.Code, tr.Error, tr.Active)
	}
	if tr.Root == nil || tr.Root.Name != "request" || tr.Root.Running {
		t.Fatalf("bad root span: %+v", tr.Root)
	}
	opt := findSpans(*tr.Root, "optimize")
	if len(opt) != 1 || opt[0].Attrs["tech"] != "sdp" || opt[0].Counters["plans_costed"] != 42 {
		t.Fatalf("optimize span = %+v", opt)
	}
	if len(findSpans(*tr.Root, "level")) != 1 {
		t.Error("level child missing")
	}

	// Rendering includes the trace header and every span line.
	text := tr.Render()
	for _, want := range []string{"trace " + root.TraceID(), "queue.wait", "optimize", "tech=sdp", "plans_costed=42", "level"} {
		if !strings.Contains(text, want) {
			t.Errorf("Render() missing %q:\n%s", want, text)
		}
	}
}

// TestDumpRecordsSummarize checks the flight dump survives a JSON round
// trip and feeds obs.Summarize the same attr names the JSONL trace path
// uses.
func TestDumpRecordsSummarize(t *testing.T) {
	rec := span.NewRecorder(span.RecorderOptions{})
	root := span.New("request")
	rec.Start(root)
	o := root.Child("optimize")
	o.SetAttr("tech", "sdp")
	o.SetAttr("plans_costed", int64(100))
	lv := o.ChildAt("level", time.Now(), 2*time.Millisecond)
	lv.SetAttr("tech", "sdp")
	lv.SetAttr("level", 2)
	lv.SetAttr("plans_costed", int64(60))
	lv.SetAttr("classes_created", int64(3))
	o.Finish()
	rec.Finish(root, 200)

	raw, err := json.Marshal(rec.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	d, err := span.ReadDump(strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d.Traces()); got != 1 {
		t.Fatalf("Traces() = %d, want 1", got)
	}
	recs := d.Records()
	var evs []string
	for _, r := range recs {
		evs = append(evs, r.Ev())
	}
	joined := strings.Join(evs, " ")
	// The "optimize" span maps to the optimize.end event; level passes
	// through.
	if !strings.Contains(joined, "optimize.end") || !strings.Contains(joined, "level") {
		t.Fatalf("Records events = %v", evs)
	}
	for _, r := range recs {
		if r.Ev() != "level" {
			continue
		}
		if n := r.Num("plans_costed"); n != 60 {
			t.Fatalf("level plans_costed = %v, want 60 (numeric attrs must coerce to float64)", n)
		}
	}
}

// TestEngineSpans runs real optimizations with a request span installed and
// checks the engines attach their per-level (and SDP per-partition) spans;
// with no span in ctx the same paths run span-free — the tracing-off
// nil-safety exercise over the full optimize path.
func TestEngineSpans(t *testing.T) {
	cat := workload.PaperSchema()
	q, err := workload.One(workload.Spec{Cat: cat, Topology: workload.Star, NumRelations: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}

	// Tracing off: plain context, no span anywhere.
	if _, _, err := dp.Optimize(q, dp.Options{Ctx: context.Background()}); err != nil {
		t.Fatalf("dp tracing off: %v", err)
	}
	offOpts := core.DefaultOptions()
	offOpts.Ctx = context.Background()
	if _, _, err := core.Optimize(q, offOpts); err != nil {
		t.Fatalf("sdp tracing off: %v", err)
	}

	// Tracing on: DP attaches one "level" span per enumeration level.
	rec := span.NewRecorder(span.RecorderOptions{})
	root := span.New("request")
	rec.Start(root)
	if _, _, err := dp.Optimize(q, dp.Options{Ctx: span.NewContext(context.Background(), root)}); err != nil {
		t.Fatalf("dp tracing on: %v", err)
	}
	rec.Finish(root, 200)
	d := rec.Snapshot()
	levels := findSpans(*d.Recent[0].Root, "level")
	if len(levels) == 0 {
		t.Fatal("dp: no level spans")
	}
	for _, lv := range levels {
		if lv.Attrs["level"] == nil || lv.Attrs["tech"] == nil {
			t.Fatalf("level span missing attrs: %+v", lv.Attrs)
		}
	}

	// SDP attaches sdp.level spans with sdp.partition children.
	root2 := span.New("request")
	rec.Start(root2)
	opts := core.DefaultOptions()
	opts.Ctx = span.NewContext(context.Background(), root2)
	if _, _, err := core.Optimize(q, opts); err != nil {
		t.Fatalf("sdp tracing on: %v", err)
	}
	rec.Finish(root2, 200)
	d = rec.Snapshot()
	var sdpRoot *span.SpanJSON
	for _, tr := range d.Recent {
		if tr.TraceID == root2.TraceID() {
			sdpRoot = tr.Root
		}
	}
	if sdpRoot == nil {
		t.Fatal("sdp trace not in recorder")
	}
	sdpLevels := findSpans(*sdpRoot, "sdp.level")
	if len(sdpLevels) == 0 {
		t.Fatal("no sdp.level spans")
	}
	parts := findSpans(*sdpRoot, "sdp.partition")
	if len(parts) == 0 {
		t.Fatal("no sdp.partition spans")
	}
	for _, p := range parts {
		if p.Attrs["label"] == nil || p.Attrs["size"] == nil || p.Attrs["survivors"] == nil {
			t.Fatalf("sdp.partition span missing attrs: %+v", p.Attrs)
		}
	}
}
