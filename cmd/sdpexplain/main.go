// Command sdpexplain optimizes one query with DP, IDP and SDP and prints
// the chosen plans side by side, EXPLAIN-style. The query is either
// generated from a topology template or supplied as SQL text.
//
// Usage:
//
//	sdpexplain -topology star-chain -rels 15 -seed 7
//	sdpexplain -topology star -rels 20 -ordered        # DP will report *
//	sdpexplain -sql 'SELECT * FROM R20 f, R3 d WHERE f.c1 = d.c2'
//	sdpexplain -topology star -rels 8 -dot | dot -Tsvg > plans.svg
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sdpopt"
)

func main() {
	topo := flag.String("topology", "star-chain", "chain | star | cycle | clique | star-chain")
	rels := flag.Int("rels", 15, "number of relations")
	seed := flag.Int64("seed", 1, "workload seed")
	ordered := flag.Bool("ordered", false, "add an ORDER BY on a join column")
	budgetMB := flag.Int64("budget", 1024, "memory budget in MB")
	skewed := flag.Bool("skewed", false, "use the skewed schema")
	dot := flag.Bool("dot", false, "emit Graphviz DOT (join graph + each plan) instead of text")
	sqlText := flag.String("sql", "", "optimize this SQL text instead of a generated query")
	flag.Parse()

	if err := run(*topo, *rels, *seed, *ordered, *budgetMB<<20, *skewed, *dot, *sqlText); err != nil {
		fmt.Fprintln(os.Stderr, "sdpexplain:", err)
		os.Exit(1)
	}
}

func run(topoName string, rels int, seed int64, ordered bool, budget int64, skewed, dot bool, sqlText string) error {
	cat := sdpopt.PaperSchema()
	if skewed {
		cat = sdpopt.SkewedSchema()
	}
	var q *sdpopt.Query
	if sqlText != "" {
		var err error
		q, err = sdpopt.ParseSQL(cat, sqlText)
		if err != nil {
			return err
		}
	} else {
		topos := map[string]sdpopt.Topology{
			"chain": sdpopt.Chain, "star": sdpopt.Star, "cycle": sdpopt.Cycle,
			"clique": sdpopt.Clique, "star-chain": sdpopt.StarChain,
		}
		topo, ok := topos[strings.ToLower(topoName)]
		if !ok {
			return fmt.Errorf("unknown topology %q", topoName)
		}
		qs, err := sdpopt.Instances(sdpopt.WorkloadSpec{
			Cat: cat, Topology: topo, NumRelations: rels, Ordered: ordered, Seed: seed,
		}, 1)
		if err != nil {
			return err
		}
		q = qs[0]
	}
	if dot {
		fmt.Println(sdpopt.JoinGraphDOT(q))
	} else {
		fmt.Println("Query:")
		fmt.Println(q.SQL())
		fmt.Println()
	}

	type alg struct {
		name string
		run  func() (*sdpopt.Plan, sdpopt.Stats, error)
	}
	idp7 := sdpopt.IDPDefaults()
	idp7.Budget = budget
	idp4 := idp7
	idp4.K = 4
	sdpOpts := sdpopt.SDPOptions()
	sdpOpts.Budget = budget
	algs := []alg{
		{"DP", func() (*sdpopt.Plan, sdpopt.Stats, error) {
			return sdpopt.OptimizeDP(q, sdpopt.DPOptions{Budget: budget})
		}},
		{"IDP(7)", func() (*sdpopt.Plan, sdpopt.Stats, error) { return sdpopt.OptimizeIDP(q, idp7) }},
		{"IDP(4)", func() (*sdpopt.Plan, sdpopt.Stats, error) { return sdpopt.OptimizeIDP(q, idp4) }},
		{"SDP", func() (*sdpopt.Plan, sdpopt.Stats, error) { return sdpopt.OptimizeSDP(q, sdpOpts) }},
	}
	var refCost float64
	for _, a := range algs {
		p, stats, err := a.run()
		fmt.Printf("=== %s ===\n", a.name)
		if errors.Is(err, sdpopt.ErrBudget) {
			fmt.Printf("* infeasible: exceeds the %d MB budget (peak %.1f MB)\n\n", budget>>20, stats.Memo.PeakMB())
			continue
		}
		if err != nil {
			return fmt.Errorf("%s: %w", a.name, err)
		}
		if refCost == 0 {
			refCost = p.Cost
		}
		fmt.Printf("cost=%.2f (%.3fx)  time=%v  plans-costed=%d  sim-mem=%.1fMB\n",
			p.Cost, p.Cost/refCost, stats.Elapsed.Round(time.Microsecond),
			stats.PlansCosted, stats.Memo.PeakMB())
		if dot {
			fmt.Println(sdpopt.PlanDOT(q, p))
			continue
		}
		fmt.Println("shape:", sdpopt.PlanShape(q, p))
		fmt.Println(sdpopt.Explain(q, p))
	}
	return nil
}
