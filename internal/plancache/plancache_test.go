package plancache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sdpopt/internal/dp"
	"sdpopt/internal/plan"
)

func mkKey(i int) Key {
	return Key{Fingerprint: fmt.Sprintf("fp%04d", i), Technique: "sdp", CatalogVersion: "v1"}
}

func mkPlan(cost float64) *plan.Plan {
	return &plan.Plan{Cost: cost}
}

func TestHitMiss(t *testing.T) {
	c := New(Options{})
	computes := 0
	compute := func() (*plan.Plan, dp.Stats, error) {
		computes++
		return mkPlan(42), dp.Stats{PlansCosted: 7}, nil
	}
	p, st, src, err := c.Do(mkKey(1), compute)
	if err != nil || src != Miss || p.Cost != 42 || st.PlansCosted != 7 {
		t.Fatalf("first Do: p=%v st=%v src=%v err=%v", p, st, src, err)
	}
	p, st, src, err = c.Do(mkKey(1), compute)
	if err != nil || src != Hit || p.Cost != 42 || st.PlansCosted != 7 {
		t.Fatalf("second Do: p=%v st=%v src=%v err=%v", p, st, src, err)
	}
	if computes != 1 {
		t.Fatalf("computes = %d, want 1", computes)
	}
	ct := c.Counts()
	if ct.Hits != 1 || ct.Misses != 1 || ct.Entries != 1 {
		t.Fatalf("counts = %+v", ct)
	}
	if got := ct.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}
}

// Distinct techniques and catalog versions must not share entries even for
// the same fingerprint.
func TestKeyNamespacing(t *testing.T) {
	c := New(Options{})
	keys := []Key{
		{Fingerprint: "fp", Technique: "dp", CatalogVersion: "v1"},
		{Fingerprint: "fp", Technique: "sdp", CatalogVersion: "v1"},
		{Fingerprint: "fp", Technique: "dp", CatalogVersion: "v2"},
	}
	for i, k := range keys {
		cost := float64(i)
		_, _, src, err := c.Do(k, func() (*plan.Plan, dp.Stats, error) {
			return mkPlan(cost), dp.Stats{}, nil
		})
		if err != nil || src != Miss {
			t.Fatalf("key %d: src=%v err=%v", i, src, err)
		}
	}
	for i, k := range keys {
		p, _, ok := c.Get(k)
		if !ok || p.Cost != float64(i) {
			t.Fatalf("key %d: got %v ok=%v", i, p, ok)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	// Single shard so the LRU order is global and deterministic.
	c := New(Options{MaxEntries: 4, Shards: 1})
	for i := 0; i < 4; i++ {
		cost := float64(i)
		c.Do(mkKey(i), func() (*plan.Plan, dp.Stats, error) { return mkPlan(cost), dp.Stats{}, nil })
	}
	// Touch key 0 so key 1 is now the oldest.
	if _, _, src, _ := c.Do(mkKey(0), nil); src != Hit {
		t.Fatalf("key 0 src=%v, want Hit", src)
	}
	c.Do(mkKey(4), func() (*plan.Plan, dp.Stats, error) { return mkPlan(4), dp.Stats{}, nil })
	if _, _, ok := c.Get(mkKey(1)); ok {
		t.Fatal("key 1 should have been evicted")
	}
	for _, i := range []int{0, 2, 3, 4} {
		if _, _, ok := c.Get(mkKey(i)); !ok {
			t.Fatalf("key %d should still be cached", i)
		}
	}
	ct := c.Counts()
	if ct.Evictions != 1 || ct.Entries != 4 {
		t.Fatalf("counts = %+v", ct)
	}
}

// TestSingleflight verifies the dedup guarantee: N concurrent misses on one
// key run exactly one compute; everyone gets its result.
func TestSingleflight(t *testing.T) {
	c := New(Options{})
	const n = 32
	var computes atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	var srcMiss, srcDedup atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			p, _, src, err := c.Do(mkKey(9), func() (*plan.Plan, dp.Stats, error) {
				computes.Add(1)
				time.Sleep(20 * time.Millisecond) // hold the flight open
				return mkPlan(9), dp.Stats{}, nil
			})
			if err != nil || p.Cost != 9 {
				t.Errorf("Do: p=%v err=%v", p, err)
			}
			switch src {
			case Miss:
				srcMiss.Add(1)
			case Dedup:
				srcDedup.Add(1)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("computes = %d, want exactly 1", got)
	}
	// Goroutines arriving after the flight closed see a Hit; all others
	// dedup onto the single miss.
	ct := c.Counts()
	if ct.Misses != 1 || srcMiss.Load() != 1 {
		t.Fatalf("misses = %d (src miss %d), want 1", ct.Misses, srcMiss.Load())
	}
	if ct.Dedups+ct.Hits != n-1 {
		t.Fatalf("dedups %d + hits %d != %d", ct.Dedups, ct.Hits, n-1)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New(Options{})
	boom := errors.New("boom")
	_, _, src, err := c.Do(mkKey(1), func() (*plan.Plan, dp.Stats, error) {
		return nil, dp.Stats{}, boom
	})
	if !errors.Is(err, boom) || src != Miss {
		t.Fatalf("first Do: src=%v err=%v", src, err)
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d after failed compute, want 0", c.Len())
	}
	// The next caller retries and the success is cached.
	_, _, src, err = c.Do(mkKey(1), func() (*plan.Plan, dp.Stats, error) {
		return mkPlan(1), dp.Stats{}, nil
	})
	if err != nil || src != Miss {
		t.Fatalf("retry Do: src=%v err=%v", src, err)
	}
	if _, _, ok := c.Get(mkKey(1)); !ok {
		t.Fatal("successful retry not cached")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(Options{})
	for i := 0; i < 3; i++ {
		k := mkKey(i)
		c.Do(k, func() (*plan.Plan, dp.Stats, error) { return mkPlan(0), dp.Stats{}, nil })
	}
	k2 := Key{Fingerprint: "fp", Technique: "sdp", CatalogVersion: "v2"}
	c.Do(k2, func() (*plan.Plan, dp.Stats, error) { return mkPlan(0), dp.Stats{}, nil })

	if n := c.Invalidate("v2"); n != 3 {
		t.Fatalf("invalidated %d, want 3", n)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	if _, _, ok := c.Get(k2); !ok {
		t.Fatal("current-version entry dropped by Invalidate")
	}
	ct := c.Counts()
	if ct.Invalidated != 3 {
		t.Fatalf("counts = %+v", ct)
	}
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("len = %d after Clear, want 0", c.Len())
	}
}

func TestShardedCapacity(t *testing.T) {
	c := New(Options{MaxEntries: 64, Shards: 8})
	for i := 0; i < 1000; i++ {
		cost := float64(i)
		c.Do(mkKey(i), func() (*plan.Plan, dp.Stats, error) { return mkPlan(cost), dp.Stats{}, nil })
	}
	if n := c.Len(); n > 64 {
		t.Fatalf("len = %d, exceeds MaxEntries 64", n)
	}
}
