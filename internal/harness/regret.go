package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"time"

	"sdpopt/internal/obs/regret"
	"sdpopt/internal/plancache"
	"sdpopt/internal/server"
	"sdpopt/internal/workload"
)

// RegretBench measures the shadow regret layer end to end against a live
// in-process server: a star-chain workload served over HTTP by greedy, IDP,
// and SDP, once with the shadow disabled and once at 100% sampling (every
// serve, hits included). The latency columns are the serving-impact guard —
// the shadow observes after the response is written, so OverheadP99 must
// stay within noise of 1.0 even at full sampling. The per-technique ρ/W
// columns are the payoff: the heuristics' regret against the exhaustive DP
// reference, measured from production-shaped serves rather than an offline
// batch.
type RegretBench struct {
	Graph     string `json:"graph"`
	Relations int    `json:"relations"`
	Instances int    `json:"instances"`
	// Requests is the serve count per pass: every instance is posted once
	// per technique as a cache miss and ServesPer-1 more times as hits.
	Requests  int `json:"requests"`
	ServesPer int `json:"serves_per_instance"`

	OffP50Seconds float64 `json:"off_p50_seconds"`
	OffP99Seconds float64 `json:"off_p99_seconds"`
	OnP50Seconds  float64 `json:"on_p50_seconds"`
	OnP99Seconds  float64 `json:"on_p99_seconds"`
	// OverheadP99 is the shadowed p99 over the unshadowed p99 — the guard
	// that full sampling stays within noise (≤ 1.05 up to measurement
	// jitter). The shadowed pass drains the queue between serves, so the
	// ratio isolates the request-path cost of sampling rather than CPU
	// contention with background re-optimizations on small hosts.
	OverheadP99 float64 `json:"overhead_p99"`

	// Sampled/Dropped/Failures echo the shadow counters after the drained
	// 100%-sampling pass; a correct run samples every request and drops
	// nothing.
	Sampled  int64 `json:"sampled"`
	Dropped  int64 `json:"dropped"`
	Failures int64 `json:"failures"`

	Techniques []RegretTech `json:"techniques"`
}

// RegretTech is one technique's shadow-measured quality in a RegretBench.
type RegretTech struct {
	Name      string  `json:"name"`
	Reference string  `json:"reference"`
	Samples   int64   `json:"samples"`
	Rho       float64 `json:"rho"`
	Worst     float64 `json:"worst"`
}

// benchRegret runs the two serving passes and drains the shadow.
func benchRegret(c Config) (*RegretBench, error) {
	const (
		n         = 9 // ≤ MaxDPRels: the shadow references exhaustive DP
		servesPer = 4 // one miss + three hits per instance and technique
	)
	techniques := []string{"greedy", "idp", "sdp"}
	spec := c.schema()
	spec.Topology = workload.StarChain
	spec.NumRelations = n
	qs, err := workload.Instances(*spec, c.instances(5))
	if err != nil {
		return nil, err
	}
	bodies := make([]map[string][]byte, len(techniques))
	for ti, tech := range techniques {
		bodies[ti] = map[string][]byte{}
		for _, q := range qs {
			b, err := json.Marshal(server.OptimizeRequest{SQL: q.SQL(), Technique: tech})
			if err != nil {
				return nil, err
			}
			bodies[ti][q.SQL()] = b
		}
	}

	requests := len(techniques) * len(qs) * servesPer
	pass := func(shadow bool) ([]time.Duration, *regret.Dump, error) {
		opts := server.Options{
			Cat:   spec.Cat,
			Cache: plancache.New(plancache.Options{}),
		}
		if shadow {
			opts.Regret = &regret.Options{
				SampleRate:    1,
				HitSampleRate: 1,
				DedupFor:      -1, // every serve measured, repeats included
				QueueSize:     requests + 1,
				Budget:        c.budget(),
			}
		}
		srv, err := server.New(opts)
		if err != nil {
			return nil, nil, err
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		defer srv.Shutdown(context.Background())

		// Warm the client's keep-alive connection (and the listener) before
		// timing: with only ~60 samples the p99 is the maximum, and a TCP
		// dial on request zero would otherwise be the statistic.
		if resp, err := http.Get(ts.URL + "/healthz"); err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}

		lat := make([]time.Duration, 0, requests)
		for ti := range techniques {
			for _, q := range qs {
				body := bodies[ti][q.SQL()]
				for s := 0; s < servesPer; s++ {
					started := time.Now()
					resp, err := http.Post(ts.URL+"/optimize", "application/json", bytes.NewReader(body))
					if err != nil {
						return nil, nil, fmt.Errorf("regret bench: %w", err)
					}
					lat = append(lat, time.Since(started))
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						return nil, nil, fmt.Errorf("regret bench: %s serve returned %d", techniques[ti], resp.StatusCode)
					}
					// Drain between serves so the comparison isolates the
					// request-path cost of sampling (Observe + enqueue).
					// Without this, a GOMAXPROCS=1 host measures CPU
					// contention with the background re-optimizations —
					// real, but a property of core count (recorded in
					// Host), not of the serving path.
					if shadow {
						if err := settleShadow(srv, int64(len(lat))); err != nil {
							return nil, nil, fmt.Errorf("regret bench: %w", err)
						}
					}
				}
			}
		}
		var dump *regret.Dump
		if shadow {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			defer cancel()
			if err := srv.Regret().Drain(ctx); err != nil {
				return nil, nil, fmt.Errorf("regret bench: %w", err)
			}
			dump = srv.Regret().Snapshot()
		}
		return lat, dump, nil
	}

	offLat, _, err := pass(false)
	if err != nil {
		return nil, err
	}
	onLat, dump, err := pass(true)
	if err != nil {
		return nil, err
	}

	out := &RegretBench{
		Graph:         fmt.Sprintf("Star-Chain-%d", n),
		Relations:     n,
		Instances:     len(qs),
		Requests:      requests,
		ServesPer:     servesPer,
		OffP50Seconds: percentile(offLat, 0.50).Seconds(),
		OffP99Seconds: percentile(offLat, 0.99).Seconds(),
		OnP50Seconds:  percentile(onLat, 0.50).Seconds(),
		OnP99Seconds:  percentile(onLat, 0.99).Seconds(),
		Sampled:       dump.Counts.Sampled,
		Dropped:       dump.Counts.Dropped,
		Failures:      dump.Counts.Failures,
	}
	if out.OffP99Seconds > 0 {
		out.OverheadP99 = out.OnP99Seconds / out.OffP99Seconds
	}
	// One window per technique here: a single topology and band, so the
	// per-key summaries collapse to per-technique rows.
	byTech := map[string]RegretTech{}
	for _, k := range dump.Keys {
		t := byTech[k.Tech]
		t.Name = k.Tech
		t.Reference = "dp"
		t.Samples += k.Lifetime
		if k.Rho > t.Rho {
			t.Rho = k.Rho
		}
		if k.Worst > t.Worst {
			t.Worst = k.Worst
		}
		byTech[k.Tech] = t
	}
	for _, tech := range techniques {
		if t, ok := byTech[tech]; ok {
			out.Techniques = append(out.Techniques, t)
		}
	}
	return out, nil
}

// settleShadow waits until the shadow layer has enqueued one job per
// serve so far and finished them all. Observe runs after the response is
// written, so the job of a just-returned serve may not even be enqueued
// yet — a bare Drain (completed ≥ enqueued) could return early and let
// that job's re-optimization overlap the next timed serve.
func settleShadow(srv *server.Server, serves int64) error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for {
		c := srv.Regret().Snapshot().Counts
		if c.Enqueued >= serves && c.Completed >= c.Enqueued {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}

// percentile returns the p-quantile of ds by the nearest-rank method.
func percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
