package feedback

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"sdpopt/internal/exec"
	"sdpopt/internal/obs"
	"sdpopt/internal/plan"
	"sdpopt/internal/query"
)

// SamplerOptions configures the opt-in exec-sampling path: a fraction of
// served plans for small-enough queries is executed over synthetic data off
// the measured path, feeding the ledger and corpus.
type SamplerOptions struct {
	// Ledger receives the observations. Required.
	Ledger *Ledger
	// Corpus, when set, additionally persists every observation as JSONL.
	Corpus *CorpusWriter
	// Obs receives sampler metrics. Optional.
	Obs *obs.Observer

	// Rate is the fraction of eligible serves executed, in [0, 1].
	// Default 0 (disabled) — execution, even of scaled-down relations, is
	// orders of magnitude more work than optimization, so sampling is
	// strictly opt-in.
	Rate float64
	// MaxRels caps the relation count of a sampled query (default 8).
	MaxRels int
	// MaxRows caps each base relation's cardinality (default 2000);
	// queries touching bigger relations are skipped — the executor is a
	// validation harness, not a data warehouse.
	MaxRows int
	// Workers is the execution pool size (default 1).
	Workers int
	// QueueSize bounds jobs waiting for a worker (default 32); overflow is
	// dropped and counted, never queued unboundedly.
	QueueSize int
	// DedupFor suppresses re-executing one canonical fingerprint within
	// this interval (default 1m). Negative disables deduplication.
	DedupFor time.Duration
	// Seed drives synthetic data generation, so every sampled execution
	// sees the same deterministic database (default 1).
	Seed int64
}

func (o SamplerOptions) withDefaults() SamplerOptions {
	if o.Rate < 0 {
		o.Rate = 0
	}
	if o.Rate > 1 {
		o.Rate = 1
	}
	if o.MaxRels <= 0 {
		o.MaxRels = 8
	}
	if o.MaxRows <= 0 {
		o.MaxRows = 2000
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 32
	}
	if o.DedupFor == 0 {
		o.DedupFor = time.Minute
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Sample is one served optimization offered to the sampler.
type Sample struct {
	// Query is the served query.
	Query *query.Query
	// Plan is the served plan, in Query's frame.
	Plan *plan.Plan
	// Technique produced the plan.
	Technique string
	// TraceID links observations back to the serving trace.
	TraceID string
}

// Sampler is the exec-sampling worker pool. Construct with NewSampler; all
// exported methods are nil-safe, so an unconfigured server carries a nil
// *Sampler at zero cost. Like the regret shadow, sampled work may never
// degrade serving: Observe is a few atomics plus cheap eligibility checks,
// jobs run in background workers, and overflow is dropped, not queued.
type Sampler struct {
	opts SamplerOptions

	gate rateGate

	jobs      chan sampleJob
	wg        sync.WaitGroup
	closeOnce sync.Once

	enqMu   sync.Mutex
	closed  bool
	closing atomic.Bool
	dedup   map[string]time.Time

	observed  atomic.Int64
	sampled   atomic.Int64
	skipped   atomic.Int64
	deduped   atomic.Int64
	dropped   atomic.Int64
	enqueued  atomic.Int64
	completed atomic.Int64
	failures  atomic.Int64
}

type sampleJob struct {
	q       *query.Query
	p       *plan.Plan
	tech    string
	traceID string
}

// NewSampler validates opts and starts the worker pool. Callers must Close
// it to stop the workers.
func NewSampler(opts SamplerOptions) (*Sampler, error) {
	if opts.Ledger == nil {
		return nil, errors.New("feedback: SamplerOptions.Ledger is required")
	}
	opts = opts.withDefaults()
	s := &Sampler{
		opts:  opts,
		jobs:  make(chan sampleJob, opts.QueueSize),
		dedup: map[string]time.Time{},
	}
	s.gate.setRate(opts.Rate)
	if opts.Obs != nil && opts.Obs.Registry != nil {
		opts.Obs.Registry.GaugeFunc(obs.MFeedbackQueueDepth, func() int64 { return int64(len(s.jobs)) })
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

func (s *Sampler) counter(name string) *obs.Counter {
	if s.opts.Obs == nil {
		return nil
	}
	return s.opts.Obs.Counter(name)
}

// Observe offers one successful serve to the sampler. The fast path — not
// sampled — is one atomic add plus the rate gate; a sampled serve is checked
// for eligibility, deduplicated by canonical fingerprint, and enqueued
// without blocking. Nil-safe; never blocks serving.
func (s *Sampler) Observe(sm Sample) {
	if s == nil || sm.Query == nil || sm.Plan == nil {
		return
	}
	s.observed.Add(1)
	if !s.gate.sample() {
		return
	}
	if n := sm.Query.NumRelations(); n > s.opts.MaxRels {
		s.skipped.Add(1)
		s.counter(obs.Label(obs.MFeedbackSkipped, "cause", "rels")).Add(1)
		return
	}
	for i := 0; i < sm.Query.NumRelations(); i++ {
		if sm.Query.Relation(i).Rows > float64(s.opts.MaxRows) {
			s.skipped.Add(1)
			s.counter(obs.Label(obs.MFeedbackSkipped, "cause", "rows")).Add(1)
			return
		}
	}
	s.sampled.Add(1)
	s.counter(obs.MFeedbackSampled).Add(1)

	now := time.Now()
	key := sm.Query.Fingerprint()
	j := sampleJob{q: sm.Query, p: sm.Plan, tech: sm.Technique, traceID: sm.TraceID}

	s.enqMu.Lock()
	if s.closed {
		s.enqMu.Unlock()
		return
	}
	if last, ok := s.dedup[key]; ok && now.Sub(last) < s.opts.DedupFor {
		s.enqMu.Unlock()
		s.deduped.Add(1)
		s.counter(obs.Label(obs.MFeedbackSkipped, "cause", "dedup")).Add(1)
		return
	}
	// Bounded dedup map: sweep expired entries at capacity, reset wholesale
	// if none expired (same policy as the regret shadow).
	if len(s.dedup) >= 4096 {
		for k, at := range s.dedup {
			if now.Sub(at) >= s.opts.DedupFor {
				delete(s.dedup, k)
			}
		}
		if len(s.dedup) >= 4096 {
			s.dedup = map[string]time.Time{}
		}
	}
	s.dedup[key] = now
	select {
	case s.jobs <- j:
		s.enqueued.Add(1)
	default:
		delete(s.dedup, key)
		s.dropped.Add(1)
		s.counter(obs.Label(obs.MFeedbackSkipped, "cause", "queue")).Add(1)
	}
	s.enqMu.Unlock()
}

// jobYield parks a worker briefly before each job so the serving goroutine
// that enqueued it — still flushing its response — drains first on small
// hosts (see the regret shadow's jobYield for the full rationale).
const jobYield = time.Millisecond

func (s *Sampler) worker() {
	defer s.wg.Done()
	for j := range s.jobs {
		if !s.closing.Load() {
			time.Sleep(jobYield)
			s.runJob(j)
		}
		s.completed.Add(1)
	}
}

// runJob executes one sampled plan over synthetic data and feeds the ledger
// and corpus. Detached from the serving request entirely.
func (s *Sampler) runJob(j sampleJob) {
	started := time.Now()
	db, err := exec.Generate(j.q, s.opts.Seed, s.opts.MaxRows)
	if err == nil {
		var actuals map[*plan.Plan]int
		_, actuals, err = db.RunActuals(j.p)
		if err == nil {
			observations := PlanObservations(j.q, j.p, actuals, j.tech, j.traceID)
			s.opts.Ledger.Record(observations...)
			s.opts.Corpus.Append(observations...)
		}
	}
	if s.opts.Obs != nil {
		s.opts.Obs.Histogram(obs.MFeedbackExecSeconds).Observe(time.Since(started))
	}
	if err != nil {
		s.failures.Add(1)
		s.counter(obs.MFeedbackExecErrors).Add(1)
	}
}

// Drain blocks until every enqueued job has completed or ctx expires — the
// determinism hook for benchmarks and smoke tests. Nil-safe.
func (s *Sampler) Drain(ctx context.Context) error {
	if s == nil {
		return nil
	}
	for {
		if s.completed.Load() >= s.enqueued.Load() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// Close stops accepting samples, discards queued jobs, waits for in-flight
// ones, and flushes the corpus. Idempotent and nil-safe.
func (s *Sampler) Close() {
	if s == nil {
		return
	}
	s.closeOnce.Do(func() {
		s.closing.Store(true)
		s.enqMu.Lock()
		s.closed = true
		s.enqMu.Unlock()
		close(s.jobs)
		s.wg.Wait()
		_ = s.opts.Corpus.Flush()
	})
}

// rateGate is a deterministic fixed-point sampling gate: each call
// accumulates rate in 1/2^20 units and fires when the integer part advances
// (the regret shadow's sampler, reproduced here to keep the packages
// independent).
type rateGate struct {
	acc    atomic.Int64
	rateFP int64
}

func (g *rateGate) setRate(rate float64) {
	g.rateFP = int64(rate * (1 << 20))
}

func (g *rateGate) sample() bool {
	if g.rateFP <= 0 {
		return false
	}
	nv := g.acc.Add(g.rateFP)
	return nv>>20 != (nv-g.rateFP)>>20
}
