// Validate: end-to-end optimizer validation on a scaled-down schema. Data
// is generated to match the catalog statistics, several differently-shaped
// plans for one query are executed, and the example demonstrates (a) every
// plan returns the identical result multiset, and (b) the optimizer's
// cardinality estimates track the actual row counts.
package main

import (
	"fmt"
	"log"

	"sdpopt"
)

func main() {
	// A small schema the executor can materialize: tens of rows.
	cfg := sdpopt.DefaultSchemaConfig()
	cfg.NumRelations = 6
	cfg.BaseRows = 25
	cfg.Ratio = 1.4
	cfg.ColsPerRelation = 8
	cfg.MinDomain = 4
	cfg.MaxDomain = 40
	cat, err := sdpopt.NewSchema(cfg)
	if err != nil {
		log.Fatal(err)
	}

	qs, err := sdpopt.Instances(sdpopt.WorkloadSpec{
		Cat: cat, Topology: sdpopt.StarChain, NumRelations: 6, Seed: 11,
	}, 1)
	if err != nil {
		log.Fatal(err)
	}
	q := qs[0]
	fmt.Println("Query:")
	fmt.Println(q.SQL())
	fmt.Println()

	db, err := sdpopt.GenerateData(q, 21, 10_000)
	if err != nil {
		log.Fatal(err)
	}

	type entry struct {
		name string
		plan *sdpopt.Plan
	}
	dpPlan, _, err := sdpopt.OptimizeDP(q, sdpopt.DPOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sdpPlan, _, err := sdpopt.OptimizeSDP(q, sdpopt.SDPOptions())
	if err != nil {
		log.Fatal(err)
	}
	gooPlan, _, err := sdpopt.OptimizeGreedy(q, sdpopt.GreedyOptions{})
	if err != nil {
		log.Fatal(err)
	}
	plans := []entry{{"DP", dpPlan}, {"SDP", sdpPlan}, {"GOO", gooPlan}}

	var reference string
	for _, e := range plans {
		res, err := db.Run(e.plan)
		if err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
		fp := res.Fingerprint()
		match := "reference"
		if reference == "" {
			reference = fp
		} else if fp == reference {
			match = "identical result ✓"
		} else {
			match = "RESULT MISMATCH ✗"
		}
		errLog := sdpopt.EstimationError(e.plan.Rows, res.NumRows())
		fmt.Printf("%-4s cost=%10.2f  shape=%-40s\n", e.name, e.plan.Cost, sdpopt.PlanShape(q, e.plan))
		fmt.Printf("     rows est=%.0f actual=%d (log10 err %+.2f)  %s\n\n",
			e.plan.Rows, res.NumRows(), errLog, match)
	}
	fmt.Println("All plan shapes return the same multiset: the optimizer's plan space")
	fmt.Println("is semantically sound, and its estimates track reality on uniform data.")
}
