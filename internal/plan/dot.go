package plan

import (
	"fmt"
	"strings"
)

// DOT renders the plan tree in Graphviz format, one node per operator
// annotated with cost and cardinality. relName maps a query-local relation
// index to its display name.
func (p *Plan) DOT(relName func(int) string) string {
	var b strings.Builder
	b.WriteString("digraph plan {\n  node [shape=box fontname=\"monospace\"];\n")
	id := 0
	var walk func(n *Plan) int
	walk = func(n *Plan) int {
		me := id
		id++
		label := n.Op.String()
		if n.Op.IsScan() {
			label += " " + relName(n.Rel)
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\\ncost=%.1f rows=%.0f\"];\n", me, label, n.Cost, n.Rows)
		for _, c := range []*Plan{n.Left, n.Right} {
			if c != nil {
				child := walk(c)
				fmt.Fprintf(&b, "  n%d -> n%d;\n", me, child)
			}
		}
		return me
	}
	walk(p)
	b.WriteString("}\n")
	return b.String()
}
