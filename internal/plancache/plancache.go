// Package plancache caches optimization results keyed by canonical query
// fingerprint, so a serving deployment pays the (super-polynomially
// growing) join-enumeration cost once per distinct query shape instead of
// once per request.
//
// The cache is a sharded, size-bounded LRU with singleflight deduplication:
// N concurrent misses on one key trigger exactly one underlying
// optimization, with the other N−1 callers parked on the in-flight result.
// Keys compose three parts (see Key):
//
//   - the query fingerprint — query.Fingerprint(), a digest of the
//     canonical encoding that normalizes relation order, predicate order
//     and orientation, and filter constants, so syntactically different but
//     semantically identical queries share an entry;
//   - the technique namespace ("dp", "idp", "sdp", "greedy", ...) — each
//     optimizer's plans are cached independently, since a cached SDP plan
//     is not an answer to a DP request;
//   - the catalog version — catalog.Fingerprint(), a digest of the schema
//     statistics. A statistics refresh changes the version, so every stale
//     entry silently stops matching; Invalidate reclaims their memory
//     eagerly.
//
// The cache stores plans exactly as compute returned them. A fingerprint
// covers every equivalent spelling of a query, whose query-local relation
// indexes and order-class ids differ — so callers serving entries across
// spellings must have compute return plans in the canonical query frame
// and relabel each retrieved plan into the requester's frame
// (query.Canon + plan.Remap; see internal/server and sdpopt.OptimizeCached
// for the pattern).
//
// Errors are never cached: a failed optimization (budget abort,
// cancellation) is reported to every coalesced waiter of that flight and
// retried by the next caller. All counters are mirrored to an optional
// obs.Observer for /metrics exposure and kept locally for programmatic
// access (Counts).
package plancache

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"

	"sdpopt/internal/dp"
	"sdpopt/internal/obs"
	"sdpopt/internal/obs/span"
	"sdpopt/internal/plan"
)

// Key identifies one cache entry: what was optimized (Fingerprint), how
// (Technique), and against which statistics (CatalogVersion).
type Key struct {
	Fingerprint    string
	Technique      string
	CatalogVersion string
}

func (k Key) id() string {
	// \x00 cannot appear in any component (hex digests, technique names).
	return k.Technique + "\x00" + k.CatalogVersion + "\x00" + k.Fingerprint
}

// Source reports how a Do call was satisfied.
type Source int

const (
	// Miss ran the underlying optimization (and cached its result).
	Miss Source = iota
	// Hit was served from a stored entry.
	Hit
	// Dedup waited on another caller's in-flight optimization of the key.
	Dedup
)

func (s Source) String() string {
	switch s {
	case Hit:
		return "hit"
	case Dedup:
		return "dedup"
	}
	return "miss"
}

// Options configures a cache.
type Options struct {
	// MaxEntries bounds the total cached plans across all shards
	// (default 1024). The bound is per shard (MaxEntries/Shards, min 1),
	// so a pathological key distribution can under-fill slightly but
	// never over-fill.
	MaxEntries int
	// Shards is the lock-striping factor (default 16). Lookups hash the
	// key to a shard; only that shard's mutex is taken.
	Shards int
	// Obs mirrors the cache counters into a metrics registry; nil keeps
	// telemetry local to Counts().
	Obs *obs.Observer
}

type entry struct {
	id      string
	version string
	plan    *plan.Plan
	stats   dp.Stats
	elem    *list.Element
}

// flight is one in-progress optimization; waiters block on done.
type flight struct {
	done chan struct{}
	p    *plan.Plan
	st   dp.Stats
	err  error
}

type shard struct {
	mu      sync.Mutex
	entries map[string]*entry
	lru     *list.List // front = most recently used; values are *entry
	flights map[string]*flight
}

// Cache is a sharded LRU plan cache with singleflight deduplication.
// The zero value is not usable; construct with New.
type Cache struct {
	shards   []*shard
	perShard int

	hits, misses, dedups    atomic.Int64
	evictions, invalidated  atomic.Int64
	entries                 atomic.Int64
	cHits, cMisses, cDedups *obs.Counter
	cEvict, cInval          *obs.Counter
	gEntries                *obs.Gauge
}

// New builds a cache from opts (zero-value opts give a 1024-entry,
// 16-shard cache with no telemetry).
func New(opts Options) *Cache {
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = 1024
	}
	if opts.Shards <= 0 {
		opts.Shards = 16
	}
	if opts.Shards > opts.MaxEntries {
		opts.Shards = opts.MaxEntries
	}
	per := opts.MaxEntries / opts.Shards
	if per < 1 {
		per = 1
	}
	c := &Cache{shards: make([]*shard, opts.Shards), perShard: per}
	for i := range c.shards {
		c.shards[i] = &shard{
			entries: map[string]*entry{},
			lru:     list.New(),
			flights: map[string]*flight{},
		}
	}
	if o := opts.Obs; o != nil {
		c.cHits = o.Counter(obs.MCacheHits)
		c.cMisses = o.Counter(obs.MCacheMisses)
		c.cDedups = o.Counter(obs.MCacheDedup)
		c.cEvict = o.Counter(obs.MCacheEvictions)
		c.cInval = o.Counter(obs.MCacheInvalidated)
		c.gEntries = o.Gauge(obs.MCacheEntries)
	}
	return c
}

// fnv1a hashes the key id for shard selection.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func (c *Cache) shard(id string) *shard {
	return c.shards[fnv1a(id)%uint64(len(c.shards))]
}

// Do returns the cached result for key, or computes, caches, and returns
// it. Concurrent Do calls on the same key while compute is running are
// coalesced: exactly one compute runs, the others wait and share its
// result (Source Dedup). The returned stats are those of the optimization
// that produced the plan; a Hit's stats therefore describe the original
// compute, not the (near-free) lookup. A compute error is propagated to
// every coalesced caller and nothing is cached.
func (c *Cache) Do(key Key, compute func() (*plan.Plan, dp.Stats, error)) (*plan.Plan, dp.Stats, Source, error) {
	return c.do(key, compute, nil)
}

// DoCtx is Do with request-scoped span tracing: when ctx carries a span
// (span.FromContext), the lookup appends a completed "cache.lookup" child
// recording the outcome, and a coalesced caller additionally gets a
// "cache.wait" child covering the time parked on the in-flight compute —
// the singleflight stampede made visible per request. With no span in ctx
// it is exactly Do.
func (c *Cache) DoCtx(ctx context.Context, key Key, compute func() (*plan.Plan, dp.Stats, error)) (*plan.Plan, dp.Stats, Source, error) {
	return c.do(key, compute, span.FromContext(ctx))
}

func (c *Cache) do(key Key, compute func() (*plan.Plan, dp.Stats, error), sp *span.Span) (*plan.Plan, dp.Stats, Source, error) {
	id := key.id()
	s := c.shard(id)
	lookupStart := time.Now()
	lookup := func(src Source) {
		if sp == nil {
			return
		}
		ls := sp.ChildAt("cache.lookup", lookupStart, time.Since(lookupStart))
		ls.SetAttr("source", src.String())
	}

	s.mu.Lock()
	if e := s.entries[id]; e != nil {
		s.lru.MoveToFront(e.elem)
		s.mu.Unlock()
		c.hits.Add(1)
		c.cHits.Add(1)
		lookup(Hit)
		return e.plan, e.stats, Hit, nil
	}
	if f := s.flights[id]; f != nil {
		s.mu.Unlock()
		c.dedups.Add(1)
		c.cDedups.Add(1)
		lookup(Dedup)
		ws := sp.Child("cache.wait")
		<-f.done
		ws.FinishErr(f.err)
		return f.p, f.st, Dedup, f.err
	}
	f := &flight{done: make(chan struct{})}
	s.flights[id] = f
	s.mu.Unlock()

	c.misses.Add(1)
	c.cMisses.Add(1)
	lookup(Miss)
	f.p, f.st, f.err = compute()

	s.mu.Lock()
	delete(s.flights, id)
	if f.err == nil {
		e := &entry{id: id, version: key.CatalogVersion, plan: f.p, stats: f.st}
		e.elem = s.lru.PushFront(e)
		s.entries[id] = e
		c.gEntries.Set(c.entries.Add(1))
		for s.lru.Len() > c.perShard {
			oldest := s.lru.Back()
			c.removeLocked(s, oldest.Value.(*entry))
			c.evictions.Add(1)
			c.cEvict.Add(1)
		}
	}
	s.mu.Unlock()
	close(f.done)
	return f.p, f.st, Miss, f.err
}

// Get returns the cached plan and stats for key without computing,
// refreshing its LRU position on a hit.
func (c *Cache) Get(key Key) (*plan.Plan, dp.Stats, bool) {
	id := key.id()
	s := c.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[id]
	if e == nil {
		return nil, dp.Stats{}, false
	}
	s.lru.MoveToFront(e.elem)
	return e.plan, e.stats, true
}

// removeLocked unlinks e from s; the shard mutex must be held.
func (c *Cache) removeLocked(s *shard, e *entry) {
	s.lru.Remove(e.elem)
	delete(s.entries, e.id)
	c.gEntries.Set(c.entries.Add(-1))
}

// Invalidate drops every entry whose catalog version differs from current,
// returning the number dropped. Version-stamped keys already guarantee
// stale entries can never be served; Invalidate additionally reclaims
// their memory at the moment the catalog changes instead of waiting for
// LRU pressure.
func (c *Cache) Invalidate(current string) int {
	dropped := 0
	for _, s := range c.shards {
		s.mu.Lock()
		for _, e := range s.entries {
			if e.version != current {
				c.removeLocked(s, e)
				dropped++
			}
		}
		s.mu.Unlock()
	}
	c.invalidated.Add(int64(dropped))
	c.cInval.Add(int64(dropped))
	return dropped
}

// Clear drops every entry.
func (c *Cache) Clear() {
	for _, s := range c.shards {
		s.mu.Lock()
		for _, e := range s.entries {
			c.removeLocked(s, e)
		}
		s.mu.Unlock()
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	return int(c.entries.Load())
}

// Counts is a consistent-enough snapshot of the cache counters (each field
// is individually atomic).
type Counts struct {
	Hits, Misses, Dedups, Evictions, Invalidated, Entries int64
}

// HitRate returns hits/(hits+misses+dedups), or 0 with no traffic. Dedup
// waiters count toward the denominator but not as hits: they did not avoid
// the optimization's latency, only its duplication.
func (ct Counts) HitRate() float64 {
	total := ct.Hits + ct.Misses + ct.Dedups
	if total == 0 {
		return 0
	}
	return float64(ct.Hits) / float64(total)
}

// Counts snapshots the cache counters.
func (c *Cache) Counts() Counts {
	if c == nil {
		return Counts{}
	}
	return Counts{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Dedups:      c.dedups.Load(),
		Evictions:   c.evictions.Load(),
		Invalidated: c.invalidated.Load(),
		Entries:     c.entries.Load(),
	}
}
