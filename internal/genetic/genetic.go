// Package genetic implements a GEQO-style genetic join-order optimizer,
// the third family the paper's introduction cites (PostgreSQL's fallback
// for large joins).
//
// Chromosomes are prefix-connected permutations (left-deep trees, as in
// internal/jointree); fitness is plan cost. Each generation applies
// tournament selection, order crossover (OX1) followed by a
// connectivity repair, and swap mutation, with elitism preserving the
// incumbent. (PostgreSQL's GEQO uses edge-recombination crossover; OX1
// with repair is a standard alternative with the same character.)
package genetic

import (
	"math/rand"
	"time"

	"sdpopt/internal/cost"
	"sdpopt/internal/dp"
	"sdpopt/internal/jointree"
	"sdpopt/internal/memo"
	"sdpopt/internal/plan"
	"sdpopt/internal/query"
)

// Options configures the genetic search.
type Options struct {
	// PopSize is the population size; 0 selects GEQO's heuristic
	// 2^ceil(log2 n) bounded to [16, 128].
	PopSize int
	// Generations is the number of generations; 0 selects 20·n.
	Generations int
	// MutationRate is the per-offspring swap-mutation probability;
	// 0 selects 0.05.
	MutationRate float64
	// Seed drives all randomness; runs are deterministic in it.
	Seed int64
	// Model supplies costing; if nil a fresh default model is created.
	Model *cost.Model
}

// DefaultOptions returns the GEQO-flavored defaults.
func DefaultOptions() Options { return Options{} }

type individual struct {
	perm []int
	pl   *plan.Plan
}

// Optimize runs the genetic search on q.
func Optimize(q *query.Query, opts Options) (*plan.Plan, dp.Stats, error) {
	model := opts.Model
	if model == nil {
		model = cost.NewModel(q, cost.DefaultParams())
	}
	started := time.Now()
	costedAtStart := model.PlansCosted
	n := q.NumRelations()

	pop := opts.PopSize
	if pop == 0 {
		pop = 16
		for pop < 2*n && pop < 128 {
			pop *= 2
		}
	}
	gens := opts.Generations
	if gens == 0 {
		gens = 20 * n
	}
	mut := opts.MutationRate
	if mut == 0 {
		mut = 0.05
	}
	rng := rand.New(rand.NewSource(opts.Seed + 7))

	mk := func(perm []int) (individual, error) {
		pl, err := jointree.Build(q, model, perm)
		return individual{perm: perm, pl: pl}, err
	}

	people := make([]individual, pop)
	for i := range people {
		ind, err := mk(jointree.RandomPerm(q, rng))
		if err != nil {
			return nil, statsOf(model, costedAtStart, started, n), err
		}
		people[i] = ind
	}
	best := people[0]
	for _, ind := range people[1:] {
		if ind.pl.Cost < best.pl.Cost {
			best = ind
		}
	}

	tournament := func() individual {
		a, b := people[rng.Intn(pop)], people[rng.Intn(pop)]
		if a.pl.Cost <= b.pl.Cost {
			return a
		}
		return b
	}

	for g := 0; g < gens; g++ {
		next := make([]individual, 0, pop)
		next = append(next, best) // elitism
		for len(next) < pop {
			p1, p2 := tournament(), tournament()
			child := orderCrossover(p1.perm, p2.perm, rng)
			if rng.Float64() < mut {
				i, j := rng.Intn(n), rng.Intn(n)
				child[i], child[j] = child[j], child[i]
			}
			child = jointree.Repair(q, child)
			ind, err := mk(child)
			if err != nil {
				return nil, statsOf(model, costedAtStart, started, n), err
			}
			if ind.pl.Cost < best.pl.Cost {
				best = ind
			}
			next = append(next, ind)
		}
		people = next
	}
	return best.pl, statsOf(model, costedAtStart, started, n*pop), nil
}

// orderCrossover is OX1: copy a random slice from p1, fill the rest in
// p2's order. The result is a permutation but not necessarily
// prefix-connected; callers repair it.
func orderCrossover(p1, p2 []int, rng *rand.Rand) []int {
	n := len(p1)
	if n < 2 {
		return append([]int(nil), p1...)
	}
	i, j := rng.Intn(n), rng.Intn(n)
	if i > j {
		i, j = j, i
	}
	child := make([]int, n)
	used := make([]bool, n)
	for k := i; k <= j; k++ {
		child[k] = p1[k]
		used[p1[k]] = true
	}
	pos := (j + 1) % n
	for k := 0; k < n; k++ {
		gene := p2[(j+1+k)%n]
		if used[gene] {
			continue
		}
		child[pos] = gene
		used[gene] = true
		pos = (pos + 1) % n
	}
	return child
}

func statsOf(model *cost.Model, costedAtStart int64, started time.Time, liveSolutions int) dp.Stats {
	return dp.Stats{
		Memo: memo.Stats{
			PeakSimBytes: int64(liveSolutions) * memo.SimPathBytes,
		},
		PlansCosted: model.PlansCosted - costedAtStart,
		Elapsed:     time.Since(started),
	}
}
