// Package core implements SDP — Skyline Dynamic Programming — the paper's
// contribution: a robust, scalable pruning strategy for the bottom-up DP
// join-order search.
//
// SDP differs from prior heuristics (IDP) in two ways:
//
//  1. Localized pruning. Only join-composite relations (JCRs) that contain a
//     complete hub from the previous level are eligible for pruning (the
//     PruneGroup); everything else (the FreeGroup) keeps the full power of
//     exhaustive DP. Hubs — nodes with at least three join edges — are
//     recomputed every level on the contracted join graph, so composite hubs
//     formed during the search are caught too. Levels 1, N−2 and N−1 always
//     run standard DP: with two or fewer relations left to add, no hub can
//     exist.
//
//  2. Skyline pruning. Each PruneGroup is partitioned by hub (root hubs by
//     default, the variant the paper selects; parent hubs as the studied
//     alternative), and within each partition the JCRs compete on the
//     feature vector [Rows, Cost, Selectivity]. The survivors are the union
//     of the three pairwise skylines RC, CS and RS (Option 2) or the single
//     three-dimensional skyline (Option 1). A JCR that falls in several
//     partitions must survive in all of them.
//
// Ordered queries get one additional partition per relation carrying an
// interesting join column, holding every PruneGroup JCR that does NOT
// contain that relation; surviving any such partition keeps a JCR alive, so
// the pruning cannot destroy the ability to later form order-providing
// joins (paper Section 2.1.4).
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"sdpopt/internal/bits"
	"sdpopt/internal/cost"
	"sdpopt/internal/dp"
	"sdpopt/internal/memo"
	"sdpopt/internal/obs"
	"sdpopt/internal/obs/span"
	"sdpopt/internal/pardp"
	"sdpopt/internal/plan"
	"sdpopt/internal/query"
	"sdpopt/internal/skyline"
)

// Partitioning selects how PruneGroup JCRs are grouped before the skyline
// is applied.
type Partitioning int

// Partitioning variants (paper Section 2.1.3).
const (
	// RootHub partitions by the hubs of the original join graph — the
	// variant the paper adopts, having found it as good as ParentHub with
	// lower overheads.
	RootHub Partitioning = iota
	// ParentHub partitions by the hub JCRs of the immediately previous
	// level.
	ParentHub
)

// String names the partitioning variant.
func (p Partitioning) String() string {
	if p == ParentHub {
		return "ParentHub"
	}
	return "RootHub"
}

// SkylineOption selects the pruning function over the [R,C,S] vector.
type SkylineOption int

// Skyline options (paper Section 2.1.5).
const (
	// Option2 unions the pairwise RC, CS and RS skylines — the paper's
	// choice: near-Option-1 plan quality with about half the JCRs.
	Option2 SkylineOption = iota
	// Option1 is the single skyline over the full three-dimensional vector.
	Option1
	// StrongSkyline is the k-dominant (k=2) skyline — the harsher pruning
	// the paper's future-work section points at.
	StrongSkyline
)

// String names the skyline option.
func (s SkylineOption) String() string {
	switch s {
	case Option1:
		return "Option1"
	case StrongSkyline:
		return "StrongSkyline"
	}
	return "Option2"
}

// Scope selects localized (hub-based) or global pruning.
type Scope int

// Pruning scopes. Global reproduces the ablation of Section 3.2.3: the
// skyline applied to every level's full JCR output with no hub logic.
const (
	Local Scope = iota
	Global
)

// String names the scope.
func (s Scope) String() string {
	if s == Global {
		return "Global"
	}
	return "Local"
}

// Options configures an SDP run.
type Options struct {
	Partitioning Partitioning
	Skyline      SkylineOption
	Scope        Scope
	// Workers selects the enumeration engine: 0 or 1 runs the sequential DP
	// substrate, >1 the level-synchronous parallel engine (internal/pardp)
	// with that many workers. Results are bit-for-bit identical either way —
	// pardp's determinism contract. When parallel, the per-level skyline
	// masks of independent hub partitions are also computed concurrently at
	// the level barrier.
	Workers int
	// Budget is the simulated-memory feasibility limit (0 = unlimited).
	Budget int64
	// Ctx, if non-nil, bounds the optimization; cancellation aborts with
	// dp.ErrCanceled (see dp.Options.Ctx).
	Ctx context.Context
	// Model supplies costing; if nil a fresh default model is created.
	Model *cost.Model
	// Trace, if non-nil, records per-level pruning decisions (the
	// walkthrough of the paper's Figure 2.2). It is populated by consuming
	// the obs event stream: every pruning decision is emitted as an
	// "sdp.level" event whose payload a trace sink folds into this struct.
	Trace *Trace
	// Obs receives metrics and trace events; nil falls back to the process
	// default observer.
	Obs *obs.Observer
	// NaiveEnum runs the sequential substrate with the retained
	// generate-and-filter reference loop instead of the adjacency-indexed
	// walk (see dp.Options.NaiveEnum). Test/benchmark knob; ignored when
	// Workers > 1.
	NaiveEnum bool
}

// DefaultOptions returns the paper's adopted configuration: root-hub
// partitioning with the Option-2 disjunctive pairwise skyline, locally
// applied.
func DefaultOptions() Options {
	return Options{Partitioning: RootHub, Skyline: Option2, Scope: Local}
}

// Trace records what SDP pruned at each level. It is a thin consumer of
// the obs event stream: an internal sink appends one LevelTrace per
// "sdp.level" event, so the same decisions feed JSONL traces, metrics and
// this in-process walkthrough without divergence.
type Trace struct {
	Levels []LevelTrace
}

// traceSink folds sdp.level event payloads into a Trace.
type traceSink struct{ t *Trace }

func (s *traceSink) Emit(e obs.Event) {
	if lt, ok := e.Payload.(*LevelTrace); ok && lt != nil {
		s.t.Levels = append(s.t.Levels, *lt)
	}
}

func (s *traceSink) Close() error { return nil }

// LevelTrace is one level's pruning record.
type LevelTrace struct {
	Level      int
	PruneGroup []bits.Set
	FreeGroup  []bits.Set
	// Partitions maps a partition label (hub relation or JCR, or "order:R")
	// to its member JCRs.
	Partitions map[string][]bits.Set
	// Features holds the [R,C,S] feature vector of every PruneGroup member,
	// for rendering the paper's Table 2.2 / Figure 2.3 views.
	Features  map[bits.Set]memo.FV
	Survivors []bits.Set
	Pruned    []bits.Set
}

// Optimize runs SDP on q and returns the chosen plan with overhead
// statistics.
func Optimize(q *query.Query, opts Options) (*plan.Plan, dp.Stats, error) {
	model := opts.Model
	if model == nil {
		model = cost.NewModel(q, cost.DefaultParams())
	}
	ob := obs.Or(opts.Obs)
	if opts.Trace != nil {
		// The legacy SDPTrace rides the event stream: attach a sink that
		// folds sdp.level payloads back into the caller's Trace.
		ob = ob.WithSinks(&traceSink{t: opts.Trace})
	}
	started := time.Now()
	costedAtStart := model.PlansCosted
	s := newSDP(q, opts, ob)
	done := dp.ObserveRun(ob, "SDP", q)
	// Both engines run the same DPsize semantics with s.hook at every level
	// barrier; which one carries the search is just a Workers knob.
	var eng interface {
		Run(toLevel int) error
		Finalize() (*plan.Plan, error)
	}
	var engStats func() dp.Stats
	var err error
	if opts.Workers > 1 {
		pe, perr := pardp.NewEngine(q, dp.BaseLeaves(q), pardp.Options{
			Workers: opts.Workers,
			Budget:  opts.Budget,
			Ctx:     opts.Ctx,
			Model:   model,
			Hook:    s.hook,
			Obs:     ob,
			Label:   "SDP",
		})
		err = perr
		if pe != nil {
			eng = pe
			engStats = pe.Stats
		}
	} else {
		de, derr := dp.NewEngine(q, dp.BaseLeaves(q), dp.Options{
			Budget:    opts.Budget,
			Ctx:       opts.Ctx,
			Model:     model,
			Hook:      s.hook,
			Obs:       ob,
			Label:     "SDP",
			NaiveEnum: opts.NaiveEnum,
		})
		err = derr
		if de != nil {
			eng = de
			engStats = de.Stats
		}
	}
	stats := func() dp.Stats {
		st := dp.Stats{PlansCosted: model.PlansCosted - costedAtStart, Elapsed: time.Since(started)}
		if engStats != nil {
			es := engStats()
			st.Memo = es.Memo
			st.PairsConsidered = es.PairsConsidered
			st.PairsConnected = es.PairsConnected
		}
		return st
	}
	if err == nil {
		err = eng.Run(q.NumRelations())
	}
	var p *plan.Plan
	if err == nil {
		p, err = eng.Finalize()
	}
	st := stats()
	done(st, p, err)
	return p, st, err
}

type sdp struct {
	q    *query.Query
	opts Options
	ob   *obs.Observer

	// Resolved metric handles (nil when telemetry is off).
	cCand, cSurvAll, cSurvRC, cSurvCS, cSurvRS *obs.Counter

	// sp is the request span carried by opts.Ctx (nil when the caller is
	// not tracing); cur is the open "sdp.level" child while the hook runs,
	// the parent of that level's "sdp.partition" spans. The hook runs
	// single-threaded at the level barrier, so cur needs no locking.
	sp  *span.Span
	cur *span.Span
}

func newSDP(q *query.Query, opts Options, ob *obs.Observer) *sdp {
	s := &sdp{q: q, opts: opts, ob: ob, sp: span.FromContext(opts.Ctx)}
	if ob != nil {
		s.cCand = ob.Counter(obs.MSkylineCandidates)
		s.cSurvAll = ob.Counter(obs.Label(obs.MSkylineSurvivors, "criterion", "all"))
		s.cSurvRC = ob.Counter(obs.Label(obs.MSkylineSurvivors, "criterion", "RC"))
		s.cSurvCS = ob.Counter(obs.Label(obs.MSkylineSurvivors, "criterion", "CS"))
		s.cSurvRS = ob.Counter(obs.Label(obs.MSkylineSurvivors, "criterion", "RS"))
	}
	return s
}

// hook is the per-level pruning filter installed into the DP engine.
func (s *sdp) hook(level int, m *memo.Memo, created []*memo.Class) error {
	n := s.q.NumRelations()
	// Standard DP at level 1 and the last two join levels; nothing to do at
	// the top level either.
	if level < 2 || level >= n-2 || len(created) == 0 {
		return nil
	}
	if s.sp != nil {
		s.cur = s.sp.Child("sdp.level")
		s.cur.SetAttr("tech", "SDP")
		s.cur.SetAttr("level", level)
	}
	switch s.opts.Scope {
	case Global:
		s.pruneGlobal(level, m, created)
	default:
		s.pruneLocal(level, m, created)
	}
	s.cur.Finish()
	s.cur = nil
	return nil
}

// pruneGlobal applies the skyline to the level's whole output — the
// ablation the paper uses to demonstrate that localized pruning matters.
func (s *sdp) pruneGlobal(level int, m *memo.Memo, created []*memo.Class) {
	mask := s.observedMask(level, "global", created)
	tr := s.levelTrace(level)
	if tr != nil {
		tr.Partitions["global"] = setsOf(created)
	}
	nSurv, nPruned := 0, 0
	for i, c := range created {
		if mask[i] {
			nSurv++
			if tr != nil {
				tr.Survivors = append(tr.Survivors, c.Set)
			}
			continue
		}
		nPruned++
		if tr != nil {
			tr.Pruned = append(tr.Pruned, c.Set)
		}
		m.Remove(c)
	}
	s.spanLevel(len(created), 0, nSurv, nPruned)
	s.emitLevel(tr, len(created), 0)
}

// pruneLocal applies the paper's SDP pruning: split into PruneGroup and
// FreeGroup by hub-parent containment, partition the PruneGroup by hub,
// skyline within each partition, and prune JCRs that fail to survive every
// hub partition they belong to (unless rescued by an interesting-order
// partition).
func (s *sdp) pruneLocal(level int, m *memo.Memo, created []*memo.Class) {
	hubParents := s.hubParents(m, level)
	if len(hubParents) == 0 {
		return // no hubs at this level: pruning stays off
	}
	var pruneGroup, freeGroup []*memo.Class
	for _, c := range created {
		inPG := false
		for _, hp := range hubParents {
			if c.Set.Contains(hp) {
				inPG = true
				break
			}
		}
		if inPG {
			pruneGroup = append(pruneGroup, c)
		} else {
			freeGroup = append(freeGroup, c)
		}
	}
	if len(pruneGroup) == 0 {
		return
	}

	partitions := s.partition(pruneGroup, hubParents)
	tr := s.levelTrace(level)
	if tr != nil {
		tr.PruneGroup = setsOf(pruneGroup)
		tr.FreeGroup = setsOf(freeGroup)
		for label, part := range partitions {
			tr.Partitions[label] = setsOf(part)
		}
		for _, c := range pruneGroup {
			tr.Features[c.Set] = c.FeatureVector()
		}
	}

	// A JCR must survive in every hub partition it appears in. The skyline
	// masks of distinct partitions are independent, so with a parallel
	// engine they are computed concurrently — SDP's reduce at the level
	// barrier — and then reported (counters, events) in sorted-label order,
	// keeping telemetry byte-identical to the sequential run.
	labels := sortedLabels(partitions)
	masks := s.partitionMasks(level, labels, partitions)
	survive := map[bits.Set]bool{}
	seen := map[bits.Set]bool{}
	for _, label := range labels {
		part := partitions[label]
		mask := masks[label]
		for i, c := range part {
			if !seen[c.Set] {
				seen[c.Set] = true
				survive[c.Set] = true
			}
			if !mask[i] {
				survive[c.Set] = false
			}
		}
	}
	// PruneGroup members outside every partition (e.g. no root hub under
	// root-hub partitioning) are left untouched, like the FreeGroup.
	for _, c := range pruneGroup {
		if !seen[c.Set] {
			survive[c.Set] = true
		}
	}

	// Interesting-order partitions can only rescue, never kill: their
	// survivors are unioned into the level's survivor output.
	s.applyOrderPartitions(level, pruneGroup, survive, tr)

	// Guard: if the cross-partition veto rule emptied some partition
	// entirely, resurrect that partition's cheapest member so every hub
	// keeps at least one expansion and the search always completes. (The
	// paper does not discuss this corner; see DESIGN.md.)
	for _, label := range labels {
		part := partitions[label]
		any := false
		for _, c := range part {
			if survive[c.Set] {
				any = true
				break
			}
		}
		if !any {
			best := part[0]
			for _, c := range part[1:] {
				if c.Best.Cost < best.Best.Cost {
					best = c
				}
			}
			survive[best.Set] = true
		}
	}

	nSurv, nPruned := 0, 0
	for _, c := range pruneGroup {
		if survive[c.Set] {
			nSurv++
			if tr != nil {
				tr.Survivors = append(tr.Survivors, c.Set)
			}
			continue
		}
		nPruned++
		if tr != nil {
			tr.Pruned = append(tr.Pruned, c.Set)
		}
		m.Remove(c)
	}
	s.spanLevel(len(pruneGroup), len(freeGroup), nSurv, nPruned)
	s.emitLevel(tr, len(pruneGroup), len(freeGroup))
}

// spanLevel closes the open "sdp.level" span's summary attributes.
func (s *sdp) spanLevel(pruneGroup, freeGroup, survivors, pruned int) {
	if s.cur == nil {
		return
	}
	s.cur.SetAttr("prune_group", pruneGroup)
	s.cur.SetAttr("free_group", freeGroup)
	s.cur.SetAttr("survivors", survivors)
	s.cur.SetAttr("pruned", pruned)
}

// hubParents returns the sets of the previous level's surviving classes
// that are hubs of the contracted join graph. At level 2 these are the root
// hub base relations themselves.
func (s *sdp) hubParents(m *memo.Memo, level int) []bits.Set {
	var out []bits.Set
	for _, c := range m.Level(level - 1) {
		if s.q.IsHub(c.Set) {
			out = append(out, c.Set)
		}
	}
	return out
}

// partition groups the PruneGroup by hub. A JCR containing several hubs
// appears in all the corresponding partitions.
func (s *sdp) partition(pruneGroup []*memo.Class, hubParents []bits.Set) map[string][]*memo.Class {
	parts := map[string][]*memo.Class{}
	if s.opts.Partitioning == ParentHub {
		for _, hp := range hubParents {
			label := fmt.Sprintf("hub:%v", hp)
			for _, c := range pruneGroup {
				if c.Set.Contains(hp) {
					parts[label] = append(parts[label], c)
				}
			}
		}
		return parts
	}
	rootHubs := s.q.HubRels()
	rootHubs.Each(func(h int) {
		label := fmt.Sprintf("hub:%d", h+1)
		for _, c := range pruneGroup {
			if c.Set.Has(h) {
				parts[label] = append(parts[label], c)
			}
		}
		if len(parts[label]) == 0 {
			delete(parts, label)
		}
	})
	return parts
}

// applyOrderPartitions forms one partition per relation carrying an
// interesting join column (a column in the ORDER BY's equivalence class),
// containing every PruneGroup JCR that does not include that relation, and
// unions the skyline survivors into the survivor set.
func (s *sdp) applyOrderPartitions(level int, pruneGroup []*memo.Class, survive map[bits.Set]bool, tr *LevelTrace) {
	ec := s.q.OrderEqClass()
	if ec < 0 {
		return
	}
	for r := 0; r < s.q.NumRelations(); r++ {
		if !s.relHasOrderColumn(r, ec) {
			continue
		}
		var part []*memo.Class
		for _, c := range pruneGroup {
			if !c.Set.Has(r) {
				part = append(part, c)
			}
		}
		if len(part) == 0 {
			continue
		}
		label := fmt.Sprintf("order:%d", r+1)
		if tr != nil {
			tr.Partitions[label] = setsOf(part)
		}
		mask := s.observedMask(level, label, part)
		for i, c := range part {
			if mask[i] {
				survive[c.Set] = true
			}
		}
	}
}

// relHasOrderColumn reports whether relation r has a join column in
// equivalence class ec.
func (s *sdp) relHasOrderColumn(r, ec int) bool {
	for col := range s.q.Relation(r).Cols {
		if s.q.EqClass(r, col) == ec {
			return true
		}
	}
	return false
}

// partitionMasks computes the skyline mask of every partition, keyed by
// label. Partitions are independent, so when the run is parallel
// (Options.Workers > 1) and there is more than one, the masks are computed
// concurrently; reporting still happens sequentially in the caller's sorted
// label order so counters and events stay byte-identical to the sequential
// engine's.
func (s *sdp) partitionMasks(level int, labels []string, partitions map[string][]*memo.Class) map[string][]bool {
	masks := make(map[string][]bool, len(labels))
	if s.opts.Workers > 1 && len(labels) > 1 {
		type res struct {
			mask  []bool
			pairs [][]bool
			start time.Time
			dur   time.Duration
		}
		results := make([]res, len(labels))
		sem := make(chan struct{}, s.opts.Workers)
		var wg sync.WaitGroup
		for li, label := range labels {
			wg.Add(1)
			sem <- struct{}{}
			go func(li int, part []*memo.Class) {
				defer wg.Done()
				defer func() { <-sem }()
				st := time.Now()
				m, pm := s.computeMask(part)
				results[li] = res{m, pm, st, time.Since(st)}
			}(li, partitions[label])
		}
		wg.Wait()
		for li, label := range labels {
			masks[label] = results[li].mask
			s.reportMask(level, label, len(partitions[label]), results[li].mask, results[li].pairs, results[li].start, results[li].dur)
		}
		return masks
	}
	for _, label := range labels {
		masks[label] = s.observedMask(level, label, partitions[label])
	}
	return masks
}

// observedMask computes the survivor mask of one skyline partition and
// reports it. With telemetry off it is exactly the bare mask.
func (s *sdp) observedMask(level int, label string, classes []*memo.Class) []bool {
	start := time.Now()
	mask, pairMasks := s.computeMask(classes)
	s.reportMask(level, label, len(classes), mask, pairMasks, start, time.Since(start))
	return mask
}

// computeMask is the pure half: the survivor mask under the configured
// skyline option, plus the per-criterion pairwise masks when telemetry will
// want them (Option 2 with an observer or request span attached — they
// fall out of the pruning computation anyway).
func (s *sdp) computeMask(classes []*memo.Class) ([]bool, [][]bool) {
	pts := featurePoints(classes)
	if (s.ob != nil || s.sp != nil) && s.opts.Skyline == Option2 {
		mask, pairMasks := skyline.DisjunctivePairwiseMasks(pts, skyline.RCSPairs)
		return mask, pairMasks
	}
	return s.maskOf(pts), nil
}

// reportMask is the telemetry half: candidate/survivor counters (per
// RC/CS/RS criterion under Option 2), an "sdp.partition" event, and — when
// the run carries a request span — an "sdp.partition" child span under the
// current sdp.level span, timed by the mask computation itself. Call in
// sorted-label order only; the parallel mask path measures inside its
// goroutines but reports here, at the barrier, so span attachment order is
// deterministic.
func (s *sdp) reportMask(level int, label string, size int, mask []bool, pairMasks [][]bool, start time.Time, d time.Duration) {
	if s.ob == nil && s.cur == nil {
		return
	}
	surv := countTrue(mask)
	var pairCounts []int
	for i := range pairMasks {
		pairCounts = append(pairCounts, countTrue(pairMasks[i]))
	}
	if s.cur != nil {
		p := s.cur.ChildAt("sdp.partition", start, d)
		p.SetAttr("tech", "SDP")
		p.SetAttr("level", level)
		p.SetAttr("label", label)
		p.SetAttr("size", size)
		p.SetAttr("survivors", surv)
		for i, n := range pairCounts {
			p.SetAttr(strings.ToLower(skyline.RCSNames[i]), n)
		}
	}
	if s.ob == nil {
		return
	}
	s.cCand.Add(int64(size))
	s.cSurvAll.Add(int64(surv))
	var attrs map[string]any
	if s.ob.Tracing() {
		attrs = map[string]any{
			"tech":      "SDP",
			"level":     level,
			"label":     label,
			"size":      size,
			"survivors": surv,
		}
	}
	for i, c := range []*obs.Counter{s.cSurvRC, s.cSurvCS, s.cSurvRS} {
		if pairCounts == nil {
			break
		}
		c.Add(int64(pairCounts[i]))
		if attrs != nil {
			attrs[strings.ToLower(skyline.RCSNames[i])] = pairCounts[i]
		}
	}
	if attrs != nil {
		s.ob.Emit(obs.EvSDPPartition, attrs)
	}
}

// maskOf computes the survivor mask over feature points under the
// configured skyline option.
func (s *sdp) maskOf(pts [][]float64) []bool {
	switch s.opts.Skyline {
	case Option1:
		return skyline.SFS(pts)
	case StrongSkyline:
		mask := skyline.KDominant(pts, 2)
		// k-dominance is cyclic: the strong skyline can be empty. Fall back
		// to the full skyline in that case so a partition never vanishes.
		for _, ok := range mask {
			if ok {
				return mask
			}
		}
		return skyline.SFS(pts)
	default:
		return skyline.DisjunctivePairwise(pts, skyline.RCSPairs)
	}
}

func featurePoints(classes []*memo.Class) [][]float64 {
	pts := make([][]float64, len(classes))
	for i, c := range classes {
		fv := c.FeatureVector()
		pts[i] = []float64{fv.Rows, fv.Cost, fv.Sel}
	}
	return pts
}

func countTrue(mask []bool) int {
	n := 0
	for _, ok := range mask {
		if ok {
			n++
		}
	}
	return n
}

// levelTrace starts the per-level pruning record carried as the sdp.level
// event payload — built only when a trace consumer is listening.
func (s *sdp) levelTrace(level int) *LevelTrace {
	if !s.ob.Tracing() {
		return nil
	}
	return &LevelTrace{
		Level:      level,
		Partitions: map[string][]bits.Set{},
		Features:   map[bits.Set]memo.FV{},
	}
}

// emitLevel closes one pruning level: the "sdp.level" event carries summary
// counts for serialized consumers and the full LevelTrace as the in-process
// payload the legacy SDPTrace is built from.
func (s *sdp) emitLevel(tr *LevelTrace, pruneGroup, freeGroup int) {
	if tr == nil {
		return
	}
	s.ob.EmitPayload(obs.EvSDPLevel, map[string]any{
		"tech":        "SDP",
		"level":       tr.Level,
		"prune_group": pruneGroup,
		"free_group":  freeGroup,
		"survivors":   len(tr.Survivors),
		"pruned":      len(tr.Pruned),
	}, tr)
}

func setsOf(classes []*memo.Class) []bits.Set {
	out := make([]bits.Set, len(classes))
	for i, c := range classes {
		out[i] = c.Set
	}
	return out
}

func sortedLabels(parts map[string][]*memo.Class) []string {
	labels := make([]string, 0, len(parts))
	for l := range parts {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return labels
}

// String renders the trace as the textual iteration walkthrough of the
// paper's Figure 2.2: per level, the PruneGroup/FreeGroup split, the hub
// and order partitions, and what was pruned.
func (t *Trace) String() string {
	var sb strings.Builder
	for _, lvl := range t.Levels {
		fmt.Fprintf(&sb, "Level %d: PruneGroup=%d FreeGroup=%d survivors=%d pruned=%d\n",
			lvl.Level, len(lvl.PruneGroup), len(lvl.FreeGroup), len(lvl.Survivors), len(lvl.Pruned))
		for _, label := range sortedTraceLabels(lvl.Partitions) {
			fmt.Fprintf(&sb, "  partition %-10s %v\n", label, lvl.Partitions[label])
		}
		if len(lvl.Pruned) > 0 {
			fmt.Fprintf(&sb, "  pruned: %v\n", lvl.Pruned)
		}
	}
	return sb.String()
}

func sortedTraceLabels(parts map[string][]bits.Set) []string {
	labels := make([]string, 0, len(parts))
	for l := range parts {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return labels
}
