// Scaling: walk the feasibility frontier. Stars grow one relation at a
// time and each optimizer runs under the paper's 1 GB budget until it
// becomes infeasible — reproducing the shape of Tables 2.1 and 3.3: DP
// collapses first, IDP(7) later, while SDP keeps going.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"sdpopt"
)

func main() {
	cat := sdpopt.ExtendedSchema(40)

	type alg struct {
		name string
		dead bool
		run  func(*sdpopt.Query) (*sdpopt.Plan, sdpopt.Stats, error)
	}
	idp7 := sdpopt.IDPDefaults()
	idp7.Budget = sdpopt.DefaultBudget
	sdpOpts := sdpopt.SDPOptions()
	sdpOpts.Budget = sdpopt.DefaultBudget
	algs := []*alg{
		{name: "DP", run: func(q *sdpopt.Query) (*sdpopt.Plan, sdpopt.Stats, error) {
			return sdpopt.OptimizeDP(q, sdpopt.DPOptions{Budget: sdpopt.DefaultBudget})
		}},
		{name: "IDP(7)", run: func(q *sdpopt.Query) (*sdpopt.Plan, sdpopt.Stats, error) {
			return sdpopt.OptimizeIDP(q, idp7)
		}},
		{name: "SDP", run: func(q *sdpopt.Query) (*sdpopt.Plan, sdpopt.Stats, error) {
			return sdpopt.OptimizeSDP(q, sdpOpts)
		}},
	}

	fmt.Printf("%5s", "rels")
	for _, a := range algs {
		fmt.Printf(" %22s", a.name+" (time / mem)")
	}
	fmt.Println()

	for n := 10; n <= 30; n += 2 {
		qs, err := sdpopt.Instances(sdpopt.WorkloadSpec{
			Cat: cat, Topology: sdpopt.Star, NumRelations: n, Seed: 3,
		}, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d", n)
		for _, a := range algs {
			if a.dead {
				fmt.Printf(" %22s", "*")
				continue
			}
			_, stats, err := a.run(qs[0])
			if errors.Is(err, sdpopt.ErrBudget) {
				a.dead = true
				fmt.Printf(" %22s", "* (exceeds 1GB)")
				continue
			}
			if err != nil {
				log.Fatalf("%s at %d relations: %v", a.name, n, err)
			}
			fmt.Printf(" %14s %6.1fMB",
				stats.Elapsed.Round(time.Millisecond), stats.Memo.PeakMB())
		}
		fmt.Println()
	}
	fmt.Println("\n'*' marks the feasibility cliff under the 1 GB simulated-memory budget.")
}
