package ce

import (
	"fmt"
	"math/rand"

	"sdpopt/internal/catalog"
	"sdpopt/internal/query"
)

// DegradeCatalog returns a deep copy of cat in which each column has
// independently lost its ANALYZE statistics with probability 1-health,
// deterministically in seed. health=1 returns a faithful copy; health=0
// loses every column. A lost column has StatsLost set and NDV/Skew zeroed —
// estimation over the degraded catalog falls back to PostgreSQL's magic
// selectivities (see cost.DefaultRangeSel, cost.DefaultNDV). Relation
// cardinalities and widths are preserved: reltuples and avg_width survive
// even when pg_statistic is empty.
func DegradeCatalog(cat *catalog.Catalog, health float64, seed int64) (*catalog.Catalog, error) {
	if health < 0 || health > 1 {
		return nil, fmt.Errorf("ce: stats health %g outside [0, 1]", health)
	}
	cp := &catalog.Catalog{Rels: make([]catalog.Relation, len(cat.Rels))}
	rng := rand.New(rand.NewSource(seed))
	for i, rel := range cat.Rels {
		r := rel
		r.Cols = append([]catalog.Column(nil), rel.Cols...)
		for j := range r.Cols {
			// Draw per column regardless of outcome so each column's fate is
			// independent of how many precede it in the schema.
			if rng.Float64() >= health {
				r.Cols[j].StatsLost = true
				r.Cols[j].NDV = 0
				r.Cols[j].Skew = 0
			}
		}
		cp.Rels[i] = r
	}
	return cp, nil
}

// MirrorQuery rebuilds q against cat: same relations, user-written
// predicates, filters, and order. The implied-predicate closure is a pure
// function of the user predicates' structure, so the mirrored query has an
// identical frame — relation indexing, predicate indexing, equivalence
// classes — and plans cost under one mirror recost cleanly under the other.
// This is how the harness pairs a degraded-statistics view of a query with
// its true-statistics twin.
func MirrorQuery(q *query.Query, cat *catalog.Catalog) (*query.Query, error) {
	user := make([]query.Pred, 0, len(q.Preds))
	for _, p := range q.Preds {
		if !p.Implied {
			user = append(user, p)
		}
	}
	return query.NewFiltered(cat, q.Rels, user, q.Filters, q.OrderBy)
}
