// Package harness reproduces the paper's experiments: one runner per table
// and figure, each generating the workload, executing the competing
// optimizers, and rendering the paper's table layout.
//
// Every runner is deterministic in its Config. Instance counts default to
// sample sizes that reproduce the paper's percentage distributions in
// minutes rather than the paper's full combinatorial enumeration (see
// DESIGN.md, Substitutions); they scale up via Config.Instances.
package harness

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"sdpopt/internal/core"
	"sdpopt/internal/dp"
	"sdpopt/internal/greedy"
	"sdpopt/internal/idp"
	"sdpopt/internal/memo"
	"sdpopt/internal/obs"
	"sdpopt/internal/pardp"
	"sdpopt/internal/plan"
	"sdpopt/internal/plancache"
	"sdpopt/internal/quality"
	"sdpopt/internal/query"
	"sdpopt/internal/workload"
)

// Config parameterizes an experiment run.
type Config struct {
	// Instances is the number of query instances per workload template;
	// 0 selects each experiment's default.
	Instances int
	// Seed drives workload sampling.
	Seed int64
	// Budget is the simulated-memory feasibility limit; 0 selects the
	// paper's 1 GB.
	Budget int64
	// Skewed selects the exponentially-skewed schema variant.
	Skewed bool
	// Workers is the number of concurrent optimizations (0 or 1 = serial).
	// Parallel runs keep all results identical but inflate the per-instance
	// wall-time measurements under CPU contention.
	Workers int
	// EnumWorkers is the enumeration worker count inside each DP-substrate
	// optimization (0 or 1 = the sequential engine, >1 = the parallel
	// engine, internal/pardp). Orthogonal to Workers: that knob runs many
	// optimizations at once, this one splits each optimization's level
	// enumeration across cores. Results are bit-for-bit identical either
	// way.
	EnumWorkers int
	// Cache, if non-nil, routes every optimization through the plan cache
	// (keyed by fingerprint × technique × catalog version), so repeated
	// query shapes within and across batches are served without
	// re-enumeration. Cached instances report the lookup's wall time and
	// zero enumeration work, which skews the overhead tables toward what a
	// serving deployment would pay — leave unset for paper-faithful
	// measurements.
	Cache *plancache.Cache
}

func (c Config) workers() int {
	if c.Workers < 1 {
		return 1
	}
	return c.Workers
}

func (c Config) enumWorkers() int {
	if c.EnumWorkers < 1 {
		return 1
	}
	return c.EnumWorkers
}

func (c Config) budget() int64 {
	if c.Budget == 0 {
		return memo.DefaultBudget
	}
	return c.Budget
}

func (c Config) instances(def int) int {
	if c.Instances == 0 {
		return def
	}
	return c.Instances
}

func (c Config) schema() *workload.Spec {
	cat := workload.PaperSchema()
	if c.Skewed {
		cat = workload.SkewedSchema()
	}
	return &workload.Spec{Cat: cat, Seed: c.Seed}
}

// Technique is one optimizer configuration under comparison.
type Technique struct {
	Name string
	Run  func(q *query.Query) (*plan.Plan, dp.Stats, error)
}

// Standard technique constructors. Each closes over the budget so
// infeasibility surfaces as memo.ErrBudget. The optional trailing workers
// argument (at most one) selects the parallel enumeration engine when >1 —
// plan-identical to the sequential default, it only changes wall time.

// enumWorkersOf folds the optional variadic workers argument.
func enumWorkersOf(workers []int) int {
	if len(workers) == 0 {
		return 1
	}
	return workers[0]
}

// TechDP is exhaustive dynamic programming.
func TechDP(budget int64, workers ...int) Technique {
	w := enumWorkersOf(workers)
	return Technique{Name: "DP", Run: func(q *query.Query) (*plan.Plan, dp.Stats, error) {
		if w > 1 {
			return pardp.Optimize(q, pardp.Options{Workers: w, Budget: budget})
		}
		return dp.Optimize(q, dp.Options{Budget: budget})
	}}
}

// TechIDP is IDP1-balanced-bestRow with the given block size.
func TechIDP(k int, budget int64) Technique {
	return Technique{Name: fmt.Sprintf("IDP(%d)", k), Run: func(q *query.Query) (*plan.Plan, dp.Stats, error) {
		opts := idp.DefaultOptions()
		opts.K = k
		opts.Budget = budget
		return idp.Optimize(q, opts)
	}}
}

// TechIDP2 is IDP2 (greedy-then-re-optimize subtree passes) with block
// size k.
func TechIDP2(k int, budget int64) Technique {
	return Technique{Name: fmt.Sprintf("IDP2(%d)", k), Run: func(q *query.Query) (*plan.Plan, dp.Stats, error) {
		opts := idp.DefaultOptions()
		opts.K = k
		opts.Budget = budget
		return idp.Optimize2(q, opts)
	}}
}

// TechGOO is greedy operator ordering. It takes no budget: greedy's memory
// is linear in the query, so it is feasible on every workload the harness
// can generate.
func TechGOO() Technique {
	return Technique{Name: "GOO", Run: func(q *query.Query) (*plan.Plan, dp.Stats, error) {
		return greedy.Optimize(q, greedy.Options{})
	}}
}

// TechSDP is SDP with the paper's default configuration.
func TechSDP(budget int64, workers ...int) Technique {
	return TechSDPVariant("SDP", core.DefaultOptions(), budget, workers...)
}

// TechSDPVariant is SDP with explicit options, for the ablations.
func TechSDPVariant(name string, opts core.Options, budget int64, workers ...int) Technique {
	w := enumWorkersOf(workers)
	return Technique{Name: name, Run: func(q *query.Query) (*plan.Plan, dp.Stats, error) {
		opts := opts
		opts.Budget = budget
		if w > 1 {
			opts.Workers = w
		}
		return core.Optimize(q, opts)
	}}
}

// TechOutcome aggregates one technique's results over a query batch.
type TechOutcome struct {
	Name string
	// Feasible is false when any instance exceeded the memory budget — the
	// paper's "*" rows.
	Feasible bool
	// Reference marks the technique whose plans normalize the ratios.
	Reference bool
	// Ratios are per-instance plan-cost ratios to the reference.
	Ratios []float64
	// Summary is the quality distribution over Ratios.
	Summary quality.Summary
	// PeakMemMB is the maximum simulated memory over instances, in MB.
	PeakMemMB float64
	// MeanTime is the mean optimization wall time per instance.
	MeanTime time.Duration
	// MeanCosted is the mean number of plans costed per instance.
	MeanCosted float64
	// MeanPairsConsidered and MeanPairsConnected are the mean enumerator
	// pair counts per instance: candidate pairs examined, and pairs that
	// passed the disjoint+connected filter. Their ratio measures how much
	// of the enumeration loop the adjacency index skips.
	MeanPairsConsidered float64
	MeanPairsConnected  float64
}

// Batch is the outcome of running several techniques over one workload.
type Batch struct {
	Graph     string
	Instances int
	Reference string
	Outcomes  []TechOutcome
}

// RunBatch optimizes every query with every technique, serially. The
// reference technique (by name) supplies the per-instance baseline cost;
// reference ratios use strict summarizing (it must win), others use
// relative summarizing. A technique that exceeds the budget on any
// instance is marked infeasible, mirroring the paper's "*" entries.
func RunBatch(graph string, qs []*query.Query, techs []Technique, reference string) (*Batch, error) {
	return RunBatchWorkers(graph, qs, techs, reference, 1)
}

// RunBatchWorkers is RunBatch with up to workers concurrent optimizations.
// Every (technique, instance) pair is independent — each run builds its
// own cost model and memo — so parallelism only affects wall-clock time;
// note that the per-instance Elapsed measurements inflate under CPU
// contention, so timing-sensitive overhead tables should run serially.
func RunBatchWorkers(graph string, qs []*query.Query, techs []Technique, reference string, workers int) (*Batch, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("harness: empty workload")
	}
	refIdx := -1
	for i, t := range techs {
		if t.Name == reference {
			refIdx = i
		}
	}
	if refIdx < 0 {
		return nil, fmt.Errorf("harness: reference %q not among techniques", reference)
	}
	if workers < 1 {
		workers = 1
	}

	// Harness telemetry goes to the process-wide observer; the techniques'
	// engine runs pick it up themselves through the same default.
	ob := obs.Default()
	ob.Counter(obs.MBatches).Add(1)
	batchStart := time.Now()
	if ob.Tracing() {
		names := make([]string, len(techs))
		for i, t := range techs {
			names[i] = t.Name
		}
		ob.Emit(obs.EvBatchStart, map[string]any{
			"graph":      graph,
			"instances":  len(qs),
			"techniques": strings.Join(names, ","),
			"workers":    workers,
		})
	}
	gQueue := ob.Gauge(obs.MQueueDepth)
	techHists := make([]*obs.Histogram, len(techs))
	for i, t := range techs {
		techHists[i] = ob.Histogram(obs.Label(obs.MTechniqueSeconds, "tech", t.Name))
	}
	observeInstance := func(ti, qi int, stats dp.Stats, err error) {
		techHists[ti].Observe(stats.Elapsed)
		if !ob.Tracing() {
			return
		}
		attrs := map[string]any{
			"tech":         techs[ti].Name,
			"graph":        graph,
			"instance":     qi,
			"dur_ns":       int64(stats.Elapsed),
			"plans_costed": stats.PlansCosted,
		}
		if err != nil {
			attrs["err"] = err.Error()
		}
		ob.Emit(obs.EvInstance, attrs)
	}

	type cell struct {
		plan  *plan.Plan
		stats dp.Stats
	}
	results := make([][]cell, len(techs))
	feasible := make([]bool, len(techs))
	ran := make([]int, len(techs))
	var firstErr error

	// Feasibility probes run first, serially per technique: one budget
	// abort marks the technique infeasible for the whole workload (the
	// instances differ only in sampled relations, not search-space size)
	// and skips its remaining instances.
	for ti := range techs {
		results[ti] = make([]cell, len(qs))
		feasible[ti] = true
		p, stats, err := techs[ti].Run(qs[0])
		results[ti][0] = cell{p, stats}
		ran[ti] = 1
		observeInstance(ti, 0, stats, err)
		if err != nil {
			if !errors.Is(err, memo.ErrBudget) {
				return nil, fmt.Errorf("harness: %s on instance 0: %w", techs[ti].Name, err)
			}
			feasible[ti] = false
		}
	}

	// Remaining (technique, instance) pairs fan out over the worker pool.
	type job struct{ ti, qi int }
	jobs := make(chan job)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				gQueue.Add(-1)
				p, stats, err := techs[j.ti].Run(qs[j.qi])
				observeInstance(j.ti, j.qi, stats, err)
				mu.Lock()
				results[j.ti][j.qi] = cell{p, stats}
				if j.qi+1 > ran[j.ti] {
					ran[j.ti] = j.qi + 1
				}
				if err != nil {
					if errors.Is(err, memo.ErrBudget) {
						feasible[j.ti] = false
					} else if firstErr == nil {
						firstErr = fmt.Errorf("harness: %s on instance %d: %w", techs[j.ti].Name, j.qi, err)
					}
				}
				mu.Unlock()
			}
		}()
	}
	for ti := range techs {
		if !feasible[ti] {
			continue
		}
		for qi := 1; qi < len(qs); qi++ {
			gQueue.Add(1)
			jobs <- job{ti, qi}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	// A budget abort discovered mid-pool truncates that technique's usable
	// prefix to the instances that completed with plans.
	for ti := range techs {
		if feasible[ti] {
			continue
		}
		n := 0
		for qi := 0; qi < len(qs); qi++ {
			if results[ti][qi].plan == nil {
				break
			}
			n = qi + 1
		}
		if n == 0 {
			n = 1 // keep the probe's stats visible
		}
		ran[ti] = n
	}
	if !feasible[refIdx] {
		return nil, fmt.Errorf("harness: reference %s infeasible on this workload", reference)
	}

	b := &Batch{Graph: graph, Instances: len(qs), Reference: reference}
	for ti, t := range techs {
		out := TechOutcome{Name: t.Name, Feasible: feasible[ti], Reference: ti == refIdx}
		var totalTime time.Duration
		var totalCosted, totalPairsCons, totalPairsConn int64
		for qi := 0; qi < ran[ti]; qi++ {
			c := results[ti][qi]
			totalTime += c.stats.Elapsed
			totalCosted += c.stats.PlansCosted
			totalPairsCons += c.stats.PairsConsidered
			totalPairsConn += c.stats.PairsConnected
			if mb := c.stats.Memo.PeakMB(); mb > out.PeakMemMB {
				out.PeakMemMB = mb
			}
			if out.Feasible {
				out.Ratios = append(out.Ratios, c.plan.Cost/results[refIdx][qi].plan.Cost)
			}
		}
		out.MeanTime = totalTime / time.Duration(ran[ti])
		out.MeanCosted = float64(totalCosted) / float64(ran[ti])
		out.MeanPairsConsidered = float64(totalPairsCons) / float64(ran[ti])
		out.MeanPairsConnected = float64(totalPairsConn) / float64(ran[ti])
		if out.Feasible {
			var err error
			if out.Reference {
				out.Summary, err = quality.Summarize(out.Ratios)
			} else {
				out.Summary, err = quality.SummarizeRelative(out.Ratios)
			}
			if err != nil {
				return nil, fmt.Errorf("harness: summarizing %s: %w", t.Name, err)
			}
		}
		b.Outcomes = append(b.Outcomes, out)
	}
	if ob.Tracing() {
		ob.Emit(obs.EvBatchEnd, map[string]any{
			"graph":     graph,
			"instances": len(qs),
			"dur_ns":    time.Since(batchStart).Nanoseconds(),
		})
	}
	return b, nil
}

// QualityTable renders the batch as a paper-style plan-quality table.
func (b *Batch) QualityTable() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %-8s %s\n", "Join Graph", "Tech", quality.Header())
	for _, o := range b.Outcomes {
		if !o.Feasible {
			fmt.Fprintf(&sb, "%-16s %-8s %s\n", b.Graph, o.Name, "*  (exceeds memory budget)")
			continue
		}
		fmt.Fprintf(&sb, "%-16s %-8s %s\n", b.Graph, o.Name, o.Summary.Row())
	}
	return sb.String()
}

// OverheadTable renders the batch as a paper-style overhead table
// (memory / time / plans costed).
func (b *Batch) OverheadTable() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %-8s %12s %12s %12s\n", "Join Graph", "Tech", "Memory(MB)", "Time", "Costing")
	for _, o := range b.Outcomes {
		mark := ""
		if !o.Feasible {
			mark = " *"
		}
		fmt.Fprintf(&sb, "%-16s %-8s %12.2f %12v %12s%s\n",
			b.Graph, o.Name, o.PeakMemMB, o.MeanTime.Round(time.Microsecond),
			quality.FormatCount(int64(o.MeanCosted)), mark)
	}
	return sb.String()
}

// AddInfeasible prepends a static infeasible row — used for techniques the
// feasibility probes already place beyond the budget (the paper's "*"
// entries), sparing the batch from grinding each instance to the abort.
func (b *Batch) AddInfeasible(name string) {
	b.Outcomes = append([]TechOutcome{{Name: name, Feasible: false}}, b.Outcomes...)
}

// Outcome returns the named technique's outcome, or nil.
func (b *Batch) Outcome(name string) *TechOutcome {
	for i := range b.Outcomes {
		if b.Outcomes[i].Name == name {
			return &b.Outcomes[i]
		}
	}
	return nil
}
