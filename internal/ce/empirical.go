package ce

import (
	"fmt"
	"math"

	"sdpopt/internal/cost"
	"sdpopt/internal/feedback"
	"sdpopt/internal/query"
)

// EmpiricalEstimator replays a measured cardinality-error profile: instead
// of the Injector's synthetic log-normal lies, each base-relation estimate
// and join-predicate selectivity is multiplied by the geomean est/actual
// factor the feedback ledger actually observed for that catalog object
// (feedback.BuildProfile over an exec-sampled JSONL corpus). Objects the
// corpus never saw keep factor 1 — the harness only injects error it has
// evidence for.
//
// This closes the loop the paper leaves open: the robustness sweep stops
// asking "how do the techniques behave under hypothetical band-b error?"
// and starts asking "how do they behave under the estimation error this
// serving deployment measurably has?".
//
// Like the Injector, all factors are resolved at construction from stable
// catalog-level identities (relation names, sorted predicate labels), so an
// EmpiricalEstimator is read-only afterwards and safe to share across
// Model.Fork workers — and the same profile replays bit-identically into
// every query that touches the same objects.
type EmpiricalEstimator struct {
	base cost.Estimator

	relFactor  []float64 // per query-local relation
	predFactor []float64 // per query predicate
	n          int       // observations behind the profile, for Name
}

// NewEmpiricalEstimator wraps base (nil selects the catalog estimator for
// q) in the measured error factors of profile. A nil or empty profile
// yields factor 1 everywhere — bit-identical to the base.
func NewEmpiricalEstimator(q *query.Query, base cost.Estimator, profile *feedback.ErrorProfile) *EmpiricalEstimator {
	if base == nil {
		base = cost.NewCatalogEstimator(q)
	}
	e := &EmpiricalEstimator{
		base:       base,
		relFactor:  make([]float64, q.NumRelations()),
		predFactor: make([]float64, len(q.Preds)),
	}
	if profile != nil {
		e.n = profile.Observations
	}
	for i := range e.relFactor {
		e.relFactor[i] = profile.RelFactor(q.Relation(i).Name)
	}
	for pi := range e.predFactor {
		e.predFactor[pi] = profile.PredFactor(feedback.PredLabel(q, pi))
	}
	return e
}

// Name implements cost.Estimator.
func (e *EmpiricalEstimator) Name() string {
	return fmt.Sprintf("%s+empirical(n=%d)", e.base.Name(), e.n)
}

// RelRows implements cost.Estimator: the base estimate times the measured
// relation factor, floored at one row.
func (e *EmpiricalEstimator) RelRows(i int) float64 {
	return math.Max(1, e.base.RelRows(i)*e.relFactor[i])
}

// PredSel implements cost.Estimator: the base selectivity times the
// measured predicate factor, clamped to (0, 1].
func (e *EmpiricalEstimator) PredSel(pi int) float64 {
	return math.Min(1, e.base.PredSel(pi)*e.predFactor[pi])
}

// ColumnNDV implements cost.Estimator. Passed through for the same reason
// the Injector passes it through: the replayed error already reaches join
// cardinalities via PredSel.
func (e *EmpiricalEstimator) ColumnNDV(rel, col int) float64 { return e.base.ColumnNDV(rel, col) }

// FilterSel implements cost.Estimator, passed through (relation-level error
// is expressed via RelRows).
func (e *EmpiricalEstimator) FilterSel(f query.Filter) float64 { return e.base.FilterSel(f) }
