package bits

import "testing"

// FuzzIterMatchesEach checks that the allocation-free Iter cursor and the
// resumable NextBit primitive visit exactly the members Each visits, in the
// same increasing order, for arbitrary two-word sets — including sets whose
// members straddle the 63/64 word boundary and the top bit 127.
func FuzzIterMatchesEach(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(1), uint64(0))
	f.Add(uint64(0b1011), uint64(0))
	f.Add(^uint64(0), ^uint64(0))
	f.Add(uint64(1)<<63, uint64(0))
	f.Add(uint64(1)<<63, uint64(1)) // adjacent members 63 and 64
	f.Add(uint64(0), uint64(1)<<63) // only bit 127
	f.Fuzz(func(t *testing.T, raw0, raw1 uint64) {
		s := FromWords(raw0, raw1)
		var want []int
		s.Each(func(i int) { want = append(want, i) })

		var got []int
		for it := s.Iter(); ; {
			i, ok := it.Next()
			if !ok {
				break
			}
			got = append(got, i)
		}
		if len(got) != len(want) {
			t.Fatalf("Iter over %v yielded %d members, Each yielded %d", s, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("Iter over %v yielded %v, Each yielded %v", s, got, want)
			}
		}

		got = got[:0]
		for i := s.NextBit(0); i >= 0; i = s.NextBit(i + 1) {
			got = append(got, i)
		}
		if len(got) != len(want) {
			t.Fatalf("NextBit over %v yielded %d members, Each yielded %d", s, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("NextBit over %v yielded %v, Each yielded %v", s, got, want)
			}
		}
	})
}

func TestIterExhausted(t *testing.T) {
	var it Iter
	if i, ok := it.Next(); ok || i != -1 {
		t.Fatalf("zero Iter.Next() = %d, %v; want -1, false", i, ok)
	}
	if i, ok := it.Next(); ok || i != -1 {
		t.Fatalf("repeated Next() on exhausted Iter = %d, %v; want -1, false", i, ok)
	}
}

func TestNextBitBounds(t *testing.T) {
	s := Of(0, 5, 63, 64, 127)
	cases := []struct{ from, want int }{
		{-7, 0}, {0, 0}, {1, 5}, {5, 5}, {6, 63}, {63, 63},
		{64, 64}, {65, 127}, {127, 127}, {128, -1}, {200, -1},
	}
	for _, c := range cases {
		if got := s.NextBit(c.from); got != c.want {
			t.Errorf("NextBit(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if got := (Set{}).NextBit(0); got != -1 {
		t.Errorf("empty NextBit(0) = %d, want -1", got)
	}
	// Low word empty: the resume must hop the word boundary.
	hi := Of(100)
	if got := hi.NextBit(3); got != 100 {
		t.Errorf("NextBit(3) over {101} = %d, want 100", got)
	}
}
