package parse

import (
	"strings"
	"testing"

	"sdpopt/internal/workload"
)

func TestLineCol(t *testing.T) {
	src := "ab\ncd\n\nef"
	cases := []struct {
		off  int
		want string
	}{
		{0, "1:1"},
		{1, "1:2"},
		{2, "1:3"}, // the newline itself still belongs to line 1
		{3, "2:1"},
		{5, "2:3"},
		{6, "3:1"},
		{7, "4:1"},
		{9, "4:3"},
		{99, "4:3"}, // clamped to end of input
	}
	for _, c := range cases {
		if got := lineCol(src, c.off); got != c.want {
			t.Errorf("lineCol(%d) = %q, want %q", c.off, got, c.want)
		}
	}
}

// TestErrorPositions pins the user-visible position format: multi-line
// inputs must report the line and column of the offending token.
func TestErrorPositions(t *testing.T) {
	cat := workload.PaperSchema()
	cases := []struct {
		sql    string
		wantAt string
	}{
		{"SELECT * FROM R1 a WHERE a.c0 ? 3", "1:31"},
		{"SELECT *\nFROM R1 a\nWHERE a.nope < 3", "3:9"},
		{"SELECT *\nFROM R1 a, NoSuchTable b", "2:12"},
		{"SELECT * FROM R1 a WHERE b.c0 = a.c0", "1:26"},
	}
	for _, c := range cases {
		_, err := SQL(cat, c.sql)
		if err == nil {
			t.Errorf("%q: expected error", c.sql)
			continue
		}
		if !strings.Contains(err.Error(), c.wantAt) {
			t.Errorf("%q: error %q does not mention position %s", c.sql, err, c.wantAt)
		}
	}
}
