package catalog

import "math"

// FracBelow returns the fraction of the column's rows with value < bound,
// the statistic ANALYZE's histograms provide. Column values live in
// [0, NDV). For uniform columns this is bound/NDV; for skewed columns the
// value distribution is the folded exponential the data generator draws
// from (value = Exp(1)/skew · NDV/4, capped at NDV−1), whose CDF is
// 1 − exp(−4·skew·v/NDV).
func (c *Column) FracBelow(bound float64) float64 {
	if bound <= 0 {
		return 0
	}
	if bound >= c.NDV {
		return 1
	}
	if c.Skew == 0 {
		return bound / c.NDV
	}
	return 1 - math.Exp(-4*c.Skew*bound/c.NDV)
}

// HistogramBuckets is the bucket count of synthesized equi-depth
// histograms, matching PostgreSQL 8.1's default statistics target
// granularity.
const HistogramBuckets = 10

// Histogram is an equi-depth histogram over a column's value domain: each
// bucket holds an equal fraction of the rows; Bounds[i] is the upper value
// bound of bucket i (exclusive), Bounds[len-1] = NDV.
type Histogram struct {
	Bounds []float64
}

// Histogram synthesizes the equi-depth histogram ANALYZE would build for
// the column, by inverting the value CDF at equal-depth quantiles.
func (c *Column) Histogram() Histogram {
	h := Histogram{Bounds: make([]float64, HistogramBuckets)}
	for i := 1; i <= HistogramBuckets; i++ {
		q := float64(i) / HistogramBuckets
		h.Bounds[i-1] = c.quantile(q)
	}
	return h
}

// quantile inverts FracBelow: the smallest value v with FracBelow(v) ≥ q.
func (c *Column) quantile(q float64) float64 {
	if q >= 1 {
		return c.NDV
	}
	if q <= 0 {
		return 0
	}
	if c.Skew == 0 {
		return q * c.NDV
	}
	// Invert 1 − exp(−4·skew·v/NDV) = q, capped at the domain: the folded
	// tail mass sits in the top value, so quantiles beyond the fold clamp.
	v := -math.Log(1-q) * c.NDV / (4 * c.Skew)
	if v > c.NDV {
		v = c.NDV
	}
	return v
}

// SelBelow estimates the selectivity of "value < bound" from the
// histogram with linear interpolation inside the bucket containing bound —
// PostgreSQL's ineq_histogram_selectivity.
func (h Histogram) SelBelow(bound float64) float64 {
	n := len(h.Bounds)
	if n == 0 {
		return 1
	}
	if bound <= 0 {
		return 0
	}
	depth := 1 / float64(n)
	lo := 0.0
	for i, hi := range h.Bounds {
		if bound < hi {
			frac := 0.0
			if hi > lo {
				frac = (bound - lo) / (hi - lo)
			}
			return (float64(i) + frac) * depth
		}
		lo = hi
	}
	return 1
}
