package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a concurrency-safe metrics registry. Metric handles are
// resolved once by name (Counter / Gauge / Histogram) and then updated with
// atomic operations, so concurrent engine runs share one registry without
// locking on the hot path. All methods are nil-safe: a nil *Registry hands
// out nil handles, whose update methods are a single nil-check — the
// near-zero disabled path.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() int64
	histograms map[string]*Histogram
	floatHists map[string]*FloatHistogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		gaugeFuncs: map[string]func() int64{},
		histograms: map[string]*Histogram{},
		floatHists: map[string]*FloatHistogram{},
	}
}

// Counter is a monotonically increasing metric.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter by d. No-op on a nil counter.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. Set/Add store int64 values
// (bytes, object counts); SetMax retains the maximum, for peak tracking.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d and returns the new value (0 on a nil gauge).
func (g *Gauge) Add(d int64) int64 {
	if g == nil {
		return 0
	}
	return g.v.Add(d)
}

// SetMax raises the gauge to v if v is larger — a monotone high-water mark.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current gauge value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets are the duration histogram upper bounds: exponential from 1 µs
// to ~68 s (factor 4), covering everything from a single enumeration level
// to a full paper-scale batch.
var histBuckets = func() []time.Duration {
	var b []time.Duration
	for d := time.Microsecond; d < 2*time.Minute; d *= 4 {
		b = append(b, d)
	}
	return b
}()

// Histogram is a fixed-bucket duration histogram with atomic counters. The
// last bucket slot is the +Inf overflow. Each bucket additionally retains
// the most recent exemplar — the trace ID of the last request that landed
// in it — so an extreme bucket in a latency histogram links straight to a
// flight-recorder entry.
type Histogram struct {
	name      string
	buckets   [16]atomic.Int64
	exemplars [16]atomic.Pointer[Exemplar]
	count     atomic.Int64
	sumNS     atomic.Int64
}

// Exemplar ties one histogram observation to the request trace that
// produced it.
type Exemplar struct {
	TraceID string
	Value   time.Duration
	Time    time.Time
}

func init() {
	if len(histBuckets) >= 16 {
		panic("obs: histogram bucket array too small")
	}
}

// bucketIndex returns the bucket slot for d (len(histBuckets) = overflow).
func bucketIndex(d time.Duration) int {
	i := 0
	for i < len(histBuckets) && d > histBuckets[i] {
		i++
	}
	return i
}

// Observe records one duration. No-op on a nil histogram.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	i := bucketIndex(d)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(d))
}

// ObserveExemplar records one duration and, when traceID is non-empty,
// replaces the landed bucket's exemplar with it. An empty traceID makes
// this identical to Observe, so call sites need no tracing-enabled branch.
func (h *Histogram) ObserveExemplar(d time.Duration, traceID string) {
	if h == nil {
		return
	}
	i := bucketIndex(d)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(d))
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: d, Time: time.Now()})
	}
}

// Exemplars returns the histogram's current per-bucket exemplars in bucket
// order (empty buckets skipped). Nil-safe.
func (h *Histogram) Exemplars() []Exemplar {
	if h == nil {
		return nil
	}
	var out []Exemplar
	for i := range h.exemplars {
		if ex := h.exemplars[i].Load(); ex != nil {
			out = append(out, *ex)
		}
	}
	return out
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed duration (0 for nil).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNS.Load())
}

// Counter resolves (creating on first use) the named counter. Nil-safe.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge resolves (creating on first use) the named gauge. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram resolves (creating on first use) the named duration histogram.
// Nil-safe.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{name: name}
		r.histograms[name] = h
	}
	return h
}

// Label formats a metric name with label pairs in Prometheus exposition
// syntax, e.g. Label("sdpopt_technique_seconds", "tech", "SDP") →
// `sdpopt_technique_seconds{tech="SDP"}`. The labeled string is itself the
// registry key, so labeled series are independent metrics.
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", kv[i], kv[i+1])
	}
	sb.WriteByte('}')
	return sb.String()
}

// splitLabeled separates a registry key into its base name and the label
// block (with braces), if any.
func splitLabeled(key string) (base, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i], key[i:]
	}
	return key, ""
}

// ExemplarInfo is one histogram bucket's exemplar with enough context to
// render it standalone (metric name plus the bucket's le bound). Value is
// pre-formatted — a duration string for latency histograms, a plain number
// for float (ratio) histograms.
type ExemplarInfo struct {
	Metric  string
	LE      string
	TraceID string
	Value   string
	Time    time.Time
}

// Exemplars returns every histogram bucket exemplar in the registry —
// duration and float histograms alike — sorted by metric name then bucket
// bound: the data behind the /debug/requests "latency exemplars" table.
// Nil-safe.
func (r *Registry) Exemplars() []ExemplarInfo {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	hists := make([]*Histogram, 0, len(r.histograms))
	for _, h := range r.histograms {
		hists = append(hists, h)
	}
	fhists := make([]*FloatHistogram, 0, len(r.floatHists))
	for _, h := range r.floatHists {
		fhists = append(fhists, h)
	}
	r.mu.Unlock()
	var out []ExemplarInfo
	for _, h := range hists {
		for i := range h.exemplars {
			ex := h.exemplars[i].Load()
			if ex == nil {
				continue
			}
			ub := math.Inf(1)
			if i < len(histBuckets) {
				ub = histBuckets[i].Seconds()
			}
			out = append(out, ExemplarInfo{
				Metric:  h.name,
				LE:      formatLE(ub),
				TraceID: ex.TraceID,
				Value:   ex.Value.String(),
				Time:    ex.Time,
			})
		}
	}
	for _, h := range fhists {
		for i := range h.exemplars {
			ex := h.exemplars[i].Load()
			if ex == nil {
				continue
			}
			ub := math.Inf(1)
			if i < len(h.bounds) {
				ub = h.bounds[i]
			}
			out = append(out, ExemplarInfo{
				Metric:  h.name,
				LE:      formatLE(ub),
				TraceID: ex.TraceID,
				Value:   fmt.Sprintf("%g", ex.Value),
				Time:    ex.Time,
			})
		}
	}
	// Entries were appended in bucket order per metric; a stable sort on
	// the metric name alone preserves that within each histogram.
	sort.SliceStable(out, func(i, j int) bool { return out[i].Metric < out[j].Metric })
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples, histograms
// as cumulative _bucket/_sum/_count series with seconds-valued buckets.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.writeText(w, false)
}

// WriteOpenMetrics renders the registry like WritePrometheus but in
// OpenMetrics form: bucket samples carry their exemplar suffix
// (`# {trace_id="..."} <seconds> <unix>`) and the stream is terminated
// with `# EOF`. Scrapers that accept application/openmetrics-text get this
// variant and can link extreme latency buckets to flight-recorder traces.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	if err := r.writeText(w, true); err != nil {
		return err
	}
	if r == nil {
		return nil
	}
	_, err := fmt.Fprintln(w, "# EOF")
	return err
}

func (r *Registry) writeText(w io.Writer, exemplars bool) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	funcs := make([]struct {
		name string
		fn   func() int64
	}, 0, len(r.gaugeFuncs))
	for name, fn := range r.gaugeFuncs {
		funcs = append(funcs, struct {
			name string
			fn   func() int64
		}{name, fn})
	}
	hists := make([]*Histogram, 0, len(r.histograms))
	for _, h := range r.histograms {
		hists = append(hists, h)
	}
	fhists := make([]*FloatHistogram, 0, len(r.floatHists))
	for _, h := range r.floatHists {
		fhists = append(fhists, h)
	}
	r.mu.Unlock()

	// Gauge functions are evaluated outside the registry lock — they may
	// take their owners' locks — and merged with the stored gauges into one
	// name-sorted gauge section.
	type sample struct {
		name string
		v    int64
	}
	gsamples := make([]sample, 0, len(gauges)+len(funcs))
	for _, g := range gauges {
		gsamples = append(gsamples, sample{g.name, g.Value()})
	}
	for _, f := range funcs {
		gsamples = append(gsamples, sample{f.name, f.fn()})
	}

	sort.Slice(counters, func(i, j int) bool { return counters[i].name < counters[j].name })
	sort.Slice(gsamples, func(i, j int) bool { return gsamples[i].name < gsamples[j].name })
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })
	sort.Slice(fhists, func(i, j int) bool { return fhists[i].name < fhists[j].name })

	typed := map[string]bool{}
	header := func(key, kind string) {
		base, _ := splitLabeled(key)
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		}
	}
	for _, c := range counters {
		header(c.name, "counter")
		if _, err := fmt.Fprintf(w, "%s %d\n", c.name, c.Value()); err != nil {
			return err
		}
	}
	for _, g := range gsamples {
		header(g.name, "gauge")
		if _, err := fmt.Fprintf(w, "%s %d\n", g.name, g.v); err != nil {
			return err
		}
	}
	for _, h := range hists {
		header(h.name, "histogram")
		base, labels := splitLabeled(h.name)
		bucket := func(i int, ub float64, cum int64) error {
			_, err := fmt.Fprintf(w, "%s%s %d%s\n", base+"_bucket", mergeLE(labels, ub), cum, h.exemplarSuffix(i, exemplars))
			return err
		}
		cum := int64(0)
		for i, ub := range histBuckets {
			cum += h.buckets[i].Load()
			if err := bucket(i, ub.Seconds(), cum); err != nil {
				return err
			}
		}
		cum += h.buckets[len(histBuckets)].Load()
		if err := bucket(len(histBuckets), math.Inf(1), cum); err != nil {
			return err
		}
		fmt.Fprintf(w, "%s%s %g\n", base+"_sum", labels, h.Sum().Seconds())
		fmt.Fprintf(w, "%s%s %d\n", base+"_count", labels, h.Count())
	}
	for _, h := range fhists {
		header(h.name, "histogram")
		base, labels := splitLabeled(h.name)
		cum := int64(0)
		for i, ub := range h.bounds {
			cum += h.buckets[i].Load()
			if _, err := fmt.Fprintf(w, "%s%s %d%s\n", base+"_bucket", mergeLE(labels, ub), cum, h.exemplarSuffix(i, exemplars)); err != nil {
				return err
			}
		}
		cum += h.buckets[len(h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s%s %d%s\n", base+"_bucket", mergeLE(labels, math.Inf(1)), cum, h.exemplarSuffix(len(h.bounds), exemplars)); err != nil {
			return err
		}
		fmt.Fprintf(w, "%s%s %g\n", base+"_sum", labels, h.Sum())
		fmt.Fprintf(w, "%s%s %d\n", base+"_count", labels, h.Count())
	}
	return nil
}

// exemplarSuffix renders bucket i's OpenMetrics exemplar annotation, or ""
// when exemplars are disabled or the bucket has none.
func (h *Histogram) exemplarSuffix(i int, enabled bool) string {
	if !enabled {
		return ""
	}
	ex := h.exemplars[i].Load()
	if ex == nil {
		return ""
	}
	return formatExemplarSuffix(ex.TraceID, ex.Value.Seconds(), ex.Time)
}

// formatExemplarSuffix renders one OpenMetrics exemplar annotation shared
// by the duration and float histogram expositions.
func formatExemplarSuffix(traceID string, value float64, at time.Time) string {
	return fmt.Sprintf(" # {trace_id=%q} %g %.3f", traceID, value, float64(at.UnixMilli())/1000)
}

// mergeLE inserts the le="..." bucket label into an existing label block
// ("" or "{k=\"v\"}").
func mergeLE(labels string, ub float64) string {
	le := fmt.Sprintf("le=%q", formatLE(ub))
	if labels == "" {
		return "{" + le + "}"
	}
	return labels[:len(labels)-1] + "," + le + "}"
}

func formatLE(ub float64) string {
	if math.IsInf(ub, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", ub)
}
