// Package cost implements a PostgreSQL-style cost model and cardinality
// estimator for the optimizer.
//
// The paper runs every experiment inside PostgreSQL 8.1.2's optimizer; the
// reported metrics (plan cost, plans costed, memory, time) never require
// executing a query. This package reproduces the structure of that costing:
// sequential and index scans, explicit sorts, nested-loop / indexed
// nested-loop / hash / merge joins, work_mem-driven spill penalties, and the
// textbook equi-join selectivity 1/max(ndv) that PostgreSQL's eqjoinsel uses.
// Cost units follow PostgreSQL's convention: 1.0 = one sequential page fetch.
package cost

import (
	"math"

	"sdpopt/internal/bits"
	"sdpopt/internal/catalog"
	"sdpopt/internal/plan"
	"sdpopt/internal/query"
)

// Params are the cost-model constants. Defaults mirror PostgreSQL 8.1.
type Params struct {
	SeqPageCost       float64 // cost of a sequential page fetch
	RandomPageCost    float64 // cost of a random page fetch
	CPUTupleCost      float64 // cost of processing one tuple
	CPUIndexTupleCost float64 // cost of processing one index entry
	CPUOperatorCost   float64 // cost of one operator/hash/comparison
	WorkMemBytes      float64 // memory available per sort/hash node
	IndexEntryWidth   float64 // bytes per b-tree entry, for index size
}

// DefaultParams returns PostgreSQL 8.1's default cost constants
// (work_mem = 1 MB in that release).
func DefaultParams() Params {
	return Params{
		SeqPageCost:       1.0,
		RandomPageCost:    4.0,
		CPUTupleCost:      0.01,
		CPUIndexTupleCost: 0.005,
		CPUOperatorCost:   0.0025,
		WorkMemBytes:      1 << 20,
		IndexEntryWidth:   16,
	}
}

// Model estimates cardinalities and costs for one query. It also counts
// every candidate plan it costs — the "number of plans costed" calibration
// the paper reports in its overhead tables.
type Model struct {
	Q      *query.Query
	Params Params

	// est supplies every cardinality estimate (see Estimator). The arrays
	// below snapshot its per-relation and per-predicate answers so the
	// enumeration hot path reads flat slices, not interface calls;
	// SetEstimator re-derives them.
	est Estimator

	predSel  []float64 // selectivity per predicate index
	relRows  []float64 // post-filter output cardinality per relation
	relWidth []int     // tuple width per query-local relation

	// rowsMemo and widthMemo cache SetRows and Width per relation set. Both
	// are pure functions of the set (SetRows is canonical by design), so
	// memoization cannot change any estimate — it only removes the repeated
	// per-member recomputation from the enumeration hot path, where Width
	// runs several times per costed candidate. Lazily allocated; Fork drops
	// them so each parallel worker builds its own (sharing would race).
	rowsMemo  map[bits.Set]float64
	widthMemo map[bits.Set]int

	// PlansCosted counts candidate plans constructed and costed.
	PlansCosted int64
}

// NewModel builds a cost model for q under the default catalog estimator,
// precomputing per-predicate selectivities and per-relation statistics.
func NewModel(q *query.Query, params Params) *Model {
	return NewModelEst(q, params, nil)
}

// NewModelEst builds a cost model for q that consumes its cardinality
// estimates from est. A nil est selects the default CatalogEstimator
// (identical to NewModel).
func NewModelEst(q *query.Query, params Params, est Estimator) *Model {
	if est == nil {
		est = NewCatalogEstimator(q)
	}
	m := &Model{Q: q, Params: params, est: est}
	m.relWidth = make([]int, q.NumRelations())
	for i := 0; i < q.NumRelations(); i++ {
		m.relWidth[i] = q.Relation(i).RowWidth()
	}
	m.derive()
	return m
}

// derive snapshots the estimator's per-relation and per-predicate answers
// into the hot-path arrays and drops the estimator-dependent SetRows memo.
// (widthMemo survives estimator swaps: tuple widths are physical schema
// facts, not estimates.)
func (m *Model) derive() {
	q := m.Q
	m.relRows = make([]float64, q.NumRelations())
	for i := 0; i < q.NumRelations(); i++ {
		m.relRows[i] = m.est.RelRows(i)
	}
	m.predSel = make([]float64, len(q.Preds))
	for i := range q.Preds {
		m.predSel[i] = m.est.PredSel(i)
	}
	m.rowsMemo = nil
}

// Estimator returns the model's active estimator.
func (m *Model) Estimator() Estimator { return m.est }

// SetEstimator swaps the model's estimator and re-derives every memoized
// estimate (relation rows, predicate selectivities, the SetRows memo) from
// it. A nil est restores the default CatalogEstimator. Not safe to call
// concurrently with costing; swap before optimizing or Fork a fresh model.
func (m *Model) SetEstimator(est Estimator) {
	if est == nil {
		est = NewCatalogEstimator(m.Q)
	}
	m.est = est
	m.derive()
}

// Fork returns a copy of the model for one parallel enumeration worker: the
// precomputed per-query statistics and the estimator are shared (both are
// read-only after NewModelEst/SetEstimator — Estimator implementations are
// required to be concurrency-safe pure functions, so sharing is race-free),
// while PlansCosted restarts at zero so workers count without
// synchronizing. The parallel engine folds the forks' counts back into the
// parent at each level barrier. Estimator-dependent memoized state (the
// SetRows memo) is dropped, never shared, so a worker can never observe a
// memo populated under a different estimator.
func (m *Model) Fork() *Model {
	cp := *m
	cp.PlansCosted = 0
	// Memo maps are per-fork: a struct copy would share the parent's maps
	// across workers and race. Dropped here, rebuilt lazily on first use.
	cp.rowsMemo = nil
	cp.widthMemo = nil
	return &cp
}

// FilterSel returns the active estimator's selectivity for local range
// filter f.
func (m *Model) FilterSel(f query.Filter) float64 { return m.est.FilterSel(f) }

// columnNDV is the active estimator's effective distinct count of
// (rel, col).
func (m *Model) columnNDV(rel, col int) float64 { return m.est.ColumnNDV(rel, col) }

// PredSel returns the estimated selectivity of predicate pi.
func (m *Model) PredSel(pi int) float64 { return m.predSel[pi] }

// BaseRows returns the cardinality of query-local relation i.
func (m *Model) BaseRows(i int) float64 { return m.relRows[i] }

// Width returns the output tuple width in bytes of a JCR covering set s
// (these workloads project all columns, so widths add). Memoized per set.
func (m *Model) Width(s bits.Set) int {
	if w, ok := m.widthMemo[s]; ok {
		return w
	}
	w := 0
	for it := s.Iter(); ; {
		i, ok := it.Next()
		if !ok {
			break
		}
		w += m.relWidth[i]
	}
	if m.widthMemo == nil {
		m.widthMemo = make(map[bits.Set]int, 256)
	}
	m.widthMemo[s] = w
	return w
}

// JoinRows returns the cardinality of joining two disjoint JCRs with the
// given estimated row counts, applying every join predicate that spans
// them. Because the predicate set within a relation set is fixed, the
// result is independent of join order — all plans of a JCR share one
// cardinality, which is what makes the paper's per-JCR feature vector
// well defined.
func (m *Model) JoinRows(a, b bits.Set, rowsA, rowsB float64) float64 {
	rows := rowsA * rowsB
	for _, pi := range m.Q.PredsBetween(a, b) {
		rows *= m.predSel[pi]
	}
	if rows < 1 {
		return 1
	}
	return rows
}

// SetRows returns the cardinality of the JCR covering s: the product of
// base cardinalities times the selectivity of every predicate inside s.
//
// This is the canonical cardinality — every memo class derives its Rows
// from here, never incrementally from a particular join split, so all
// optimizers see identical cardinalities for identical relation sets
// regardless of enumeration order. (An incremental product would apply the
// ≥1-row floor at order-dependent points and let a pruned search "see"
// different statistics than an exhaustive one.) The product is accumulated
// in log space: a 45-relation JCR's raw row product can overflow float64.
// SetRows results are memoized per set: the function is pure, so the cache
// cannot perturb any estimate, and repeated lookups (IDP restarts, parallel
// workers racing to stage the same class) skip the log-space recomputation.
func (m *Model) SetRows(s bits.Set) float64 {
	if r, ok := m.rowsMemo[s]; ok {
		return r
	}
	logRows := 0.0
	for it := s.Iter(); ; {
		i, ok := it.Next()
		if !ok {
			break
		}
		logRows += math.Log(m.relRows[i])
	}
	for _, pi := range m.Q.PredsWithin(s) {
		logRows += math.Log(m.predSel[pi])
	}
	rows := math.Exp(logRows)
	if rows < 1 {
		rows = 1
	}
	if m.rowsMemo == nil {
		m.rowsMemo = make(map[bits.Set]float64, 256)
	}
	m.rowsMemo[s] = rows
	return rows
}

// Selectivity returns the paper's JCR selectivity feature: output rows
// divided by the product of the base relation cardinalities, computed in
// log space to avoid overflow on wide JCRs.
func (m *Model) Selectivity(s bits.Set, rows float64) float64 {
	logProd := 0.0
	s.Each(func(i int) { logProd += math.Log(m.relRows[i]) })
	return math.Exp(math.Log(rows) - logProd)
}

func (m *Model) pages(rows float64, width int) float64 {
	p := math.Ceil(rows * float64(width) / catalog.PageSize)
	if p < 1 {
		return 1
	}
	return p
}

// AccessPaths returns the candidate scans of base relation i: a sequential
// scan, plus an index scan when the relation's indexed column is a join
// column (the index order is then an interesting order worth keeping) or
// carries a range filter (the index prunes the scan to the matching
// range — classic access-path selection).
func (m *Model) AccessPaths(i int) []*plan.Plan {
	rel := m.Q.Relation(i)
	paths := []*plan.Plan{m.seqScan(i)}
	ec := m.Q.EqClass(i, rel.IndexCol)
	if ec >= 0 || m.indexedFilterSel(i) < 1 {
		paths = append(paths, m.indexScan(i, ec))
	}
	return paths
}

// indexedFilterSel is the combined selectivity of filters on relation i's
// indexed column — the fraction of the index a range scan must visit.
func (m *Model) indexedFilterSel(i int) float64 {
	rel := m.Q.Relation(i)
	s := 1.0
	for _, f := range m.Q.FiltersOn(i) {
		if f.Col == rel.IndexCol {
			s *= m.FilterSel(f)
		}
	}
	return s
}

func (m *Model) seqScan(i int) *plan.Plan {
	rel := m.Q.Relation(i)
	nFilters := len(m.Q.FiltersOn(i))
	c := rel.Pages()*m.Params.SeqPageCost +
		rel.Rows*(m.Params.CPUTupleCost+float64(nFilters)*m.Params.CPUOperatorCost)
	m.PlansCosted++
	return &plan.Plan{
		Op: plan.SeqScan, Rels: bits.Single(i), Rel: i,
		Cost: c, Rows: m.relRows[i], Order: plan.NoOrder,
	}
}

// indexScan costs a scan of relation i in index order, narrowed to the
// range matching any filters on the indexed column. Heap access
// interpolates between sequential and random fetches by the index
// correlation, following PostgreSQL's cost_index.
func (m *Model) indexScan(i, orderClass int) *plan.Plan {
	rel := m.Q.Relation(i)
	frac := m.indexedFilterSel(i)
	scanned := math.Max(1, rel.Rows*frac)
	idxPages := m.pages(scanned, int(m.Params.IndexEntryWidth))
	corr := rel.IndexCorr * rel.IndexCorr // PG interpolates on correlation²
	minIO := rel.Pages() * frac * m.Params.SeqPageCost
	// Fully uncorrelated: every fetched tuple is potentially a fresh heap
	// page visit, as in PostgreSQL's max_IO_cost for an unclustered index.
	maxIO := scanned * m.Params.RandomPageCost
	heap := corr*minIO + (1-corr)*maxIO
	nOther := len(m.Q.FiltersOn(i))
	c := idxPages*m.Params.SeqPageCost +
		scanned*(m.Params.CPUIndexTupleCost+m.Params.CPUTupleCost+float64(nOther)*m.Params.CPUOperatorCost) +
		heap
	m.PlansCosted++
	return &plan.Plan{
		Op: plan.IndexScan, Rels: bits.Single(i), Rel: i,
		Cost: c, Rows: m.relRows[i], Order: orderClass,
	}
}

// SortPlan wraps p in an explicit sort to the given order class, with an
// n·log n comparison cost and an external-merge penalty when the input
// exceeds work_mem.
func (m *Model) SortPlan(p *plan.Plan, orderClass int) *plan.Plan {
	m.PlansCosted++
	return &plan.Plan{
		Op: plan.Sort, Rels: p.Rels, Left: p,
		Cost: p.Cost + m.sortCost(p.Rows, m.Width(p.Rels)),
		Rows: p.Rows, Order: orderClass,
	}
}

func (m *Model) sortCost(rows float64, width int) float64 {
	if rows < 2 {
		return m.Params.CPUOperatorCost
	}
	cmp := 2 * rows * math.Log2(rows) * m.Params.CPUOperatorCost
	bytes := rows * float64(width)
	if bytes <= m.Params.WorkMemBytes {
		return cmp
	}
	// External merge sort: read+write each page once per merge pass.
	pages := m.pages(rows, width)
	passes := math.Ceil(math.Log(bytes/m.Params.WorkMemBytes) / math.Log(16))
	if passes < 1 {
		passes = 1
	}
	return cmp + 2*pages*passes*m.Params.SeqPageCost
}

// JoinInputs identifies one candidate join: two disjoint subplans plus the
// predicates connecting them and the (shared) output cardinality.
type JoinInputs struct {
	Outer, Inner *plan.Plan
	// Preds indexes the query predicates spanning the two sides.
	Preds []int
	// Rows is the output cardinality of the joined JCR.
	Rows float64
}

// JoinPlans returns every candidate physical join of the inputs in this
// orientation: nested loop, indexed nested loop when the inner is a bare
// relation scan with its index on a spanning join column, hash join with
// the inner as build side, and one merge join per distinct spanning
// equivalence class. Callers enumerate both orientations.
func (m *Model) JoinPlans(in JoinInputs) []*plan.Plan {
	return m.AppendJoinPlans(make([]*plan.Plan, 0, 4), in)
}

// AppendJoinPlans is JoinPlans appending into a caller-owned slice, in the
// same candidate order. The enumeration hot path passes a reused scratch
// (dst[:0], consumed before the next call) so variant generation allocates
// only the plans themselves.
func (m *Model) AppendJoinPlans(dst []*plan.Plan, in JoinInputs) []*plan.Plan {
	dst = append(dst, m.nestLoop(in))
	if p := m.indexNestLoop(in); p != nil {
		dst = append(dst, p)
	}
	dst = append(dst, m.hashJoin(in))
	for k, pi := range in.Preds {
		ec := m.Q.PredEqClass(pi)
		if ec < 0 {
			continue
		}
		// One merge join per distinct class, first occurrence wins. The
		// spanning-predicate list is tiny, so a rescan of the prefix beats
		// a per-call seen-map allocation.
		dup := false
		for _, pj := range in.Preds[:k] {
			if m.Q.PredEqClass(pj) == ec {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		dst = append(dst, m.mergeJoin(in, ec))
	}
	return dst
}

// nestLoop costs a plain nested loop with the inner side materialized once
// and rescanned per outer row.
func (m *Model) nestLoop(in JoinInputs) *plan.Plan {
	o, i := in.Outer, in.Inner
	mat := i.Rows * 2 * m.Params.CPUOperatorCost // write to tuplestore
	rescan := i.Rows*m.Params.CPUOperatorCost + m.rescanIO(i)
	c := o.Cost + i.Cost + mat + o.Rows*rescan + in.Rows*m.Params.CPUTupleCost
	m.PlansCosted++
	return &plan.Plan{
		Op: plan.NestLoop, Rels: o.Rels.Union(i.Rels), Left: o, Right: i,
		Cost: c, Rows: in.Rows, Order: plan.NoOrder,
	}
}

// rescanIO is the page cost of re-reading a materialized inner that spills
// out of work_mem.
func (m *Model) rescanIO(i *plan.Plan) float64 {
	bytes := i.Rows * float64(m.Width(i.Rels))
	if bytes <= m.Params.WorkMemBytes {
		return 0
	}
	return m.pages(i.Rows, m.Width(i.Rels)) * m.Params.SeqPageCost
}

// indexNestLoop costs a nested loop that probes the inner base relation's
// index once per outer row. It applies only when the inner subplan is a
// single-relation scan and that relation's indexed column belongs to the
// equivalence class of one of the spanning predicates — the plan shape that
// makes star joins on indexed spoke columns cheap.
func (m *Model) indexNestLoop(in JoinInputs) *plan.Plan {
	o, i := in.Outer, in.Inner
	if !i.Op.IsScan() {
		return nil
	}
	rel := m.Q.Relation(i.Rel)
	idxClass := m.Q.EqClass(i.Rel, rel.IndexCol)
	if idxClass < 0 {
		return nil
	}
	usable := false
	for _, pi := range in.Preds {
		if m.Q.PredEqClass(pi) == idxClass {
			usable = true
			break
		}
	}
	if !usable {
		return nil
	}
	// Matching inner rows per outer row; the remaining spanning predicates
	// filter after the index probe, so the probe fetches matchRows tuples.
	matchRows := math.Max(1, m.relRows[i.Rel]/m.columnNDV(i.Rel, rel.IndexCol))
	descend := math.Ceil(math.Log2(rel.Rows+1)) * m.Params.CPUOperatorCost
	corr := rel.IndexCorr * rel.IndexCorr
	perFetch := corr*m.Params.SeqPageCost*0.1 + (1-corr)*m.Params.RandomPageCost
	probe := descend + m.Params.RandomPageCost + // b-tree leaf page
		matchRows*(m.Params.CPUIndexTupleCost+m.Params.CPUTupleCost+perFetch)
	// The inner scan plan's own cost is not paid: the index replaces it.
	c := o.Cost + o.Rows*probe + in.Rows*m.Params.CPUTupleCost
	inner := m.indexScan(i.Rel, idxClass)
	m.PlansCosted++
	return &plan.Plan{
		Op: plan.IndexNestLoop, Rels: o.Rels.Union(i.Rels), Left: o, Right: inner,
		Cost: c, Rows: in.Rows,
		// Indexed nested loops preserve the outer ordering.
		Order: o.Order,
	}
}

// hashJoin costs a hash join building on the inner side, with batching IO
// when the build side exceeds work_mem (PostgreSQL's hybrid hash join).
func (m *Model) hashJoin(in JoinInputs) *plan.Plan {
	o, i := in.Outer, in.Inner
	c := o.Cost + i.Cost +
		i.Rows*(m.Params.CPUOperatorCost*1.5+m.Params.CPUTupleCost) + // build
		o.Rows*m.Params.CPUOperatorCost*1.5 + // probe
		in.Rows*m.Params.CPUTupleCost
	innerBytes := i.Rows * float64(m.Width(i.Rels))
	if innerBytes > m.Params.WorkMemBytes {
		// Both inputs are written out and re-read once per extra batch pass.
		io := m.pages(i.Rows, m.Width(i.Rels)) + m.pages(o.Rows, m.Width(o.Rels))
		c += 2 * io * m.Params.SeqPageCost
	}
	m.PlansCosted++
	return &plan.Plan{
		Op: plan.HashJoin, Rels: o.Rels.Union(i.Rels), Left: o, Right: i,
		Cost: c, Rows: in.Rows, Order: plan.NoOrder,
	}
}

// mergeJoin costs a merge join on equivalence class ec, inserting explicit
// sorts for inputs not already ordered on ec. Its output carries ec as an
// interesting order.
func (m *Model) mergeJoin(in JoinInputs, ec int) *plan.Plan {
	o, i := in.Outer, in.Inner
	if o.Order != ec {
		o = m.SortPlan(o, ec)
	}
	if i.Order != ec {
		i = m.SortPlan(i, ec)
	}
	c := o.Cost + i.Cost +
		(o.Rows+i.Rows)*m.Params.CPUOperatorCost +
		in.Rows*m.Params.CPUTupleCost
	m.PlansCosted++
	return &plan.Plan{
		Op: plan.MergeJoin, Rels: o.Rels.Union(i.Rels), Left: o, Right: i,
		Cost: c, Rows: in.Rows, Order: ec,
	}
}
