package query

import (
	"fmt"
	"strings"
)

// DOT renders the join graph in Graphviz format: one node per relation
// (hubs double-circled), one edge per user predicate (implied closure edges
// dashed), for the kind of figure the paper draws in Figures 1.1 and 2.1.
func (q *Query) DOT() string {
	var b strings.Builder
	b.WriteString("graph joingraph {\n  node [shape=circle];\n")
	hubs := q.HubRels()
	for i := range q.Rels {
		shape := ""
		if hubs.Has(i) {
			shape = " shape=doublecircle"
		}
		fmt.Fprintf(&b, "  t%d [label=\"%s\"%s];\n", i+1, q.Relation(i).Name, shape)
	}
	for _, p := range q.Preds {
		style := ""
		if p.Implied {
			style = " [style=dashed]"
		}
		fmt.Fprintf(&b, "  t%d -- t%d%s;\n", p.LeftRel+1, p.RightRel+1, style)
	}
	b.WriteString("}\n")
	return b.String()
}
