package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// RatioBuckets are the default upper bounds for ratio-valued float
// histograms — cost ratios ρ of a served plan against a shadow reference.
// The paper's quality thresholds (1.01 Ideal, 2 Good, 10 Acceptable) are
// exact bounds so the exposition's cumulative buckets reproduce the
// Ideal/Good/Acceptable/Bad split directly; the remaining bounds resolve
// the interesting 1–10 region.
var RatioBuckets = []float64{1, 1.01, 1.1, 1.25, 1.5, 2, 3, 5, 10, 30, 100}

// FloatHistogram is a fixed-bucket histogram over float64 values — the
// unitless sibling of Histogram (which is duration-only). Bounds are set at
// creation (see Registry.FloatHistogram) and immutable afterwards; the last
// bucket slot is the +Inf overflow. Like Histogram, each bucket retains its
// most recent exemplar so an extreme regret ratio links straight to the
// flight-recorder trace that produced it. All methods are nil-safe.
type FloatHistogram struct {
	name      string
	bounds    []float64 // sorted upper bounds
	buckets   []atomic.Int64
	exemplars []atomic.Pointer[FloatExemplar]
	count     atomic.Int64
	sumBits   atomic.Uint64 // math.Float64bits of the running sum
}

// FloatExemplar ties one float observation to the request trace that
// produced it.
type FloatExemplar struct {
	TraceID string
	Value   float64
	Time    time.Time
}

func newFloatHistogram(name string, bounds []float64) *FloatHistogram {
	if len(bounds) == 0 {
		bounds = RatioBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &FloatHistogram{
		name:      name,
		bounds:    b,
		buckets:   make([]atomic.Int64, len(b)+1),
		exemplars: make([]atomic.Pointer[FloatExemplar], len(b)+1),
	}
}

// floatBucketIndex returns the bucket slot for v (len(bounds) = overflow).
// NaN compares false against every bound and lands in the first bucket;
// callers are expected to filter NaN before observing.
func (h *FloatHistogram) floatBucketIndex(v float64) int {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	return i
}

// Observe records one value. No-op on a nil histogram.
func (h *FloatHistogram) Observe(v float64) { h.ObserveExemplar(v, "") }

// ObserveExemplar records one value and, when traceID is non-empty,
// replaces the landed bucket's exemplar with it.
func (h *FloatHistogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	i := h.floatBucketIndex(v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	if traceID != "" {
		h.exemplars[i].Store(&FloatExemplar{TraceID: traceID, Value: v, Time: time.Now()})
	}
}

// Count returns the number of observations (0 for nil).
func (h *FloatHistogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observed values (0 for nil).
func (h *FloatHistogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (q in [0, 1]) from the bucket counts by
// linear interpolation inside the landed bucket. With no observations it
// returns 0, never NaN — an empty rolling window must render as a harmless
// zero on debug pages, not poison a JSON document. Values in the overflow
// bucket report the largest finite bound. Nil-safe.
func (h *FloatHistogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Nearest-rank target (1-based), then walk cumulative counts.
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n > 0 && cum+n >= rank {
			if i >= len(h.bounds) {
				// Overflow bucket: the best bounded answer is the top bound.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			// Interpolate within the bucket; a single observation (or all
			// observations in one bucket) lands on a finite point inside it.
			frac := (float64(rank-cum) - 0.5) / float64(n)
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// SummarizeWindow reduces one rolling window of raw observations to the
// (p50, p95, max) triple the cardinality-feedback ledger reports. It is
// defensively NaN-safe for the degenerate windows real ledgers produce —
// empty (all zeros), single-observation (all three equal that value), and
// all-equal — and ignores NaN/Inf inputs entirely rather than letting one
// bad division poison a JSON rendering.
func SummarizeWindow(vals []float64) (p50, p95, max float64) {
	clean := make([]float64, 0, len(vals))
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		clean = append(clean, v)
	}
	if len(clean) == 0 {
		return 0, 0, 0
	}
	sort.Float64s(clean)
	// Nearest-rank quantiles: exact for 1-element and all-equal windows.
	pick := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(clean)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(clean) {
			i = len(clean) - 1
		}
		return clean[i]
	}
	return pick(0.5), pick(0.95), clean[len(clean)-1]
}

// Exemplars returns the histogram's current per-bucket exemplars in bucket
// order (empty buckets skipped). Nil-safe.
func (h *FloatHistogram) Exemplars() []FloatExemplar {
	if h == nil {
		return nil
	}
	var out []FloatExemplar
	for i := range h.exemplars {
		if ex := h.exemplars[i].Load(); ex != nil {
			out = append(out, *ex)
		}
	}
	return out
}

// exemplarSuffix renders bucket i's OpenMetrics exemplar annotation, or ""
// when exemplars are disabled or the bucket has none.
func (h *FloatHistogram) exemplarSuffix(i int, enabled bool) string {
	if !enabled {
		return ""
	}
	ex := h.exemplars[i].Load()
	if ex == nil {
		return ""
	}
	return formatExemplarSuffix(ex.TraceID, ex.Value, ex.Time)
}

// FloatHistogram resolves (creating on first use) the named float-valued
// histogram. bounds sets the upper bounds at creation (nil selects
// RatioBuckets); a later call for the same name returns the existing
// histogram and ignores bounds. Nil-safe.
func (r *Registry) FloatHistogram(name string, bounds []float64) *FloatHistogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.floatHists[name]
	if h == nil {
		h = newFloatHistogram(name, bounds)
		r.floatHists[name] = h
	}
	return h
}

// GaugeFunc registers a gauge whose value is computed at exposition time by
// fn — for values owned elsewhere (process uptime, a queue's current depth)
// that would otherwise need a polling goroutine. fn must be safe for
// concurrent use and fast: it runs on every scrape. Re-registering a name
// replaces its function. Nil-safe.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// FloatHistogram resolves a float histogram from the observer's registry
// (nil bounds selects RatioBuckets). Nil-safe.
func (o *Observer) FloatHistogram(name string, bounds []float64) *FloatHistogram {
	if o == nil {
		return nil
	}
	return o.Registry.FloatHistogram(name, bounds)
}
