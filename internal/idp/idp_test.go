package idp

import (
	"errors"
	"testing"

	"sdpopt/internal/bits"
	"sdpopt/internal/dp"
	"sdpopt/internal/memo"
	"sdpopt/internal/query"
	"sdpopt/internal/testutil"
)

func fixture(t *testing.T, n int, edges []query.Edge) *query.Query {
	t.Helper()
	return testutil.MustQuery(testutil.Catalog(n), n, edges, nil)
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions()
	if o.K != 7 || !o.Balanced || o.Eval != MinRows || o.BalloonFrac != 0.05 {
		t.Errorf("DefaultOptions = %+v", o)
	}
}

func TestEvalString(t *testing.T) {
	cases := map[Eval]string{MinRows: "MinRows", MinCost: "MinCost", MinSel: "MinSel", Eval(9): "Eval(9)"}
	for e, want := range cases {
		if got := e.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(e), got, want)
		}
	}
}

func TestBalancedBlock(t *testing.T) {
	cases := []struct {
		remaining, k, want int
	}{
		{5, 7, 5},   // fits in one iteration
		{7, 7, 7},   // exactly one iteration
		{15, 7, 6},  // ceil(14/6)=3 iterations, blocks of 1+ceil(14/3)=6
		{8, 7, 5},   // 2 iterations, 1+ceil(7/2)=5
		{23, 4, 4},  // many iterations capped at k
		{100, 2, 2}, // degenerate block
	}
	for _, c := range cases {
		if got := balancedBlock(c.remaining, c.k); got != c.want {
			t.Errorf("balancedBlock(%d, %d) = %d, want %d", c.remaining, c.k, got, c.want)
		}
		if got := balancedBlock(c.remaining, c.k); got > c.k && c.remaining > c.k {
			t.Errorf("balancedBlock(%d, %d) = %d exceeds k", c.remaining, c.k, got)
		}
	}
}

func TestRejectsBadK(t *testing.T) {
	q := fixture(t, 3, query.ChainEdges(3))
	for _, k := range []int{0, 1, -3} {
		if _, _, err := Optimize(q, Options{K: k}); err == nil {
			t.Errorf("K=%d accepted", k)
		}
	}
}

func TestMatchesDPWhenQueryFits(t *testing.T) {
	// With n ≤ K, IDP is exactly DP.
	q := fixture(t, 5, query.StarEdges(5))
	want, _, err := dp.Optimize(q, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Optimize(q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost != want.Cost {
		t.Errorf("IDP cost %g != DP cost %g", got.Cost, want.Cost)
	}
}

func TestNeverBeatsDP(t *testing.T) {
	topologies := []struct {
		name  string
		n     int
		edges []query.Edge
	}{
		{"chain-10", 10, query.ChainEdges(10)},
		{"star-9", 9, query.StarEdges(9)},
		{"star-chain-10", 10, query.StarChainEdges(10, 6)},
		{"cycle-8", 8, query.CycleEdges(8)},
	}
	for _, tc := range topologies {
		q := fixture(t, tc.n, tc.edges)
		optimal, _, err := dp.Optimize(q, dp.Options{})
		if err != nil {
			t.Fatalf("%s DP: %v", tc.name, err)
		}
		for _, k := range []int{4, 7} {
			opts := DefaultOptions()
			opts.K = k
			p, stats, err := Optimize(q, opts)
			if err != nil {
				t.Fatalf("%s IDP(%d): %v", tc.name, k, err)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("%s IDP(%d) invalid plan: %v", tc.name, k, err)
			}
			if p.Rels != bits.Full(tc.n) {
				t.Fatalf("%s IDP(%d) covers %v", tc.name, k, p.Rels)
			}
			if p.Cost < optimal.Cost*(1-1e-9) {
				t.Errorf("%s IDP(%d) cost %g beats DP %g", tc.name, k, p.Cost, optimal.Cost)
			}
			if stats.PlansCosted <= 0 || stats.Memo.PeakSimBytes <= 0 {
				t.Errorf("%s IDP(%d) stats = %+v", tc.name, k, stats)
			}
		}
	}
}

func TestEvalVariantsProduceValidPlans(t *testing.T) {
	q := fixture(t, 10, query.StarChainEdges(10, 6))
	for _, eval := range []Eval{MinRows, MinCost, MinSel} {
		opts := Options{K: 4, Balanced: true, Eval: eval, BalloonFrac: 0.05}
		p, _, err := Optimize(q, opts)
		if err != nil {
			t.Fatalf("%v: %v", eval, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%v: invalid plan: %v", eval, err)
		}
	}
}

func TestNoBallooning(t *testing.T) {
	q := fixture(t, 10, query.StarEdges(10))
	opts := Options{K: 4, Balanced: false, Eval: MinRows, BalloonFrac: 0}
	p, _, err := Optimize(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid plan: %v", err)
	}
}

func TestUnbalancedBlocks(t *testing.T) {
	q := fixture(t, 11, query.ChainEdges(11))
	pBal, _, err := Optimize(q, Options{K: 4, Balanced: true, Eval: MinRows, BalloonFrac: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	pUnbal, _, err := Optimize(q, Options{K: 4, Balanced: false, Eval: MinRows, BalloonFrac: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for name, p := range map[string]interface{ Validate() error }{"balanced": pBal, "unbalanced": pUnbal} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestBudgetAbort(t *testing.T) {
	q := fixture(t, 14, query.StarEdges(14))
	_, stats, err := Optimize(q, Options{K: 12, Balanced: false, Eval: MinRows, Budget: 256 * 1024})
	if !errors.Is(err, memo.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if stats.Memo.PeakSimBytes == 0 {
		t.Error("stats lost on budget abort")
	}
}

func TestDeterministic(t *testing.T) {
	q := fixture(t, 12, query.StarChainEdges(12, 8))
	a, _, err := Optimize(q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Optimize(q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost {
		t.Errorf("IDP non-deterministic: %g vs %g", a.Cost, b.Cost)
	}
}

func TestIterationCountReflectedInStats(t *testing.T) {
	// A 15-relation chain with K=4 needs several iterations; classes
	// created must exceed a single 4-level DP's worth.
	q := fixture(t, 15, query.ChainEdges(15))
	_, stats, err := Optimize(q, Options{K: 4, Balanced: true, Eval: MinRows, BalloonFrac: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// One 4-level DP on a 15-chain creates 15+14+13+12 = 54 classes;
	// multiple iterations must exceed that.
	if stats.Memo.ClassesCreated <= 54 {
		t.Errorf("ClassesCreated = %d, want > 54 (multiple iterations)", stats.Memo.ClassesCreated)
	}
}
