// Package pardp is the level-synchronous parallel enumeration engine: the
// sequential DPsize search of internal/dp fanned out over a worker pool,
// with results bit-for-bit identical to the sequential engine.
//
// The DP lattice parallelizes along its levels (the MPDP observation): the
// classes a level-k join reads all live at levels below k, which are frozen
// once level k starts, so the (left, right) class-pair space of a level can
// be costed by any number of workers with no ordering constraints. Each
// level runs as one barrier round:
//
//  1. The pair space is split into tasks — one task per left class of each
//     (i, k−i) split — pulled from a shared atomic work queue.
//  2. Workers cost joins locally (on a cost.Model fork, so the plans-costed
//     counter needs no synchronization) and publish candidate classes and
//     plans into a mutex-striped staging table (memo.Sharded).
//  3. At the barrier the engine drains the staging table in canonical set
//     order into the real Memo, runs the level hook (SDP's skyline pruning,
//     which itself fans the per-partition skylines out when workers are
//     available — see internal/core), and folds the forks' counters back.
//
// Determinism is a hard invariant, not a goal: every retention decision in
// both the staging table and the Memo funnels through plan.Compare's total
// order, so the chosen plan, its cost, Stats.PlansCosted and the per-level
// class sets are identical to the sequential engine's on every query —
// property-tested across the workload corpus. The only sanctioned
// divergences are transient: Stats.Memo.PeakSimBytes may be lower (the
// staged merge never replays dominated paths the sequential engine briefly
// retained) and abort points under budget/cancellation land mid-level
// rather than mid-pair.
//
// Budget aborts propagate promptly: workers maintain a shared atomic
// estimate of the level's simulated memory and stop as soon as it crosses
// the budget, without waiting for the barrier. Cancellation (dp.ErrCanceled)
// is polled per task.
package pardp

import (
	"context"
	"errors"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sdpopt/internal/cost"
	"sdpopt/internal/dp"
	"sdpopt/internal/memo"
	"sdpopt/internal/obs"
	"sdpopt/internal/obs/span"
	"sdpopt/internal/plan"
	"sdpopt/internal/query"
)

// Options configures a parallel enumeration run. The zero value matches
// dp.Options' defaults with GOMAXPROCS workers.
type Options struct {
	// Workers is the enumeration worker count; 0 selects
	// runtime.GOMAXPROCS(0). 1 is legal (useful for differential tests) but
	// the sequential engine is cheaper at that width.
	Workers int
	// Budget is the simulated-memory feasibility limit in bytes
	// (0 = unlimited). Exceeding it aborts with memo.ErrBudget.
	Budget int64
	// Ctx, if non-nil, bounds the optimization; workers poll it per task and
	// abort with dp.ErrCanceled.
	Ctx context.Context
	// Hook, if non-nil, runs at every level barrier with the level's classes
	// in canonical set order — the same slice the sequential engine passes.
	Hook dp.LevelHook
	// Model supplies costing; if nil a fresh model with default parameters
	// is created. Workers run on forks of it (see cost.Model.Fork).
	Model *cost.Model
	// LeftDeepOnly restricts enumeration to System R's left-deep space.
	LeftDeepOnly bool
	// Obs receives metrics and trace events; nil falls back to the process
	// default observer.
	Obs *obs.Observer
	// Label names the technique in emitted telemetry ("DP" when empty).
	Label string
}

// Engine drives the parallel enumeration. It wraps a sequential dp.Engine —
// which owns the Memo, the leaf seeding and finalization — and replaces its
// per-level pair loop with the worker-pool rounds.
type Engine struct {
	inner    *dp.Engine
	q        *query.Query
	workers  int
	hook     dp.LevelHook
	ctx      context.Context
	leftDeep bool

	ob         *obs.Observer
	label      string
	cPlans     *obs.Counter
	cPairsCons *obs.Counter
	cPairsConn *obs.Counter
	cTasks     *obs.Counter
	cContended *obs.Counter
	mBarrier   *obs.Histogram
	// sp is the request span carried by opts.Ctx (nil when the caller is
	// not tracing). Each level attaches one child span with per-worker
	// children — built at the barrier from wstats, in fixed worker order,
	// so tracing observes the round without ordering it.
	sp     *span.Span
	wstats []workerStat
}

// workerStat is one worker's share of a barrier round, collected with plain
// per-worker writes during the round and read single-threaded after it.
type workerStat struct {
	start  time.Time
	finish time.Time
	tasks  int64
	costed int64
	pairs  int64
}

// workerState is one worker's private enumeration state for a barrier round:
// a cost-model fork (unsynchronized counters), an adjacency walker over the
// frozen memo levels, and the scratch slices the join loop reuses. Pair
// counters are folded into the inner engine at the barrier in fixed worker
// order; addition commutes, so the totals are schedule-independent.
type workerState struct {
	model     *cost.Model
	walker    memo.Walker
	predBuf   []int
	planBuf   []*plan.Plan
	pathBufA  []*plan.Plan
	pathBufB  []*plan.Plan
	pairsCons int64
	pairsConn int64
}

// NewEngine prepares an engine and seeds level 1 of the memo (invoking the
// hook on the sorted level-1 classes, exactly as the sequential engine
// does). Like dp.NewEngine it returns the engine alongside a budget error so
// callers can still read overhead stats.
func NewEngine(q *query.Query, leaves []dp.Leaf, opts Options) (*Engine, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	label := opts.Label
	if label == "" {
		label = "DP"
	}
	ob := obs.Or(opts.Obs)
	// The inner engine gets no hook: this engine invokes it at its own
	// barriers (below for level 1, in Run for the rest).
	inner, err := dp.NewEngine(q, leaves, dp.Options{
		Budget:       opts.Budget,
		Ctx:          opts.Ctx,
		Model:        opts.Model,
		LeftDeepOnly: opts.LeftDeepOnly,
		Obs:          opts.Obs,
		Label:        label,
	})
	var e *Engine
	if inner != nil {
		e = &Engine{
			inner:      inner,
			q:          q,
			workers:    workers,
			hook:       opts.Hook,
			ctx:        opts.Ctx,
			leftDeep:   opts.LeftDeepOnly,
			ob:         ob,
			label:      label,
			cPlans:     ob.Counter(obs.MPlansCosted),
			cPairsCons: ob.Counter(obs.MPairsConsidered),
			cPairsConn: ob.Counter(obs.MPairsConnected),
			cTasks:     ob.Counter(obs.MParTasks),
			cContended: ob.Counter(obs.MParShardContended),
			mBarrier:   ob.Histogram(obs.MParBarrierWait),
			sp:         span.FromContext(opts.Ctx),
		}
	}
	if err != nil {
		return e, err
	}
	if e.hook != nil {
		created := e.inner.Memo.Level(1)
		dp.SortClasses(created)
		if err := e.hook(1, e.inner.Memo, created); err != nil {
			return e, err
		}
	}
	return e, nil
}

// Memo exposes the underlying memo (for stats and plan extraction).
func (e *Engine) Memo() *memo.Memo { return e.inner.Memo }

// NumLeaves returns the size of the enumeration (its top level).
func (e *Engine) NumLeaves() int { return e.inner.NumLeaves() }

// Stats snapshots the overhead counters of this engine's run.
func (e *Engine) Stats() dp.Stats { return e.inner.Stats() }

// Finalize returns the completed plan for the full relation set (see
// dp.Engine.Finalize).
func (e *Engine) Finalize() (*plan.Plan, error) { return e.inner.Finalize() }

// Run executes enumeration levels 2..toLevel (capped at the leaf count),
// each as one worker-pool barrier round followed by the level hook.
func (e *Engine) Run(toLevel int) error {
	if toLevel > e.inner.NumLeaves() {
		toLevel = e.inner.NumLeaves()
	}
	for k := 2; k <= toLevel; k++ {
		if err := dp.CtxErr(e.ctx); err != nil {
			return err
		}
		lvStart := time.Now()
		prevCosted := e.inner.Model.PlansCosted
		prevStats := e.inner.Stats()
		created, err := e.runLevel(k)
		if err == nil && e.hook != nil {
			// created is already in canonical order (Drain sorts), matching
			// the sequential engine's sorted hook input.
			err = e.hook(k, e.inner.Memo, created)
		}
		e.observeLevel(k, lvStart, prevCosted, prevStats.PairsConsidered, prevStats.PairsConnected, len(created), err)
		if err != nil {
			return err
		}
	}
	return nil
}

// task is one unit of level work: every pair with a fixed left class of one
// (split, k−split) level split.
type task struct {
	split int
	ai    int
}

// runLevel runs one barrier round: fan the level's pair space out over the
// worker pool into a staging table, then drain it into the memo in
// canonical order.
func (e *Engine) runLevel(k int) ([]*memo.Class, error) {
	m := e.inner.Memo
	maxSplit := k / 2
	if e.leftDeep {
		maxSplit = 1 // only (1, k-1) splits: a leaf extends a composite
	}
	lefts := make([][]*memo.Class, maxSplit+1)
	var tasks []task
	for i := 1; i <= maxSplit; i++ {
		lefts[i] = m.Level(i)
		for ai := range lefts[i] {
			tasks = append(tasks, task{split: i, ai: ai})
		}
	}
	e.cTasks.Add(int64(len(tasks)))

	staged := memo.NewSharded()
	var next atomic.Int64
	var abort atomic.Bool
	// simEst tracks the level's would-be simulated memory so workers can
	// stop promptly when the budget is hopeless instead of costing the
	// whole level first. Offer deltas keep it exact: at the barrier it
	// equals start + what the drain will charge the memo.
	var simEst atomic.Int64
	simEst.Store(m.Stats.SimBytes)
	budget := m.Budget

	workers := e.workers
	errs := make([]error, workers)
	finished := make([]time.Time, workers)
	states := make([]*workerState, workers)
	wstats := make([]workerStat, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		states[w] = &workerState{model: e.inner.Model.Fork()}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := states[w]
			wstats[w].start = time.Now()
			defer func() { finished[w] = time.Now() }()
			for !abort.Load() {
				t := int(next.Add(1)) - 1
				if t >= len(tasks) {
					return
				}
				wstats[w].tasks++
				if err := dp.CtxErr(e.ctx); err != nil {
					errs[w] = err
					abort.Store(true)
					return
				}
				tk := tasks[t]
				i, j := tk.split, k-tk.split
				a := lefts[i][tk.ai]
				// Same-level split: each unordered pair once. The minSeq cut
				// is the dense scan's bs[tk.ai+1:] — Level preserves creation
				// order, so "after a in the alive slice" is "larger Seq".
				minSeq := 0
				if i == j {
					minSeq = a.Seq() + 1
				}
				// The memo's levels below k are frozen during the round, so
				// concurrent Gather calls read the index bitmaps race-free.
				// Every candidate is connected to and disjoint from a by
				// construction; the Disjoint re-check guards the index, it
				// is not a filter (see memo.Walker).
				for _, b := range ws.walker.Gather(m, a, j, minSeq) {
					ws.pairsCons++
					if !a.Set.Disjoint(b.Set) {
						continue
					}
					ws.pairsConn++
					if err := e.joinInto(staged, ws, a, b, &simEst, budget); err != nil {
						errs[w] = err
						abort.Store(true)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Fold the forks' counters back; worker order is fixed so the sum — and
	// therefore Stats.PlansCosted — is deterministic.
	var costed, pairsCons, pairsConn int64
	for w, ws := range states {
		costed += ws.model.PlansCosted
		pairsCons += ws.pairsCons
		pairsConn += ws.pairsConn
		wstats[w].costed = ws.model.PlansCosted
		wstats[w].pairs = ws.pairsCons
		wstats[w].finish = finished[w]
	}
	e.inner.Model.PlansCosted += costed
	e.inner.CountPairs(pairsCons, pairsConn)
	e.cContended.Add(staged.Contended())
	e.observeBarrier(finished)
	e.wstats = wstats

	var sawBudget bool
	for _, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, memo.ErrBudget):
			sawBudget = true
		default:
			// Cancellation: the memo keeps its pre-level state, exactly the
			// partial-state contract the sequential engine offers.
			return nil, err
		}
	}

	// Drain in canonical set order. NewClass + the staged winners reproduce
	// the sequential end-of-level class state and simulated-memory charge,
	// so the memo's own budget accounting fires just as it would have.
	var created []*memo.Class
	for _, st := range staged.Drain() {
		cls, err := m.NewClass(st.Set, k, st.Rows, st.Sel)
		if err != nil {
			return created, err
		}
		created = append(created, cls)
		for _, p := range st.Plans() {
			if _, err := m.AddPlan(cls, p); err != nil {
				return created, err
			}
		}
	}
	if sawBudget {
		// The estimate crossed the budget but late in-flight offers shrank
		// the staged total back under it — still a budget outcome, as the
		// sequential engine's own transient overshoot would have been.
		return created, memo.ErrBudget
	}
	return created, nil
}

// joinInto enumerates the physical joins of classes a and b into the
// staging table — the worker-side mirror of the sequential engine's
// joinClasses, costing on the worker's model fork.
func (e *Engine) joinInto(staged *memo.Sharded, ws *workerState, a, b *memo.Class, simEst *atomic.Int64, budget int64) error {
	model := ws.model
	set := a.Set.Union(b.Set)
	st, isNew := staged.Get(set, func() (float64, float64) {
		// Canonical per-set cardinality: identical from any worker (see
		// cost.SetRows), so whoever creates the class stages the same
		// features the sequential engine would.
		rows := model.SetRows(set)
		return rows, model.Selectivity(set, rows)
	})
	if isNew {
		if est := simEst.Add(memo.SimClassBytes); budget > 0 && est > budget {
			return memo.ErrBudget
		}
	}
	// Worker-private scratch, consumed before the next pair (the staging
	// table copies nothing from these slices beyond the plan pointers).
	ws.predBuf = e.q.AppendPredsBetween(ws.predBuf[:0], a.Set, b.Set)
	preds := ws.predBuf
	ws.pathBufA = a.AppendPaths(ws.pathBufA[:0])
	ws.pathBufB = b.AppendPaths(ws.pathBufB[:0])
	for _, pa := range ws.pathBufA {
		for _, pb := range ws.pathBufB {
			for _, in := range []cost.JoinInputs{
				{Outer: pa, Inner: pb, Preds: preds, Rows: st.Rows},
				{Outer: pb, Inner: pa, Preds: preds, Rows: st.Rows},
			} {
				ws.planBuf = model.AppendJoinPlans(ws.planBuf[:0], in)
				for _, p := range ws.planBuf {
					if d := st.Offer(p); d != 0 {
						if est := simEst.Add(int64(d) * memo.SimPathBytes); budget > 0 && est > budget {
							return memo.ErrBudget
						}
					}
				}
			}
		}
	}
	return nil
}

// observeBarrier records each worker's idle time at the level barrier (the
// gap to the last finisher) — the load-balance signal of the level
// partitioning.
func (e *Engine) observeBarrier(finished []time.Time) {
	if e.ob == nil {
		return
	}
	var last time.Time
	for _, t := range finished {
		if t.After(last) {
			last = t
		}
	}
	for _, t := range finished {
		if !t.IsZero() {
			e.mBarrier.Observe(last.Sub(t))
		}
	}
}

// observeLevel mirrors the sequential engine's level span — same metric,
// same event shape — plus the worker count, so sequential and parallel
// level profiles line up in sdptrace. When the run carries a request span,
// the level's child span additionally gets one "pardp.worker" child per
// worker (task count, plans costed, barrier wait), attached here — after
// the barrier, in fixed worker order — so the trace records the round
// without synchronizing it.
func (e *Engine) observeLevel(k int, started time.Time, prevCosted, prevCons, prevConn int64, created int, err error) {
	wstats := e.wstats
	e.wstats = nil
	if e.ob == nil && e.sp == nil {
		return
	}
	d := time.Since(started)
	costed := e.inner.Model.PlansCosted - prevCosted
	cur := e.inner.Stats()
	pairsCons := cur.PairsConsidered - prevCons
	pairsConn := cur.PairsConnected - prevConn
	if e.sp != nil {
		lv := e.sp.ChildAt("level", started, d)
		lv.SetAttr("tech", e.label)
		lv.SetAttr("level", k)
		lv.SetAttr("classes_created", created)
		lv.SetAttr("plans_costed", costed)
		lv.SetAttr("pairs_considered", pairsCons)
		lv.SetAttr("pairs_connected", pairsConn)
		lv.SetAttr("sim_bytes", e.inner.Memo.Stats.SimBytes)
		lv.SetAttr("workers", e.workers)
		if err != nil {
			lv.SetError(err.Error())
		}
		var last time.Time
		for _, ws := range wstats {
			if ws.finish.After(last) {
				last = ws.finish
			}
		}
		for w, ws := range wstats {
			if ws.start.IsZero() || ws.finish.IsZero() {
				continue
			}
			wsp := lv.ChildAt("pardp.worker", ws.start, ws.finish.Sub(ws.start))
			wsp.SetAttr("worker", w)
			wsp.SetAttr("tasks", ws.tasks)
			wsp.SetAttr("plans_costed", ws.costed)
			wsp.SetAttr("pairs_considered", ws.pairs)
			wsp.SetAttr("barrier_wait_ns", int64(last.Sub(ws.finish)))
		}
	}
	if e.ob == nil {
		return
	}
	e.ob.Histogram(obs.Label(obs.MLevelSeconds, "level", strconv.Itoa(k))).Observe(d)
	e.cPlans.Add(costed)
	e.cPairsCons.Add(pairsCons)
	e.cPairsConn.Add(pairsConn)
	if e.ob.Tracing() {
		attrs := map[string]any{
			"tech":             e.label,
			"level":            k,
			"dur_ns":           int64(d),
			"classes_created":  created,
			"classes_pruned":   created - len(e.inner.Memo.Level(k)),
			"plans_costed":     costed,
			"pairs_considered": pairsCons,
			"pairs_connected":  pairsConn,
			"classes_alive":    e.inner.Memo.Stats.ClassesAlive,
			"sim_bytes":        e.inner.Memo.Stats.SimBytes,
			"workers":          e.workers,
		}
		if err != nil {
			attrs["err"] = err.Error()
		}
		e.ob.Emit(obs.EvLevel, attrs)
	}
	if errors.Is(err, memo.ErrBudget) {
		e.ob.Counter(obs.MBudgetAborts).Add(1)
		if e.ob.Tracing() {
			e.ob.Emit(obs.EvBudgetAbort, map[string]any{
				"tech":      e.label,
				"level":     k,
				"sim_bytes": e.inner.Memo.Stats.SimBytes,
				"budget":    e.inner.Memo.Budget,
			})
		}
	}
}

// Optimize runs exhaustive DP over the query's base relations on the
// parallel engine — plan-identical to dp.Optimize, with wall time divided
// across Options.Workers.
func Optimize(q *query.Query, opts Options) (*plan.Plan, dp.Stats, error) {
	started := time.Now()
	label := opts.Label
	if label == "" {
		label = "DP"
		if opts.LeftDeepOnly {
			label = "DP/LD"
		}
		opts.Label = label
	}
	done := dp.ObserveRun(obs.Or(opts.Obs), label, q)
	p, st, err := func() (*plan.Plan, dp.Stats, error) {
		e, err := NewEngine(q, dp.BaseLeaves(q), opts)
		if err != nil {
			if e != nil {
				return nil, e.Stats(), err
			}
			return nil, dp.Stats{Elapsed: time.Since(started)}, err
		}
		if err := e.Run(q.NumRelations()); err != nil {
			return nil, e.Stats(), err
		}
		p, err := e.Finalize()
		return p, e.Stats(), err
	}()
	done(st, p, err)
	return p, st, err
}
