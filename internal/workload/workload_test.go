package workload

import (
	"fmt"

	"sdpopt/internal/catalog"
	"testing"

	"sdpopt/internal/bits"
	"sdpopt/internal/query"
)

func TestTopologyString(t *testing.T) {
	cases := map[Topology]string{
		Chain: "Chain", Star: "Star", Cycle: "Cycle", Clique: "Clique",
		StarChain: "Star-Chain", Snowflake: "Snowflake", Topology(9): "Topology(9)",
	}
	for topo, want := range cases {
		if got := topo.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(topo), got, want)
		}
	}
}

func TestStarInstancesShape(t *testing.T) {
	cat := PaperSchema()
	qs, err := Instances(Spec{Cat: cat, Topology: Star, NumRelations: 15, Seed: 42}, 20)
	if err != nil {
		t.Fatalf("Instances: %v", err)
	}
	if len(qs) != 20 {
		t.Fatalf("got %d instances", len(qs))
	}
	hub := cat.LargestRelation()
	for i, q := range qs {
		if q.NumRelations() != 15 {
			t.Fatalf("instance %d has %d relations", i, q.NumRelations())
		}
		// Hub is the largest relation, at query-local index 0.
		if q.Rels[0] != hub {
			t.Errorf("instance %d hub = catalog rel %d, want %d", i, q.Rels[0], hub)
		}
		if got, want := q.HubRels(), bits.Of(0); got != want {
			t.Errorf("instance %d hubs = %v, want %v", i, got, want)
		}
		// Spokes join the hub on their indexed columns.
		for _, p := range q.Preds {
			if p.Implied {
				t.Errorf("instance %d has an implied edge — topology perturbed", i)
			}
			spoke, spokeCol := p.RightRel, p.RightCol
			if idx := q.Relation(spoke).IndexCol; spokeCol != idx {
				t.Errorf("instance %d: spoke %d joins on column %d, want indexed %d", i, spoke, spokeCol, idx)
			}
		}
	}
}

func TestStarChainInstancesShape(t *testing.T) {
	cat := PaperSchema()
	qs, err := Instances(Spec{Cat: cat, Topology: StarChain, NumRelations: 15, Seed: 7}, 10)
	if err != nil {
		t.Fatalf("Instances: %v", err)
	}
	for i, q := range qs {
		// One hub (the star center) with 10 spokes; the chain adds no hubs.
		if got, want := q.HubRels(), bits.Of(0); got != want {
			t.Errorf("instance %d hubs = %v, want %v", i, got, want)
		}
		if got := q.Adjacent(0).Len(); got != 10 {
			t.Errorf("instance %d hub degree = %d, want 10", i, got)
		}
		if len(q.Preds) != 14 {
			t.Errorf("instance %d has %d predicates, want 14", i, len(q.Preds))
		}
	}
}

func TestChainCycleCliqueInstances(t *testing.T) {
	cat := PaperSchema()
	for _, tc := range []struct {
		topo  Topology
		n     int
		hubs  int
		edges int
	}{
		{Chain, 8, 0, 7},
		{Cycle, 8, 0, 8},
		{Clique, 6, 6, 15},
	} {
		q, err := One(Spec{Cat: cat, Topology: tc.topo, NumRelations: tc.n, Seed: 3})
		if err != nil {
			t.Fatalf("%v: %v", tc.topo, err)
		}
		if got := q.HubRels().Len(); got != tc.hubs {
			t.Errorf("%v: %d hubs, want %d", tc.topo, got, tc.hubs)
		}
		if got := len(q.Preds); got != tc.edges {
			t.Errorf("%v: %d preds, want %d", tc.topo, got, tc.edges)
		}
	}
}

func TestOrderedVariant(t *testing.T) {
	cat := PaperSchema()
	qs, err := Instances(Spec{Cat: cat, Topology: Star, NumRelations: 10, Ordered: true, Seed: 5}, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		if q.OrderBy == nil {
			t.Fatalf("instance %d not ordered", i)
		}
		// The order column must be a join column (that is the paper's
		// relevant case).
		if q.OrderEqClass() < 0 {
			t.Errorf("instance %d ordered on a non-join column", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cat := PaperSchema()
	spec := Spec{Cat: cat, Topology: StarChain, NumRelations: 12, Seed: 99}
	a, err := Instances(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Instances(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].SQL() != b[i].SQL() {
			t.Fatalf("instance %d differs across identical seeds", i)
		}
	}
	spec.Seed = 100
	c, err := Instances(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].SQL() != c[i].SQL() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestInstancesVary(t *testing.T) {
	cat := PaperSchema()
	qs, err := Instances(Spec{Cat: cat, Topology: Star, NumRelations: 15, Seed: 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[string]bool{}
	for _, q := range qs {
		distinct[q.SQL()] = true
	}
	if len(distinct) < 2 {
		t.Error("all sampled instances identical")
	}
}

func TestValidationErrors(t *testing.T) {
	cat := PaperSchema()
	cases := []struct {
		name string
		spec Spec
		n    int
	}{
		{"nil catalog", Spec{Topology: Star, NumRelations: 5}, 1},
		{"zero count", Spec{Cat: cat, Topology: Star, NumRelations: 5}, 0},
		{"too few rels", Spec{Cat: cat, Topology: Star, NumRelations: 1}, 1},
		{"too many rels", Spec{Cat: cat, Topology: Star, NumRelations: bits.MaxRelations + 1}, 1},
		{"bad topology", Spec{Cat: cat, Topology: Topology(42), NumRelations: 5}, 1},
	}
	for _, c := range cases {
		if _, err := Instances(c.spec, c.n); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestExtendedSchemaSupportsBigStars(t *testing.T) {
	cat := ExtendedSchema(50)
	q, err := One(Spec{Cat: cat, Topology: Star, NumRelations: 45, Seed: 13})
	if err != nil {
		t.Fatalf("45-relation star: %v", err)
	}
	if q.NumRelations() != 45 {
		t.Fatalf("got %d relations", q.NumRelations())
	}
	if got := q.Adjacent(0).Len(); got != 44 {
		t.Errorf("hub degree = %d, want 44", got)
	}
}

func TestSnowflakeInstancesShape(t *testing.T) {
	cat := PaperSchema()
	qs, err := Instances(Spec{Cat: cat, Topology: Snowflake, NumRelations: 12, Seed: 612}, 10)
	if err != nil {
		t.Fatalf("Instances: %v", err)
	}
	fact := cat.LargestRelation()
	for i, q := range qs {
		// The fact table is the schema's largest relation at local index 0,
		// joined to the two default dimension hubs of a 12-relation flake.
		if q.Rels[0] != fact {
			t.Errorf("instance %d fact = catalog rel %d, want %d", i, q.Rels[0], fact)
		}
		if got := q.Adjacent(0).Len(); got != query.DefaultSnowflakeDims(12) {
			t.Errorf("instance %d fact degree = %d, want %d", i, got, query.DefaultSnowflakeDims(12))
		}
		if len(q.Preds) != 11 {
			t.Errorf("instance %d has %d predicates, want 11", i, len(q.Preds))
		}
		for _, p := range q.Preds {
			if p.Implied {
				t.Errorf("instance %d has an implied edge — topology perturbed", i)
			}
		}
		// A snowflake is a two-level tree: the dimension hubs carry the
		// branching, so the runtime classifier sees a multi-hub tree.
		if got := q.Shape(); got != "tree" {
			t.Errorf("instance %d shape = %q, want tree", i, got)
		}
	}
	// Explicit dimension count overrides the default proportion.
	q, err := One(Spec{Cat: cat, Topology: Snowflake, NumRelations: 12, Dims: 4, Seed: 612})
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Adjacent(0).Len(); got != 4 {
		t.Errorf("fact degree = %d with Dims: 4", got)
	}
}

// TestSnowflakeAbove64Relations drives workload generation through the
// multi-word set representation: an 80-relation snowflake over an
// 80-relation extended schema uses every relation exactly once (no
// aliasing) and keeps the two-level tree shape.
func TestSnowflakeAbove64Relations(t *testing.T) {
	cat := ExtendedSchema(80)
	q, err := One(Spec{Cat: cat, Topology: Snowflake, NumRelations: 80, Seed: 80})
	if err != nil {
		t.Fatalf("80-relation snowflake: %v", err)
	}
	if q.NumRelations() != 80 {
		t.Fatalf("got %d relations", q.NumRelations())
	}
	if len(q.Preds) != 79 {
		t.Errorf("preds = %d, want 79", len(q.Preds))
	}
	seen := map[int]bool{}
	for _, r := range q.Rels {
		if seen[r] {
			t.Errorf("catalog relation %d aliased — schema pool should cover the query", r)
		}
		seen[r] = true
	}
	if got := q.Shape(); got != "tree" {
		t.Errorf("shape = %q, want tree", got)
	}
	q2, err := One(Spec{Cat: cat, Topology: Snowflake, NumRelations: 80, Seed: 80})
	if err != nil {
		t.Fatal(err)
	}
	if q.SQL() != q2.SQL() {
		t.Error("snowflake generation not deterministic")
	}
}

func TestExample9(t *testing.T) {
	cat := PaperSchema()
	q, err := Example9(cat)
	if err != nil {
		t.Fatalf("Example9: %v", err)
	}
	if got, want := q.HubRels(), bits.Of(0, 6); got != want {
		t.Errorf("hubs = %v, want %v (relations 1 and 7)", got, want)
	}
	if len(q.Preds) != len(query.Example9Edges()) {
		t.Errorf("preds = %d, want %d", len(q.Preds), len(query.Example9Edges()))
	}
	// Deterministic: two calls agree.
	q2, err := Example9(cat)
	if err != nil {
		t.Fatal(err)
	}
	if q.SQL() != q2.SQL() {
		t.Error("Example9 not deterministic")
	}
}

func TestSchemas(t *testing.T) {
	if got := PaperSchema().NumRelations(); got != 25 {
		t.Errorf("PaperSchema relations = %d", got)
	}
	skewed := SkewedSchema()
	any := false
	for i := range skewed.Rels {
		for j := range skewed.Rels[i].Cols {
			if skewed.Rels[i].Cols[j].Skew > 0 {
				any = true
			}
		}
	}
	if !any {
		t.Error("SkewedSchema has no skewed columns")
	}
}

func TestCustomTopology(t *testing.T) {
	cat := PaperSchema()
	spec := Spec{Cat: cat, Topology: Custom, NumRelations: 9, Edges: query.Example9Edges(), Seed: 4}
	qs, err := Instances(spec, 5)
	if err != nil {
		t.Fatalf("Instances: %v", err)
	}
	for i, q := range qs {
		if got, want := q.HubRels(), bits.Of(0, 6); got != want {
			t.Errorf("instance %d hubs = %v, want %v", i, got, want)
		}
	}
	// Relations vary across instances even though edges are fixed.
	if qs[0].SQL() == qs[1].SQL() && qs[1].SQL() == qs[2].SQL() {
		t.Error("custom instances do not vary")
	}
	// Custom without edges is rejected.
	if _, err := Instances(Spec{Cat: cat, Topology: Custom, NumRelations: 9, Seed: 4}, 1); err == nil {
		t.Error("Custom without Edges accepted")
	}
}

func TestFilterFraction(t *testing.T) {
	cat := PaperSchema()
	qs, err := Instances(Spec{Cat: cat, Topology: Star, NumRelations: 10,
		FilterFraction: 0.8, Seed: 12}, 10)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, q := range qs {
		total += len(q.Filters)
		for _, f := range q.Filters {
			ndv := int64(q.Relation(f.Rel).Cols[f.Col].NDV)
			if f.Bound < 1 || f.Bound >= ndv {
				t.Errorf("filter bound %d outside [1, %d)", f.Bound, ndv)
			}
		}
	}
	// ~0.8 · 10 relations · 10 instances = ~80 filters expected.
	if total < 40 || total > 100 {
		t.Errorf("total filters = %d, want around 80", total)
	}
	// Zero fraction produces none.
	q0, err := One(Spec{Cat: cat, Topology: Star, NumRelations: 10, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(q0.Filters) != 0 {
		t.Error("unexpected filters with zero FilterFraction")
	}
}

func TestEnumerate(t *testing.T) {
	cfg := catalog.DefaultConfig()
	cfg.NumRelations = 7
	cat := catalog.MustSynthetic(cfg)
	// Star-4 from a 7-relation schema: hub pinned, C(6,3) = 20 instances.
	qs, err := Enumerate(Spec{Cat: cat, Topology: Star, NumRelations: 4, Seed: 1}, 0)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	if len(qs) != 20 {
		t.Fatalf("enumerated %d instances, want C(6,3)=20", len(qs))
	}
	hub := cat.LargestRelation()
	seen := map[string]bool{}
	for _, q := range qs {
		if q.Rels[0] != hub {
			t.Fatalf("hub = %d, want %d", q.Rels[0], hub)
		}
		key := fmt.Sprint(q.Rels)
		if seen[key] {
			t.Fatalf("duplicate combination %v", q.Rels)
		}
		seen[key] = true
	}
	// Limit caps the walk.
	few, err := Enumerate(Spec{Cat: cat, Topology: Star, NumRelations: 4, Seed: 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(few) != 5 {
		t.Fatalf("limited enumeration = %d", len(few))
	}
	// Deterministic.
	again, err := Enumerate(Spec{Cat: cat, Topology: Star, NumRelations: 4, Seed: 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range few {
		if few[i].SQL() != again[i].SQL() {
			t.Fatal("enumeration not deterministic")
		}
	}
}

func TestEnumerateStarChain(t *testing.T) {
	cfg := catalog.DefaultConfig()
	cfg.NumRelations = 8
	cat := catalog.MustSynthetic(cfg)
	qs, err := Enumerate(Spec{Cat: cat, Topology: StarChain, NumRelations: 5, Seed: 2}, 10)
	if err != nil {
		t.Fatalf("Enumerate star-chain: %v", err)
	}
	for _, q := range qs {
		if got := q.HubRels().Len(); got != 1 {
			t.Fatalf("hubs = %d", got)
		}
	}
}

func TestEnumerateErrors(t *testing.T) {
	cat := PaperSchema()
	if _, err := Enumerate(Spec{Topology: Star, NumRelations: 4}, 0); err == nil {
		t.Error("nil catalog accepted")
	}
	if _, err := Enumerate(Spec{Cat: cat, Topology: Chain, NumRelations: 4}, 0); err == nil {
		t.Error("chain enumeration accepted")
	}
	if _, err := Enumerate(Spec{Cat: cat, Topology: Star, NumRelations: 99}, 0); err == nil {
		t.Error("oversized enumeration accepted")
	}
}
