package idp

import (
	"fmt"
	"math"
	"time"

	"sdpopt/internal/bits"
	"sdpopt/internal/ccp"
	"sdpopt/internal/cost"
	"sdpopt/internal/dp"
	"sdpopt/internal/memo"
	"sdpopt/internal/obs"
	"sdpopt/internal/plan"
	"sdpopt/internal/query"
)

// Optimize2 runs IDP2, the second family of Kossmann & Stocker's iterative
// dynamic programming: instead of bottom-up DP blocks (IDP1), IDP2 first
// builds a complete plan with a cheap greedy heuristic, then repeatedly
// selects a subtree spanning at most K base relations and re-optimizes
// those relations exhaustively with DP, splicing the DP-optimal subplan
// back in, until no subtree improves. IDP2 does more, cheaper iterations
// than IDP1 and was the scalability-oriented variant.
func Optimize2(q *query.Query, opts Options) (*plan.Plan, dp.Stats, error) {
	if opts.K < 2 {
		return nil, dp.Stats{}, fmt.Errorf("idp: block size K=%d must be at least 2", opts.K)
	}
	model := opts.Model
	if model == nil {
		model = cost.NewModel(q, cost.DefaultParams())
	}
	ob := obs.Or(opts.Obs)
	label := fmt.Sprintf("IDP2(%d)", opts.K)
	cIters := ob.Counter(obs.MIDPIterations)
	done := dp.ObserveRun(ob, label, q)
	p, st, err := optimize2(q, opts, model, ob, label, cIters)
	done(st, p, err)
	return p, st, err
}

func optimize2(q *query.Query, opts Options, model *cost.Model, ob *obs.Observer, label string, cIters *obs.Counter) (*plan.Plan, dp.Stats, error) {
	started := time.Now()
	costedAtStart := model.PlansCosted
	var agg dp.Stats

	// Phase 1: greedy initial plan — join the connected pair with minimum
	// result cardinality (GOO), using the cheapest operator each time.
	nodes := make([]*plan.Plan, 0, q.NumRelations())
	for i := 0; i < q.NumRelations(); i++ {
		paths := model.AccessPaths(i)
		best := paths[0]
		for _, p := range paths[1:] {
			if p.Cost < best.Cost {
				best = p
			}
		}
		nodes = append(nodes, best)
	}
	for len(nodes) > 1 {
		if err := dp.CtxErr(opts.Ctx); err != nil {
			return nil, finish(agg, model, costedAtStart, started), err
		}
		bi, bj := -1, -1
		bestRows := math.Inf(1)
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				if !q.Connected(nodes[i].Rels, nodes[j].Rels) {
					continue
				}
				rows := model.SetRows(nodes[i].Rels.Union(nodes[j].Rels))
				if rows < bestRows {
					bi, bj, bestRows = i, j, rows
				}
			}
		}
		if bi < 0 {
			return nil, finish(agg, model, costedAtStart, started), fmt.Errorf("idp: disconnected join graph")
		}
		joined := cheapestJoin(q, model, nodes[bi], nodes[bj], bestRows)
		nodes = append(nodes[:bj], nodes[bj+1:]...)
		nodes[bi] = joined
	}
	current := nodes[0]

	// Phase 2: iterative subtree re-optimization. Each pass enumerates the
	// maximal subtrees spanning ≤ K relations and re-plans the best
	// improvement via exhaustive DP over the subtree's leaves.
	improved := true
	for iter := 1; improved; iter++ {
		improved = false
		iterStart := time.Now()
		for _, sub := range subtreesUpTo(current, opts.K) {
			if err := dp.CtxErr(opts.Ctx); err != nil {
				return nil, finish(agg, model, costedAtStart, started), err
			}
			replanned, stats, err := replanSubtree(q, model, ob, current, sub, opts.Budget)
			accumulate(&agg, dp.Stats{Memo: stats})
			if err != nil {
				return nil, finish(agg, model, costedAtStart, started), err
			}
			if replanned.Cost < current.Cost*(1-1e-12) {
				current = replanned
				improved = true
				break // restart subtree enumeration on the new plan
			}
		}
		cIters.Add(1)
		if ob.Tracing() {
			ob.Emit(obs.EvIDPIteration, map[string]any{
				"tech":     label,
				"iter":     iter,
				"improved": improved,
				"dur_ns":   time.Since(iterStart).Nanoseconds(),
			})
		}
	}

	// Final ORDER BY handling mirrors the engine's Finalize.
	if q.OrderBy != nil {
		ec := q.OrderEqClass()
		if ec < 0 {
			current = model.SortPlan(current, 0)
		} else if current.Order != ec {
			current = model.SortPlan(current, ec)
		}
	}
	return current, finish(agg, model, costedAtStart, started), nil
}

// cheapestJoin builds the cheapest physical join of two subplans.
func cheapestJoin(q *query.Query, model *cost.Model, a, b *plan.Plan, rows float64) *plan.Plan {
	preds := q.PredsBetween(a.Rels, b.Rels)
	var best *plan.Plan
	for _, in := range []cost.JoinInputs{
		{Outer: a, Inner: b, Preds: preds, Rows: rows},
		{Outer: b, Inner: a, Preds: preds, Rows: rows},
	} {
		for _, p := range model.JoinPlans(in) {
			if best == nil || p.Cost < best.Cost {
				best = p
			}
		}
	}
	return best
}

// subtreesUpTo collects the join subtrees of p spanning at most k base
// relations, largest first so re-optimization prefers big wins.
func subtreesUpTo(p *plan.Plan, k int) []*plan.Plan {
	var out []*plan.Plan
	var walk func(*plan.Plan)
	walk = func(n *plan.Plan) {
		if n == nil || n.Op.IsScan() {
			return
		}
		if n.Op.IsJoin() && n.Rels.Len() <= k {
			out = append(out, n)
			return // children are strictly smaller; the parent suffices
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(p)
	return out
}

// replanSubtree re-optimizes the base relations under sub with exhaustive
// DP and splices the optimal subplan into a rebuilt tree.
func replanSubtree(q *query.Query, model *cost.Model, ob *obs.Observer, root, sub *plan.Plan, budget int64) (*plan.Plan, memo.Stats, error) {
	leaves := make([]dp.Leaf, 0, q.NumRelations())
	sub.Rels.Each(func(i int) { leaves = append(leaves, dp.Leaf{Set: bits.Single(i)}) })
	// DP over only the subtree's relations: treat them as the whole
	// problem by building a sub-engine on the same query but restricted
	// leaves. The engine requires full coverage, so run a raw DPsize here.
	best, stats, err := dpOverSubset(q, model, ob, sub.Rels, budget)
	if err != nil {
		return nil, stats, err
	}
	return rebuildWith(q, model, root, sub, best), stats, nil
}

// dpOverSubset runs exhaustive DP over just the relations in set, driving
// the DPccp enumerator over the induced subgraph: vertex i of the contracted
// graph is the i-th relation of set, adjacent wherever the full query joins
// the two relations. Every emitted pair is connected and disjoint with both
// sides' classes already complete, so the joins fold straight into the memo
// with no level loop and no filtering.
func dpOverSubset(q *query.Query, model *cost.Model, ob *obs.Observer, set bits.Set, budget int64) (*plan.Plan, memo.Stats, error) {
	m := memo.New(budget)
	m.Observe(ob)
	mk := func(s bits.Set, level int) (*memo.Class, error) {
		rows := model.SetRows(s)
		return m.NewClass(s, level, rows, model.Selectivity(s, rows))
	}
	rels := set.Slice()
	for _, r := range rels {
		c, err := mk(bits.Single(r), 1)
		if err != nil {
			return nil, m.Stats, err
		}
		for _, p := range model.AccessPaths(r) {
			if _, err := m.AddPlan(c, p); err != nil {
				return nil, m.Stats, err
			}
		}
	}
	adj := make([]bits.Set, len(rels))
	for i, r := range rels {
		nbrs := q.Neighbors(bits.Single(r))
		for j, r2 := range rels {
			if j != i && nbrs.Has(r2) {
				adj[i] = adj[i].Add(j)
			}
		}
	}
	toRels := func(s bits.Set) bits.Set {
		var out bits.Set
		s.Each(func(i int) { out = out.Add(rels[i]) })
		return out
	}
	err := ccp.Enumerate(adj, ccp.Options{}, func(s1, s2 bits.Set) error {
		a, b := m.Get(toRels(s1)), m.Get(toRels(s2))
		u := a.Set.Union(b.Set)
		cls := m.Get(u)
		if cls == nil {
			var err error
			cls, err = mk(u, s1.Len()+s2.Len())
			if err != nil {
				return err
			}
		}
		preds := q.PredsBetween(a.Set, b.Set)
		for _, pa := range a.Paths() {
			for _, pb := range b.Paths() {
				for _, in := range []cost.JoinInputs{
					{Outer: pa, Inner: pb, Preds: preds, Rows: cls.Rows},
					{Outer: pb, Inner: pa, Preds: preds, Rows: cls.Rows},
				} {
					for _, p := range model.JoinPlans(in) {
						if _, err := m.AddPlan(cls, p); err != nil {
							return err
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, m.Stats, err
	}
	cls := m.Get(set)
	if cls == nil || cls.Best == nil {
		return nil, m.Stats, fmt.Errorf("idp: subtree relations %v are not connected", set)
	}
	return cls.Best, m.Stats, nil
}

// rebuildWith returns root with the subtree sub replaced by repl,
// re-costing every ancestor join with the same operator choices refreshed
// (the cheapest operator for each ancestor is re-selected since its input
// changed).
func rebuildWith(q *query.Query, model *cost.Model, root, sub *plan.Plan, repl *plan.Plan) *plan.Plan {
	if root == sub {
		return repl
	}
	if root.Op.IsScan() {
		return root
	}
	if root.Op == plan.Sort {
		child := rebuildWith(q, model, root.Left, sub, repl)
		if child == root.Left {
			return root
		}
		return model.SortPlan(child, root.Order)
	}
	left := rebuildWith(q, model, root.Left, sub, repl)
	right := root.Right
	if left == root.Left {
		right = rebuildWith(q, model, root.Right, sub, repl)
		if right == root.Right {
			return root
		}
	}
	// For indexed nested loops the inner is a synthesized index scan that
	// never contains sub; only re-cost with the (possibly) new outer.
	rows := model.SetRows(left.Rels.Union(right.Rels))
	return cheapestJoin(q, model, left, right, rows)
}
