package parse

import (
	"strings"
	"testing"

	"sdpopt/internal/workload"
)

// FuzzSQL throws arbitrary byte strings at the parser. The invariants: the
// parser never panics; errors carry a "line:col" position; and any input it
// accepts yields a query whose SQL rendering re-parses to the same
// canonical fingerprint (parse∘render is idempotent on the accepted set).
func FuzzSQL(f *testing.F) {
	cat := workload.PaperSchema()
	seeds := []string{
		"SELECT * FROM R1",
		"SELECT * FROM R1 a, R2 b WHERE a.c1 = b.c1",
		"SELECT * FROM R1 a, R2 b, R3 c WHERE a.c1 = b.c1 AND b.c2 = c.c2 AND a.c3 < 100 ORDER BY a.c1;",
		"select * from r1 x, r1 y where x.c1 = y.c1 -- self join\n",
		"SELECT * FROM",
		"SELECT * FROM R1 a WHERE a.c1 = ",
		"SELECT * FROM NoSuchTable",
		"SELECT * FROM R1 a WHERE a.nope < 3",
		"SELECT * FROM R1 a, R2 b WHERE a.c1 = b.c1 AND a.c1 < 99999999999999999999",
		"SELECT * FROM R1 ?",
		"\n\n  SELECT\t* FROM R1 a,\nR2 b WHERE a.c1=b.c1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := SQL(cat, src)
		if err != nil {
			if msg := err.Error(); strings.Contains(msg, "offset") {
				t.Fatalf("error still reports byte offsets, want line:col: %q", msg)
			}
			return
		}
		rendered := q.SQL()
		q2, err := SQL(cat, rendered)
		if err != nil {
			t.Fatalf("rendered SQL does not re-parse: %v\ninput: %q\nrendered: %q", err, src, rendered)
		}
		if q.Fingerprint() != q2.Fingerprint() {
			t.Fatalf("round-trip changed the fingerprint\ninput: %q\nrendered: %q", src, rendered)
		}
	})
}
