// Starchain: the paper's motivating scenario. A Star-Chain-15 join graph —
// structurally similar to TPC-H queries 8 and 9, a fact table star-joined
// with ten dimensions plus a four-hop snowflake chain — is optimized with
// exhaustive DP, IDP and SDP over a batch of instances, reproducing the
// robustness comparison of Table 1.1 at example scale.
package main

import (
	"fmt"
	"log"
	"time"

	"sdpopt"
)

const instances = 8

func main() {
	cat := sdpopt.PaperSchema()
	qs, err := sdpopt.Instances(sdpopt.WorkloadSpec{
		Cat:          cat,
		Topology:     sdpopt.StarChain,
		NumRelations: 15,
		Seed:         42,
	}, instances)
	if err != nil {
		log.Fatal(err)
	}

	idpOpts := sdpopt.IDPDefaults() // IDP1-balanced-bestRow, k=7
	idpOpts.Budget = sdpopt.DefaultBudget
	sdpOpts := sdpopt.SDPOptions()
	sdpOpts.Budget = sdpopt.DefaultBudget

	var idpRatios, sdpRatios []float64
	var dpTime, idpTime, sdpTime time.Duration
	for i, q := range qs {
		optimal, dpStats, err := sdpopt.OptimizeDP(q, sdpopt.DPOptions{Budget: sdpopt.DefaultBudget})
		if err != nil {
			log.Fatalf("DP on instance %d: %v", i, err)
		}
		idpPlan, idpStats, err := sdpopt.OptimizeIDP(q, idpOpts)
		if err != nil {
			log.Fatalf("IDP on instance %d: %v", i, err)
		}
		sdpPlan, sdpStats, err := sdpopt.OptimizeSDP(q, sdpOpts)
		if err != nil {
			log.Fatalf("SDP on instance %d: %v", i, err)
		}
		idpRatios = append(idpRatios, idpPlan.Cost/optimal.Cost)
		sdpRatios = append(sdpRatios, sdpPlan.Cost/optimal.Cost)
		dpTime += dpStats.Elapsed
		idpTime += idpStats.Elapsed
		sdpTime += sdpStats.Elapsed
		fmt.Printf("instance %d: DP=%.0f  IDP=%.3fx  SDP=%.3fx\n",
			i+1, optimal.Cost, idpPlan.Cost/optimal.Cost, sdpPlan.Cost/optimal.Cost)
	}

	idpSum, err := sdpopt.Summarize(idpRatios)
	if err != nil {
		log.Fatal(err)
	}
	sdpSum, err := sdpopt.Summarize(sdpRatios)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("%-6s %-40s %12s\n", "Tech", "I/G/A/B  W  rho", "MeanTime")
	fmt.Printf("%-6s %-40s %12v\n", "DP", "reference (always ideal)", dpTime/instances)
	fmt.Printf("%-6s %-40s %12v\n", "IDP", idpSum.Row(), idpTime/instances)
	fmt.Printf("%-6s %-40s %12v\n", "SDP", sdpSum.Row(), sdpTime/instances)
	fmt.Println()
	fmt.Println("The paper's claim at this scale: SDP stays near rho=1 with a small")
	fmt.Println("worst case, at a fraction of DP's optimization effort.")
}
