// External test package: ce imports core, which imports pardp, so this
// file cannot live in package pardp without a cycle.
package pardp_test

import (
	"fmt"
	"math"
	"testing"

	"sdpopt/internal/ce"
	"sdpopt/internal/cost"
	"sdpopt/internal/dp"
	"sdpopt/internal/pardp"
	"sdpopt/internal/plan"
	"sdpopt/internal/workload"
)

// TestInjectedEstimatorParity checks that parallel enumeration under a
// non-default estimator is still bit-identical to the sequential engine.
// Workers run on Model.Fork, which drops memoized rows rather than copying
// them — this test (run under -race in CI) would catch a fork that leaked
// memo state derived from a different estimator, or an estimator whose
// answers aren't safe to read from several workers at once.
func TestInjectedEstimatorParity(t *testing.T) {
	cat := workload.PaperSchema()
	specs := []workload.Spec{
		{Cat: cat, Topology: workload.Chain, NumRelations: 12, Seed: 901},
		{Cat: cat, Topology: workload.Star, NumRelations: 10, Seed: 902},
		{Cat: cat, Topology: workload.StarChain, NumRelations: 12, Ordered: true, Seed: 903},
	}
	for si, spec := range specs {
		qs, err := workload.Instances(spec, 2)
		if err != nil {
			t.Fatalf("spec %d: Instances: %v", si, err)
		}
		for qi, q := range qs {
			for _, band := range []float64{1, 4} {
				inj, err := ce.NewInjector(q, nil, band, 31337, ce.ModeBoth)
				if err != nil {
					t.Fatalf("NewInjector: %v", err)
				}
				mSeq := cost.NewModelEst(q, cost.DefaultParams(), inj)
				pSeq, stSeq, err := dp.Optimize(q, dp.Options{Model: mSeq})
				if err != nil {
					t.Fatalf("spec %d q%d band %g: sequential: %v", si, qi, band, err)
				}
				for _, workers := range []int{2, 4} {
					mPar := cost.NewModelEst(q, cost.DefaultParams(), inj)
					pPar, stPar, err := pardp.Optimize(q, pardp.Options{Workers: workers, Model: mPar})
					if err != nil {
						t.Fatalf("spec %d q%d band %g w=%d: parallel: %v", si, qi, band, workers, err)
					}
					label := fmt.Sprintf("spec %d q%d band %g w=%d", si, qi, band, workers)
					if math.Float64bits(pSeq.Cost) != math.Float64bits(pPar.Cost) {
						t.Errorf("%s: cost %v (seq) != %v (par)", label, pSeq.Cost, pPar.Cost)
					}
					if plan.Compare(pSeq, pPar) != 0 {
						t.Errorf("%s: plan shape diverged", label)
					}
					if stSeq.PlansCosted != stPar.PlansCosted {
						t.Errorf("%s: PlansCosted %d (seq) != %d (par)", label, stSeq.PlansCosted, stPar.PlansCosted)
					}
					if stSeq.Memo.ClassesCreated != stPar.Memo.ClassesCreated {
						t.Errorf("%s: ClassesCreated %d (seq) != %d (par)", label, stSeq.Memo.ClassesCreated, stPar.Memo.ClassesCreated)
					}
					if stSeq.Memo.PathsRetained != stPar.Memo.PathsRetained {
						t.Errorf("%s: PathsRetained %d (seq) != %d (par)", label, stSeq.Memo.PathsRetained, stPar.Memo.PathsRetained)
					}
					if stSeq.Memo.SimBytes != stPar.Memo.SimBytes {
						t.Errorf("%s: SimBytes %d (seq) != %d (par)", label, stSeq.Memo.SimBytes, stPar.Memo.SimBytes)
					}
				}
			}
		}
	}
}
