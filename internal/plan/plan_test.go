package plan

import (
	"strings"
	"testing"

	"sdpopt/internal/bits"
)

func scan(rel int, cost, rows float64, order int) *Plan {
	return &Plan{Op: SeqScan, Rels: bits.Single(rel), Rel: rel, Cost: cost, Rows: rows, Order: order}
}

func idxScan(rel int, cost, rows float64, order int) *Plan {
	return &Plan{Op: IndexScan, Rels: bits.Single(rel), Rel: rel, Cost: cost, Rows: rows, Order: order}
}

func join(op Op, l, r *Plan, cost, rows float64, order int) *Plan {
	return &Plan{Op: op, Rels: l.Rels.Union(r.Rels), Left: l, Right: r, Cost: cost, Rows: rows, Order: order}
}

func names(i int) string { return []string{"R1", "R2", "R3", "R4"}[i] }

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		SeqScan:   "Seq Scan",
		IndexScan: "Index Scan",
		Sort:      "Sort",
		HashJoin:  "Hash Join",
		MergeJoin: "Merge Join",
		Op(99):    "Op(99)",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(op), got, want)
		}
	}
}

func TestOpPredicates(t *testing.T) {
	joins := []Op{NestLoop, IndexNestLoop, HashJoin, MergeJoin}
	for _, op := range joins {
		if !op.IsJoin() || op.IsScan() {
			t.Errorf("%v misclassified", op)
		}
	}
	for _, op := range []Op{SeqScan, IndexScan} {
		if op.IsJoin() || !op.IsScan() {
			t.Errorf("%v misclassified", op)
		}
	}
	if Sort.IsJoin() || Sort.IsScan() {
		t.Error("Sort misclassified")
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	l := scan(0, 10, 100, NoOrder)
	r := idxScan(1, 20, 50, 2)
	j := join(HashJoin, l, r, 60, 500, NoOrder)
	s := &Plan{Op: Sort, Rels: j.Rels, Left: j, Cost: 80, Rows: 500, Order: 2}
	top := join(MergeJoin, s, scan(2, 5, 10, NoOrder), 120, 100, 2)
	if err := top.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	l := scan(0, 10, 100, NoOrder)
	r := scan(1, 10, 100, NoOrder)
	cases := map[string]*Plan{
		"nil":                nil,
		"scan with child":    {Op: SeqScan, Rels: bits.Single(0), Rel: 0, Left: l},
		"scan wrong rels":    {Op: SeqScan, Rels: bits.Of(0, 1), Rel: 0},
		"scan rel mismatch":  {Op: SeqScan, Rels: bits.Single(1), Rel: 0},
		"sort no child":      {Op: Sort, Order: 1},
		"sort two children":  {Op: Sort, Left: l, Right: r, Rels: bits.Of(0, 1), Order: 1},
		"sort rel mismatch":  {Op: Sort, Left: l, Rels: bits.Of(0, 1), Rows: 100, Cost: 20, Order: 1},
		"sort without order": {Op: Sort, Left: l, Rels: l.Rels, Rows: 100, Cost: 20, Order: NoOrder},
		"sort changes rows":  {Op: Sort, Left: l, Rels: l.Rels, Rows: 7, Cost: 20, Order: 1},
		"sort cheaper":       {Op: Sort, Left: l, Rels: l.Rels, Rows: 100, Cost: 1, Order: 1},
		"join missing child": {Op: HashJoin, Rels: bits.Of(0, 1), Left: l},
		"join overlap": {Op: HashJoin, Rels: bits.Of(0), Left: l,
			Right: scan(0, 5, 5, NoOrder)},
		"join rels mismatch": {Op: HashJoin, Rels: bits.Of(0, 1, 2), Left: l, Right: r},
		"inl non-index inner": {Op: IndexNestLoop, Rels: bits.Of(0, 1), Left: l, Right: r,
			Rows: 1, Cost: 1},
		"negative cost": {Op: SeqScan, Rels: bits.Single(0), Rel: 0, Cost: -1},
		"negative rows": {Op: SeqScan, Rels: bits.Single(0), Rel: 0, Rows: -1},
		"unknown op":    {Op: Op(42)},
	}
	for name, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted malformed plan", name)
		}
	}
}

func TestNumJoins(t *testing.T) {
	l := scan(0, 1, 1, NoOrder)
	if got := l.NumJoins(); got != 0 {
		t.Errorf("scan NumJoins = %d", got)
	}
	j1 := join(HashJoin, scan(0, 1, 1, NoOrder), scan(1, 1, 1, NoOrder), 3, 1, NoOrder)
	j2 := join(NestLoop, j1, scan(2, 1, 1, NoOrder), 5, 1, NoOrder)
	if got := j2.NumJoins(); got != 2 {
		t.Errorf("NumJoins = %d, want 2", got)
	}
	var nilPlan *Plan
	if got := nilPlan.NumJoins(); got != 0 {
		t.Errorf("nil NumJoins = %d", got)
	}
}

func TestShape(t *testing.T) {
	j1 := join(HashJoin, scan(0, 1, 1, NoOrder), scan(2, 1, 1, NoOrder), 3, 1, NoOrder)
	s := &Plan{Op: Sort, Rels: j1.Rels, Left: j1, Cost: 5, Rows: 1, Order: 0}
	j2 := join(MergeJoin, s, scan(1, 1, 1, NoOrder), 8, 1, 0)
	if got, want := j2.Shape(names), "((R1 ⋈ R3) ⋈ R2)"; got != want {
		t.Errorf("Shape = %q, want %q", got, want)
	}
}

func TestExplain(t *testing.T) {
	j := join(IndexNestLoop, scan(0, 10, 100, NoOrder), idxScan(1, 2, 5, 3), 40, 200, NoOrder)
	out := j.Explain(names)
	for _, frag := range []string{
		"Nested Loop (indexed inner)",
		"-> Seq Scan on R1",
		"-> Index Scan on R2",
		"rows=200",
		"order=ec3",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("Explain missing %q:\n%s", frag, out)
		}
	}
	if strings.Count(out, "\n") != 3 {
		t.Errorf("Explain should have 3 lines:\n%s", out)
	}
}

func TestDOT(t *testing.T) {
	j := join(HashJoin, scan(0, 10, 100, NoOrder), idxScan(1, 2, 5, 3), 40, 200, NoOrder)
	dot := j.DOT(names)
	for _, frag := range []string{
		"digraph plan {",
		"Hash Join",
		"Seq Scan R1",
		"Index Scan R2",
		"n0 -> n1",
		"n0 -> n2",
	} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT missing %q:\n%s", frag, dot)
		}
	}
}

// TestRemap: scan relation indexes, relation bitsets, and order classes all
// translate through the maps; NoOrder survives; the original tree is
// untouched; and remapping through the inverse maps is the identity.
func TestRemap(t *testing.T) {
	p := join(HashJoin,
		join(MergeJoin, idxScan(0, 1, 10, 0), scan(2, 2, 20, NoOrder), 5, 30, 0),
		scan(1, 3, 15, 1),
		10, 50, NoOrder)
	relMap := []int{2, 0, 1} // old -> new
	orderMap := []int{1, 0}  // old class -> new class
	name := func(i int) string { return []string{"A", "B", "C"}[i] }

	got := p.Remap(relMap, orderMap)
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if s := got.Shape(name); s != "((C ⋈ B) ⋈ A)" {
		t.Fatalf("remapped shape %q, want ((C ⋈ B) ⋈ A)", s)
	}
	if got.Left.Left.Rel != 2 || got.Left.Left.Order != 1 {
		t.Fatalf("inner scan: rel %d order %d, want 2/1", got.Left.Left.Rel, got.Left.Left.Order)
	}
	if got.Left.Right.Order != NoOrder || got.Order != NoOrder {
		t.Fatal("NoOrder not preserved")
	}
	if got.Right.Rel != 0 || got.Right.Order != 0 {
		t.Fatalf("outer scan: rel %d order %d, want 0/0", got.Right.Rel, got.Right.Order)
	}
	if got.Rels != bits.Full(3) || got.Left.Rels != bits.Single(2).Add(1) {
		t.Fatalf("rels bitsets not remapped: %v / %v", got.Rels, got.Left.Rels)
	}
	if p.Left.Left.Rel != 0 || p.Shape(name) != "((A ⋈ C) ⋈ B)" {
		t.Fatal("Remap mutated its receiver")
	}
	back := got.Remap([]int{1, 2, 0}, orderMap) // inverses of relMap/orderMap
	if back.Shape(name) != p.Shape(name) || back.Left.Left.Order != 0 || back.Rels != p.Rels {
		t.Fatalf("inverse remap is not the identity: %s", back.Shape(name))
	}
}
