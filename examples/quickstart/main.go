// Quickstart: build the paper's schema, generate one star query, optimize
// it with SDP and print the chosen plan.
package main

import (
	"fmt"
	"log"

	"sdpopt"
)

func main() {
	// The paper's synthetic schema: 25 relations, geometric cardinalities
	// from 100 rows up, one indexed column per relation.
	cat := sdpopt.PaperSchema()

	// A 15-relation pure-star query: the largest relation at the hub (a
	// data-warehouse fact table), spokes joining on their indexed columns.
	qs, err := sdpopt.Instances(sdpopt.WorkloadSpec{
		Cat:          cat,
		Topology:     sdpopt.Star,
		NumRelations: 15,
		Seed:         7,
	}, 1)
	if err != nil {
		log.Fatal(err)
	}
	q := qs[0]
	fmt.Println("Optimizing:")
	fmt.Println(q.SQL())
	fmt.Println()

	// Skyline Dynamic Programming with the paper's defaults: root-hub
	// partitioning, disjunctive pairwise RC/CS/RS skyline, localized to hub
	// regions.
	opts := sdpopt.SDPOptions()
	opts.Budget = sdpopt.DefaultBudget
	plan, stats, err := sdpopt.OptimizeSDP(q, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("plan cost:     %.2f\n", plan.Cost)
	fmt.Printf("join order:    %s\n", sdpopt.PlanShape(q, plan))
	fmt.Printf("plans costed:  %d\n", stats.PlansCosted)
	fmt.Printf("simulated mem: %.2f MB\n", stats.Memo.PeakMB())
	fmt.Printf("wall time:     %v\n", stats.Elapsed)
	fmt.Println()
	fmt.Println(sdpopt.Explain(q, plan))
}
