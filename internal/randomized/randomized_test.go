package randomized

import (
	"testing"

	"sdpopt/internal/bits"
	"sdpopt/internal/dp"
	"sdpopt/internal/query"
	"sdpopt/internal/testutil"
)

func fixture(t *testing.T, n int, edges []query.Edge) *query.Query {
	t.Helper()
	return testutil.MustQuery(testutil.Catalog(n), n, edges, nil)
}

func TestAlgorithmString(t *testing.T) {
	if II.String() != "II" || SA.String() != "SA" {
		t.Error("algorithm names")
	}
}

func TestBothAlgorithmsProduceValidPlans(t *testing.T) {
	q := fixture(t, 10, query.StarChainEdges(10, 6))
	for _, alg := range []Algorithm{II, SA} {
		p, stats, err := Optimize(q, Options{Algorithm: alg, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%v: invalid plan: %v", alg, err)
		}
		if p.Rels != bits.Full(10) {
			t.Fatalf("%v: covers %v", alg, p.Rels)
		}
		if stats.PlansCosted <= 0 {
			t.Errorf("%v: no plans costed", alg)
		}
	}
}

func TestNeverBeatsDP(t *testing.T) {
	q := fixture(t, 9, query.StarEdges(9))
	optimal, _, err := dp.Optimize(q, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{II, SA} {
		for seed := int64(0); seed < 3; seed++ {
			p, _, err := Optimize(q, Options{Algorithm: alg, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if p.Cost < optimal.Cost*(1-1e-9) {
				t.Fatalf("%v seed %d: %g beat DP %g", alg, seed, p.Cost, optimal.Cost)
			}
		}
	}
}

func TestBudgetBoundsEffort(t *testing.T) {
	q := fixture(t, 12, query.StarEdges(12))
	_, small, err := Optimize(q, Options{Algorithm: II, Budget: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, large, err := Optimize(q, Options{Algorithm: II, Budget: 40000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Budget overshoot is bounded by one descent step's costing.
	if small.PlansCosted > 2000+1000 {
		t.Errorf("small budget costed %d", small.PlansCosted)
	}
	if large.PlansCosted <= small.PlansCosted {
		t.Errorf("larger budget did not increase effort: %d vs %d", large.PlansCosted, small.PlansCosted)
	}
}

func TestMoreBudgetNeverHurts(t *testing.T) {
	// The incumbent is monotone in budget for a fixed seed: the larger run
	// sees a superset of the candidate stream.
	q := fixture(t, 11, query.StarChainEdges(11, 7))
	var prev float64
	for i, budget := range []int64{3000, 30000} {
		p, _, err := Optimize(q, Options{Algorithm: II, Budget: budget, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && p.Cost > prev*(1+1e-9) {
			t.Errorf("budget %d worsened the plan: %g -> %g", budget, prev, p.Cost)
		}
		prev = p.Cost
	}
}

func TestDeterministicInSeed(t *testing.T) {
	q := fixture(t, 10, query.StarEdges(10))
	for _, alg := range []Algorithm{II, SA} {
		a, _, err := Optimize(q, Options{Algorithm: alg, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := Optimize(q, Options{Algorithm: alg, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		if a.Cost != b.Cost {
			t.Errorf("%v not deterministic in seed", alg)
		}
	}
}

func TestUnknownAlgorithmRejected(t *testing.T) {
	q := fixture(t, 5, query.ChainEdges(5))
	if _, _, err := Optimize(q, Options{Algorithm: Algorithm(9)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
