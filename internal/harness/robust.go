package harness

import (
	"sdpopt/internal/ce"
)

// benchRobustness runs the cardinality-error robustness sweep for the
// BENCH report: 4 error bands × 2 stats-health levels over three
// DP-feasible topologies, all four techniques, plus the execution
// validation pass. Sizes stay small — exhaustive DP under truth anchors
// every cell, so the sweep is a plan-quality measurement, not a timing one.
func benchRobustness(c Config) (*ce.Report, error) {
	spec := c.schema()
	return ce.Evaluate(ce.Config{
		Cat:       spec.Cat,
		Seed:      c.Seed,
		Instances: c.instances(3),
		Budget:    c.budget(),
		Mode:      ce.ModeBoth,
		Exec:      true,
	})
}
