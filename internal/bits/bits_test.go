package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingle(t *testing.T) {
	for i := 0; i < MaxRelations; i++ {
		s := Single(i)
		if s.Len() != 1 {
			t.Fatalf("Single(%d).Len() = %d, want 1", i, s.Len())
		}
		if !s.Has(i) {
			t.Fatalf("Single(%d) does not contain %d", i, i)
		}
	}
}

func TestSingleOutOfRangePanics(t *testing.T) {
	for _, i := range []int{-1, 64, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Single(%d) did not panic", i)
				}
			}()
			Single(i)
		}()
	}
}

func TestOf(t *testing.T) {
	s := Of(0, 2, 5)
	if got, want := s.Len(), 3; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	for _, i := range []int{0, 2, 5} {
		if !s.Has(i) {
			t.Errorf("Of(0,2,5) missing %d", i)
		}
	}
	for _, i := range []int{1, 3, 4, 6} {
		if s.Has(i) {
			t.Errorf("Of(0,2,5) wrongly contains %d", i)
		}
	}
}

func TestFull(t *testing.T) {
	cases := []struct {
		n    int
		want int
	}{{0, 0}, {1, 1}, {5, 5}, {63, 63}, {64, 64}}
	for _, c := range cases {
		if got := Full(c.n).Len(); got != c.want {
			t.Errorf("Full(%d).Len() = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestFullOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Full(65) did not panic")
		}
	}()
	Full(65)
}

func TestAddRemove(t *testing.T) {
	s := Set(0)
	s = s.Add(3).Add(7).Add(3)
	if got := s.Len(); got != 2 {
		t.Fatalf("Len after adds = %d, want 2", got)
	}
	s = s.Remove(3)
	if s.Has(3) || !s.Has(7) {
		t.Fatalf("after Remove(3): %v", s)
	}
	s = s.Remove(3) // removing an absent element is a no-op
	if got := s.Len(); got != 1 {
		t.Fatalf("Len after double remove = %d, want 1", got)
	}
}

func TestSetAlgebra(t *testing.T) {
	a := Of(0, 1, 2)
	b := Of(2, 3)
	if got, want := a.Union(b), Of(0, 1, 2, 3); got != want {
		t.Errorf("Union = %v, want %v", got, want)
	}
	if got, want := a.Intersect(b), Of(2); got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if got, want := a.Diff(b), Of(0, 1); got != want {
		t.Errorf("Diff = %v, want %v", got, want)
	}
	if !a.Overlaps(b) || a.Disjoint(b) {
		t.Error("a and b should overlap")
	}
	c := Of(4, 5)
	if a.Overlaps(c) || !a.Disjoint(c) {
		t.Error("a and c should be disjoint")
	}
	if !a.Contains(Of(0, 2)) || a.Contains(b) {
		t.Error("Contains misbehaves")
	}
}

func TestMinMax(t *testing.T) {
	s := Of(3, 10, 41)
	if got := s.Min(); got != 3 {
		t.Errorf("Min = %d, want 3", got)
	}
	if got := s.Max(); got != 41 {
		t.Errorf("Max = %d, want 41", got)
	}
}

func TestMinMaxEmptyPanics(t *testing.T) {
	for name, fn := range map[string]func(Set) int{"Min": Set.Min, "Max": Set.Max} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s of empty set did not panic", name)
				}
			}()
			fn(Set(0))
		}()
	}
}

func TestEachAndSlice(t *testing.T) {
	s := Of(5, 1, 9)
	want := []int{1, 5, 9}
	got := s.Slice()
	if len(got) != len(want) {
		t.Fatalf("Slice = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v", got, want)
		}
	}
}

func TestSubsetsPartitionsOnce(t *testing.T) {
	// For s = {0,1,2,3}, Subsets must visit each unordered 2-partition
	// exactly once: every emitted subset contains the low bit, and together
	// with its complement covers s.
	s := Of(0, 1, 2, 3)
	seen := map[Set]bool{}
	s.Subsets(func(sub Set) bool {
		if seen[sub] {
			t.Fatalf("subset %v emitted twice", sub)
		}
		seen[sub] = true
		if !sub.Has(0) {
			t.Fatalf("subset %v missing low bit", sub)
		}
		comp := s.Diff(sub)
		if comp.IsEmpty() {
			t.Fatalf("full set %v emitted as proper subset", sub)
		}
		if !s.Contains(sub) {
			t.Fatalf("subset %v not inside %v", sub, s)
		}
		return true
	})
	// A 4-element set has 2^3 subsets containing the low bit, minus the full
	// set itself: 7 proper subsets.
	if len(seen) != 7 {
		t.Fatalf("got %d subsets, want 7", len(seen))
	}
}

func TestSubsetsEarlyStop(t *testing.T) {
	s := Of(0, 1, 2, 3, 4)
	n := 0
	s.Subsets(func(Set) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop after %d emissions, want 3", n)
	}
}

func TestSubsetsEmptyAndSingleton(t *testing.T) {
	Set(0).Subsets(func(Set) bool {
		t.Fatal("empty set emitted a subset")
		return true
	})
	Single(3).Subsets(func(Set) bool {
		t.Fatal("singleton emitted a proper subset containing its low bit")
		return true
	})
}

func TestString(t *testing.T) {
	cases := []struct {
		s    Set
		want string
	}{
		{Set(0), "{}"},
		{Of(0), "{1}"},
		{Of(0, 1, 6), "{1,2,7}"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("String(%#x) = %q, want %q", uint64(c.s), got, c.want)
		}
	}
}

// Property: union/intersection/difference behave like their map-based models.
func TestQuickSetAlgebraModel(t *testing.T) {
	f := func(a, b uint64) bool {
		sa, sb := Set(a), Set(b)
		model := func(s Set) map[int]bool {
			m := map[int]bool{}
			s.Each(func(i int) { m[i] = true })
			return m
		}
		ma, mb := model(sa), model(sb)
		for i := 0; i < 64; i++ {
			if sa.Union(sb).Has(i) != (ma[i] || mb[i]) {
				return false
			}
			if sa.Intersect(sb).Has(i) != (ma[i] && mb[i]) {
				return false
			}
			if sa.Diff(sb).Has(i) != (ma[i] && !mb[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Len equals the number of elements Each visits, and Slice is
// sorted strictly increasing.
func TestQuickLenAndOrder(t *testing.T) {
	f := func(a uint64) bool {
		s := Set(a)
		sl := s.Slice()
		if len(sl) != s.Len() {
			return false
		}
		for i := 1; i < len(sl); i++ {
			if sl[i] <= sl[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every subset emitted by Subsets S satisfies S∪(s\S)=s, S∩(s\S)=∅,
// and contains the low bit; the emission count is 2^(len-1)-1 for non-empty s.
func TestQuickSubsetsInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		// Cap the popcount so enumeration stays fast.
		var s Set
		for s.Len() < 1+rng.Intn(10) {
			s = s.Add(rng.Intn(64))
		}
		count := 0
		ok := true
		s.Subsets(func(sub Set) bool {
			count++
			comp := s.Diff(sub)
			if !sub.Has(s.Min()) || sub.Union(comp) != s || !sub.Disjoint(comp) {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			t.Fatalf("subset invariant violated for %v", s)
		}
		want := 1<<(s.Len()-1) - 1
		if count != want {
			t.Fatalf("s=%v emitted %d subsets, want %d", s, count, want)
		}
	}
}
