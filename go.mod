module sdpopt

go 1.22
