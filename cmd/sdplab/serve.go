package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sdpopt"
)

// serveCmd runs the optimizer as a service: an HTTP JSON API over a plan
// cache, with admission control and the observability surface on the same
// listener. It blocks until SIGINT/SIGTERM, then drains gracefully.
func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	catalogPath := fs.String("catalog", "", "catalog JSON file (empty = the paper's base schema)")
	skewed := fs.Bool("skewed", false, "use the exponentially-skewed schema (ignored with -catalog)")
	cacheEntries := fs.Int("cache", 1024, "plan-cache capacity in entries (0 disables caching)")
	shards := fs.Int("shards", 0, "plan-cache shard count (0 = default 16)")
	maxConcurrent := fs.Int("max-concurrent", 0, "concurrent optimizations (0 = default 8)")
	workers := fs.Int("workers", 0, "default enumeration workers per optimization (0/1 = sequential engine; requests may override within [1, 2×GOMAXPROCS])")
	maxQueue := fs.Int("queue", 0, "admission queue depth before 429 shedding (0 = 2×max-concurrent)")
	budgetMB := fs.Int64("budget", 0, "default memory budget in MB (0 = the paper's 1024)")
	timeout := fs.Duration("timeout", 0, "per-optimization deadline cap (0 = 30s)")
	tracePath := fs.String("trace", "", "stream optimizer events to this JSONL file")
	flightSlowMS := fs.Int64("flight-slow-ms", 0, "flight-recorder slow-trace pinning threshold in ms (0 = default 1000)")
	flightRecent := fs.Int("flight-recent", 0, "flight-recorder recent-trace ring size (0 = default 64)")
	flightNotable := fs.Int("flight-notable", 0, "flight-recorder slow/error/pinned-trace ring size (0 = default 64)")
	shadowRate := fs.Float64("shadow-rate", 0, "fraction of computed serves shadow re-optimized for regret tracking, in [0, 1] (0 disables the shadow layer)")
	shadowHitRate := fs.Float64("shadow-hit-rate", 0, "fraction of cache-hit serves shadowed, in [0, 1] (0 = default 0.01, capped at shadow-rate)")
	shadowWorkers := fs.Int("shadow-workers", 0, "shadow re-optimization worker pool size (0 = default 1)")
	shadowQueue := fs.Int("shadow-queue", 0, "shadow job queue depth before dropping, never blocking serving (0 = default 64)")
	shadowDPRels := fs.Int("shadow-dp-rels", 0, "largest relation count re-optimized with exhaustive DP; bigger queries use full SDP as reference (0 = default 12)")
	shadowDedup := fs.Duration("shadow-dedup", 0, "suppress re-shadowing one query shape within this interval (0 = default 1m, negative disables)")
	shadowPinRatio := fs.Float64("shadow-pin-ratio", 0, "pin shadow traces with at least this served/reference cost ratio into the flight recorder (0 = default 2)")
	execSampleRate := fs.Float64("exec-sample-rate", 0, "fraction of served plans executed over synthetic data for estimate-vs-actual feedback, in [0, 1] (0 disables exec sampling)")
	execMaxRels := fs.Int("exec-max-rels", 0, "largest relation count eligible for exec sampling (0 = default 8)")
	execMaxRows := fs.Int("exec-max-rows", 0, "largest base-relation row count eligible for exec sampling (0 = default 2000)")
	feedbackLog := fs.String("feedback-log", "", "append exec-sampled observations to this JSONL corpus (replay with 'sdplab robust -feedback')")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *flightSlowMS < 0 || *flightRecent < 0 || *flightNotable < 0 {
		return fmt.Errorf("flight-recorder sizes must be non-negative (got -flight-slow-ms %d, -flight-recent %d, -flight-notable %d)",
			*flightSlowMS, *flightRecent, *flightNotable)
	}
	if *shadowRate < 0 || *shadowRate > 1 || *shadowHitRate < 0 || *shadowHitRate > 1 {
		return fmt.Errorf("shadow sampling rates must lie in [0, 1] (got -shadow-rate %g, -shadow-hit-rate %g)", *shadowRate, *shadowHitRate)
	}
	if *shadowWorkers < 0 || *shadowQueue < 0 || *shadowDPRels < 0 || *shadowPinRatio < 0 {
		return fmt.Errorf("shadow sizes must be non-negative (got -shadow-workers %d, -shadow-queue %d, -shadow-dp-rels %d, -shadow-pin-ratio %g)",
			*shadowWorkers, *shadowQueue, *shadowDPRels, *shadowPinRatio)
	}
	if *shadowRate == 0 && (*shadowHitRate != 0 || *shadowWorkers != 0 || *shadowQueue != 0 || *shadowDPRels != 0 || *shadowDedup != 0 || *shadowPinRatio != 0) {
		return fmt.Errorf("shadow flags require -shadow-rate > 0 to enable the shadow layer")
	}
	if *execSampleRate < 0 || *execSampleRate > 1 {
		return fmt.Errorf("-exec-sample-rate must lie in [0, 1] (got %g)", *execSampleRate)
	}
	if *execMaxRels < 0 || *execMaxRows < 0 {
		return fmt.Errorf("exec-sampling bounds must be non-negative (got -exec-max-rels %d, -exec-max-rows %d)", *execMaxRels, *execMaxRows)
	}
	if *execSampleRate == 0 && (*execMaxRels != 0 || *execMaxRows != 0 || *feedbackLog != "") {
		return fmt.Errorf("exec-sampling flags require -exec-sample-rate > 0 to enable the feedback layer")
	}

	cat := sdpopt.PaperSchema()
	switch {
	case *catalogPath != "":
		f, err := os.Open(*catalogPath)
		if err != nil {
			return err
		}
		cat, err = sdpopt.ReadCatalogJSON(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", *catalogPath, err)
		}
	case *skewed:
		cat = sdpopt.SkewedSchema()
	}

	var sinks []sdpopt.TraceSink
	flush := func() error { return nil }
	if *tracePath != "" {
		sink, err := sdpopt.OpenTraceJSONL(*tracePath)
		if err != nil {
			return err
		}
		sinks = append(sinks, sink)
		flush = sink.Close
	}
	ob := sdpopt.NewObserver(sinks...)
	sdpopt.SetDefaultObserver(ob)

	var cache *sdpopt.PlanCache
	if *cacheEntries > 0 {
		cache = sdpopt.NewPlanCache(sdpopt.PlanCacheOptions{
			MaxEntries: *cacheEntries,
			Shards:     *shards,
			Obs:        ob,
		})
	}
	var fb *sdpopt.FeedbackOptions
	if *execSampleRate > 0 {
		fb = &sdpopt.FeedbackOptions{
			SampleRate: *execSampleRate,
			MaxRels:    *execMaxRels,
			MaxRows:    *execMaxRows,
			LogPath:    *feedbackLog,
		}
	}
	var shadow *sdpopt.RegretOptions
	if *shadowRate > 0 {
		shadow = &sdpopt.RegretOptions{
			SampleRate:    *shadowRate,
			HitSampleRate: *shadowHitRate,
			Workers:       *shadowWorkers,
			QueueSize:     *shadowQueue,
			MaxDPRels:     *shadowDPRels,
			DedupFor:      *shadowDedup,
			PinRatio:      *shadowPinRatio,
			Budget:        *budgetMB << 20,
		}
	}
	srv, err := sdpopt.NewServer(sdpopt.ServerOptions{
		Cat:           cat,
		Cache:         cache,
		Obs:           ob,
		MaxConcurrent: *maxConcurrent,
		MaxQueue:      *maxQueue,
		Workers:       *workers,
		Budget:        *budgetMB << 20,
		Timeout:       *timeout,
		Regret:        shadow,
		Feedback:      fb,
		Flight: sdpopt.FlightRecorderOptions{
			Recent:        *flightRecent,
			Notable:       *flightNotable,
			SlowThreshold: time.Duration(*flightSlowMS) * time.Millisecond,
		},
	})
	if err != nil {
		return err
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sdplab serve on http://%s\n", bound)
	fmt.Fprintf(os.Stderr, "  POST /optimize   {\"sql\": \"SELECT * FROM R1 a, R2 b WHERE a.c1 = b.c1\"}\n")
	fmt.Fprintf(os.Stderr, "  GET  /healthz    liveness, admission and cache state\n")
	fmt.Fprintf(os.Stderr, "  GET  /catalog    schema statistics and version\n")
	fmt.Fprintf(os.Stderr, "  GET  /metrics    Prometheus exposition (plus /debug/vars, /debug/pprof)\n")
	fmt.Fprintf(os.Stderr, "  GET  /debug/requests     flight recorder: live + recent + slow/error traces\n")
	fmt.Fprintf(os.Stderr, "  GET  /debug/flight.json  flight recorder dump (render with 'sdplab inspect')\n")
	if shadow != nil {
		fmt.Fprintf(os.Stderr, "  GET  /debug/regret       plan-quality regret: shadowed ρ/W windows per technique\n")
		fmt.Fprintf(os.Stderr, "  GET  /debug/regret.json  regret dump (render with 'sdplab regret')\n")
	}
	if fb != nil {
		fmt.Fprintf(os.Stderr, "  GET  /debug/cardinality       estimate-vs-actual q-errors and staleness per catalog object\n")
		fmt.Fprintf(os.Stderr, "  GET  /debug/cardinality.json  cardinality dump (render with 'sdplab feedback')\n")
	}
	fmt.Fprintf(os.Stderr, "  GET  /debug              index of every mounted debug surface\n")
	fmt.Fprintf(os.Stderr, "  catalog version %s, cache %d entries, techniques %v\n",
		sdpopt.CatalogFingerprint(cat), *cacheEntries, sdpopt.Techniques())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Fprintln(os.Stderr, "sdplab serve: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		flush()
		return err
	}
	if cache != nil {
		ct := cache.Counts()
		fmt.Fprintf(os.Stderr, "sdplab serve: cache %d entries, %d hits, %d misses, %d dedups (%.0f%% hit rate)\n",
			ct.Entries, ct.Hits, ct.Misses, ct.Dedups, 100*ct.HitRate())
	}
	return flush()
}
