package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// A trace with corrupted lines — a truncated tail and interleaved garbage —
// must still summarize: good lines survive, each bad line warns, and the
// final count reports how many were skipped.
func TestRunSkipsMalformedLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	fixture := strings.Join([]string{
		`{"ev":"level","tech":"sdp","level":2,"dur_ns":1000,"plans_costed":5}`,
		`{"ev":"level","tech":"sdp","lev`, // cut off mid-write
		``,                                // blank lines are fine, not counted
		`{"ev":"level","tech":"sdp","level":3,"dur_ns":2000,"plans_costed":9}`,
		`not json at all`,
	}, "\n")
	if err := os.WriteFile(path, []byte(fixture), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, warn strings.Builder
	if err := run(path, 5, true, &out, &warn); err != nil {
		t.Fatalf("run aborted on a recoverable trace: %v", err)
	}
	if got := strings.Count(out.String(), "\n"); got != 2 {
		t.Errorf("raw output has %d records, want 2:\n%s", got, out.String())
	}
	for _, want := range []string{
		"trace line 2 skipped",
		"trace line 5 skipped",
		"skipped 2 malformed line(s)",
	} {
		if !strings.Contains(warn.String(), want) {
			t.Errorf("warnings missing %q:\n%s", want, warn.String())
		}
	}

	// The summary path consumes the same surviving records.
	out.Reset()
	warn.Reset()
	if err := run(path, 5, false, &out, &warn); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "trace: 2 events") {
		t.Errorf("summary lost the surviving records:\n%s", out.String())
	}
	if !strings.Contains(warn.String(), "skipped 2 malformed") {
		t.Errorf("summary pass did not warn:\n%s", warn.String())
	}
}

// A fully well-formed trace must not produce any skip warnings.
func TestRunCleanTraceNoWarnings(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	fixture := `{"ev":"level","tech":"sdp","level":2,"dur_ns":1000,"plans_costed":5}` + "\n"
	if err := os.WriteFile(path, []byte(fixture), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, warn strings.Builder
	if err := run(path, 5, false, &out, &warn); err != nil {
		t.Fatal(err)
	}
	if warn.Len() != 0 {
		t.Errorf("unexpected warnings: %s", warn.String())
	}
}
