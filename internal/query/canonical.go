package query

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// Canonical returns a stable canonical encoding of the query's semantics.
// Two queries receive the same encoding exactly when they describe the same
// optimization problem, regardless of how they were written:
//
//   - Relation order is normalized: the FROM list is relabeled by a
//     canonical ordering of the join graph (color refinement with
//     individualization), so "FROM R1 a, R2 b" and "FROM R2 x, R1 y" with
//     correspondingly renumbered predicates encode identically.
//   - Predicate order and orientation are normalized: the encoding is built
//     from the join-column equivalence classes of the implied-edge closure,
//     so "a.c1 = b.c2" vs "b.c2 = a.c1", any predicate ordering, and
//     user-written predicates that the closure would have implied anyway
//     all collapse to one form.
//   - Filter constants are normalized: multiple bounds on one column keep
//     the minimum (c < 100 AND c < 200 ≡ c < 100), and bounds at or above
//     the column's domain size are dropped (they select every row).
//   - ORDER BY on a join column is normalized to its equivalence class:
//     sorting the join result on t1.c4 and on t2.c9 is the same output
//     order when c4 = c9 is a join predicate.
//
// The encoding is deliberately collision-free: every semantic feature of
// the query (catalog relations, join structure, filters, output order)
// appears in it, so distinct queries cannot share an encoding. Use
// Fingerprint for a fixed-width digest suitable as a cache key.
func (q *Query) Canonical() string {
	return q.Canon().Encoding
}

// Canon is a query's canonical frame: the stable encoding plus the
// relabelings connecting the query's local relation indexes and join-column
// equivalence class ids to their canonical counterparts. Two equivalent
// spellings of one query share an Encoding, and their maps translate
// query-local references through the shared canonical frame — which is how
// a plan cached under one spelling is relabeled for another (see
// internal/server).
type Canon struct {
	// Encoding is the canonical encoding (see Canonical).
	Encoding string
	// RelTo maps a query-local relation index to its canonical position;
	// RelFrom is the inverse (RelFrom[RelTo[i]] == i).
	RelTo, RelFrom []int
	// EqTo maps a join-column equivalence class id (see EqClass) to its
	// canonical rank; EqFrom is the inverse.
	EqTo, EqFrom []int
	// Truncated reports that the labeling search exhausted searchBudget
	// before proving the chosen ordering minimal. The encoding is still a
	// faithful description of this query, but equivalent spellings may land
	// on different encodings — a cache hit-rate loss, never a wrong answer.
	Truncated bool
}

// Canon returns the query's canonical frame, computed once and memoized
// (queries are immutable after construction).
func (q *Query) Canon() *Canon {
	q.canonOnce.Do(func() {
		q.canon = newCanonicalizer(q).run()
	})
	return q.canon
}

// Fingerprint returns a fixed-width hex digest of Canonical() — the
// plan-cache key component identifying the query (see internal/plancache
// for the full key composition: fingerprint × technique × catalog version).
func (q *Query) Fingerprint() string {
	sum := sha256.Sum256([]byte(q.Canonical()))
	return hex.EncodeToString(sum[:16])
}

// searchBudget caps the number of complete orderings the canonical search
// may encode. Tie groups only survive refinement when relations share every
// refined invariant (same catalog relation, same filters, same join
// neighborhood), so real workloads branch rarely; the cap bounds
// adversarial self-join cliques. Within budget the result is the exact
// lexicographic minimum and therefore order-insensitive. Past it the search
// keeps the best ordering found so far — but DFS order depends on input
// relation order and WL refinement is incomplete (tie groups can contain
// non-symmetric relations), so a truncated search may give equivalent
// spellings of one query different encodings. That degrades cache hit rate,
// never correctness: each encoding still faithfully describes its query.
// Truncation is reported via Canon().Truncated so servers can count it.
const searchBudget = 4096

// canonEdge is one closed join predicate viewed from relation "from":
// from.myCol joins to.otherCol.
type canonEdge struct {
	myCol, otherCol, to int
}

type canonicalizer struct {
	q     *Query
	n     int
	edges [][]canonEdge
	// filters is the normalized filter set: per relation, the minimum bound
	// per column, with no-op bounds (≥ domain size) removed.
	filters []map[int]int64

	budget    int
	best      string
	bestPerm  []int // bestPerm[canonical position] = query-local index
	bestSet   bool
	truncated bool
}

func newCanonicalizer(q *Query) *canonicalizer {
	n := len(q.Rels)
	c := &canonicalizer{q: q, n: n, budget: searchBudget}
	c.edges = make([][]canonEdge, n)
	for _, p := range q.Preds {
		c.edges[p.LeftRel] = append(c.edges[p.LeftRel], canonEdge{p.LeftCol, p.RightCol, p.RightRel})
		c.edges[p.RightRel] = append(c.edges[p.RightRel], canonEdge{p.RightCol, p.LeftCol, p.LeftRel})
	}
	c.filters = make([]map[int]int64, n)
	for _, f := range q.Filters {
		ndv := q.Relation(f.Rel).Cols[f.Col].NDV
		if float64(f.Bound) >= ndv {
			continue // column values live in [0, NDV): the filter is a no-op
		}
		if c.filters[f.Rel] == nil {
			c.filters[f.Rel] = map[int]int64{}
		}
		if cur, ok := c.filters[f.Rel][f.Col]; !ok || f.Bound < cur {
			c.filters[f.Rel][f.Col] = f.Bound
		}
	}
	return c
}

func (c *canonicalizer) run() *Canon {
	colors := c.refine(c.initialColors())
	c.search(colors, make([]int, 0, c.n))
	cn := &Canon{Encoding: c.best, RelFrom: c.bestPerm, Truncated: c.truncated}
	cn.RelTo = make([]int, c.n)
	for canonIdx, local := range cn.RelFrom {
		cn.RelTo[local] = canonIdx
	}
	// Equivalence classes rank by their rendering under the winning
	// relabeling — exactly the strings the encoding's J: section sorts, so
	// equivalent spellings that share an Encoding agree on the ranks.
	// Distinct classes have disjoint member sets, hence distinct strings.
	strs := make([]string, c.q.numEq)
	for id := range strs {
		strs[id] = c.classString(id, cn.RelTo)
	}
	sorted := append([]string(nil), strs...)
	sort.Strings(sorted)
	rank := make(map[string]int, len(sorted))
	for i, s := range sorted {
		rank[s] = i
	}
	cn.EqTo = make([]int, c.q.numEq)
	cn.EqFrom = make([]int, c.q.numEq)
	for id, s := range strs {
		cn.EqTo[id] = rank[s]
		cn.EqFrom[rank[s]] = id
	}
	return cn
}

// initialColors seeds the refinement with every relation-local semantic
// feature: the catalog relation behind the alias, its normalized filters,
// and — only for an ORDER BY on a non-join column, where the relation
// identity matters — the requested order.
func (c *canonicalizer) initialColors() []int {
	sigs := make([]string, c.n)
	for i := 0; i < c.n; i++ {
		var fs []string
		for col, bound := range c.filters[i] {
			fs = append(fs, fmt.Sprintf("%d<%d", col, bound))
		}
		sort.Strings(fs)
		ob := ""
		if o := c.q.OrderBy; o != nil && o.Rel == i && c.q.OrderEqClass() < 0 {
			ob = fmt.Sprintf("|o%d", o.Col)
		}
		sigs[i] = fmt.Sprintf("r%d|%s%s", c.q.Rels[i], strings.Join(fs, ","), ob)
	}
	return rankStrings(sigs)
}

// refine runs Weisfeiler-Leman color refinement to a fixed point: each
// round extends a relation's color with the sorted multiset of its join
// edges (column pair plus neighbor color) and re-ranks. Ranks are assigned
// by sorted signature, so they are invariant under input permutation.
func (c *canonicalizer) refine(colors []int) []int {
	distinct := countDistinct(colors)
	for {
		sigs := make([]string, c.n)
		for i := 0; i < c.n; i++ {
			parts := make([]string, len(c.edges[i]))
			for k, e := range c.edges[i] {
				parts[k] = fmt.Sprintf("%d.%d.%d", e.myCol, e.otherCol, colors[e.to])
			}
			sort.Strings(parts)
			sigs[i] = fmt.Sprintf("%d|%s", colors[i], strings.Join(parts, ","))
		}
		next := rankStrings(sigs)
		nd := countDistinct(next)
		if nd == distinct {
			return next
		}
		colors, distinct = next, nd
	}
}

// search explores canonical orderings: repeatedly take the minimal color
// among unplaced relations; a singleton class is placed directly, a tie
// group branches on each member (individualize, re-refine, recurse). The
// lexicographically smallest complete encoding wins.
func (c *canonicalizer) search(colors []int, prefix []int) {
	if len(prefix) == c.n {
		enc := c.encode(prefix)
		if !c.bestSet || enc < c.best {
			c.best, c.bestSet = enc, true
			c.bestPerm = append([]int(nil), prefix...)
		}
		c.budget--
		return
	}
	placed := make(map[int]bool, len(prefix))
	for _, i := range prefix {
		placed[i] = true
	}
	minColor, cands := -1, []int(nil)
	for i := 0; i < c.n; i++ {
		if placed[i] {
			continue
		}
		switch {
		case minColor < 0 || colors[i] < minColor:
			minColor, cands = colors[i], []int{i}
		case colors[i] == minColor:
			cands = append(cands, i)
		}
	}
	if len(cands) == 1 {
		c.search(colors, append(prefix, cands[0]))
		return
	}
	for _, pick := range cands {
		if c.bestSet && c.budget <= 0 {
			c.truncated = true
			return
		}
		next := make([]int, c.n)
		copy(next, colors)
		// A fresh color above every rank individualizes the pick; refinement
		// then propagates the distinction through its neighborhood.
		next[pick] = c.n + len(prefix)
		c.search(c.refine(next), append(prefix, pick))
	}
}

// encode renders the full semantic encoding under the given relation
// ordering: perm[new] = old query-local index.
func (c *canonicalizer) encode(perm []int) string {
	inv := make([]int, c.n)
	for newIdx, old := range perm {
		inv[old] = newIdx
	}
	var sb strings.Builder
	sb.WriteString("q1|R:")
	for newIdx, old := range perm {
		if newIdx > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", c.q.Rels[old])
	}
	// Join structure: the equivalence classes of the implied-edge closure,
	// each a sorted member list of relabeled (relation, column) references.
	classes := c.classStrings(inv)
	sb.WriteString("|J:")
	sb.WriteString(strings.Join(classes, ";"))
	// Normalized filters.
	var fs []string
	for old, m := range c.filters {
		for col, bound := range m {
			fs = append(fs, fmt.Sprintf("%d.%d<%d", inv[old], col, bound))
		}
	}
	sort.Strings(fs)
	sb.WriteString("|F:")
	sb.WriteString(strings.Join(fs, ";"))
	sb.WriteString("|O:")
	switch o := c.q.OrderBy; {
	case o == nil:
		sb.WriteByte('-')
	case c.q.OrderEqClass() >= 0:
		// Ordering on a join column: any member of the class delivers the
		// same output order, so the class itself is the canonical target.
		sb.WriteString(c.classString(c.q.OrderEqClass(), inv))
	default:
		fmt.Fprintf(&sb, "%d.%d", inv[o.Rel], o.Col)
	}
	return sb.String()
}

// classStrings renders every join-column equivalence class under the
// relabeling, sorted.
func (c *canonicalizer) classStrings(inv []int) []string {
	out := make([]string, 0, c.q.numEq)
	for id := 0; id < c.q.numEq; id++ {
		out = append(out, c.classString(id, inv))
	}
	sort.Strings(out)
	return out
}

func (c *canonicalizer) classString(id int, inv []int) string {
	var ms []string
	for ref, cls := range c.q.eqClass {
		if cls == id {
			ms = append(ms, fmt.Sprintf("%d.%d", inv[ref.rel], ref.col))
		}
	}
	sort.Strings(ms)
	return strings.Join(ms, ",")
}

// rankStrings maps each signature to the rank of its value among the
// sorted distinct signatures — a permutation-invariant relabeling.
func rankStrings(sigs []string) []int {
	uniq := append([]string(nil), sigs...)
	sort.Strings(uniq)
	rank := make(map[string]int, len(uniq))
	for _, s := range uniq {
		if _, ok := rank[s]; !ok {
			rank[s] = len(rank)
		}
	}
	out := make([]int, len(sigs))
	for i, s := range sigs {
		out[i] = rank[s]
	}
	return out
}

func countDistinct(colors []int) int {
	seen := map[int]bool{}
	for _, c := range colors {
		seen[c] = true
	}
	return len(seen)
}
