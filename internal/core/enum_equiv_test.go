package core

import (
	"fmt"
	"math"
	"testing"

	"sdpopt/internal/dp"
	"sdpopt/internal/pardp"
	"sdpopt/internal/plan"
	"sdpopt/internal/workload"
)

// The adjacency-indexed enumerator (memo.Walker over per-relation bitmaps)
// must be observationally identical to the retained naive reference loop:
// same chosen plan to the cost bit, same PlansCosted, same memo shape, and
// — for SDP — a byte-identical pruning trace. These tests are the
// machine-checked form of the order-preservation argument in DESIGN.md.

type equivEntry struct {
	name string
	spec workload.Spec
}

// equivCorpus mirrors the pardp determinism corpus (every topology the
// generator offers, plus ordered and filtered variants) but with one
// instance per entry so the full naive×indexed×workers cross product stays
// quick under -race.
func equivCorpus() []equivEntry {
	cat := workload.PaperSchema()
	var out []equivEntry
	for _, n := range []int{5, 10, 15} {
		out = append(out, equivEntry{
			name: fmt.Sprintf("chain-%d", n),
			spec: workload.Spec{Cat: cat, Topology: workload.Chain, NumRelations: n, Seed: int64(n)},
		})
	}
	for _, n := range []int{5, 10} {
		out = append(out, equivEntry{
			name: fmt.Sprintf("cycle-%d", n),
			spec: workload.Spec{Cat: cat, Topology: workload.Cycle, NumRelations: n, Seed: int64(100 + n)},
		})
	}
	for _, n := range []int{5, 8, 10} {
		out = append(out, equivEntry{
			name: fmt.Sprintf("star-%d", n),
			spec: workload.Spec{Cat: cat, Topology: workload.Star, NumRelations: n, Seed: int64(200 + n)},
		})
	}
	out = append(out,
		equivEntry{
			name: "starchain-15",
			spec: workload.Spec{Cat: cat, Topology: workload.StarChain, NumRelations: 15, Seed: 315},
		},
		equivEntry{
			name: "chain-8-ordered",
			spec: workload.Spec{Cat: cat, Topology: workload.Chain, NumRelations: 8, Ordered: true, Seed: 408},
		},
		equivEntry{
			name: "cycle-7-filtered",
			spec: workload.Spec{Cat: cat, Topology: workload.Cycle, NumRelations: 7, FilterFraction: 0.5, Seed: 507},
		},
	)
	return out
}

func equivRelName(i int) string { return fmt.Sprintf("R%d", i) }

// assertSameResult enforces bit-for-bit identity between the naive oracle
// and a candidate engine: exact cost bits, plan shape, plans costed, memo
// shape, and the number of connected pairs — a property of the search
// space, so every enumeration strategy must agree on it. PairsConsidered
// is deliberately excluded: it is the one statistic that measures the
// strategy rather than the search, checked separately as an inequality.
func assertSameResult(t *testing.T, label string, pRef *plan.Plan, stRef dp.Stats, pGot *plan.Plan, stGot dp.Stats) {
	t.Helper()
	if math.Float64bits(pRef.Cost) != math.Float64bits(pGot.Cost) {
		t.Errorf("%s: cost %v (naive) != %v (got)", label, pRef.Cost, pGot.Cost)
	}
	if plan.Compare(pRef, pGot) != 0 {
		t.Errorf("%s: plan shape diverged:\nnaive: %s\ngot:   %s",
			label, pRef.Shape(equivRelName), pGot.Shape(equivRelName))
	}
	if stRef.PlansCosted != stGot.PlansCosted {
		t.Errorf("%s: PlansCosted %d (naive) != %d (got)", label, stRef.PlansCosted, stGot.PlansCosted)
	}
	if stRef.Memo.ClassesCreated != stGot.Memo.ClassesCreated {
		t.Errorf("%s: ClassesCreated %d (naive) != %d (got)", label, stRef.Memo.ClassesCreated, stGot.Memo.ClassesCreated)
	}
	if stRef.Memo.PathsRetained != stGot.Memo.PathsRetained {
		t.Errorf("%s: PathsRetained %d (naive) != %d (got)", label, stRef.Memo.PathsRetained, stGot.Memo.PathsRetained)
	}
	if stRef.Memo.SimBytes != stGot.Memo.SimBytes {
		t.Errorf("%s: SimBytes %d (naive) != %d (got)", label, stRef.Memo.SimBytes, stGot.Memo.SimBytes)
	}
	if stRef.PairsConnected != stGot.PairsConnected {
		t.Errorf("%s: PairsConnected %d (naive) != %d (got)", label, stRef.PairsConnected, stGot.PairsConnected)
	}
}

// TestDPEnumerationEquivalence runs exhaustive DP four ways — the naive
// generate-and-filter reference loop, the adjacency-indexed walk, the
// default DPccp csg-cmp enumeration, and the parallel engine at 1/2/4/8
// workers — and requires identical results. It also pins the point of each
// enumerator: the indexed walk must consider no more candidate pairs than
// the naive scan (and on every corpus entry strictly fewer — the filter was
// doing real work), and DPccp must report considered == connected, its
// structural no-filtering guarantee.
func TestDPEnumerationEquivalence(t *testing.T) {
	for _, ce := range equivCorpus() {
		ce := ce
		t.Run(ce.name, func(t *testing.T) {
			t.Parallel()
			q, err := workload.One(ce.spec)
			if err != nil {
				t.Fatalf("One: %v", err)
			}
			pNaive, stNaive, err := dp.Optimize(q, dp.Options{Enum: dp.EnumNaive})
			if err != nil {
				t.Fatalf("naive: %v", err)
			}
			pIdx, stIdx, err := dp.Optimize(q, dp.Options{Enum: dp.EnumIndexed})
			if err != nil {
				t.Fatalf("indexed: %v", err)
			}
			assertSameResult(t, "indexed", pNaive, stNaive, pIdx, stIdx)
			if stIdx.PairsConsidered > stNaive.PairsConsidered {
				t.Errorf("indexed considered %d pairs, naive only %d — index generated spurious candidates",
					stIdx.PairsConsidered, stNaive.PairsConsidered)
			}
			if q.NumRelations() > 2 && stIdx.PairsConsidered >= stNaive.PairsConsidered {
				t.Errorf("indexed considered %d pairs, not fewer than naive's %d — index is not filtering",
					stIdx.PairsConsidered, stNaive.PairsConsidered)
			}
			pCcp, stCcp, err := dp.Optimize(q, dp.Options{}) // default: DPccp
			if err != nil {
				t.Fatalf("ccp: %v", err)
			}
			assertSameResult(t, "ccp", pNaive, stNaive, pCcp, stCcp)
			if stCcp.PairsConsidered != stCcp.PairsConnected {
				t.Errorf("ccp considered %d pairs but connected %d — the csg-cmp enumeration emitted a pair it had to filter",
					stCcp.PairsConsidered, stCcp.PairsConnected)
			}
			for _, workers := range []int{1, 2, 4, 8} {
				pPar, stPar, err := pardp.Optimize(q, pardp.Options{Workers: workers})
				if err != nil {
					t.Fatalf("w=%d: %v", workers, err)
				}
				assertSameResult(t, fmt.Sprintf("w=%d", workers), pNaive, stNaive, pPar, stPar)
			}
		})
	}
}

// TestDPccpEquivalenceWidths sweeps DPccp ≡ DPsize across every generator
// topology at widths 2–15 (cycle and star-chain start at their structural
// minimum of 3): identical optimal plan to the cost bit, identical memo
// shape, identical connected-pair count, and the parallel engine bit-for-bit
// identical at 1/2/4/8 workers — the full proof obligation of making DPccp
// the default. Three deliberate caps keep the sweep inside test time without
// weakening the proof — at every capped width the work cut is join costing,
// never enumeration coverage: the naive scan's per-level cross products are
// quadratic in the class population, so it drops out above width 13 on the
// dense hub topologies (the indexed walk — already proven ≡ naive — carries
// the DPsize side there); the four-way worker sweep stops at parMax because
// each worker count is a full exhaustive optimization and pardp drives its
// own level loop, untouched by the enumerator default (its determinism on
// the hub-heavy corpus is pinned by TestDPEnumerationEquivalence); and the
// clique sweep stops at 9 because an exhaustive clique optimization joins
// Θ(3ⁿ) pairs in *every* enumerator — the joins, not the enumeration, are
// the cost; pair-set equality for larger cliques is covered structurally
// (and cheaply) in internal/ccp.
func TestDPccpEquivalenceWidths(t *testing.T) {
	cat := workload.PaperSchema()
	sweeps := []struct {
		name     string
		topo     workload.Topology
		min      int
		max      int
		naiveMax int
		parMax   int
	}{
		{"chain", workload.Chain, 2, 15, 15, 15},
		{"cycle", workload.Cycle, 3, 15, 15, 15},
		{"star", workload.Star, 2, 15, 13, 13},
		{"starchain", workload.StarChain, 3, 15, 13, 13},
		{"clique", workload.Clique, 2, 9, 9, 8},
	}
	for _, sw := range sweeps {
		for n := sw.min; n <= sw.max; n++ {
			sw, n := sw, n
			t.Run(fmt.Sprintf("%s-%d", sw.name, n), func(t *testing.T) {
				t.Parallel()
				q, err := workload.One(workload.Spec{
					Cat: cat, Topology: sw.topo, NumRelations: n, Seed: int64(1000*int64(sw.topo) + int64(n)),
				})
				if err != nil {
					t.Fatalf("One: %v", err)
				}
				pCcp, stCcp, err := dp.Optimize(q, dp.Options{}) // default: DPccp
				if err != nil {
					t.Fatalf("ccp: %v", err)
				}
				if stCcp.PairsConsidered != stCcp.PairsConnected {
					t.Errorf("ccp considered %d != connected %d", stCcp.PairsConsidered, stCcp.PairsConnected)
				}
				pIdx, stIdx, err := dp.Optimize(q, dp.Options{Enum: dp.EnumIndexed})
				if err != nil {
					t.Fatalf("indexed: %v", err)
				}
				assertSameResult(t, "ccp-vs-indexed", pIdx, stIdx, pCcp, stCcp)
				if n <= sw.naiveMax {
					pNaive, stNaive, err := dp.Optimize(q, dp.Options{Enum: dp.EnumNaive})
					if err != nil {
						t.Fatalf("naive: %v", err)
					}
					assertSameResult(t, "ccp-vs-naive", pNaive, stNaive, pCcp, stCcp)
				}
				if n <= sw.parMax {
					for _, workers := range []int{1, 2, 4, 8} {
						pPar, stPar, err := pardp.Optimize(q, pardp.Options{Workers: workers})
						if err != nil {
							t.Fatalf("w=%d: %v", workers, err)
						}
						assertSameResult(t, fmt.Sprintf("ccp-vs-w=%d", workers), pCcp, stCcp, pPar, stPar)
					}
				}
			})
		}
	}
}

// TestDPccpStructuralInvariant is the CI enumeration-regression guard's
// named check: over the full smoke corpus, the default engine must be DPccp
// and must report pairs_considered == pairs_connected — more considered than
// connected means the structural enumeration generated a candidate it had to
// reject, which DPccp by construction never does.
func TestDPccpStructuralInvariant(t *testing.T) {
	for _, ce := range equivCorpus() {
		q, err := workload.One(ce.spec)
		if err != nil {
			t.Fatalf("%s: One: %v", ce.name, err)
		}
		_, st, err := dp.Optimize(q, dp.Options{})
		if err != nil {
			t.Fatalf("%s: %v", ce.name, err)
		}
		if st.PairsConsidered != st.PairsConnected {
			t.Errorf("%s: DPccp considered %d pairs, connected %d — structural invariant broken",
				ce.name, st.PairsConsidered, st.PairsConnected)
		}
	}
}

// TestSDPEnumerationEquivalence runs SDP with naive, indexed, and parallel
// (1/2/4/8 workers) substrates and requires the chosen plan, the stats,
// and the rendered pruning trace to be byte-for-byte identical. The trace
// is the strongest oracle available: it serializes every level's
// PruneGroup/FreeGroup split, partition membership in order, and the
// pruned sets, so any divergence in enumeration order that leaks into
// pruning shows up as a text diff.
func TestSDPEnumerationEquivalence(t *testing.T) {
	for _, ce := range equivCorpus() {
		ce := ce
		t.Run(ce.name, func(t *testing.T) {
			t.Parallel()
			q, err := workload.One(ce.spec)
			if err != nil {
				t.Fatalf("One: %v", err)
			}
			run := func(workers int, naive bool) (*plan.Plan, dp.Stats, string) {
				t.Helper()
				opts := DefaultOptions()
				opts.Workers = workers
				opts.NaiveEnum = naive
				var tr Trace
				opts.Trace = &tr
				p, st, err := Optimize(q, opts)
				if err != nil {
					t.Fatalf("SDP workers=%d naive=%v: %v", workers, naive, err)
				}
				return p, st, tr.String()
			}
			pNaive, stNaive, trNaive := run(0, true)
			pIdx, stIdx, trIdx := run(0, false)
			assertSameResult(t, "sdp-indexed", pNaive, stNaive, pIdx, stIdx)
			if trNaive != trIdx {
				t.Errorf("indexed SDP trace diverged from naive:\n--- naive ---\n%s--- indexed ---\n%s", trNaive, trIdx)
			}
			if stIdx.PairsConsidered > stNaive.PairsConsidered {
				t.Errorf("indexed considered %d pairs, naive only %d", stIdx.PairsConsidered, stNaive.PairsConsidered)
			}
			for _, workers := range []int{1, 2, 4, 8} {
				pPar, stPar, trPar := run(workers, false)
				assertSameResult(t, fmt.Sprintf("sdp-w=%d", workers), pNaive, stNaive, pPar, stPar)
				if trNaive != trPar {
					t.Errorf("workers=%d SDP trace diverged from naive:\n--- naive ---\n%s--- w=%d ---\n%s",
						workers, trNaive, workers, trPar)
				}
			}
		})
	}
}

// TestNaiveEnumFlagIsInert checks the knob itself leaves no residue: a
// naive run followed by an indexed run on the same fresh queries produces
// the same statistics either way around (no shared state between runs).
func TestNaiveEnumFlagIsInert(t *testing.T) {
	cat := workload.PaperSchema()
	q, err := workload.One(workload.Spec{Cat: cat, Topology: workload.Cycle, NumRelations: 8, Seed: 99})
	if err != nil {
		t.Fatalf("One: %v", err)
	}
	_, first, err := dp.Optimize(q, dp.Options{})
	if err != nil {
		t.Fatalf("indexed: %v", err)
	}
	if _, _, err := dp.Optimize(q, dp.Options{NaiveEnum: true}); err != nil {
		t.Fatalf("naive: %v", err)
	}
	_, again, err := dp.Optimize(q, dp.Options{})
	if err != nil {
		t.Fatalf("indexed again: %v", err)
	}
	if first.PlansCosted != again.PlansCosted || first.PairsConsidered != again.PairsConsidered {
		t.Errorf("indexed run not reproducible around a naive run: %+v vs %+v", first, again)
	}
}
