package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"

	"sdpopt/internal/catalog"
	"sdpopt/internal/ce"
	"sdpopt/internal/feedback"
	"sdpopt/internal/server"
	"sdpopt/internal/workload"
)

// FeedbackBench measures the cardinality feedback ledger end to end against
// a live in-process server: a star workload over a Zipf-skewed synthetic
// catalog, served with exec sampling at 100% so every plan is executed over
// generated data and its estimate-vs-actual observations land in the ledger.
// The same workload is then replayed against a stats-degraded copy of the
// catalog (half the columns lose their statistics); the estimator falls back
// to magic constants there, so the degraded pass's worst staleness score
// should exceed the healthy pass's — the signal the router's stale-demotion
// keys on.
type FeedbackBench struct {
	Graph     string `json:"graph"`
	Relations int    `json:"relations"`
	Instances int    `json:"instances"`
	// Requests is the serve count per pass (one per instance).
	Requests int `json:"requests"`

	// Sampled/Completed/Failures echo the healthy pass's sampler counters
	// after draining: a correct run samples every serve and executes every
	// sampled plan.
	Sampled   int64 `json:"sampled"`
	Completed int64 `json:"completed"`
	Failures  int64 `json:"failures"`

	// Observations/Objects/StaleObjects summarize the healthy pass's
	// ledger; WorstQErrP95 is the worst per-object windowed q-error p95.
	Observations int64   `json:"observations"`
	Objects      int     `json:"objects"`
	StaleObjects int     `json:"stale_objects"`
	WorstQErrP95 float64 `json:"worst_qerr_p95"`

	// HealthyWorstStaleness vs DegradedWorstStaleness is the comparison the
	// ledger exists to make: losing statistics must show up as a higher
	// staleness score.
	HealthyWorstStaleness  float64 `json:"healthy_worst_staleness"`
	DegradedWorstStaleness float64 `json:"degraded_worst_staleness"`
	DegradedStaleObjects   int     `json:"degraded_stale_objects"`
}

// benchFeedback serves the same skewed workload against a healthy and a
// stats-degraded catalog, exec-sampling every serve into the ledger.
func benchFeedback(c Config) (*FeedbackBench, error) {
	const (
		n     = 6
		zipfS = 1.3
	)
	// Small rows and wide domains keep the skewed joins inside exec's row
	// cap: Zipf heavy hitters make every join fan out, and the fanout
	// compounds across a star's joins.
	base := catalog.MustSynthetic(catalog.Config{
		NumRelations:    n,
		BaseRows:        12,
		Ratio:           1.2,
		ColsPerRelation: 8,
		MinDomain:       8,
		MaxDomain:       40,
		Seed:            c.Seed,
	})
	healthy, err := base.WithZipfSkew(zipfS)
	if err != nil {
		return nil, err
	}
	degraded, err := ce.DegradeCatalog(healthy, 0.5, c.Seed)
	if err != nil {
		return nil, err
	}
	spec := &workload.Spec{Cat: healthy, Topology: workload.Star, NumRelations: n, Seed: c.Seed}
	qs, err := workload.Instances(*spec, c.instances(5))
	if err != nil {
		return nil, err
	}

	pass := func(cat *catalog.Catalog) (*feedback.Dump, error) {
		srv, err := server.New(server.Options{
			Cat: cat,
			Feedback: &server.FeedbackOptions{
				SampleRate: 1,
				MaxRels:    n,
			},
		})
		if err != nil {
			return nil, err
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		defer srv.Shutdown(context.Background())
		for _, q := range qs {
			body, err := json.Marshal(server.OptimizeRequest{SQL: q.SQL(), Technique: "sdp"})
			if err != nil {
				return nil, err
			}
			resp, err := http.Post(ts.URL+"/optimize", "application/json", bytes.NewReader(body))
			if err != nil {
				return nil, fmt.Errorf("feedback bench: %w", err)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return nil, fmt.Errorf("feedback bench: serve returned %d", resp.StatusCode)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer cancel()
		if err := srv.FeedbackSampler().Drain(ctx); err != nil {
			return nil, fmt.Errorf("feedback bench: %w", err)
		}
		return srv.FeedbackLedger().Snapshot(srv.FeedbackSampler()), nil
	}

	healthyDump, err := pass(healthy)
	if err != nil {
		return nil, err
	}
	degradedDump, err := pass(degraded)
	if err != nil {
		return nil, err
	}

	out := &FeedbackBench{
		Graph:        fmt.Sprintf("Star-%d (zipf %.1f)", n, zipfS),
		Relations:    n,
		Instances:    len(qs),
		Requests:     len(qs),
		Observations: healthyDump.Observations,
		Objects:      len(healthyDump.Objects),
		StaleObjects: healthyDump.StaleObjects,
	}
	if s := healthyDump.Sampler; s != nil {
		out.Sampled = s.Sampled
		out.Completed = s.Completed
		out.Failures = s.Failures
	}
	for _, o := range healthyDump.Objects {
		if o.QErrP95 > out.WorstQErrP95 {
			out.WorstQErrP95 = o.QErrP95
		}
		if o.Staleness > out.HealthyWorstStaleness {
			out.HealthyWorstStaleness = o.Staleness
		}
	}
	out.DegradedStaleObjects = degradedDump.StaleObjects
	for _, o := range degradedDump.Objects {
		if o.Staleness > out.DegradedWorstStaleness {
			out.DegradedWorstStaleness = o.Staleness
		}
	}
	return out, nil
}
