package span

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"sdpopt/internal/obs"
)

// FlightDump is the /debug/flight.json document: one recorder snapshot
// with active traces plus the notable and recent rings, newest first.
type FlightDump struct {
	Time    time.Time    `json:"time"`
	Config  FlightConfig `json:"config"`
	Counts  FlightCounts `json:"counts"`
	Active  []TraceJSON  `json:"active,omitempty"`
	Notable []TraceJSON  `json:"notable,omitempty"`
	Recent  []TraceJSON  `json:"recent,omitempty"`
}

// FlightConfig echoes the recorder sizing so a dump is self-describing.
type FlightConfig struct {
	Recent          int   `json:"recent"`
	Notable         int   `json:"notable"`
	SlowThresholdNS int64 `json:"slow_threshold_ns"`
}

// FlightCounts are the recorder's lifetime counters. Pinned counts traces
// filed into the notable ring by an explicit Pin call (e.g. worst-regret
// shadow traces), separate from the slow/errored self-pinning.
type FlightCounts struct {
	Started  int64 `json:"started"`
	Finished int64 `json:"finished"`
	Active   int64 `json:"active"`
	Slow     int64 `json:"slow"`
	Errored  int64 `json:"errored"`
	Pinned   int64 `json:"pinned,omitempty"`
}

// TraceJSON is one trace in a flight dump.
type TraceJSON struct {
	TraceID string    `json:"trace_id"`
	Remote  string    `json:"remote_parent,omitempty"`
	Start   time.Time `json:"start"`
	DurNS   int64     `json:"dur_ns"`
	Code    int       `json:"code"`
	Error   string    `json:"error,omitempty"`
	Slow    bool      `json:"slow,omitempty"`
	Active  bool      `json:"active,omitempty"`
	Root    *SpanJSON `json:"root"`
}

// SpanJSON is one span in a flight dump. StartNS is the offset from the
// trace start, so a tree renders without absolute timestamps per span.
type SpanJSON struct {
	Name     string           `json:"name"`
	ID       string           `json:"id"`
	StartNS  int64            `json:"start_ns"`
	DurNS    int64            `json:"dur_ns"`
	Running  bool             `json:"running,omitempty"`
	Error    string           `json:"error,omitempty"`
	Attrs    map[string]any   `json:"attrs,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Children []SpanJSON       `json:"children,omitempty"`
}

// ReadDump decodes a /debug/flight.json document.
func ReadDump(r io.Reader) (*FlightDump, error) {
	var d FlightDump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("span: decoding flight dump: %w", err)
	}
	return &d, nil
}

// Traces returns every trace in the dump — active, then notable, then
// recent — as one slice.
func (d *FlightDump) Traces() []TraceJSON {
	out := make([]TraceJSON, 0, len(d.Active)+len(d.Notable)+len(d.Recent))
	out = append(out, d.Active...)
	out = append(out, d.Notable...)
	out = append(out, d.Recent...)
	return out
}

// Records converts the dump's span trees into the flat obs.Record stream
// obs.Summarize consumes, so one flight dump feeds the same per-level and
// per-partition tables sdptrace prints for JSONL traces. Span names map to
// event types directly except "optimize", whose completion corresponds to
// the optimize.end event.
func (d *FlightDump) Records() []obs.Record {
	var out []obs.Record
	for _, t := range d.Traces() {
		if t.Root != nil {
			spanRecords(*t.Root, &out)
		}
	}
	return out
}

func spanRecords(s SpanJSON, out *[]obs.Record) {
	ev := s.Name
	if ev == "optimize" {
		ev = obs.EvOptimizeEnd
	}
	r := obs.Record{"ev": ev, "dur_ns": float64(s.DurNS)}
	for k, v := range s.Attrs {
		r[k] = coerce(v)
	}
	for k, v := range s.Counters {
		r[k] = float64(v)
	}
	if s.Error != "" {
		r["err"] = s.Error
	}
	*out = append(*out, r)
	for _, c := range s.Children {
		spanRecords(c, out)
	}
}

// coerce normalizes numeric attr values to float64, matching what a JSON
// round-trip produces, so Record.Num works on in-process dumps too.
func coerce(v any) any {
	switch n := v.(type) {
	case int:
		return float64(n)
	case int32:
		return float64(n)
	case int64:
		return float64(n)
	case uint64:
		return float64(n)
	case float32:
		return float64(n)
	case time.Duration:
		return float64(n)
	default:
		return v
	}
}

// Render formats the trace as an indented span tree with durations,
// attributes, and counters — the text form shown at /debug/requests and by
// `sdplab inspect`.
func (t *TraceJSON) Render() string {
	var b strings.Builder
	state := "done"
	switch {
	case t.Active:
		state = "active"
	case t.Error != "":
		state = "error"
	case t.Slow:
		state = "slow"
	}
	fmt.Fprintf(&b, "trace %s  %v  code=%d  %s", t.TraceID, time.Duration(t.DurNS).Round(time.Microsecond), t.Code, state)
	if t.Remote != "" {
		fmt.Fprintf(&b, "  remote-parent=%s", t.Remote)
	}
	b.WriteByte('\n')
	if t.Root != nil {
		renderSpan(&b, *t.Root, 1)
	}
	return b.String()
}

func renderSpan(b *strings.Builder, s SpanJSON, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(b, "%-4s %s  %v", "+"+time.Duration(s.StartNS).Round(time.Microsecond).String(), s.Name,
		time.Duration(s.DurNS).Round(time.Microsecond))
	if s.Running {
		b.WriteString(" (running)")
	}
	for _, k := range sortedKeys(s.Attrs) {
		fmt.Fprintf(b, "  %s=%s", k, attrString(s.Attrs[k]))
	}
	for _, k := range sortedInt64Keys(s.Counters) {
		fmt.Fprintf(b, "  %s=%d", k, s.Counters[k])
	}
	if s.Error != "" {
		fmt.Fprintf(b, "  err=%q", s.Error)
	}
	b.WriteByte('\n')
	// Children render in recorded order: engines attach level and worker
	// spans in canonical order, so the tree reads chronologically.
	for _, c := range s.Children {
		renderSpan(b, c, depth+1)
	}
}

func attrString(v any) string {
	if f, ok := v.(float64); ok && f == float64(int64(f)) {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%v", v)
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedInt64Keys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
