// Package span provides request-scoped hierarchical tracing for the
// optimizer: one trace per optimize request, one span per stage (queue
// wait, cache lookup, canonicalization, enumeration level, SDP partition,
// parallel worker), carried through the engine via context.Context.
//
// Spans observe, they never order: engines record what happened and when,
// but no span operation synchronizes goroutines or influences which plan
// is produced. The parallel enumeration engine's determinism contract
// (bit-for-bit identical plans at any worker count) must hold with tracing
// on, so worker spans are attached at the level barrier in fixed worker
// order rather than as workers finish.
//
// Like the rest of the obs layer, every method is a no-op on a nil
// receiver: FromContext returns nil when no span was installed, and the
// whole instrumented call graph then costs one nil check per site.
package span

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is one request's span tree plus its completion metadata. The root
// span is created by New or FromTraceparent; children hang off it via
// Child/ChildAt. A Trace is safe for concurrent use.
type Trace struct {
	id     string // 32 lowercase hex digits (W3C trace-id)
	remote string // remote parent span-id when ingested via traceparent
	start  time.Time
	root   *Span
	nextID atomic.Uint64

	mu   sync.Mutex
	code int           // HTTP-ish status set at Finish (0 while active)
	dur  time.Duration // wall time from start to Finish
	done bool
}

// Span is one timed stage within a trace. Attributes carry dimensions
// (technique, level, partition label), counters carry magnitudes (plans
// costed, classes created). A Span is safe for concurrent use, and all
// methods are no-ops on a nil receiver.
type Span struct {
	tr    *Trace
	id    uint64
	name  string
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	done     bool
	errMsg   string
	attrs    map[string]any
	counters map[string]int64
	children []*Span
}

// New starts a trace with a fresh random trace ID and returns its root
// span, named name.
func New(name string) *Span {
	return newTrace(randTraceID(), "", name)
}

// FromTraceparent starts a trace whose ID is taken from a W3C traceparent
// header (version 00: "00-<32 hex trace-id>-<16 hex parent-id>-<2 hex
// flags>"), so the caller can correlate our flight-recorder entry with its
// own trace. A missing or malformed header falls back to a fresh trace.
func FromTraceparent(header, name string) *Span {
	traceID, parentID, ok := parseTraceparent(header)
	if !ok {
		return New(name)
	}
	return newTrace(traceID, parentID, name)
}

func newTrace(traceID, remote, name string) *Span {
	t := &Trace{id: traceID, remote: remote, start: time.Now()}
	root := &Span{tr: t, id: t.nextID.Add(1), name: name, start: t.start}
	t.root = root
	return root
}

// randTraceID returns 16 random bytes as 32 lowercase hex digits.
func randTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; a
		// deterministic fallback keeps tracing functional regardless.
		copy(b[:], []byte("sdpoptfallbackid"))
	}
	return hex.EncodeToString(b[:])
}

// parseTraceparent validates a version-00 traceparent header and returns
// its trace-id and parent-id fields.
func parseTraceparent(s string) (traceID, parentID string, ok bool) {
	// 2 (version) + 1 + 32 (trace-id) + 1 + 16 (parent-id) + 1 + 2 (flags)
	if len(s) != 55 || s[0] != '0' || s[1] != '0' || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return "", "", false
	}
	traceID, parentID = s[3:35], s[36:52]
	if !isHex(traceID) || !isHex(parentID) || !isHex(s[53:55]) {
		return "", "", false
	}
	if allZero(traceID) || allZero(parentID) {
		return "", "", false
	}
	return traceID, parentID, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// ID returns the 32-hex-digit W3C trace ID ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Remote returns the ingested remote parent span ID, or "" when the trace
// was not started from a traceparent header.
func (t *Trace) Remote() string {
	if t == nil {
		return ""
	}
	return t.remote
}

// Start returns the trace start time (zero on nil).
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Root returns the root span (nil on nil).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Traceparent renders the header to echo back to the caller: our trace ID
// with the root span as parent-id, sampled flag set.
func (t *Trace) Traceparent() string {
	if t == nil {
		return ""
	}
	return fmt.Sprintf("00-%s-%016x-01", t.id, t.root.id)
}

// Finish marks the trace complete with an HTTP-ish status code. The first
// call wins; the duration is wall time since the trace started.
func (t *Trace) Finish(code int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.done {
		t.done = true
		t.code = code
		t.dur = time.Since(t.start)
	}
	t.mu.Unlock()
}

// Status returns the completion code and duration recorded by Finish, and
// whether Finish has run.
func (t *Trace) Status() (code int, dur time.Duration, done bool) {
	if t == nil {
		return 0, 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.code, t.dur, t.done
}

type ctxKey struct{}

// NewContext returns ctx carrying s. Installing a nil span returns ctx
// unchanged, so the disabled path stays allocation-free.
func NewContext(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil when tracing is off.
// A nil ctx is allowed and yields nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Trace returns the span's owning trace (nil on nil).
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.tr
}

// TraceID returns the owning trace's ID ("" on nil), the handle that links
// histogram exemplars and flight-recorder entries back to this request.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.tr.id
}

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Child starts a running child span; call Finish on it when the stage
// completes. Returns nil on a nil receiver.
func (s *Span) Child(name string) *Span {
	return s.childAt(name, time.Now(), 0, false)
}

// ChildAt records an already-completed child span after the fact — the
// shape engine barriers need: measure with two time.Time reads in the hot
// path, attach the span only once per level. Returns nil on nil.
func (s *Span) ChildAt(name string, start time.Time, d time.Duration) *Span {
	return s.childAt(name, start, d, true)
}

func (s *Span) childAt(name string, start time.Time, d time.Duration, done bool) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tr: s.tr, id: s.tr.nextID.Add(1), name: name, start: start, dur: d, done: done}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetAttr records a dimension on the span (last write per key wins).
func (s *Span) SetAttr(key string, v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = v
	s.mu.Unlock()
}

// Add increments a per-span counter by delta.
func (s *Span) Add(counter string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]int64, 4)
	}
	s.counters[counter] += delta
	s.mu.Unlock()
}

// SetError records an error message on the span without finishing it.
func (s *Span) SetError(msg string) {
	if s == nil || msg == "" {
		return
	}
	s.mu.Lock()
	s.errMsg = msg
	s.mu.Unlock()
}

// Finish closes the span; the first call fixes the duration.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.done {
		s.done = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// FinishErr closes the span, recording err's message when non-nil.
func (s *Span) FinishErr(err error) {
	if s == nil {
		return
	}
	if err != nil {
		s.SetError(err.Error())
	}
	s.Finish()
}

// snapshot converts the span subtree to its JSON form under the span
// locks. Running spans report elapsed time so far and Running=true.
func (s *Span) snapshot(traceStart, now time.Time) SpanJSON {
	s.mu.Lock()
	out := SpanJSON{
		Name:    s.name,
		ID:      fmt.Sprintf("%016x", s.id),
		StartNS: s.start.Sub(traceStart).Nanoseconds(),
		DurNS:   s.dur.Nanoseconds(),
		Running: !s.done,
		Error:   s.errMsg,
	}
	if !s.done {
		out.DurNS = now.Sub(s.start).Nanoseconds()
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.attrs))
		for k, v := range s.attrs {
			out.Attrs[k] = v
		}
	}
	if len(s.counters) > 0 {
		out.Counters = make(map[string]int64, len(s.counters))
		for k, v := range s.counters {
			out.Counters[k] = v
		}
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, c := range children {
		out.Children = append(out.Children, c.snapshot(traceStart, now))
	}
	return out
}
