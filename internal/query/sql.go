package query

import (
	"fmt"
	"strings"
)

// SQL renders the query as executable SQL text, using per-query aliases so
// the same catalog relation could appear in several queries of a workload.
// Implied predicates are omitted — they are an optimizer-internal closure,
// not user syntax.
func (q *Query) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT *\nFROM ")
	for i, r := range q.Rels {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s t%d", q.Cat.Relation(r).Name, i+1)
	}
	first := true
	for _, p := range q.Preds {
		if p.Implied {
			continue
		}
		if first {
			b.WriteString("\nWHERE ")
			first = false
		} else {
			b.WriteString("\n  AND ")
		}
		fmt.Fprintf(&b, "t%d.%s = t%d.%s",
			p.LeftRel+1, q.Relation(p.LeftRel).Cols[p.LeftCol].Name,
			p.RightRel+1, q.Relation(p.RightRel).Cols[p.RightCol].Name)
	}
	for _, f := range q.Filters {
		if first {
			b.WriteString("\nWHERE ")
			first = false
		} else {
			b.WriteString("\n  AND ")
		}
		fmt.Fprintf(&b, "t%d.%s < %d",
			f.Rel+1, q.Relation(f.Rel).Cols[f.Col].Name, f.Bound)
	}
	if q.OrderBy != nil {
		fmt.Fprintf(&b, "\nORDER BY t%d.%s",
			q.OrderBy.Rel+1, q.Relation(q.OrderBy.Rel).Cols[q.OrderBy.Col].Name)
	}
	b.WriteString(";")
	return b.String()
}
