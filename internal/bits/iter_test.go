package bits

import "testing"

// FuzzIterMatchesEach checks that the allocation-free Iter cursor and the
// resumable NextBit primitive visit exactly the members Each visits, in the
// same increasing order, for arbitrary sets.
func FuzzIterMatchesEach(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1))
	f.Add(uint64(0b1011))
	f.Add(^uint64(0))
	f.Add(uint64(1) << 63)
	f.Fuzz(func(t *testing.T, raw uint64) {
		s := Set(raw)
		var want []int
		s.Each(func(i int) { want = append(want, i) })

		var got []int
		for it := s.Iter(); ; {
			i, ok := it.Next()
			if !ok {
				break
			}
			got = append(got, i)
		}
		if len(got) != len(want) {
			t.Fatalf("Iter over %v yielded %d members, Each yielded %d", s, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("Iter over %v yielded %v, Each yielded %v", s, got, want)
			}
		}

		got = got[:0]
		for i := s.NextBit(0); i >= 0; i = s.NextBit(i + 1) {
			got = append(got, i)
		}
		if len(got) != len(want) {
			t.Fatalf("NextBit over %v yielded %d members, Each yielded %d", s, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("NextBit over %v yielded %v, Each yielded %v", s, got, want)
			}
		}
	})
}

func TestIterExhausted(t *testing.T) {
	var it Iter
	if i, ok := it.Next(); ok || i != -1 {
		t.Fatalf("zero Iter.Next() = %d, %v; want -1, false", i, ok)
	}
	if i, ok := it.Next(); ok || i != -1 {
		t.Fatalf("repeated Next() on exhausted Iter = %d, %v; want -1, false", i, ok)
	}
}

func TestNextBitBounds(t *testing.T) {
	s := Of(0, 5, 63)
	cases := []struct{ from, want int }{
		{-7, 0}, {0, 0}, {1, 5}, {5, 5}, {6, 63}, {63, 63}, {64, -1}, {200, -1},
	}
	for _, c := range cases {
		if got := s.NextBit(c.from); got != c.want {
			t.Errorf("NextBit(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if got := Set(0).NextBit(0); got != -1 {
		t.Errorf("empty NextBit(0) = %d, want -1", got)
	}
}
