package obs

import (
	"bytes"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

func TestFloatHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.FloatHistogram("sdpopt_test_ratio", nil) // RatioBuckets
	// Exact threshold values land at-or-below their bound (le semantics).
	for _, v := range []float64{1, 1.01, 2, 10, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if got := h.Sum(); got != 1014.01 {
		t.Fatalf("Sum = %g, want 1014.01", got)
	}
	// Cumulative counts at the paper's quality thresholds.
	counts := map[float64]int64{}
	cum := int64(0)
	for i, ub := range h.bounds {
		cum += h.buckets[i].Load()
		counts[ub] = cum
	}
	if counts[1.01] != 2 || counts[2] != 3 || counts[10] != 4 || counts[100] != 4 {
		t.Fatalf("cumulative counts = %v", counts)
	}
	if got := cum + h.buckets[len(h.bounds)].Load(); got != 5 {
		t.Fatalf("total incl. overflow = %d, want 5", got)
	}
}

func TestFloatHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.FloatHistogram(Label("sdpopt_test_ratio", "tech", "greedy"), []float64{1, 2})
	h.ObserveExemplar(1.5, "cafe")
	h.Observe(3)

	var om bytes.Buffer
	if err := r.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	out := om.String()
	for _, want := range []string{
		"# TYPE sdpopt_test_ratio histogram",
		`sdpopt_test_ratio_bucket{tech="greedy",le="2"} 1 # {trace_id="cafe"} 1.5`,
		`sdpopt_test_ratio_bucket{tech="greedy",le="+Inf"} 2`,
		`sdpopt_test_ratio_sum{tech="greedy"} 4.5`,
		`sdpopt_test_ratio_count{tech="greedy"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Classic exposition never carries the exemplar.
	var classic bytes.Buffer
	if err := r.WritePrometheus(&classic); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(classic.String(), "cafe") {
		t.Error("classic exposition leaked a float exemplar")
	}

	// Registry-wide exemplar view includes the float histogram.
	found := false
	for _, info := range r.Exemplars() {
		if info.TraceID == "cafe" && info.Value == "1.5" && info.LE == "2" {
			found = true
		}
	}
	if !found {
		t.Errorf("Registry.Exemplars() missing float exemplar: %+v", r.Exemplars())
	}

	// Nil safety.
	var nilH *FloatHistogram
	nilH.ObserveExemplar(1, "x")
	if nilH.Count() != 0 || nilH.Sum() != 0 || nilH.Exemplars() != nil {
		t.Error("nil FloatHistogram not inert")
	}
	var nilR *Registry
	if nilR.FloatHistogram("x", nil) != nil {
		t.Error("nil registry handed out a float histogram")
	}
}

func TestGaugeFuncAndBuildInfo(t *testing.T) {
	r := NewRegistry()
	v := int64(7)
	r.GaugeFunc("sdpopt_test_dynamic", func() int64 { return v })
	RegisterBuildInfo(r)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sdpopt_test_dynamic 7") {
		t.Errorf("gauge func missing:\n%s", out)
	}
	wantInfo := `sdpopt_build_info{version=` // full label set checked below
	if !strings.Contains(out, wantInfo) {
		t.Errorf("build info missing:\n%s", out)
	}
	if !strings.Contains(out, `goversion="`+runtime.Version()+`"`) {
		t.Errorf("goversion label missing:\n%s", out)
	}
	if !strings.Contains(out, `gomaxprocs="`+strconv.Itoa(runtime.GOMAXPROCS(0))+`"`) {
		t.Errorf("gomaxprocs label missing:\n%s", out)
	}
	if !strings.Contains(out, MProcessStart) || !strings.Contains(out, MUptime) {
		t.Errorf("process gauges missing:\n%s", out)
	}

	// The function is re-evaluated per scrape.
	v = 9
	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sdpopt_test_dynamic 9") {
		t.Errorf("gauge func not re-evaluated:\n%s", buf.String())
	}

	// Idempotent re-registration, nil safety.
	RegisterBuildInfo(r)
	RegisterBuildInfo(nil)
	var nilR *Registry
	nilR.GaugeFunc("x", func() int64 { return 1 })
}

func TestReadJSONLLenient(t *testing.T) {
	in := strings.Join([]string{
		`{"ev":"a"}`,
		`{"ev":"b"`, // truncated mid-write
		``,
		`not json at all`,
		`{"ev":"c"}`,
	}, "\n")
	var warn bytes.Buffer
	recs, skipped, err := ReadJSONLLenient(strings.NewReader(in), &warn)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || skipped != 2 {
		t.Fatalf("recs=%d skipped=%d, want 2/2", len(recs), skipped)
	}
	if recs[0].Ev() != "a" || recs[1].Ev() != "c" {
		t.Fatalf("records = %v", recs)
	}
	if !strings.Contains(warn.String(), "line 2") || !strings.Contains(warn.String(), "line 4") {
		t.Fatalf("warnings = %q", warn.String())
	}
	// Strict reader still aborts on the same input.
	if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
		t.Fatal("strict ReadJSONL accepted corrupt input")
	}
	// Nil warn writer is fine.
	if _, n, err := ReadJSONLLenient(strings.NewReader(in), nil); err != nil || n != 2 {
		t.Fatalf("nil-warn path: n=%d err=%v", n, err)
	}
}
