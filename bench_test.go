// Benchmarks regenerating every table and figure of the paper, one bench
// per artifact, plus micro-benchmarks of the optimizer substrate. Bench
// configurations use reduced sample sizes (and, where noted, reduced memory
// budgets) so a full -bench=. sweep completes in minutes; `sdplab run -exp
// <id>` runs the paper-scale versions with the same code.
package sdpopt_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"sdpopt"
	"sdpopt/internal/bits"
	"sdpopt/internal/cost"
	"sdpopt/internal/dp"
	"sdpopt/internal/harness"
	"sdpopt/internal/obs/span"
	"sdpopt/internal/skyline"
	"sdpopt/internal/workload"
)

// runExp is the shared driver: regenerate one paper artifact per iteration.
func runExp(b *testing.B, id string, cfg harness.Config) {
	b.Helper()
	e, err := harness.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	var out string
	for i := 0; i < b.N; i++ {
		out, err = e.Run(cfg)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	if out == "" {
		b.Fatalf("%s produced no output", id)
	}
}

// Table 1.1: plan quality on Star-Chain-15 (DP / IDP / SDP).
func BenchmarkTable11StarChain15Quality(b *testing.B) {
	runExp(b, "tab1.1", harness.Config{Instances: 3, Seed: 42})
}

// Table 1.2: optimization overheads on Star-Chain-15.
func BenchmarkTable12StarChain15Overheads(b *testing.B) {
	runExp(b, "tab1.2", harness.Config{Instances: 3, Seed: 42})
}

// Figure 1.2: plan quality vs optimization effort.
func BenchmarkFigure12QualityEffort(b *testing.B) {
	runExp(b, "fig1.2", harness.Config{Instances: 3, Seed: 42})
}

// Table 1.3: plan quality on the scaled Star-Chain-23.
func BenchmarkTable13StarChain23Quality(b *testing.B) {
	runExp(b, "tab1.3", harness.Config{Instances: 2, Seed: 42})
}

// Table 1.4: overheads on the scaled Star-Chain-23.
func BenchmarkTable14StarChain23Overheads(b *testing.B) {
	runExp(b, "tab1.4", harness.Config{Instances: 2, Seed: 42})
}

// Table 2.1: DP overheads, chain vs star. A 64 MB budget moves the star
// feasibility cliff inward (to ~13 relations) so the full sweep stays fast;
// the cliff's existence and the chain/star contrast are what the table
// demonstrates.
func BenchmarkTable21ChainVsStar(b *testing.B) {
	runExp(b, "tab2.1", harness.Config{Seed: 1, Budget: 64 << 20})
}

// Table 2.2: the worked multi-way skyline pruning example.
func BenchmarkTable22SkylineExample(b *testing.B) {
	runExp(b, "tab2.2", harness.Config{Seed: 1})
}

// Table 2.3: skyline Option 1 vs Option 2.
func BenchmarkTable23SkylineOptions(b *testing.B) {
	runExp(b, "tab2.3", harness.Config{Instances: 5, Seed: 1})
}

// Figures 2.2/2.3: the SDP iteration walkthrough.
func BenchmarkFigure22SDPIterations(b *testing.B) {
	runExp(b, "fig2.2", harness.Config{Seed: 1})
}

// Table 3.1: star plan quality at 15/20/23 relations.
func BenchmarkTable31StarQuality(b *testing.B) {
	runExp(b, "tab3.1", harness.Config{Instances: 2, Seed: 42})
}

// Table 3.2: star overheads at 15/20/23 relations.
func BenchmarkTable32StarOverheads(b *testing.B) {
	runExp(b, "tab3.2", harness.Config{Instances: 2, Seed: 42})
}

// Table 3.3: maximum star scaleup. A 96 MB budget shrinks every
// technique's frontier proportionally so the scan completes quickly while
// preserving the ordering DP < IDP(7) < IDP(4)/SDP.
func BenchmarkTable33MaxScaleup(b *testing.B) {
	runExp(b, "tab3.3", harness.Config{Seed: 3, Budget: 96 << 20})
}

// Table 3.4: ordered star plan quality.
func BenchmarkTable34OrderedStar(b *testing.B) {
	runExp(b, "tab3.4", harness.Config{Instances: 2, Seed: 42})
}

// Table 3.5: ordered star-chain plan quality.
func BenchmarkTable35OrderedStarChain(b *testing.B) {
	runExp(b, "tab3.5", harness.Config{Instances: 2, Seed: 42})
}

// Table 3.6: local vs global pruning on Star-Chain-20.
func BenchmarkTable36LocalVsGlobal(b *testing.B) {
	runExp(b, "tab3.6", harness.Config{Instances: 1, Seed: 42})
}

// Ablation: root-hub vs parent-hub partitioning.
func BenchmarkAblationPartitioning(b *testing.B) {
	runExp(b, "abl.part", harness.Config{Instances: 3, Seed: 42})
}

// Ablation: strong (k-dominant) skyline.
func BenchmarkAblationStrongSkyline(b *testing.B) {
	runExp(b, "abl.strong", harness.Config{Instances: 3, Seed: 42})
}

// Ablation: IDP plan-evaluation functions.
func BenchmarkAblationIDPEvals(b *testing.B) {
	runExp(b, "abl.idpeval", harness.Config{Instances: 3, Seed: 42})
}

// --- Substrate micro-benchmarks ---

func benchQueries(b *testing.B, topo sdpopt.Topology, n int) []*sdpopt.Query {
	b.Helper()
	qs, err := sdpopt.Instances(sdpopt.WorkloadSpec{
		Cat: sdpopt.PaperSchema(), Topology: topo, NumRelations: n, Seed: 9,
	}, 1)
	if err != nil {
		b.Fatal(err)
	}
	return qs
}

// BenchmarkOptimizeDPChain measures raw DPsize enumeration on hub-free
// graphs of growing size.
func BenchmarkOptimizeDPChain(b *testing.B) {
	for _, n := range []int{8, 16, 28} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			q := benchQueries(b, sdpopt.Chain, n)[0]
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := sdpopt.OptimizeDP(q, sdpopt.DPOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOptimizeParallelStar measures the level-synchronous parallel
// engine against its sequential baseline on a 15-relation star. Plans are
// identical by contract at every worker count, so the interesting number is
// wall time — expect ~1× on a single core and scaling with GOMAXPROCS
// beyond it.
func BenchmarkOptimizeParallelStar(b *testing.B) {
	q := benchQueries(b, sdpopt.Star, 15)[0]
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := sdpopt.OptimizeDP(q, sdpopt.DPOptions{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOptimizeSDPStar measures SDP on the hub-heavy workloads it was
// designed for.
func BenchmarkOptimizeSDPStar(b *testing.B) {
	for _, n := range []int{10, 15, 20} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			q := benchQueries(b, sdpopt.Star, n)[0]
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := sdpopt.OptimizeSDP(q, sdpopt.SDPOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOptimizeIDPStar measures IDP(7) on the same stars.
func BenchmarkOptimizeIDPStar(b *testing.B) {
	for _, n := range []int{10, 15} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			q := benchQueries(b, sdpopt.Star, n)[0]
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := sdpopt.OptimizeIDP(q, sdpopt.IDPDefaults()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSkyline compares the skyline algorithms on uniform random
// 3-D points at the partition sizes SDP sees.
func BenchmarkSkyline(b *testing.B) {
	for _, n := range []int{16, 128, 1024} {
		rng := rand.New(rand.NewSource(1))
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		}
		b.Run(fmt.Sprintf("BNL/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				skyline.BNL(pts)
			}
		})
		b.Run(fmt.Sprintf("SFS/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				skyline.SFS(pts)
			}
		})
		b.Run(fmt.Sprintf("Disjunctive/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				skyline.DisjunctivePairwise(pts, skyline.RCSPairs)
			}
		})
	}
}

// BenchmarkCostModel measures the per-join costing hot path.
func BenchmarkCostModel(b *testing.B) {
	qs, err := workload.Instances(workload.Spec{
		Cat: workload.PaperSchema(), Topology: workload.StarChain, NumRelations: 15, Seed: 9,
	}, 1)
	if err != nil {
		b.Fatal(err)
	}
	q := qs[0]
	m := cost.NewModel(q, cost.DefaultParams())
	outer := m.AccessPaths(0)[0]
	inner := m.AccessPaths(1)[0]
	preds := q.PredsBetween(outer.Rels, inner.Rels)
	rows := m.JoinRows(outer.Rels, inner.Rels, outer.Rows, inner.Rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.JoinPlans(cost.JoinInputs{Outer: outer, Inner: inner, Preds: preds, Rows: rows})
	}
}

// BenchmarkEnumerationOnly isolates the DP engine's pair-enumeration and
// memoization machinery on a 12-relation star, comparing the retained
// naive generate-and-filter reference scan, the adjacency-indexed walk,
// and the default DPccp csg-cmp enumeration. Each sub-bench reports how
// many candidate pairs one optimization considers; CI runs the trio as a
// regression guard (indexed failing to beat 110 % of the naive time, or
// ccp failing to stay within 110 % of the indexed time, fails the build).
func BenchmarkEnumerationOnly(b *testing.B) {
	qs, err := workload.Instances(workload.Spec{
		Cat: workload.PaperSchema(), Topology: workload.Star, NumRelations: 12, Seed: 9,
	}, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name string
		opts dp.Options
	}{
		{"naive", dp.Options{Enum: dp.EnumNaive}},
		{"indexed", dp.Options{Enum: dp.EnumIndexed}},
		{"ccp", dp.Options{}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			var st dp.Stats
			for i := 0; i < b.N; i++ {
				var err error
				if _, st, err = dp.Optimize(qs[0], bc.opts); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.PairsConsidered), "pairs/op")
		})
	}
}

// BenchmarkNeighbors measures query.Query.Neighbors, the inner call of the
// adjacency-indexed walk: the single-bit short-circuit (a level-1 class,
// one table lookup) against the general multi-bit union.
func BenchmarkNeighbors(b *testing.B) {
	q := benchQueries(b, sdpopt.StarChain, 15)[0]
	single := bits.Of(3)
	multi := bits.Of(0, 2, 5, 9, 12)
	b.Run("single-bit", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink = q.Neighbors(single).Hash()
		}
	})
	b.Run("multi-bit", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink = q.Neighbors(multi).Hash()
		}
	})
}

// sink defeats dead-code elimination in micro-benchmarks.
var sink uint64

// BenchmarkOptimizeCached measures the plan cache's three serving regimes
// on a Star-10 SDP optimization: miss (cleared cache, each iteration pays
// optimization plus insertion), hit (warmed cache, each iteration is a
// lookup), and contention (parallel goroutines hammering one warmed key —
// the shard-lock hot path).
func BenchmarkOptimizeCached(b *testing.B) {
	q := benchQueries(b, sdpopt.Star, 10)[0]
	ctx := context.Background()
	b.Run("miss", func(b *testing.B) {
		pc := sdpopt.NewPlanCache(sdpopt.PlanCacheOptions{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pc.Clear()
			if _, _, cached, err := sdpopt.OptimizeCached(ctx, pc, q, "sdp", 0); err != nil {
				b.Fatal(err)
			} else if cached {
				b.Fatal("cleared cache served a hit")
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		pc := sdpopt.NewPlanCache(sdpopt.PlanCacheOptions{})
		if _, _, _, err := sdpopt.OptimizeCached(ctx, pc, q, "sdp", 0); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, cached, err := sdpopt.OptimizeCached(ctx, pc, q, "sdp", 0); err != nil {
				b.Fatal(err)
			} else if !cached {
				b.Fatal("warmed cache missed")
			}
		}
	})
	b.Run("contention", func(b *testing.B) {
		pc := sdpopt.NewPlanCache(sdpopt.PlanCacheOptions{})
		if _, _, _, err := sdpopt.OptimizeCached(ctx, pc, q, "sdp", 0); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, _, cached, err := sdpopt.OptimizeCached(ctx, pc, q, "sdp", 0); err != nil {
					b.Fatal(err)
				} else if !cached {
					b.Fatal("warmed cache missed")
				}
			}
		})
	})
}

// BenchmarkOptimizeTracing is the span-tracing overhead guard: the same
// Star-12 SDP optimization with a bare context ("off") and under a full
// request span recorded into a flight recorder ("on"), the way the server
// traces it. Spans attach at level barriers, not inside the enumeration
// hot loop, so the two variants must stay within noise of each other; CI
// runs both at -benchtime=1x as a smoke check, and `sdplab bench` records
// the full comparison in BENCH_<date>.json.
func BenchmarkOptimizeTracing(b *testing.B) {
	q := benchQueries(b, sdpopt.Star, 12)[0]
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := sdpopt.OptimizeSDP(q, sdpopt.SDPOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		rec := span.NewRecorder(span.RecorderOptions{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			root := span.New("request")
			rec.Start(root)
			opts := sdpopt.SDPOptions()
			opts.Ctx = span.NewContext(context.Background(), root)
			if _, _, err := sdpopt.OptimizeSDP(q, opts); err != nil {
				b.Fatal(err)
			}
			rec.Finish(root, 200)
		}
	})
}

// Comparison of all optimizer families (DP, IDP, SDP, GOO, II, SA, GEQO).
func BenchmarkAblationPriorArt(b *testing.B) {
	runExp(b, "abl.prior", harness.Config{Instances: 2, Seed: 42})
}

// Ablation: IDP1 vs IDP2 block strategies.
func BenchmarkAblationIDP2(b *testing.B) {
	runExp(b, "abl.idp2", harness.Config{Instances: 2, Seed: 42})
}

// Extension: cycle and clique topologies.
func BenchmarkExtTopologies(b *testing.B) {
	runExp(b, "ext.topo", harness.Config{Instances: 2, Seed: 42})
}

// Extension: TPC-H query shapes.
func BenchmarkExtTPCH(b *testing.B) {
	runExp(b, "ext.tpch", harness.Config{Seed: 42})
}

// Extension: executor validation.
func BenchmarkExtValidate(b *testing.B) {
	runExp(b, "ext.validate", harness.Config{Seed: 42})
}

// Ablation: bushy vs left-deep enumeration.
func BenchmarkAblationBushy(b *testing.B) {
	runExp(b, "abl.bushy", harness.Config{Instances: 2, Seed: 42})
}

// Extension: filter selectivity estimation accuracy.
func BenchmarkExtEstimation(b *testing.B) {
	runExp(b, "ext.esterr", harness.Config{Instances: 3, Seed: 42})
}
