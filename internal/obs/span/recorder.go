package span

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"sdpopt/internal/obs"
)

// RecorderOptions sizes the flight recorder.
type RecorderOptions struct {
	// Recent is the ring capacity for ordinary completed traces (default
	// 64).
	Recent int
	// Notable is the separate ring capacity for pinned traces — those
	// slower than SlowThreshold or ending in error / HTTP >= 400 (default
	// 64). A separate ring means a burst of fast traffic can never evict
	// the one slow request being debugged.
	Notable int
	// SlowThreshold pins traces at or above this duration (default 1s).
	SlowThreshold time.Duration
}

func (o RecorderOptions) withDefaults() RecorderOptions {
	if o.Recent <= 0 {
		o.Recent = 64
	}
	if o.Notable <= 0 {
		o.Notable = 64
	}
	if o.SlowThreshold <= 0 {
		o.SlowThreshold = time.Second
	}
	return o
}

// Recorder is the flight recorder: it tracks in-flight traces and retains
// two fixed-size rings of completed ones — the last Recent ordinary traces
// plus the last Notable slow/error traces, which are pinned in their own
// ring so ordinary traffic cannot push them out. Safe for concurrent use;
// nil-safe like the rest of the span API.
type Recorder struct {
	opts RecorderOptions

	mu          sync.Mutex
	active      map[*Trace]struct{}
	recent      []*Trace
	recentHead  int
	notable     []*Trace
	notableHead int

	started  int64
	finished int64
	slow     int64
	errored  int64
	pinned   int64
}

// NewRecorder returns a flight recorder with the given ring sizes.
func NewRecorder(o RecorderOptions) *Recorder {
	return &Recorder{
		opts:   o.withDefaults(),
		active: make(map[*Trace]struct{}),
	}
}

// SlowThreshold returns the pinning threshold.
func (r *Recorder) SlowThreshold() time.Duration {
	if r == nil {
		return 0
	}
	return r.opts.SlowThreshold
}

// Start registers a trace as in-flight so it shows up live at
// /debug/requests. No-op on a nil recorder or span.
func (r *Recorder) Start(root *Span) {
	if r == nil || root == nil {
		return
	}
	r.mu.Lock()
	r.active[root.tr] = struct{}{}
	r.started++
	r.mu.Unlock()
}

// Finish completes a trace with an HTTP-ish status code and files it into
// the recent or notable ring. The trace is finished here if the caller
// has not already done so.
func (r *Recorder) Finish(root *Span, code int) {
	if r == nil || root == nil {
		return
	}
	t := root.tr
	root.Finish()
	t.Finish(code)
	_, dur, _ := t.Status()
	isErr := code >= 400
	isSlow := dur >= r.opts.SlowThreshold

	r.mu.Lock()
	delete(r.active, t)
	r.finished++
	if isErr {
		r.errored++
	}
	if isSlow {
		r.slow++
	}
	if isErr || isSlow {
		r.notable, r.notableHead = ringPush(r.notable, r.notableHead, r.opts.Notable, t)
	} else {
		r.recent, r.recentHead = ringPush(r.recent, r.recentHead, r.opts.Recent, t)
	}
	r.mu.Unlock()
}

// Pin completes a trace and files it unconditionally into the notable
// ring, regardless of duration or status code — the hook for traces that
// are notable on a dimension the recorder cannot see itself, such as a
// shadow optimization that exposed high plan-quality regret. The trace
// need not have been Started; when it was, Pin removes it from the active
// set. No-op on a nil recorder or span.
func (r *Recorder) Pin(root *Span, code int) {
	if r == nil || root == nil {
		return
	}
	t := root.tr
	root.Finish()
	t.Finish(code)
	r.mu.Lock()
	delete(r.active, t)
	r.pinned++
	r.notable, r.notableHead = ringPush(r.notable, r.notableHead, r.opts.Notable, t)
	r.mu.Unlock()
}

// ringPush appends t to a fixed-capacity ring, overwriting the oldest
// entry once full.
func ringPush(ring []*Trace, head, capacity int, t *Trace) ([]*Trace, int) {
	if len(ring) < capacity {
		return append(ring, t), head
	}
	ring[head] = t
	return ring, (head + 1) % capacity
}

// ringNewest returns the ring's traces newest-first.
func ringNewest(ring []*Trace, head int) []*Trace {
	out := make([]*Trace, 0, len(ring))
	for i := 0; i < len(ring); i++ {
		// head is the oldest slot once the ring has wrapped; walking
		// backwards from head-1 yields newest-first either way.
		j := (head - 1 - i + 2*len(ring)) % len(ring)
		out = append(out, ring[j])
	}
	return out
}

// Snapshot serializes the recorder state — active traces first, then the
// notable and recent rings newest-first — into the /debug/flight.json
// document.
func (r *Recorder) Snapshot() *FlightDump {
	if r == nil {
		return &FlightDump{}
	}
	now := time.Now()
	r.mu.Lock()
	d := &FlightDump{
		Time: now,
		Config: FlightConfig{
			Recent:          r.opts.Recent,
			Notable:         r.opts.Notable,
			SlowThresholdNS: r.opts.SlowThreshold.Nanoseconds(),
		},
		Counts: FlightCounts{
			Started:  r.started,
			Finished: r.finished,
			Active:   int64(len(r.active)),
			Slow:     r.slow,
			Errored:  r.errored,
			Pinned:   r.pinned,
		},
	}
	active := make([]*Trace, 0, len(r.active))
	for t := range r.active {
		active = append(active, t)
	}
	notable := ringNewest(r.notable, r.notableHead)
	recent := ringNewest(r.recent, r.recentHead)
	r.mu.Unlock()

	// Serialization happens outside the recorder lock: each trace takes
	// its own span locks, so concurrent request traffic is never blocked
	// on a debug-page render.
	sort.Slice(active, func(i, j int) bool { return active[i].start.Before(active[j].start) })
	for _, t := range active {
		d.Active = append(d.Active, traceJSON(t, now, r.opts.SlowThreshold))
	}
	for _, t := range notable {
		d.Notable = append(d.Notable, traceJSON(t, now, r.opts.SlowThreshold))
	}
	for _, t := range recent {
		d.Recent = append(d.Recent, traceJSON(t, now, r.opts.SlowThreshold))
	}
	return d
}

func traceJSON(t *Trace, now time.Time, slowAt time.Duration) TraceJSON {
	code, dur, done := t.Status()
	out := TraceJSON{
		TraceID: t.id,
		Remote:  t.remote,
		Start:   t.start,
		Code:    code,
		Active:  !done,
	}
	if !done {
		dur = now.Sub(t.start)
	}
	out.DurNS = dur.Nanoseconds()
	out.Slow = done && dur >= slowAt
	root := t.root.snapshot(t.start, now)
	out.Root = &root
	if root.Error != "" {
		out.Error = root.Error
	}
	return out
}

// FlightHandler serves the recorder state as JSON at /debug/flight.json.
func (r *Recorder) FlightHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
}

// RequestsHandler serves the human debug page at /debug/requests: live
// requests, pinned slow/error traces, and recent history, each rendered as
// an indented span tree (in the spirit of x/net/trace). When reg is
// non-nil the page also lists latency-histogram exemplars, linking extreme
// buckets back to the trace that landed in them.
func (r *Recorder) RequestsHandler(reg *obs.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		d := r.Snapshot()
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		var b strings.Builder
		b.WriteString("<!DOCTYPE html><html><head><title>/debug/requests</title><style>\n")
		b.WriteString("body{font-family:sans-serif;margin:1em 2em}pre{background:#f6f8fa;padding:0.8em;overflow-x:auto}\n")
		b.WriteString("h2{border-bottom:1px solid #ccc;padding-bottom:0.2em}.slow{color:#b35c00}.err{color:#b00020}\n")
		b.WriteString("table{border-collapse:collapse}td,th{padding:0.15em 0.8em;text-align:left}\n")
		b.WriteString("</style></head><body>\n<h1>sdpopt flight recorder</h1>\n")
		fmt.Fprintf(&b, "<p>%d started, %d finished, %d active · %d slow (&ge; %v) · %d errored · %d pinned · rings: %d recent + %d notable</p>\n",
			d.Counts.Started, d.Counts.Finished, d.Counts.Active, d.Counts.Slow,
			time.Duration(d.Config.SlowThresholdNS), d.Counts.Errored, d.Counts.Pinned, d.Config.Recent, d.Config.Notable)
		b.WriteString("<p><a href=\"/debug/flight.json\">flight.json</a> · <a href=\"/metrics\">metrics</a></p>\n")

		if reg != nil {
			if exs := reg.Exemplars(); len(exs) > 0 {
				b.WriteString("<h2>Latency exemplars</h2>\n<table><tr><th>histogram</th><th>&le; bucket</th><th>value</th><th>trace</th></tr>\n")
				for _, ex := range exs {
					fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%v</td><td><code>%s</code></td></tr>\n",
						html.EscapeString(ex.Metric), html.EscapeString(ex.LE), ex.Value, html.EscapeString(ex.TraceID))
				}
				b.WriteString("</table>\n")
			}
		}

		section := func(title string, traces []TraceJSON) {
			fmt.Fprintf(&b, "<h2>%s (%d)</h2>\n", html.EscapeString(title), len(traces))
			if len(traces) == 0 {
				b.WriteString("<p>none</p>\n")
				return
			}
			for i := range traces {
				t := &traces[i]
				class := ""
				switch {
				case t.Code >= 400 || t.Error != "":
					class = " class=\"err\""
				case t.Slow:
					class = " class=\"slow\""
				}
				fmt.Fprintf(&b, "<h3%s><code>%s</code> · %v · code %d</h3>\n<pre>%s</pre>\n",
					class, html.EscapeString(t.TraceID), time.Duration(t.DurNS), t.Code,
					html.EscapeString(t.Render()))
			}
		}
		section("Active", d.Active)
		section("Slow / errored (pinned)", d.Notable)
		section("Recent", d.Recent)
		b.WriteString("</body></html>\n")
		w.Write([]byte(b.String()))
	})
}
