package ce

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sdpopt/internal/core"
	"sdpopt/internal/dp"
	"sdpopt/internal/greedy"
	"sdpopt/internal/idp"
	"sdpopt/internal/plan"
	"sdpopt/internal/query"
	"sdpopt/internal/workload"
)

// The golden corpus pins the optimizer's observable behavior under the
// default (catalog) estimator: exact plan trees with bit-level costs and
// cardinalities, plus every enumeration counter. The testdata file was
// generated against the pre-refactor cost model (before the Estimator
// interface existed), so a passing run proves the extraction changed no
// plan, no cost, and no counter. Regenerate with:
//
//	go test ./internal/ce -run TestGoldenDefaultEstimator -update
var updateGolden = flag.Bool("update", false, "rewrite golden testdata from current behavior")

const goldenPath = "testdata/golden_estimator.json"

type goldenEntry struct {
	Graph           string `json:"graph"`
	Tech            string `json:"tech"`
	Instance        int    `json:"instance"`
	Plan            string `json:"plan"`
	PlansCosted     int64  `json:"plans_costed"`
	PairsConsidered int64  `json:"pairs_considered"`
	PairsConnected  int64  `json:"pairs_connected"`
	ClassesCreated  int64  `json:"classes_created"`
}

// planSig serializes a plan tree canonically, with costs and cardinalities
// as raw float64 bits so any numeric drift — even below formatting
// precision — fails the comparison.
func planSig(p *plan.Plan) string {
	var b strings.Builder
	writeSig(&b, p)
	return b.String()
}

func writeSig(b *strings.Builder, p *plan.Plan) {
	if p == nil {
		b.WriteString("_")
		return
	}
	fmt.Fprintf(b, "(%d", int(p.Op))
	if p.Op.IsScan() {
		fmt.Fprintf(b, " r%d", p.Rel)
	}
	fmt.Fprintf(b, " o%d c%016x n%016x", p.Order, math.Float64bits(p.Cost), math.Float64bits(p.Rows))
	if p.Left != nil || p.Right != nil {
		b.WriteString(" ")
		writeSig(b, p.Left)
		b.WriteString(" ")
		writeSig(b, p.Right)
	}
	b.WriteString(")")
}

func goldenCorpus(t *testing.T) map[string][]*query.Query {
	t.Helper()
	cat := workload.PaperSchema()
	specs := []workload.Spec{
		{Cat: cat, Topology: workload.Chain, NumRelations: 8, Seed: 77},
		{Cat: cat, Topology: workload.Star, NumRelations: 9, Seed: 77},
		{Cat: cat, Topology: workload.Cycle, NumRelations: 8, Seed: 77},
		{Cat: cat, Topology: workload.StarChain, NumRelations: 9, Seed: 77},
	}
	corpus := make(map[string][]*query.Query)
	for _, spec := range specs {
		qs, err := workload.Instances(spec, 3)
		if err != nil {
			t.Fatalf("corpus %v-%d: %v", spec.Topology, spec.NumRelations, err)
		}
		corpus[fmt.Sprintf("%v-%d", spec.Topology, spec.NumRelations)] = qs
	}
	return corpus
}

func goldenTechniques() []struct {
	name string
	run  func(q *query.Query) (*plan.Plan, dp.Stats, error)
} {
	return []struct {
		name string
		run  func(q *query.Query) (*plan.Plan, dp.Stats, error)
	}{
		{"dp", func(q *query.Query) (*plan.Plan, dp.Stats, error) {
			return dp.Optimize(q, dp.Options{})
		}},
		{"sdp", func(q *query.Query) (*plan.Plan, dp.Stats, error) {
			return core.Optimize(q, core.DefaultOptions())
		}},
		{"idp2", func(q *query.Query) (*plan.Plan, dp.Stats, error) {
			return idp.Optimize2(q, idp.DefaultOptions())
		}},
		{"greedy", func(q *query.Query) (*plan.Plan, dp.Stats, error) {
			return greedy.Optimize(q, greedy.Options{})
		}},
	}
}

func collectGolden(t *testing.T) []goldenEntry {
	t.Helper()
	corpus := goldenCorpus(t)
	graphs := make([]string, 0, len(corpus))
	for g := range corpus {
		graphs = append(graphs, g)
	}
	// Deterministic file order.
	for i := 0; i < len(graphs); i++ {
		for j := i + 1; j < len(graphs); j++ {
			if graphs[j] < graphs[i] {
				graphs[i], graphs[j] = graphs[j], graphs[i]
			}
		}
	}
	var out []goldenEntry
	for _, g := range graphs {
		for _, tech := range goldenTechniques() {
			for i, q := range corpus[g] {
				p, st, err := tech.run(q)
				if err != nil {
					t.Fatalf("%s/%s[%d]: %v", g, tech.name, i, err)
				}
				out = append(out, goldenEntry{
					Graph:           g,
					Tech:            tech.name,
					Instance:        i,
					Plan:            planSig(p),
					PlansCosted:     st.PlansCosted,
					PairsConsidered: st.PairsConsidered,
					PairsConnected:  st.PairsConnected,
					ClassesCreated:  st.Memo.ClassesCreated,
				})
			}
		}
	}
	return out
}

func TestGoldenDefaultEstimator(t *testing.T) {
	got := collectGolden(t)
	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden entries to %s", len(got), goldenPath)
		return
	}
	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	var want []goldenEntry
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("golden corpus size changed: got %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("golden mismatch at %s/%s[%d]:\n got %+v\nwant %+v",
				want[i].Graph, want[i].Tech, want[i].Instance, got[i], want[i])
		}
	}
}
