// Package testutil builds deterministic query fixtures shared by the
// optimizer packages' tests.
package testutil

import (
	"fmt"

	"sdpopt/internal/catalog"
	"sdpopt/internal/query"
)

// Catalog returns a deterministic synthetic catalog with n relations and 24
// columns each, mirroring the paper's schema shape.
func Catalog(n int) *catalog.Catalog {
	cfg := catalog.DefaultConfig()
	cfg.NumRelations = n
	return catalog.MustSynthetic(cfg)
}

// Query builds a query over catalog relations 0..n-1 with one predicate per
// edge. Each relation spends a fresh column on every incident edge, so no
// implied edges arise unless the caller wants them.
func Query(cat *catalog.Catalog, n int, edges []query.Edge, orderBy *query.OrderSpec) (*query.Query, error) {
	rels := make([]int, n)
	for i := range rels {
		rels[i] = i
	}
	used := make([]int, n)
	nextCol := func(rel int) (int, error) {
		c := used[rel]
		if c >= len(cat.Relation(rel).Cols) {
			return 0, fmt.Errorf("testutil: relation %d has too many incident edges", rel)
		}
		used[rel]++
		return c, nil
	}
	preds := make([]query.Pred, len(edges))
	for i, e := range edges {
		lc, err := nextCol(e.A)
		if err != nil {
			return nil, err
		}
		rc, err := nextCol(e.B)
		if err != nil {
			return nil, err
		}
		preds[i] = query.Pred{LeftRel: e.A, LeftCol: lc, RightRel: e.B, RightCol: rc}
	}
	return query.New(cat, rels, preds, orderBy)
}

// MustQuery is Query that panics on error, for fixtures known to be valid.
func MustQuery(cat *catalog.Catalog, n int, edges []query.Edge, orderBy *query.OrderSpec) *query.Query {
	q, err := Query(cat, n, edges, orderBy)
	if err != nil {
		panic(err)
	}
	return q
}
