package harness

import "fmt"

// Experiment binds a paper artifact id to its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) (string, error)
}

// Registry lists every reproducible table and figure, in paper order, plus
// the extra ablations.
var Registry = []Experiment{
	{"tab1.1", "Plan quality, Star-Chain-15 (DP / IDP / SDP)", Table11},
	{"tab1.2", "Optimization overheads, Star-Chain-15", Table12},
	{"fig1.2", "Plan quality vs optimization effort", Figure12},
	{"tab1.3", "Plan quality, scaled Star-Chain-23", Table13},
	{"tab1.4", "Overheads, scaled Star-Chain-23", Table14},
	{"tab2.1", "DP overheads: chain vs star", Table21},
	{"tab2.2", "Worked multi-way skyline pruning example", Table22},
	{"tab2.3", "Skyline Option 1 vs Option 2", Table23},
	{"fig2.2", "SDP iteration walkthrough (Figures 2.2/2.3)", Figure22},
	{"tab3.1", "Star plan quality, 15/20/23 relations", Table31},
	{"tab3.2", "Star overheads, 15/20/23 relations", Table32},
	{"tab3.3", "Maximum star scaleup", Table33},
	{"tab3.4", "Ordered star plan quality", Table34},
	{"tab3.5", "Ordered star-chain plan quality", Table35},
	{"tab3.6", "Local vs global pruning, Star-Chain-20", Table36},
	{"abl.part", "Ablation: root-hub vs parent-hub partitioning", AblationPartitioning},
	{"abl.strong", "Ablation: strong (k-dominant) skyline", AblationStrongSkyline},
	{"abl.idpeval", "Ablation: IDP plan-evaluation functions", AblationIDPEvals},
	{"abl.prior", "Comparison: all optimizer families (DP/IDP/SDP/GOO/II/SA/GEQO)", AblationPriorArt},
	{"abl.idp2", "Ablation: IDP1 vs IDP2 block strategies", AblationIDP2},
	{"ext.topo", "Extension: cycle and clique topologies", ExtTopologies},
	{"ext.tpch", "Extension: TPC-H query shapes (Q2/Q5/Q8/Q9/Q10)", ExtTPCH},
	{"ext.validate", "Extension: executor validation (estimates vs reality)", ExtValidate},
	{"abl.bushy", "Ablation: bushy vs left-deep enumeration", AblationBushy},
	{"ext.esterr", "Extension: filter selectivity estimation accuracy", ExtEstimation},
}

// Lookup returns the experiment with the given id.
func Lookup(id string) (Experiment, error) {
	for _, e := range Registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q (try: sdplab list)", id)
}
