package core

import (
	"testing"

	"sdpopt/internal/obs"
	"sdpopt/internal/query"
)

func TestObservedPartitionEvents(t *testing.T) {
	sink := &obs.MemSink{}
	ob := obs.New(sink)
	q := fixture(t, 9, query.StarEdges(9), nil)
	opts := DefaultOptions()
	opts.Obs = ob
	if _, _, err := Optimize(q, opts); err != nil {
		t.Fatalf("Optimize: %v", err)
	}

	parts := sink.ByType(obs.EvSDPPartition)
	if len(parts) == 0 {
		t.Fatal("no sdp.partition events on a 9-relation star")
	}
	for _, e := range parts {
		size, _ := e.Attrs["size"].(int)
		surv, _ := e.Attrs["survivors"].(int)
		if size <= 0 || surv <= 0 || surv > size {
			t.Fatalf("partition event attrs out of range: %v", e.Attrs)
		}
		// Under Option2, each survivor is on at least one pairwise skyline,
		// so the per-criterion counts must bound the union count.
		rc, _ := e.Attrs["rc"].(int)
		cs, _ := e.Attrs["cs"].(int)
		rs, _ := e.Attrs["rs"].(int)
		if rc+cs+rs < surv {
			t.Fatalf("criterion counts %d+%d+%d cannot cover %d survivors", rc, cs, rs, surv)
		}
	}

	levels := sink.ByType(obs.EvSDPLevel)
	if len(levels) == 0 {
		t.Fatal("no sdp.level events")
	}
	for _, e := range levels {
		if _, ok := e.Payload.(*LevelTrace); !ok {
			t.Fatalf("sdp.level payload is %T, want *LevelTrace", e.Payload)
		}
	}

	cand := ob.Counter(obs.MSkylineCandidates).Value()
	all := ob.Counter(obs.Label(obs.MSkylineSurvivors, "criterion", "all")).Value()
	if cand == 0 || all == 0 || all > cand {
		t.Errorf("skyline counters: candidates=%d survivors=%d", cand, all)
	}
	rc := ob.Counter(obs.Label(obs.MSkylineSurvivors, "criterion", "RC")).Value()
	if rc == 0 || rc > cand {
		t.Errorf("RC survivor counter = %d (candidates %d)", rc, cand)
	}
}

func TestTraceViaEventsMatchesDirectTrace(t *testing.T) {
	// The legacy Trace is fed by the event stream; with or without an
	// explicit observer it must record the same pruning.
	q := fixture(t, 9, query.StarEdges(9), nil)

	optsA := DefaultOptions()
	optsA.Trace = &Trace{}
	if _, _, err := Optimize(q, optsA); err != nil {
		t.Fatalf("Optimize with Trace: %v", err)
	}

	optsB := DefaultOptions()
	optsB.Trace = &Trace{}
	optsB.Obs = obs.New(&obs.MemSink{})
	if _, _, err := Optimize(q, optsB); err != nil {
		t.Fatalf("Optimize with Trace+Obs: %v", err)
	}

	a, b := optsA.Trace, optsB.Trace
	if len(a.Levels) == 0 || len(a.Levels) != len(b.Levels) {
		t.Fatalf("trace levels: %d vs %d (want equal, nonzero)", len(a.Levels), len(b.Levels))
	}
	for i := range a.Levels {
		la, lb := a.Levels[i], b.Levels[i]
		if la.Level != lb.Level || len(la.Pruned) != len(lb.Pruned) || len(la.Survivors) != len(lb.Survivors) {
			t.Errorf("level %d traces differ: %d/%d pruned, %d/%d survivors",
				la.Level, len(la.Pruned), len(lb.Pruned), len(la.Survivors), len(lb.Survivors))
		}
	}
}
