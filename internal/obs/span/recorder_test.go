package span_test

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sdpopt/internal/obs/span"
)

// finishTrace runs one trivial trace through rec with the given code.
func finishTrace(rec *span.Recorder, code int) *span.Span {
	root := span.New("request")
	rec.Start(root)
	rec.Finish(root, code)
	return root
}

func TestRingWraparound(t *testing.T) {
	rec := span.NewRecorder(span.RecorderOptions{Recent: 3, SlowThreshold: time.Hour})
	var ids []string
	for i := 0; i < 5; i++ {
		ids = append(ids, finishTrace(rec, 200).TraceID())
	}
	d := rec.Snapshot()
	if len(d.Recent) != 3 {
		t.Fatalf("recent ring holds %d, want 3", len(d.Recent))
	}
	// Newest first: traces 4, 3, 2; 0 and 1 were overwritten.
	for i, want := range []string{ids[4], ids[3], ids[2]} {
		if d.Recent[i].TraceID != want {
			t.Errorf("recent[%d] = %s, want %s", i, d.Recent[i].TraceID, want)
		}
	}
	if d.Counts.Started != 5 || d.Counts.Finished != 5 || d.Counts.Active != 0 {
		t.Errorf("counts = %+v", d.Counts)
	}
}

// TestPinningPrecedence checks slow and error traces land in the notable
// ring, where a later flood of fast successes cannot evict them.
func TestPinningPrecedence(t *testing.T) {
	rec := span.NewRecorder(span.RecorderOptions{Recent: 4, Notable: 4, SlowThreshold: time.Hour})
	errID := finishTrace(rec, 500).TraceID()
	for i := 0; i < 20; i++ {
		finishTrace(rec, 200)
	}
	d := rec.Snapshot()
	if len(d.Notable) != 1 || d.Notable[0].TraceID != errID {
		t.Fatalf("error trace evicted by fast traffic: notable = %+v", d.Notable)
	}
	if d.Counts.Errored != 1 {
		t.Errorf("errored count = %d, want 1", d.Counts.Errored)
	}

	// A 1ns threshold classifies every trace as slow: all land notable, the
	// recent ring stays empty.
	slow := span.NewRecorder(span.RecorderOptions{Recent: 4, Notable: 4, SlowThreshold: time.Nanosecond})
	for i := 0; i < 3; i++ {
		root := span.New("request")
		slow.Start(root)
		for time.Since(root.Trace().Start()) == 0 { // spin past clock granularity
		}
		slow.Finish(root, 200)
	}
	d = slow.Snapshot()
	if len(d.Recent) != 0 || len(d.Notable) != 3 {
		t.Fatalf("slow traces filed wrong: %d recent, %d notable", len(d.Recent), len(d.Notable))
	}
	if d.Counts.Slow != 3 {
		t.Errorf("slow count = %d, want 3", d.Counts.Slow)
	}
	for _, tr := range d.Notable {
		if !tr.Slow {
			t.Errorf("notable trace not marked slow: %+v", tr)
		}
	}
}

func TestActiveTraces(t *testing.T) {
	rec := span.NewRecorder(span.RecorderOptions{})
	root := span.New("request")
	rec.Start(root)
	root.Child("optimize") // left running

	d := rec.Snapshot()
	if len(d.Active) != 1 || !d.Active[0].Active {
		t.Fatalf("active = %+v", d.Active)
	}
	if !d.Active[0].Root.Running || !d.Active[0].Root.Children[0].Running {
		t.Error("running spans not marked Running in snapshot")
	}
	rec.Finish(root, 200)
	if d = rec.Snapshot(); len(d.Active) != 0 || len(d.Recent) != 1 {
		t.Fatalf("after finish: %d active, %d recent", len(d.Active), len(d.Recent))
	}
}

// TestRecorderConcurrency hammers the recorder from writer goroutines while
// readers snapshot and serve both debug endpoints; run under -race.
func TestRecorderConcurrency(t *testing.T) {
	rec := span.NewRecorder(span.RecorderOptions{Recent: 8, Notable: 8, SlowThreshold: time.Hour})
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				root := span.New("request")
				rec.Start(root)
				c := root.Child("optimize")
				c.SetAttr("tech", "sdp")
				c.Add("plans_costed", int64(i))
				c.ChildAt("level", time.Now(), time.Microsecond)
				c.Finish()
				code := 200
				if i%17 == 0 {
					code = 500
				}
				rec.Finish(root, code)
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				w := httptest.NewRecorder()
				rec.FlightHandler().ServeHTTP(w, httptest.NewRequest("GET", "/debug/flight.json", nil))
				var d span.FlightDump
				if err := json.NewDecoder(w.Body).Decode(&d); err != nil {
					t.Errorf("flight.json undecodable mid-traffic: %v", err)
					return
				}
				h := httptest.NewRecorder()
				rec.RequestsHandler(nil).ServeHTTP(h, httptest.NewRequest("GET", "/debug/requests", nil))
				if !strings.Contains(h.Body.String(), "flight recorder") {
					t.Error("/debug/requests page incomplete")
					return
				}
			}
		}()
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Writers finish on their own; readers stop when told.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrency test wedged")
	}

	d := rec.Snapshot()
	if d.Counts.Finished != 800 {
		t.Errorf("finished = %d, want 800", d.Counts.Finished)
	}
}

// TestPinExplicit checks Pin files a fast, successful trace into the
// notable ring unconditionally — the worst-regret shadow-trace path — and
// that a never-Started trace pins cleanly.
func TestPinExplicit(t *testing.T) {
	rec := span.NewRecorder(span.RecorderOptions{Recent: 4, Notable: 4, SlowThreshold: time.Hour})

	// A shadow trace is never Started: it goes straight to Pin.
	shadow := span.New("regret.shadow")
	shadow.SetAttr("ratio", 3.5)
	rec.Pin(shadow, 200)

	// A started trace pinned explicitly leaves the active set.
	started := span.New("request")
	rec.Start(started)
	rec.Pin(started, 200)

	d := rec.Snapshot()
	if len(d.Notable) != 2 {
		t.Fatalf("notable ring holds %d, want 2", len(d.Notable))
	}
	if len(d.Recent) != 0 || d.Counts.Active != 0 {
		t.Fatalf("pinned traces leaked: %d recent, %d active", len(d.Recent), d.Counts.Active)
	}
	if d.Counts.Pinned != 2 {
		t.Errorf("pinned count = %d, want 2", d.Counts.Pinned)
	}
	if d.Counts.Slow != 0 || d.Counts.Errored != 0 {
		t.Errorf("pin miscounted as slow/errored: %+v", d.Counts)
	}

	// Ordinary traffic cannot evict a pinned trace out of notable.
	for i := 0; i < 20; i++ {
		finishTrace(rec, 200)
	}
	if d := rec.Snapshot(); len(d.Notable) != 2 {
		t.Errorf("pinned traces evicted by fast traffic: %+v", d.Notable)
	}

	// Nil safety.
	var nilRec *span.Recorder
	nilRec.Pin(span.New("x"), 200)
	rec.Pin(nil, 200)
}
