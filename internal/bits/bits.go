// Package bits implements relation sets as 64-bit bitsets.
//
// The optimizer identifies every join-composite relation (JCR) by the set of
// base relations it covers. Queries in this system are capped at 64 base
// relations (the paper's largest experiment is a 45-relation star), so a
// uint64 bitset gives O(1) set algebra and makes memo lookups a single map
// probe.
package bits

import (
	"fmt"
	"math/bits"
	"strings"
)

// Set is a set of relation indexes in [0, 64). The zero value is the empty set.
type Set uint64

// MaxRelations is the largest number of base relations a Set can hold.
const MaxRelations = 64

// Single returns the set containing only relation i.
func Single(i int) Set {
	if i < 0 || i >= MaxRelations {
		panic(fmt.Sprintf("bits: relation index %d out of range [0,%d)", i, MaxRelations))
	}
	return Set(1) << uint(i)
}

// Of returns the set of the given relation indexes.
func Of(idx ...int) Set {
	var s Set
	for _, i := range idx {
		s |= Single(i)
	}
	return s
}

// Full returns the set {0, 1, ..., n-1}.
func Full(n int) Set {
	if n < 0 || n > MaxRelations {
		panic(fmt.Sprintf("bits: set size %d out of range [0,%d]", n, MaxRelations))
	}
	if n == MaxRelations {
		return ^Set(0)
	}
	return Set(1)<<uint(n) - 1
}

// Has reports whether relation i is in s.
func (s Set) Has(i int) bool { return s&Single(i) != 0 }

// Add returns s with relation i added.
func (s Set) Add(i int) Set { return s | Single(i) }

// Remove returns s with relation i removed.
func (s Set) Remove(i int) Set { return s &^ Single(i) }

// Union returns s ∪ t.
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set { return s & t }

// Diff returns s \ t.
func (s Set) Diff(t Set) Set { return s &^ t }

// Overlaps reports whether s and t share any relation.
func (s Set) Overlaps(t Set) bool { return s&t != 0 }

// Disjoint reports whether s and t share no relation.
func (s Set) Disjoint(t Set) bool { return s&t == 0 }

// Contains reports whether every relation of t is in s.
func (s Set) Contains(t Set) bool { return s&t == t }

// IsEmpty reports whether s is the empty set.
func (s Set) IsEmpty() bool { return s == 0 }

// Len returns the number of relations in s.
func (s Set) Len() int { return bits.OnesCount64(uint64(s)) }

// Min returns the smallest relation index in s. It panics on the empty set.
func (s Set) Min() int {
	if s == 0 {
		panic("bits: Min of empty set")
	}
	return bits.TrailingZeros64(uint64(s))
}

// Max returns the largest relation index in s. It panics on the empty set.
func (s Set) Max() int {
	if s == 0 {
		panic("bits: Max of empty set")
	}
	return 63 - bits.LeadingZeros64(uint64(s))
}

// Each calls fn for every relation index in s, in increasing order.
func (s Set) Each(fn func(i int)) {
	for t := s; t != 0; {
		i := bits.TrailingZeros64(uint64(t))
		fn(i)
		t &= t - 1
	}
}

// Iter returns an allocation-free iterator over s in increasing index order.
// Unlike Each it needs no closure, so hot enumeration loops (the memo's
// adjacency-index walks) can consume a set without any call overhead the
// inliner cannot remove:
//
//	for it := s.Iter(); ; {
//		i, ok := it.Next()
//		if !ok {
//			break
//		}
//		...
//	}
func (s Set) Iter() Iter { return Iter{rest: s} }

// Iter is a cursor over a Set's members. The zero value is exhausted.
type Iter struct{ rest Set }

// Next returns the next relation index in increasing order, reporting false
// when the set is exhausted.
func (it *Iter) Next() (int, bool) {
	if it.rest == 0 {
		return -1, false
	}
	i := bits.TrailingZeros64(uint64(it.rest))
	it.rest &= it.rest - 1
	return i, true
}

// NextBit returns the smallest relation index in s that is at least from, or
// -1 when no such member exists. It is the trailing-zeros primitive behind
// Iter, exposed for resumable walks that skip ahead (from may be any value;
// negative behaves like 0, values ≥ MaxRelations return -1).
func (s Set) NextBit(from int) int {
	if from >= MaxRelations {
		return -1
	}
	if from > 0 {
		s &= ^Set(0) << uint(from)
	}
	if s == 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(s))
}

// Slice returns the relation indexes of s in increasing order.
func (s Set) Slice() []int {
	out := make([]int, 0, s.Len())
	s.Each(func(i int) { out = append(out, i) })
	return out
}

// Subsets calls fn for every non-empty proper subset of s that contains the
// lowest bit of s. Restricting enumeration to subsets holding the lowest bit
// visits each unordered {subset, complement} partition of s exactly once,
// which is what a bushy join enumerator wants. fn returning false stops the
// enumeration early.
func (s Set) Subsets(fn func(sub Set) bool) {
	if s == 0 {
		return
	}
	lo := Set(1) << uint(bits.TrailingZeros64(uint64(s)))
	rest := s &^ lo
	// Enumerate all subsets of rest (including empty) and or-in the low bit;
	// skip the full set itself so only proper subsets are produced.
	for sub := Set(0); ; sub = (sub - rest) & rest {
		cand := sub | lo
		if cand != s {
			if !fn(cand) {
				return
			}
		}
		if sub == rest {
			return
		}
	}
}

// String renders the set as "{1,3,7}" using 1-based relation numbers, the
// numbering convention the paper's figures use.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.Each(func(i int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d", i+1)
	})
	b.WriteByte('}')
	return b.String()
}
