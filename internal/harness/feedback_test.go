package harness

import "testing"

func TestBenchFeedback(t *testing.T) {
	fb, err := benchFeedback(Config{Instances: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if fb.Relations != 6 || fb.Instances != 3 || fb.Requests != 3 {
		t.Fatalf("shape: %+v", fb)
	}
	// Every serve is sampled at rate 1 and every sampled plan executes.
	if fb.Sampled != int64(fb.Requests) || fb.Completed != fb.Sampled || fb.Failures != 0 {
		t.Fatalf("sampler counters: %+v", fb)
	}
	// A star-6 plan yields 6 relation observations plus predicate
	// observations per execution.
	if fb.Observations < int64(fb.Requests*6) || fb.Objects == 0 {
		t.Fatalf("ledger: %+v", fb)
	}
	if fb.WorstQErrP95 < 1 {
		t.Fatalf("q-error below 1: %+v", fb)
	}
	if fb.HealthyWorstStaleness < 0 || fb.HealthyWorstStaleness >= 1 ||
		fb.DegradedWorstStaleness < 0 || fb.DegradedWorstStaleness >= 1 {
		t.Fatalf("staleness out of range: %+v", fb)
	}
	// Losing half the statistics must not look healthier than keeping
	// them all.
	if fb.DegradedWorstStaleness < fb.HealthyWorstStaleness {
		t.Fatalf("degraded staleness %v below healthy %v",
			fb.DegradedWorstStaleness, fb.HealthyWorstStaleness)
	}
}
