package dp

import (
	"math"
	"testing"

	"sdpopt/internal/bits"
	"sdpopt/internal/cost"
	"sdpopt/internal/memo"
	"sdpopt/internal/plan"
	"sdpopt/internal/query"
	"sdpopt/internal/testutil"
)

// sameRun asserts two runs explored the same search and chose the same plan:
// cost to the bit, plans costed, memo shape, connected pairs.
func sameRun(t *testing.T, label string, pA *plan.Plan, stA Stats, pB *plan.Plan, stB Stats) {
	t.Helper()
	if math.Float64bits(pA.Cost) != math.Float64bits(pB.Cost) {
		t.Errorf("%s: cost %v != %v", label, pA.Cost, pB.Cost)
	}
	if plan.Compare(pA, pB) != 0 {
		t.Errorf("%s: plan shape diverged", label)
	}
	if stA.PlansCosted != stB.PlansCosted {
		t.Errorf("%s: PlansCosted %d != %d", label, stA.PlansCosted, stB.PlansCosted)
	}
	if stA.Memo.ClassesCreated != stB.Memo.ClassesCreated {
		t.Errorf("%s: ClassesCreated %d != %d", label, stA.Memo.ClassesCreated, stB.Memo.ClassesCreated)
	}
	if stA.Memo.PathsRetained != stB.Memo.PathsRetained {
		t.Errorf("%s: PathsRetained %d != %d", label, stA.Memo.PathsRetained, stB.Memo.PathsRetained)
	}
	if stA.PairsConnected != stB.PairsConnected {
		t.Errorf("%s: PairsConnected %d != %d", label, stA.PairsConnected, stB.PairsConnected)
	}
}

// TestHookFallsBackToIndexed: a level hook needs a completed-level barrier,
// which the barrier-free DPccp emission order cannot provide — runCCP never
// invokes hooks — so NewEngine silently downgrades Enum to the indexed walk
// when a hook is set. The observable contract: under default options a hook
// still fires once per level in ascending order (it would fire zero times if
// the engine stayed on the ccp path), and the hooked run is statistically
// identical to an explicit EnumIndexed run.
func TestHookFallsBackToIndexed(t *testing.T) {
	q := starQuery(t, 8)
	var levels []int
	hook := func(level int, m *memo.Memo, created []*memo.Class) error {
		levels = append(levels, level)
		return nil
	}
	pHook, stHook, err := Optimize(q, Options{Hook: hook})
	if err != nil {
		t.Fatalf("hooked: %v", err)
	}
	if len(levels) != 8 {
		t.Fatalf("hook fired at levels %v, want every level 1..8 — ccp path ignores hooks", levels)
	}
	for i, lv := range levels {
		if lv != i+1 {
			t.Fatalf("hook fired at levels %v, want ascending 1..8", levels)
		}
	}
	pIdx, stIdx, err := Optimize(q, Options{Enum: EnumIndexed})
	if err != nil {
		t.Fatalf("indexed: %v", err)
	}
	sameRun(t, "hooked-vs-indexed", pIdx, stIdx, pHook, stHook)
	if stHook.PairsConsidered != stIdx.PairsConsidered {
		t.Errorf("hooked run considered %d pairs, indexed %d",
			stHook.PairsConsidered, stIdx.PairsConsidered)
	}
}

// TestNaiveEnumAliasMatchesEnumNaive: the deprecated boolean must select
// exactly the naive reference loop, statistics included.
func TestNaiveEnumAliasMatchesEnumNaive(t *testing.T) {
	q := starQuery(t, 7)
	pAlias, stAlias, err := Optimize(q, Options{NaiveEnum: true})
	if err != nil {
		t.Fatalf("alias: %v", err)
	}
	pEnum, stEnum, err := Optimize(q, Options{Enum: EnumNaive})
	if err != nil {
		t.Fatalf("enum: %v", err)
	}
	sameRun(t, "alias-vs-enum", pEnum, stEnum, pAlias, stAlias)
	if stAlias.PairsConsidered != stEnum.PairsConsidered {
		t.Errorf("alias considered %d pairs, EnumNaive %d", stAlias.PairsConsidered, stEnum.PairsConsidered)
	}
}

// TestCCPPartialRunResume: IDP drives the engine in blocks — Run(3) then
// Run(n) must produce exactly the state of a single Run(n). The DPccp path
// tracks its own resume point (ccpDone) instead of reading memo levels, so
// this pins that a partial enumeration neither re-joins completed levels
// (PlansCosted would inflate) nor skips pairs (the plan or memo shape would
// diverge).
func TestCCPPartialRunResume(t *testing.T) {
	for _, fix := range []struct {
		name  string
		edges []query.Edge
		n     int
	}{
		{"chain-8", query.ChainEdges(8), 8},
		{"star-8", query.StarEdges(8), 8},
	} {
		t.Run(fix.name, func(t *testing.T) {
			q := testutil.MustQuery(testutil.Catalog(fix.n), fix.n, fix.edges, nil)
			run := func(levels ...int) (*plan.Plan, Stats) {
				t.Helper()
				e, err := NewEngine(q, BaseLeaves(q), Options{})
				if err != nil {
					t.Fatal(err)
				}
				for _, lv := range levels {
					if err := e.Run(lv); err != nil {
						t.Fatalf("Run(%d): %v", lv, err)
					}
				}
				p, err := e.Finalize()
				if err != nil {
					t.Fatalf("Finalize: %v", err)
				}
				return p, e.Stats()
			}
			pFull, stFull := run(fix.n)
			pSplit, stSplit := run(3, fix.n)
			sameRun(t, "split-vs-full", pFull, stFull, pSplit, stSplit)
			if stSplit.PairsConsidered != stFull.PairsConsidered {
				t.Errorf("split run considered %d pairs, full %d", stSplit.PairsConsidered, stFull.PairsConsidered)
			}
			// A repeated partial bound is a no-op, not a re-enumeration.
			pIdem, stIdem := run(3, 3, fix.n, fix.n)
			sameRun(t, "idempotent-vs-full", pFull, stFull, pIdem, stIdem)
			if stIdem.PairsConsidered != stFull.PairsConsidered {
				t.Errorf("idempotent run considered %d pairs, full %d", stIdem.PairsConsidered, stFull.PairsConsidered)
			}
		})
	}
}

// TestLeftDeepEnumModesAgree: the LeftDeep restriction is implemented three
// times — split bounds in the indexed walk, a filter in the naive loop, and
// complement-growth suppression in DPccp — and all three must carve out the
// identical plan space.
func TestLeftDeepEnumModesAgree(t *testing.T) {
	q := testutil.MustQuery(testutil.Catalog(8), 8, query.StarChainEdges(8, 5), nil)
	pCcp, stCcp, err := Optimize(q, Options{LeftDeepOnly: true})
	if err != nil {
		t.Fatalf("ccp: %v", err)
	}
	if stCcp.PairsConsidered != stCcp.PairsConnected {
		t.Errorf("left-deep ccp considered %d != connected %d", stCcp.PairsConsidered, stCcp.PairsConnected)
	}
	pIdx, stIdx, err := Optimize(q, Options{LeftDeepOnly: true, Enum: EnumIndexed})
	if err != nil {
		t.Fatalf("indexed: %v", err)
	}
	sameRun(t, "leftdeep-ccp-vs-indexed", pIdx, stIdx, pCcp, stCcp)
	pNaive, stNaive, err := Optimize(q, Options{LeftDeepOnly: true, Enum: EnumNaive})
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	sameRun(t, "leftdeep-ccp-vs-naive", pNaive, stNaive, pCcp, stCcp)
}

// TestCCPCompoundLeavesMatchIndexed: with IDP-style compound leaves the
// DPccp adjacency is a contracted graph (one vertex per leaf, edges by
// leaf-set connectivity) and emitted vertex sets are translated back to
// relation sets. The contracted enumeration must match the indexed walk
// over the same leaves exactly.
func TestCCPCompoundLeavesMatchIndexed(t *testing.T) {
	q := chainQuery(t, 6)
	mkLeaves := func(m *cost.Model) []Leaf {
		a := m.AccessPaths(0)[0]
		b := m.AccessPaths(1)[0]
		in := cost.JoinInputs{Outer: a, Inner: b, Preds: q.PredsBetween(a.Rels, b.Rels),
			Rows: m.JoinRows(a.Rels, b.Rels, a.Rows, b.Rows)}
		compound := m.JoinPlans(in)[0]
		return []Leaf{
			{Set: bits.Of(0, 1), Plans: []*plan.Plan{compound}},
			{Set: bits.Single(2)},
			{Set: bits.Single(3)},
			{Set: bits.Single(4)},
			{Set: bits.Single(5)},
		}
	}
	run := func(opts Options) (*plan.Plan, Stats) {
		t.Helper()
		m := cost.NewModel(q, cost.DefaultParams())
		opts.Model = m
		e, err := NewEngine(q, mkLeaves(m), opts)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		if err := e.Run(e.NumLeaves()); err != nil {
			t.Fatalf("Run: %v", err)
		}
		p, err := e.Finalize()
		if err != nil {
			t.Fatalf("Finalize: %v", err)
		}
		return p, e.Stats()
	}
	pCcp, stCcp := run(Options{})
	if stCcp.PairsConsidered != stCcp.PairsConnected {
		t.Errorf("contracted ccp considered %d != connected %d", stCcp.PairsConsidered, stCcp.PairsConnected)
	}
	pIdx, stIdx := run(Options{Enum: EnumIndexed})
	sameRun(t, "compound-ccp-vs-indexed", pIdx, stIdx, pCcp, stCcp)
}
