// Package parse builds optimizer queries from SQL text.
//
// The supported dialect covers exactly the query class the paper's
// workloads (and this optimizer) handle — star-schema equi-join queries
// with local range selections and an optional ORDER BY:
//
//	SELECT *
//	FROM R25 t1, R7 t2, R13 t3
//	WHERE t1.c4 = t2.c9
//	  AND t2.c2 = t3.c2
//	  AND t3.c5 < 100
//	ORDER BY t1.c4;
//
// Tables resolve by name against a catalog; aliases are optional when a
// table appears once. The output of query.SQL (and the sdpgen tool) always
// round-trips through this parser.
package parse

import (
	"fmt"
	"strconv"
	"strings"

	"sdpopt/internal/catalog"
	"sdpopt/internal/query"
)

// SQL parses one query against the catalog.
func SQL(cat *catalog.Catalog, src string) (*query.Query, error) {
	l, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{cat: cat, src: src, toks: l.toks}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	cat  *catalog.Catalog
	src  string
	toks []token
	i    int

	// aliases maps alias name (lowercased) to query-local relation index.
	aliases map[string]int
	rels    []int
}

func (p *parser) peek() token { return p.toks[p.i] }

// at renders a token offset as "line:col" for error messages.
func (p *parser) at(off int) string { return lineCol(p.src, off) }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expect(kind tokenKind) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, fmt.Errorf("parse: expected %v at %s, got %v %q", kind, p.at(t.pos), t.kind, t.text)
	}
	return t, nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if !isKeyword(t, kw) {
		return fmt.Errorf("parse: expected %q at %s, got %q", kw, p.at(t.pos), t.text)
	}
	return nil
}

func (p *parser) query() (*query.Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokStar); err != nil {
		return nil, fmt.Errorf("parse: only SELECT * is supported: %w", err)
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if err := p.fromList(); err != nil {
		return nil, err
	}
	var preds []query.Pred
	var filters []query.Filter
	if isKeyword(p.peek(), "WHERE") {
		p.next()
		var err error
		preds, filters, err = p.condList()
		if err != nil {
			return nil, err
		}
	}
	var orderBy *query.OrderSpec
	if isKeyword(p.peek(), "ORDER") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		rel, col, err := p.colRef()
		if err != nil {
			return nil, err
		}
		orderBy = &query.OrderSpec{Rel: rel, Col: col}
	}
	if p.peek().kind == tokSemi {
		p.next()
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("parse: trailing input at %s: %q", p.at(t.pos), t.text)
	}
	return query.NewFiltered(p.cat, p.rels, preds, filters, orderBy)
}

func (p *parser) fromList() error {
	p.aliases = map[string]int{}
	for {
		name, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		relIdx, err := p.lookupRelation(name.text)
		if err != nil {
			return fmt.Errorf("%w (at %s)", err, p.at(name.pos))
		}
		alias := name.text
		// Optional alias: an identifier that is not a clause keyword.
		if t := p.peek(); t.kind == tokIdent && !isKeyword(t, "WHERE") && !isKeyword(t, "ORDER") {
			alias = p.next().text
		}
		key := strings.ToLower(alias)
		if _, dup := p.aliases[key]; dup {
			return fmt.Errorf("parse: duplicate alias %q at %s", alias, p.at(name.pos))
		}
		p.aliases[key] = len(p.rels)
		p.rels = append(p.rels, relIdx)
		if p.peek().kind != tokComma {
			return nil
		}
		p.next()
	}
}

func (p *parser) lookupRelation(name string) (int, error) {
	for i := 0; i < p.cat.NumRelations(); i++ {
		if strings.EqualFold(p.cat.Relation(i).Name, name) {
			return i, nil
		}
	}
	return 0, fmt.Errorf("parse: unknown relation %q", name)
}

func (p *parser) condList() ([]query.Pred, []query.Filter, error) {
	var preds []query.Pred
	var filters []query.Filter
	for {
		lrel, lcol, err := p.colRef()
		if err != nil {
			return nil, nil, err
		}
		op := p.next()
		switch op.kind {
		case tokEq:
			rrel, rcol, err := p.colRef()
			if err != nil {
				return nil, nil, err
			}
			preds = append(preds, query.Pred{LeftRel: lrel, LeftCol: lcol, RightRel: rrel, RightCol: rcol})
		case tokLt:
			num, err := p.expect(tokNumber)
			if err != nil {
				return nil, nil, err
			}
			bound, err := strconv.ParseInt(num.text, 10, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("parse: bad bound %q at %s", num.text, p.at(num.pos))
			}
			filters = append(filters, query.Filter{Rel: lrel, Col: lcol, Bound: bound})
		default:
			return nil, nil, fmt.Errorf("parse: expected '=' or '<' at %s, got %q", p.at(op.pos), op.text)
		}
		if !isKeyword(p.peek(), "AND") {
			return preds, filters, nil
		}
		p.next()
	}
}

// colRef parses alias '.' column into query-local (rel, col) indexes.
func (p *parser) colRef() (int, int, error) {
	alias, err := p.expect(tokIdent)
	if err != nil {
		return 0, 0, err
	}
	rel, ok := p.aliases[strings.ToLower(alias.text)]
	if !ok {
		return 0, 0, fmt.Errorf("parse: unknown alias %q at %s", alias.text, p.at(alias.pos))
	}
	if _, err := p.expect(tokDot); err != nil {
		return 0, 0, err
	}
	colTok, err := p.expect(tokIdent)
	if err != nil {
		return 0, 0, err
	}
	cols := p.cat.Relation(p.rels[rel]).Cols
	for c := range cols {
		if strings.EqualFold(cols[c].Name, colTok.text) {
			return rel, c, nil
		}
	}
	return 0, 0, fmt.Errorf("parse: relation %s has no column %q (at %s)",
		p.cat.Relation(p.rels[rel]).Name, colTok.text, p.at(colTok.pos))
}
