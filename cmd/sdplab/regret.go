package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sdpopt"
)

// regretCmd renders a regret dump — the /debug/regret.json document a
// shadow-enabled server serves — as the counter line, the per-key quality
// table (ρ, W, bucket shares), and the worst-regret exemplars with both
// plan trees. The dump is read from a file argument, or stdin with "-", so
// `curl .../debug/regret.json | sdplab regret -` works.
func regretCmd(args []string) error {
	fs := flag.NewFlagSet("regret", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: sdplab regret <regret.json | ->")
	}
	var r io.Reader = os.Stdin
	if path := fs.Arg(0); path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	dump, err := sdpopt.ReadRegretDump(r)
	if err != nil {
		return err
	}
	fmt.Print(dump.Render())
	return nil
}
