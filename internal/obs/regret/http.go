package regret

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"strings"
)

// JSONHandler serves the shadow state as JSON at /debug/regret.json.
func (s *Shadow) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Snapshot())
	})
}

// Handler serves the human debug page at /debug/regret: counters, the
// per-key quality table (ρ, W, bucket shares), and the worst-regret
// exemplars with served and reference plan trees side by side.
func (s *Shadow) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		d := s.Snapshot()
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		var b strings.Builder
		b.WriteString("<!DOCTYPE html><html><head><title>/debug/regret</title><style>\n")
		b.WriteString("body{font-family:sans-serif;margin:1em 2em}pre{background:#f6f8fa;padding:0.8em;overflow-x:auto}\n")
		b.WriteString("h2{border-bottom:1px solid #ccc;padding-bottom:0.2em}table{border-collapse:collapse}\n")
		b.WriteString("td,th{padding:0.15em 0.8em;text-align:left;border-bottom:1px solid #eee}\n")
		b.WriteString(".bad{color:#b00020}.warn{color:#b35c00}</style></head><body>\n")
		b.WriteString("<h1>sdpopt plan-quality regret</h1>\n")
		fmt.Fprintf(&b, "<p>%d observed · %d sampled · %d deduped · %d dropped · %d completed (%d failed) · %d pinned</p>\n",
			d.Counts.Observed, d.Counts.Sampled, d.Counts.Deduped, d.Counts.Dropped,
			d.Counts.Completed, d.Counts.Failures, d.Counts.Pinned)
		fmt.Fprintf(&b, "<p>sampling %g computed / %g hit &middot; reference: dp &le; %d rels, else sdp &middot; window %d &middot; pin at ratio &ge; %g</p>\n",
			d.Config.SampleRate, d.Config.HitSampleRate, d.Config.MaxDPRels, d.Config.Window, d.Config.PinRatio)
		b.WriteString("<p><a href=\"/debug/regret.json\">regret.json</a> · <a href=\"/debug/requests\">requests</a> · <a href=\"/metrics\">metrics</a></p>\n")

		b.WriteString("<h2>Windows</h2>\n")
		if len(d.Keys) == 0 {
			b.WriteString("<p>no samples yet</p>\n")
		} else {
			b.WriteString("<table><tr><th>technique</th><th>topology</th><th>rels</th><th>window</th><th>lifetime</th>" +
				"<th>I%</th><th>G%</th><th>A%</th><th>B%</th><th>W</th><th>&rho;</th></tr>\n")
			for _, k := range d.Keys {
				class := ""
				switch {
				case k.Rho > 10:
					class = " class=\"bad\""
				case k.Rho > 2:
					class = " class=\"warn\""
				}
				fmt.Fprintf(&b, "<tr%s><td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%d</td>"+
					"<td>%.0f</td><td>%.0f</td><td>%.0f</td><td>%.0f</td><td>%.2f</td><td>%.3f</td></tr>\n",
					class, html.EscapeString(k.Tech), html.EscapeString(k.Shape), html.EscapeString(k.Band),
					k.Window, k.Lifetime, k.PctIdeal, k.PctGood, k.PctAcceptable, k.PctBad, k.Worst, k.Rho)
			}
			b.WriteString("</table>\n")
		}

		fmt.Fprintf(&b, "<h2>Worst regret exemplars (%d)</h2>\n", len(d.Exemplars))
		if len(d.Exemplars) == 0 {
			b.WriteString("<p>none</p>\n")
		}
		for _, ex := range d.Exemplars {
			route := ""
			if ex.RouteReason != "" {
				route = " · route " + html.EscapeString(ex.RouteReason)
			}
			fmt.Fprintf(&b, "<h3>ratio %.3f — %s vs %s · %s/%s · %d rels · source %s%s</h3>\n",
				ex.Ratio, html.EscapeString(ex.Tech), html.EscapeString(ex.Ref),
				html.EscapeString(ex.Shape), html.EscapeString(ex.Band), ex.Rels, html.EscapeString(ex.Source), route)
			if ex.TraceID != "" || ex.ShadowTraceID != "" {
				b.WriteString("<p>")
				if ex.TraceID != "" {
					fmt.Fprintf(&b, "serving trace <code>%s</code> ", html.EscapeString(ex.TraceID))
				}
				if ex.ShadowTraceID != "" {
					fmt.Fprintf(&b, "· shadow trace <code>%s</code> (pinned)", html.EscapeString(ex.ShadowTraceID))
				}
				b.WriteString("</p>\n")
			}
			fmt.Fprintf(&b, "<pre>served (cost %.2f): %s\nref    (cost %.2f): %s</pre>\n",
				ex.ServedCost, html.EscapeString(ex.ServedShape),
				ex.RefCost, html.EscapeString(ex.RefShape))
		}
		b.WriteString("</body></html>\n")
		_, _ = w.Write([]byte(b.String()))
	})
}
