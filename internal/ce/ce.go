// Package ce measures the optimizer's robustness to cardinality-estimation
// error — the gap between the statistics the optimizer believes and the
// statistics that are true.
//
// Every other number in this repo assumes the catalog is exactly right. This
// package removes that assumption: it wraps the cost model's pluggable
// Estimator (see internal/cost) in deterministic seeded error injectors
// (multiplicative log-normal q-error bands, correlated per relation or per
// join predicate) and stats-health degradation (a fraction of columns lose
// their ANALYZE statistics and fall back to PostgreSQL's magic
// selectivities), optimizes each workload query per technique under the
// lying estimator, then re-costs the chosen plan under true statistics. The
// headline number is ρ-under-error: the geometric-mean ratio of the chosen
// plan's true cost to the true optimum, per (technique, topology,
// error band, stats health).
//
// For queries small enough, Evaluate additionally executes the true-optimal
// plan via internal/exec to obtain actual intermediate cardinalities, so the
// "true" cost model itself is validated against ground truth rather than
// merely trusted.
package ce
