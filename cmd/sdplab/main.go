// Command sdplab reproduces the paper's experiments.
//
// Usage:
//
//	sdplab list                          # show every experiment id
//	sdplab run -exp tab1.1               # reproduce Table 1.1
//	sdplab run -exp all -instances 100   # full paper-scale reproduction
//
// Flags tune the sample size (-instances), the RNG seed (-seed), the
// simulated memory budget in MB (-budget), and the skewed-schema variant
// (-skewed).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sdpopt"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		for _, e := range sdpopt.Experiments() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
	case "run":
		if err := runCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "sdplab:", err)
			os.Exit(1)
		}
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  sdplab list
  sdplab run -exp <id|all> [-instances N] [-seed S] [-budget MB] [-skewed] [-workers W]`)
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	exp := fs.String("exp", "", "experiment id (see 'sdplab list'), or 'all'")
	instances := fs.Int("instances", 0, "instances per workload (0 = experiment default)")
	seed := fs.Int64("seed", 42, "workload sampling seed")
	budgetMB := fs.Int64("budget", 0, "memory budget in MB (0 = the paper's 1024)")
	skewed := fs.Bool("skewed", false, "use the exponentially-skewed schema")
	workers := fs.Int("workers", 1, "concurrent optimizations (keep 1 for timing-faithful overhead tables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *exp == "" {
		return fmt.Errorf("missing -exp (try 'sdplab list')")
	}
	cfg := sdpopt.ExperimentConfig{
		Instances: *instances,
		Seed:      *seed,
		Budget:    *budgetMB << 20,
		Skewed:    *skewed,
		Workers:   *workers,
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = ids[:0]
		for _, e := range sdpopt.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		start := time.Now()
		out, err := sdpopt.RunExperiment(id, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(out)
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
