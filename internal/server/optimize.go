package server

import (
	"context"
	"fmt"

	"sdpopt/internal/core"
	"sdpopt/internal/dp"
	"sdpopt/internal/genetic"
	"sdpopt/internal/greedy"
	"sdpopt/internal/idp"
	"sdpopt/internal/obs"
	"sdpopt/internal/obs/span"
	"sdpopt/internal/pardp"
	"sdpopt/internal/plan"
	"sdpopt/internal/query"
	"sdpopt/internal/randomized"
)

// Techniques lists the optimizer names accepted by Optimize. The empty name
// selects "sdp".
func Techniques() []string {
	return []string{"sdp", "dp", "dp/ld", "idp", "idp2", "greedy", "genetic", "ii", "sa"}
}

// RequestTechniques lists the values the /optimize "technique" field
// accepts: every engine name plus "auto", which asks the server's router to
// pick per request (see internal/route).
func RequestTechniques() []string {
	return append([]string{"auto"}, Techniques()...)
}

// KnownTechnique reports whether name is a valid engine selector for
// Optimize. "auto" is not one — it is resolved by the serving layer before
// dispatch (see KnownRequestTechnique).
func KnownTechnique(name string) bool {
	if name == "" {
		return true
	}
	for _, t := range Techniques() {
		if t == name {
			return true
		}
	}
	return false
}

// KnownRequestTechnique reports whether name is valid in an /optimize
// request's "technique" field.
func KnownRequestTechnique(name string) bool {
	return name == "auto" || KnownTechnique(name)
}

// Optimize dispatches one optimization by technique name, threading the
// context's deadline into the engines' cancellation path (dp.ErrCanceled)
// and budget into their memory-feasibility path (memo.ErrBudget). The
// heuristics without an incremental abort point (genetic, ii, sa) check the
// context once up front — they finish in milliseconds, so a mid-run poll
// would never fire before completion anyway; greedy polls once per merge
// step.
//
// workers > 1 runs the DP-substrate techniques (sdp, dp, dp/ld) on the
// level-synchronous parallel engine with that many enumeration workers;
// results are bit-for-bit identical to the sequential engine's, so the
// knob never changes a response, only its latency. Techniques without a DP
// substrate ignore it.
// OptimizeTraced is Optimize under span tracing: when ctx carries a request
// span, the dispatch runs inside an "optimize" child span that the engines
// then hang their per-level / per-partition spans off, and the optimizer's
// summary statistics land on it as attributes. Without a span in ctx it is
// exactly Optimize.
func OptimizeTraced(ctx context.Context, technique string, q *query.Query, budget int64, workers int, ob *obs.Observer) (*plan.Plan, dp.Stats, error) {
	sp := span.FromContext(ctx)
	if sp == nil {
		return Optimize(ctx, technique, q, budget, workers, ob)
	}
	tech := technique
	if tech == "" {
		tech = "sdp"
	}
	os := sp.Child("optimize")
	os.SetAttr("tech", tech)
	os.SetAttr("workers", workers)
	p, st, err := Optimize(span.NewContext(ctx, os), technique, q, budget, workers, ob)
	os.SetAttr("dur_ns", st.Elapsed.Nanoseconds())
	os.SetAttr("plans_costed", st.PlansCosted)
	os.SetAttr("classes_created", st.Memo.ClassesCreated)
	os.SetAttr("peak_sim_bytes", st.Memo.PeakSimBytes)
	if p != nil {
		os.SetAttr("cost", p.Cost)
	}
	os.FinishErr(err)
	return p, st, err
}

func Optimize(ctx context.Context, technique string, q *query.Query, budget int64, workers int, ob *obs.Observer) (*plan.Plan, dp.Stats, error) {
	switch technique {
	case "", "sdp":
		opts := core.DefaultOptions()
		opts.Budget = budget
		opts.Ctx = ctx
		opts.Workers = workers
		opts.Obs = ob
		return core.Optimize(q, opts)
	case "dp":
		if workers > 1 {
			return pardp.Optimize(q, pardp.Options{Workers: workers, Budget: budget, Ctx: ctx, Obs: ob})
		}
		return dp.Optimize(q, dp.Options{Budget: budget, Ctx: ctx, Obs: ob})
	case "dp/ld":
		if workers > 1 {
			return pardp.Optimize(q, pardp.Options{Workers: workers, Budget: budget, Ctx: ctx, LeftDeepOnly: true, Obs: ob})
		}
		return dp.Optimize(q, dp.Options{Budget: budget, Ctx: ctx, LeftDeepOnly: true, Obs: ob})
	case "idp":
		opts := idp.DefaultOptions()
		opts.Budget = budget
		opts.Ctx = ctx
		opts.Obs = ob
		return idp.Optimize(q, opts)
	case "idp2":
		opts := idp.DefaultOptions()
		opts.Budget = budget
		opts.Ctx = ctx
		opts.Obs = ob
		return idp.Optimize2(q, opts)
	case "greedy":
		// GOO polls the context itself and reports through the same
		// obs/span/stats channels as the enumeration engines, so routed
		// fast-path serves appear in traces like any other.
		return greedy.Optimize(q, greedy.Options{Ctx: ctx, Obs: ob})
	case "genetic":
		if err := dp.CtxErr(ctx); err != nil {
			return nil, dp.Stats{}, err
		}
		return genetic.Optimize(q, genetic.Options{})
	case "ii":
		if err := dp.CtxErr(ctx); err != nil {
			return nil, dp.Stats{}, err
		}
		return randomized.Optimize(q, randomized.Options{Algorithm: randomized.II})
	case "sa":
		if err := dp.CtxErr(ctx); err != nil {
			return nil, dp.Stats{}, err
		}
		return randomized.Optimize(q, randomized.Options{Algorithm: randomized.SA})
	}
	return nil, dp.Stats{}, fmt.Errorf("server: unknown technique %q (valid: %v)", technique, Techniques())
}
