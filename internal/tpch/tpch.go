// Package tpch models the TPC-H benchmark schema and the join graphs of
// its classic multi-way queries as optimizer workloads.
//
// The paper grounds its Star-Chain template in TPC-H: "this join graph is
// structurally similar to Queries 8 and 9 of the TPC-H benchmark". This
// package provides the real thing — the eight TPC-H relations with
// scale-factor-accurate cardinalities and distinct counts, and the join
// graphs (plus the headline selections, as range filters) of queries 2, 5,
// 8, 9 and 10 — so the optimizers can be compared on the industry-standard
// shapes the paper's motivation cites. Q8 references NATION twice, through
// the customer and the supplier side, exercising relation aliasing.
package tpch

import (
	"fmt"
	"math"
	"sort"

	"sdpopt/internal/catalog"
	"sdpopt/internal/query"
)

// Relation indexes within the TPC-H catalog.
const (
	Region = iota
	Nation
	Supplier
	Customer
	Part
	Partsupp
	Orders
	Lineitem
)

// orderdateNDV is the number of distinct order dates in TPC-H (seven
// years of data, 1992-01-01 .. 1998-12-31 minus the tail).
const orderdateNDV = 2406

// Schema builds the TPC-H catalog at the given scale factor (SF 1 is the
// canonical 6-million-row LINEITEM). Only the columns the modeled queries
// touch are materialized; primary keys are the indexed columns.
func Schema(sf float64) (*catalog.Catalog, error) {
	if sf <= 0 {
		return nil, fmt.Errorf("tpch: scale factor %g must be positive", sf)
	}
	r := func(x float64) float64 { return math.Max(1, math.Round(x)) }
	mk := func(name string, rows float64, idx int, cols ...catalog.Column) catalog.Relation {
		for i := range cols {
			if cols[i].NDV > rows {
				cols[i].NDV = rows
			}
			if cols[i].Width == 0 {
				cols[i].Width = 8
			}
		}
		return catalog.Relation{Name: name, Rows: rows, Cols: cols, IndexCol: idx, IndexCorr: 0.95}
	}
	col := func(name string, ndv float64) catalog.Column {
		return catalog.Column{Name: name, NDV: r(ndv), Width: 8}
	}

	nSupp := r(10_000 * sf)
	nCust := r(150_000 * sf)
	nPart := r(200_000 * sf)
	nPsupp := r(800_000 * sf)
	nOrd := r(1_500_000 * sf)
	nLine := r(6_000_000 * sf)

	cat := &catalog.Catalog{Rels: []catalog.Relation{
		Region: mk("region", 5, 0,
			col("r_regionkey", 5), col("r_name", 5)),
		Nation: mk("nation", 25, 0,
			col("n_nationkey", 25), col("n_regionkey", 5), col("n_name", 25)),
		Supplier: mk("supplier", nSupp, 0,
			col("s_suppkey", nSupp), col("s_nationkey", 25)),
		Customer: mk("customer", nCust, 0,
			col("c_custkey", nCust), col("c_nationkey", 25), col("c_mktsegment", 5)),
		Part: mk("part", nPart, 0,
			col("p_partkey", nPart), col("p_type", 150), col("p_size", 50), col("p_name", nPart/5)),
		Partsupp: mk("partsupp", nPsupp, 0,
			col("ps_partkey", nPart), col("ps_suppkey", nSupp), col("ps_supplycost", 100_000)),
		Orders: mk("orders", nOrd, 0,
			col("o_orderkey", nOrd), col("o_custkey", nCust), col("o_orderdate", orderdateNDV)),
		Lineitem: mk("lineitem", nLine, 0,
			col("l_orderkey", nOrd), col("l_partkey", nPart), col("l_suppkey", nSupp),
			col("l_shipdate", orderdateNDV+120), col("l_quantity", 50)),
	}}
	return cat, nil
}

// queryDef declares one TPC-H query's join graph over catalog relations.
type queryDef struct {
	// rels lists the participating catalog relations; repeats are aliases.
	rels []int
	// joins are equi-join predicates as (fromIdx, fromCol, toIdx, toCol)
	// over positions in rels.
	joins [][4]int
	// filters are range selections as (relIdx, col, selectivity) — the
	// bound is derived from the column's NDV.
	filters []filterDef
}

type filterDef struct {
	rel, col int
	sel      float64
}

// column positions per relation, by the Schema layout above.
const (
	rRegionkey = 0
	nNationkey = 0
	nRegionkey = 1
	sSuppkey   = 0
	sNationkey = 1
	cCustkey   = 0
	cNationkey = 1
	pPartkey   = 0
	pType      = 1
	pName      = 3
	psPartkey  = 0
	psSuppkey  = 1
	oOrderkey  = 0
	oCustkey   = 1
	oOrderdate = 2
	lOrderkey  = 0
	lPartkey   = 1
	lSuppkey   = 2
)

var queries = map[string]queryDef{
	// Q2: parts with their suppliers in a region (minus the correlated
	// subquery): PART ⋈ PARTSUPP ⋈ SUPPLIER ⋈ NATION ⋈ REGION, p_size and
	// region selections.
	"Q2": {
		rels: []int{Part, Partsupp, Supplier, Nation, Region},
		joins: [][4]int{
			{0, pPartkey, 1, psPartkey},
			{1, psSuppkey, 2, sSuppkey},
			{2, sNationkey, 3, nNationkey},
			{3, nRegionkey, 4, rRegionkey},
		},
		filters: []filterDef{{0, pType, 1.0 / 150}, {4, rRegionkey, 1.0 / 5}},
	},
	// Q5: local supplier volume: CUSTOMER ⋈ ORDERS ⋈ LINEITEM ⋈ SUPPLIER
	// ⋈ NATION ⋈ REGION, one region, one order year.
	"Q5": {
		rels: []int{Customer, Orders, Lineitem, Supplier, Nation, Region},
		joins: [][4]int{
			{0, cCustkey, 1, oCustkey},
			{1, oOrderkey, 2, lOrderkey},
			{2, lSuppkey, 3, sSuppkey},
			{0, cNationkey, 4, nNationkey},
			{3, sNationkey, 4, nNationkey},
			{4, nRegionkey, 5, rRegionkey},
		},
		filters: []filterDef{{5, rRegionkey, 1.0 / 5}, {1, oOrderdate, 1.0 / 7}},
	},
	// Q8: national market share — the paper's star-chain exemplar. NATION
	// appears twice: n1 via the customer chain, n2 via the supplier.
	"Q8": {
		rels: []int{Part, Lineitem, Supplier, Orders, Customer, Nation, Nation, Region},
		joins: [][4]int{
			{0, pPartkey, 1, lPartkey},
			{2, sSuppkey, 1, lSuppkey},
			{1, lOrderkey, 3, oOrderkey},
			{3, oCustkey, 4, cCustkey},
			{4, cNationkey, 5, nNationkey}, // n1 (customer nation)
			{5, nRegionkey, 7, rRegionkey},
			{2, sNationkey, 6, nNationkey}, // n2 (supplier nation)
		},
		filters: []filterDef{
			{7, rRegionkey, 1.0 / 5},
			{3, oOrderdate, 2.0 / 7}, // two order years
			{0, pType, 1.0 / 150},
		},
	},
	// Q9: product type profit: PART ⋈ PARTSUPP ⋈ LINEITEM ⋈ SUPPLIER ⋈
	// ORDERS ⋈ NATION, part-name selection.
	"Q9": {
		rels: []int{Part, Partsupp, Lineitem, Supplier, Orders, Nation},
		joins: [][4]int{
			{0, pPartkey, 2, lPartkey},
			{1, psPartkey, 2, lPartkey},
			{1, psSuppkey, 2, lSuppkey},
			{3, sSuppkey, 2, lSuppkey},
			{2, lOrderkey, 4, oOrderkey},
			{3, sNationkey, 5, nNationkey},
		},
		filters: []filterDef{{0, pName, 1.0 / 17}},
	},
	// Q10: returned items: CUSTOMER ⋈ ORDERS ⋈ LINEITEM ⋈ NATION, one
	// order quarter.
	"Q10": {
		rels: []int{Customer, Orders, Lineitem, Nation},
		joins: [][4]int{
			{0, cCustkey, 1, oCustkey},
			{1, oOrderkey, 2, lOrderkey},
			{0, cNationkey, 3, nNationkey},
		},
		filters: []filterDef{{1, oOrderdate, 1.0 / 28}},
	},
}

// Names lists the modeled queries in canonical order.
func Names() []string {
	out := make([]string, 0, len(queries))
	for name := range queries {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Query builds the named TPC-H query against a Schema catalog.
func Query(cat *catalog.Catalog, name string) (*query.Query, error) {
	def, ok := queries[name]
	if !ok {
		return nil, fmt.Errorf("tpch: unknown query %q (have %v)", name, Names())
	}
	preds := make([]query.Pred, len(def.joins))
	for i, j := range def.joins {
		preds[i] = query.Pred{LeftRel: j[0], LeftCol: j[1], RightRel: j[2], RightCol: j[3]}
	}
	filters := make([]query.Filter, len(def.filters))
	for i, f := range def.filters {
		ndv := cat.Relation(def.rels[f.rel]).Cols[f.col].NDV
		bound := int64(math.Max(1, math.Round(f.sel*ndv)))
		filters[i] = query.Filter{Rel: f.rel, Col: f.col, Bound: bound}
	}
	return query.NewFiltered(cat, def.rels, preds, filters, nil)
}
