package ce

import (
	"fmt"
	"math"
	"sort"

	"sdpopt/internal/catalog"
	"sdpopt/internal/core"
	"sdpopt/internal/cost"
	"sdpopt/internal/dp"
	"sdpopt/internal/feedback"
	"sdpopt/internal/greedy"
	"sdpopt/internal/idp"
	"sdpopt/internal/obs"
	"sdpopt/internal/plan"
	"sdpopt/internal/query"
	"sdpopt/internal/workload"
)

// TopoSpec selects one join-graph family for the robustness sweep.
type TopoSpec struct {
	Topology     workload.Topology
	NumRelations int
}

func (t TopoSpec) String() string { return fmt.Sprintf("%v-%d", t.Topology, t.NumRelations) }

// Config parameterizes a robustness evaluation.
type Config struct {
	// Cat is the true-statistics catalog; nil selects the paper schema.
	Cat *catalog.Catalog
	// Seed drives workload sampling, error-factor generation, and
	// stats-loss coin flips.
	Seed int64
	// Instances per topology (0 = 3).
	Instances int
	// Budget is the simulated-memory budget per optimization in bytes
	// (0 = the engines' 1 GB default).
	Budget int64
	// Bands are the q-error bands to inject (nil = 1, 2, 4, 8). Band 1
	// injects nothing and anchors the reference assertion.
	Bands []float64
	// Healths are the stats-health levels: the fraction of columns
	// retaining ANALYZE statistics (nil = 1.0, 0.5).
	Healths []float64
	// Mode selects what the injector corrupts.
	Mode Mode
	// Empirical, when non-nil, replaces the synthetic log-normal injector
	// with measured error: every estimate is scaled by the geomean
	// est/actual factor this profile recorded for the catalog object (see
	// feedback.BuildProfile). Bands are ignored in this mode — the error
	// is whatever was measured — so defaults() collapses them to {1}.
	Empirical *feedback.ErrorProfile
	// Topologies to sweep (nil = Chain-8, Star-9, Star-Chain-9). Sizes
	// must stay DP-feasible: exhaustive DP under truth is the ρ baseline.
	Topologies []TopoSpec
	// Exec enables the execution-validation pass (see ExecReport).
	Exec bool
	// ExecMaxRows caps base-relation size for execution (0 = 5000).
	ExecMaxRows int
	// Obs receives sdpopt_ce_* metrics; nil falls back to the process
	// default observer.
	Obs *obs.Observer
}

// Cell is one aggregated grid point of the sweep: a technique's plan
// quality for one topology at one (error band, stats health).
type Cell struct {
	Tech   string  `json:"tech"`
	Band   float64 `json:"band"`
	Health float64 `json:"health"`
	// Rho is the geometric-mean ratio of the chosen plan's true cost to
	// the true optimum (exhaustive DP under true statistics). 1.0 means
	// the lie never changed the winner.
	Rho float64 `json:"rho"`
	// Worst is the maximum such ratio across instances.
	Worst float64 `json:"worst"`
	// QErr* summarize per-join-node q-error — max(est/true, true/est) of
	// the lying model's intermediate cardinalities against the true
	// model's — over all join nodes of all chosen plans in the cell.
	QErrP50 float64 `json:"qerr_p50"`
	QErrP95 float64 `json:"qerr_p95"`
	QErrMax float64 `json:"qerr_max"`
	// MeanClassesAlive / MeanPathsRetained are the technique's surviving
	// memo classes and retained plans per optimization — the "escape
	// hatches" still open when the estimate is wrong. SDP's skyline keeps
	// multiple frontier plans per class; IDP commits to subtrees.
	MeanClassesAlive  float64 `json:"mean_classes_alive"`
	MeanPathsRetained float64 `json:"mean_paths_retained"`
	// Infeasible counts instances the technique could not finish under
	// the memory budget; they contribute no ratio.
	Infeasible int `json:"infeasible,omitempty"`
}

// TopologyReport groups the sweep cells of one join-graph family.
type TopologyReport struct {
	Graph string `json:"graph"`
	Cells []Cell `json:"cells"`
}

// Report is a full robustness evaluation.
type Report struct {
	Seed       int64            `json:"seed"`
	Instances  int              `json:"instances"`
	Mode       string           `json:"mode"`
	Bands      []float64        `json:"bands"`
	Healths    []float64        `json:"healths"`
	Topologies []TopologyReport `json:"topologies"`
	Exec       *ExecReport      `json:"exec,omitempty"`
}

// Techniques evaluated by the sweep, in report order. DP is first: it is
// the reference that defines the true optimum at band 1 / health 1.
var techNames = []string{"dp", "sdp", "idp2", "greedy"}

func runTechnique(name string, q *query.Query, m *cost.Model, budget int64) (*plan.Plan, dp.Stats, error) {
	switch name {
	case "dp":
		return dp.Optimize(q, dp.Options{Model: m, Budget: budget})
	case "sdp":
		o := core.DefaultOptions()
		o.Model = m
		o.Budget = budget
		return core.Optimize(q, o)
	case "idp2":
		o := idp.DefaultOptions()
		o.Model = m
		o.Budget = budget
		return idp.Optimize2(q, o)
	case "greedy":
		return greedy.Optimize(q, greedy.Options{Model: m})
	}
	return nil, dp.Stats{}, fmt.Errorf("ce: unknown technique %q", name)
}

func (c *Config) defaults() {
	if c.Cat == nil {
		c.Cat = workload.PaperSchema()
	}
	if c.Instances == 0 {
		c.Instances = 3
	}
	if c.Empirical != nil {
		// Measured error has no band knob; one pass per (health, tech).
		c.Bands = []float64{1}
	}
	if len(c.Bands) == 0 {
		c.Bands = []float64{1, 2, 4, 8}
	}
	if len(c.Healths) == 0 {
		c.Healths = []float64{1, 0.5}
	}
	if len(c.Topologies) == 0 {
		c.Topologies = []TopoSpec{
			{workload.Chain, 8},
			{workload.Star, 9},
			{workload.StarChain, 9},
		}
	}
	if c.ExecMaxRows == 0 {
		c.ExecMaxRows = 5000
	}
}

// Evaluate runs the robustness sweep: for every (topology, instance,
// health, band, technique) it optimizes the query under the lying
// estimator, re-costs the chosen plan under true statistics, and aggregates
// ρ, q-error quantiles, and escape-hatch counts per cell.
func Evaluate(cfg Config) (*Report, error) {
	cfg.defaults()
	// Bands are validated by NewInjector per cell; healths must be checked
	// here because health >= 1 short-circuits past DegradeCatalog.
	for _, h := range cfg.Healths {
		if h < 0 || h > 1 {
			return nil, fmt.Errorf("ce: stats health %g outside [0, 1]", h)
		}
	}
	ob := obs.Or(cfg.Obs)
	mode := cfg.Mode.String()
	if cfg.Empirical != nil {
		mode = fmt.Sprintf("empirical(n=%d)", cfg.Empirical.Observations)
	}
	rep := &Report{
		Seed:      cfg.Seed,
		Instances: cfg.Instances,
		Mode:      mode,
		Bands:     cfg.Bands,
		Healths:   cfg.Healths,
	}
	for _, topo := range cfg.Topologies {
		tr, err := evaluateTopology(&cfg, topo, ob)
		if err != nil {
			return nil, fmt.Errorf("ce: %v: %w", topo, err)
		}
		rep.Topologies = append(rep.Topologies, *tr)
	}
	if cfg.Exec {
		er, err := execValidate(&cfg)
		if err != nil {
			return nil, fmt.Errorf("ce: exec validation: %w", err)
		}
		rep.Exec = er
	}
	return rep, nil
}

// cellAccum collects per-instance outcomes of one sweep cell.
type cellAccum struct {
	ratios []float64
	qerrs  []float64
	alive  []float64
	paths  []float64
	infeas int
}

func evaluateTopology(cfg *Config, topo TopoSpec, ob *obs.Observer) (*TopologyReport, error) {
	spec := workload.Spec{
		Cat:          cfg.Cat,
		Topology:     topo.Topology,
		NumRelations: topo.NumRelations,
		Seed:         cfg.Seed,
	}
	qs, err := workload.Instances(spec, cfg.Instances)
	if err != nil {
		return nil, err
	}
	params := cost.DefaultParams()

	// True models and reference costs: exhaustive DP under true statistics
	// is the optimum every chosen plan is measured against.
	trueModels := make([]*cost.Model, len(qs))
	refCosts := make([]float64, len(qs))
	for i, q := range qs {
		trueModels[i] = cost.NewModel(q, params)
		ref, _, err := dp.Optimize(q, dp.Options{Model: cost.NewModel(q, params), Budget: cfg.Budget})
		if err != nil {
			return nil, fmt.Errorf("reference dp on instance %d: %w", i, err)
		}
		refCosts[i] = ref.Cost
	}

	tr := &TopologyReport{Graph: topo.String()}
	for _, health := range cfg.Healths {
		// One degraded catalog per health level; queries are mirrored onto
		// it so the optimizer sees the lost statistics, while trueModels
		// keep the intact catalog.
		lyingQs := qs
		if health < 1 {
			degraded, err := DegradeCatalog(cfg.Cat, health, cfg.Seed)
			if err != nil {
				return nil, err
			}
			lyingQs = make([]*query.Query, len(qs))
			for i, q := range qs {
				if lyingQs[i], err = MirrorQuery(q, degraded); err != nil {
					return nil, fmt.Errorf("mirror instance %d: %w", i, err)
				}
			}
		}
		for _, band := range cfg.Bands {
			for _, tech := range techNames {
				acc := cellAccum{}
				for i, lq := range lyingQs {
					var est cost.Estimator
					if cfg.Empirical != nil {
						est = NewEmpiricalEstimator(lq, nil, cfg.Empirical)
					} else {
						inj, err := NewInjector(lq, nil, band, cfg.Seed, cfg.Mode)
						if err != nil {
							return nil, err
						}
						est = inj
					}
					m := cost.NewModelEst(lq, params, est)
					p, st, err := runTechnique(tech, lq, m, cfg.Budget)
					if err != nil {
						acc.infeas++
						ob.Counter(obs.Label(obs.MCEInfeasible, "tech", tech)).Add(1)
						continue
					}
					// The chosen tree re-costed under truth: what the plan
					// will really cost. The frames match by construction
					// (MirrorQuery preserves indexing), so the true model
					// accepts the lying-frame tree directly.
					trueP := trueModels[i].Recost(p)
					ratio := trueP.Cost / refCosts[i]
					acc.ratios = append(acc.ratios, ratio)
					collectJoinQErr(p, trueP, &acc.qerrs)
					acc.alive = append(acc.alive, float64(st.Memo.ClassesAlive))
					acc.paths = append(acc.paths, float64(st.Memo.PathsRetained))
					ob.Counter(obs.Label(obs.MCEEvaluations, "tech", tech)).Add(1)
					ob.FloatHistogram(obs.Label(obs.MCEPlanRatio, "tech", tech), nil).Observe(ratio)
				}
				cell := Cell{
					Tech:              tech,
					Band:              band,
					Health:            health,
					Rho:               geoMean(acc.ratios),
					Worst:             maxOf(acc.ratios),
					QErrP50:           quantile(acc.qerrs, 0.5),
					QErrP95:           quantile(acc.qerrs, 0.95),
					QErrMax:           maxOf(acc.qerrs),
					MeanClassesAlive:  mean(acc.alive),
					MeanPathsRetained: mean(acc.paths),
					Infeasible:        acc.infeas,
				}
				for _, qe := range acc.qerrs {
					ob.FloatHistogram(obs.Label(obs.MCEQError, "tech", tech), nil).Observe(qe)
				}
				tr.Cells = append(tr.Cells, cell)
			}
		}
	}
	return tr, nil
}

// collectJoinQErr walks the lying and true trees in lockstep (Recost
// preserves shape) and records the q-error of every join node's cardinality
// estimate: max(est/true, true/est) ≥ 1.
func collectJoinQErr(lie, truth *plan.Plan, out *[]float64) {
	if lie == nil || truth == nil {
		return
	}
	if lie.Op.IsJoin() {
		*out = append(*out, qerror(lie.Rows, truth.Rows))
	}
	collectJoinQErr(lie.Left, truth.Left, out)
	collectJoinQErr(lie.Right, truth.Right, out)
}

func qerror(est, actual float64) float64 {
	if est < 1 {
		est = 1
	}
	if actual < 1 {
		actual = 1
	}
	return math.Max(est/actual, actual/est)
}

func geoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// quantile returns the q-th quantile by nearest-rank over a copy of xs.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	i := int(math.Ceil(q*float64(len(cp)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(cp) {
		i = len(cp) - 1
	}
	return cp[i]
}
