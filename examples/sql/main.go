// Sql: drive the optimizer from SQL text. A hand-written star query with a
// range filter is parsed against the paper's schema, its join graph is
// analyzed for hubs, and the SDP plan is explained — the workflow a
// downstream user starts with.
package main

import (
	"fmt"
	"log"

	"sdpopt"
)

const queryText = `
SELECT *
FROM R25 fact, R10 d1, R12 d2, R14 d3, R16 d4, R18 d5
WHERE fact.c1 = d1.c3
  AND fact.c2 = d2.c5
  AND fact.c4 = d3.c7
  AND fact.c6 = d4.c2
  AND fact.c8 = d5.c4
  AND d1.c9 < 50
ORDER BY fact.c1;`

func main() {
	cat := sdpopt.PaperSchema()
	q, err := sdpopt.ParseSQL(cat, queryText)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Parsed query (canonical form):")
	fmt.Println(q.SQL())
	fmt.Println()
	fmt.Printf("hub relations: %v (the fact table joins %d dimensions)\n",
		q.HubRels(), q.Adjacent(0).Len())
	fmt.Printf("order requested on join-column class %d\n\n", q.OrderEqClass())

	opts := sdpopt.SDPOptions()
	opts.Budget = sdpopt.DefaultBudget
	plan, stats, err := sdpopt.OptimizeSDP(q, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SDP plan (cost %.2f, %d plans costed, %.2f MB):\n",
		plan.Cost, stats.PlansCosted, stats.Memo.PeakMB())
	fmt.Println(sdpopt.Explain(q, plan))

	// The filter on d1.c9 makes d1's access path interesting: check what
	// the optimizer picked for it.
	fmt.Println("Join graph (Graphviz):")
	fmt.Print(sdpopt.JoinGraphDOT(q))
}
