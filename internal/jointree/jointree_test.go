package jointree

import (
	"math/rand"
	"testing"

	"sdpopt/internal/cost"
	"sdpopt/internal/dp"
	"sdpopt/internal/query"
	"sdpopt/internal/testutil"
)

func starQuery(t *testing.T, n int) *query.Query {
	t.Helper()
	return testutil.MustQuery(testutil.Catalog(n), n, query.StarEdges(n), nil)
}

func chainQuery(t *testing.T, n int) *query.Query {
	t.Helper()
	return testutil.MustQuery(testutil.Catalog(n), n, query.ChainEdges(n), nil)
}

func TestValid(t *testing.T) {
	q := starQuery(t, 5) // hub 0, spokes 1-4
	cases := []struct {
		perm []int
		want bool
	}{
		{[]int{0, 1, 2, 3, 4}, true},
		{[]int{1, 0, 2, 3, 4}, true},  // spoke then hub: prefix connected
		{[]int{1, 2, 0, 3, 4}, false}, // two spokes without the hub
		{[]int{0, 1, 2, 3}, false},    // wrong length
		{[]int{0, 1, 1, 2, 3}, false}, // duplicate
		{[]int{0, 1, 2, 3, 9}, false}, // out of range
	}
	for _, c := range cases {
		if got := Valid(q, c.perm); got != c.want {
			t.Errorf("Valid(%v) = %v, want %v", c.perm, got, c.want)
		}
	}
}

func TestRandomPermAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, q := range []*query.Query{starQuery(t, 7), chainQuery(t, 8)} {
		for trial := 0; trial < 100; trial++ {
			perm := RandomPerm(q, rng)
			if !Valid(q, perm) {
				t.Fatalf("RandomPerm produced invalid %v", perm)
			}
		}
	}
}

func TestRepair(t *testing.T) {
	q := starQuery(t, 6)
	// Spokes first: repair must pull the hub forward just enough.
	repaired := Repair(q, []int{1, 2, 3, 0, 4, 5})
	if !Valid(q, repaired) {
		t.Fatalf("Repair produced invalid %v", repaired)
	}
	// Repair preserves the relative order of already-valid permutations.
	valid := []int{0, 3, 1, 5, 2, 4}
	same := Repair(q, valid)
	for i := range valid {
		if same[i] != valid[i] {
			t.Fatalf("Repair rewrote a valid permutation: %v -> %v", valid, same)
		}
	}
}

func TestBuildMatchesDPOnTwoRelations(t *testing.T) {
	q := chainQuery(t, 2)
	m := cost.NewModel(q, cost.DefaultParams())
	p, err := Build(q, m, []int{0, 1})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	optimal, _, err := dp.Optimize(q, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// With two relations the greedy left-deep build explores everything DP
	// does except interesting-order retention; the cheapest plan agrees.
	if p.Cost < optimal.Cost*(1-1e-9) {
		t.Errorf("Build beat DP: %g vs %g", p.Cost, optimal.Cost)
	}
}

func TestBuildRejectsInvalid(t *testing.T) {
	q := starQuery(t, 5)
	m := cost.NewModel(q, cost.DefaultParams())
	if _, err := Build(q, m, []int{1, 2, 0, 3, 4}); err == nil {
		t.Error("Build accepted a disconnected prefix")
	}
}

func TestBuildNeverBeatsDP(t *testing.T) {
	q := starQuery(t, 7)
	m := cost.NewModel(q, cost.DefaultParams())
	optimal, _, err := dp.Optimize(q, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		p, err := Build(q, m, RandomPerm(q, rng))
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if p.Cost < optimal.Cost*(1-1e-9) {
			t.Fatalf("left-deep build %g beat DP %g", p.Cost, optimal.Cost)
		}
	}
}

func TestBuildHandlesOrderBy(t *testing.T) {
	cat := testutil.Catalog(4)
	q := testutil.MustQuery(cat, 4, query.ChainEdges(4), &query.OrderSpec{Rel: 0, Col: 0})
	m := cost.NewModel(q, cost.DefaultParams())
	p, err := Build(q, m, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if q.OrderEqClass() >= 0 && p.Order != q.OrderEqClass() {
		t.Errorf("ordered build delivers order %d, want %d", p.Order, q.OrderEqClass())
	}
}

func TestNeighborValidAndDifferentiated(t *testing.T) {
	q := starQuery(t, 8)
	rng := rand.New(rand.NewSource(3))
	base := RandomPerm(q, rng)
	changed := 0
	for trial := 0; trial < 50; trial++ {
		nb := Neighbor(q, base, rng)
		if !Valid(q, nb) {
			t.Fatalf("Neighbor produced invalid %v", nb)
		}
		for i := range nb {
			if nb[i] != base[i] {
				changed++
				break
			}
		}
	}
	if changed == 0 {
		t.Error("Neighbor never changed the permutation")
	}
	// The input must never be mutated.
	again := append([]int(nil), base...)
	Neighbor(q, base, rng)
	for i := range base {
		if base[i] != again[i] {
			t.Fatal("Neighbor mutated its input")
		}
	}
}
